// Benchmarks regenerating the paper's evaluation artifacts (one per figure
// and table — see DESIGN.md §5) plus the performance claims: the closed
// forms cost microseconds where the transistor-level validation costs
// milliseconds per point.
//
// Run with: go test -bench=. -benchmem
package ssnkit_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"ssnkit"
	"ssnkit/internal/experiments"
	"ssnkit/internal/linalg"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
)

func benchCtx() experiments.Context { return experiments.Context{Fast: true} }

// benchResult prevents dead-code elimination of experiment outputs.
var benchResult interface{}

// BenchmarkFig1IVFit regenerates Fig. 1: golden-device I-V sweep plus the
// ASDM least-squares extraction.
func BenchmarkFig1IVFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkFig2Waveforms regenerates Fig. 2: the transient simulation of
// the canonical driver array plus the Eq. (6)/(8) waveforms.
func BenchmarkFig2Waveforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkFig3DriverSweep regenerates Fig. 3: the driver-count sweep with
// simulation and all three analytic models.
func BenchmarkFig3DriverSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkFig4CapacitanceSweep regenerates Fig. 4: the two capacitance
// sweeps with simulated and closed-form maxima.
func BenchmarkFig4CapacitanceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkTable1Cases regenerates Table 1: the four steered scenarios with
// classifier, formula, dense-sampled and simulated maxima.
func BenchmarkTable1Cases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkAblationDeviceModel regenerates ablation-a: the same ODE with
// three device linearizations against simulation.
func BenchmarkAblationDeviceModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDeviceModel(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkAblationResistance regenerates ablation-r: the series-resistance
// sensitivity sweep.
func BenchmarkAblationResistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationResistance(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

func benchParams(b *testing.B) ssnkit.Params {
	b.Helper()
	asdm, err := ssnkit.C018.ExtractASDM()
	if err != nil {
		b.Fatal(err)
	}
	gnd := ssnkit.PGA.Ground(2)
	return ssnkit.Params{
		N: 16, Dev: asdm, Vdd: ssnkit.C018.Vdd,
		Slope: ssnkit.C018.Vdd / 1e-9, L: gnd.L, C: gnd.C,
	}
}

// BenchmarkClosedFormVsSim/closed-form vs /transient-sim quantifies the
// paper's "simple formula" pitch: both answer the same question (max SSN of
// one scenario); the closed form is several orders of magnitude faster.
func BenchmarkClosedFormVsSim(b *testing.B) {
	p := benchParams(b)
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, _, err := ssnkit.MaxSSN(p)
			if err != nil {
				b.Fatal(err)
			}
			benchResult = v
		}
	})
	b.Run("transient-sim", func(b *testing.B) {
		cfg := ssnkit.ArrayConfig{
			Process: ssnkit.C018, N: 16, Load: 20e-12,
			Ground: ssnkit.PGA.Ground(2), Rise: 1e-9, Merged: true,
		}
		for i := 0; i < b.N; i++ {
			res, err := ssnkit.Simulate(cfg, ssnkit.SimOptions{}, 1e-9/200, 0)
			if err != nil {
				b.Fatal(err)
			}
			benchResult = res.MaxSSN
		}
	})
}

// BenchmarkMaxSSN measures one closed-form evaluation (Params -> Table 1
// case + maximum), the unit of work inside every sweep.
func BenchmarkMaxSSN(b *testing.B) {
	p := benchParams(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, _, err := ssnkit.MaxSSN(p)
		if err != nil {
			b.Fatal(err)
		}
		benchResult = v
	}
}

// BenchmarkASDMExtraction measures the device-model fit alone.
func BenchmarkASDMExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := ssnkit.C018.ExtractASDM()
		if err != nil {
			b.Fatal(err)
		}
		benchResult = m
	}
}

// BenchmarkTransientRLC measures the raw simulator on a linear RLC step
// (no Newton iterations beyond the linear solve).
func BenchmarkTransientRLC(b *testing.B) {
	deckText := `rlc step
v1 in 0 pulse(0 1 0 1p 1p 10n 0)
r1 in n1 5
l1 n1 n2 5n
c1 n2 0 1p
.tran 1p 2n
.end
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		deck, err := ssnkit.ParseNetlist(strings.NewReader(deckText))
		if err != nil {
			b.Fatal(err)
		}
		tran, _, err := ssnkit.RunDeck(deck, ssnkit.SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		benchResult = tran
	}
}

// BenchmarkLUSolve measures the dense LU factor+solve at MNA-typical sizes.
func BenchmarkLUSolve(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := linalg.NewMatrix(n, n)
			rhs := make([]float64, n)
			for i := 0; i < n; i++ {
				sum := 0.0
				for j := 0; j < n; j++ {
					v := rng.NormFloat64()
					a.Set(i, j, v)
					if v < 0 {
						sum -= v
					} else {
						sum += v
					}
				}
				a.Set(i, i, sum+1)
				rhs[i] = rng.NormFloat64()
			}
			lu := linalg.NewLU(n)
			x := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := lu.Factor(a); err != nil {
					b.Fatal(err)
				}
				if err := lu.Solve(rhs, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchACEngine compiles a rows x cols PGA power-delivery mesh for AC
// benchmarks and returns the engine plus the die observation node.
func benchACEngine(b *testing.B, rows, cols int) (*spice.ACEngine, int) {
	b.Helper()
	grid := pkgmodel.DefaultPDN(pkgmodel.PGA, rows, cols, 4)
	ckt, obs, err := grid.Build()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := spice.NewAC(ckt, spice.ACOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return eng, obs
}

// benchACFreqs is a small log grid cycled across iterations so every solve
// pays for a fresh factorization rather than reusing the cached one.
func benchACFreqs(b *testing.B) []float64 {
	b.Helper()
	freqs, err := spice.FreqGrid(1e6, 1e10, 16, true)
	if err != nil {
		b.Fatal(err)
	}
	return freqs
}

// BenchmarkACSolve measures one complex factor+solve of the PDN mesh per
// iteration at mesh sizes bracketing typical package models.
func BenchmarkACSolve(b *testing.B) {
	for _, rc := range []int{4, 8, 16} {
		b.Run(meshName(rc), func(b *testing.B) {
			eng, obs := benchACEngine(b, rc, rc)
			freqs := benchACFreqs(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				omega := 2 * math.Pi * freqs[i%len(freqs)]
				z, err := eng.Impedance(omega, obs)
				if err != nil {
					b.Fatal(err)
				}
				benchResult = real(z)
			}
		})
	}
}

// BenchmarkAdjoint measures the full adjoint sensitivity pass: forward
// solve, transpose solve, and the per-element gradient accumulation.
func BenchmarkAdjoint(b *testing.B) {
	for _, rc := range []int{4, 8, 16} {
		b.Run(meshName(rc), func(b *testing.B) {
			eng, obs := benchACEngine(b, rc, rc)
			freqs := benchACFreqs(b)
			var sens []spice.SensEntry
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				omega := 2 * math.Pi * freqs[i%len(freqs)]
				z, out, err := eng.ImpedanceSens(omega, obs, sens[:0])
				if err != nil {
					b.Fatal(err)
				}
				sens = out
				benchResult = real(z)
			}
		})
	}
}

// BenchmarkACSweep measures the production sweep shape: one op is a full
// frequency-grid pass on a reused engine, so the symbolic analysis and the
// operand stamping are paid once and each point costs only a numeric
// refactor. The per-frequency loop must not allocate (gated via
// max_allocs_per_op in BENCH_spice.json); the float64 accumulator keeps
// interface boxing of benchResult out of the timed region.
func BenchmarkACSweep(b *testing.B) {
	for _, rc := range []int{4, 8, 16} {
		b.Run(meshName(rc), func(b *testing.B) {
			eng, obs := benchACEngine(b, rc, rc)
			freqs := benchACFreqs(b)
			var acc float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range freqs {
					z, err := eng.Impedance(2*math.Pi*f, obs)
					if err != nil {
						b.Fatal(err)
					}
					acc += real(z)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(freqs)), "ns/point")
			benchResult = acc
		})
	}
}

func meshName(rc int) string {
	return fmt.Sprintf("mesh=%dx%d", rc, rc)
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "n=8"
	case 32:
		return "n=32"
	default:
		return "n=128"
	}
}

// BenchmarkResonanceSweep regenerates the ext-resonance artifact (repeated
// switching on an under-damped ground net).
func BenchmarkResonanceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Resonance(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkTransientTLine measures a transmission-line transient with
// multiple reflections.
func BenchmarkTransientTLine(b *testing.B) {
	deckText := `bounce ladder
v1 src 0 pulse(0 1 0.1n 1p 1p 100n 0)
rs src near 25
t1 near 0 far 0 z0=50 td=1n
rl far 0 100
.tran 20p 8n uic
.end
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		deck, err := ssnkit.ParseNetlist(strings.NewReader(deckText))
		if err != nil {
			b.Fatal(err)
		}
		tran, _, err := ssnkit.RunDeck(deck, ssnkit.SimOptions{})
		if err != nil {
			b.Fatal(err)
		}
		benchResult = tran
	}
}

// BenchmarkAdaptiveVsFixed compares adaptive LTE stepping against the fixed
// grid on the canonical SSN transient.
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	cfg := ssnkit.ArrayConfig{
		Process: ssnkit.C018, N: 16, Load: 20e-12,
		Ground: ssnkit.PGA.Ground(1), Rise: 1e-9, Merged: true,
	}
	b.Run("fixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := ssnkit.Simulate(cfg, ssnkit.SimOptions{}, 2.5e-12, 0)
			if err != nil {
				b.Fatal(err)
			}
			benchResult = res
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := ssnkit.Simulate(cfg, ssnkit.SimOptions{Adaptive: true, LTETol: 1e-4}, 2e-11, 0)
			if err != nil {
				b.Fatal(err)
			}
			benchResult = res
		}
	})
}

// BenchmarkMonteCarlo measures the statistical sign-off loop (1000 corners
// through the four-case closed form).
func BenchmarkMonteCarlo(b *testing.B) {
	p := benchParams(b)
	v := ssnkit.Variation{K: 0.05, L: 0.1, C: 0.08, Slope: 0.07}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := ssnkit.MonteCarlo(p, v, 1000, 7)
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkMonteCarloSerial pins the single-worker baseline of the
// parallelized sampler, so the speedup of the pooled version below is
// visible in one bench run.
func BenchmarkMonteCarloSerial(b *testing.B) {
	p := benchParams(b)
	v := ssnkit.Variation{K: 0.05, L: 0.1, C: 0.08, Slope: 0.07}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := ssnkit.MonteCarloCtx(context.Background(), p, v, 20000, 7, 1)
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkMonteCarloParallel runs the same workload across the
// GOMAXPROCS worker pool with per-worker RNG streams.
func BenchmarkMonteCarloParallel(b *testing.B) {
	p := benchParams(b)
	v := ssnkit.Variation{K: 0.05, L: 0.1, C: 0.08, Slope: 0.07}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := ssnkit.MonteCarloCtx(context.Background(), p, v, 20000, 7, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		benchResult = r
	}
}

// BenchmarkStaggered measures the non-simultaneous-switching integrator.
func BenchmarkStaggered(b *testing.B) {
	p := benchParams(b)
	offs := ssnkit.UniformStagger(p.N, 0.2e-9)
	for i := 0; i < b.N; i++ {
		s, err := ssnkit.NewStaggered(p, offs)
		if err != nil {
			b.Fatal(err)
		}
		_, v, err := s.VMax()
		if err != nil {
			b.Fatal(err)
		}
		benchResult = v
	}
}
