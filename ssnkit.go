// Package ssnkit is a Go library for analyzing simultaneous switching noise
// (SSN, "ground bounce") at chip I/O pads. It reproduces and packages the
// models of Ding & Mazumder, "Accurate Estimating Simultaneous Switching
// Noises by Using Application Specific Device Modeling" (DATE 2002):
//
//   - an application-specific MOSFET model (ASDM) fitted to the SSN
//     operating region, Id = K·(Vg − V0 − a·Vs);
//   - a closed-form SSN waveform and maximum for inductance-only ground
//     nets (paper Sec. 3);
//   - a four-case closed form covering ground inductance plus pad
//     capacitance (paper Sec. 4, Table 1), with the critical capacitance
//     separating the damped regimes;
//   - reconstructions of the prior-art estimates the paper compares with;
//   - everything needed to validate the above from scratch: a MOSFET
//     device-model library, a SPICE-like transient circuit simulator,
//     package parasitic models and a driver-array circuit generator.
//
// This root package re-exports the supported API surface — type aliases
// for data types, real wrapper functions for entry points (so every
// signature is locked at compile time and godoc shows it in place) — and
// downstream users never import ssnkit/internal/... directly:
//
//	asdm, _ := ssnkit.C018.ExtractASDM()
//	p := ssnkit.Params{N: 16, Dev: asdm, Vdd: 1.8, Slope: 1.8e9,
//	    L: 5e-9 / 4, C: 4e-12}
//	vmax, cse, _ := ssnkit.MaxSSN(p)
//
// The experiment harnesses that regenerate every figure and table of the
// paper live in cmd/ssnrepro; see EXPERIMENTS.md for the paper-vs-measured
// summary.
//
// For long-running consumption — batch evaluation, model waveforms over
// HTTP, asynchronous Monte Carlo jobs — cmd/ssnserve wraps these models in
// a concurrent evaluation service with an ASDM extraction cache and
// Prometheus metrics (see README "Running the service").
package ssnkit

import (
	"context"
	"io"

	"ssnkit/internal/circuit"
	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/fit"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
	"ssnkit/internal/waveform"
)

// Core SSN model API (internal/ssn).
type (
	// Params collects the inputs of the closed-form SSN models.
	Params = ssn.Params
	// LModel is the inductance-only closed form (paper Sec. 3).
	LModel = ssn.LModel
	// LCModel is the four-case inductance+capacitance model (Table 1).
	LCModel = ssn.LCModel
	// Case identifies which Table 1 formula applies.
	Case = ssn.Case
	// AlphaParams parameterize the prior-art baseline estimates.
	AlphaParams = ssn.AlphaParams
	// BaselineInput bundles circuit parameters for the baselines.
	BaselineInput = ssn.BaselineInput
	// Staggered integrates the ASDM system for drivers that do not switch
	// simultaneously (the paper's Sec. 3 design knob).
	Staggered = ssn.Staggered
	// Sensitivity holds first-order dVmax/d{N,L,s,C} at an operating
	// point.
	Sensitivity = ssn.Sensitivity
	// Victim models the glitch coupled onto a quiet-low output.
	Victim = ssn.Victim
	// Variation and MCResult drive Monte Carlo analysis over MaxSSN.
	Variation = ssn.Variation
	MCResult  = ssn.MCResult
	// ValidationError is the structured error every input check returns:
	// field, value and violated constraint, with the legacy message as
	// Error(). Services map it onto HTTP 400 bodies.
	ValidationError = ssn.ValidationError
)

// The four operating cases of the LC model.
const (
	OverDamped          = ssn.OverDamped
	CriticallyDamped    = ssn.CriticallyDamped
	UnderDampedPeak     = ssn.UnderDampedPeak
	UnderDampedBoundary = ssn.UnderDampedBoundary
)

// MaxSSN classifies the operating case and evaluates the Table 1
// maximum-noise formula.
func MaxSSN(p Params) (float64, Case, error) { return ssn.MaxSSN(p) }

// NewLModel builds the Sec. 3 inductance-only model.
func NewLModel(p Params) (*LModel, error) { return ssn.NewLModel(p) }

// NewLCModel builds the Sec. 4 four-case model.
func NewLCModel(p Params) (*LCModel, error) { return ssn.NewLCModel(p) }

// MaxDriversForBudget sizes the largest simultaneously switching bus that
// meets a noise budget.
func MaxDriversForBudget(p Params, budget float64, limit int) (int, error) {
	return ssn.MaxDriversForBudget(p, budget, limit)
}

// MinRiseTimeForBudget finds the fastest edge meeting a noise budget.
func MinRiseTimeForBudget(p Params, budget, trFast, trSlow float64) (float64, error) {
	return ssn.MinRiseTimeForBudget(p, budget, trFast, trSlow)
}

// InductanceBudget finds the largest ground inductance meeting a noise
// budget.
func InductanceBudget(p Params, budget, lMin, lMax float64) (float64, error) {
	return ssn.InductanceBudget(p, budget, lMin, lMax)
}

// SquareLawMax is the classic square-law prior-art baseline.
func SquareLawMax(in BaselineInput, kp, vt float64) (float64, error) {
	return ssn.SquareLawMax(in, kp, vt)
}

// VemuruMax is the Vemuru alpha-power prior-art baseline.
func VemuruMax(in BaselineInput, ap AlphaParams) (float64, error) {
	return ssn.VemuruMax(in, ap)
}

// SongMax is the Song et al. prior-art baseline.
func SongMax(in BaselineInput, ap AlphaParams) (float64, error) {
	return ssn.SongMax(in, ap)
}

// NewStaggered analyzes drivers that do not switch simultaneously.
func NewStaggered(p Params, offsets []float64) (*Staggered, error) {
	return ssn.NewStaggered(p, offsets)
}

// UniformStagger builds n switching offsets spaced dt apart.
func UniformStagger(n int, dt float64) []float64 { return ssn.UniformStagger(n, dt) }

// LSensitivity evaluates design sensitivities of the L-only model.
func LSensitivity(p Params) (Sensitivity, error) { return ssn.LSensitivity(p) }

// LCSensitivity evaluates design sensitivities of the LC model (h is the
// finite-difference step; 0 picks a default).
func LCSensitivity(p Params, h float64) (Sensitivity, error) {
	return ssn.LCSensitivity(p, h)
}

// NewVictim analyzes quiet-output glitches and noise margins.
func NewVictim(p Params, ron, cl float64) (*Victim, error) {
	return ssn.NewVictim(p, ron, cl)
}

// MonteCarlo draws process/environment variations over MaxSSN on a
// GOMAXPROCS worker pool.
func MonteCarlo(p Params, v Variation, n int, seed int64) (*MCResult, error) {
	return ssn.MonteCarlo(p, v, n, seed)
}

// MonteCarloCtx is MonteCarlo with cancellation and an explicit worker
// count (deterministic per seed and worker count).
func MonteCarloCtx(ctx context.Context, p Params, v Variation, n int, seed int64, workers int) (*MCResult, error) {
	return ssn.MonteCarloCtx(ctx, p, v, n, seed, workers)
}

// DelayPushout estimates the switching-delay cost of the bounce.
func DelayPushout(p Params) (float64, error) { return ssn.DelayPushout(p) }

// Inverse design and yield API (internal/ssn).
type (
	// SolveVar names the free variable of an inverse query.
	SolveVar = ssn.SolveVar
	// Solution is a solved inverse query: the boundary value of the free
	// variable and the operating point it lands on.
	Solution = ssn.Solution
	// SolveError reports an inverse query with no boundary inside the
	// search bracket (the budget is met everywhere, or nowhere).
	SolveError = ssn.SolveError
	// YieldResult is a Monte Carlo pass-probability estimate against a
	// noise budget, with a 95% Wilson score interval.
	YieldResult = ssn.YieldResult
)

// The free variables an inverse query may solve for.
const (
	SolveN        = ssn.SolveN
	SolveL        = ssn.SolveL
	SolveC        = ssn.SolveC
	SolveSlope    = ssn.SolveSlope
	SolveRiseTime = ssn.SolveRiseTime
)

// ParseSolveVar resolves "n", "l", "c", "slope", "rise_time" (alias "tr").
func ParseSolveVar(name string) (SolveVar, error) { return ssn.ParseSolveVar(name) }

// Solve finds the boundary value of the free variable at which the Table 1
// maximum meets the budget, over the variable's default bracket: Newton on
// the analytic per-case derivative, safeguarded by bisection across case
// boundaries. The returned point satisfies budget-1e-9 <= Vmax <= budget.
func Solve(p Params, v SolveVar, budget float64) (Solution, error) {
	return ssn.Solve(p, v, budget)
}

// SolveBracket is Solve over an explicit search bracket [lo, hi].
func SolveBracket(p Params, v SolveVar, budget, lo, hi float64) (Solution, error) {
	return ssn.SolveBracket(p, v, budget, lo, hi)
}

// Yield estimates the probability that a design meets a noise budget under
// process variation: n Monte Carlo draws through the deterministic
// parallel campaign, returning the pass fraction with a 95% Wilson score
// interval.
func Yield(p Params, v Variation, budget float64, n int, seed int64) (*YieldResult, error) {
	return ssn.Yield(p, v, budget, n, seed)
}

// YieldCtx is Yield with cancellation and an explicit worker count
// (deterministic per seed and worker count).
func YieldCtx(ctx context.Context, p Params, v Variation, budget float64, n int, seed int64, workers int) (*YieldResult, error) {
	return ssn.YieldCtx(ctx, p, v, budget, n, seed, workers)
}

// Device modeling API (internal/device).
type (
	// ASDM is the paper's application-specific device model.
	ASDM = device.ASDM
	// ExtractRegion describes the (Vg, Vs) region an ASDM is fitted over.
	ExtractRegion = device.ExtractRegion
	// DeviceModel is the large-signal MOSFET interface the simulator uses.
	DeviceModel = device.Model
	// Reference is the golden short-channel device (BSIM3 stand-in).
	Reference = device.Reference
	// AlphaPower is the Sakurai-Newton device model.
	AlphaPower = device.AlphaPower
	// SquareLaw is the classic long-channel device model.
	SquareLaw = device.SquareLaw
	// Process bundles a technology kit (supply + golden driver).
	Process = device.Process
	// Corner names a process corner (TT/SS/FF) for Process.At.
	Corner = device.Corner
	// ExtractSpec names one ASDM extraction (process, corner, polarity,
	// width); its Key() is the cache key batch consumers reuse
	// extractions under.
	ExtractSpec = device.ExtractSpec
	// FitStats reports goodness-of-fit of a device extraction.
	FitStats = fit.Stats
)

// Process corners.
const (
	TT = device.TT
	SS = device.SS
	FF = device.FF
)

// Process kits.
var (
	C018 = device.C018
	C025 = device.C025
	C035 = device.C035
)

// Processes lists the built-in technology kits.
func Processes() []Process { return device.Processes() }

// ProcessByName resolves a kit by name ("c018", "c025", "c035").
func ProcessByName(name string) (Process, error) { return device.ProcessByName(name) }

// ExtractASDM fits the paper's application-specific device model to a
// golden device over the SSN operating region.
func ExtractASDM(golden DeviceModel, region ExtractRegion) (ASDM, FitStats, error) {
	return device.ExtractASDM(golden, region)
}

// ExtractAlphaPowerSat fits the Sakurai-Newton saturation model to a
// golden device (the baselines' parameter source).
func ExtractAlphaPowerSat(golden DeviceModel, vdd float64) (b, vt, alpha float64, stats FitStats, err error) {
	return device.ExtractAlphaPowerSat(golden, vdd)
}

// TriodeResistance returns a quiet driver's channel resistance, the Ron
// input of the victim-glitch model.
func TriodeResistance(m DeviceModel, vgs, vbs float64) float64 {
	return device.TriodeResistance(m, vgs, vbs)
}

// CornerByName parses "tt"/"ss"/"ff".
func CornerByName(name string) (Corner, error) { return device.CornerByName(name) }

// Circuit and simulation API (internal/circuit, internal/spice).
type (
	// Circuit is a flat netlist.
	Circuit = circuit.Circuit
	// Deck is a parsed netlist plus requested analyses.
	Deck = circuit.Deck
	// TranSpec and DCSpec request analyses.
	TranSpec = circuit.TranSpec
	DCSpec   = circuit.DCSpec
	// Engine is the MNA/Newton-Raphson simulator.
	Engine = spice.Engine
	// SimOptions tune solver tolerances.
	SimOptions = spice.Options
	// DCSweepResult carries the operating points of a .dc analysis.
	DCSweepResult = spice.DCSweepResult
	// Source is a time-dependent stimulus.
	Source = circuit.Source
	// Ramp is the SSN input stimulus.
	Ramp = circuit.Ramp
)

// NewCircuit starts an empty netlist with the given title.
func NewCircuit(title string) *Circuit { return circuit.New(title) }

// ParseNetlist reads a SPICE-like deck: netlist plus analysis cards.
func ParseNetlist(r io.Reader) (*Deck, error) { return circuit.Parse(r) }

// NewEngine builds the MNA/Newton-Raphson simulator over a circuit.
func NewEngine(ckt *Circuit, opts SimOptions) (*Engine, error) { return spice.New(ckt, opts) }

// RunDeck executes every analysis a parsed deck requests.
func RunDeck(deck *Deck, opts SimOptions) (*WaveformSet, *DCSweepResult, error) {
	return spice.Run(deck, opts)
}

// Scenario generation API (internal/driver, internal/pkgmodel).
type (
	// ArrayConfig describes a driver-array SSN scenario.
	ArrayConfig = driver.ArrayConfig
	// SimResult packages the observables of one scenario run.
	SimResult = driver.SimResult
	// PullKind selects ground bounce (pull-down) or power-rail droop
	// (pull-up) scenarios.
	PullKind = driver.Pull
	// Package is a package parasitic class; GroundNet the paralleled
	// ground pins seen by the chip.
	Package   = pkgmodel.Package
	GroundNet = pkgmodel.GroundNet
)

// Driver polarities for ArrayConfig.Pull.
const (
	PullDown = driver.PullDown
	PullUp   = driver.PullUp
)

// Package parasitic classes.
var (
	PGA = pkgmodel.PGA
	QFP = pkgmodel.QFP
	BGA = pkgmodel.BGA
	COB = pkgmodel.COB
)

// PackageCatalog lists the built-in package classes.
func PackageCatalog() []Package { return pkgmodel.Catalog() }

// PackageByName resolves a package class by name ("pga", "qfp", ...).
func PackageByName(name string) (Package, error) { return pkgmodel.ByName(name) }

// Simulate generates and runs one driver-array SSN scenario at the
// transistor level (step/stop 0 pick defaults from the rise time).
func Simulate(cfg ArrayConfig, opts SimOptions, step, stop float64) (*SimResult, error) {
	return driver.Simulate(cfg, opts, step, stop)
}

// Waveform API (internal/waveform).
type (
	// Waveform is a sampled signal; WaveformSet a named collection.
	Waveform    = waveform.Waveform
	WaveformSet = waveform.Set
)
