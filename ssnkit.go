// Package ssnkit is a Go library for analyzing simultaneous switching noise
// (SSN, "ground bounce") at chip I/O pads. It reproduces and packages the
// models of Ding & Mazumder, "Accurate Estimating Simultaneous Switching
// Noises by Using Application Specific Device Modeling" (DATE 2002):
//
//   - an application-specific MOSFET model (ASDM) fitted to the SSN
//     operating region, Id = K·(Vg − V0 − a·Vs);
//   - a closed-form SSN waveform and maximum for inductance-only ground
//     nets (paper Sec. 3);
//   - a four-case closed form covering ground inductance plus pad
//     capacitance (paper Sec. 4, Table 1), with the critical capacitance
//     separating the damped regimes;
//   - reconstructions of the prior-art estimates the paper compares with;
//   - everything needed to validate the above from scratch: a MOSFET
//     device-model library, a SPICE-like transient circuit simulator,
//     package parasitic models and a driver-array circuit generator.
//
// This root package re-exports the supported API surface via type aliases
// so downstream users never import ssnkit/internal/... directly:
//
//	asdm, _ := ssnkit.C018.ExtractASDM()
//	p := ssnkit.Params{N: 16, Dev: asdm, Vdd: 1.8, Slope: 1.8e9,
//	    L: 5e-9 / 4, C: 4e-12}
//	vmax, cse, _ := ssnkit.MaxSSN(p)
//
// The experiment harnesses that regenerate every figure and table of the
// paper live in cmd/ssnrepro; see EXPERIMENTS.md for the paper-vs-measured
// summary.
//
// For long-running consumption — batch evaluation, model waveforms over
// HTTP, asynchronous Monte Carlo jobs — cmd/ssnserve wraps these models in
// a concurrent evaluation service with an ASDM extraction cache and
// Prometheus metrics (see README "Running the service").
package ssnkit

import (
	"ssnkit/internal/circuit"
	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
	"ssnkit/internal/waveform"
)

// Core SSN model API (internal/ssn).
type (
	// Params collects the inputs of the closed-form SSN models.
	Params = ssn.Params
	// LModel is the inductance-only closed form (paper Sec. 3).
	LModel = ssn.LModel
	// LCModel is the four-case inductance+capacitance model (Table 1).
	LCModel = ssn.LCModel
	// Case identifies which Table 1 formula applies.
	Case = ssn.Case
	// AlphaParams parameterize the prior-art baseline estimates.
	AlphaParams = ssn.AlphaParams
	// BaselineInput bundles circuit parameters for the baselines.
	BaselineInput = ssn.BaselineInput
	// Staggered integrates the ASDM system for drivers that do not switch
	// simultaneously (the paper's Sec. 3 design knob).
	Staggered = ssn.Staggered
	// Sensitivity holds first-order dVmax/d{N,L,s,C} at an operating
	// point.
	Sensitivity = ssn.Sensitivity
	// Victim models the glitch coupled onto a quiet-low output.
	Victim = ssn.Victim
	// Variation and MCResult drive Monte Carlo analysis over MaxSSN.
	Variation = ssn.Variation
	MCResult  = ssn.MCResult
	// ValidationError is the structured error every input check returns:
	// field, value and violated constraint, with the legacy message as
	// Error(). Services map it onto HTTP 400 bodies.
	ValidationError = ssn.ValidationError
)

// The four operating cases of the LC model.
const (
	OverDamped          = ssn.OverDamped
	CriticallyDamped    = ssn.CriticallyDamped
	UnderDampedPeak     = ssn.UnderDampedPeak
	UnderDampedBoundary = ssn.UnderDampedBoundary
)

// Core entry points.
var (
	// MaxSSN classifies the operating case and evaluates the Table 1
	// maximum-noise formula.
	MaxSSN = ssn.MaxSSN
	// NewLModel builds the Sec. 3 inductance-only model.
	NewLModel = ssn.NewLModel
	// NewLCModel builds the Sec. 4 four-case model.
	NewLCModel = ssn.NewLCModel
	// MaxDriversForBudget sizes the largest simultaneously switching bus
	// that meets a noise budget.
	MaxDriversForBudget = ssn.MaxDriversForBudget
	// MinRiseTimeForBudget finds the fastest edge meeting a noise budget.
	MinRiseTimeForBudget = ssn.MinRiseTimeForBudget
	// InductanceBudget finds the largest ground inductance meeting a
	// noise budget.
	InductanceBudget = ssn.InductanceBudget
	// SquareLawMax, VemuruMax and SongMax are the prior-art baselines.
	SquareLawMax = ssn.SquareLawMax
	VemuruMax    = ssn.VemuruMax
	SongMax      = ssn.SongMax
	// NewStaggered and UniformStagger analyze non-simultaneous switching.
	NewStaggered   = ssn.NewStaggered
	UniformStagger = ssn.UniformStagger
	// LSensitivity and LCSensitivity evaluate design sensitivities.
	LSensitivity  = ssn.LSensitivity
	LCSensitivity = ssn.LCSensitivity
	// NewVictim analyzes quiet-output glitches and noise margins.
	NewVictim = ssn.NewVictim
	// MonteCarlo draws process/environment variations over MaxSSN on a
	// GOMAXPROCS worker pool; MonteCarloCtx adds cancellation and an
	// explicit worker count (deterministic per seed and worker count).
	MonteCarlo    = ssn.MonteCarlo
	MonteCarloCtx = ssn.MonteCarloCtx
	// DelayPushout estimates the switching-delay cost of the bounce.
	DelayPushout = ssn.DelayPushout
)

// Device modeling API (internal/device).
type (
	// ASDM is the paper's application-specific device model.
	ASDM = device.ASDM
	// ExtractRegion describes the (Vg, Vs) region an ASDM is fitted over.
	ExtractRegion = device.ExtractRegion
	// DeviceModel is the large-signal MOSFET interface the simulator uses.
	DeviceModel = device.Model
	// Reference is the golden short-channel device (BSIM3 stand-in).
	Reference = device.Reference
	// AlphaPower is the Sakurai-Newton device model.
	AlphaPower = device.AlphaPower
	// SquareLaw is the classic long-channel device model.
	SquareLaw = device.SquareLaw
	// Process bundles a technology kit (supply + golden driver).
	Process = device.Process
	// Corner names a process corner (TT/SS/FF) for Process.At.
	Corner = device.Corner
	// ExtractSpec names one ASDM extraction (process, corner, polarity,
	// width); its Key() is the cache key batch consumers reuse
	// extractions under.
	ExtractSpec = device.ExtractSpec
)

// Process corners.
const (
	TT = device.TT
	SS = device.SS
	FF = device.FF
)

// Process kits and device-fitting entry points.
var (
	C018                 = device.C018
	C025                 = device.C025
	C035                 = device.C035
	Processes            = device.Processes
	ProcessByName        = device.ProcessByName
	ExtractASDM          = device.ExtractASDM
	ExtractAlphaPowerSat = device.ExtractAlphaPowerSat
	// TriodeResistance returns a quiet driver's channel resistance, the
	// Ron input of the victim-glitch model.
	TriodeResistance = device.TriodeResistance
	// CornerByName parses "tt"/"ss"/"ff".
	CornerByName = device.CornerByName
)

// Circuit and simulation API (internal/circuit, internal/spice).
type (
	// Circuit is a flat netlist.
	Circuit = circuit.Circuit
	// Deck is a parsed netlist plus requested analyses.
	Deck = circuit.Deck
	// TranSpec and DCSpec request analyses.
	TranSpec = circuit.TranSpec
	DCSpec   = circuit.DCSpec
	// Engine is the MNA/Newton-Raphson simulator.
	Engine = spice.Engine
	// SimOptions tune solver tolerances.
	SimOptions = spice.Options
	// Source is a time-dependent stimulus.
	Source = circuit.Source
	// Ramp is the SSN input stimulus.
	Ramp = circuit.Ramp
)

// Circuit construction and simulation entry points.
var (
	NewCircuit   = circuit.New
	ParseNetlist = circuit.Parse
	NewEngine    = spice.New
	RunDeck      = spice.Run
)

// Scenario generation API (internal/driver, internal/pkgmodel).
type (
	// ArrayConfig describes a driver-array SSN scenario.
	ArrayConfig = driver.ArrayConfig
	// SimResult packages the observables of one scenario run.
	SimResult = driver.SimResult
	// PullKind selects ground bounce (pull-down) or power-rail droop
	// (pull-up) scenarios.
	PullKind = driver.Pull
	// Package is a package parasitic class; GroundNet the paralleled
	// ground pins seen by the chip.
	Package   = pkgmodel.Package
	GroundNet = pkgmodel.GroundNet
)

// Driver polarities for ArrayConfig.Pull.
const (
	PullDown = driver.PullDown
	PullUp   = driver.PullUp
)

// Package catalog and scenario entry points.
var (
	PGA            = pkgmodel.PGA
	QFP            = pkgmodel.QFP
	BGA            = pkgmodel.BGA
	COB            = pkgmodel.COB
	PackageCatalog = pkgmodel.Catalog
	PackageByName  = pkgmodel.ByName
	Simulate       = driver.Simulate
)

// Waveform API (internal/waveform).
type (
	// Waveform is a sampled signal; WaveformSet a named collection.
	Waveform    = waveform.Waveform
	WaveformSet = waveform.Set
)
