module ssnkit

go 1.22
