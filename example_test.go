package ssnkit_test

import (
	"fmt"
	"strings"

	"ssnkit"
)

// The examples below are deterministic and double as documentation on
// pkg.go.dev-style doc pages.

// ExampleMaxSSN estimates the ground bounce of a 16-bit bus with a fixed
// (hand-specified) device model, showing the closed-form API without the
// extraction step.
func ExampleMaxSSN() {
	p := ssnkit.Params{
		N:     16,
		Dev:   ssnkit.ASDM{K: 4e-3, V0: 0.6, A: 1.2},
		Vdd:   1.8,
		Slope: 1.8e9, // 1 ns edge
		L:     2.5e-9,
		C:     2e-12,
	}
	vmax, cse, err := ssnkit.MaxSSN(p)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("case: %v\n", cse)
	fmt.Printf("max bounce: %.3f V\n", vmax)
	// Output:
	// case: over-damped
	// max bounce: 0.282 V
}

// ExampleParams_CriticalCapacitance shows the Eq. (27) regime boundary.
func ExampleParams_CriticalCapacitance() {
	p := ssnkit.Params{
		N: 16, Dev: ssnkit.ASDM{K: 4e-3, V0: 0.6, A: 1.2},
		Vdd: 1.8, Slope: 1.8e9, L: 2.5e-9,
	}
	fmt.Printf("Cm = %.3g F\n", p.CriticalCapacitance())
	// Output:
	// Cm = 3.69e-12 F
}

// ExampleVemuruMax evaluates a prior-art baseline with explicit alpha-power
// parameters.
func ExampleVemuruMax() {
	in := ssnkit.BaselineInput{N: 8, L: 5e-9, Vdd: 1.8, Slope: 1.8e9}
	ap := ssnkit.AlphaParams{B: 3.4e-3, Vt: 0.45, Alpha: 1.24}
	v, err := ssnkit.VemuruMax(in, ap)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.3f V\n", v)
	// Output:
	// 0.321 V
}

// ExampleParseNetlist runs a netlist deck end to end.
func ExampleParseNetlist() {
	deck, err := ssnkit.ParseNetlist(strings.NewReader(`rc lowpass
v1 in 0 dc 1
r1 in out 1k
c1 out 0 1p
.tran 10p 5n
.end
`))
	if err != nil {
		fmt.Println(err)
		return
	}
	tran, _, err := ssnkit.RunDeck(deck, ssnkit.SimOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	w := tran.Get("v(out)")
	fmt.Printf("settled: %.2f V\n", w.At(5e-9))
	// Output:
	// settled: 1.00 V
}

// ExampleUniformStagger shows the staggered-switching analysis: spreading
// the same 16 drivers over time cuts the peak.
func ExampleUniformStagger() {
	p := ssnkit.Params{
		N: 16, Dev: ssnkit.ASDM{K: 4e-3, V0: 0.6, A: 1.2},
		Vdd: 1.8, Slope: 1.8e9, L: 2.5e-9, C: 2e-12,
	}
	together, _, _ := ssnkit.MaxSSN(p)
	st, err := ssnkit.NewStaggered(p, ssnkit.UniformStagger(p.N, 0.5e-9))
	if err != nil {
		fmt.Println(err)
		return
	}
	_, spread, _ := st.VMax()
	fmt.Printf("simultaneous: %.2f V, staggered: %.2f V\n", together, spread)
	// Output:
	// simultaneous: 0.28 V, staggered: 0.05 V
}
