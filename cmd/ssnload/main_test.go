package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"ssnkit/internal/colwire"
)

func TestParseMix(t *testing.T) {
	shapes, err := parseMix("single=8,batch=1,sweep=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 3 || shapes[0].weight != 8 || shapes[1].weight != 1 {
		t.Errorf("parsed %+v", shapes)
	}
	if shapes, err := parseMix("sweep"); err != nil || len(shapes) != 1 || shapes[0].weight != 1 {
		t.Errorf("bare shape: %+v, %v", shapes, err)
	}
	if shapes, err := parseMix("solve=3"); err != nil || len(shapes) != 1 ||
		shapes[0].path != "/v1/solve" || shapes[0].weight != 3 {
		t.Errorf("solve shape: %+v, %v", shapes, err)
	}
	if shapes, err := parseMix("columnar=2"); err != nil || len(shapes) != 1 ||
		shapes[0].path != "/v1/maxssn" || !shapes[0].columnar {
		t.Errorf("columnar shape: %+v, %v", shapes, err)
	}
	if shapes, err := parseMix("impedance=2"); err != nil || len(shapes) != 1 ||
		shapes[0].path != "/v1/impedance" || !shapes[0].impedance {
		t.Errorf("impedance shape: %+v, %v", shapes, err)
	}
	for _, bad := range []string{"", "nope", "single=0", "single=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) succeeded", bad)
		}
	}
}

func TestBatchBody(t *testing.T) {
	var req struct {
		Items []struct {
			N float64 `json:"n"`
		} `json:"items"`
	}
	if err := json.Unmarshal(batchBody(64), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Items) != 64 || req.Items[0].N != 1 || req.Items[63].N != 64 {
		t.Errorf("batch body: %d items, first %v, last %v",
			len(req.Items), req.Items[0].N, req.Items[len(req.Items)-1].N)
	}
}

// TestHistQuantiles pins the log-bucket math: quantiles of a known
// population land within one bucket width of the truth.
func TestHistQuantiles(t *testing.T) {
	h := newHist()
	// 100 samples: 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.add(float64(i) * 1e-3)
	}
	checks := []struct{ q, want float64 }{{0.50, 0.050}, {0.90, 0.090}, {0.99, 0.099}}
	for _, c := range checks {
		got := h.quantile(c.q)
		if got < c.want/1.06 || got > c.want*1.06 {
			t.Errorf("q%.0f = %v, want ~%v", c.q*100, got, c.want)
		}
	}
	if h.max != 0.100 {
		t.Errorf("max = %v", h.max)
	}
	if newHist().quantile(0.5) != 0 {
		t.Error("empty hist quantile != 0")
	}
}

func TestHistMerge(t *testing.T) {
	a, b := newHist(), newHist()
	a.add(1e-3)
	b.add(2e-3)
	b.add(5e-1)
	a.merge(b)
	if a.total != 3 || a.max != 5e-1 {
		t.Errorf("merged total %d max %v", a.total, a.max)
	}
}

// TestRunAgainstStub drives the full loop against a stub server that sheds
// every third request, and checks the JSON report adds up.
func TestRunAgainstStub(t *testing.T) {
	var n atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var buf bytes.Buffer
	err := run([]string{"-url", ts.URL, "-c", "4", "-d", "200ms",
		"-mix", "single=2,batch=1", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.Requests == 0 || rep.OK == 0 || rep.Shed == 0 {
		t.Fatalf("report %+v: want some ok and some shed", rep)
	}
	if rep.Requests != rep.OK+rep.Shed+rep.Errors+rep.Other {
		t.Errorf("request count does not add up: %+v", rep)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Errorf("shed rate %v outside (0, 1)", rep.ShedRate)
	}
	var total uint64
	for _, v := range rep.ByShape {
		total += v
	}
	if total != rep.Requests {
		t.Errorf("by_shape sums to %d, requests %d", total, rep.Requests)
	}
	if rep.P50 <= 0 || rep.Max < rep.P99 || rep.P99 < rep.P50 {
		t.Errorf("latency ordering broken: %+v", rep)
	}
}

// TestColumnarBody pins the request payload: one SSNC block, shared params
// in the meta, n = 1..64 in the single column.
func TestColumnarBody(t *testing.T) {
	raw, err := columnarBody(64)
	if err != nil {
		t.Fatal(err)
	}
	blk, used, err := colwire.Decode(raw)
	if err != nil || used != len(raw) {
		t.Fatalf("decode: used %d of %d, err %v", used, len(raw), err)
	}
	ns := blk.Column("n")
	if blk.Rows() != 64 || ns == nil || ns[0] != 1 || ns[63] != 64 {
		t.Fatalf("block rows %d, n column %v", blk.Rows(), ns)
	}
	var meta struct {
		Params struct {
			Package  string  `json:"package"`
			RiseTime float64 `json:"rise_time"`
		} `json:"params"`
	}
	if err := json.Unmarshal(blk.Meta, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Params.Package != "pga" || meta.Params.RiseTime != 1e-9 {
		t.Errorf("meta params %+v", meta.Params)
	}
}

// TestRunColumnarMix drives the columnar shape against a stub that speaks
// SSNC both ways and checks the codec accounting in the report.
func TestRunColumnarMix(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != colwire.ContentType {
			t.Errorf("request Content-Type = %q", ct)
		}
		blk, err := colwire.ReadBlock(r.Body)
		if err != nil {
			t.Errorf("request block: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := &colwire.Block{Columns: []colwire.Column{
			{Name: "vmax", Values: make([]float64, blk.Rows())},
		}}
		raw, err := out.Encode()
		if err != nil {
			t.Errorf("reply block: %v", err)
		}
		w.Header().Set("Content-Type", colwire.ContentType)
		w.Write(raw)
	}))
	defer ts.Close()

	var buf bytes.Buffer
	err := run([]string{"-url", ts.URL, "-c", "2", "-d", "200ms",
		"-mix", "columnar", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.OK == 0 || rep.ByShape["columnar"] != rep.Requests {
		t.Fatalf("report %+v: want only columnar requests, some ok", rep)
	}
	c := rep.Columnar
	if c == nil {
		t.Fatal("report has no columnar section")
	}
	if c.Requests == 0 || c.DecodeErrors != 0 {
		t.Fatalf("columnar stats %+v", c)
	}
	if c.EncodeSeconds <= 0 || c.DecodeSeconds <= 0 || c.TotalSeconds <= 0 {
		t.Errorf("codec timings not recorded: %+v", c)
	}
	if c.CodecShare <= 0 || c.CodecShare >= 1 {
		t.Errorf("codec share %v outside (0, 1)", c.CodecShare)
	}
}

// TestRunColumnarDecodeErrors counts replies that claim the SSNC media type
// but do not parse.
func TestRunColumnarDecodeErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", colwire.ContentType)
		w.Write([]byte("not a block"))
	}))
	defer ts.Close()
	var buf bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-c", "1", "-d", "150ms",
		"-mix", "columnar", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Columnar == nil || rep.Columnar.DecodeErrors == 0 {
		t.Fatalf("decode errors not counted: %+v", rep.Columnar)
	}
}

// impedanceSweepNDJSON and impedanceSweepSSNC synthesize well-formed sweep
// responses of n points for the stub server.
func impedanceSweepNDJSON(n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		buf.WriteString(`{"freq":1e6,"z_re":1,"z_im":0,"z_mag":1}` + "\n")
	}
	buf.WriteString(`{"done":true,"stats":{"points":` + itoa(n) + `,"peak_freq":1e6,"peak_z":1,"workers":1}}` + "\n")
	return buf.Bytes()
}

func impedanceSweepSSNC(t *testing.T, n int) []byte {
	t.Helper()
	vals := make([]float64, n)
	blk := &colwire.Block{Columns: []colwire.Column{
		{Name: "freq", Values: vals}, {Name: "z_re", Values: vals},
		{Name: "z_im", Values: vals}, {Name: "z_mag", Values: vals},
	}}
	raw, err := blk.Encode()
	if err != nil {
		t.Fatal(err)
	}
	term := &colwire.Block{Meta: json.RawMessage(`{"done":true,"stats":{"points":` + itoa(n) + `}}`)}
	traw, err := term.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, traw...)
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestDecodeImpedance pins the client-side stream decoders: both formats
// count points and verify the terminal summary; truncated or inconsistent
// streams error.
func TestDecodeImpedance(t *testing.T) {
	nd := impedanceSweepNDJSON(5)
	if pts, err := decodeImpedance(nd, false); err != nil || pts != 5 {
		t.Errorf("ndjson: %d points, %v", pts, err)
	}
	// Truncated stream: summary missing.
	lines := bytes.SplitAfter(nd, []byte("\n"))
	if _, err := decodeImpedance(bytes.Join(lines[:5], nil), false); err == nil {
		t.Error("ndjson without summary accepted")
	}
	// Summary disagreeing with the record count.
	bad := append(append([]byte{}, nd[:0]...), impedanceSweepNDJSON(4)...)
	bad = append(bad, []byte(`{"freq":1e6,"z_mag":1}`+"\n")...)
	if _, err := decodeImpedance(bad, false); err == nil {
		t.Error("ndjson with trailing data after summary accepted")
	}

	col := impedanceSweepSSNC(t, 7)
	if pts, err := decodeImpedance(col, true); err != nil || pts != 7 {
		t.Errorf("ssnc: %d points, %v", pts, err)
	}
	if _, err := decodeImpedance(col[:len(col)/2], true); err == nil {
		t.Error("truncated ssnc stream accepted")
	}
	if _, err := decodeImpedance([]byte("junk"), true); err == nil {
		t.Error("garbage ssnc stream accepted")
	}
}

// TestRunImpedanceMix drives the impedance shape against a stub that
// answers the sweep in whichever encoding the request negotiates, and
// checks the report prices both decoders.
func TestRunImpedanceMix(t *testing.T) {
	const points = 16
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/impedance" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		io.Copy(io.Discard, r.Body)
		if r.Header.Get("Accept") == colwire.ContentType {
			w.Header().Set("Content-Type", colwire.ContentType)
			w.Write(impedanceSweepSSNC(t, points))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(impedanceSweepNDJSON(points))
	}))
	defer ts.Close()

	var buf bytes.Buffer
	err := run([]string{"-url", ts.URL, "-c", "2", "-d", "300ms",
		"-mix", "impedance", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.OK == 0 || rep.ByShape["impedance"] != rep.Requests {
		t.Fatalf("report %+v: want only impedance requests, some ok", rep)
	}
	im := rep.Impedance
	if im == nil {
		t.Fatal("report has no impedance section")
	}
	if im.Requests != rep.OK || im.NDJSON+im.Columnar != im.Requests {
		t.Fatalf("impedance stats %+v vs ok %d", im, rep.OK)
	}
	if im.NDJSON == 0 || im.Columnar == 0 {
		t.Errorf("encodings did not alternate: %+v", im)
	}
	if im.Points != points*im.Requests {
		t.Errorf("decoded %d points over %d sweeps, want %d each", im.Points, im.Requests, points)
	}
	if im.DecodeErrors != 0 {
		t.Errorf("%d decode errors", im.DecodeErrors)
	}
	if im.DecodeSeconds <= 0 || im.DecodeShare <= 0 || im.DecodeShare >= 1 {
		t.Errorf("decode accounting not recorded: %+v", im)
	}
}

// TestRunTextOutput smoke-checks the human format.
func TestRunTextOutput(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer ts.Close()
	var buf bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-c", "2", "-d", "100ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"requests", "shed (429)", "latency", "mix single"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-c", "0"},
		{"-mix", "nope"},
		{"stray"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
