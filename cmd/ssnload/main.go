// Command ssnload drives synthetic load at an ssnserve instance and
// reports what came back: latency quantiles (p50/p90/p99/max), throughput,
// and the shed rate — the fraction of requests the server's admission
// control turned away with 429. It exists to answer the capacity question
// admission control poses: where does this replica saturate, and does it
// degrade by shedding (good) or by queueing without bound (bad)?
//
// Usage:
//
//	ssnload -url http://127.0.0.1:8350 -c 32 -d 10s
//	ssnload -mix single=8,batch=1,sweep=1 -c 64 -d 30s -json
//
// The mix weights pick per request among six shapes: "single" (one
// /v1/maxssn point), "batch" (a 64-item /v1/maxssn batch), "columnar" (the
// same 64-row batch in the SSNC binary columnar format, request and
// response), "sweep" (a 256-point /v1/sweep stream), "solve" (one
// /v1/solve inverse query) and "impedance" (a 64-point /v1/impedance
// frequency sweep, alternating per request between the NDJSON stream and
// the SSNC block stream, both fully decoded client-side). Columnar and
// impedance requests time the client-side codec work separately, so the
// report splits wire-codec cost from the network-and-server remainder —
// the number that says whether the binary format's savings survive end to
// end.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssnkit/internal/colwire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssnload:", err)
		os.Exit(1)
	}
}

// shape is one request kind in the mix. Columnar shapes rebuild (and time)
// their SSNC body per request — the encode cost is part of what they
// measure — where JSON shapes reuse one static body.
type shape struct {
	name     string
	weight   int
	path     string
	body     []byte
	columnar bool
	// impedance marks the frequency-sweep shape: JSON request, response
	// alternating between NDJSON and SSNC streams, decoded client-side.
	impedance bool
}

// parseMix decodes -mix: "single=8,batch=1,sweep=1" (weights) or a bare
// shape name. Unknown names are rejected.
func parseMix(s string) ([]shape, error) {
	bodies := map[string]shape{
		"single": {name: "single", path: "/v1/maxssn",
			body: []byte(`{"params":{"n":8,"package":"pga","rise_time":1e-9}}`)},
		"batch":    {name: "batch", path: "/v1/maxssn", body: batchBody(64)},
		"columnar": {name: "columnar", path: "/v1/maxssn", columnar: true},
		"sweep": {name: "sweep", path: "/v1/sweep",
			body: []byte(`{"params":{"package":"pga","rise_time":1e-9},"axes":[{"axis":"n","from":1,"to":256,"points":256}]}`)},
		"solve": {name: "solve", path: "/v1/solve",
			body: []byte(`{"params":{"package":"pga","rise_time":1e-9,"n":1},"vmax_budget":0.3,"variable":"n"}`)},
		"impedance": {name: "impedance", path: "/v1/impedance", impedance: true,
			body: []byte(`{"rows":3,"cols":3,"pads":4,"points":64}`)},
	}
	var shapes []shape
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, "=")
		sh, ok := bodies[name]
		if !ok {
			return nil, fmt.Errorf("mix: unknown shape %q (single, batch, columnar, sweep, solve, impedance)", name)
		}
		sh.weight = 1
		if hasW {
			w, err := strconv.Atoi(wstr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("mix: bad weight %q for %s", wstr, name)
			}
			sh.weight = w
		}
		shapes = append(shapes, sh)
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("mix: empty")
	}
	return shapes, nil
}

// batchBody builds an n-item /v1/maxssn batch body.
func batchBody(n int) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"items":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, `{"n":%d,"package":"pga","rise_time":1e-9}`, 1+i)
	}
	buf.WriteString(`]}`)
	return buf.Bytes()
}

// columnarBody builds the SSNC equivalent of batchBody: shared params in
// the block meta, the per-row n values as one column.
func columnarBody(n int) ([]byte, error) {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(1 + i)
	}
	blk := &colwire.Block{
		Meta:    json.RawMessage(`{"params":{"package":"pga","rise_time":1e-9}}`),
		Columns: []colwire.Column{{Name: "n", Values: vals}},
	}
	return blk.Encode()
}

// hist is a log-bucketed latency histogram: bucket i spans
// [minLat*growth^i, minLat*growth^(i+1)). Quantiles interpolate within the
// winning bucket, which at 5% growth keeps the error under the bucket
// width — plenty for load-test numbers.
type hist struct {
	counts []uint64
	max    float64
	total  uint64
}

const (
	histMin    = 10e-6 // 10us floor
	histGrowth = 1.05
	histSize   = 400 // covers 10us .. ~3000s
)

func newHist() *hist { return &hist{counts: make([]uint64, histSize)} }

func (h *hist) add(sec float64) {
	h.total++
	if sec > h.max {
		h.max = sec
	}
	i := 0
	if sec > histMin {
		i = int(math.Log(sec/histMin) / math.Log(histGrowth))
		if i >= histSize {
			i = histSize - 1
		}
	}
	h.counts[i]++
}

func (h *hist) merge(o *hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the q-th latency quantile in seconds.
func (h *hist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			return histMin * math.Pow(histGrowth, float64(i)+0.5)
		}
	}
	return h.max
}

// workerStats is one goroutine's private tally, merged after the run.
type workerStats struct {
	lat     *hist
	ok      uint64
	shed    uint64 // 429s
	errs    uint64 // transport errors
	other   uint64 // non-200/429 statuses
	byShape map[string]uint64
	bytesIn uint64

	// Columnar codec accounting: time spent encoding SSNC requests and
	// decoding SSNC replies, against the total latency of those requests.
	colReqs    uint64
	colEncSec  float64
	colDecSec  float64
	colTotSec  float64
	colDecErrs uint64

	// Impedance sweep accounting: NDJSON vs SSNC response split, the
	// client-side decode time against total latency, and decoded points.
	impReqs    uint64
	impND      uint64
	impCol     uint64
	impDecSec  float64
	impTotSec  float64
	impDecErrs uint64
	impPoints  uint64
}

// columnarStats breaks the columnar shape's latency into the client-side
// codec cost (encode + decode) and everything else. CodecShare is
// (encode+decode)/total over the shape's completed requests.
type columnarStats struct {
	Requests      uint64  `json:"requests"`
	EncodeSeconds float64 `json:"encode_seconds"`
	DecodeSeconds float64 `json:"decode_seconds"`
	TotalSeconds  float64 `json:"total_seconds"`
	CodecShare    float64 `json:"codec_share"`
	DecodeErrors  uint64  `json:"decode_errors"`
}

// impedanceStats breaks the impedance shape's latency into client-side
// stream decode (NDJSON records or SSNC blocks) and everything else.
// DecodeShare is decode/total over the shape's completed requests.
type impedanceStats struct {
	Requests      uint64  `json:"requests"`
	NDJSON        uint64  `json:"ndjson"`
	Columnar      uint64  `json:"columnar"`
	Points        uint64  `json:"points"`
	DecodeSeconds float64 `json:"decode_seconds"`
	TotalSeconds  float64 `json:"total_seconds"`
	DecodeShare   float64 `json:"decode_share"`
	DecodeErrors  uint64  `json:"decode_errors"`
}

// report is the final result, printed as text or -json.
type report struct {
	Duration    float64           `json:"duration_seconds"`
	Concurrency int               `json:"concurrency"`
	Requests    uint64            `json:"requests"`
	OK          uint64            `json:"ok"`
	Shed        uint64            `json:"shed"`   // HTTP 429
	Errors      uint64            `json:"errors"` // transport failures
	Other       uint64            `json:"other"`  // unexpected statuses
	Throughput  float64           `json:"requests_per_sec"`
	ShedRate    float64           `json:"shed_rate"`
	P50         float64           `json:"p50_seconds"`
	P90         float64           `json:"p90_seconds"`
	P99         float64           `json:"p99_seconds"`
	Max         float64           `json:"max_seconds"`
	ByShape     map[string]uint64 `json:"by_shape"`
	BytesIn     uint64            `json:"bytes_read"`
	Columnar    *columnarStats    `json:"columnar,omitempty"`
	Impedance   *impedanceStats   `json:"impedance,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssnload", flag.ContinueOnError)
	var (
		url     = fs.String("url", "http://127.0.0.1:8350", "target ssnserve base URL")
		conc    = fs.Int("c", 8, "concurrent request loops")
		dur     = fs.Duration("d", 10*time.Second, "run duration")
		mixStr  = fs.String("mix", "single", "request mix: shape[=weight],... (single, batch, columnar, sweep, solve)")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request timeout")
		apiKey  = fs.String("api-key", "", "X-API-Key header (exercises per-client quotas)")
		asJSON  = fs.Bool("json", false, "emit the report as JSON")
		seed    = fs.Int64("seed", 1, "mix-selection seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *conc < 1 {
		return fmt.Errorf("-c must be at least 1")
	}
	shapes, err := parseMix(*mixStr)
	if err != nil {
		return err
	}
	// Expand weights into a pick table once; workers index it uniformly.
	var picks []shape
	for _, sh := range shapes {
		for i := 0; i < sh.weight; i++ {
			picks = append(picks, sh)
		}
	}
	base := strings.TrimSuffix(*url, "/")

	client := &http.Client{Timeout: *timeout, Transport: &http.Transport{
		MaxIdleConnsPerHost: *conc,
	}}
	ctx, cancel := context.WithTimeout(context.Background(), *dur)
	defer cancel()

	stats := make([]*workerStats, *conc)
	var wg sync.WaitGroup
	startAt := time.Now()
	for w := 0; w < *conc; w++ {
		st := &workerStats{lat: newHist(), byShape: map[string]uint64{}}
		stats[w] = st
		rng := rand.New(rand.NewSource(*seed + int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				sh := picks[rng.Intn(len(picks))]
				// The impedance shape alternates response encodings so one
				// run prices both stream decoders against the same server.
				impCol := sh.impedance && rng.Intn(2) == 0
				t0 := time.Now()
				body := sh.body
				var encSec float64
				if sh.columnar {
					// Rebuild the SSNC payload per request; the encode is
					// part of what the columnar shape measures.
					var err error
					body, err = columnarBody(64)
					if err != nil {
						st.errs++
						st.byShape[sh.name]++
						continue
					}
					encSec = time.Since(t0).Seconds()
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					base+sh.path, bytes.NewReader(body))
				if err != nil {
					st.errs++
					st.byShape[sh.name]++
					continue
				}
				if sh.columnar {
					req.Header.Set("Content-Type", colwire.ContentType)
					req.Header.Set("Accept", colwire.ContentType)
				} else {
					req.Header.Set("Content-Type", "application/json")
					if impCol {
						req.Header.Set("Accept", colwire.ContentType)
					}
				}
				if *apiKey != "" {
					req.Header.Set("X-API-Key", *apiKey)
				}
				resp, err := client.Do(req)
				if err != nil {
					// A request cut off by the run deadline is not a failure;
					// it is simply not counted.
					if ctx.Err() == nil {
						st.errs++
						st.byShape[sh.name]++
					}
					continue
				}
				st.byShape[sh.name]++
				if sh.columnar {
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					st.bytesIn += uint64(len(data))
					if resp.StatusCode == http.StatusOK {
						d0 := time.Now()
						blk, used, derr := colwire.Decode(data)
						if derr != nil || used != len(data) || blk.Rows() == 0 {
							st.colDecErrs++
						}
						st.colDecSec += time.Since(d0).Seconds()
					}
					sec := time.Since(t0).Seconds()
					st.lat.add(sec)
					st.colReqs++
					st.colEncSec += encSec
					st.colTotSec += sec
				} else if sh.impedance {
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					st.bytesIn += uint64(len(data))
					if resp.StatusCode == http.StatusOK {
						d0 := time.Now()
						pts, derr := decodeImpedance(data, impCol)
						st.impDecSec += time.Since(d0).Seconds()
						if derr != nil {
							st.impDecErrs++
						}
						st.impPoints += uint64(pts)
					}
					sec := time.Since(t0).Seconds()
					st.lat.add(sec)
					st.impReqs++
					st.impTotSec += sec
					if impCol {
						st.impCol++
					} else {
						st.impND++
					}
				} else {
					n, _ := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					st.bytesIn += uint64(n)
					st.lat.add(time.Since(t0).Seconds())
				}
				switch resp.StatusCode {
				case http.StatusOK:
					st.ok++
				case http.StatusTooManyRequests:
					st.shed++
				default:
					st.other++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(startAt).Seconds()

	merged := newHist()
	rep := report{Duration: elapsed, Concurrency: *conc, ByShape: map[string]uint64{}}
	var col columnarStats
	var imp impedanceStats
	for _, st := range stats {
		merged.merge(st.lat)
		rep.OK += st.ok
		rep.Shed += st.shed
		rep.Errors += st.errs
		rep.Other += st.other
		rep.BytesIn += st.bytesIn
		for k, v := range st.byShape {
			rep.ByShape[k] += v
		}
		col.Requests += st.colReqs
		col.EncodeSeconds += st.colEncSec
		col.DecodeSeconds += st.colDecSec
		col.TotalSeconds += st.colTotSec
		col.DecodeErrors += st.colDecErrs
		imp.Requests += st.impReqs
		imp.NDJSON += st.impND
		imp.Columnar += st.impCol
		imp.Points += st.impPoints
		imp.DecodeSeconds += st.impDecSec
		imp.TotalSeconds += st.impTotSec
		imp.DecodeErrors += st.impDecErrs
	}
	if col.Requests > 0 {
		if col.TotalSeconds > 0 {
			col.CodecShare = (col.EncodeSeconds + col.DecodeSeconds) / col.TotalSeconds
		}
		rep.Columnar = &col
	}
	if imp.Requests > 0 {
		if imp.TotalSeconds > 0 {
			imp.DecodeShare = imp.DecodeSeconds / imp.TotalSeconds
		}
		rep.Impedance = &imp
	}
	rep.Requests = rep.OK + rep.Shed + rep.Errors + rep.Other
	if elapsed > 0 {
		rep.Throughput = float64(rep.Requests) / elapsed
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	rep.P50 = merged.quantile(0.50)
	rep.P90 = merged.quantile(0.90)
	rep.P99 = merged.quantile(0.99)
	rep.Max = merged.max

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "ssnload: %s for %.1fs at c=%d\n", base, rep.Duration, rep.Concurrency)
	fmt.Fprintf(out, "  requests   %d (%.1f/s)\n", rep.Requests, rep.Throughput)
	fmt.Fprintf(out, "  ok         %d\n", rep.OK)
	fmt.Fprintf(out, "  shed (429) %d (%.1f%%)\n", rep.Shed, 100*rep.ShedRate)
	fmt.Fprintf(out, "  other      %d, transport errors %d\n", rep.Other, rep.Errors)
	fmt.Fprintf(out, "  latency    p50 %s  p90 %s  p99 %s  max %s\n",
		fmtLat(rep.P50), fmtLat(rep.P90), fmtLat(rep.P99), fmtLat(rep.Max))
	if rep.Columnar != nil {
		c := rep.Columnar
		n := float64(c.Requests)
		fmt.Fprintf(out, "  columnar   codec %.1f%% of latency (encode %s, decode %s per request)\n",
			100*c.CodecShare, fmtLat(c.EncodeSeconds/n), fmtLat(c.DecodeSeconds/n))
		if c.DecodeErrors > 0 {
			fmt.Fprintf(out, "  columnar   DECODE ERRORS %d\n", c.DecodeErrors)
		}
	}
	if rep.Impedance != nil {
		im := rep.Impedance
		fmt.Fprintf(out, "  impedance  %d sweeps (%d ndjson, %d ssnc), %d points, decode %.1f%% of latency\n",
			im.Requests, im.NDJSON, im.Columnar, im.Points, 100*im.DecodeShare)
		if im.DecodeErrors > 0 {
			fmt.Fprintf(out, "  impedance  DECODE ERRORS %d\n", im.DecodeErrors)
		}
	}
	names := make([]string, 0, len(rep.ByShape))
	for k := range rep.ByShape {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(out, "  mix %-7s %d\n", k, rep.ByShape[k])
	}
	return nil
}

// decodeImpedance fully decodes an impedance sweep response and verifies
// its terminal summary: an SSNC stream of row blocks ending in a zero-row
// meta block, or an NDJSON stream of point records ending in a done/stats
// line. It returns the number of decoded sweep points; the terminal
// summary must agree with that count.
func decodeImpedance(data []byte, columnar bool) (int, error) {
	type summary struct {
		Done  bool `json:"done"`
		Stats struct {
			Points int `json:"points"`
		} `json:"stats"`
	}
	rows := 0
	if columnar {
		var sum summary
		sawDone := false
		for off := 0; off < len(data); {
			blk, used, err := colwire.Decode(data[off:])
			if err != nil {
				return rows, err
			}
			off += used
			if sawDone {
				return rows, fmt.Errorf("data after the terminal block")
			}
			if blk.Rows() == 0 {
				if err := json.Unmarshal(blk.Meta, &sum); err != nil {
					return rows, err
				}
				sawDone = true
				continue
			}
			rows += blk.Rows()
		}
		if !sawDone || !sum.Done || sum.Stats.Points != rows {
			return rows, fmt.Errorf("bad terminal block: done=%t points=%d after %d rows",
				sum.Done, sum.Stats.Points, rows)
		}
		return rows, nil
	}
	var sum summary
	sawDone := false
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		if sawDone {
			return rows, fmt.Errorf("data after the summary record")
		}
		var rec struct {
			Freq float64 `json:"freq"`
			ZMag float64 `json:"z_mag"`
			summary
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return rows, err
		}
		if rec.Done {
			sum = rec.summary
			sawDone = true
			continue
		}
		rows++
	}
	if !sawDone || sum.Stats.Points != rows {
		return rows, fmt.Errorf("bad summary: done=%t points=%d after %d records",
			sawDone, sum.Stats.Points, rows)
	}
	return rows, nil
}

// fmtLat renders a latency with a sensible unit.
func fmtLat(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.1fms", sec*1e3)
	default:
		return fmt.Sprintf("%.0fus", sec*1e6)
	}
}
