// Command asdmfit fits the paper's application-specific device model to
// measured (or exported) I-V data: a CSV with columns vg, vs, id sampled in
// the SSN operating region (drain held at the supply). It prints the fitted
// K, V0 and a with goodness-of-fit statistics, optionally comparing an
// alpha-power fit on the vs = 0 slice.
//
// Usage:
//
//	asdmfit iv.csv
//	asdmfit -minfrac 0.1 -vdd 1.8 -alpha iv.csv
//
// Generate a demo CSV from a built-in process kit with -demo:
//
//	asdmfit -demo c018 > iv.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ssnkit/internal/device"
	"ssnkit/internal/fit"
	"ssnkit/internal/ssn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asdmfit:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asdmfit", flag.ContinueOnError)
	var (
		minFrac = fs.Float64("minfrac", 0.05, "discard samples below this fraction of the max current")
		vdd     = fs.Float64("vdd", 0, "supply voltage; enables the alpha-power comparison fit")
		doAlpha = fs.Bool("alpha", false, "also fit an alpha-power law to the vs=0 slice (needs -vdd)")
		demo    = fs.String("demo", "", "emit a demo I-V CSV for the named process kit and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *demo != "" {
		return writeDemo(out, *demo)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: asdmfit [flags] iv.csv (or -demo <kit>)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := readSamples(f)
	if err != nil {
		return err
	}

	m, stats, err := device.FitASDMSamples(samples, *minFrac)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "samples        %d (of which %d in the fitted region)\n", len(samples), stats.N)
	fmt.Fprintf(out, "fitted model   %v\n", m)
	fmt.Fprintf(out, "fit quality    R2 %.5f, RMSE %.4g A, worst rel %.2f%%\n",
		stats.R2, stats.RMSE, stats.MaxRel*100)
	if m.A <= 1 {
		fmt.Fprintf(out, "note: a <= 1 — check that vs spans the bounce range and the drain was held high\n")
	}

	if *doAlpha {
		if *vdd <= 0 {
			return fmt.Errorf("-alpha needs -vdd")
		}
		ap, apStats, err := fitAlphaSlice(samples, *vdd)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "alpha-power    B=%.4g Vt=%.4g alpha=%.4g  (vs=0 slice, R2 %.5f)\n",
			ap.B, ap.Vt, ap.Alpha, apStats.R2)
	}
	return nil
}

func readSamples(r io.Reader) ([]device.IVSample, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("empty CSV")
	}
	start := 0
	// Optional header row.
	if _, err := strconv.ParseFloat(recs[0][0], 64); err != nil {
		start = 1
	}
	var out []device.IVSample
	for i, rec := range recs[start:] {
		if len(rec) < 3 {
			return nil, fmt.Errorf("row %d: need vg,vs,id columns", i+start+1)
		}
		var s device.IVSample
		var errs [3]error
		s.Vg, errs[0] = strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		s.Vs, errs[1] = strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		s.Id, errs[2] = strconv.ParseFloat(strings.TrimSpace(rec[2]), 64)
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("row %d: %v", i+start+1, e)
			}
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	return out, nil
}

func fitAlphaSlice(samples []device.IVSample, vdd float64) (ssn.AlphaParams, fit.Stats, error) {
	// Reconstruct an Ids(vgs) table from the vs = 0 slice and reuse the
	// library's alpha-power extraction via a table-backed model.
	var vg, id []float64
	for _, s := range samples {
		if s.Vs == 0 {
			vg = append(vg, s.Vg)
			id = append(id, s.Id)
		}
	}
	if len(vg) < 4 {
		return ssn.AlphaParams{}, fit.Stats{}, fmt.Errorf("alpha fit needs at least 4 vs=0 samples")
	}
	tbl := &tableModel{vg: vg, id: id}
	b, vt, alpha, stats, err := device.ExtractAlphaPowerSat(tbl, vdd)
	if err != nil {
		return ssn.AlphaParams{}, fit.Stats{}, err
	}
	return ssn.AlphaParams{B: b, Vt: vt, Alpha: alpha}, stats, nil
}

// tableModel adapts a sampled Id(Vg) table to the device.Model interface
// (linear interpolation; only the saturation sweep is queried).
type tableModel struct {
	vg, id []float64
}

func (t *tableModel) Name() string { return "table" }

func (t *tableModel) Ids(vgs, vds, vbs float64) (float64, float64, float64, float64) {
	n := len(t.vg)
	if vgs <= t.vg[0] {
		return t.id[0], 0, 0, 0
	}
	if vgs >= t.vg[n-1] {
		return t.id[n-1], 0, 0, 0
	}
	for i := 1; i < n; i++ {
		if vgs <= t.vg[i] {
			f := (vgs - t.vg[i-1]) / (t.vg[i] - t.vg[i-1])
			return t.id[i-1] + f*(t.id[i]-t.id[i-1]), 0, 0, 0
		}
	}
	return t.id[n-1], 0, 0, 0
}

func writeDemo(out io.Writer, kit string) error {
	proc, err := device.ProcessByName(kit)
	if err != nil {
		return err
	}
	golden := proc.Driver(1)
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"vg", "vs", "id"}); err != nil {
		return err
	}
	for i := 0; i <= 30; i++ {
		vg := proc.Vdd * float64(i) / 30
		for j := 0; j <= 8; j++ {
			vs := 0.45 * proc.Vdd * float64(j) / 8
			id, _, _, _ := golden.Ids(vg-vs, proc.Vdd-vs, 0)
			err := cw.Write([]string{
				strconv.FormatFloat(vg, 'g', 6, 64),
				strconv.FormatFloat(vs, 'g', 6, 64),
				strconv.FormatFloat(id, 'g', 8, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
