package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDemoAndFitRoundTrip(t *testing.T) {
	var demo bytes.Buffer
	if err := run([]string{"-demo", "c018"}, &demo); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(demo.String(), "vg,vs,id") {
		t.Fatalf("demo header: %.30q", demo.String())
	}
	path := filepath.Join(t.TempDir(), "iv.csv")
	if err := os.WriteFile(path, demo.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fitted model", "ASDM{", "R2"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// The demo comes from the reference device; a must exceed 1.
	if strings.Contains(s, "a <= 1") {
		t.Error("unexpected a<=1 warning on reference data")
	}
}

func TestFitWithAlphaComparison(t *testing.T) {
	var demo bytes.Buffer
	if err := run([]string{"-demo", "c018"}, &demo); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "iv.csv")
	if err := os.WriteFile(path, demo.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-alpha", "-vdd", "1.8", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alpha-power") {
		t.Errorf("missing alpha-power fit:\n%s", out.String())
	}
}

func TestHeaderlessCSV(t *testing.T) {
	// Raw numbers without a header row must parse too.
	var demo bytes.Buffer
	if err := run([]string{"-demo", "c018"}, &demo); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(demo.String(), "\n", 2)
	path := filepath.Join(t.TempDir(), "iv.csv")
	if err := os.WriteFile(path, []byte(lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing file must error")
	}
	if err := run([]string{"/nonexistent.csv"}, &buf); err == nil {
		t.Error("unreadable file must error")
	}
	if err := run([]string{"-demo", "c0xx"}, &buf); err == nil {
		t.Error("unknown demo kit must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	os.WriteFile(bad, []byte("vg,vs\n1,2\n"), 0o644)
	if err := run([]string{bad}, &buf); err == nil {
		t.Error("short rows must error")
	}
	bad2 := filepath.Join(t.TempDir(), "bad2.csv")
	os.WriteFile(bad2, []byte("vg,vs,id\nx,y,z\n"), 0o644)
	if err := run([]string{bad2}, &buf); err == nil {
		t.Error("non-numeric rows must error")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	os.WriteFile(empty, []byte("vg,vs,id\n"), 0o644)
	if err := run([]string{empty}, &buf); err == nil {
		t.Error("no data rows must error")
	}
	// -alpha without -vdd
	var demo bytes.Buffer
	if err := run([]string{"-demo", "c018"}, &demo); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "iv.csv")
	os.WriteFile(p, demo.Bytes(), 0o644)
	if err := run([]string{"-alpha", p}, &buf); err == nil {
		t.Error("-alpha without -vdd must error")
	}
}
