// Command ssnsweep explores the SSN design space with the closed-form
// models: sweep one or more variables (drivers, inductance, capacitance,
// rise time or driver size) over a grid and print/export the maximum
// noise, the operating case and optional transistor-level verification per
// point. Evaluation runs on the internal/sweep engine: chunked, parallel
// (-workers) and optionally refined around Table 1 case boundaries
// (-refine).
//
// Usage:
//
//	ssnsweep -var n -from 4 -to 32 -step 4
//	ssnsweep -var c -from 0.5p -to 20p -points 9 -log
//	ssnsweep -var tr -from 0.2n -to 4n -points 8 -verify -o sweep.csv
//	ssnsweep -axis n=4:32:8 -axis l=1n:12n:6 -workers 8 -o grid.csv
//	ssnsweep -axis c=0.5p:40p:16:log -refine 3
//
// Fixed parameters mirror ssncalc (-process, -corner, -package, -pads, -n,
// -size, -tr, -l, -c).
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"ssnkit/internal/cliflags"
	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/serve"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
	"ssnkit/internal/sweep"
	"ssnkit/internal/textplot"
	"ssnkit/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssnsweep:", err)
		os.Exit(1)
	}
}

// row is one rendered sweep point: the axis values in grid order plus the
// evaluated outputs.
type row struct {
	vals   []float64
	vmax   float64
	cse    ssn.Case
	simMax float64 // NaN unless -verify
	depth  int
}

// parseAxis decodes one -axis flag: name=from:to:points[:log].
func parseAxis(s string) (sweep.Axis, error) {
	var a sweep.Axis
	name, rest, ok := strings.Cut(s, "=")
	if !ok {
		return a, fmt.Errorf("axis %q: want name=from:to:points[:log]", s)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return a, fmt.Errorf("axis %q: want name=from:to:points[:log]", s)
	}
	var err error
	if a.From, err = units.Parse(parts[0]); err != nil {
		return a, fmt.Errorf("axis %s: from: %w", name, err)
	}
	if a.To, err = units.Parse(parts[1]); err != nil {
		return a, fmt.Errorf("axis %s: to: %w", name, err)
	}
	if a.Points, err = strconv.Atoi(parts[2]); err != nil {
		return a, fmt.Errorf("axis %s: points: %w", name, err)
	}
	if len(parts) == 4 {
		if parts[3] != "log" {
			return a, fmt.Errorf("axis %s: unknown option %q (only \"log\")", name, parts[3])
		}
		a.Log = true
	}
	a.Name = name
	return a, nil
}

// legacyAxis reproduces the single-variable flag set of earlier releases:
// -var/-from/-to with -points (-log) or -step.
func legacyAxis(varName, fromStr, toStr, stepStr string, points int, logScale bool) (sweep.Axis, error) {
	var a sweep.Axis
	if fromStr == "" || toStr == "" {
		return a, fmt.Errorf("need -from and -to (or -axis)")
	}
	from, err := units.Parse(fromStr)
	if err != nil {
		return a, fmt.Errorf("-from: %w", err)
	}
	to, err := units.Parse(toStr)
	if err != nil {
		return a, fmt.Errorf("-to: %w", err)
	}
	if to <= from {
		return a, fmt.Errorf("-to must exceed -from")
	}
	a = sweep.Axis{Name: varName, From: from, To: to, Points: points, Log: logScale}
	switch {
	case points > 1:
		if logScale && from <= 0 {
			return a, fmt.Errorf("-log needs a positive -from")
		}
	case stepStr != "":
		step, err := units.Parse(stepStr)
		if err != nil || step <= 0 {
			return a, fmt.Errorf("-step: bad value %q", stepStr)
		}
		// Count the arithmetic series from..to and pin the axis to its
		// actual last sample, so linear spacing lands on from + i*step.
		cnt := 0
		for x := from; x <= to*(1+1e-12); x += step {
			cnt++
		}
		a.Points = cnt
		a.To = from + step*float64(cnt-1)
		a.Log = false
	default:
		return a, fmt.Errorf("need -points or -step")
	}
	return a, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssnsweep", flag.ContinueOnError)
	var axes []sweep.Axis
	fs.Func("axis", "swept axis name=from:to:points[:log] (repeatable; n, l, c, slope, tr, size)",
		func(s string) error {
			a, err := parseAxis(s)
			if err != nil {
				return err
			}
			axes = append(axes, a)
			return nil
		})
	var (
		varName  = fs.String("var", "n", "swept variable: n, l, c, tr, size (single-axis form)")
		fromStr  = fs.String("from", "", "sweep start (engineering notation)")
		toStr    = fs.String("to", "", "sweep end")
		stepStr  = fs.String("step", "", "linear step (alternative to -points)")
		points   = fs.Int("points", 0, "number of points (with -log: logarithmic spacing)")
		logScale = fs.Bool("log", false, "logarithmic spacing (needs -points)")
		verify   = fs.Bool("verify", false, "run a transistor-level simulation at every point")
		outPath  = fs.String("o", "", "write the sweep to this CSV file")
		workers  = fs.Int("workers", 0, "parallel evaluators (0 = GOMAXPROCS)")
		chunk    = fs.Int("chunk", 0, "grid points per unit of work (0 = 1024)")
		refine   = fs.Int("refine", 0, "adaptive refinement depth around case boundaries")
		loadStr  = fs.String("load", "20p", "per-driver load (verification only)")
	)
	fixed := cliflags.Register(fs, 16)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(axes) > 0 && (*fromStr != "" || *toStr != "") {
		return fmt.Errorf("use either -axis or -var/-from/-to, not both")
	}
	if len(axes) == 0 {
		a, err := legacyAxis(*varName, *fromStr, *toStr, *stepStr, *points, *logScale)
		if err != nil {
			return err
		}
		axes = []sweep.Axis{a}
	}
	r, err := fixed.Resolve()
	if err != nil {
		return err
	}
	load, err := units.Parse(*loadStr)
	if err != nil {
		return fmt.Errorf("-load: %w", err)
	}

	// The sweep engine pulls driver re-extraction through the same LRU the
	// HTTP service uses, so a size axis re-fits each width exactly once.
	cache := serve.NewExtractCache(64, nil)
	spec := device.ExtractSpec{Process: fixed.Process, Corner: r.Corner, Size: r.Size}
	baseDev, _, err := cache.Get(spec)
	if err != nil {
		return err
	}
	g := sweep.Grid{
		Base: ssn.Params{
			N: r.N, Dev: baseDev, Vdd: r.Proc.Vdd,
			Slope: r.Proc.Vdd / r.TR, L: r.Gnd.L, C: r.Gnd.C,
		},
		Axes: axes,
		Spec: spec,
	}
	cfg := sweep.Config{
		Workers:     *workers,
		ChunkSize:   *chunk,
		RefineDepth: *refine,
		Extract: func(s device.ExtractSpec) (device.ASDM, error) {
			m, _, err := cache.Get(s)
			return m, err
		},
	}

	sizeIdx := -1
	for k, a := range axes {
		if a.Name == sweep.AxisSize {
			sizeIdx = k
		}
	}
	var rows []row
	sink := func(pt sweep.Point) error {
		if pt.Err != nil {
			// CLI semantics: one bad point aborts the sweep with a located
			// error (the HTTP endpoint reports per-point errors in place).
			return fmt.Errorf("%s: %w", describePoint(axes, pt.Values), pt.Err)
		}
		// pt.Values is backed by a pooled chunk buffer and only valid for
		// the duration of this call; the row outlives it, so copy.
		rw := row{vals: append([]float64(nil), pt.Values...), vmax: pt.VMax, cse: pt.Case, simMax: math.NaN(), depth: pt.Depth}
		if *verify {
			size := r.Size
			if sizeIdx >= 0 {
				size = pt.Values[sizeIdx]
			}
			cfg := driver.ArrayConfig{
				Process: r.Proc, DriverSize: size, N: pt.Params.N, Load: load,
				Ground: pkgmodel.GroundNet{Pads: r.Pads, L: pt.Params.L, C: pt.Params.C},
				Rise:   pt.Params.Vdd / pt.Params.Slope, Merged: true,
			}
			res, err := driver.Simulate(cfg, spice.Options{}, 0, 0)
			if err != nil {
				return fmt.Errorf("verify %s: %w", describePoint(axes, pt.Values), err)
			}
			rw.simMax = res.MaxSSNWithinRamp()
		}
		rows = append(rows, rw)
		return nil
	}
	if _, err := sweep.Run(context.Background(), g, cfg, sink); err != nil {
		return err
	}
	if len(axes) == 1 {
		// Refined points arrive after the base grid; merge them into axis
		// order so tables and plots stay monotone.
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].vals[0] < rows[j].vals[0] })
	}

	render(out, axes, rows, r, *refine > 0)
	if *outPath != "" {
		if err := writeCSV(*outPath, axes, rows, *refine > 0); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nsweep written to %s\n", *outPath)
	}
	return nil
}

// describePoint labels a grid point for error messages: "n = 8, l = 2e-09".
func describePoint(axes []sweep.Axis, vals []float64) string {
	parts := make([]string, len(axes))
	for k, a := range axes {
		parts[k] = fmt.Sprintf("%s = %g", a.Name, vals[k])
	}
	return strings.Join(parts, ", ")
}

// render prints the header, the text plot (single-axis sweeps) and the
// result table.
func render(out io.Writer, axes []sweep.Axis, rows []row, r cliflags.Resolved, withDepth bool) {
	if len(axes) == 1 {
		fmt.Fprintf(out, "sweep of %s over [%g, %g] (%d points), %s/%s, N=%d, tr=%s\n\n",
			axes[0].Name, axes[0].From, axes[0].To, len(rows),
			r.Proc.Name, r.Pack.Name, r.N, units.Format(r.TR, "s"))
	} else {
		names := make([]string, len(axes))
		for k, a := range axes {
			names[k] = a.Name
		}
		fmt.Fprintf(out, "sweep of %s grid (%d points), %s/%s, N=%d, tr=%s\n\n",
			strings.Join(names, " x "), len(rows),
			r.Proc.Name, r.Pack.Name, r.N, units.Format(r.TR, "s"))
	}

	header := make([]string, 0, len(axes)+4)
	for _, a := range axes {
		header = append(header, a.Name)
	}
	header = append(header, "vmax (V)", "case", "sim (V)")
	if withDepth {
		header = append(header, "depth")
	}
	table := [][]string{header}
	var px, py, sy []float64
	for _, rw := range rows {
		cells := make([]string, 0, len(header))
		for _, v := range rw.vals {
			cells = append(cells, fmt.Sprintf("%.4g", v))
		}
		sim := "-"
		if !math.IsNaN(rw.simMax) {
			sim = fmt.Sprintf("%.4f", rw.simMax)
			sy = append(sy, rw.simMax)
		}
		cells = append(cells, fmt.Sprintf("%.4f", rw.vmax), rw.cse.String(), sim)
		if withDepth {
			cells = append(cells, strconv.Itoa(rw.depth))
		}
		table = append(table, cells)
		if len(axes) == 1 {
			px = append(px, rw.vals[0])
			py = append(py, rw.vmax)
		}
	}
	if len(axes) == 1 {
		series := []textplot.Series{{Name: "model", X: px, Y: py, Marker: '*'}}
		if len(sy) == len(px) {
			series = append(series, textplot.Series{Name: "sim", X: px, Y: sy, Marker: '.'})
		}
		fmt.Fprint(out, textplot.Plot("", series, 72, 16))
	}
	fmt.Fprint(out, textplot.Table(table))
}

// writeCSV exports the sweep, one row per point, axis columns first.
func writeCSV(path string, axes []sweep.Axis, rows []row, withDepth bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	header := make([]string, 0, len(axes)+4)
	for _, a := range axes {
		header = append(header, a.Name)
	}
	header = append(header, "vmax", "case", "sim")
	if withDepth {
		header = append(header, "depth")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, rw := range rows {
		cells := make([]string, 0, len(header))
		for _, v := range rw.vals {
			cells = append(cells, strconv.FormatFloat(v, 'g', 8, 64))
		}
		sim := ""
		if !math.IsNaN(rw.simMax) {
			sim = strconv.FormatFloat(rw.simMax, 'g', 8, 64)
		}
		cells = append(cells,
			strconv.FormatFloat(rw.vmax, 'g', 8, 64), rw.cse.String(), sim)
		if withDepth {
			cells = append(cells, strconv.Itoa(rw.depth))
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
