// Command ssnsweep explores the SSN design space with the closed-form
// models: sweep one variable (drivers, inductance, capacitance, rise time
// or driver size) over a range and print/export the maximum noise, the
// operating case and optional transistor-level verification per point.
//
// Usage:
//
//	ssnsweep -var n -from 4 -to 32 -step 4
//	ssnsweep -var c -from 0.5p -to 20p -points 9 -log
//	ssnsweep -var tr -from 0.2n -to 4n -points 8 -verify -o sweep.csv
//
// Fixed parameters mirror ssncalc (-process, -pads, -package, -n, -tr...).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/numeric"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
	"ssnkit/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssnsweep:", err)
		os.Exit(1)
	}
}

type point struct {
	x      float64
	vmax   float64
	cse    ssn.Case
	simMax float64 // NaN unless -verify
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssnsweep", flag.ContinueOnError)
	var (
		varName  = fs.String("var", "n", "swept variable: n, l, c, tr, size")
		fromStr  = fs.String("from", "", "sweep start (engineering notation)")
		toStr    = fs.String("to", "", "sweep end")
		stepStr  = fs.String("step", "", "linear step (alternative to -points)")
		points   = fs.Int("points", 0, "number of points (with -log: logarithmic spacing)")
		logScale = fs.Bool("log", false, "logarithmic spacing (needs -points)")
		verify   = fs.Bool("verify", false, "run a transistor-level simulation at every point")
		outPath  = fs.String("o", "", "write the sweep to this CSV file")

		procName = fs.String("process", "c018", "process kit")
		pkgName  = fs.String("package", "pga", "package class")
		pads     = fs.Int("pads", 1, "ground pads")
		n        = fs.Int("n", 16, "drivers (fixed value when not swept)")
		size     = fs.Float64("size", 1, "driver width multiple")
		trStr    = fs.String("tr", "1n", "rise time")
		loadStr  = fs.String("load", "20p", "per-driver load (verification only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fromStr == "" || *toStr == "" {
		return fmt.Errorf("need -from and -to")
	}
	from, err := units.Parse(*fromStr)
	if err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	to, err := units.Parse(*toStr)
	if err != nil {
		return fmt.Errorf("-to: %w", err)
	}
	if to <= from {
		return fmt.Errorf("-to must exceed -from")
	}

	proc, err := device.ProcessByName(*procName)
	if err != nil {
		return err
	}
	pack, err := pkgmodel.ByName(*pkgName)
	if err != nil {
		return err
	}
	tr, err := units.Parse(*trStr)
	if err != nil {
		return fmt.Errorf("-tr: %w", err)
	}
	load, err := units.Parse(*loadStr)
	if err != nil {
		return fmt.Errorf("-load: %w", err)
	}
	gnd := pack.Ground(*pads)
	baseSize := *size
	asdmCache := map[float64]device.ASDM{}
	asdmFor := func(sz float64) (device.ASDM, error) {
		if m, ok := asdmCache[sz]; ok {
			return m, nil
		}
		m, _, err := device.ExtractASDM(proc.Driver(sz), device.ExtractRegion{Vdd: proc.Vdd})
		if err != nil {
			return device.ASDM{}, err
		}
		asdmCache[sz] = m
		return m, nil
	}

	// Build the grid.
	var xs []float64
	switch {
	case *points > 1 && *logScale:
		if from <= 0 {
			return fmt.Errorf("-log needs a positive -from")
		}
		xs = numeric.Logspace(from, to, *points)
	case *points > 1:
		xs = numeric.Linspace(from, to, *points)
	case *stepStr != "":
		step, err := units.Parse(*stepStr)
		if err != nil || step <= 0 {
			return fmt.Errorf("-step: bad value %q", *stepStr)
		}
		for x := from; x <= to*(1+1e-12); x += step {
			xs = append(xs, x)
		}
	default:
		return fmt.Errorf("need -points or -step")
	}

	// Evaluate.
	var pts []point
	for _, x := range xs {
		cfgN, cfgTr, cfgSize := *n, tr, baseSize
		l, c := gnd.L, gnd.C
		switch *varName {
		case "n":
			cfgN = int(math.Round(x))
			if cfgN < 1 {
				cfgN = 1
			}
		case "l":
			l = x
		case "c":
			c = x
		case "tr":
			cfgTr = x
		case "size":
			cfgSize = x
		default:
			return fmt.Errorf("unknown -var %q (n, l, c, tr, size)", *varName)
		}
		asdm, err := asdmFor(cfgSize)
		if err != nil {
			return err
		}
		p := ssn.Params{
			N: cfgN, Dev: asdm, Vdd: proc.Vdd,
			Slope: proc.Vdd / cfgTr, L: l, C: c,
		}
		vmax, cse, err := ssn.MaxSSN(p)
		if err != nil {
			return fmt.Errorf("%s = %g: %w", *varName, x, err)
		}
		pt := point{x: x, vmax: vmax, cse: cse, simMax: math.NaN()}
		if *verify {
			cfg := driver.ArrayConfig{
				Process: proc, DriverSize: cfgSize, N: cfgN, Load: load,
				Ground: pkgmodel.GroundNet{Pads: *pads, L: l, C: c},
				Rise:   cfgTr, Merged: true,
			}
			res, err := driver.Simulate(cfg, spice.Options{}, 0, 0)
			if err != nil {
				return fmt.Errorf("verify %s = %g: %w", *varName, x, err)
			}
			pt.simMax = res.MaxSSNWithinRamp()
		}
		pts = append(pts, pt)
	}

	// Render.
	rows := [][]string{{*varName, "vmax (V)", "case", "sim (V)"}}
	var px, py, sy []float64
	for _, pt := range pts {
		sim := "-"
		if !math.IsNaN(pt.simMax) {
			sim = fmt.Sprintf("%.4f", pt.simMax)
			sy = append(sy, pt.simMax)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.4g", pt.x),
			fmt.Sprintf("%.4f", pt.vmax),
			pt.cse.String(),
			sim,
		})
		px = append(px, pt.x)
		py = append(py, pt.vmax)
	}
	fmt.Fprintf(out, "sweep of %s over [%g, %g] (%d points), %s/%s, N=%d, tr=%s\n\n",
		*varName, from, to, len(pts), proc.Name, pack.Name, *n, units.Format(tr, "s"))
	series := []textplot.Series{{Name: "model", X: px, Y: py, Marker: '*'}}
	if len(sy) == len(px) {
		series = append(series, textplot.Series{Name: "sim", X: px, Y: sy, Marker: '.'})
	}
	fmt.Fprint(out, textplot.Plot("", series, 72, 16))
	fmt.Fprint(out, textplot.Table(rows))

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		cw := csv.NewWriter(f)
		if err := cw.Write([]string{*varName, "vmax", "case", "sim"}); err != nil {
			return err
		}
		for _, pt := range pts {
			sim := ""
			if !math.IsNaN(pt.simMax) {
				sim = strconv.FormatFloat(pt.simMax, 'g', 8, 64)
			}
			err := cw.Write([]string{
				strconv.FormatFloat(pt.x, 'g', 8, 64),
				strconv.FormatFloat(pt.vmax, 'g', 8, 64),
				pt.cse.String(),
				sim,
			})
			if err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nsweep written to %s\n", *outPath)
	}
	return nil
}
