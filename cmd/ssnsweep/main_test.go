package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSweepDrivers(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-var", "n", "-from", "4", "-to", "16", "-step", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep of n") || !strings.Contains(out, "vmax") {
		t.Errorf("missing sweep output:\n%s", out)
	}
	// 4 points: 4, 8, 12, 16.
	if got := strings.Count(out, "over-damped") + strings.Count(out, "under-damped") + strings.Count(out, "critically"); got < 4 {
		t.Errorf("expected a case per point, saw %d", got)
	}
}

func TestSweepLogCapacitance(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-var", "c", "-from", "0.5p", "-to", "40p", "-points", "7", "-log"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The sweep must cross from over-damped into under-damped.
	if !strings.Contains(out, "over-damped") || !strings.Contains(out, "under-damped") {
		t.Errorf("capacitance sweep should cross regimes:\n%s", out)
	}
}

func TestSweepWithVerificationAndCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.csv")
	var buf bytes.Buffer
	err := run([]string{"-var", "n", "-from", "4", "-to", "12", "-step", "8",
		"-verify", "-o", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "n,vmax,case,sim") {
		t.Errorf("csv header: %.40q", s)
	}
	if strings.Count(s, "\n") != 3 { // header + 2 points
		t.Errorf("csv rows:\n%s", s)
	}
	// Verified column populated.
	if strings.Contains(s, ",\n") {
		t.Errorf("sim column empty despite -verify:\n%s", s)
	}
}

func TestSweepRiseTime(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-var", "tr", "-from", "0.5n", "-to", "4n", "-points", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sweep of tr") {
		t.Error("missing tr sweep")
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		nil,                        // missing from/to
		{"-from", "1", "-to", "2"}, // no step/points
		{"-var", "zz", "-from", "1", "-to", "2", "-points", "3"}, // bad var
		{"-from", "5", "-to", "2", "-points", "3"},               // reversed
		{"-from", "x", "-to", "2", "-points", "3"},               // bad value
		{"-from", "-1", "-to", "2", "-points", "3", "-log"},      // log with <=0
		{"-from", "1", "-to", "2", "-step", "bogus"},             // bad step
		{"-process", "c0xx", "-from", "1", "-to", "2", "-step", "1"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
