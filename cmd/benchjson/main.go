// Command benchjson turns `go test -bench` output into a stable JSON
// baseline and gates regressions against a committed one.
//
// Parse mode reads benchmark text on stdin and emits JSON:
//
//	go test -run XX -bench Transient -benchtime=100x -count=3 . | benchjson -parse > new.json
//
// Repeated counts of the same benchmark collapse to the minimum ns/op (the
// least-noise estimate); allocs/op is recorded alongside when the benchmark
// reports it (-benchmem or b.ReportAllocs). Batch benchmarks that report the
// custom "ns/point" metric (b.ReportMetric) additionally get ns_per_point
// and the derived points_per_op — the op size — so a baseline documents both
// how big one op is and what each point costs. Check mode compares a freshly
// parsed file against a committed baseline and exits nonzero when any shared
// benchmark runs slower than maxRatio times its baseline, or — for baseline
// entries carrying max_allocs_per_op — allocates more than that cap per op
// (allocation counts are deterministic, so the cap gates exactly; 0 pins a
// kernel to zero-allocation). Baselines with ns_per_point gate on the
// per-point ratio instead of the per-op one, so a kernel regression cannot
// hide behind (or be faked by) a change in op size:
//
//	benchjson -check new.json -against BENCH_spice.json -max-ratio 2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's record. SeedNsPerOp preserves the pre-optimization
// number when the baseline documents a before/after pair. AllocsPerOp is
// present when the benchmark reported allocations; MaxAllocsPerOp, set only
// in committed baselines, makes -check fail when the fresh run allocates
// more than the cap (0 = the benchmark must stay allocation-free).
// NsPerPoint carries the benchmark's custom "ns/point" metric for batch
// kernels, with PointsPerOp — the op size — derived from it; when a baseline
// has NsPerPoint, -check gates on the per-point ratio rather than the
// per-op one.
type Entry struct {
	NsPerOp        float64  `json:"ns_per_op"`
	SeedNsPerOp    float64  `json:"seed_ns_per_op,omitempty"`
	NsPerPoint     *float64 `json:"ns_per_point,omitempty"`
	PointsPerOp    *float64 `json:"points_per_op,omitempty"`
	AllocsPerOp    *float64 `json:"allocs_per_op,omitempty"`
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op,omitempty"`
}

// File is the schema shared by parsed output and the committed baseline.
type File struct {
	Note       string           `json:"note,omitempty"`
	Benchtime  string           `json:"benchtime,omitempty"`
	Count      int              `json:"count,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	parse := flag.Bool("parse", false, "read `go test -bench` text on stdin, write JSON to stdout")
	check := flag.String("check", "", "JSON `file` of fresh results to gate")
	against := flag.String("against", "BENCH_spice.json", "baseline JSON `file` for -check")
	maxRatio := flag.Float64("max-ratio", 2, "fail when fresh ns/op exceeds baseline by this factor")
	flag.Parse()

	switch {
	case *parse:
		if err := runParse(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	case *check != "":
		ok, err := runCheck(os.Stdout, *check, *against, *maxRatio)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runParse(in io.Reader, w io.Writer) error {
	out := File{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		name, ns, perPoint, allocs, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if e, seen := out.Benchmarks[name]; !seen || ns < e.NsPerOp {
			entry := Entry{NsPerOp: ns, AllocsPerOp: allocs}
			if perPoint != nil && *perPoint > 0 {
				entry.NsPerPoint = perPoint
				// The op size is a benchmark constant; round away the
				// float division so the baseline records it exactly.
				points := math.Round(ns / *perPoint)
				entry.PointsPerOp = &points
			}
			out.Benchmarks[name] = entry
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(out.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseBenchLine extracts (name, ns/op, ns/point, allocs/op) from one
// `go test -bench` line, e.g.
//
//	BenchmarkVMaxBatch-4   100   14205 ns/op   13.87 ns/point   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines transfer across runners.
// The ns/point and allocs pointers are nil when the line lacks that column.
func parseBenchLine(line string) (string, float64, *float64, *float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, nil, nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	ns, haveNs := 0.0, false
	var perPoint, allocs *float64
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			ns, haveNs = v, true
		case "ns/point":
			p := v
			perPoint = &p
		case "allocs/op":
			a := v
			allocs = &a
		}
	}
	if !haveNs {
		return "", 0, nil, nil, false
	}
	return name, ns, perPoint, allocs, true
}

func readFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func runCheck(w io.Writer, freshPath, basePath string, maxRatio float64) (bool, error) {
	fresh, err := readFile(freshPath)
	if err != nil {
		return false, err
	}
	base, err := readFile(basePath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		b := base.Benchmarks[name]
		f, seen := fresh.Benchmarks[name]
		if !seen {
			fmt.Fprintf(w, "SKIP %-40s not in fresh run\n", name)
			continue
		}
		// A baseline that records ns_per_point gates on it: the per-point
		// number is invariant under op-size changes, so a kernel regression
		// cannot hide behind a smaller batch (nor a rewrite pass the gate by
		// growing one). The fresh run must then report the metric too.
		switch {
		case b.NsPerPoint != nil && f.NsPerPoint == nil:
			fmt.Fprintf(w, "FAIL %-40s baseline has ns_per_point %g but the fresh run did not report ns/point\n",
				name, *b.NsPerPoint)
			ok = false
		case b.NsPerPoint != nil:
			ratio := *f.NsPerPoint / *b.NsPerPoint
			status := "ok  "
			if ratio > maxRatio {
				status = "FAIL"
				ok = false
			}
			fmt.Fprintf(w, "%s %-40s baseline %12.2f ns/point  fresh %12.2f ns/point  ratio %.2fx\n",
				status, name, *b.NsPerPoint, *f.NsPerPoint, ratio)
		default:
			ratio := f.NsPerOp / b.NsPerOp
			status := "ok  "
			if ratio > maxRatio {
				status = "FAIL"
				ok = false
			}
			fmt.Fprintf(w, "%s %-40s baseline %12.0f ns/op  fresh %12.0f ns/op  ratio %.2fx\n",
				status, name, b.NsPerOp, f.NsPerOp, ratio)
		}
		if b.MaxAllocsPerOp != nil {
			switch {
			case f.AllocsPerOp == nil:
				fmt.Fprintf(w, "FAIL %-40s baseline caps allocs at %g/op but the fresh run reported none (run with -benchmem)\n",
					name, *b.MaxAllocsPerOp)
				ok = false
			case *f.AllocsPerOp > *b.MaxAllocsPerOp:
				fmt.Fprintf(w, "FAIL %-40s allocs %g/op exceeds the %g/op cap\n",
					name, *f.AllocsPerOp, *b.MaxAllocsPerOp)
				ok = false
			default:
				fmt.Fprintf(w, "ok   %-40s allocs %g/op within the %g/op cap\n",
					name, *f.AllocsPerOp, *b.MaxAllocsPerOp)
			}
		}
	}
	if !ok {
		fmt.Fprintf(w, "benchjson: regression beyond %.1fx detected\n", maxRatio)
	}
	return ok, nil
}
