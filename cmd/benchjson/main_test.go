package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, ns, perPoint, allocs, ok := parseBenchLine(
		"BenchmarkVMaxBatch-4   100   14205 ns/op   13.87 ns/point   0 allocs/op")
	if !ok || name != "BenchmarkVMaxBatch" || ns != 14205 {
		t.Fatalf("parsed %q %v ok=%v", name, ns, ok)
	}
	if perPoint == nil || *perPoint != 13.87 {
		t.Errorf("ns/point = %v, want 13.87", perPoint)
	}
	if allocs == nil || *allocs != 0 {
		t.Errorf("allocs/op = %v, want 0", allocs)
	}

	name, ns, perPoint, allocs, ok = parseBenchLine(
		"BenchmarkTransientRLC-4   100   368764 ns/op   120 B/op   3 allocs/op")
	if !ok || name != "BenchmarkTransientRLC" || ns != 368764 || perPoint != nil ||
		allocs == nil || *allocs != 3 {
		t.Errorf("plain line: %q %v perPoint=%v allocs=%v ok=%v", name, ns, perPoint, allocs, ok)
	}

	for _, bad := range []string{"", "ok  \tssnkit 0.4s", "BenchmarkX-4 100"} {
		if _, _, _, _, ok := parseBenchLine(bad); ok {
			t.Errorf("parseBenchLine(%q) accepted", bad)
		}
	}
}

// TestRunParsePointsPerOp pins the derivation: ns_per_point travels into the
// JSON with the rounded op size, and repeated counts collapse to the min
// ns/op line together with its own per-point number.
func TestRunParsePointsPerOp(t *testing.T) {
	in := strings.Join([]string{
		"BenchmarkVMaxBatch-4   100   15000 ns/op   14.65 ns/point   0 allocs/op",
		"BenchmarkVMaxBatch-4   100   14205 ns/op   13.87 ns/point   0 allocs/op",
		"BenchmarkSolve-4   100   31011 ns/op   0 allocs/op",
	}, "\n")
	var buf bytes.Buffer
	if err := runParse(strings.NewReader(in), &buf); err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, buf.String())
	}
	e := f.Benchmarks["BenchmarkVMaxBatch"]
	if e.NsPerOp != 14205 || e.NsPerPoint == nil || *e.NsPerPoint != 13.87 {
		t.Fatalf("collapsed entry %+v", e)
	}
	if e.PointsPerOp == nil || *e.PointsPerOp != 1024 {
		t.Errorf("points_per_op = %v, want 1024", e.PointsPerOp)
	}
	if s := f.Benchmarks["BenchmarkSolve"]; s.NsPerPoint != nil || s.PointsPerOp != nil {
		t.Errorf("per-op benchmark grew point fields: %+v", s)
	}
}

// writeBench marshals a File into dir and returns its path.
func writeBench(t *testing.T, dir, name string, f File) string {
	t.Helper()
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fp(v float64) *float64 { return &v }

// TestRunCheckPerPoint exercises the gating matrix: per-point baselines gate
// on ns_per_point (so a halved op size with the same per-point cost passes,
// and a per-point regression fails even when ns/op improves), and a fresh
// run that dropped the metric fails outright.
func TestRunCheckPerPoint(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", File{Benchmarks: map[string]Entry{
		"BenchmarkBatch": {NsPerOp: 20000, NsPerPoint: fp(20), PointsPerOp: fp(1024)},
	}})

	cases := []struct {
		name  string
		fresh Entry
		ok    bool
		want  string
	}{
		{"same per-point, smaller op", Entry{NsPerOp: 10500, NsPerPoint: fp(20.5), PointsPerOp: fp(512)},
			true, "ns/point"},
		{"per-point regression behind better ns/op", Entry{NsPerOp: 15000, NsPerPoint: fp(60), PointsPerOp: fp(256)},
			false, "FAIL"},
		{"metric dropped", Entry{NsPerOp: 20000}, false, "did not report ns/point"},
	}
	for _, tc := range cases {
		fresh := writeBench(t, dir, "fresh.json", File{Benchmarks: map[string]Entry{
			"BenchmarkBatch": tc.fresh,
		}})
		var buf bytes.Buffer
		ok, err := runCheck(&buf, fresh, base, 2)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v\n%s", tc.name, ok, tc.ok, buf.String())
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", tc.name, tc.want, buf.String())
		}
	}
}

// TestRunCheckPerOpFallback keeps the original per-op gate for baselines
// without ns_per_point, including the alloc cap.
func TestRunCheckPerOpFallback(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", File{Benchmarks: map[string]Entry{
		"BenchmarkA": {NsPerOp: 1000, MaxAllocsPerOp: fp(0)},
	}})
	fresh := writeBench(t, dir, "fresh.json", File{Benchmarks: map[string]Entry{
		"BenchmarkA": {NsPerOp: 2500, AllocsPerOp: fp(1)},
	}})
	var buf bytes.Buffer
	ok, err := runCheck(&buf, fresh, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("check passed, want ns/op and alloc failures:\n%s", buf.String())
	}
	for _, want := range []string{"ratio 2.50x", "exceeds the 0/op cap"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
}
