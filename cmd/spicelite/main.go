// Command spicelite runs SPICE-like netlist decks on ssnkit's circuit
// simulator: DC operating point, DC sweeps and transient analysis.
//
// Usage:
//
//	spicelite deck.sp                 # run analyses, print results
//	spicelite -o out.csv deck.sp      # write transient waveforms to CSV
//	spicelite -probe 'v(out)' deck.sp # restrict printed columns
//
// See internal/circuit.Parse for the supported cards.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ssnkit/internal/circuit"
	"ssnkit/internal/spice"
	"ssnkit/internal/waveform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spicelite:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spicelite", flag.ContinueOnError)
	var (
		outPath = fs.String("o", "", "write transient/DC results to this CSV file")
		probes  = fs.String("probe", "", "comma-separated outputs to print (default: all)")
		maxRows = fs.Int("rows", 20, "max table rows to print per analysis")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: spicelite [flags] deck.sp")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	deck, err := circuit.Parse(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "deck: %s (%d elements, %d nodes)\n",
		orUntitled(deck.Circuit.Title), len(deck.Circuit.Elements), deck.Circuit.NumNodes())

	var wanted []string
	if *probes != "" {
		for _, p := range strings.Split(*probes, ",") {
			wanted = append(wanted, strings.ToLower(strings.TrimSpace(p)))
		}
	}
	keep := func(name string) bool {
		if len(wanted) == 0 {
			return true
		}
		for _, w := range wanted {
			if w == strings.ToLower(name) {
				return true
			}
		}
		return false
	}

	if deck.OP || (deck.Tran == nil && deck.DC == nil) {
		eng, err := spice.New(deck.Circuit, spice.Options{})
		if err != nil {
			return err
		}
		if err := eng.OperatingPoint(0); err != nil {
			return err
		}
		fmt.Fprintln(out, "\noperating point:")
		for _, name := range deck.Circuit.NodeNames()[1:] {
			if !keep("v(" + name + ")") {
				continue
			}
			v, _ := eng.NodeVoltage(name)
			fmt.Fprintf(out, "  v(%s) = %.6g\n", name, v)
		}
		if ops := eng.DeviceReport(); len(ops) > 0 {
			fmt.Fprintln(out, "\ndevice operating points:")
			fmt.Fprint(out, spice.FormatDeviceReport(ops))
		}
	}

	tran, dc, err := spice.Run(deck, spice.Options{})
	if err != nil {
		return err
	}
	if dc != nil {
		fmt.Fprintf(out, "\nDC sweep of %s (%d points):\n", deck.DC.Source, len(dc.SweptValues))
		printDC(out, deck.DC.Source, dc, keep, *maxRows)
	}
	if tran != nil {
		fmt.Fprintf(out, "\ntransient (%d timepoints):\n", tran.Waves[0].Len())
		printTran(out, tran, keep, *maxRows)
	}

	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		switch {
		case tran != nil:
			filtered := &waveform.Set{}
			for _, w := range tran.Waves {
				if keep(w.Name) {
					filtered.Add(w)
				}
			}
			if len(filtered.Waves) == 0 {
				filtered = tran
			}
			if err := filtered.WriteCSV(of); err != nil {
				return err
			}
		case dc != nil:
			if err := writeDCCSV(of, deck.DC.Source, dc); err != nil {
				return err
			}
		default:
			return fmt.Errorf("no analysis produced tabular output for -o")
		}
		fmt.Fprintf(out, "\nresults written to %s\n", *outPath)
	}
	return nil
}

func orUntitled(t string) string {
	if t == "" {
		return "(untitled)"
	}
	return t
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printDC(out io.Writer, src string, dc *spice.DCSweepResult, keep func(string) bool, maxRows int) {
	cols := []string{}
	for _, k := range sortedKeys(dc.Outputs) {
		if keep(k) {
			cols = append(cols, k)
		}
	}
	fmt.Fprintf(out, "  %-12s %s\n", src, strings.Join(cols, "  "))
	stride := 1
	if len(dc.SweptValues) > maxRows {
		stride = (len(dc.SweptValues) + maxRows - 1) / maxRows
	}
	for i := 0; i < len(dc.SweptValues); i += stride {
		row := fmt.Sprintf("  %-12.6g", dc.SweptValues[i])
		for _, c := range cols {
			row += fmt.Sprintf(" %12.6g", dc.Outputs[c][i])
		}
		fmt.Fprintln(out, row)
	}
}

func printTran(out io.Writer, set *waveform.Set, keep func(string) bool, maxRows int) {
	var cols []*waveform.Waveform
	for _, w := range set.Waves {
		if keep(w.Name) {
			cols = append(cols, w)
		}
	}
	if len(cols) == 0 {
		cols = set.Waves
	}
	header := "  time        "
	for _, w := range cols {
		header += fmt.Sprintf(" %12s", w.Name)
	}
	fmt.Fprintln(out, header)
	grid := cols[0].Times
	stride := 1
	if len(grid) > maxRows {
		stride = (len(grid) + maxRows - 1) / maxRows
	}
	for i := 0; i < len(grid); i += stride {
		row := fmt.Sprintf("  %-12.6g", grid[i])
		for _, w := range cols {
			row += fmt.Sprintf(" %12.6g", w.At(grid[i]))
		}
		fmt.Fprintln(out, row)
	}
}

func writeDCCSV(w io.Writer, src string, dc *spice.DCSweepResult) error {
	cols := sortedKeys(dc.Outputs)
	if _, err := fmt.Fprintf(w, "%s,%s\n", src, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, v := range dc.SweptValues {
		row := fmt.Sprintf("%g", v)
		for _, c := range cols {
			row += fmt.Sprintf(",%g", dc.Outputs[c][i])
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}
