package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDeck(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "deck.sp")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tranDeck = `rc lowpass
v1 in 0 pulse(0 1 0 1p 1p 10n 0)
r1 in out 1k
c1 out 0 1p
.tran 10p 5n
.end
`

const opDeck = `divider
v1 in 0 dc 10
r1 in mid 1k
r2 mid 0 3k
.op
.end
`

const dcDeck = `sweep
vin in 0 dc 0
r1 in out 1k
r2 out 0 1k
.dc vin 0 2 0.5
.end
`

func TestRunTransient(t *testing.T) {
	path := writeDeck(t, tranDeck)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "transient") || !strings.Contains(out, "v(out)") {
		t.Errorf("missing transient table:\n%s", out)
	}
}

func TestRunOperatingPoint(t *testing.T) {
	path := writeDeck(t, opDeck)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v(mid) = 7.5") {
		t.Errorf("missing OP result:\n%s", buf.String())
	}
}

func TestRunDCSweep(t *testing.T) {
	path := writeDeck(t, dcDeck)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DC sweep of vin (5 points)") {
		t.Errorf("missing DC sweep:\n%s", buf.String())
	}
}

func TestRunCSVOutput(t *testing.T) {
	path := writeDeck(t, tranDeck)
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var buf bytes.Buffer
	if err := run([]string{"-o", csvPath, path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,") {
		t.Errorf("csv header: %.40q", string(data))
	}
}

func TestRunDCCSVOutput(t *testing.T) {
	path := writeDeck(t, dcDeck)
	csvPath := filepath.Join(t.TempDir(), "dc.csv")
	var buf bytes.Buffer
	if err := run([]string{"-o", csvPath, path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "vin,") {
		t.Errorf("dc csv header: %.40q", string(data))
	}
}

func TestRunProbeFilter(t *testing.T) {
	path := writeDeck(t, tranDeck)
	var buf bytes.Buffer
	if err := run([]string{"-probe", "v(out)", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "i(v1)") {
		t.Errorf("probe filter leaked other columns:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing deck argument must error")
	}
	if err := run([]string{"/nonexistent/deck.sp"}, &buf); err == nil {
		t.Error("missing file must error")
	}
	bad := writeDeck(t, "t\nq1 a b c d\n.end\n")
	if err := run([]string{bad}, &buf); err == nil {
		t.Error("bad deck must error")
	}
}
