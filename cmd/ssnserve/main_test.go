package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ssnkit/internal/serve"
)

func TestParseConfig(t *testing.T) {
	cfg, drain, err := parseConfig([]string{
		"-addr", "127.0.0.1:9123", "-workers", "3", "-max-batch", "16",
		"-cache", "7", "-timeout", "5s", "-drain", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "127.0.0.1:9123" || cfg.Workers != 3 || cfg.MaxBatch != 16 ||
		cfg.CacheSize != 7 || cfg.RequestTimeout != 5*time.Second || drain != 2*time.Second {
		t.Errorf("config %+v drain %s", cfg, drain)
	}
	if _, _, err := parseConfig([]string{"-bogus"}); err == nil {
		t.Error("unknown flag must error")
	}
	if _, _, err := parseConfig([]string{"stray"}); err == nil {
		t.Error("positional arguments must error")
	}
}

// TestServerFromFlagsServes builds the server exactly as main does and
// exercises the two endpoints the CI smoke step hits.
func TestServerFromFlagsServes(t *testing.T) {
	cfg, _, err := parseConfig([]string{"-max-batch", "64"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(cfg).Handler())
	defer ts.Close()

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r.StatusCode)
	}

	body := `{"items":[{"process":"c018","n":16,"package":"pga","pads":2,"rise_time":1e-9},
	                   {"process":"c018","n":32,"package":"bga","pads":4,"rise_time":2e-9}]}`
	resp, err := http.Post(ts.URL+"/v1/maxssn", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maxssn status %d", resp.StatusCode)
	}
	var out struct {
		Count   int `json:"count"`
		Results []struct {
			VMax  float64         `json:"vmax"`
			Error json.RawMessage `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 || out.Results[0].VMax <= 0 || out.Results[1].VMax <= 0 {
		t.Errorf("batch response: %+v", out)
	}
}

// syncBuffer is a goroutine-safe log sink for the run loop under test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunGracefulSignal boots the real binary loop on a random port and
// stops it with SIGTERM, covering the signal/drain path end to end.
func TestRunGracefulSignal(t *testing.T) {
	// Keep the default SIGTERM action from killing the test process if
	// the signal lands before run registers its own handler.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	var log syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, &log)
	}()

	// Wait for the listener announcement, then signal ourselves.
	for i := 0; ; i++ {
		if strings.Contains(log.String(), "listening on") {
			break
		}
		if i > 1000 {
			t.Fatal("server never announced its listener")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let run reach signal.Notify
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v (log: %s)", err, log.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit on SIGTERM")
	}
	if !strings.Contains(log.String(), "drained cleanly") {
		t.Errorf("missing drain log: %s", log.String())
	}
}
