// Command ssnserve runs ssnkit's HTTP/JSON evaluation service: batch
// closed-form SSN evaluation, model waveforms and asynchronous Monte Carlo
// jobs, with an ASDM extraction cache and Prometheus metrics.
//
// Usage:
//
//	ssnserve                         # listen on :8350
//	ssnserve -addr 127.0.0.1:9000 -workers 8 -max-batch 4096
//
// Endpoints (see README "Running the service" for request bodies):
//
//	POST /v1/maxssn   POST /v1/waveform   POST /v1/sweep   POST /v1/montecarlo
//	GET  /v1/jobs/{id}   GET /healthz   GET /metrics
//
// With -pprof, the diagnostics surface /debug/pprof/ (net/http/pprof) and
// /debug/runtime (runtime/metrics snapshot) is also mounted. Profiles
// expose heap contents and symbol names — pass -pprof only when the
// listener is loopback or otherwise access-controlled, never on an
// address facing untrusted clients.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, then
// in-flight jobs drain for up to -drain before being cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssnkit/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ssnserve:", err)
		os.Exit(1)
	}
}

// parseConfig builds the service config and drain budget from flags.
func parseConfig(args []string) (serve.Config, time.Duration, error) {
	fs := flag.NewFlagSet("ssnserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8350", "listen address")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		maxBatch = fs.Int("max-batch", 8192, "max items per /v1/maxssn batch")
		cache    = fs.Int("cache", 64, "ASDM extraction cache entries")
		timeout  = fs.Duration("timeout", 30*time.Second, "synchronous request budget")
		maxBody  = fs.Int64("max-body", 8<<20, "request body cap in bytes")
		maxJobs  = fs.Int("max-jobs", 1024, "retained async job records")
		maxSweep = fs.Int("max-sweep-points", 1_000_000, "max grid points per /v1/sweep")
		maxConc  = fs.Int("max-concurrent", 0, "concurrently admitted eval requests (0 = 2x workers)")
		maxQueue = fs.Int("max-queue", 64, "requests allowed to wait for admission before 429")
		retryAft = fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		quotaRPS = fs.Float64("quota-rps", 0, "per-API-key request rate (0 = quotas off)")
		quotaBur = fs.Float64("quota-burst", 0, "per-API-key burst capacity (0 = 2x rate)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		pprof    = fs.Bool("pprof", false,
			"mount /debug/pprof/ and /debug/runtime (diagnostics; loopback listeners only)")
	)
	if err := fs.Parse(args); err != nil {
		return serve.Config{}, 0, err
	}
	if fs.NArg() > 0 {
		return serve.Config{}, 0, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := serve.Config{
		Addr:           *addr,
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		CacheSize:      *cache,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxJobs:        *maxJobs,
		MaxSweepPoints: *maxSweep,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		RetryAfter:     *retryAft,
		QuotaRPS:       *quotaRPS,
		QuotaBurst:     *quotaBur,
		EnablePprof:    *pprof,
	}
	return cfg, *drain, nil
}

func run(args []string, log io.Writer) error {
	cfg, drain, err := parseConfig(args)
	if err != nil {
		return err
	}
	s := serve.New(cfg)

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	fmt.Fprintf(log, "ssnserve: listening on %s\n", s.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case sig := <-sigc:
		fmt.Fprintf(log, "ssnserve: %v, draining (budget %s)\n", sig, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutdownErr := s.Shutdown(ctx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	fmt.Fprintln(log, "ssnserve: drained cleanly")
	return nil
}
