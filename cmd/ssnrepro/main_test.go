package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-fast", "-only", "fig1", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "==== fig1") {
		t.Errorf("missing fig1 section:\n%s", out)
	}
	if !strings.Contains(out, "claims hold") {
		t.Error("missing claims summary")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1.csv")); err != nil {
		t.Errorf("fig1.csv not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "records.md")); err != nil {
		t.Errorf("records.md not written: %v", err)
	}
}

func TestRunQuietMode(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-fast", "-only", "table1", "-quiet", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "====  table1 (") {
		t.Error("quiet mode should not render figures")
	}
	if !strings.Contains(buf.String(), "table1: done") {
		t.Errorf("quiet mode missing progress line:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fast", "-only", "fig9"}, &buf); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunUnknownProcess(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-process", "c007"}, &buf); err == nil {
		t.Error("unknown process must error")
	}
}

func TestRunAllFast(t *testing.T) {
	if testing.Short() {
		t.Skip("full fast run in -short mode")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "-out", dir}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	// All experiments produced CSVs.
	for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "table1", "ablation-a", "ablation-r", "ext-process", "ext-rail", "ext-delay", "ext-resonance"} {
		if _, err := os.Stat(filepath.Join(dir, name+".csv")); err != nil {
			t.Errorf("%s.csv missing: %v", name, err)
		}
	}
	if !strings.Contains(buf.String(), "/") || !strings.Contains(buf.String(), "claims hold") {
		t.Error("missing summary")
	}
}

func TestRunHTMLReport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-fast", "-only", "fig3", "-quiet", "-html", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "report.html"))
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "Paper vs. measured", "fig3"} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
