// Command ssnrepro regenerates every evaluation artifact of the paper
// (Figs. 1-4, Table 1) plus the ablations, prints terminal renditions,
// writes CSV data files, and emits the paper-vs-measured record table that
// EXPERIMENTS.md archives.
//
// Usage:
//
//	ssnrepro                 # run everything at full resolution
//	ssnrepro -fast           # CI resolution
//	ssnrepro -only fig3      # one experiment
//	ssnrepro -out out/       # CSV + records destination (default out/)
//	ssnrepro -process c025   # a different process kit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ssnkit/internal/device"
	"ssnkit/internal/experiments"
)

type runner struct {
	name string
	run  func(experiments.Context) (experiments.Result, error)
}

func allRunners() []runner {
	return []runner{
		{"fig1", func(c experiments.Context) (experiments.Result, error) { return experiments.Fig1(c) }},
		{"fig2", func(c experiments.Context) (experiments.Result, error) { return experiments.Fig2(c) }},
		{"fig3", func(c experiments.Context) (experiments.Result, error) { return experiments.Fig3(c) }},
		{"fig4", func(c experiments.Context) (experiments.Result, error) { return experiments.Fig4(c) }},
		{"table1", func(c experiments.Context) (experiments.Result, error) { return experiments.Table1(c) }},
		{"ablation-a", func(c experiments.Context) (experiments.Result, error) {
			return experiments.AblationDeviceModel(c)
		}},
		{"ablation-r", func(c experiments.Context) (experiments.Result, error) {
			return experiments.AblationResistance(c)
		}},
		{"ext-process", func(c experiments.Context) (experiments.Result, error) {
			return experiments.CrossProcess(c)
		}},
		{"ext-rail", func(c experiments.Context) (experiments.Result, error) {
			return experiments.Rail(c)
		}},
		{"ext-delay", func(c experiments.Context) (experiments.Result, error) {
			return experiments.Delay(c)
		}},
		{"ext-resonance", func(c experiments.Context) (experiments.Result, error) {
			return experiments.Resonance(c)
		}},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssnrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssnrepro", flag.ContinueOnError)
	var (
		fast     = fs.Bool("fast", false, "reduced-resolution run for CI")
		only     = fs.String("only", "", "run a single experiment (fig1..fig4, table1, ablation-a, ablation-r, ext-process, ext-rail, ext-delay, ext-resonance)")
		outDir   = fs.String("out", "out", "directory for CSV exports and records.md")
		procName = fs.String("process", "c018", "process kit")
		quiet    = fs.Bool("quiet", false, "suppress figure renditions; print records only")
		htmlOut  = fs.Bool("html", false, "also write an HTML report with SVG figures to <out>/report.html")
		workers  = fs.Int("workers", 0, "sweep-point parallelism; <=0 uses GOMAXPROCS, 1 forces serial (artifacts are byte-identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proc, err := device.ProcessByName(*procName)
	if err != nil {
		return err
	}
	ctx := experiments.Context{Process: proc, Fast: *fast, Workers: *workers}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var records []experiments.Record
	var sections []experiments.ReportSection
	ran := 0
	for _, r := range allRunners() {
		if *only != "" && r.name != *only {
			continue
		}
		ran++
		start := time.Now()
		res, err := r.run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		elapsed := time.Since(start)
		if !*quiet {
			fmt.Fprintf(out, "==== %s (%s) ====\n%s\n", r.name, elapsed.Round(time.Millisecond), res.Render())
		} else {
			fmt.Fprintf(out, "%s: done in %s\n", r.name, elapsed.Round(time.Millisecond))
		}
		csvPath := filepath.Join(*outDir, r.name+".csv")
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		records = append(records, res.Records()...)
		sec := experiments.ReportSection{
			Name: r.name, Text: res.Render(), Took: elapsed, Record: res.Records(),
		}
		if p, ok := res.(experiments.Plotter); ok {
			sec.SVG = p.SVG()
		}
		sections = append(sections, sec)
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}

	if *htmlOut {
		hf, err := os.Create(filepath.Join(*outDir, "report.html"))
		if err != nil {
			return err
		}
		title := fmt.Sprintf("ssnkit reproduction report — %s", proc.Name)
		if err := experiments.WriteHTMLReport(hf, title, sections); err != nil {
			hf.Close()
			return err
		}
		if err := hf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "HTML report written to %s\n", filepath.Join(*outDir, "report.html"))
	}

	table := experiments.FormatRecords(records)
	fmt.Fprintf(out, "\n==== paper-vs-measured ====\n%s", table)
	recPath := filepath.Join(*outDir, "records.md")
	if err := os.WriteFile(recPath, []byte(table), 0o644); err != nil {
		return err
	}
	fail := 0
	for _, r := range records {
		if !r.Pass {
			fail++
		}
	}
	fmt.Fprintf(out, "\n%d/%d claims hold; data in %s\n", len(records)-fail, len(records), *outDir)
	if fail > 0 {
		return fmt.Errorf("%d claims do not hold — see %s", fail, recPath)
	}
	return nil
}
