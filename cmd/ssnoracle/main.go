// Command ssnoracle runs the differential-verification campaign from
// internal/oracle: seeded random design points are evaluated with the
// Table 1 closed forms and re-simulated at transistor level with the exact
// ASDM device, and any disagreement outside the per-case tolerance band is
// shrunk to a minimal repro and dumped.
//
// Usage:
//
//	ssnoracle                         # 500 points, seed 1
//	ssnoracle -points 5000 -seed 7 -workers 8
//	ssnoracle -repros testdata/repros # dump shrunk disagreements here
//	ssnoracle -v                      # per-point log, not just the report
//
// Exit status is nonzero if any point disagrees (or errors), so the
// command slots directly into CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"ssnkit/internal/oracle"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssnoracle:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssnoracle", flag.ContinueOnError)
	fs.SetOutput(out)
	points := fs.Int("points", 500, "design points to check")
	seed := fs.Int64("seed", 1, "campaign seed (same seed = same points)")
	workers := fs.Int("workers", 0, "concurrent checkers (0 = GOMAXPROCS)")
	repros := fs.String("repros", "", "directory for shrunk .cir/.json repro dumps")
	verbose := fs.Bool("v", false, "log every checked point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := oracle.Config{
		Points:   *points,
		Seed:     *seed,
		Workers:  *workers,
		ReproDir: *repros,
	}
	if *verbose {
		for i := 0; i < cfg.Points; i++ {
			pt, ok := oracle.Generate(cfg.Seed, i)
			if !ok {
				fmt.Fprintf(out, "#%d GENERATOR EXHAUSTED\n", i)
				continue
			}
			res := oracle.Check(pt, cfg.Opts)
			res.Index = i
			fmt.Fprintf(out, "#%d %s\n", i, res)
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	rep, err := oracle.Run(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	if !rep.OK() {
		return fmt.Errorf("%d disagreement(s), %d error(s)", rep.Failed, rep.Errored)
	}
	return nil
}
