package main

import (
	"strings"
	"testing"
)

func TestRunSmallCampaign(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-points", "40", "-seed", "1"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "40 points, 40 pass, 0 fail") {
		t.Fatalf("unexpected report:\n%s", out.String())
	}
}

func TestRunVerboseLogsEveryPoint(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-points", "5", "-v"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"#0 ", "#4 "} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("verbose output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"extra"}, &out); err == nil {
		t.Fatal("positional argument accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
