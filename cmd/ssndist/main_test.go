package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// distArgs is a small two-axis sweep (8x9 = 72 points) used across tests.
func distArgs(extra ...string) []string {
	args := []string{
		"-axis", "n=1:64:8",
		"-axis", "l=0.5n:8n:9",
		"-shard-points", "16",
		"-q",
	}
	return append(args, extra...)
}

// TestRunInProcessDeterministic pins the CLI's core contract: the merged
// stream is the same bytes whether written to stdout or -o, and a -resume
// rerun over a complete checkpoint replays every shard byte-identically.
func TestRunInProcessDeterministic(t *testing.T) {
	var direct bytes.Buffer
	if err := run(distArgs(), &direct, os.Stderr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(direct.String(), "\n")
	if lines != 72 {
		t.Fatalf("%d output lines, want 72", lines)
	}

	dir := t.TempDir()
	outPath := filepath.Join(dir, "sweep.ndjson")
	ckpt := filepath.Join(dir, "ckpt")
	var sink bytes.Buffer
	if err := run(distArgs("-o", outPath, "-checkpoint", ckpt), &sink, os.Stderr); err != nil {
		t.Fatal(err)
	}
	fromFile, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), fromFile) {
		t.Fatal("-o output differs from the direct stream")
	}

	// Resume over the finished checkpoint: all shards replay, same bytes,
	// and the summary reports the reuse.
	var resumed, stderr bytes.Buffer
	args := []string{"-axis", "n=1:64:8", "-axis", "l=0.5n:8n:9",
		"-shard-points", "16", "-checkpoint", ckpt, "-resume"}
	if err := run(args, &resumed, &stderr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), resumed.Bytes()) {
		t.Fatal("resumed stream differs from the original")
	}
	if !strings.Contains(stderr.String(), "(5 reused") {
		t.Errorf("summary should report 5 reused shards: %s", stderr.String())
	}
}

// TestResumeRejectsChangedGrid pins the fingerprint check end to end: a
// checkpoint written under one grid must not resume under another.
func TestResumeRejectsChangedGrid(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	var buf bytes.Buffer
	if err := run(distArgs("-checkpoint", ckpt), &buf, os.Stderr); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	args := []string{"-axis", "n=1:128:8", "-shard-points", "16", "-q",
		"-checkpoint", ckpt, "-resume"}
	if err := run(args, &buf, os.Stderr); err == nil {
		t.Fatal("resume under a different grid succeeded")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no axes", []string{"-q"}},
		{"resume without checkpoint", distArgs("-resume")},
		{"positional args", distArgs("stray")},
		{"bad axis syntax", []string{"-axis", "n=1:64", "-q"}},
		{"bad axis points", []string{"-axis", "n=1:64:many", "-q"}},
		{"unknown axis option", []string{"-axis", "n=1:64:8:banana", "-q"}},
		{"domain violation", []string{"-axis", "l=0:4n:8", "-q"}},
		{"unknown axis name", []string{"-axis", "zz=1:2:3", "-q"}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := run(tc.args, &buf, &buf); err == nil {
			t.Errorf("%s: run succeeded, want error", tc.name)
		}
	}
}

func TestParseAxis(t *testing.T) {
	a, err := parseAxis("l=1n:12n:64:log")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "l" || a.Points != 64 || !a.Log ||
		math.Abs(a.From-1e-9) > 1e-15 || math.Abs(a.To-12e-9) > 1e-15 {
		t.Errorf("parsed %+v", a)
	}
	if a, err := parseAxis("n=1:512:512"); err != nil || a.Log {
		t.Errorf("linear axis: %+v, %v", a, err)
	}
}
