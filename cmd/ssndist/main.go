// Command ssndist runs a distributed design-space sweep: the grid is cut
// into deterministic shards, shards fan out to ssnserve worker replicas
// (POST /v1/shard) with retry and failover, completed shards are
// checkpointed to disk, and the merged NDJSON stream — byte-identical to a
// single-process sweep of the same spec — goes to stdout or -o.
//
// Usage:
//
//	ssndist -axis n=1:512:512 -axis l=1n:12n:64            # in-process
//	ssndist -axis n=1:4096:4096 \
//	    -workers http://10.0.0.2:8350,http://10.0.0.3:8350 \
//	    -checkpoint /tmp/ssn.ckpt -o sweep.ndjson
//	ssndist ... -checkpoint /tmp/ssn.ckpt -resume           # after a crash
//
// A killed coordinator restarted with -resume replays committed shards from
// the checkpoint and recomputes only the remainder; the output bytes are
// identical either way. Fixed parameters mirror ssnsweep (-process,
// -corner, -package, -pads, -n, -size, -tr, -l, -c).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ssnkit/internal/cliflags"
	"ssnkit/internal/device"
	"ssnkit/internal/dist"
	"ssnkit/internal/dist/store"
	"ssnkit/internal/serve"
	"ssnkit/internal/sweep"
	"ssnkit/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ssndist:", err)
		os.Exit(1)
	}
}

// parseAxis decodes one -axis flag: name=from:to:points[:log].
func parseAxis(s string) (dist.Axis, error) {
	var a dist.Axis
	name, rest, ok := strings.Cut(s, "=")
	if !ok {
		return a, fmt.Errorf("axis %q: want name=from:to:points[:log]", s)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return a, fmt.Errorf("axis %q: want name=from:to:points[:log]", s)
	}
	var err error
	if a.From, err = units.Parse(parts[0]); err != nil {
		return a, fmt.Errorf("axis %s: from: %w", name, err)
	}
	if a.To, err = units.Parse(parts[1]); err != nil {
		return a, fmt.Errorf("axis %s: to: %w", name, err)
	}
	if _, err = fmt.Sscanf(parts[2], "%d", &a.Points); err != nil {
		return a, fmt.Errorf("axis %s: points: %w", name, err)
	}
	if len(parts) == 4 {
		if parts[3] != "log" {
			return a, fmt.Errorf("axis %s: unknown option %q (only \"log\")", name, parts[3])
		}
		a.Log = true
	}
	a.Name = name
	return a, nil
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ssndist", flag.ContinueOnError)
	var axes []dist.Axis
	fs.Func("axis", "swept axis name=from:to:points[:log] (repeatable; n, l, c, slope, tr, size)",
		func(s string) error {
			a, err := parseAxis(s)
			if err != nil {
				return err
			}
			axes = append(axes, a)
			return nil
		})
	var (
		workersStr  = fs.String("workers", "", "comma-separated ssnserve replica URLs (empty = in-process)")
		checkpoint  = fs.String("checkpoint", "", "checkpoint store directory (empty = no checkpointing)")
		resume      = fs.Bool("resume", false, "replay an existing checkpoint instead of starting fresh")
		shardPoints = fs.Int("shard-points", 0, "grid points per shard (0 = 4096)")
		timeout     = fs.Duration("timeout", 0, "per-shard HTTP attempt budget (0 = 120s)")
		retries     = fs.Int("retries", 0, "attempt budget per shard (0 = max(4, 2x workers))")
		inflight    = fs.Int("inflight", 0, "concurrent shards per replica (0 = 2; in-process: GOMAXPROCS)")
		apiKey      = fs.String("api-key", "", "X-API-Key sent to replicas (per-client quotas)")
		outPath     = fs.String("o", "", "write the merged NDJSON here (default stdout)")
		quiet       = fs.Bool("q", false, "suppress the progress ticker on stderr")
	)
	fixed := cliflags.Register(fs, 16)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if len(axes) == 0 {
		return fmt.Errorf("need at least one -axis")
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	r, err := fixed.Resolve()
	if err != nil {
		return err
	}

	// Resolve the base device once; a size axis re-extracts per width
	// through the same LRU the HTTP service uses.
	cache := serve.NewExtractCache(64, nil)
	espec := device.ExtractSpec{Process: fixed.Process, Corner: r.Corner, Size: r.Size}
	baseDev, _, err := cache.Get(espec)
	if err != nil {
		return err
	}
	spec := dist.SweepSpec{
		Base: dist.BaseParams{
			N: r.N, K: baseDev.K, V0: baseDev.V0, A: baseDev.A,
			Vdd: r.Proc.Vdd, Slope: r.Proc.Vdd / r.TR, L: r.Gnd.L, C: r.Gnd.C,
		},
		Axes:        axes,
		ShardPoints: *shardPoints,
	}
	for _, a := range axes {
		if a.Name == sweep.AxisSize {
			spec.Extract = &dist.Extract{Process: fixed.Process, Corner: fixed.Corner}
		}
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	var workers []string
	if *workersStr != "" {
		for _, u := range strings.Split(*workersStr, ",") {
			if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
				workers = append(workers, u)
			}
		}
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}

	// SIGINT/SIGTERM cancel the run; with -checkpoint the committed shards
	// survive and a -resume rerun picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := dist.Options{
		Workers:        workers,
		Checkpoint:     *checkpoint,
		Resume:         *resume,
		RequestTimeout: *timeout,
		Retries:        *retries,
		InFlight:       *inflight,
		APIKey:         *apiKey,
		Eval: dist.EvalConfig{Extract: func(s device.ExtractSpec) (device.ASDM, error) {
			m, _, err := cache.Get(s)
			return m, err
		}},
	}
	if !*quiet {
		last := time.Now()
		opts.Progress = func(p dist.Progress) {
			if now := time.Now(); p.Done || now.Sub(last) >= time.Second {
				last = now
				fmt.Fprintf(errw, "ssndist: %d/%d shards (%d reused), %d/%d points, %.0f points/s, %d retries\n",
					p.ShardsDone, p.ShardsTotal, p.ShardsReused,
					p.PointsDone, p.PointsTotal, p.PointsPerSec, p.Retries)
			}
		}
	}

	summary, err := dist.Run(ctx, spec, opts, w)
	if err != nil {
		if *checkpoint != "" && !errors.Is(err, store.ErrFingerprint) {
			fmt.Fprintf(errw, "ssndist: aborted; rerun with -resume to continue from the checkpoint\n")
		}
		return err
	}
	if !*quiet {
		fmt.Fprintf(errw, "ssndist: done: %d points in %d shards (%d reused, %d retries) in %s\n",
			summary.Points, summary.Shards, summary.Reused, summary.Retries,
			summary.Duration.Round(time.Millisecond))
	}
	return nil
}
