// Command ssncalc estimates the maximum simultaneous switching noise of an
// output-driver bus from closed-form models, without running a transient
// simulation. It is the paper's Table 1 as a tool.
//
// Usage:
//
//	ssncalc -process c018 -n 16 -package pga -pads 2 -tr 1n
//	ssncalc -n 16 -l 2.5n -c 2p -tr 1n            # explicit ground net
//	ssncalc -n 16 -tr 1n -budget 0.4              # design guidance
//	ssncalc -n 16 -tr 1n -csv wave.csv            # dump the model waveform
//	ssncalc -impedance -rows 4 -cols 4 -pads 4    # PDN |Z(f)| profile
//	ssncalc -impedance -optimize-decaps 4         # + greedy decap placement
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"ssnkit/internal/cliflags"
	"ssnkit/internal/device"
	"ssnkit/internal/pdn"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
	"ssnkit/internal/units"
	"ssnkit/internal/waveform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssncalc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssncalc", flag.ContinueOnError)
	var (
		budget  = fs.Float64("budget", 0, "optional noise budget in volts: print design guidance")
		csvPath = fs.String("csv", "", "write the model SSN waveform to this CSV file")
		mc      = fs.Int("mc", 0, "Monte Carlo samples over typical process spreads (0 = off)")
		solve   = fs.String("solve", "", "inverse design: solve this variable (n, l, c, slope, rise_time) for -budget")
		yield   = fs.Int("yield", 0, "yield samples: Monte Carlo pass probability against -budget (0 = off)")
		vil     = fs.Float64("vil", 0, "receiver VIL in volts: check the quiet-output glitch margin")
		rail    = fs.Bool("rail", false, "analyze power-rail droop (pull-up drivers) instead of ground bounce")

		impedance = fs.Bool("impedance", false, "frequency-domain PDN impedance analysis of the package grid")
		rows      = fs.Int("rows", 4, "impedance: PDN mesh rows")
		cols      = fs.Int("cols", 4, "impedance: PDN mesh columns")
		fstart    = fs.Float64("fstart", 1e6, "impedance: sweep start frequency, Hz")
		fstop     = fs.Float64("fstop", 1e10, "impedance: sweep stop frequency, Hz")
		fpoints   = fs.Int("fpoints", 100, "impedance: log-spaced frequency points")
		optDecaps = fs.Int("optimize-decaps", 0, "impedance: greedily place up to this many decaps (0 = off)")
	)
	fixed := cliflags.Register(fs, 8)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := fixed.Resolve()
	if err != nil {
		return err
	}
	if *impedance {
		return runImpedance(out, r, *rows, *cols, *fstart, *fstop, *fpoints, *optDecaps, *csvPath)
	}
	proc, pack, gnd, tr := r.Proc, r.Pack, r.Gnd, r.TR
	n, size := &r.N, &r.Size

	golden := proc.Driver(*size)
	if *rail {
		golden = proc.PullUpDriver(*size)
	}
	asdm, stats, err := device.ExtractASDM(golden, device.ExtractRegion{Vdd: proc.Vdd})
	if err != nil {
		return err
	}
	p := ssn.Params{
		N: *n, Dev: asdm, Vdd: proc.Vdd,
		Slope: proc.Vdd / tr, L: gnd.L, C: gnd.C,
	}
	m, err := ssn.NewLCModel(p)
	if err != nil {
		return err
	}
	lm, err := ssn.NewLModel(p)
	if err != nil {
		return err
	}

	kind := "ground bounce (pull-down drivers)"
	if *rail {
		kind = "power-rail droop (pull-up drivers)"
	}
	fmt.Fprintf(out, "analysis       %s\n", kind)
	fmt.Fprintf(out, "process        %s (Vdd = %s)\n", proc.Name, units.Format(proc.Vdd, "V"))
	fmt.Fprintf(out, "device model   %v  (fit R2 %.4f)\n", asdm, stats.R2)
	fmt.Fprintf(out, "ground net     %s\n", gnd)
	fmt.Fprintf(out, "input edge     %s rise (slope %s)\n", units.Format(tr, "s"), units.Format(p.Slope, "V/s"))
	fmt.Fprintf(out, "beta (N*L*K*s) %s\n", units.Format(p.Beta(), "V"))
	fmt.Fprintf(out, "critical cap   %s (ground net has %s)\n",
		units.Format(p.CriticalCapacitance(), "F"), units.Format(gnd.C, "F"))
	fmt.Fprintf(out, "damping        zeta = %.3f -> %s\n", p.DampingRatio(), m.Case())
	fmt.Fprintf(out, "max SSN        %s at tau = %s after device turn-on\n",
		units.Format(m.VMax(), "V"), units.Format(m.VMaxTime(), "s"))
	fmt.Fprintf(out, "L-only formula %s (error vs L+C: %+.1f%%)\n",
		units.Format(lm.VMax(), "V"), (lm.VMax()/m.VMax()-1)*100)

	if *budget > 0 {
		fmt.Fprintf(out, "\ndesign guidance for a %s budget:\n", units.Format(*budget, "V"))
		if nmax, err := ssn.MaxDriversForBudget(p, *budget, 4096); err == nil {
			fmt.Fprintf(out, "  max simultaneous drivers at this edge rate: %d\n", nmax)
		}
		if trMin, err := ssn.MinRiseTimeForBudget(p, *budget, tr/100, tr*100); err == nil {
			fmt.Fprintf(out, "  fastest edge at N=%d: %s\n", *n, units.Format(trMin, "s"))
		} else {
			fmt.Fprintf(out, "  fastest edge at N=%d: %v\n", *n, err)
		}
		if lmax, err := ssn.InductanceBudget(p, *budget, gnd.L/100, gnd.L*100); err == nil {
			needPads := int(pack.Pin.L/lmax + 0.999999)
			if needPads < 1 {
				needPads = 1
			}
			fmt.Fprintf(out, "  max ground inductance at N=%d: %s (~%d %s pads)\n",
				*n, units.Format(lmax, "H"), needPads, pack.Name)
		} else {
			fmt.Fprintf(out, "  max ground inductance at N=%d: %v\n", *n, err)
		}
	}

	if *solve != "" {
		if *budget <= 0 {
			return fmt.Errorf("-solve requires -budget > 0")
		}
		v, err := ssn.ParseSolveVar(*solve)
		if err != nil {
			return err
		}
		sol, err := ssn.Solve(p, v, *budget)
		if err != nil {
			return err
		}
		unit := map[ssn.SolveVar]string{
			ssn.SolveL: "H", ssn.SolveC: "F", ssn.SolveSlope: "V/s", ssn.SolveRiseTime: "s",
		}[v]
		fmt.Fprintf(out, "\ninverse design for a %s budget:\n", units.Format(*budget, "V"))
		if v == ssn.SolveN {
			fmt.Fprintf(out, "  boundary %s = %.3f (max %d simultaneous drivers)\n",
				v, sol.Value, sol.MaxDrivers())
		} else {
			fmt.Fprintf(out, "  boundary %s = %s\n", v, units.Format(sol.Value, unit))
		}
		fmt.Fprintf(out, "  vmax there %s (%s), %d model evaluations\n",
			units.Format(sol.VMax, "V"), sol.Case, sol.Evals)
	}

	if *yield > 0 {
		if *budget <= 0 {
			return fmt.Errorf("-yield requires -budget > 0")
		}
		y, err := ssn.Yield(p, ssn.Variation{K: 0.05, V0: 0.03, A: 0.02},
			*budget, *yield, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nyield against the %s budget: %.1f%% (95%% interval %.1f%% .. %.1f%%, %d/%d pass)\n",
			units.Format(*budget, "V"), y.Probability*100, y.WilsonLo*100, y.WilsonHi*100, y.Pass, y.Samples)
	}

	if *mc > 0 {
		r, err := ssn.MonteCarlo(p, ssn.Variation{
			K: 0.05, V0: 0.03, A: 0.02, L: 0.10, C: 0.08, Slope: 0.07,
		}, *mc, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmonte carlo (typical spreads): %v\n", r)
	}

	if *vil > 0 {
		if *rail {
			return fmt.Errorf("-vil applies to ground-bounce analysis only")
		}
		ron := device.TriodeResistance(golden, proc.Vdd, 0)
		v, err := ssn.NewVictim(p, ron, 20e-12)
		if err != nil {
			return err
		}
		glitch, atten, err := v.PeakGlitch()
		if err != nil {
			return err
		}
		ok, headroom, err := v.NoiseMarginOK(*vil, 0.1)
		if err != nil {
			return err
		}
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Fprintf(out, "\nquiet-output glitch: %s (%.0f%% of the bounce); VIL %s with 10%% margin: %s (headroom %s)\n",
			units.Format(glitch, "V"), atten*100, units.Format(*vil, "V"), verdict, units.Format(headroom, "V"))
	}

	if *csvPath != "" {
		v, i, err := m.Waveforms(0, 512)
		if err != nil {
			return err
		}
		if err := writeWaveCSV(*csvPath, v, i); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmodel waveform written to %s\n", *csvPath)
	}
	return nil
}

func writeWaveCSV(path string, v, i *waveform.Waveform) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	set := waveform.Set{}
	set.Add(v)
	set.Add(i)
	return set.WriteCSV(f)
}

// runImpedance is the -impedance mode: sweep the package-class PDN grid's
// input impedance over a log frequency axis, report the profile's peak
// (the anti-resonance SSN couples into), and optionally run the greedy
// adjoint-guided decap optimizer against that peak.
func runImpedance(out io.Writer, r cliflags.Resolved, rows, cols int, fstart, fstop float64, fpoints, optDecaps int, csvPath string) error {
	grid := pkgmodel.DefaultPDN(r.Pack, rows, cols, r.Pads)
	freqs, err := spice.FreqGrid(fstart, fstop, fpoints, true)
	if err != nil {
		return err
	}
	prof, err := pdn.RunProfile(context.Background(), grid, freqs, pdn.Config{})
	if err != nil {
		return err
	}
	peak := prof.Peak()
	fmt.Fprintf(out, "PDN impedance  %s package, %dx%d mesh, %d pads\n",
		r.Pack.Name, grid.Rows, grid.Cols, len(grid.PadSites))
	fmt.Fprintf(out, "frequency grid %d log-spaced points, %s .. %s\n",
		len(freqs), units.Format(freqs[0], "Hz"), units.Format(freqs[len(freqs)-1], "Hz"))
	fmt.Fprintf(out, "|Z| endpoints  %s at %s, %s at %s\n",
		units.Format(prof.Points[0].AbsZ, "Ohm"), units.Format(prof.Points[0].Freq, "Hz"),
		units.Format(prof.Points[len(prof.Points)-1].AbsZ, "Ohm"),
		units.Format(prof.Points[len(prof.Points)-1].Freq, "Hz"))
	fmt.Fprintf(out, "peak |Z|       %s at %s (anti-resonance)\n",
		units.Format(peak.AbsZ, "Ohm"), units.Format(peak.Freq, "Hz"))

	if optDecaps > 0 {
		res, err := pdn.OptimizeDecaps(context.Background(), pdn.OptimizeSpec{
			Grid:      grid,
			Freqs:     freqs,
			DecapC:    1e-9,
			DecapESR:  5e-3,
			MaxDecaps: optDecaps,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\ndecap placement (1 nF / 5 mOhm units, budget %d):\n", optDecaps)
		for i, p := range res.Placements {
			fmt.Fprintf(out, "  #%d node %s: peak %s -> %s (grad %.3g at %s)\n",
				i+1, grid.NodeName(p.Node),
				units.Format(p.PeakBefore, "Ohm"), units.Format(p.PeakAfter, "Ohm"),
				p.Grad, units.Format(p.PeakFreq, "Hz"))
		}
		if len(res.Placements) == 0 {
			fmt.Fprintln(out, "  no site lowers the peak; nothing placed")
		} else {
			fmt.Fprintf(out, "  peak |Z| lowered %s -> %s (%.1f%%)\n",
				units.Format(res.PeakBefore, "Ohm"), units.Format(res.PeakAfter, "Ohm"),
				(res.PeakAfter/res.PeakBefore-1)*100)
		}
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := fmt.Fprintln(f, "freq_hz,z_re_ohm,z_im_ohm,z_mag_ohm"); err != nil {
			return err
		}
		for _, p := range prof.Points {
			if _, err := fmt.Fprintf(f, "%g,%g,%g,%g\n",
				p.Freq, real(p.Z), imag(p.Z), p.AbsZ); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "\nimpedance profile written to %s\n", csvPath)
	}
	return nil
}
