package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"process", "max SSN", "damping", "critical cap", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExplicitGroundNet(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "16", "-l", "2.5n", "-c", "4p", "-tr", "1n"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "under-damped") {
		t.Errorf("expected under-damped classification:\n%s", buf.String())
	}
}

func TestRunBudgetGuidance(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "16", "-pads", "2", "-budget", "0.3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"design guidance", "max simultaneous drivers", "fastest edge", "max ground inductance"} {
		if !strings.Contains(out, want) {
			t.Errorf("guidance missing %q:\n%s", want, out)
		}
	}
}

func TestRunSolveFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "16", "-pads", "2", "-budget", "0.3", "-solve", "n"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"inverse design", "boundary n", "max", "simultaneous drivers", "vmax there"} {
		if !strings.Contains(out, want) {
			t.Errorf("solve output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run([]string{"-n", "16", "-pads", "2", "-budget", "0.3", "-solve", "l"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "boundary l") {
		t.Errorf("solve l output:\n%s", buf.String())
	}

	// -solve without a budget, and an unknown variable, are errors.
	if err := run([]string{"-solve", "n"}, &bytes.Buffer{}); err == nil {
		t.Error("expected error for -solve without -budget")
	}
	if err := run([]string{"-budget", "0.3", "-solve", "zz"}, &bytes.Buffer{}); err == nil {
		t.Error("expected error for unknown solve variable")
	}
}

func TestRunYieldFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "16", "-pads", "2", "-budget", "0.5", "-yield", "500"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "yield against") || !strings.Contains(out, "95% interval") {
		t.Errorf("yield output:\n%s", out)
	}
	if err := run([]string{"-yield", "100"}, &bytes.Buffer{}); err == nil {
		t.Error("expected error for -yield without -budget")
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wave.csv")
	var buf bytes.Buffer
	if err := run([]string{"-csv", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,") {
		t.Errorf("csv header: %q", string(data[:40]))
	}
	if lines := strings.Count(string(data), "\n"); lines < 100 {
		t.Errorf("csv too short: %d lines", lines)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-process", "c090"},
		{"-package", "dip"},
		{"-l", "abc"},
		{"-c", "xyz"},
		{"-tr", "bogus"},
		{"-tr", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunOtherProcesses(t *testing.T) {
	for _, proc := range []string{"c025", "c035"} {
		var buf bytes.Buffer
		if err := run([]string{"-process", proc, "-n", "8"}, &buf); err != nil {
			t.Errorf("%s: %v", proc, err)
		}
		if !strings.Contains(buf.String(), proc) {
			t.Errorf("%s not mentioned in output", proc)
		}
	}
}

func TestRunMonteCarloFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "16", "-pads", "2", "-mc", "200"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "monte carlo") || !strings.Contains(buf.String(), "p95") {
		t.Errorf("missing MC summary:\n%s", buf.String())
	}
}

func TestRunVictimFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "16", "-vil", "0.63"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "quiet-output glitch") {
		t.Errorf("missing victim check:\n%s", buf.String())
	}
}

func TestRunRailFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "16", "-rail"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "power-rail droop") {
		t.Errorf("missing rail mode:\n%s", buf.String())
	}
	// -vil is incompatible with -rail.
	if err := run([]string{"-rail", "-vil", "0.6"}, &buf); err == nil {
		t.Error("-rail with -vil must error")
	}
}

func TestRunCornerFlag(t *testing.T) {
	// The corners must run and report distinct device fits.
	outputs := map[string]string{}
	for _, corner := range []string{"ss", "tt", "ff"} {
		var buf bytes.Buffer
		if err := run([]string{"-n", "16", "-corner", corner}, &buf); err != nil {
			t.Fatalf("%s: %v", corner, err)
		}
		outputs[corner] = buf.String()
	}
	if outputs["ss"] == outputs["ff"] {
		t.Error("ss and ff corners produced identical reports")
	}
	var buf bytes.Buffer
	if err := run([]string{"-corner", "zz"}, &buf); err == nil {
		t.Error("unknown corner must error")
	}
}

func TestRunImpedance(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impedance", "-rows", "2", "-cols", "2", "-pads", "2", "-fpoints", "20"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PDN impedance", "2x2 mesh", "frequency grid", "20 log-spaced points", "peak |Z|", "anti-resonance"} {
		if !strings.Contains(out, want) {
			t.Errorf("impedance output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "decap placement") {
		t.Errorf("optimizer ran without -optimize-decaps:\n%s", out)
	}
}

func TestRunImpedanceOptimize(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impedance", "-rows", "3", "-cols", "3", "-pads", "4",
		"-fpoints", "40", "-optimize-decaps", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"decap placement", "#1 node", "peak |Z| lowered"} {
		if !strings.Contains(out, want) {
			t.Errorf("optimize output missing %q:\n%s", want, out)
		}
	}
}

func TestRunImpedanceCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.csv")
	var buf bytes.Buffer
	err := run([]string{"-impedance", "-rows", "2", "-cols", "2", "-fpoints", "16", "-csv", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "freq_hz,z_re_ohm,z_im_ohm,z_mag_ohm\n") {
		t.Errorf("csv header: %q", string(data[:50]))
	}
	if lines := strings.Count(string(data), "\n"); lines != 17 {
		t.Errorf("csv has %d lines, want header + 16 points", lines)
	}
}

func TestRunImpedanceErrors(t *testing.T) {
	cases := [][]string{
		{"-impedance", "-fstart", "0"},
		{"-impedance", "-fstop", "1"},
		{"-impedance", "-fpoints", "0"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
