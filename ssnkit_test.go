package ssnkit_test

import (
	"math"
	"strings"
	"testing"

	"ssnkit"
)

// These tests exercise the public facade exactly as a downstream user
// would: no internal imports, only the re-exported surface.

func fittedParams(t *testing.T) ssnkit.Params {
	t.Helper()
	asdm, err := ssnkit.C018.ExtractASDM()
	if err != nil {
		t.Fatal(err)
	}
	gnd := ssnkit.PGA.Ground(2)
	return ssnkit.Params{
		N: 16, Dev: asdm, Vdd: ssnkit.C018.Vdd,
		Slope: ssnkit.C018.Vdd / 1e-9, L: gnd.L, C: gnd.C,
	}
}

func TestQuickstartFlow(t *testing.T) {
	p := fittedParams(t)
	vmax, cse, err := ssnkit.MaxSSN(p)
	if err != nil {
		t.Fatal(err)
	}
	if vmax <= 0 || vmax >= p.Vdd {
		t.Errorf("vmax = %g outside (0, Vdd)", vmax)
	}
	switch cse {
	case ssnkit.OverDamped, ssnkit.CriticallyDamped, ssnkit.UnderDampedPeak, ssnkit.UnderDampedBoundary:
	default:
		t.Errorf("unexpected case %v", cse)
	}
}

func TestModelsAgreeThroughFacade(t *testing.T) {
	p := fittedParams(t)
	p.C = 0
	lm, err := ssnkit.NewLModel(p)
	if err != nil {
		t.Fatal(err)
	}
	lcm, err := ssnkit.NewLCModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lm.VMax()-lcm.VMax()) > 1e-9 {
		t.Errorf("L %g vs LC(C=0) %g", lm.VMax(), lcm.VMax())
	}
}

func TestDesignHelpersThroughFacade(t *testing.T) {
	p := fittedParams(t)
	vmax, _, err := ssnkit.MaxSSN(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ssnkit.MaxDriversForBudget(p, vmax, 256)
	if err != nil {
		t.Fatal(err)
	}
	if n < p.N {
		t.Errorf("budget at VMax(N=%d) allows only %d drivers", p.N, n)
	}
	s, err := ssnkit.LSensitivity(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.RelN != s.RelL {
		t.Error("equal-lever property lost through facade")
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	b, vt, alpha, _, err := ssnkit.ExtractAlphaPowerSat(ssnkit.C018.Driver(1), 1.8)
	if err != nil {
		t.Fatal(err)
	}
	in := ssnkit.BaselineInput{N: 8, L: 5e-9, Vdd: 1.8, Slope: 1.8e9}
	ap := ssnkit.AlphaParams{B: b, Vt: vt, Alpha: alpha}
	if _, err := ssnkit.VemuruMax(in, ap); err != nil {
		t.Error(err)
	}
	if _, err := ssnkit.SongMax(in, ap); err != nil {
		t.Error(err)
	}
	if _, err := ssnkit.SquareLawMax(in, 2e-3, vt); err != nil {
		t.Error(err)
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	cfg := ssnkit.ArrayConfig{
		Process: ssnkit.C018, N: 8, Load: 20e-12,
		Ground: ssnkit.PGA.Ground(1), Rise: 1e-9, Merged: true,
	}
	res, err := ssnkit.Simulate(cfg, ssnkit.SimOptions{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSSN <= 0 {
		t.Error("no bounce simulated")
	}
	// Pull-up variant.
	cfg.Pull = ssnkit.PullUp
	up, err := ssnkit.Simulate(cfg, ssnkit.SimOptions{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if up.MaxSSN <= 0 || up.MaxSSN >= res.MaxSSN {
		t.Errorf("droop %g vs bounce %g", up.MaxSSN, res.MaxSSN)
	}
}

func TestNetlistThroughFacade(t *testing.T) {
	deck, err := ssnkit.ParseNetlist(strings.NewReader(`rc
v1 in 0 dc 1
r1 in out 1k
c1 out 0 1p
.tran 10p 5n
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	tran, _, err := ssnkit.RunDeck(deck, ssnkit.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := tran.Get("v(out)")
	if w == nil {
		t.Fatal("missing waveform")
	}
	if got := w.At(5e-9); math.Abs(got-1) > 0.02 {
		t.Errorf("lowpass settle = %g", got)
	}
}

func TestStaggeredThroughFacade(t *testing.T) {
	p := fittedParams(t)
	s, err := ssnkit.NewStaggered(p, ssnkit.UniformStagger(p.N, 0.2e-9))
	if err != nil {
		t.Fatal(err)
	}
	_, v, err := s.VMax()
	if err != nil {
		t.Fatal(err)
	}
	vSim, _, err := ssnkit.MaxSSN(p)
	if err != nil {
		t.Fatal(err)
	}
	if v >= vSim {
		t.Errorf("staggered %g not below simultaneous %g", v, vSim)
	}
}

func TestProcessAndPackageCatalogs(t *testing.T) {
	if len(ssnkit.Processes()) != 3 {
		t.Error("expected 3 process kits")
	}
	if len(ssnkit.PackageCatalog()) != 4 {
		t.Error("expected 4 package classes")
	}
	if _, err := ssnkit.ProcessByName("c025"); err != nil {
		t.Error(err)
	}
	if _, err := ssnkit.PackageByName("bga"); err != nil {
		t.Error(err)
	}
}

func TestCircuitBuilderThroughFacade(t *testing.T) {
	ckt := ssnkit.NewCircuit("facade")
	ckt.AddV("v1", "a", "0", ssnkit.Ramp{V0: 0, V1: 1, Delay: 0, Rise: 1e-9})
	ckt.AddR("r1", "a", "0", 1e3)
	eng, err := ssnkit.NewEngine(ckt, ssnkit.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := eng.Transient(ssnkit.TranSpec{Step: 0.1e-9, Stop: 2e-9})
	if err != nil {
		t.Fatal(err)
	}
	if set.Get("v(a)") == nil {
		t.Error("missing node waveform")
	}
}
