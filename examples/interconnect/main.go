// Interconnect: what happens after the pad — drive an output through a
// board trace modeled as a real transmission line and look at the launch,
// the reflections, and the spectral content of the ground bounce. Shows the
// simulator features beyond the paper's lumped package model: T-lines,
// mutual inductance, eye folding and FFT spectra.
package main

import (
	"fmt"
	"log"
	"strings"

	"ssnkit"
)

func main() {
	// A 16-bit bus bounces its ground rail; one driver's output then
	// launches into a 50-Ohm, 1-ns board trace terminated badly (100 Ohm).
	deck, err := ssnkit.ParseNetlist(strings.NewReader(`io bank with board trace
* switching bank (merged): 16x driver discharging 320 pF through 5 nH
vin g 0 ramp(0 1.8 0.1n 1n)
m1 bank g vssi vssi nch
clb bank 0 320p ic=1.8
lgnd vssi 0 5n
cgnd vssi 0 1p

* one observed driver launching into the board trace
m2 pad g2 vssi vssi nch1x
vin2 g2 0 ramp(0 1.8 0.1n 1n)
cpad pad 0 2p ic=1.8
rser pad near 33
t1 near 0 far 0 z0=50 td=1n
rterm far 0 100

.model nch nmos (level=3 b=54.4m vt0=0.45 alpha=1.24 kv=0.55 gamma=0.4 phi=0.8 lambda=0.06)
.model nch1x nmos (level=3 b=3.4m vt0=0.45 alpha=1.24 kv=0.55 gamma=0.4 phi=0.8 lambda=0.06)
.tran 5p 8n uic
.end
`))
	if err != nil {
		log.Fatal(err)
	}
	tran, _, err := ssnkit.RunDeck(deck, ssnkit.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	bounce := tran.Get("v(vssi)")
	near := tran.Get("v(near)")
	far := tran.Get("v(far)")
	_, bmax := bounce.Max()
	fmt.Printf("ground bounce peak: %.3f V\n", bmax)

	// Reflection accounting at the mismatched termination.
	tFar, vFarMin := far.Min()
	fmt.Printf("far-end low level: %.3f V at %.2g s (ideal would settle to ~%.3f V)\n",
		vFarMin, tFar, 0.0)
	if d, err := near.DelayBetween(far, 0.9, -1); err == nil {
		fmt.Printf("trace flight time (90%% falling): %.3g s (line td = 1 ns)\n", d)
	}

	// Spectral view of the bounce: where the EMI energy sits.
	sp, err := bounce.Spectrum(4096)
	if err != nil {
		log.Fatal(err)
	}
	pf, pm := sp.PeakFrequency()
	fmt.Printf("bounce spectrum peak: %.3g Hz (%.3g V/bin)\n", pf, pm)
	fmt.Printf("bounce energy above 1 GHz: %.3g of total %.3g\n",
		sp.EnergyAbove(1e9), sp.EnergyAbove(0))

	// Overshoot/settling at the mismatched far end.
	if os, err := far.Overshoot(); err == nil {
		fmt.Printf("far-end overshoot: %.1f%% of the swing\n", os*100)
	}
	if st, err := far.SettlingTime(0.05); err == nil {
		fmt.Printf("far-end settles (±50 mV) at %.3g s\n", st)
	}
}
