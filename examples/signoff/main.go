// Sign-off: a full SSN noise check for one I/O bank the way a design
// review would want it — nominal corner, process spread (Monte Carlo on
// the closed forms), quiet-output noise margins, switching-delay cost, and
// the staggered-switching fallback if the budget fails. Everything here
// runs on closed forms and cheap integrators: thousands of corners in
// milliseconds, which is the practical payoff of the paper's models.
package main

import (
	"fmt"
	"log"

	"ssnkit"
)

func main() {
	const (
		nBits   = 24
		rise    = 1e-9
		pads    = 2
		loadCap = 20e-12
		vil     = 0.63 // receiver low-level input threshold (0.35*Vdd)
	)
	proc := ssnkit.C018
	asdm, err := proc.ExtractASDM()
	if err != nil {
		log.Fatal(err)
	}
	gnd := ssnkit.PGA.Ground(pads).WithMutual(0.25) // adjacent-wire coupling
	p := ssnkit.Params{
		N: nBits, Dev: asdm, Vdd: proc.Vdd,
		Slope: proc.Vdd / rise, L: gnd.L, C: gnd.C,
	}

	fmt.Printf("I/O bank sign-off: %d bits, %d ground pads (k=0.25), %.2g s edge\n\n", nBits, pads, rise)

	// 1. Nominal corner.
	vmax, cse, err := ssnkit.MaxSSN(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal:   Vmax = %.3f V (%v)\n", vmax, cse)

	// 2. Process and environment spread: 5% device, 10% bond inductance,
	//    8% pad capacitance, 7% edge rate.
	mc, err := ssnkit.MonteCarlo(p, ssnkit.Variation{
		K: 0.05, V0: 0.03, A: 0.02, L: 0.10, C: 0.08, Slope: 0.07,
	}, 5000, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte carlo: %v\n", mc)
	fmt.Printf("case split: %v\n", mc.CaseCounts)

	// 3. Quiet-output glitch vs the receiver threshold, at the p95 corner.
	ron := ssnkit.TriodeResistance(proc.Driver(1), proc.Vdd, 0)
	victim, err := ssnkit.NewVictim(p, ron, loadCap)
	if err != nil {
		log.Fatal(err)
	}
	glitch, atten, err := victim.PeakGlitch()
	if err != nil {
		log.Fatal(err)
	}
	ok, headroom, err := victim.NoiseMarginOK(vil, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvictim:    glitch %.3f V (%.0f%% of rail bounce), VIL %.2f V with 10%% margin -> ", glitch, atten*100, vil)
	if ok {
		fmt.Printf("PASS (headroom %.0f mV)\n", headroom*1e3)
	} else {
		fmt.Printf("FAIL (short by %.0f mV)\n", -headroom*1e3)
	}

	// 4. Timing cost of the bounce.
	pushout, err := ssnkit.DelayPushout(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing:    bounce costs ~%.0f ps of driver delay (%.0f%% of the edge)\n",
		pushout*1e12, pushout/rise*100)

	// 5. If p95 busts the budget, stagger the bus in two groups.
	const budget = 0.45
	fmt.Printf("\nbudget %.2f V: p95 = %.3f V -> ", budget, mc.P95)
	if mc.P95 <= budget {
		fmt.Println("PASS")
		return
	}
	fmt.Println("FAIL; trying two-group staggering")
	offsets := make([]float64, nBits)
	for i := nBits / 2; i < nBits; i++ {
		offsets[i] = 1.5 * rise
	}
	st, err := ssnkit.NewStaggered(p, offsets)
	if err != nil {
		log.Fatal(err)
	}
	_, vStag, err := st.VMax()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staggered (2 groups, %.2g s apart): Vmax = %.3f V -> ", 1.5*rise, vStag)
	if vStag <= budget {
		fmt.Println("PASS")
	} else {
		fmt.Println("still FAIL; add pads or slow the edge")
	}
}
