// Package selection: compare package classes and ground pad counts for a
// fixed bus, exercising the paper's Sec. 4 insight — paralleling ground
// pads trades inductance (L/n) for capacitance (C*n), so beyond the
// critical capacitance the net starts ringing and the L-only estimate
// stops being conservative. The example also shows the mutual-inductance
// derating that limits how much paralleling can buy.
package main

import (
	"fmt"
	"log"

	"ssnkit"
)

func main() {
	const (
		nDrivers = 24
		rise     = 1e-9
	)
	proc := ssnkit.C018
	asdm, err := proc.ExtractASDM()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d drivers, %.2g s edge, %s process\n\n", nDrivers, rise, proc.Name)
	fmt.Println("package  pads  L(nH)   C(pF)  zeta   case                         Vmax (V)  L-only err")
	for _, pack := range ssnkit.PackageCatalog() {
		for _, pads := range []int{1, 2, 4, 8} {
			gnd := pack.Ground(pads)
			p := ssnkit.Params{
				N: nDrivers, Dev: asdm, Vdd: proc.Vdd,
				Slope: proc.Vdd / rise, L: gnd.L, C: gnd.C,
			}
			m, err := ssnkit.NewLCModel(p)
			if err != nil {
				log.Fatal(err)
			}
			lm, err := ssnkit.NewLModel(p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s  %4d  %5.2f  %5.2f  %5.2f  %-27s  %7.3f  %+6.1f%%\n",
				pack.Name, pads, gnd.L*1e9, gnd.C*1e12, p.DampingRatio(),
				m.Case().String(), m.VMax(), (lm.VMax()/m.VMax()-1)*100)
		}
		fmt.Println()
	}

	// Mutual inductance between bond wires erodes the paralleling benefit:
	// with coupling k, n pads give L*(1+(n-1)k)/n instead of L/n.
	fmt.Println("mutual-inductance derating (PGA, 8 pads):")
	fmt.Println("    k   L_eff(nH)  Vmax (V)")
	for _, k := range []float64{0, 0.2, 0.4, 0.6} {
		gnd := ssnkit.PGA.Ground(8).WithMutual(k)
		p := ssnkit.Params{
			N: nDrivers, Dev: asdm, Vdd: proc.Vdd,
			Slope: proc.Vdd / rise, L: gnd.L, C: gnd.C,
		}
		vmax, _, err := ssnkit.MaxSSN(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.1f   %8.3f  %7.3f\n", k, gnd.L*1e9, vmax)
	}
}
