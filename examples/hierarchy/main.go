// Hierarchy: drive the whole analysis from a SPICE-style deck with
// subcircuits — an I/O cell defined once (.SUBCKT) and instantiated per
// bit, all sharing a bouncing ground rail, with .IC setting the precharged
// outputs. Shows that the netlist path and the programmatic API reach the
// same physics.
package main

import (
	"fmt"
	"log"
	"strings"

	"ssnkit"
)

const deckText = `four-bit bank from subcircuits
* one I/O cell: NMOS pull-down, its load, a shared gate and ground rail
.subckt iocell out gate vss
mpd out gate vss vss nch
cl out 0 20p ic=1.8
.ends

* shared input edge and ground parasitics (PGA pin: 5 nH, 1 pF)
vin g 0 ramp(0 1.8 0.1n 1n)
x1 o1 g vssi iocell
x2 o2 g vssi iocell
x3 o3 g vssi iocell
x4 o4 g vssi iocell
lgnd vssi 0 5n
cgnd vssi 0 1p

.model nch nmos (level=3 b=3.4m vt0=0.45 alpha=1.24 kv=0.55 gamma=0.4 phi=0.8 lambda=0.06)
.tran 2p 3n uic
.end
`

func main() {
	deck, err := ssnkit.ParseNetlist(strings.NewReader(deckText))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deck flattened to %d elements, %d nodes\n",
		len(deck.Circuit.Elements), deck.Circuit.NumNodes())

	tran, _, err := ssnkit.RunDeck(deck, ssnkit.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	bounce := tran.Get("v(vssi)")
	_, vmax := bounce.Max()
	fmt.Printf("simulated ground bounce (4 cells): %.3f V\n", vmax)

	// Same scenario through the programmatic API + closed form.
	asdm, err := ssnkit.C018.ExtractASDM()
	if err != nil {
		log.Fatal(err)
	}
	p := ssnkit.Params{
		N: 4, Dev: asdm, Vdd: 1.8, Slope: 1.8e9,
		L: 5e-9, C: 1e-12,
	}
	model, cse, err := ssnkit.MaxSSN(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed form (Table 1, %v): %.3f V\n", cse, model)

	// The flattened instance outputs are individually observable.
	for _, node := range []string{"o1", "o4"} {
		w := tran.Get("v(" + node + ")")
		fmt.Printf("v(%s) at ramp end: %.3f V (started precharged at 1.8)\n",
			node, w.At(1.1e-9))
	}
}
