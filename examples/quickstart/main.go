// Quickstart: estimate the ground bounce of a 16-bit output bus in three
// steps — pick a process, fit the application-specific device model, and
// evaluate the closed-form maximum. No circuit simulation involved.
package main

import (
	"fmt"
	"log"

	"ssnkit"
)

func main() {
	// 1. A 0.18 µm-class process kit: 1.8 V supply and a golden output
	//    driver the device model is fitted against.
	proc := ssnkit.C018
	asdm, err := proc.ExtractASDM()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted device model: %v\n", asdm)

	// 2. The scenario: 16 drivers switching together through 2 ground pads
	//    of a PGA package, driven by a 1 ns edge.
	gnd := ssnkit.PGA.Ground(2)
	p := ssnkit.Params{
		N:     16,
		Dev:   asdm,
		Vdd:   proc.Vdd,
		Slope: proc.Vdd / 1e-9,
		L:     gnd.L,
		C:     gnd.C,
	}

	// 3. The answer: operating case and worst-case bounce.
	vmax, cse, err := ssnkit.MaxSSN(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground net: %v\n", gnd)
	fmt.Printf("operating case: %v\n", cse)
	fmt.Printf("maximum ground bounce: %.3f V (%.1f%% of Vdd)\n", vmax, vmax/proc.Vdd*100)
	fmt.Printf("critical capacitance: %.3g F (net has %.3g F)\n", p.CriticalCapacitance(), p.C)
}
