// IV fitting: the paper's Sec. 2 methodology on all three process kits —
// fit the application-specific device model (ASDM) over the SSN operating
// region, fit the general-purpose alpha-power law on the same golden
// device, and compare what each gets right. Reproduces the qualitative
// content of the paper's Fig. 1 as terminal output.
package main

import (
	"fmt"
	"log"

	"ssnkit"
)

func main() {
	for _, proc := range ssnkit.Processes() {
		golden := proc.Driver(1)
		asdm, stats, err := ssnkit.ExtractASDM(golden, ssnkit.ExtractRegion{Vdd: proc.Vdd})
		if err != nil {
			log.Fatal(err)
		}
		b, vt, alpha, apStats, err := ssnkit.ExtractAlphaPowerSat(golden, proc.Vdd)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("process %s (Vdd %.2g V)\n", proc.Name, proc.Vdd)
		fmt.Printf("  ASDM        %v   R2 %.4f\n", asdm, stats.R2)
		fmt.Printf("  alpha-power B=%.3g Vt=%.3f alpha=%.3f   R2 %.4f\n", b, vt, alpha, apStats.R2)
		fmt.Printf("  paper checks: a > 1? %v   V0 (%.3f) vs Vt (%.3f): displaced by %+.0f mV\n",
			asdm.A > 1, asdm.V0, vt, (asdm.V0-vt)*1e3)

		// Show the Fig. 1 content numerically: Id at full gate drive for a
		// few source (bounce) voltages, golden vs ASDM.
		fmt.Println("  Id at Vg = Vdd (mA):   Vs     golden   ASDM     err")
		for _, frac := range []float64{0, 0.1, 0.2, 0.3} {
			vs := frac * proc.Vdd
			id, _, _, _ := golden.Ids(proc.Vdd-vs, proc.Vdd-vs, 0)
			fmt.Printf("%26.2f  %7.3f  %7.3f  %+5.1f%%\n",
				vs, id*1e3, asdm.Id(proc.Vdd, vs)*1e3,
				(asdm.Id(proc.Vdd, vs)/id-1)*100)
		}
		fmt.Println()
	}

	// The point of the exercise: the fitted parameters drive the closed
	// forms. Show how the fitted "a" amplifies the negative feedback and
	// lowers the predicted bounce versus a naive a = 1 assumption.
	proc := ssnkit.C018
	asdm, _ := proc.ExtractASDM()
	gnd := ssnkit.PGA.Ground(1)
	p := ssnkit.Params{N: 16, Dev: asdm, Vdd: proc.Vdd, Slope: proc.Vdd / 1e-9, L: gnd.L, C: gnd.C}
	withA, _, err := ssnkit.MaxSSN(p)
	if err != nil {
		log.Fatal(err)
	}
	naive := p
	naive.Dev.A = 1
	withoutA, _, err := ssnkit.MaxSSN(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("effect of the fitted source sensitivity on the prediction (N=16, PGA):\n")
	fmt.Printf("  a = %.3f -> Vmax %.3f V;  a = 1 -> Vmax %.3f V (%+.1f%%)\n",
		asdm.A, withA, withoutA, (withoutA/withA-1)*100)
}
