// Driver design: size a wide memory-style output bus against a ground
// bounce budget, exercising the paper's Sec. 3 design implications — given
// a process, the only SSN lever is beta = N*L*K*s, so the budget converts
// interchangeably into a limit on simultaneously switching drivers, on the
// edge rate, or on the ground inductance (pad count).
//
// The example cross-checks the closed-form answer against the
// transistor-level simulator for the chosen design point.
package main

import (
	"fmt"
	"log"

	"ssnkit"
)

func main() {
	const (
		busWidth = 32     // data bits that can switch together
		budget   = 0.30   // ground-bounce budget, V
		rise     = 0.8e-9 // I/O edge rate we'd like to run at
	)
	proc := ssnkit.C018
	asdm, err := proc.ExtractASDM()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bus: %d bits, budget %.2f V, desired edge %.2g s, %s process\n\n",
		busWidth, budget, rise, proc.Name)

	// Sweep the ground pad count and ask, at each point, how many drivers
	// may switch simultaneously within budget.
	fmt.Println("pads  L(nH)   C(pF)  case                         maxN@budget  Vmax@32")
	chosenPads := 0
	for pads := 1; pads <= 8; pads++ {
		gnd := ssnkit.PGA.Ground(pads)
		p := ssnkit.Params{
			N: busWidth, Dev: asdm, Vdd: proc.Vdd,
			Slope: proc.Vdd / rise, L: gnd.L, C: gnd.C,
		}
		vmax, cse, err := ssnkit.MaxSSN(p)
		if err != nil {
			log.Fatal(err)
		}
		maxN, err := ssnkit.MaxDriversForBudget(p, budget, 4*busWidth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %5.2f  %5.2f  %-27s  %11d  %.3f V\n",
			pads, gnd.L*1e9, gnd.C*1e12, cse.String(), maxN, vmax)
		if chosenPads == 0 && maxN >= busWidth {
			chosenPads = pads
		}
	}
	if chosenPads == 0 {
		fmt.Println("\nno pad count meets the budget with the full bus switching;")
		fmt.Println("fall back to slowing the edge:")
		gnd := ssnkit.PGA.Ground(8)
		p := ssnkit.Params{
			N: busWidth, Dev: asdm, Vdd: proc.Vdd,
			Slope: proc.Vdd / rise, L: gnd.L, C: gnd.C,
		}
		tr, err := ssnkit.MinRiseTimeForBudget(p, budget, rise, 100*rise)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  8 pads + %.3g s edge meets the %.2f V budget\n", tr, budget)
		chosenPads = 8
		return
	}
	fmt.Printf("\nchosen design: %d ground pads\n", chosenPads)

	// Verify the chosen point with the transistor-level simulator.
	cfg := ssnkit.ArrayConfig{
		Process: proc,
		N:       busWidth,
		Load:    20e-12,
		Ground:  ssnkit.PGA.Ground(chosenPads),
		Rise:    rise,
		Merged:  true,
	}
	res, err := ssnkit.Simulate(cfg, ssnkit.SimOptions{}, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	p := ssnkit.Params{
		N: busWidth, Dev: asdm, Vdd: proc.Vdd,
		Slope: proc.Vdd / rise, L: cfg.Ground.L, C: cfg.Ground.C,
	}
	vmax, _, _ := ssnkit.MaxSSN(p)
	fmt.Printf("closed form: %.3f V   transistor-level sim: %.3f V   budget: %.2f V\n",
		vmax, res.MaxSSN, budget)
	if res.MaxSSN <= budget*1.05 {
		fmt.Println("simulation confirms the design point.")
	} else {
		fmt.Println("simulation exceeds the budget — revisit the margin.")
	}
}
