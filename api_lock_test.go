package ssnkit_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"

	"ssnkit"
	"ssnkit/internal/circuit"
	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
)

// TestAPILockSignatures pins every public wrapper to the signature of its
// internal counterpart: a refactor that changes an internal function now
// fails here, in the facade, instead of in a downstream build.
func TestAPILockSignatures(t *testing.T) {
	pairs := []struct {
		name     string
		public   any
		internal any
	}{
		{"MaxSSN", ssnkit.MaxSSN, ssn.MaxSSN},
		{"NewLModel", ssnkit.NewLModel, ssn.NewLModel},
		{"NewLCModel", ssnkit.NewLCModel, ssn.NewLCModel},
		{"MaxDriversForBudget", ssnkit.MaxDriversForBudget, ssn.MaxDriversForBudget},
		{"MinRiseTimeForBudget", ssnkit.MinRiseTimeForBudget, ssn.MinRiseTimeForBudget},
		{"InductanceBudget", ssnkit.InductanceBudget, ssn.InductanceBudget},
		{"SquareLawMax", ssnkit.SquareLawMax, ssn.SquareLawMax},
		{"VemuruMax", ssnkit.VemuruMax, ssn.VemuruMax},
		{"SongMax", ssnkit.SongMax, ssn.SongMax},
		{"NewStaggered", ssnkit.NewStaggered, ssn.NewStaggered},
		{"UniformStagger", ssnkit.UniformStagger, ssn.UniformStagger},
		{"LSensitivity", ssnkit.LSensitivity, ssn.LSensitivity},
		{"LCSensitivity", ssnkit.LCSensitivity, ssn.LCSensitivity},
		{"NewVictim", ssnkit.NewVictim, ssn.NewVictim},
		{"MonteCarlo", ssnkit.MonteCarlo, ssn.MonteCarlo},
		{"MonteCarloCtx", ssnkit.MonteCarloCtx, ssn.MonteCarloCtx},
		{"DelayPushout", ssnkit.DelayPushout, ssn.DelayPushout},
		{"ParseSolveVar", ssnkit.ParseSolveVar, ssn.ParseSolveVar},
		{"Solve", ssnkit.Solve, ssn.Solve},
		{"SolveBracket", ssnkit.SolveBracket, ssn.SolveBracket},
		{"Yield", ssnkit.Yield, ssn.Yield},
		{"YieldCtx", ssnkit.YieldCtx, ssn.YieldCtx},
		{"Processes", ssnkit.Processes, device.Processes},
		{"ProcessByName", ssnkit.ProcessByName, device.ProcessByName},
		{"ExtractASDM", ssnkit.ExtractASDM, device.ExtractASDM},
		{"ExtractAlphaPowerSat", ssnkit.ExtractAlphaPowerSat, device.ExtractAlphaPowerSat},
		{"TriodeResistance", ssnkit.TriodeResistance, device.TriodeResistance},
		{"CornerByName", ssnkit.CornerByName, device.CornerByName},
		{"NewCircuit", ssnkit.NewCircuit, circuit.New},
		{"ParseNetlist", ssnkit.ParseNetlist, circuit.Parse},
		{"NewEngine", ssnkit.NewEngine, spice.New},
		{"RunDeck", ssnkit.RunDeck, spice.Run},
		{"PackageCatalog", ssnkit.PackageCatalog, pkgmodel.Catalog},
		{"PackageByName", ssnkit.PackageByName, pkgmodel.ByName},
		{"Simulate", ssnkit.Simulate, driver.Simulate},
	}
	for _, p := range pairs {
		pub, internal := reflect.TypeOf(p.public), reflect.TypeOf(p.internal)
		if pub != internal {
			t.Errorf("%s: facade signature %v != internal %v", p.name, pub, internal)
		}
	}
}

// TestAPILockBehavior spot-checks that wrappers delegate, not reimplement:
// the facade and the internal package must return identical values.
func TestAPILockBehavior(t *testing.T) {
	asdm, stats, err := ssnkit.ExtractASDM(ssnkit.C018.Driver(1), ssnkit.ExtractRegion{Vdd: ssnkit.C018.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	if stats.R2 <= 0 {
		t.Errorf("fit R2 = %g, want positive", stats.R2)
	}
	p := ssnkit.Params{N: 16, Dev: asdm, Vdd: ssnkit.C018.Vdd,
		Slope: ssnkit.C018.Vdd / 1e-9, L: 5e-9 / 4, C: 4e-12}
	gotV, gotC, err := ssnkit.MaxSSN(p)
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantC, err := ssn.MaxSSN(p)
	if err != nil {
		t.Fatal(err)
	}
	if gotV != wantV || gotC != wantC {
		t.Errorf("facade MaxSSN = (%g, %v), internal = (%g, %v)", gotV, gotC, wantV, wantC)
	}

	gotSol, err := ssnkit.Solve(p, ssnkit.SolveN, 0.9*gotV)
	if err != nil {
		t.Fatal(err)
	}
	wantSol, err := ssn.Solve(p, ssn.SolveN, 0.9*wantV)
	if err != nil {
		t.Fatal(err)
	}
	if gotSol.Value != wantSol.Value || gotSol.VMax != wantSol.VMax {
		t.Errorf("facade Solve = %+v, internal = %+v", gotSol, wantSol)
	}
}

// allowedVars are the only package-level vars the facade may export: real
// values (process kits, package classes), never functions.
var allowedVars = map[string]bool{
	"C018": true, "C025": true, "C035": true,
	"PGA": true, "QFP": true, "BGA": true, "COB": true,
}

// TestNoFunctionTypedVars parses ssnkit.go and rejects any top-level var
// beyond the allowed value set. Function-typed vars are mutable (any
// importer could reassign ssnkit.MaxSSN) and invisible to godoc; the
// facade must use real func declarations instead.
func TestNoFunctionTypedVars(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ssnkit.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !allowedVars[name.Name] {
					t.Errorf("unexpected package-level var %s at %s: export functions as func declarations",
						name.Name, fset.Position(name.Pos()))
				}
			}
		}
	}
	// The allowed vars must still be plain values, not functions.
	for name := range allowedVars {
		v := reflect.ValueOf(map[string]any{
			"C018": ssnkit.C018, "C025": ssnkit.C025, "C035": ssnkit.C035,
			"PGA": ssnkit.PGA, "QFP": ssnkit.QFP, "BGA": ssnkit.BGA, "COB": ssnkit.COB,
		}[name])
		if v.Kind() == reflect.Func {
			t.Errorf("var %s is function-typed", name)
		}
	}
}
