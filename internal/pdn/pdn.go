// Package pdn computes power-delivery-network input-impedance profiles
// |Z(f)| over frequency grids, with adjoint parameter sensitivities, and
// optimizes decap placement on the adjoint gradients. It drives the
// complex-valued AC engine in internal/spice over netlists synthesized by
// pkgmodel.PDNGrid, fanning frequencies out across a worker pool — each
// frequency is an independent factor+solve, the embarrassingly parallel
// axis of frequency-domain sign-off.
package pdn

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/sweep"
)

// Config tunes a profile run. The zero value is usable.
type Config struct {
	// Workers is the number of parallel frequency evaluators; <= 0 means
	// GOMAXPROCS.
	Workers int
	// ChunkSize is the number of frequencies per unit of work; <= 0 means
	// 16. Each chunk costs one engine stamp+factor per frequency.
	ChunkSize int
	// Gate, when non-nil, bounds chunk concurrency globally (the serve
	// worker pool implements it), so an impedance sweep embedded in the
	// service shares slots with the rest of the traffic.
	Gate sweep.Gate
	// WithSens requests adjoint d|Z|/d(param) sensitivities at every
	// frequency (one extra transposed solve each).
	WithSens bool
	// Gmin is passed to the AC engine (see spice.ACOptions).
	Gmin float64
}

// Point is the impedance at one frequency, with optional sensitivities.
type Point struct {
	Freq float64    // Hz
	Z    complex128 // ohms
	AbsZ float64    // |Z|, ohms
	// Sens holds adjoint sensitivities d|Z|/d(value) per named element,
	// only when Config.WithSens was set.
	Sens []spice.SensEntry
}

// Profile is an impedance-vs-frequency curve in ascending frequency order.
type Profile struct {
	Points  []Point
	PeakIdx int // index of the largest |Z|
}

// Peak returns the profile point with the largest |Z|.
func (p *Profile) Peak() Point { return p.Points[p.PeakIdx] }

// RunProfile sweeps the grid's input impedance over freqs (ascending, as
// produced by spice.FreqGrid). Each worker owns a private netlist and AC
// engine — engines are single-threaded — and frequencies are dealt out in
// chunks, so per-frequency factorizations dominate and coordination cost
// vanishes. Results are deterministic: the output order is the input
// frequency order regardless of worker count.
func RunProfile(ctx context.Context, grid *pkgmodel.PDNGrid, freqs []float64, cfg Config) (*Profile, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("pdn: empty frequency grid")
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(freqs) {
		workers = len(freqs)
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 16
	}
	points := make([]Point, len(freqs))
	chunks := make(chan [2]int)
	errs := make(chan error, workers)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ckt, obs, err := grid.Build()
			if err != nil {
				errs <- err
				cancel()
				return
			}
			eng, err := spice.NewAC(ckt, spice.ACOptions{Gmin: cfg.Gmin})
			if err != nil {
				errs <- err
				cancel()
				return
			}
			var sensBuf []spice.SensEntry
			for c := range chunks {
				if cfg.Gate != nil {
					if err := cfg.Gate.Acquire(cctx); err != nil {
						errs <- err
						cancel()
						return
					}
				}
				for i := c[0]; i < c[1]; i++ {
					if cctx.Err() != nil {
						break
					}
					w := 2 * math.Pi * freqs[i]
					var z complex128
					var err error
					if cfg.WithSens {
						z, sensBuf, err = eng.ImpedanceSens(w, obs, sensBuf)
						if err == nil {
							points[i].Sens = append([]spice.SensEntry(nil), sensBuf...)
						}
					} else {
						z, err = eng.Impedance(w, obs)
					}
					if err != nil {
						if cfg.Gate != nil {
							cfg.Gate.Release()
						}
						errs <- fmt.Errorf("pdn: f=%g Hz: %w", freqs[i], err)
						cancel()
						return
					}
					points[i].Freq = freqs[i]
					points[i].Z = z
					points[i].AbsZ = math.Hypot(real(z), imag(z))
				}
				if cfg.Gate != nil {
					cfg.Gate.Release()
				}
			}
		}()
	}
	for lo := 0; lo < len(freqs); lo += chunk {
		hi := lo + chunk
		if hi > len(freqs) {
			hi = len(freqs)
		}
		select {
		case chunks <- [2]int{lo, hi}:
		case <-cctx.Done():
			lo = len(freqs) // stop dispatching; drain below
		}
	}
	close(chunks)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prof := &Profile{Points: points}
	for i := range points {
		if points[i].AbsZ > points[prof.PeakIdx].AbsZ {
			prof.PeakIdx = i
		}
	}
	return prof, nil
}
