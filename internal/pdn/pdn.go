// Package pdn computes power-delivery-network input-impedance profiles
// |Z(f)| over frequency grids, with adjoint parameter sensitivities, and
// optimizes decap placement on the adjoint gradients. It drives the
// complex-valued AC engine in internal/spice over netlists synthesized by
// pkgmodel.PDNGrid, fanning frequencies out across a worker pool — each
// frequency is an independent factor+solve, the embarrassingly parallel
// axis of frequency-domain sign-off.
package pdn

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ssnkit/internal/circuit"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/sweep"
)

// Config tunes a profile run. The zero value is usable.
type Config struct {
	// Workers is the number of parallel frequency evaluators; <= 0 means
	// GOMAXPROCS.
	Workers int
	// ChunkSize is the number of frequencies per unit of work; <= 0 means
	// 16. Each chunk costs one engine stamp+factor per frequency.
	ChunkSize int
	// Gate, when non-nil, bounds chunk concurrency globally (the serve
	// worker pool implements it), so an impedance sweep embedded in the
	// service shares slots with the rest of the traffic.
	Gate sweep.Gate
	// WithSens requests adjoint d|Z|/d(param) sensitivities at every
	// frequency (one extra transposed solve each).
	WithSens bool
	// Gmin is passed to the AC engine (see spice.ACOptions).
	Gmin float64
}

// Point is the impedance at one frequency, with optional sensitivities.
type Point struct {
	Freq float64    // Hz
	Z    complex128 // ohms
	AbsZ float64    // |Z|, ohms
	// Sens holds adjoint sensitivities d|Z|/d(value) per named element,
	// only when Config.WithSens was set.
	Sens []spice.SensEntry
}

// Profile is an impedance-vs-frequency curve in ascending frequency order.
type Profile struct {
	Points  []Point
	PeakIdx int // index of the largest |Z|
}

// Peak returns the profile point with the largest |Z|.
func (p *Profile) Peak() Point { return p.Points[p.PeakIdx] }

// Sweeper is a reusable sweep context for one PDN grid state. It
// snapshots the grid's netlist at construction and pools compiled AC
// engines across calls, so the one-time costs — netlist synthesis,
// element compilation, and the symbolic factorization analysis of the
// MNA pattern — are paid once per worker for the lifetime of the
// context rather than once per RunProfile call. The same pooled engines
// serve full profile sweeps, the optimizer's golden-section peak
// refinement, and adjoint passes; each borrowed engine keeps its warm
// buffers, so every per-frequency solve after the first is a pure
// restamp+refactor with zero allocations.
//
// A Sweeper is safe for concurrent use; each borrowed engine is private
// to its borrower. Later mutations of the source grid do not affect an
// existing Sweeper — build a new one per grid state.
type Sweeper struct {
	cfg Config
	ckt *circuit.Circuit
	obs int

	mu   sync.Mutex
	idle []*spice.ACEngine
}

// NewSweeper validates the grid, synthesizes its netlist once, and
// compiles the first AC engine so construction surfaces circuit errors
// immediately.
func NewSweeper(grid *pkgmodel.PDNGrid, cfg Config) (*Sweeper, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	ckt, obs, err := grid.Build()
	if err != nil {
		return nil, err
	}
	s := &Sweeper{cfg: cfg, ckt: ckt, obs: obs}
	eng, err := spice.NewAC(ckt, spice.ACOptions{Gmin: cfg.Gmin})
	if err != nil {
		return nil, err
	}
	s.idle = append(s.idle, eng)
	return s, nil
}

// Obs reports the observation node index of the sweeps.
func (s *Sweeper) Obs() int { return s.obs }

// acquire pops a pooled engine or compiles a fresh one. Engines compile
// from the shared netlist snapshot — NewAC only reads it.
func (s *Sweeper) acquire() (*spice.ACEngine, error) {
	s.mu.Lock()
	if n := len(s.idle); n > 0 {
		eng := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.mu.Unlock()
		return eng, nil
	}
	s.mu.Unlock()
	return spice.NewAC(s.ckt, spice.ACOptions{Gmin: s.cfg.Gmin})
}

// release returns an engine to the pool with its warm buffers intact.
func (s *Sweeper) release(eng *spice.ACEngine) {
	s.mu.Lock()
	s.idle = append(s.idle, eng)
	s.mu.Unlock()
}

// borrow hands a pooled engine (and the observation node) to fn,
// returning it to the pool afterwards. The optimizer's peak refinement
// runs through here so its dozens of point solves hit a warm engine.
func (s *Sweeper) borrow(fn func(eng *spice.ACEngine, obs int) error) error {
	eng, err := s.acquire()
	if err != nil {
		return err
	}
	defer s.release(eng)
	return fn(eng, s.obs)
}

// RunProfile sweeps the grid's input impedance over freqs (ascending, as
// produced by spice.FreqGrid). Each worker borrows a private engine from
// the pool — engines are single-threaded — and frequencies are dealt out
// in chunks, so per-frequency refactorizations dominate and coordination
// cost vanishes. Results are deterministic: the output order is the
// input frequency order regardless of worker count, and the per-point
// values are bit-identical for any worker count because every engine
// executes the same deterministic refactor sequence.
func (s *Sweeper) RunProfile(ctx context.Context, freqs []float64) (*Profile, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("pdn: empty frequency grid")
	}
	cfg := s.cfg
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(freqs) {
		workers = len(freqs)
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 16
	}
	points := make([]Point, len(freqs))
	chunks := make(chan [2]int)
	errs := make(chan error, workers)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng, err := s.acquire()
			if err != nil {
				errs <- err
				cancel()
				return
			}
			defer s.release(eng)
			obs := s.obs
			var sensBuf []spice.SensEntry
			for c := range chunks {
				if cfg.Gate != nil {
					if err := cfg.Gate.Acquire(cctx); err != nil {
						errs <- err
						cancel()
						return
					}
				}
				for i := c[0]; i < c[1]; i++ {
					if cctx.Err() != nil {
						break
					}
					w := 2 * math.Pi * freqs[i]
					var z complex128
					var err error
					if cfg.WithSens {
						z, sensBuf, err = eng.ImpedanceSens(w, obs, sensBuf)
						if err == nil {
							points[i].Sens = append([]spice.SensEntry(nil), sensBuf...)
						}
					} else {
						z, err = eng.Impedance(w, obs)
					}
					if err != nil {
						if cfg.Gate != nil {
							cfg.Gate.Release()
						}
						errs <- fmt.Errorf("pdn: f=%g Hz: %w", freqs[i], err)
						cancel()
						return
					}
					points[i].Freq = freqs[i]
					points[i].Z = z
					points[i].AbsZ = math.Hypot(real(z), imag(z))
				}
				if cfg.Gate != nil {
					cfg.Gate.Release()
				}
			}
		}()
	}
	for lo := 0; lo < len(freqs); lo += chunk {
		hi := lo + chunk
		if hi > len(freqs) {
			hi = len(freqs)
		}
		select {
		case chunks <- [2]int{lo, hi}:
		case <-cctx.Done():
			lo = len(freqs) // stop dispatching; drain below
		}
	}
	close(chunks)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prof := &Profile{Points: points}
	for i := range points {
		if points[i].AbsZ > points[prof.PeakIdx].AbsZ {
			prof.PeakIdx = i
		}
	}
	return prof, nil
}

// RunProfile sweeps a grid's input impedance over freqs with a one-shot
// sweep context; see Sweeper.RunProfile. Callers issuing repeated sweeps
// of the same grid state (the optimizer, the service) should hold a
// Sweeper instead.
func RunProfile(ctx context.Context, grid *pkgmodel.PDNGrid, freqs []float64, cfg Config) (*Profile, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("pdn: empty frequency grid")
	}
	sw, err := NewSweeper(grid, cfg)
	if err != nil {
		return nil, err
	}
	return sw.RunProfile(ctx, freqs)
}
