package pdn

import (
	"context"
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"
	"testing"

	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
)

func testFreqs(t *testing.T, points int) []float64 {
	t.Helper()
	fs, err := spice.FreqGrid(1e6, 10e9, points, true)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestRunProfileMatchesSerial: the parallel profile must equal a serial
// single-engine evaluation bit-for-bit (same stamp, same factorization
// path per frequency).
func TestRunProfileMatchesSerial(t *testing.T) {
	grid := pkgmodel.DefaultPDN(pkgmodel.PGA, 3, 3, 4)
	fs := testFreqs(t, 40)
	prof, err := RunProfile(context.Background(), grid, fs, Config{Workers: 4, ChunkSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	ckt, obs, err := grid.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := spice.NewAC(ckt, spice.ACOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Points) != len(fs) {
		t.Fatalf("%d points, want %d", len(prof.Points), len(fs))
	}
	for i, f := range fs {
		z, err := eng.Impedance(2*math.Pi*f, obs)
		if err != nil {
			t.Fatal(err)
		}
		if prof.Points[i].Z != z {
			t.Errorf("f=%g: parallel %v vs serial %v", f, prof.Points[i].Z, z)
		}
		if prof.Points[i].AbsZ != cmplx.Abs(z) && math.Abs(prof.Points[i].AbsZ-cmplx.Abs(z)) > 1e-18 {
			t.Errorf("f=%g: AbsZ %g vs %g", f, prof.Points[i].AbsZ, cmplx.Abs(z))
		}
	}
	// The peak index must point at the max.
	for _, p := range prof.Points {
		if p.AbsZ > prof.Peak().AbsZ {
			t.Errorf("peak missed: %g > %g", p.AbsZ, prof.Peak().AbsZ)
		}
	}
}

// TestRunProfileWithSens: sensitivities arrive for every frequency and
// carry every named R/L/C element.
func TestRunProfileWithSens(t *testing.T) {
	grid := pkgmodel.DefaultPDN(pkgmodel.BGA, 2, 2, 2)
	fs := testFreqs(t, 12)
	prof, err := RunProfile(context.Background(), grid, fs, Config{Workers: 2, WithSens: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range prof.Points {
		if len(p.Sens) == 0 {
			t.Fatalf("point %d has no sensitivities", i)
		}
		if len(p.Sens) != len(prof.Points[0].Sens) {
			t.Fatalf("ragged sensitivity rows: %d vs %d", len(p.Sens), len(prof.Points[0].Sens))
		}
	}
}

// TestRunProfileGate: the gate must be acquired and released in balance,
// and concurrency under the gate must never exceed its capacity.
func TestRunProfileGate(t *testing.T) {
	grid := pkgmodel.DefaultPDN(pkgmodel.PGA, 2, 2, 2)
	fs := testFreqs(t, 30)
	g := &countingGate{capacity: 2, sem: make(chan struct{}, 2)}
	_, err := RunProfile(context.Background(), grid, fs, Config{Workers: 4, ChunkSize: 2, Gate: g})
	if err != nil {
		t.Fatal(err)
	}
	if g.acquires.Load() == 0 {
		t.Error("gate never acquired")
	}
	if a, r := g.acquires.Load(), g.releases.Load(); a != r {
		t.Errorf("unbalanced gate: %d acquires, %d releases", a, r)
	}
	if g.maxInFlight.Load() > int64(g.capacity) {
		t.Errorf("gate overshoot: %d > %d", g.maxInFlight.Load(), g.capacity)
	}
}

type countingGate struct {
	capacity    int
	sem         chan struct{}
	mu          sync.Mutex
	inFlight    int64
	acquires    atomic.Int64
	releases    atomic.Int64
	maxInFlight atomic.Int64
}

func (g *countingGate) Acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	g.acquires.Add(1)
	g.mu.Lock()
	g.inFlight++
	if g.inFlight > g.maxInFlight.Load() {
		g.maxInFlight.Store(g.inFlight)
	}
	g.mu.Unlock()
	return nil
}

func (g *countingGate) Release() {
	g.mu.Lock()
	g.inFlight--
	g.mu.Unlock()
	g.releases.Add(1)
	<-g.sem
}

// TestRunProfileCancellation: a canceled context must abort promptly with
// the context error and no goroutine leak (the -race build watches).
func TestRunProfileCancellation(t *testing.T) {
	grid := pkgmodel.DefaultPDN(pkgmodel.PGA, 4, 4, 6)
	fs := testFreqs(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunProfile(ctx, grid, fs, Config{Workers: 4}); err == nil {
		t.Error("canceled run returned nil error")
	}
}

// TestRunProfileErrors: empty grids and invalid inputs.
func TestRunProfileErrors(t *testing.T) {
	grid := pkgmodel.DefaultPDN(pkgmodel.PGA, 2, 2, 2)
	if _, err := RunProfile(context.Background(), grid, nil, Config{}); err == nil {
		t.Error("empty frequency list accepted")
	}
	bad := *grid
	bad.Rows = 0
	if _, err := RunProfile(context.Background(), &bad, testFreqs(t, 4), Config{}); err == nil {
		t.Error("invalid grid accepted")
	}
}

// TestOptimizeDecapsLowersPeak: the acceptance criterion — the greedy
// optimizer must provably lower peak |Z(f)| on a PGA-class grid.
func TestOptimizeDecapsLowersPeak(t *testing.T) {
	grid := pkgmodel.DefaultPDN(pkgmodel.PGA, 3, 3, 4)
	fs := testFreqs(t, 60)
	res, err := OptimizeDecaps(context.Background(), OptimizeSpec{
		Grid:      grid,
		Freqs:     fs,
		DecapC:    2e-9,
		DecapESR:  10e-3,
		MaxDecaps: 4,
		Config:    Config{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) == 0 {
		t.Fatal("optimizer placed nothing")
	}
	if !(res.PeakAfter < res.PeakBefore) {
		t.Fatalf("peak |Z| did not drop: before %g, after %g", res.PeakBefore, res.PeakAfter)
	}
	// Each recorded step must decrease monotonically.
	prev := res.PeakBefore
	for i, p := range res.Placements {
		if !(p.PeakAfter < p.PeakBefore) || p.PeakBefore != prev {
			t.Errorf("step %d: before %g after %g (prev %g)", i, p.PeakBefore, p.PeakAfter, prev)
		}
		if p.Grad >= 0 {
			t.Errorf("step %d placed on non-negative gradient %g", i, p.Grad)
		}
		prev = p.PeakAfter
	}
	// The grid's placed decaps must match the placement log.
	placed := 0
	for _, d := range res.Grid.DecapSites {
		if d.C > 0 {
			placed++
		}
	}
	if placed != len(res.Placements) {
		t.Errorf("%d sites hold decaps, %d placements recorded", placed, len(res.Placements))
	}
	// And the final profile must be the profile of the final grid.
	check, err := RunProfile(context.Background(), res.Grid, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if check.Peak().AbsZ != res.PeakAfter {
		t.Errorf("final grid peak %g != reported %g", check.Peak().AbsZ, res.PeakAfter)
	}
}

// TestOptimizeDecapsValidation: bad specs must be rejected.
func TestOptimizeDecapsValidation(t *testing.T) {
	grid := pkgmodel.DefaultPDN(pkgmodel.PGA, 2, 2, 2)
	fs := testFreqs(t, 8)
	cases := []OptimizeSpec{
		{Grid: grid, Freqs: fs, DecapC: 0, DecapESR: 1e-3, MaxDecaps: 1},
		{Grid: grid, Freqs: fs, DecapC: 1e-9, DecapESR: 0, MaxDecaps: 1},
		{Grid: grid, Freqs: fs, DecapC: 1e-9, DecapESR: 1e-3, MaxDecaps: 0},
	}
	for i, spec := range cases {
		if _, err := OptimizeDecaps(context.Background(), spec); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// The input grid must not be mutated by a successful run.
	before := len(grid.DecapSites)
	if _, err := OptimizeDecaps(context.Background(), OptimizeSpec{
		Grid: grid, Freqs: fs, DecapC: 1e-9, DecapESR: 5e-3, MaxDecaps: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if len(grid.DecapSites) != before {
		t.Error("OptimizeDecaps mutated the caller's grid")
	}
	for _, d := range grid.DecapSites {
		if d.C != 0 {
			t.Error("OptimizeDecaps mutated the caller's decap sites")
		}
	}
}
