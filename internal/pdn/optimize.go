package pdn

import (
	"context"
	"fmt"
	"math"

	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
)

// OptimizeSpec configures greedy decap placement.
type OptimizeSpec struct {
	// Grid is the starting PDN. Its DecapSites list both pre-placed decaps
	// (C > 0) and empty candidate sites (C == 0); when no sites are listed,
	// every mesh node becomes a candidate.
	Grid *pkgmodel.PDNGrid
	// Freqs is the analysis grid (spice.FreqGrid output).
	Freqs []float64
	// DecapC and DecapESR describe the unit decap placed per step.
	DecapC   float64
	DecapESR float64
	// MaxDecaps bounds how many decaps may be placed.
	MaxDecaps int

	Config
}

// Placement records one greedy step.
type Placement struct {
	Site       int     `json:"site"`      // index into the grid's DecapSites
	Node       int     `json:"node"`      // mesh node id
	Grad       float64 `json:"grad"`      // d|Z_peak|/dC at decision time (1/F·Ω)
	PeakFreq   float64 `json:"peak_freq"` // refined Hz of the peak being attacked
	PeakBefore float64 `json:"peak_before"`
	PeakAfter  float64 `json:"peak_after"`
}

// OptimizeResult is the outcome of a greedy decap placement run.
type OptimizeResult struct {
	Placements []Placement
	PeakBefore float64 // peak |Z| of the starting grid
	PeakAfter  float64 // peak |Z| after all placements
	Grid       *pkgmodel.PDNGrid
	Baseline   *Profile // profile before optimization
	Final      *Profile // profile after optimization
}

// OptimizeDecaps greedily places decaps to minimize the peak of |Z(f)|:
// each step refines the peak frequency (see bestSite) and computes the
// adjoint gradient of the peak impedance with respect to a virtual
// capacitance at every open candidate site — one transposed solve covers
// all of them — places a unit decap at the
// steepest-descent site, and re-sweeps. A placement that fails to lower the
// peak (anti-resonance shifts can do this) is rolled back and its site
// retired, so the returned sequence provably decreases peak |Z| step by
// step: PeakAfter < PeakBefore whenever any placement is reported.
func OptimizeDecaps(ctx context.Context, spec OptimizeSpec) (*OptimizeResult, error) {
	if spec.DecapC <= 0 || spec.DecapESR <= 0 {
		return nil, fmt.Errorf("pdn: decap C=%g ESR=%g must be positive", spec.DecapC, spec.DecapESR)
	}
	if spec.MaxDecaps < 1 {
		return nil, fmt.Errorf("pdn: MaxDecaps %d must be at least 1", spec.MaxDecaps)
	}
	grid := cloneGrid(spec.Grid)
	if len(grid.DecapSites) == 0 {
		for n := 0; n < grid.Rows*grid.Cols; n++ {
			grid.DecapSites = append(grid.DecapSites, pkgmodel.DecapSite{Node: n})
		}
	}
	if err := grid.Validate(); err != nil {
		return nil, err
	}

	// One sweep context per accepted grid state: its pooled engines carry
	// the symbolic analysis and warm buffers through the baseline sweep,
	// every peak refinement, and the adjoint pricing of that state.
	cur, err := NewSweeper(grid, spec.Config)
	if err != nil {
		return nil, err
	}
	baseline, err := cur.RunProfile(ctx, spec.Freqs)
	if err != nil {
		return nil, err
	}
	res := &OptimizeResult{
		PeakBefore: baseline.Peak().AbsZ,
		PeakAfter:  baseline.Peak().AbsZ,
		Baseline:   baseline,
		Grid:       grid,
	}
	current := baseline
	retired := make(map[int]bool)

	for len(res.Placements) < spec.MaxDecaps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		site, grad, peakFreq, err := bestSite(cur, grid, current, retired)
		if err != nil {
			return nil, err
		}
		if site < 0 || grad >= 0 {
			break // no open site lowers the peak to first order
		}
		// Trial placement: the trial's sweep context becomes the current
		// one on acceptance (its netlist snapshot is the accepted state).
		saved := grid.DecapSites[site]
		grid.DecapSites[site].C += spec.DecapC
		grid.DecapSites[site].ESR = spec.DecapESR
		trialSw, err := NewSweeper(grid, spec.Config)
		if err != nil {
			return nil, err
		}
		trial, err := trialSw.RunProfile(ctx, spec.Freqs)
		if err != nil {
			return nil, err
		}
		if trial.Peak().AbsZ >= res.PeakAfter {
			// The first-order gradient lied at this step size: revert and
			// retire the site for this run.
			grid.DecapSites[site] = saved
			retired[site] = true
			continue
		}
		res.Placements = append(res.Placements, Placement{
			Site:       site,
			Node:       grid.DecapSites[site].Node,
			Grad:       grad,
			PeakFreq:   peakFreq,
			PeakBefore: res.PeakAfter,
			PeakAfter:  trial.Peak().AbsZ,
		})
		res.PeakAfter = trial.Peak().AbsZ
		retired[site] = true // one unit decap per site keeps the search spread out
		current = trial
		cur = trialSw
		res.Final = trial
	}
	if res.Final == nil {
		res.Final = baseline
	}
	return res, nil
}

// refineIters bounds the golden-section peak refinement; the log-frequency
// bracket shrinks by 0.618 per iteration, so 48 iterations resolve any
// inter-sample bracket far below floating-point noise. Each iteration costs
// one AC factor+solve.
const refineIters = 48

// bestSite ranks the open candidate sites by d|Z|/dC at the *refined* peak
// frequency and returns the steepest-descent site index (or -1 when no
// gradient is negative) with its gradient and the refined frequency.
//
// The refinement is load-bearing, not a nicety. For a high-Q anti-resonance
// the fixed-frequency gradient splits into a height term and a huge
// resonance-shift term whose sign flips across the resonance; at a grid
// sample even slightly off the true peak, the shift term dominates and the
// gradient is useless (often positive at sites where a decap plainly
// helps). By the envelope theorem, d(max_f |Z|)/dC equals the fixed-
// frequency partial evaluated at the true argmax f*, where the shift term
// vanishes by stationarity and only the genuine height term survives. So
// the peak is first located by golden-section search in log f between the
// grid samples bracketing the discrete maximum, and one adjoint solve at
// f* then prices every candidate site.
func bestSite(sw *Sweeper, grid *pkgmodel.PDNGrid, prof *Profile, retired map[int]bool) (site int, grad, peakFreq float64, err error) {
	best, bestGrad, fstar := -1, 0.0, 0.0
	err = sw.borrow(func(eng *spice.ACEngine, obs int) error {
		fstar, err = refinePeak(eng, obs, prof)
		if err != nil {
			return err
		}
		if _, _, err := eng.ImpedanceSens(2*math.Pi*fstar, obs, nil); err != nil {
			return err
		}
		for i, d := range grid.DecapSites {
			if retired[i] || d.C > 0 {
				continue
			}
			node := eng.NodeIndex(grid.NodeName(d.Node))
			if node < 0 {
				return fmt.Errorf("pdn: candidate node %q missing from netlist", grid.NodeName(d.Node))
			}
			g, err := eng.CapSens(node, 0)
			if err != nil {
				return err
			}
			if g < bestGrad {
				best, bestGrad = i, g
			}
		}
		return nil
	})
	if err != nil {
		return -1, 0, 0, err
	}
	return best, bestGrad, fstar, nil
}

// refinePeak golden-section maximizes |Z(f)| in log f between the grid
// samples bracketing the profile's discrete peak.
func refinePeak(eng *spice.ACEngine, obs int, prof *Profile) (float64, error) {
	i := prof.PeakIdx
	lo := prof.Points[i].Freq
	if i > 0 {
		lo = prof.Points[i-1].Freq
	}
	hi := prof.Points[i].Freq
	if i+1 < len(prof.Points) {
		hi = prof.Points[i+1].Freq
	}
	if !(hi > lo) {
		return prof.Points[i].Freq, nil
	}
	absAt := func(f float64) (float64, error) {
		z, err := eng.Impedance(2*math.Pi*f, obs)
		if err != nil {
			return 0, err
		}
		return math.Hypot(real(z), imag(z)), nil
	}
	const invPhi = 0.6180339887498949
	la, lb := math.Log(lo), math.Log(hi)
	c := lb - (lb-la)*invPhi
	d := la + (lb-la)*invPhi
	fc, err := absAt(math.Exp(c))
	if err != nil {
		return 0, err
	}
	fd, err := absAt(math.Exp(d))
	if err != nil {
		return 0, err
	}
	for it := 0; it < refineIters; it++ {
		if fc > fd {
			lb, d, fd = d, c, fc
			c = lb - (lb-la)*invPhi
			if fc, err = absAt(math.Exp(c)); err != nil {
				return 0, err
			}
		} else {
			la, c, fc = c, d, fd
			d = la + (lb-la)*invPhi
			if fd, err = absAt(math.Exp(d)); err != nil {
				return 0, err
			}
		}
	}
	return math.Exp((la + lb) / 2), nil
}

func cloneGrid(g *pkgmodel.PDNGrid) *pkgmodel.PDNGrid {
	c := *g
	c.PadSites = append([]int(nil), g.PadSites...)
	c.DecapSites = append([]pkgmodel.DecapSite(nil), g.DecapSites...)
	return &c
}
