package oracle

import (
	"math"
	"testing"

	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
)

// The fuzz targets take raw integers and map them through Generate, which
// clamps every input into the oracle's validity envelope by construction.
// Fuzzing therefore explores generator seeds/indices — i.e. the reachable
// corner of the design space — rather than wasting executions on points
// Params.Validate or the envelope would reject anyway.

// FuzzMaxSSNvsSpice is the headline differential target: any (seed, index)
// the fuzzer invents becomes a valid design point whose closed-form maximum
// must match the transistor-level simulation inside the per-case band.
func FuzzMaxSSNvsSpice(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(2), uint16(797)) // once a stiffness escape, now pinned
	f.Add(int64(2), uint16(4952))
	f.Add(int64(-12345), uint16(3))
	f.Fuzz(func(t *testing.T, seed int64, idx uint16) {
		pt, ok := Generate(seed, int(idx))
		if !ok {
			t.Skip("generator exhausted retries")
		}
		res := Check(pt, spice.Options{})
		if res.Err != nil {
			t.Fatalf("infrastructure error for %s: %v", pt, res.Err)
		}
		if !res.Pass {
			t.Errorf("disagreement: %s", res)
		}
	})
}

// FuzzLCLimitToL pins the C -> 0 limit: the LC closed forms must converge
// to the first-order L-only model as the pad capacitance vanishes. The
// convergence is O(C/Cm) with an O(1) constant, but below eps ~ 1e-8 a
// second term takes over: the over-damped eigenvalues come from a
// subtraction that cancels to ~1e-16/eps relative, so the tolerance
// carries both terms (measured: rel ~ 2·eps + 2e-17/eps on sample points).
func FuzzLCLimitToL(f *testing.F) {
	f.Add(int64(1), uint16(0), uint8(0))
	f.Add(int64(5), uint16(17), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, idx uint16, e uint8) {
		pt, ok := Generate(seed, int(idx))
		if !ok {
			t.Skip("generator exhausted retries")
		}
		// eps in [1e-9, 1e-5], log-spaced by the fuzzed byte.
		eps := math.Pow(10, -9+4*float64(e)/255)
		p := pt.Params()
		p.C = eps * p.CriticalCapacitance()
		lc, err := ssn.NewLCModel(p)
		if err != nil {
			t.Fatalf("NewLCModel: %v", err)
		}
		p0 := p
		p0.C = 0
		lo, err := ssn.NewLModel(p0)
		if err != nil {
			t.Fatalf("NewLModel: %v", err)
		}
		vLC, vL := lc.VMax(), lo.VMax()
		rel := math.Abs(vLC-vL) / math.Max(vL, vmaxFloor*p.Vdd)
		if rel > 100*eps+2e-14/eps {
			t.Errorf("LC limit diverges from L-only model: eps=%.3g rel=%.3g (%s)", eps, rel, pt)
		}
	})
}

// FuzzCaseBoundaryContinuity straddles the critically-damped classifier
// band: nudging C from just below to just above the critical capacitance
// flips the closed form between three different formulas, and Vmax must
// not jump. The analytic jump is O(delta) because the over-damped form is
// even in the eigenvalue split (DESIGN.md §11).
func FuzzCaseBoundaryContinuity(f *testing.F) {
	f.Add(int64(1), uint16(2), uint8(10))
	f.Add(int64(9), uint16(44), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, idx uint16, d uint8) {
		pt, ok := Generate(seed, int(idx))
		if !ok {
			t.Skip("generator exhausted retries")
		}
		// delta in [1e-8, 1e-5] relative: always outside the 1e-9
		// classifier band, so the two sides classify differently.
		delta := math.Pow(10, -8+3*float64(d)/255)
		p := pt.Params()
		cm := p.CriticalCapacitance()
		below, above := p, p
		below.C = cm * (1 - delta)
		above.C = cm * (1 + delta)
		vb, cb, err := ssn.MaxSSN(below)
		if err != nil {
			t.Fatalf("MaxSSN(below): %v", err)
		}
		va, ca, err := ssn.MaxSSN(above)
		if err != nil {
			t.Fatalf("MaxSSN(above): %v", err)
		}
		if cb == ca {
			// Both sides landed in the same case (classifier band wider
			// than delta for this point); continuity is then trivial.
			return
		}
		rel := math.Abs(va-vb) / math.Max(vb, vmaxFloor*p.Vdd)
		if rel > 100*delta+1e-9 {
			t.Errorf("Vmax jumps across critical boundary: delta=%.3g rel=%.3g cases %v|%v (%s)",
				delta, rel, cb, ca, pt)
		}
	})
}
