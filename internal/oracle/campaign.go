package oracle

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
	"ssnkit/internal/sweep"
)

// Config parameterizes a differential-verification campaign.
type Config struct {
	Points  int           // design points to check (default 500)
	Seed    int64         // generator seed; same seed => same points, any worker count
	Workers int           // concurrent checkers (default GOMAXPROCS)
	Opts    spice.Options // transient-engine options (zero value = defaults)

	// ReproDir, when non-empty, receives a shrunk .cir + .json repro pair
	// for each disagreement (capped at maxRepros per run).
	ReproDir string

	// Gate optionally bounds campaign concurrency jointly with other
	// subsystems (the sweep engine's semaphore satisfies it). Nil means
	// unbounded beyond Workers.
	Gate sweep.Gate
}

// maxRepros caps how many disagreements one campaign run shrinks and dumps;
// past the first few, more dumps are noise, and shrinking is expensive.
const maxRepros = 8

// Report summarizes a campaign.
type Report struct {
	Points     int            // points checked
	Passed     int            // inside their tolerance band
	Failed     int            // outside the band: genuine disagreements
	Errored    int            // infrastructure errors (build/convergence), not disagreements
	CaseCounts map[string]int // checked points per Table 1 case
	WorstRel   map[string]float64
	Failures   []Result // the disagreements (and errors), index order
	Dumped     []string // repro basenames written to Config.ReproDir
}

// OK reports whether the campaign found no disagreements and no errors.
func (r *Report) OK() bool { return r.Failed == 0 && r.Errored == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle campaign: %d points, %d pass, %d fail, %d error\n",
		r.Points, r.Passed, r.Failed, r.Errored)
	names := make([]string, 0, len(r.CaseCounts))
	for name := range r.CaseCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-22s %5d points, worst rel err %.3g\n",
			name, r.CaseCounts[name], r.WorstRel[name])
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  #%d %s\n", f.Index, f)
	}
	for _, d := range r.Dumped {
		fmt.Fprintf(&b, "  repro: %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Run executes a seeded campaign: Points design points are generated
// deterministically from Seed (point i is always the same, regardless of
// Workers), each is checked differentially against the transient engine,
// and disagreements are shrunk to minimal repros and dumped to ReproDir.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Points <= 0 {
		cfg.Points = 500
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Points {
		cfg.Workers = cfg.Points
	}

	results := make([]Result, cfg.Points)
	var (
		wg       sync.WaitGroup
		gateErr  error
		gateOnce sync.Once
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Index striping keeps the point->result mapping fixed for any
			// worker count; determinism lives in Generate(seed, i). The Plan
			// is the worker's reusable analytic evaluator (see checkWith).
			var pl ssn.Plan
			for i := w; i < cfg.Points; i += cfg.Workers {
				if ctx.Err() != nil {
					return
				}
				if cfg.Gate != nil {
					if err := cfg.Gate.Acquire(ctx); err != nil {
						gateOnce.Do(func() { gateErr = err })
						return
					}
				}
				results[i] = checkIndex(&pl, cfg, i)
				if cfg.Gate != nil {
					cfg.Gate.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if gateErr != nil {
		return nil, gateErr
	}

	rep := &Report{
		Points:     cfg.Points,
		CaseCounts: map[string]int{},
		WorstRel:   map[string]float64{},
	}
	for _, res := range results {
		switch {
		case res.Err != nil:
			rep.Errored++
			rep.Failures = append(rep.Failures, res)
		case res.Pass:
			rep.Passed++
		default:
			rep.Failed++
			rep.Failures = append(rep.Failures, res)
		}
		if res.Err == nil {
			rep.CaseCounts[res.CaseName]++
			rep.WorstRel[res.CaseName] = math.Max(rep.WorstRel[res.CaseName], res.RelErr)
		}
	}

	// Shrink+dump serially: failures are rare, shrinking re-simulates, and
	// deterministic dump order beats parallel speed here.
	if cfg.ReproDir != "" {
		for _, f := range rep.Failures {
			if len(rep.Dumped) >= maxRepros || f.Err != nil {
				break
			}
			small := Shrink(f.Point, cfg.Opts)
			name, err := DumpRepro(cfg.ReproDir, fmt.Sprintf("campaign-seed%d-%d", cfg.Seed, f.Index), small, cfg.Opts)
			if err != nil {
				return rep, fmt.Errorf("oracle: dump repro for point %d: %w", f.Index, err)
			}
			rep.Dumped = append(rep.Dumped, name)
		}
	}
	return rep, nil
}

// checkIndex generates and checks the i-th point of the campaign with the
// worker's reusable Plan.
func checkIndex(pl *ssn.Plan, cfg Config, i int) Result {
	pt, ok := Generate(cfg.Seed, i)
	if !ok {
		return Result{Index: i, Err: fmt.Errorf("oracle: generator exhausted retries at index %d", i)}
	}
	res := checkWith(pl, pt, cfg.Opts)
	res.Index = i
	return res
}
