// Package oracle is ssnkit's differential-verification subsystem: it
// cross-checks the paper's closed-form SSN maxima (internal/ssn, Table 1)
// against the transistor-level transient engine (internal/spice) on
// randomized-but-seeded design points.
//
// The trick that makes the check tight is device.ASDMDevice: the netlist
// uses the *exact* device the closed forms assume, so the analytic maximum
// and the simulated bounce must agree to numerical-integration accuracy —
// fractions of a percent, not the ~10% device-modeling error the paper's
// Fig. 3 comparison absorbs. Per-case tolerance bands (Tolerance) encode
// the expected discretization error of the trapezoidal integrator plus
// peak-sampling error; any point outside its band is a genuine
// disagreement between the two implementations, is shrunk to a minimal
// repro (Shrink) and dumped as a .cir deck plus JSON design point
// (DumpRepro) for regression.
//
// Three layers consume the check:
//
//   - native Go fuzz targets (FuzzMaxSSNvsSpice, FuzzLCLimitToL,
//     FuzzCaseBoundaryContinuity) plus metamorphic invariants;
//   - a deterministic seeded campaign (Run) behind cmd/ssnoracle and the
//     tier-1 TestCampaign;
//   - curated hard points under testdata/repros replayed as table-driven
//     regression tests.
package oracle

import (
	"fmt"
	"math"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
)

// DesignPoint is one randomized configuration of the paper's design space:
// the driver array (N, ASDM parameters), the ground net (L, C) and the
// input edge (Slope, Vdd). It is the JSON shape of repro dumps.
type DesignPoint struct {
	N     int     `json:"n"`     // simultaneously switching drivers
	L     float64 `json:"l"`     // ground inductance, H
	C     float64 `json:"c"`     // ground (pad) capacitance, F
	K     float64 `json:"k"`     // ASDM transconductance, A/V
	V0    float64 `json:"v0"`    // ASDM displacement voltage, V
	A     float64 `json:"a"`     // ASDM source sensitivity
	Slope float64 `json:"slope"` // input ramp slope, V/s
	Vdd   float64 `json:"vdd"`   // input ramp top, V
}

// Params maps the design point onto the closed-form parameter struct.
func (pt DesignPoint) Params() ssn.Params {
	return ssn.Params{
		N:     pt.N,
		Dev:   device.ASDM{K: pt.K, V0: pt.V0, A: pt.A},
		Vdd:   pt.Vdd,
		Slope: pt.Slope,
		L:     pt.L,
		C:     pt.C,
	}
}

// Rise returns the input edge rise time Vdd/Slope.
func (pt DesignPoint) Rise() float64 { return pt.Vdd / pt.Slope }

func (pt DesignPoint) String() string {
	return fmt.Sprintf("N=%d L=%.4g C=%.4g K=%.4g V0=%.4g a=%.4g slope=%.4g Vdd=%.4g",
		pt.N, pt.L, pt.C, pt.K, pt.V0, pt.A, pt.Slope, pt.Vdd)
}

// Tolerance returns the per-case relative tolerance band of the
// differential check. The bands bound the *numerical* disagreement of two
// correct implementations:
//
//   - cases measured at the ramp end (over-damped, critically damped,
//     under-damped boundary) see only the integrator's global O(h²)
//     truncation error; at the TranSpec step densities the worst observed
//     error over 20k generated points is ~1.3e-6. The band is 5e-4.
//   - the under-damped peak case adds peak-sampling error (the discrete
//     time grid straddles the analytic peak, O((ωh)²/8) relative) and
//     error accumulated over the ringing cycles; worst observed ~1.3e-5.
//     The band is 2e-3.
//
// Both bands sit two orders of magnitude above the measured numerical
// noise floor, so a point outside its band is a real divergence between
// the closed forms and the transient engine, not integration noise — while
// still flagging sub-percent modeling bugs. DESIGN.md §11 derives the
// numbers.
func Tolerance(c ssn.Case) float64 {
	if c == ssn.UnderDampedPeak {
		return 2e-3
	}
	return 5e-4
}

// vmaxFloor is the relative-error denominator floor, as a fraction of Vdd:
// points whose analytic maximum is tiny compare against this instead, so
// the relative error stays meaningful. The generator rejects points this
// small anyway; the floor guards hand-written and fuzzed points.
const vmaxFloor = 1e-3

// Result is the outcome of one differential check.
type Result struct {
	Index    int         `json:"index,omitempty"` // campaign position, when applicable
	Point    DesignPoint `json:"point"`
	Case     ssn.Case    `json:"case"`
	CaseName string      `json:"case_name"`
	Analytic float64     `json:"analytic"` // Table 1 closed form, V
	Sim      float64     `json:"sim"`      // transient-engine maximum in the ramp window, V
	RelErr   float64     `json:"rel_err"`  // |sim-analytic| / max(analytic, floor)
	Tol      float64     `json:"tol"`      // band the point was judged against
	Pass     bool        `json:"pass"`
	SimSteps int         `json:"sim_steps,omitempty"`
	Err      error       `json:"-"` // infrastructure failure (build/convergence), not a disagreement
}

func (r Result) String() string {
	status := "PASS"
	if r.Err != nil {
		status = "ERROR " + r.Err.Error()
	} else if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%s [%s] analytic=%.6g sim=%.6g rel=%.3g tol=%.3g %s",
		status, r.CaseName, r.Analytic, r.Sim, r.RelErr, r.Tol, r.Point)
}

// Check runs the full differential comparison for one design point:
// classify and evaluate the closed form, synthesize the equivalent
// driver-array netlist, simulate it, and compare the in-ramp maxima
// against the per-case tolerance band. A zero opts uses the engine
// defaults (fixed-step trapezoidal integration).
func Check(pt DesignPoint, opts spice.Options) Result {
	var pl ssn.Plan
	return checkWith(&pl, pt, opts)
}

// checkWith is Check with a caller-owned Plan for the analytic side.
// Compile with PlanFixed validates exactly like the model constructor and
// produces bitwise-identical Table 1 answers, so campaign workers reuse
// one Plan across their stripe of points instead of allocating a model
// per check — the analytic half of the comparison stays off the heap.
func checkWith(pl *ssn.Plan, pt DesignPoint, opts spice.Options) Result {
	res := Result{Point: pt}
	if err := pl.Compile(pt.Params(), ssn.PlanFixed); err != nil {
		res.Err = err
		return res
	}
	res.Case = pl.Case()
	res.CaseName = pl.Case().String()
	res.Analytic = pl.VMax()
	res.Tol = Tolerance(pl.Case())

	sim, steps, err := Simulate(pt, opts)
	if err != nil {
		res.Err = err
		return res
	}
	res.Sim = sim
	res.SimSteps = steps
	res.RelErr = math.Abs(sim-res.Analytic) / math.Max(res.Analytic, vmaxFloor*pt.Vdd)
	res.Pass = res.RelErr <= res.Tol
	return res
}

// Simulate synthesizes the netlist for the point and runs the transient
// engine, returning the peak bounce voltage inside the ramp window (the
// quantity Table 1 models) and the number of accepted time steps.
func Simulate(pt DesignPoint, opts spice.Options) (vmax float64, steps int, err error) {
	ckt, tran, err := BuildDeck(pt)
	if err != nil {
		return 0, 0, err
	}
	eng, err := spice.New(ckt, opts)
	if err != nil {
		return 0, 0, err
	}
	set, err := eng.Transient(tran)
	if err != nil {
		return 0, 0, err
	}
	w := set.Get("v(" + driver.BounceNode + ")")
	if w == nil {
		return 0, 0, fmt.Errorf("oracle: missing v(%s) in simulation output", driver.BounceNode)
	}
	_, vmax = w.Max()
	return vmax, w.Len(), nil
}
