package oracle

import (
	"fmt"
	"math"

	"ssnkit/internal/circuit"
	"ssnkit/internal/device"
	"ssnkit/internal/ssn"
)

// mergedThreshold is the driver count above which Build collapses the
// array into one N-times-wider device. With zero skew the collapse is
// exact by symmetry (TestMergedMatchesExplicit pins it), and it keeps the
// campaign's per-point simulation cost independent of N.
const mergedThreshold = 8

// simStepsPerWindow sets the fixed-step resolution: steps across the model
// window τr, and (for ringing points) steps per damped period. 600 points
// per window keeps the trapezoidal integrator's global O(h²) error near
// 1e-5 relative; see the Tolerance doc for how the bands budget it.
const (
	simStepsPerWindow = 600
	simStepsPerCycle  = 300
	simStepsPerTau    = 6
	simMaxSteps       = 120000
)

// Build synthesizes the driver-array circuit for a design point: N
// identical ASDMDevice pull-downs discharging their loads into the shared
// ground net, gates driven by one common ramp. merged collapses the array
// into a single N-times-wider device.
//
// The device bulks are wired to the true ground node "0" — NOT the bounce
// rail like driver.ArrayConfig does — because ASDMDevice recovers the
// ground-referenced source voltage through vbs (see its doc). The load
// capacitance only has to absorb the drain charge (the ASDM has no drain
// feedback), so it is sized to keep the output swing near Vdd/2.
func Build(pt DesignPoint, merged bool) (*circuit.Circuit, error) {
	p := pt.Params()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rise := pt.Rise()
	delay := rise / 10
	tauR := p.TauRise()

	ckt := circuit.New(fmt.Sprintf("oracle %s", pt))
	ckt.AddV("vin", "g", "0", circuit.Ramp{V0: 0, V1: pt.Vdd, Delay: delay, Rise: rise})

	// Per-driver load: absorbs at most K*(Vdd-V0)*tauR of charge during
	// the window; 2x headroom keeps the (inert) output node well-behaved.
	cload := 2 * pt.K * (pt.Vdd - pt.V0) * tauR / pt.Vdd
	n := pt.N
	width := 1.0
	if merged {
		width = float64(pt.N)
		n = 1
	}
	// One shared device instance: Format dedupes .MODEL cards by identity,
	// so the dumped deck carries a single card for the whole array.
	dev := &device.ASDMDevice{
		ModelName: fmt.Sprintf("asdm-%gx", width),
		M:         device.ASDM{K: pt.K * width, V0: pt.V0, A: pt.A},
	}
	for i := 1; i <= n; i++ {
		out := fmt.Sprintf("out%d", i)
		ckt.AddM(fmt.Sprintf("m%d", i), out, "g", "vssi", "0", dev, circuit.NChannel)
		cl := ckt.AddC(fmt.Sprintf("cl%d", i), out, "0", cload*width)
		cl.IC = pt.Vdd
	}
	ckt.AddL("lgnd", "vssi", "0", pt.L)
	if pt.C > 0 {
		ckt.AddC("cnet", "vssi", "0", pt.C)
	}
	return ckt, nil
}

// TranSpec picks the fixed-step transient grid for a point: the run covers
// the input ramp (delay + rise, the window Table 1 models), resolved to
// simStepsPerWindow points per τr, simStepsPerCycle points per damped
// period when the point rings, and simStepsPerTau points per fastest
// natural time constant. The last one matters for stiff over/critically
// damped points (C far below critical): a step that only resolves the ramp
// leaves σ·h ≳ 1 and the trapezoidal rule smears the start-up transient
// into a percent-level error at the ramp end.
func TranSpec(pt DesignPoint) (circuit.TranSpec, error) {
	m, err := ssn.NewLCModel(pt.Params())
	if err != nil {
		return circuit.TranSpec{}, err
	}
	rise := pt.Rise()
	stop := rise/10 + rise
	step := m.P.TauRise() / simStepsPerWindow
	if w := m.Omega(); w > 0 {
		step = math.Min(step, 2*math.Pi/w/simStepsPerCycle)
	}
	if rate := fastRate(m.P); rate > 0 {
		step = math.Min(step, 1/(simStepsPerTau*rate))
	}
	if stop/step > simMaxSteps {
		return circuit.TranSpec{}, fmt.Errorf("oracle: point needs %.0f steps (cap %d): %s",
			stop/step, simMaxSteps, pt)
	}
	return circuit.TranSpec{Step: step, Stop: stop, UseIC: true}, nil
}

// fastRate returns the fastest natural decay rate of the bounce ODE: |l2|
// for over-damped points, σ otherwise, and the first-order pole 1/(N·K·a·L)
// in the C = 0 limit.
func fastRate(p ssn.Params) float64 {
	nka := float64(p.N) * p.Dev.K * p.Dev.A
	if p.C == 0 {
		return 1 / (nka * p.L)
	}
	sigma := nka / (2 * p.C)
	if disc := sigma*sigma - 1/(p.L*p.C); disc > 0 {
		return sigma + math.Sqrt(disc)
	}
	return sigma
}

// BuildDeck assembles the simulation-ready circuit and transient spec,
// choosing merged synthesis above mergedThreshold drivers.
func BuildDeck(pt DesignPoint) (*circuit.Circuit, circuit.TranSpec, error) {
	tran, err := TranSpec(pt)
	if err != nil {
		return nil, circuit.TranSpec{}, err
	}
	ckt, err := Build(pt, pt.N > mergedThreshold)
	if err != nil {
		return nil, circuit.TranSpec{}, err
	}
	return ckt, tran, nil
}

// Deck packages the point as a parseable netlist deck (the .cir shape of
// repro dumps): the same circuit and .tran card BuildDeck simulates.
func Deck(pt DesignPoint) (*circuit.Deck, error) {
	ckt, tran, err := BuildDeck(pt)
	if err != nil {
		return nil, err
	}
	return &circuit.Deck{Circuit: ckt, Tran: &tran}, nil
}
