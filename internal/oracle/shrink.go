package oracle

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"ssnkit/internal/circuit"
	"ssnkit/internal/spice"
)

// Shrink greedily reduces a disagreeing design point to a smaller one that
// still disagrees: fewer drivers, degenerate knobs (C -> 0, a -> 1), and
// rounded parameter values all make the eventual repro deck easier to read
// and to replay by hand. Every candidate is re-Checked; a transformation is
// kept only if the shrunk point still fails, so the returned point always
// reproduces the disagreement (in the worst case it is pt unchanged).
func Shrink(pt DesignPoint, opts spice.Options) DesignPoint {
	fails := func(cand DesignPoint) bool {
		res := Check(cand, opts)
		return res.Err == nil && !res.Pass
	}
	if !fails(pt) {
		// Not reproducibly failing (flaky infrastructure); nothing to do.
		return pt
	}

	// Fewer drivers first: N=1 is the easiest deck to stare at. Binary
	// descent, then linear for the last steps.
	for pt.N > 1 {
		cand := pt
		cand.N = pt.N / 2
		if !fails(cand) {
			break
		}
		pt = cand
	}
	for pt.N > 1 {
		cand := pt
		cand.N--
		if !fails(cand) {
			break
		}
		pt = cand
	}

	// Degenerate knobs: drop the pad capacitance, neutralize the source
	// sensitivity.
	if pt.C != 0 {
		cand := pt
		cand.C = 0
		if fails(cand) {
			pt = cand
		} else {
			for i := 0; i < 8; i++ {
				cand := pt
				cand.C = pt.C / 2
				if !fails(cand) {
					break
				}
				pt = cand
			}
		}
	}
	if pt.A != 1 {
		cand := pt
		cand.A = 1
		if fails(cand) {
			pt = cand
		}
	}

	// Round every float to 3 significant digits where the failure survives
	// it: repro decks full of 17-digit literals are hostile to humans.
	round := func(get func(*DesignPoint) *float64) {
		cand := pt
		f := get(&cand)
		*f = roundSig(*f, 3)
		if fails(cand) {
			pt = cand
		}
	}
	round(func(p *DesignPoint) *float64 { return &p.L })
	round(func(p *DesignPoint) *float64 { return &p.C })
	round(func(p *DesignPoint) *float64 { return &p.K })
	round(func(p *DesignPoint) *float64 { return &p.V0 })
	round(func(p *DesignPoint) *float64 { return &p.A })
	round(func(p *DesignPoint) *float64 { return &p.Slope })
	round(func(p *DesignPoint) *float64 { return &p.Vdd })
	return pt
}

// roundSig rounds x to n significant decimal digits.
func roundSig(x float64, n int) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	mag := math.Pow(10, float64(n-1)-math.Floor(math.Log10(math.Abs(x))))
	return math.Round(x*mag) / mag
}

// reproFile is the JSON shape of a dumped repro: the design point plus the
// checked outcome at dump time, so the regression test knows what the
// disagreement looked like.
type reproFile struct {
	Comment string      `json:"comment,omitempty"`
	Point   DesignPoint `json:"point"`
	Result  struct {
		CaseName string  `json:"case_name"`
		Analytic float64 `json:"analytic"`
		Sim      float64 `json:"sim"`
		RelErr   float64 `json:"rel_err"`
		Tol      float64 `json:"tol"`
	} `json:"result"`
}

// DumpRepro writes the <name>.json design point + result and the matching
// <name>.cir simulation deck into dir, creating it if needed, and returns
// the basename. The .cir deck round-trips through circuit.Parse, so the
// disagreement can be replayed with cmd/spicerun or any deck consumer.
func DumpRepro(dir, name string, pt DesignPoint, opts spice.Options) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	res := Check(pt, opts)

	var rf reproFile
	if res.Pass {
		rf.Comment = "ssnoracle curated regression point: agrees within tolerance"
	} else {
		rf.Comment = "ssnoracle repro: closed-form vs transient-engine disagreement"
	}
	rf.Point = pt
	rf.Result.CaseName = res.CaseName
	rf.Result.Analytic = res.Analytic
	rf.Result.Sim = res.Sim
	rf.Result.RelErr = res.RelErr
	rf.Result.Tol = res.Tol
	js, err := json.MarshalIndent(&rf, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), append(js, '\n'), 0o644); err != nil {
		return "", err
	}

	deck, err := Deck(pt)
	if err != nil {
		return "", fmt.Errorf("oracle: deck for repro %s: %w", name, err)
	}
	var b strings.Builder
	if err := circuit.Format(&b, deck); err != nil {
		return "", fmt.Errorf("oracle: format repro %s: %w", name, err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".cir"), []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return name, nil
}

// LoadRepro reads a <path>.json repro file back into its design point.
func LoadRepro(path string) (DesignPoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return DesignPoint{}, err
	}
	var rf reproFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return DesignPoint{}, fmt.Errorf("oracle: parse repro %s: %w", path, err)
	}
	return rf.Point, nil
}
