package oracle

import (
	"fmt"
	"math"

	"ssnkit/internal/spice"
)

// The AC sweep-reuse oracle checks the contract the symbolic/numeric split
// factorization (linalg.CSymbolicLU, DESIGN.md §17) makes to the sweep
// layer: restamping and refactoring a reused engine at frequency after
// frequency must reproduce, bit for bit, what a freshly compiled engine
// computes at each frequency in isolation — the reuse may not leak state.
// On top of the exact reuse property, the symbolic answer at the point's
// screened frequency must agree with the dense bit-reference to
// acSweepDenseTol; the band is tolerance-based, not exact, because the
// fill-reducing ordering changes the elimination sequence (documented
// ≤1-ULP-per-operation differences, amplified by conditioning).

// acSweepDenseTol is the relative symbolic-vs-dense band at the screened
// frequency, the same band the adjoint-vs-FD oracle certifies (acTol).
// validAC screens FD conditioning, not LU conditioning, so random grids
// can amplify the elimination-order rounding past 1e-7 (a fuzz corpus
// entry pins one at 1.01e-7); 1e-6 keeps an order of headroom while a real
// restamp or scatter bug still lands at percent scale.
const acSweepDenseTol = 1e-6

// acSweepPoints is the per-point sweep grid size, spanning a decade either
// side of the screened frequency.
const acSweepPoints = 12

// ACSweepResult is the outcome of one sweep-reuse check.
type ACSweepResult struct {
	Point    ACPoint `json:"point"`
	Freqs    int     `json:"freqs"`
	WorstRel float64 `json:"worst_rel"` // symbolic vs dense at pt.Freq
	Skipped  bool    `json:"skipped"`   // pattern outside the symbolic domain
	Pass     bool    `json:"pass"`
	Detail   string  `json:"detail,omitempty"`
	Err      error   `json:"-"`
}

func (r ACSweepResult) String() string {
	status := "PASS"
	switch {
	case r.Err != nil:
		status = "ERROR " + r.Err.Error()
	case r.Skipped:
		status = "SKIP " + r.Detail
	case !r.Pass:
		status = "FAIL " + r.Detail
	}
	return fmt.Sprintf("%s rel=%.3g tol=%.3g %s", status, r.WorstRel, acSweepDenseTol, r.Point)
}

// acEngineFor compiles the point with a forced backend and resolves its
// observation node.
func acEngineFor(pt ACPoint, backend spice.ACBackend) (*spice.ACEngine, int, error) {
	ckt, err := pt.Build()
	if err != nil {
		return nil, 0, err
	}
	eng, err := spice.NewAC(ckt, spice.ACOptions{Backend: backend})
	if err != nil {
		return nil, 0, err
	}
	obs := eng.NodeIndex(fmt.Sprintf("n%d", pt.Obs))
	if obs < 0 {
		return nil, 0, fmt.Errorf("oracle: observation node n%d missing", pt.Obs)
	}
	return eng, obs, nil
}

// CheckACSweepReuse verifies the sweep-reuse contract for one point: a
// single symbolic engine swept across a two-decade grid around pt.Freq
// must match a fresh engine per frequency exactly (Z and every adjoint
// sensitivity, == not ≈), and must match the dense reference at the
// screened frequency within acSweepDenseTol. Points whose MNA pattern the
// symbolic backend rejects (structurally zero diagonals — not every random
// RLC grid has a full diagonal) are reported as Skipped, not failed: they
// run on the pivoted fallback in production.
func CheckACSweepReuse(pt ACPoint) ACSweepResult {
	res := ACSweepResult{Point: pt}
	if _, err := pt.Build(); err != nil {
		res.Err = err
		return res
	}
	reused, obs, err := acEngineFor(pt, spice.ACSymbolic)
	if err != nil {
		res.Skipped = true
		res.Detail = err.Error()
		return res
	}
	freqs, err := spice.FreqGrid(pt.Freq/10, pt.Freq*10, acSweepPoints, true)
	if err != nil {
		res.Err = err
		return res
	}
	res.Freqs = len(freqs)
	var sensR, sensF []spice.SensEntry
	for _, f := range freqs {
		w := 2 * math.Pi * f
		zR, sR, errR := reused.ImpedanceSens(w, obs, sensR[:0])
		fresh, fobs, err := acEngineFor(pt, spice.ACSymbolic)
		if err != nil {
			res.Err = fmt.Errorf("oracle: recompiling the accepted pattern failed: %w", err)
			return res
		}
		zF, sF, errF := fresh.ImpedanceSens(w, fobs, sensF[:0])
		if (errR == nil) != (errF == nil) {
			res.Detail = fmt.Sprintf("f=%g: reused err=%v, fresh err=%v", f, errR, errF)
			return res
		}
		if errR != nil {
			// Both paths hit the same numeric singularity; error parity is
			// the property at such a frequency.
			continue
		}
		sensR, sensF = sR, sF
		if zR != zF {
			res.Detail = fmt.Sprintf("f=%g: reused Z %v != fresh Z %v", f, zR, zF)
			return res
		}
		if len(sR) != len(sF) {
			res.Detail = fmt.Sprintf("f=%g: sensitivity count %d vs %d", f, len(sR), len(sF))
			return res
		}
		for i := range sF {
			if sR[i].DZ != sF[i].DZ || sR[i].DAbs != sF[i].DAbs {
				res.Detail = fmt.Sprintf("f=%g %s: reused sens (%v, %v) != fresh (%v, %v)",
					f, sF[i].Name, sR[i].DZ, sR[i].DAbs, sF[i].DZ, sF[i].DAbs)
				return res
			}
		}
	}
	dense, dobs, err := acEngineFor(pt, spice.ACDense)
	if err != nil {
		res.Err = err
		return res
	}
	w := 2 * math.Pi * pt.Freq
	zS, errS := reused.Impedance(w, obs)
	zD, errD := dense.Impedance(w, dobs)
	if errS != nil || errD != nil {
		res.Err = fmt.Errorf("oracle: screened-frequency solve: symbolic %v, dense %v", errS, errD)
		return res
	}
	den := math.Hypot(real(zD), imag(zD))
	if den < 1 {
		den = 1
	}
	res.WorstRel = math.Hypot(real(zS-zD), imag(zS-zD)) / den
	if res.WorstRel > acSweepDenseTol {
		res.Detail = fmt.Sprintf("f=%g: symbolic Z %v vs dense %v rel %.3g", pt.Freq, zS, zD, res.WorstRel)
		return res
	}
	res.Pass = true
	return res
}

// ShrinkACSweep greedily reduces a point that fails the sweep-reuse check,
// reusing the generic shrinker with the sweep predicate. The returned
// point always reproduces the failure.
func ShrinkACSweep(pt ACPoint) ACPoint {
	return shrinkACWith(pt, func(cand ACPoint) bool {
		r := CheckACSweepReuse(cand)
		return r.Err == nil && !r.Skipped && !r.Pass
	})
}
