package oracle

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssnkit/internal/circuit"
	"ssnkit/internal/spice"
)

// TestCuratedRepros replays every design point under testdata/repros as a
// regression: the curated hard points (near-critical damping, conduction
// edge, merged large-N) must keep agreeing, and any future shrunk
// disagreement dropped into the directory will fail here until resolved.
func TestCuratedRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "repros", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least the 3 curated repros, found %d", len(paths))
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			pt, err := LoadRepro(path)
			if err != nil {
				t.Fatalf("LoadRepro: %v", err)
			}
			res := Check(pt, spice.Options{})
			if res.Err != nil {
				t.Fatalf("Check: %v", res.Err)
			}
			if !res.Pass {
				t.Fatalf("regression: %s", res)
			}
		})
	}
}

// TestCuratedReproDecksRoundTrip re-simulates each curated .cir deck
// through circuit.Parse and checks it reproduces the same bounce as the
// programmatic build — pinning the whole repro pipeline (level=4 ASDM
// model card included) end to end.
func TestCuratedReproDecksRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "repros", "*.cir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 curated decks, found %d", len(paths))
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".cir")
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			deck, err := circuit.Parse(f)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if deck.Tran == nil {
				t.Fatal("deck has no .tran card")
			}
			eng, err := spice.New(deck.Circuit, spice.Options{})
			if err != nil {
				t.Fatalf("spice.New: %v", err)
			}
			set, err := eng.Transient(*deck.Tran)
			if err != nil {
				t.Fatalf("Transient: %v", err)
			}
			w := set.Get("v(vssi)")
			if w == nil {
				t.Fatal("deck simulation lost v(vssi)")
			}
			_, fromDeck := w.Max()

			pt, err := LoadRepro(strings.TrimSuffix(path, ".cir") + ".json")
			if err != nil {
				t.Fatalf("LoadRepro: %v", err)
			}
			fromBuild, _, err := Simulate(pt, spice.Options{})
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			// The parsed deck carries %.9g-rounded values; allow for that.
			if rel := math.Abs(fromDeck-fromBuild) / fromBuild; rel > 1e-8 {
				t.Fatalf("deck and build disagree: %.9g vs %.9g (rel %.3g)", fromDeck, fromBuild, rel)
			}
		})
	}
}
