package oracle

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ssnkit/internal/circuit"
	"ssnkit/internal/spice"
)

// The AC oracle differentially verifies the adjoint sensitivities of the
// frequency-domain engine: for seeded random RLC grids it compares
// d|Z(f)|/d(value) from one transposed adjoint solve (spice.ImpedanceSens)
// against a Richardson-extrapolated central finite difference that rebuilds
// and re-solves the netlist with the element's value perturbed. The two
// computations share no code past the netlist — the adjoint differentiates
// the MNA stamp analytically, the FD path only ever evaluates |Z| — so
// agreement to 1e-6 over randomized topologies pins the whole chain:
// complex LU, transposed solves, stamp derivatives, and the adjoint
// identity itself.

// ACElem is one element of a random AC design point. Nodes are small
// integers; 0 is ground.
type ACElem struct {
	Kind  string  `json:"kind"` // "R", "L" or "C"
	N1    int     `json:"n1"`
	N2    int     `json:"n2"`
	Value float64 `json:"value"`
}

// ACPoint is one randomized AC design point: an RLC grid, an observation
// node and an analysis frequency. It is the JSON shape of AC repro dumps.
type ACPoint struct {
	Nodes int      `json:"nodes"` // non-ground nodes, numbered 1..Nodes
	Elems []ACElem `json:"elems"`
	Freq  float64  `json:"freq"` // Hz
	Obs   int      `json:"obs"`  // observed node (1..Nodes)
}

func (pt ACPoint) String() string {
	return fmt.Sprintf("nodes=%d elems=%d f=%.4g obs=%d", pt.Nodes, len(pt.Elems), pt.Freq, pt.Obs)
}

// elemName gives element k its deterministic netlist name.
func elemName(k int, kind string) string {
	return fmt.Sprintf("%s%d", strings.ToLower(kind), k)
}

// Build synthesizes the point's netlist. Element k is named
// strings.ToLower(Kind)+k, matching the names ImpedanceSens reports.
func (pt ACPoint) Build() (*circuit.Circuit, error) {
	if pt.Nodes < 1 || pt.Obs < 1 || pt.Obs > pt.Nodes {
		return nil, fmt.Errorf("oracle: AC point %s has bad node/obs", pt)
	}
	ckt := circuit.New("ac-oracle")
	name := func(n int) string {
		if n == 0 {
			return "0"
		}
		return fmt.Sprintf("n%d", n)
	}
	for k, el := range pt.Elems {
		if el.N1 < 0 || el.N1 > pt.Nodes || el.N2 < 0 || el.N2 > pt.Nodes {
			return nil, fmt.Errorf("oracle: AC element %d nodes (%d,%d) out of range", k, el.N1, el.N2)
		}
		switch el.Kind {
		case "R":
			ckt.AddR(elemName(k, el.Kind), name(el.N1), name(el.N2), el.Value)
		case "L":
			ckt.AddL(elemName(k, el.Kind), name(el.N1), name(el.N2), el.Value)
		case "C":
			ckt.AddC(elemName(k, el.Kind), name(el.N1), name(el.N2), el.Value)
		default:
			return nil, fmt.Errorf("oracle: AC element %d has kind %q", k, el.Kind)
		}
	}
	return ckt, nil
}

// acTol is the relative agreement band between the adjoint and the
// Richardson-extrapolated FD. The dominant numerical terms — O(h⁴) FD
// truncation at h = 1e-3 on smoothness-screened points, and rounding noise
// of ~1e-16·|Z|/(2h·influence) against the acInfluenceFloor — both sit
// below 1e-7 (measured across campaign seeds); 1e-6 leaves an order of
// magnitude of headroom while still catching any real stamp or transpose
// bug, which shows up at percent scale.
const acTol = 1e-6

// acInfluenceFloor is the denominator floor as a fraction of |Z|, for the
// degenerate case where even the largest influence in the point is tiny.
const acInfluenceFloor = 1e-3

// fdH is the base relative step of the central difference; Richardson
// combines D(h) and D(h/2) to cancel the O(h²) term. The step balances
// cancellation noise (∝ 1/h) against truncation (∝ h⁴, screened by
// fdSpreadScreen at generation time).
const fdH = 2e-3

// ACSens is the per-element outcome of one differential AC check.
type ACSens struct {
	Name    string  `json:"name"`
	Value   float64 `json:"value"`
	Adjoint float64 `json:"adjoint"` // d|Z|/dv from ImpedanceSens
	FD      float64 `json:"fd"`      // Richardson central difference
	// RelErr is |adjoint − FD| as an influence (·Value), relative to the
	// point's largest influence (see CheckAC).
	RelErr float64 `json:"rel_err"`
}

// ACResult is the outcome of one differential AC check.
type ACResult struct {
	Index    int      `json:"index,omitempty"`
	Point    ACPoint  `json:"point"`
	AbsZ     float64  `json:"abs_z"`
	Sens     []ACSens `json:"sens,omitempty"`
	WorstRel float64  `json:"worst_rel"`
	Worst    string   `json:"worst,omitempty"` // element name of the worst entry
	Pass     bool     `json:"pass"`
	Err      error    `json:"-"`
}

func (r ACResult) String() string {
	status := "PASS"
	if r.Err != nil {
		status = "ERROR " + r.Err.Error()
	} else if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%s |Z|=%.6g worst=%s rel=%.3g tol=%.3g %s",
		status, r.AbsZ, r.Worst, r.WorstRel, acTol, r.Point)
}

// absZAt evaluates |Z| for the point with element k's value scaled by
// (1+eps); k < 0 leaves the point untouched.
func (pt ACPoint) absZAt(k int, eps float64) (float64, error) {
	mod := pt
	if k >= 0 {
		mod.Elems = append([]ACElem(nil), pt.Elems...)
		mod.Elems[k].Value *= 1 + eps
	}
	ckt, err := mod.Build()
	if err != nil {
		return 0, err
	}
	eng, err := spice.NewAC(ckt, spice.ACOptions{})
	if err != nil {
		return 0, err
	}
	obs := eng.NodeIndex(fmt.Sprintf("n%d", mod.Obs))
	if obs < 0 {
		return 0, fmt.Errorf("oracle: observation node n%d missing", mod.Obs)
	}
	z, err := eng.Impedance(2*math.Pi*mod.Freq, obs)
	if err != nil {
		return 0, err
	}
	return math.Hypot(real(z), imag(z)), nil
}

// CheckAC runs the differential comparison for one AC point: the adjoint
// sensitivities of |Z(f)| at the observation node against Richardson-
// extrapolated central differences, element by element.
func CheckAC(pt ACPoint) ACResult {
	res := ACResult{Point: pt}
	ckt, err := pt.Build()
	if err != nil {
		res.Err = err
		return res
	}
	eng, err := spice.NewAC(ckt, spice.ACOptions{})
	if err != nil {
		res.Err = err
		return res
	}
	obs := eng.NodeIndex(fmt.Sprintf("n%d", pt.Obs))
	if obs < 0 {
		res.Err = fmt.Errorf("oracle: observation node n%d missing", pt.Obs)
		return res
	}
	z, sens, err := eng.ImpedanceSens(2*math.Pi*pt.Freq, obs, nil)
	if err != nil {
		res.Err = err
		return res
	}
	res.AbsZ = math.Hypot(real(z), imag(z))
	byName := make(map[string]spice.SensEntry, len(sens))
	for _, s := range sens {
		byName[s.Name] = s
	}
	// The comparison is an ∞-norm check on the influence vector
	// (v_k·d|Z|/dv_k per element, in ohms per relative value change): every
	// element's |adjoint − FD| is judged against the point's largest
	// influence. Per-element relative floors don't survive here — a
	// component at 1e-5 of the top influence is pure central-difference
	// cancellation noise amplified by the solve's conditioning, while the
	// vector norm keeps noise orders below the band and still catches
	// stamp-derivative bugs, which show up at percent scale on whichever
	// grids that element kind dominates.
	type pair struct {
		name    string
		value   float64
		adj, fd float64
	}
	pairs := make([]pair, 0, len(pt.Elems))
	denom := acInfluenceFloor * res.AbsZ
	for k, el := range pt.Elems {
		name := elemName(k, el.Kind)
		adj, ok := byName[name]
		if !ok {
			res.Err = fmt.Errorf("oracle: element %s missing from adjoint output", name)
			return res
		}
		fd, _, err := pt.fdSens(k)
		if err != nil {
			res.Err = err
			return res
		}
		pairs = append(pairs, pair{name, el.Value, adj.DAbs, fd})
		denom = math.Max(denom, math.Max(math.Abs(el.Value*adj.DAbs), math.Abs(el.Value*fd)))
	}
	res.Pass = true
	for _, p := range pairs {
		rel := math.Abs(p.value*p.adj-p.value*p.fd) / denom
		res.Sens = append(res.Sens, ACSens{Name: p.name, Value: p.value, Adjoint: p.adj, FD: p.fd, RelErr: rel})
		if rel > res.WorstRel {
			res.WorstRel, res.Worst = rel, p.name
		}
		if rel > acTol {
			res.Pass = false
		}
	}
	return res
}

// fdSens computes d|Z|/d(value) of element k by Richardson-extrapolated
// central differences: D = (4·D(h/2) − D(h))/3 cancels the O(h²) term,
// leaving O(h⁴) truncation. spread = |D(h) − D(h/2)| is the extrapolation
// input disagreement, the generator's handle on FD conditioning.
func (pt ACPoint) fdSens(k int) (fd, spread float64, err error) {
	diff := func(h float64) (float64, error) {
		up, err := pt.absZAt(k, h)
		if err != nil {
			return 0, err
		}
		dn, err := pt.absZAt(k, -h)
		if err != nil {
			return 0, err
		}
		return (up - dn) / (2 * h * pt.Elems[k].Value), nil
	}
	d1, err := diff(fdH)
	if err != nil {
		return 0, 0, err
	}
	d2, err := diff(fdH / 2)
	if err != nil {
		return 0, 0, err
	}
	return (4*d2 - d1) / 3, math.Abs(d1 - d2), nil
}

// GenerateAC draws the AC design point for one (seed, index) pair,
// rejection sampling until the point is inside the oracle's validity
// envelope (see validAC). The same (seed, index) always yields the same
// point, independent of worker count.
func GenerateAC(seed int64, index int) (pt ACPoint, ok bool) {
	r := newRNG(^seed, index) // distinct stream family from the SSN generator
	for try := 0; try < maxGenTries; try++ {
		pt = drawAC(r)
		if validAC(pt) {
			return pt, true
		}
	}
	return ACPoint{}, false
}

// drawAC samples one candidate grid: a ladder spine from the observation
// node (series R/L between neighbors, shunt element per node) plus a few
// random cross elements, with log-uniform values spanning board-to-die
// scales and a log-uniform frequency.
func drawAC(r *rng) ACPoint {
	n := 2 + int(r.next()%6) // 2..7 nodes
	pt := ACPoint{Nodes: n, Obs: 1, Freq: r.logIn(1e5, 1e10)}
	value := func(kind string) float64 {
		switch kind {
		case "R":
			return r.logIn(1e-2, 1e3)
		case "L":
			return r.logIn(1e-11, 1e-6)
		default:
			return r.logIn(1e-14, 1e-9)
		}
	}
	pick := func(kinds ...string) string { return kinds[r.next()%uint64(len(kinds))] }
	for i := 1; i <= n; i++ {
		if i < n {
			k := pick("R", "L", "R") // series spine favors R to keep Q moderate
			pt.Elems = append(pt.Elems, ACElem{Kind: k, N1: i, N2: i + 1, Value: value(k)})
		}
		k := pick("C", "C", "R")
		pt.Elems = append(pt.Elems, ACElem{Kind: k, N1: i, N2: 0, Value: value(k)})
	}
	for extra := int(r.next() % 3); extra > 0; extra-- {
		a, b := 1+int(r.next()%uint64(n)), int(r.next()%uint64(n+1))
		if a == b {
			continue
		}
		k := pick("R", "L", "C")
		pt.Elems = append(pt.Elems, ACElem{Kind: k, N1: a, N2: b, Value: value(k)})
	}
	return pt
}

// fdSpreadScreen bounds |D(h) − D(h/2)| relative to the comparison
// denominator during generation. The spread is (3/4)·a·h² for curvature
// coefficient a, and higher-order terms shrink by at least (Qh)² ≲ 1e-3
// past it, so a 3e-5 spread leaves the extrapolated value's truncation
// under ~1e-7 — an order below the 1e-6 band.
const fdSpreadScreen = 3e-5

// validAC screens candidates for conditioning, not correctness: |Z| must be
// solvable and in a physically sane range, the point must sit away from
// razor-sharp resonances (probed by the log-|Z| slope against a frequency
// nudge at the FD step scale), and the FD reference itself must be
// converged — the two Richardson inputs D(h), D(h/2) must already agree to
// fdSpreadScreen for every element. The last check is deliberately a
// self-consistency test of the FD side only, so it cannot mask an adjoint
// bug. A rejected point is not a bug; it is a point where FD (the
// reference, not the engine) cannot certify 1e-6.
func validAC(pt ACPoint) bool {
	mid, err := pt.absZAt(-1, 0)
	if err != nil || mid < 1e-6 || mid > 1e9 || math.IsNaN(mid) || math.IsInf(mid, 0) {
		return false
	}
	probe := pt
	probe.Freq = pt.Freq * (1 + fdH)
	up, err := probe.absZAt(-1, 0)
	if err != nil {
		return false
	}
	probe.Freq = pt.Freq * (1 - fdH)
	dn, err := probe.absZAt(-1, 0)
	if err != nil {
		return false
	}
	// Slope and curvature of log|Z| against a 0.1% frequency nudge; element
	// perturbations move |Z| dominantly through the same resonance
	// mechanism, so this cheaply rejects the worst of the sharp points
	// before the per-element screen below spends solves on them.
	if math.Abs(math.Log(up/mid)) > 0.02 || math.Abs(math.Log(dn/mid)) > 0.02 {
		return false
	}
	if math.Abs(math.Log(up*dn/(mid*mid))) > 2e-4 {
		return false
	}
	// Per-element FD convergence, judged in the same ∞-norm the check uses:
	// all spreads against the point's largest FD influence.
	spreads := make([]float64, len(pt.Elems))
	denom := acInfluenceFloor * mid
	for k, el := range pt.Elems {
		fd, spread, err := pt.fdSens(k)
		if err != nil {
			return false
		}
		spreads[k] = el.Value * spread
		denom = math.Max(denom, math.Abs(el.Value*fd))
	}
	for _, s := range spreads {
		if s > fdSpreadScreen*denom {
			return false
		}
	}
	return true
}

// ShrinkAC greedily reduces a disagreeing AC point: drop elements one at a
// time, then round the survivors to 3 significant digits, keeping each
// transformation only if the shrunk point still fails. The returned point
// always reproduces the disagreement.
func ShrinkAC(pt ACPoint) ACPoint {
	return shrinkACWith(pt, func(cand ACPoint) bool {
		res := CheckAC(cand)
		return res.Err == nil && !res.Pass
	})
}

// shrinkACWith is the generic greedy shrinker behind ShrinkAC (and the
// sweep-reuse oracle's ShrinkACSweep): any predicate that classifies a
// point as still-failing drives the same element-dropping and value-
// rounding schedule. The returned point always satisfies fails.
func shrinkACWith(pt ACPoint, fails func(ACPoint) bool) ACPoint {
	if !fails(pt) {
		return pt
	}
	for k := len(pt.Elems) - 1; k >= 0; k-- {
		cand := pt
		cand.Elems = append(append([]ACElem(nil), pt.Elems[:k]...), pt.Elems[k+1:]...)
		if fails(cand) {
			pt = cand
		}
	}
	for k := range pt.Elems {
		cand := pt
		cand.Elems = append([]ACElem(nil), pt.Elems...)
		cand.Elems[k].Value = roundSig(cand.Elems[k].Value, 3)
		if fails(cand) {
			pt = cand
		}
	}
	cand := pt
	cand.Freq = roundSig(cand.Freq, 3)
	if fails(cand) {
		pt = cand
	}
	return pt
}

// acReproFile is the JSON shape of a dumped AC repro.
type acReproFile struct {
	Comment string  `json:"comment"`
	Point   ACPoint `json:"point"`
	Result  struct {
		AbsZ     float64 `json:"abs_z"`
		Worst    string  `json:"worst"`
		WorstRel float64 `json:"worst_rel"`
		Tol      float64 `json:"tol"`
	} `json:"result"`
}

// DumpACRepro writes the <name>.json AC design point + result into dir,
// creating it if needed, and returns the basename. The point is fully
// self-describing: LoadACRepro + CheckAC replays it.
func DumpACRepro(dir, name string, pt ACPoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	res := CheckAC(pt)
	var rf acReproFile
	if res.Pass {
		rf.Comment = "ac oracle curated regression point: adjoint and FD agree"
	} else {
		rf.Comment = "ac oracle repro: adjoint vs finite-difference disagreement"
	}
	rf.Point = pt
	rf.Result.AbsZ = res.AbsZ
	rf.Result.Worst = res.Worst
	rf.Result.WorstRel = res.WorstRel
	rf.Result.Tol = acTol
	js, err := json.MarshalIndent(&rf, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), append(js, '\n'), 0o644); err != nil {
		return "", err
	}
	return name, nil
}

// LoadACRepro reads a dumped AC repro back into its design point.
func LoadACRepro(path string) (ACPoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ACPoint{}, err
	}
	var rf acReproFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return ACPoint{}, fmt.Errorf("oracle: parse AC repro %s: %w", path, err)
	}
	return rf.Point, nil
}

// ACConfig parameterizes an AC differential campaign.
type ACConfig struct {
	Points   int   // design points to check (default 300)
	Seed     int64 // generator seed
	Workers  int   // concurrent checkers (default GOMAXPROCS)
	ReproDir string
}

// ACReport summarizes an AC campaign.
type ACReport struct {
	Points   int
	Passed   int
	Failed   int
	Errored  int
	WorstRel float64
	Worst    ACPoint // point holding WorstRel
	Failures []ACResult
	Dumped   []string
}

// OK reports whether the campaign found no disagreements and no errors.
func (r *ACReport) OK() bool { return r.Failed == 0 && r.Errored == 0 }

func (r *ACReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ac oracle campaign: %d points, %d pass, %d fail, %d error, worst rel %.3g\n",
		r.Points, r.Passed, r.Failed, r.Errored, r.WorstRel)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  #%d %s\n", f.Index, f)
	}
	for _, d := range r.Dumped {
		fmt.Fprintf(&b, "  repro: %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// RunAC executes a seeded AC campaign, mirroring Run: deterministic point
// generation independent of worker count, parallel checking, and shrunk
// repro dumps for disagreements.
func RunAC(ctx context.Context, cfg ACConfig) (*ACReport, error) {
	if cfg.Points <= 0 {
		cfg.Points = 300
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Points {
		cfg.Workers = cfg.Points
	}
	results := make([]ACResult, cfg.Points)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < cfg.Points; i += cfg.Workers {
				if ctx.Err() != nil {
					return
				}
				pt, ok := GenerateAC(cfg.Seed, i)
				if !ok {
					results[i] = ACResult{Index: i, Err: fmt.Errorf("oracle: AC generator exhausted retries at index %d", i)}
					continue
				}
				res := CheckAC(pt)
				res.Index = i
				res.Sens = nil // per-element detail is noise at campaign scale
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := &ACReport{Points: cfg.Points}
	for _, res := range results {
		switch {
		case res.Err != nil:
			rep.Errored++
			rep.Failures = append(rep.Failures, res)
		case res.Pass:
			rep.Passed++
		default:
			rep.Failed++
			rep.Failures = append(rep.Failures, res)
		}
		if res.Err == nil && res.WorstRel > rep.WorstRel {
			rep.WorstRel, rep.Worst = res.WorstRel, res.Point
		}
	}
	sort.Slice(rep.Failures, func(a, b int) bool { return rep.Failures[a].Index < rep.Failures[b].Index })
	if cfg.ReproDir != "" {
		for _, f := range rep.Failures {
			if len(rep.Dumped) >= maxRepros || f.Err != nil {
				break
			}
			small := ShrinkAC(f.Point)
			name, err := DumpACRepro(cfg.ReproDir, fmt.Sprintf("ac-seed%d-%d", cfg.Seed, f.Index), small)
			if err != nil {
				return rep, fmt.Errorf("oracle: dump AC repro for point %d: %w", f.Index, err)
			}
			rep.Dumped = append(rep.Dumped, name)
		}
	}
	return rep, nil
}
