package oracle

import (
	"math"

	"ssnkit/internal/ssn"
)

// rng is a splitmix64 stream: tiny, fast, and — unlike a shared
// math/rand.Source — derivable per design-point index, so point i is the
// same bits for a given seed no matter how many workers the campaign uses
// or in which order they run.
type rng struct{ s uint64 }

// newRNG derives the stream for one (seed, index) pair.
func newRNG(seed int64, index int) *rng {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(index+1)*0xbf58476d1ce4e5b9
	return &rng{s: z}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a uniform float in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// in returns a uniform float in [lo, hi).
func (r *rng) in(lo, hi float64) float64 { return lo + (hi-lo)*r.f64() }

// logIn returns a log-uniform float in [lo, hi); lo must be positive.
func (r *rng) logIn(lo, hi float64) float64 {
	return math.Exp(r.in(math.Log(lo), math.Log(hi)))
}

// Regime steers the generator toward one Table 1 operating case, so a
// campaign covers all four cases (plus the C = 0 L-only limit) no matter
// how narrow each case's natural volume in the sampled space is.
type Regime int

// The steered regimes, cycled by design-point index.
const (
	RegimeLOnly    Regime = iota // C = 0: degenerate first-order limit
	RegimeOver                   // C well below the critical capacitance
	RegimeCritical               // C within ±15% of critical
	RegimeBoundary               // ringing, ramp ends before the first peak
	RegimePeak                   // ringing, first peak inside the ramp
	numRegimes
)

// maxGenTries bounds the rejection loop; the acceptance rate per regime is
// well above 10%, so 200 tries failing indicates a generator bug rather
// than bad luck.
const maxGenTries = 200

// Generate draws the design point for one (seed, index) pair, rejection
// sampling until the point is inside the oracle's validity envelope
// (see valid). The regime cycles with the index. ok is false only if
// maxGenTries draws all fail, which a correct generator never hits.
func Generate(seed int64, index int) (pt DesignPoint, ok bool) {
	r := newRNG(seed, index)
	regime := Regime(index % int(numRegimes))
	for try := 0; try < maxGenTries; try++ {
		pt = draw(r, regime)
		m, err := ssn.NewLCModel(pt.Params())
		if err != nil || !valid(m) {
			continue
		}
		// Hyper-stiff points would need more than simMaxSteps to resolve
		// their fast pole; they are deep in the quasi-static regime and
		// outside the envelope (TranSpec rejects them — let it decide).
		if _, err := TranSpec(pt); err != nil {
			continue
		}
		return pt, true
	}
	return DesignPoint{}, false
}

// draw samples one candidate in the given regime. The electrical knobs
// (N, L, K, V0, a, Vdd) are drawn first; C is then steered relative to the
// resulting critical capacitance Cm = (N·K·a)²·L/4, and for the ringing
// regimes the slope is set from the ringing period so the first peak lands
// on the intended side of the ramp end.
func draw(r *rng, regime Regime) DesignPoint {
	pt := DesignPoint{
		N:   1 + int(math.Floor(r.logIn(1, 65))-1),
		L:   r.logIn(0.3e-9, 20e-9),
		K:   r.logIn(1e-3, 2e-2),
		A:   r.in(1.0, 2.2),
		Vdd: r.in(1.2, 3.6),
	}
	pt.V0 = pt.Vdd * r.in(0.15, 0.4)
	rise := r.logIn(0.1e-9, 5e-9)
	pt.Slope = pt.Vdd / rise

	nka := float64(pt.N) * pt.K * pt.A
	cm := nka * nka * pt.L / 4
	switch regime {
	case RegimeLOnly:
		pt.C = 0
	case RegimeOver:
		pt.C = cm * r.in(0.05, 0.7)
	case RegimeCritical:
		// Half exactly critical (the discriminant lands inside the
		// classifier's 1e-9 band only when C is bit-exact at Cm — random C
		// never hits it), half straddling the boundary from either side.
		if r.f64() < 0.5 {
			pt.C = cm
		} else {
			pt.C = cm * r.in(0.85, 1.15)
		}
	case RegimeBoundary, RegimePeak:
		pt.C = cm * r.in(2, 12)
		// sigma and omega depend only on (N, K, a, L, C), so the ramp can
		// be placed around the (already determined) first-peak time.
		sigma := nka / (2 * pt.C)
		w2 := 1/(pt.L*pt.C) - sigma*sigma
		if w2 > 0 {
			tauPeak := math.Pi / math.Sqrt(w2)
			var tauR float64
			if regime == RegimePeak {
				tauR = tauPeak * r.in(1.2, 3)
			} else {
				tauR = tauPeak * r.in(0.3, 0.95)
			}
			pt.Slope = (pt.Vdd - pt.V0) / tauR
		}
	}
	return pt
}

// validityGridN is the dense-sampling resolution of the conduction check.
const validityGridN = 400

// valid reports whether the point is inside the envelope where the closed
// forms and the simulated circuit describe the same system:
//
//   - the analytic maximum is large enough for a relative comparison
//     (>= vmaxFloor of Vdd) and small enough to stay physical (< 2 Vdd);
//   - the devices stay conducting across the whole window: the closed
//     forms integrate Id = K(sτ - aV) with no cutoff clamp, so a ringing
//     V that drives sτ - aV negative puts the netlist (which does clamp)
//     on different physics. A 3% conduction margin keeps discretization
//     wiggle from crossing the clamp in the simulator;
//   - the input edge is slow enough that device turn-on (τ = 0) is
//     resolvable inside the ramp.
//
// Points outside the envelope are not wrong — they are outside the model's
// published validity region, which DESIGN.md §11 documents.
func valid(m *ssn.LCModel) bool {
	p := m.P
	vmax := m.VMax()
	if vmax < vmaxFloor*p.Vdd || vmax > 2*p.Vdd {
		return false
	}
	if p.Dev.V0 < 0.05*p.Vdd {
		return false
	}
	tauR := p.TauRise()
	for k := 1; k <= validityGridN; k++ {
		tau := tauR * float64(k) / validityGridN
		if p.Slope*tau-p.Dev.A*m.V(tau) < 0.03*p.Slope*tau {
			return false
		}
	}
	return true
}
