package oracle

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ssnkit/internal/circuit"
	"ssnkit/internal/device"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
)

// basePoint is a hand-picked mid-envelope design point used by the
// metamorphic tests: moderately under-damped, comfortably conducting.
func basePoint() DesignPoint {
	return DesignPoint{
		N: 4, L: 5e-9, C: 8e-12, K: 4e-3, V0: 0.6, A: 1.3,
		Slope: 2.5e9, Vdd: 2.5,
	}
}

func TestCampaign(t *testing.T) {
	rep, err := Run(context.Background(), Config{Points: 600, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("\n%s", rep)
	if !rep.OK() {
		t.Fatalf("campaign found disagreements:\n%s", rep)
	}
	if rep.Passed != 600 {
		t.Fatalf("passed %d of %d", rep.Passed, rep.Points)
	}
	// The regime steering must exercise every Table 1 closed form.
	for _, cse := range []ssn.Case{
		ssn.OverDamped, ssn.CriticallyDamped, ssn.UnderDampedPeak, ssn.UnderDampedBoundary,
	} {
		if rep.CaseCounts[cse.String()] == 0 {
			t.Errorf("campaign never hit case %q: %v", cse, rep.CaseCounts)
		}
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		rep, err := Run(context.Background(), Config{Points: 40, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("reports differ between 1 and 8 workers:\n%s\n---\n%s", a, b)
	}
}

func TestCampaignCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Points: 50, Seed: 1}); err == nil {
		t.Fatal("Run with canceled context returned nil error")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for i := 0; i < 60; i++ {
		pt, ok := Generate(3, i)
		if !ok {
			t.Fatalf("Generate(3, %d) exhausted retries", i)
		}
		again, _ := Generate(3, i)
		if pt != again {
			t.Fatalf("Generate(3, %d) not deterministic: %v vs %v", i, pt, again)
		}
		if err := pt.Params().Validate(); err != nil {
			t.Fatalf("Generate(3, %d) produced invalid params: %v", i, err)
		}
		if _, err := TranSpec(pt); err != nil {
			t.Fatalf("Generate(3, %d) produced unsimulatable point: %v", i, err)
		}
	}
}

// TestMergedMatchesExplicit pins the symmetry argument behind the merged
// synthesis: N identical zero-skew drivers are electrically one device of
// N-fold width, so both netlists must produce the same bounce to solver
// precision.
func TestMergedMatchesExplicit(t *testing.T) {
	pt := basePoint()
	pt.N = 12
	tran, err := TranSpec(pt)
	if err != nil {
		t.Fatalf("TranSpec: %v", err)
	}
	sim := func(merged bool) float64 {
		t.Helper()
		ckt, err := Build(pt, merged)
		if err != nil {
			t.Fatalf("Build(merged=%v): %v", merged, err)
		}
		eng, err := spice.New(ckt, spice.Options{})
		if err != nil {
			t.Fatalf("spice.New: %v", err)
		}
		set, err := eng.Transient(tran)
		if err != nil {
			t.Fatalf("Transient(merged=%v): %v", merged, err)
		}
		_, vmax := set.Get("v(vssi)").Max()
		return vmax
	}
	explicit, merged := sim(false), sim(true)
	if rel := math.Abs(explicit-merged) / explicit; rel > 1e-9 {
		t.Fatalf("merged %.12g vs explicit %.12g differ by %.3g", merged, explicit, rel)
	}
}

// simVmax runs the differential simulation and returns the in-window
// bounce maximum, failing the test on infrastructure errors.
func simVmax(t *testing.T, pt DesignPoint) float64 {
	t.Helper()
	vmax, _, err := Simulate(pt, spice.Options{})
	if err != nil {
		t.Fatalf("Simulate(%s): %v", pt, err)
	}
	return vmax
}

// monotoneSlack absorbs integration noise in the monotonicity assertions:
// the sim is accurate to ~1e-5 relative, so a genuine ordering violation
// dwarfs it.
const monotoneSlack = 1e-4

func TestSimVmaxMonotoneInN(t *testing.T) {
	pt := basePoint()
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		pt.N = n
		v := simVmax(t, pt)
		if v < prev*(1-monotoneSlack) {
			t.Fatalf("vmax decreased with N: N=%d gives %.6g after %.6g", n, v, prev)
		}
		prev = v
	}
}

func TestSimVmaxMonotoneInL(t *testing.T) {
	pt := basePoint()
	prev := 0.0
	for _, l := range []float64{1e-9, 2e-9, 4e-9, 8e-9, 16e-9} {
		pt.L = l
		v := simVmax(t, pt)
		if v < prev*(1-monotoneSlack) {
			t.Fatalf("vmax decreased with L: L=%.3g gives %.6g after %.6g", l, v, prev)
		}
		prev = v
	}
}

func TestSimVmaxMonotoneInSlope(t *testing.T) {
	// Slope monotonicity only holds in the damped regimes: under-damped
	// points measure V at the ramp end, and a faster edge shrinks that
	// window quicker than β grows, so Vmax can genuinely fall with s (the
	// closed form agrees — verified in DESIGN.md §11). Pin the invariant
	// where the paper states it, on a damped configuration.
	pt := basePoint()
	pt.C = 2e-13 // well below critical: over-damped at every slope below
	prev := 0.0
	for _, s := range []float64{1e9, 2e9, 4e9, 8e9} {
		pt.Slope = s
		v := simVmax(t, pt)
		if v < prev*(1-monotoneSlack) {
			t.Fatalf("vmax decreased with slope: s=%.3g gives %.6g after %.6g", s, v, prev)
		}
		prev = v
	}
}

// TestSimBetaBound pins the paper's envelope: the bounce never exceeds β
// for damped points nor the ringing bound β·(1+e^{−στp}) when under-damped.
func TestSimBetaBound(t *testing.T) {
	for i := 0; i < 40; i++ {
		pt, ok := Generate(11, i)
		if !ok {
			t.Fatalf("Generate(11, %d) exhausted retries", i)
		}
		m, err := ssn.NewLCModel(pt.Params())
		if err != nil {
			t.Fatalf("NewLCModel: %v", err)
		}
		bound := m.P.Beta()
		if w := m.Omega(); w > 0 {
			bound *= 1 + math.Exp(-m.Sigma()*math.Pi/w)
		}
		if v := simVmax(t, pt); v > bound*(1+monotoneSlack) {
			t.Fatalf("point %d: sim vmax %.6g exceeds bound %.6g (%s)", i, v, bound, pt)
		}
	}
}

// TestStaggeredAtMostSimultaneous checks the design rule the paper closes
// on at transistor level: spreading the switching instants can only lower
// the peak bounce.
func TestStaggeredAtMostSimultaneous(t *testing.T) {
	pt := basePoint()
	simultaneous := simVmax(t, pt)

	rise := pt.Rise()
	offsets := []float64{0, rise / 2, rise, 3 * rise / 2}
	stag := simStaggered(t, pt, offsets)
	if stag > simultaneous*(1+monotoneSlack) {
		t.Fatalf("staggered bounce %.6g exceeds simultaneous %.6g", stag, simultaneous)
	}
}

// simStaggered simulates pt's driver array with per-driver ramp offsets
// (the oracle netlist shares one gate; staggering needs one ramp each).
func simStaggered(t *testing.T, pt DesignPoint, offsets []float64) float64 {
	t.Helper()
	if len(offsets) != pt.N {
		t.Fatalf("need %d offsets, got %d", pt.N, len(offsets))
	}
	p := pt.Params()
	rise := pt.Rise()
	delay := rise / 10
	cload := 2 * pt.K * (pt.Vdd - pt.V0) * p.TauRise() / pt.Vdd

	ckt := circuit.New("staggered " + pt.String())
	maxOff := 0.0
	for i, off := range offsets {
		if off > maxOff {
			maxOff = off
		}
		g := fmt.Sprintf("g%d", i+1)
		out := fmt.Sprintf("out%d", i+1)
		ckt.AddV(fmt.Sprintf("vin%d", i+1), g, "0",
			circuit.Ramp{V0: 0, V1: pt.Vdd, Delay: delay + off, Rise: rise})
		dev := &device.ASDMDevice{ModelName: "asdm", M: device.ASDM{K: pt.K, V0: pt.V0, A: pt.A}}
		ckt.AddM(fmt.Sprintf("m%d", i+1), out, g, "vssi", "0", dev, circuit.NChannel)
		cl := ckt.AddC(fmt.Sprintf("cl%d", i+1), out, "0", cload)
		cl.IC = pt.Vdd
	}
	ckt.AddL("lgnd", "vssi", "0", pt.L)
	if pt.C > 0 {
		ckt.AddC("cnet", "vssi", "0", pt.C)
	}

	tran, err := TranSpec(pt)
	if err != nil {
		t.Fatalf("TranSpec: %v", err)
	}
	tran.Stop += maxOff // cover the last driver's full ramp
	eng, err := spice.New(ckt, spice.Options{})
	if err != nil {
		t.Fatalf("spice.New: %v", err)
	}
	set, err := eng.Transient(tran)
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	_, vmax := set.Get("v(vssi)").Max()
	return vmax
}

func TestCheckReportsFailuresWithLooseAnalytic(t *testing.T) {
	// A point outside the validity envelope (device cuts off mid-window)
	// must still produce a well-formed Result; we only require it not to
	// be an infrastructure error.
	pt := basePoint()
	pt.A = 5 // ferocious feedback: conduction margin goes negative
	res := Check(pt, spice.Options{})
	if res.Err != nil {
		t.Fatalf("Check errored: %v", res.Err)
	}
	if res.Analytic <= 0 || res.Sim <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestToleranceBands(t *testing.T) {
	if Tolerance(ssn.UnderDampedPeak) <= Tolerance(ssn.OverDamped) {
		t.Fatal("peak band should be looser than ramp-end band")
	}
}

func TestShrinkPreservesFailure(t *testing.T) {
	// Manufacture a "disagreement" by checking against an impossible band:
	// shrink against real Check won't fail on a correct repo, so drive
	// Shrink's fail predicate via a point that genuinely disagrees — the
	// out-of-envelope point from TestCheckReportsFailuresWithLooseAnalytic
	// (clamped sim vs clamp-free closed form).
	pt := basePoint()
	pt.A = 5
	res := Check(pt, spice.Options{})
	if res.Pass {
		t.Skip("point unexpectedly agrees; shrink has nothing to preserve")
	}
	small := Shrink(pt, spice.Options{})
	sres := Check(small, spice.Options{})
	if sres.Err != nil {
		t.Fatalf("shrunk point errors: %v", sres.Err)
	}
	if sres.Pass {
		t.Fatalf("shrink lost the failure: %s -> %s", pt, small)
	}
	if small.N > pt.N {
		t.Fatalf("shrink grew N: %d -> %d", pt.N, small.N)
	}
}

func TestDumpAndLoadRepro(t *testing.T) {
	dir := t.TempDir()
	pt := basePoint()
	name, err := DumpRepro(dir, "case", pt, spice.Options{})
	if err != nil {
		t.Fatalf("DumpRepro: %v", err)
	}
	back, err := LoadRepro(dir + "/" + name + ".json")
	if err != nil {
		t.Fatalf("LoadRepro: %v", err)
	}
	if back != pt {
		t.Fatalf("round trip changed the point: %v vs %v", back, pt)
	}
}
