package oracle

import (
	"testing"
)

// TestACSweepReuseProperty is the shrinking property harness for the
// sweep-reuse contract: over a block of seeded random RLC grids, the
// symbolic-reuse numeric path must be bit-identical to a fresh
// factorization at every frequency, and match the dense reference at the
// screened frequency. Failures shrink before reporting so the log carries
// a minimal repro.
func TestACSweepReuseProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-reuse property campaign")
	}
	checked, skipped := 0, 0
	for i := 0; i < 40; i++ {
		pt, ok := GenerateAC(21, i)
		if !ok {
			continue
		}
		res := CheckACSweepReuse(pt)
		if res.Err != nil {
			t.Fatalf("index %d: infrastructure error: %v", i, res.Err)
		}
		if res.Skipped {
			skipped++
			continue
		}
		checked++
		if !res.Pass {
			small := ShrinkACSweep(pt)
			t.Errorf("index %d: %s\nshrunk repro: %+v", i, res, small)
		}
	}
	if checked == 0 {
		t.Fatalf("every generated point skipped the symbolic backend (%d skips)", skipped)
	}
	t.Logf("sweep-reuse property: %d checked, %d outside the symbolic domain", checked, skipped)
}

// TestACSweepReuseMalformed: malformed points must error, never panic.
func TestACSweepReuseMalformed(t *testing.T) {
	pt := ACPoint{Nodes: 0, Obs: 1, Freq: 1e6}
	if res := CheckACSweepReuse(pt); res.Err == nil {
		t.Error("malformed point produced no error")
	}
}

// TestShrinkACSweepKeepsFailureInvariant: on a passing point the shrinker
// must be the identity (the predicate never fires).
func TestShrinkACSweepKeepsFailureInvariant(t *testing.T) {
	pt, ok := GenerateAC(21, 0)
	if !ok {
		t.Skip("generator exhausted retries")
	}
	res := CheckACSweepReuse(pt)
	if res.Err != nil || res.Skipped || !res.Pass {
		t.Skipf("point not a passing symbolic point: %s", res)
	}
	small := ShrinkACSweep(pt)
	if small.Nodes != pt.Nodes || len(small.Elems) != len(pt.Elems) {
		t.Errorf("shrinker modified a passing point: %+v -> %+v", pt, small)
	}
}

// FuzzACSweepReuse is the sweep-reuse fuzz target: any (seed, index) the
// fuzzer invents becomes a screened RLC grid whose symbolic sweep reuse
// must be bit-exact against fresh factorization and inside the dense band.
// Wired into the nightly fuzz job next to FuzzACAdjointVsFD.
func FuzzACSweepReuse(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(21), uint16(3))
	f.Add(int64(-9), uint16(512))
	f.Fuzz(func(t *testing.T, seed int64, idx uint16) {
		pt, ok := GenerateAC(seed, int(idx))
		if !ok {
			t.Skip("generator exhausted retries")
		}
		res := CheckACSweepReuse(pt)
		if res.Err != nil {
			t.Fatalf("infrastructure error for %s: %v", pt, res.Err)
		}
		if res.Skipped {
			t.Skip("pattern outside the symbolic backend's domain")
		}
		if !res.Pass {
			t.Errorf("sweep-reuse violation: %s", res)
		}
	})
}
