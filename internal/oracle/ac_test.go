package oracle

import (
	"context"
	"math"
	"path/filepath"
	"testing"
)

// seriesRLCPoint is a hand-written series RLC at a frequency below
// resonance, where every analytic derivative of |Z| is known in closed
// form — the independent anchor for both sides of the differential check.
func seriesRLCPoint() ACPoint {
	return ACPoint{
		Nodes: 3, Obs: 1, Freq: 50e6,
		Elems: []ACElem{
			{Kind: "R", N1: 1, N2: 2, Value: 2.0},
			{Kind: "L", N1: 2, N2: 3, Value: 5e-9},
			{Kind: "C", N1: 3, N2: 0, Value: 20e-12},
		},
	}
}

// TestACOracleAnalyticAnchor pins both the adjoint and the FD reference
// against hand closed forms for the series RLC: |Z| = sqrt(R² + X²) with
// X = ωL − 1/(ωC), so d|Z|/dR = R/|Z|, d|Z|/dL = ωX/|Z|,
// d|Z|/dC = X/(ωC²|Z|).
func TestACOracleAnalyticAnchor(t *testing.T) {
	pt := seriesRLCPoint()
	res := CheckAC(pt)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Pass {
		t.Fatalf("series RLC disagrees: %s", res)
	}
	w := 2 * math.Pi * pt.Freq
	R, L, C := pt.Elems[0].Value, pt.Elems[1].Value, pt.Elems[2].Value
	X := w*L - 1/(w*C)
	absZ := math.Hypot(R, X)
	want := []float64{R / absZ, w * X / absZ, X / (w * C * C * absZ)}
	if math.Abs(res.AbsZ-absZ) > 1e-12*absZ {
		t.Errorf("|Z| = %g, want %g", res.AbsZ, absZ)
	}
	for i, s := range res.Sens {
		// The adjoint must hit the closed form to solver precision; the FD
		// must hit it within its truncation budget.
		if rel := math.Abs(s.Adjoint-want[i]) / math.Abs(want[i]); rel > 1e-10 {
			t.Errorf("%s adjoint %g vs analytic %g (rel %g)", s.Name, s.Adjoint, want[i], rel)
		}
		if rel := math.Abs(s.FD-want[i]) / math.Abs(want[i]); rel > 1e-8 {
			t.Errorf("%s FD %g vs analytic %g (rel %g)", s.Name, s.FD, want[i], rel)
		}
	}
}

// TestGenerateACDeterministic: the same (seed, index) must reproduce the
// same point bit for bit, and distinct indices must differ.
func TestGenerateACDeterministic(t *testing.T) {
	a, ok1 := GenerateAC(42, 7)
	b, ok2 := GenerateAC(42, 7)
	if !ok1 || !ok2 {
		t.Fatal("generator exhausted retries")
	}
	if a.String() != b.String() || a.Freq != b.Freq || len(a.Elems) != len(b.Elems) {
		t.Fatalf("non-deterministic generation: %v vs %v", a, b)
	}
	for i := range a.Elems {
		if a.Elems[i] != b.Elems[i] {
			t.Fatalf("element %d differs: %v vs %v", i, a.Elems[i], b.Elems[i])
		}
	}
	c, ok := GenerateAC(42, 8)
	if !ok {
		t.Fatal("generator exhausted retries")
	}
	same := a.Freq == c.Freq && len(a.Elems) == len(c.Elems)
	if same {
		for i := range a.Elems {
			if a.Elems[i] != c.Elems[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("indices 7 and 8 generated identical points")
	}
}

// TestACCampaign is the tier-1 sweep: a seeded campaign across randomized
// RLC grids must find zero adjoint-vs-FD disagreements, and its worst
// relative error must sit well inside the band (headroom check).
func TestACCampaign(t *testing.T) {
	points := 120
	if testing.Short() {
		points = 30
	}
	rep, err := RunAC(context.Background(), ACConfig{Points: points, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if !rep.OK() {
		t.Fatalf("campaign found disagreements:\n%s", rep)
	}
	if rep.WorstRel > acTol/2 {
		t.Errorf("worst rel err %.3g has <2x headroom against the %.0e band", rep.WorstRel, acTol)
	}
}

// TestACShrinkAndRepro: shrinking keeps only failure-preserving
// transformations, and repro dumps round-trip through JSON.
func TestACShrinkAndRepro(t *testing.T) {
	pt := seriesRLCPoint()
	// A passing point must come back unchanged from Shrink.
	if got := ShrinkAC(pt); len(got.Elems) != len(pt.Elems) {
		t.Errorf("Shrink altered a passing point: %v", got)
	}
	dir := t.TempDir()
	name, err := DumpACRepro(dir, "anchor", pt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadACRepro(filepath.Join(dir, name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != pt.String() || back.Freq != pt.Freq {
		t.Errorf("repro round-trip mismatch: %v vs %v", back, pt)
	}
	res := CheckAC(back)
	if res.Err != nil || !res.Pass {
		t.Errorf("replayed repro does not pass: %s", res)
	}
}

// TestACPointErrors: malformed points must error, not panic or mis-report.
func TestACPointErrors(t *testing.T) {
	bad := []ACPoint{
		{Nodes: 0, Obs: 1, Freq: 1e6},
		{Nodes: 2, Obs: 3, Freq: 1e6, Elems: []ACElem{{Kind: "R", N1: 1, N2: 2, Value: 1}}},
		{Nodes: 2, Obs: 1, Freq: 1e6, Elems: []ACElem{{Kind: "X", N1: 1, N2: 2, Value: 1}}},
		{Nodes: 2, Obs: 1, Freq: 1e6, Elems: []ACElem{{Kind: "R", N1: 1, N2: 9, Value: 1}}},
	}
	for i, pt := range bad {
		if res := CheckAC(pt); res.Err == nil {
			t.Errorf("case %d: malformed point produced no error", i)
		}
	}
}

// FuzzACAdjointVsFD is the AC differential fuzz target: any (seed, index)
// the fuzzer invents becomes a valid screened RLC grid whose adjoint
// sensitivities must match the FD reference inside the band. Wired into
// the nightly fuzz job next to FuzzMaxSSNvsSpice.
func FuzzACAdjointVsFD(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(42), uint16(7))
	f.Add(int64(-3), uint16(999))
	f.Fuzz(func(t *testing.T, seed int64, idx uint16) {
		pt, ok := GenerateAC(seed, int(idx))
		if !ok {
			t.Skip("generator exhausted retries")
		}
		res := CheckAC(pt)
		if res.Err != nil {
			t.Fatalf("infrastructure error for %s: %v", pt, res.Err)
		}
		if !res.Pass {
			t.Errorf("adjoint vs FD disagreement: %s", res)
		}
	})
}
