package circuit

import (
	"strings"
	"testing"
)

const subcktDeck = `hierarchy demo
.subckt rcstage in out
r1 in out 1k
c1 out 0 1p
.ends
v1 a 0 dc 1
x1 a b rcstage
x2 b c rcstage
.tran 10p 5n
.end
`

func TestSubcktFlattening(t *testing.T) {
	deck, err := Parse(strings.NewReader(subcktDeck))
	if err != nil {
		t.Fatal(err)
	}
	c := deck.Circuit
	// v1 + 2x (r + c) = 5 elements.
	if len(c.Elements) != 5 {
		t.Fatalf("element count %d, want 5", len(c.Elements))
	}
	for _, name := range []string{"r1.x1", "c1.x1", "r1.x2", "c1.x2"} {
		if c.FindElement(name) == nil {
			t.Errorf("missing flattened element %q", name)
		}
	}
	// Port binding: x1's "out" is the shared node b; x2's internal cap
	// sits on node c.
	r1 := c.FindElement("r1.x1").(*Resistor)
	if c.NodeName(r1.N1) != "a" || c.NodeName(r1.N2) != "b" {
		t.Errorf("r1.x1 nodes: %s %s", c.NodeName(r1.N1), c.NodeName(r1.N2))
	}
	c2 := c.FindElement("c1.x2").(*Capacitor)
	if c.NodeName(c2.N1) != "c" || c.NodeName(c2.N2) != "0" {
		t.Errorf("c1.x2 nodes: %s %s", c.NodeName(c2.N1), c.NodeName(c2.N2))
	}
}

func TestSubcktNested(t *testing.T) {
	deck, err := Parse(strings.NewReader(`nested
.subckt leaf a b
r1 a b 100
.ends
.subckt pair p q
x1 p mid leaf
x2 mid q leaf
.ends
v1 in 0 dc 1
xp in 0 pair
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	c := deck.Circuit
	// v1 + 2 leaf resistors.
	if len(c.Elements) != 3 {
		t.Fatalf("element count %d, want 3", len(c.Elements))
	}
	if c.FindElement("r1.x1.xp") == nil || c.FindElement("r1.x2.xp") == nil {
		t.Errorf("missing nested elements; have %v", names(c))
	}
	// The pair's internal node is instance-scoped.
	if c.LookupNode("mid.xp") < 0 {
		t.Error("missing scoped internal node mid.xp")
	}
}

func names(c *Circuit) []string {
	var out []string
	for _, e := range c.Elements {
		out = append(out, e.ElemName())
	}
	return out
}

func TestSubcktWithDevicesAndGlobalModel(t *testing.T) {
	deck, err := Parse(strings.NewReader(`inverter pair
.model nch nmos (level=2 b=3m)
.subckt pull d g
m1 d g 0 0 nch
.ends
v1 vdd 0 dc 1.8
vin g 0 dc 1.8
r1 vdd out 1k
xa out g pull
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := deck.Circuit.FindElement("m1.xa").(*MOSFET)
	if !ok {
		t.Fatalf("missing instance mosfet; have %v", names(deck.Circuit))
	}
	if deck.Circuit.NodeName(m.D) != "out" {
		t.Errorf("drain bound to %s", deck.Circuit.NodeName(m.D))
	}
}

func TestSubcktInstanceIsolation(t *testing.T) {
	// Two instances must not share internal nodes: drive one and check the
	// other stays quiet structurally (distinct node indices).
	deck, err := Parse(strings.NewReader(`iso
.subckt cell p
r1 p inner 1k
c1 inner 0 1p
.ends
v1 a 0 dc 1
x1 a cell
x2 b cell
r2 b 0 1k
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	c := deck.Circuit
	n1 := c.LookupNode("inner.x1")
	n2 := c.LookupNode("inner.x2")
	if n1 < 0 || n2 < 0 || n1 == n2 {
		t.Errorf("instance internals not isolated: %d vs %d", n1, n2)
	}
}

func TestSubcktErrors(t *testing.T) {
	cases := map[string]string{
		"undefined":    "t\nv1 a 0 dc 1\nx1 a foo\n.end\n",
		"port count":   "t\n.subckt s a b\nr1 a b 1\n.ends\nv1 in 0 dc 1\nx1 in s\n.end\n",
		"no ends":      "t\n.subckt s a\nr1 a 0 1\nv1 q 0 dc 1\n.end\n",
		"stray ends":   "t\n.ends\nv1 a 0 dc 1\nr1 a 0 1\n.end\n",
		"nested def":   "t\n.subckt s a\n.subckt t2 b\n.ends\n.ends\nv1 q 0 dc 1\n.end\n",
		"model inside": "t\n.subckt s a\n.model x nmos (b=1m)\n.ends\nv1 q 0 dc 1\n.end\n",
		"ctl inside":   "t\n.subckt s a\n.tran 1p 1n\n.ends\nv1 q 0 dc 1\n.end\n",
		"dup def":      "t\n.subckt s a\nr1 a 0 1\n.ends\n.subckt s a\nr1 a 0 1\n.ends\nv1 q 0 dc 1\n.end\n",
		"short def":    "t\n.subckt s\n.ends\nv1 q 0 dc 1\n.end\n",
		"short x":      "t\n.subckt s a\nr1 a 0 1\n.ends\nx1 s\nv1 q 0 dc 1\n.end\n",
	}
	for name, deck := range cases {
		if _, err := Parse(strings.NewReader(deck)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSubcktRecursionGuard(t *testing.T) {
	_, err := Parse(strings.NewReader(`cycle
.subckt a p
x1 p a
.ends
v1 q 0 dc 1
x0 q a
.end
`))
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Errorf("expected recursion guard, got %v", err)
	}
}

func TestSubcktSimulates(t *testing.T) {
	// The flattened two-stage RC actually runs; DC settles to the source.
	deck, err := Parse(strings.NewReader(subcktDeck))
	if err != nil {
		t.Fatal(err)
	}
	if deck.Tran == nil {
		t.Fatal("missing tran spec")
	}
}

func TestNodeICCard(t *testing.T) {
	deck, err := Parse(strings.NewReader(`ic demo
v1 a 0 dc 0
r1 a b 1k
c1 b 0 1p
.ic v(b)=1.5
.tran 10p 5n uic
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	if deck.NodeICs["b"] != 1.5 {
		t.Errorf("NodeICs = %v", deck.NodeICs)
	}
}

func TestNodeICErrors(t *testing.T) {
	for name, deck := range map[string]string{
		"no equals": "t\nr1 a 0 1\nv1 a 0 dc 1\n.ic v(a)1\n.end\n",
		"no node":   "t\nr1 a 0 1\nv1 a 0 dc 1\n.ic v()=1\n.end\n",
		"not v":     "t\nr1 a 0 1\nv1 a 0 dc 1\n.ic i(a)=1\n.end\n",
		"bad value": "t\nr1 a 0 1\nv1 a 0 dc 1\n.ic v(a)=zz\n.end\n",
	} {
		if _, err := Parse(strings.NewReader(deck)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
