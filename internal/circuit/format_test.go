package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ssnkit/internal/device"
)

// reparse formats a deck and parses the result back.
func reparse(t *testing.T, deck *Deck) *Deck {
	t.Helper()
	var buf bytes.Buffer
	if err := Format(&buf, deck); err != nil {
		t.Fatalf("format: %v\n%s", err, buf.String())
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	return back
}

func TestFormatRoundTripSampleDeck(t *testing.T) {
	deck, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	back := reparse(t, deck)
	if len(back.Circuit.Elements) != len(deck.Circuit.Elements) {
		t.Fatalf("element count %d vs %d", len(back.Circuit.Elements), len(deck.Circuit.Elements))
	}
	if back.Tran == nil || back.Tran.Step != deck.Tran.Step || back.Tran.UseIC != deck.Tran.UseIC {
		t.Errorf("tran spec lost: %+v", back.Tran)
	}
	// Spot-check a few elements survive with values intact.
	cl := back.Circuit.FindElement("cl").(*Capacitor)
	if cl.Farads != 2e-12 || cl.IC != 1.8 {
		t.Errorf("cl after round trip: %+v", cl)
	}
	m := back.Circuit.FindElement("m1").(*MOSFET)
	ref, ok := m.Model.(*device.Reference)
	if !ok || ref.B != 3.4e-3 {
		t.Errorf("model after round trip: %+v", m.Model)
	}
}

func TestFormatSourceForms(t *testing.T) {
	ckt := New("sources")
	ckt.AddV("v1", "a", "0", DC(5))
	ckt.AddV("v2", "b", "0", Ramp{V0: 0, V1: 1.8, Delay: 1e-10, Rise: 1e-9})
	ckt.AddV("v3", "c", "0", Pulse{V1: 0, V2: 1, Delay: 0, Rise: 1e-12, Fall: 1e-12, Width: 1e-9, Period: 0})
	pwl, _ := NewPWL([]float64{0, 1e-9, 2e-9}, []float64{0, 1, 0.5})
	ckt.AddV("v4", "d", "0", pwl)
	ckt.AddI("i1", "e", "0", DC(1e-3))
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		ckt.AddR("r"+n, n, "0", 1e3)
	}
	back := reparse(t, &Deck{Circuit: ckt})
	// Ramp corners survive.
	v2 := back.Circuit.FindElement("v2").(*VSource)
	if got := v2.Wave.At(0.6e-9); got <= 0.8 || got >= 1.0 {
		t.Errorf("ramp midpoint after round trip = %g", got)
	}
	// PWL values survive at the breakpoints.
	v4 := back.Circuit.FindElement("v4").(*VSource)
	if v4.Wave.At(1e-9) != 1 || v4.Wave.At(2e-9) != 0.5 {
		t.Error("pwl values lost")
	}
}

func TestFormatSharedModelCard(t *testing.T) {
	mdl := device.C018.Driver(1)
	ckt := New("shared")
	ckt.AddV("v1", "d", "0", DC(1.8))
	ckt.AddM("m1", "d", "g", "0", "0", mdl, NChannel)
	ckt.AddM("m2", "d", "g", "0", "0", mdl, NChannel)
	var buf bytes.Buffer
	if err := Format(&buf, &Deck{Circuit: ckt}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), ".model"); got != 1 {
		t.Errorf("shared model emitted %d cards, want 1:\n%s", got, buf.String())
	}
}

func TestFormatUnsupportedSource(t *testing.T) {
	ckt := New("bad")
	ckt.AddV("v1", "a", "0", customSource{})
	ckt.AddR("r1", "a", "0", 1)
	var buf bytes.Buffer
	if err := Format(&buf, &Deck{Circuit: ckt}); err == nil {
		t.Error("custom source must be rejected")
	}
}

type customSource struct{}

func (customSource) At(float64) float64     { return 0 }
func (customSource) Breakpoints() []float64 { return nil }
func (customSource) String() string         { return "custom" }

func TestFormatRoundTripRandomRLC(t *testing.T) {
	// Property: random RLC ladders survive format -> parse with element
	// values preserved.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ckt := New("ladder")
		n := 2 + r.Intn(6)
		prev := "0"
		ckt.AddV("vs", "n0", "0", DC(r.Float64()*5))
		prev = "n0"
		type expect struct {
			name string
			val  float64
		}
		var expects []expect
		for i := 1; i <= n; i++ {
			node := nodeName(i)
			val := (r.Float64() + 0.1) * 1e3
			name := "r" + nodeName(i)
			ckt.AddR(name, prev, node, val)
			expects = append(expects, expect{name, val})
			cval := (r.Float64() + 0.1) * 1e-12
			cname := "c" + nodeName(i)
			ckt.AddC(cname, node, "0", cval)
			expects = append(expects, expect{cname, cval})
			prev = node
		}
		var buf bytes.Buffer
		if err := Format(&buf, &Deck{Circuit: ckt}); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil {
			return false
		}
		for _, e := range expects {
			switch el := back.Circuit.FindElement(e.name).(type) {
			case *Resistor:
				if relDiff(el.Ohms, e.val) > 1e-8 {
					return false
				}
			case *Capacitor:
				if relDiff(el.Farads, e.val) > 1e-8 {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func nodeName(i int) string {
	const digits = "abcdefghij"
	s := ""
	for i > 0 {
		s = string(digits[i%10]) + s
		i /= 10
	}
	if s == "" {
		s = "a"
	}
	return s
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b < 0 {
		b = -b
	}
	if b == 0 {
		return d
	}
	return d / b
}

func TestFormatRoundTripASDMModel(t *testing.T) {
	ckt := New("asdm deck")
	ckt.AddV("vin", "g", "0", Ramp{V0: 0, V1: 1.8, Delay: 1e-10, Rise: 1e-9})
	ckt.AddM("m1", "out", "g", "vssi", "0",
		&device.ASDMDevice{M: device.ASDM{K: 3.2e-3, V0: 0.47, A: 1.31}}, NChannel)
	cl := ckt.AddC("cl", "out", "0", 2e-12)
	cl.IC = 1.8
	ckt.AddL("lgnd", "vssi", "0", 5e-9)
	deck := &Deck{Circuit: ckt, Tran: &TranSpec{Step: 2e-12, Stop: 1.2e-9, UseIC: true}}
	back := reparse(t, deck)
	m := back.Circuit.FindElement("m1").(*MOSFET)
	asdm, ok := m.Model.(*device.ASDMDevice)
	if !ok {
		t.Fatalf("model after round trip is %T, want *device.ASDMDevice", m.Model)
	}
	if asdm.M.K != 3.2e-3 || asdm.M.V0 != 0.47 || asdm.M.A != 1.31 {
		t.Errorf("ASDM params after round trip: %+v", asdm.M)
	}
	if back.Circuit.NodeName(m.B) != "0" {
		t.Errorf("bulk node %q, want ground", back.Circuit.NodeName(m.B))
	}
	if back.Tran == nil || !back.Tran.UseIC {
		t.Errorf("tran spec lost: %+v", back.Tran)
	}
}
