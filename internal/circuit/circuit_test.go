package circuit

import (
	"math"
	"strings"
	"testing"

	"ssnkit/internal/device"
)

func TestNodeInterning(t *testing.T) {
	c := New("t")
	if c.Node("0") != 0 || c.Node("gnd") != 0 || c.Node("GND") != 0 {
		t.Error("ground aliases must map to node 0")
	}
	a := c.Node("a")
	if c.Node("A") != a {
		t.Error("node names must be case-insensitive")
	}
	if c.Node("b") == a {
		t.Error("distinct names must get distinct indices")
	}
	if c.NodeName(a) != "a" {
		t.Errorf("NodeName = %q", c.NodeName(a))
	}
	if c.LookupNode("a") != a || c.LookupNode("zz") != -1 {
		t.Error("LookupNode misbehaves")
	}
	if c.NodeName(99) == "" {
		t.Error("out-of-range NodeName should describe the index")
	}
}

func TestValidate(t *testing.T) {
	c := New("t")
	if c.Validate() == nil {
		t.Error("empty circuit must fail validation")
	}
	c.AddR("r1", "a", "0", 100)
	if err := c.Validate(); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	c.AddR("R1", "b", "0", 100) // duplicate (case-insensitive)
	if c.Validate() == nil {
		t.Error("duplicate element names must fail")
	}

	c2 := New("t2")
	c2.AddC("c1", "a", "0", -1)
	if c2.Validate() == nil {
		t.Error("negative capacitance must fail")
	}
	c3 := New("t3")
	c3.AddV("v1", "a", "0", nil)
	if c3.Validate() == nil {
		t.Error("nil source waveform must fail")
	}
	c4 := New("t4")
	c4.AddM("m1", "d", "g", "s", "b", nil, NChannel)
	if c4.Validate() == nil {
		t.Error("nil device model must fail")
	}
}

func TestFindElement(t *testing.T) {
	c := New("t")
	r := c.AddR("r1", "a", "0", 100)
	if c.FindElement("R1") != Element(r) {
		t.Error("FindElement must be case-insensitive")
	}
	if c.FindElement("zz") != nil {
		t.Error("missing element must return nil")
	}
}

func TestSources(t *testing.T) {
	if DC(5).At(100) != 5 {
		t.Error("DC source")
	}
	if DC(5).Breakpoints() != nil {
		t.Error("DC has no breakpoints")
	}

	r := Ramp{V0: 0, V1: 1.8, Delay: 1e-9, Rise: 2e-9}
	if r.At(0) != 0 || r.At(1e-9) != 0 {
		t.Error("ramp before delay")
	}
	if got := r.At(2e-9); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("ramp midpoint = %g", got)
	}
	if r.At(5e-9) != 1.8 {
		t.Error("ramp after rise")
	}
	if got := r.Slope(); math.Abs(got-0.9e9) > 1 {
		t.Errorf("ramp slope = %g", got)
	}
	if (Ramp{Rise: 0}).Slope() != 0 {
		t.Error("zero-rise slope must be 0")
	}
	bps := r.Breakpoints()
	if len(bps) != 2 || bps[0] != 1e-9 || math.Abs(bps[1]-3e-9) > 1e-18 {
		t.Errorf("ramp breakpoints = %v", bps)
	}

	p := Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Fall: 1, Width: 2, Period: 10}
	cases := []struct{ tt, want float64 }{
		{0.5, 0}, {1.5, 0.5}, {2.5, 1}, {3.5, 1}, {4.5, 0.5}, {6, 0},
		{11.5, 0.5}, // second period
	}
	for _, c := range cases {
		if got := p.At(c.tt); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("pulse At(%g) = %g, want %g", c.tt, got, c.want)
		}
	}
	if len(p.Breakpoints()) == 0 {
		t.Error("pulse must report breakpoints")
	}

	pw, err := NewPWL([]float64{0, 1, 2}, []float64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pw.At(0.5) != 2.5 || pw.At(3) != 0 {
		t.Error("pwl interpolation")
	}
	if _, err := NewPWL([]float64{1, 0}, []float64{0, 0}); err == nil {
		t.Error("non-increasing PWL must error")
	}
}

func TestZeroRisePulse(t *testing.T) {
	p := Pulse{V1: 0, V2: 1, Delay: 0, Rise: 0, Fall: 0, Width: 5, Period: 0}
	if p.At(0.0) != 1 || p.At(4) != 1 || p.At(6) != 0 {
		t.Error("zero-edge pulse values")
	}
}

const sampleDeck = `ssn driver array
* comment line
vdd vdd 0 dc 1.8
vin g 0 ramp(0 1.8 0.1n 1n)
rl vdd out 1k
cl out 0 2p ic=1.8
lg vssp 0 5n
m1 out g vssp 0 nch
.model nch nmos (level=3 b=3.4m vt0=0.45 alpha=1.24 kv=0.55
+ gamma=0.4 phi=0.8 lambda=0.06)
.tran 1p 3n uic
.end
`

func TestParseFullDeck(t *testing.T) {
	deck, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	c := deck.Circuit
	if c.Title != "ssn driver array" {
		t.Errorf("title = %q", c.Title)
	}
	if len(c.Elements) != 6 {
		t.Fatalf("element count = %d, want 6", len(c.Elements))
	}
	if deck.Tran == nil || !deck.Tran.UseIC {
		t.Fatal("missing .tran uic")
	}
	if deck.Tran.Step != 1e-12 || math.Abs(deck.Tran.Stop-3e-9) > 1e-18 {
		t.Errorf("tran spec %+v", deck.Tran)
	}
	cl, ok := c.FindElement("cl").(*Capacitor)
	if !ok || cl.IC != 1.8 || cl.Farads != 2e-12 {
		t.Errorf("cl parse: %+v", cl)
	}
	m, ok := c.FindElement("m1").(*MOSFET)
	if !ok {
		t.Fatal("missing mosfet")
	}
	ref, ok := m.Model.(*device.Reference)
	if !ok {
		t.Fatalf("model type %T", m.Model)
	}
	if ref.B != 3.4e-3 || ref.Alpha != 1.24 {
		t.Errorf("model params: %+v", ref)
	}
	v, ok := c.FindElement("vin").(*VSource)
	if !ok {
		t.Fatal("missing vin")
	}
	rmp, ok := v.Wave.(Ramp)
	if !ok || rmp.Rise != 1e-9 {
		t.Errorf("vin wave: %v", v.Wave)
	}
}

func TestParseModelLevels(t *testing.T) {
	deck, err := Parse(strings.NewReader(`levels
v1 d 0 dc 1
m1 d g 0 0 sq
m2 d g 0 0 ap
m3 d g 0 0 rf
.model sq nmos (level=1 kp=2m vt0=0.5)
.model ap nmos (level=2 b=3m alpha=1.3)
.model rf pmos (level=3 b=3m)
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	c := deck.Circuit
	if _, ok := c.FindElement("m1").(*MOSFET).Model.(*device.SquareLaw); !ok {
		t.Error("level=1 should be square-law")
	}
	if _, ok := c.FindElement("m2").(*MOSFET).Model.(*device.AlphaPower); !ok {
		t.Error("level=2 should be alpha-power")
	}
	m3 := c.FindElement("m3").(*MOSFET)
	if _, ok := m3.Model.(*device.Reference); !ok {
		t.Error("level=3 should be reference")
	}
	if m3.Pol != PChannel {
		t.Error("pmos model must set PChannel polarity")
	}
}

func TestParseSourceForms(t *testing.T) {
	deck, err := Parse(strings.NewReader(`sources
v1 a 0 5
v2 b 0 dc 3
v3 c 0 pwl(0 0 1n 1 2n 0)
v4 d 0 pulse(0 1 0 1p 1p 1n 2n)
i1 e 0 dc 1m
r1 a 0 1k
r2 b 0 1k
r3 c 0 1k
r4 d 0 1k
r5 e 0 1k
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	c := deck.Circuit
	if w := c.FindElement("v1").(*VSource).Wave; w.At(0) != 5 {
		t.Error("bare value source")
	}
	if w := c.FindElement("v2").(*VSource).Wave; w.At(0) != 3 {
		t.Error("dc source")
	}
	if w := c.FindElement("v3").(*VSource).Wave; math.Abs(w.At(0.5e-9)-0.5) > 1e-12 {
		t.Error("pwl source")
	}
	if w := c.FindElement("v4").(*VSource).Wave; w.At(0.5e-9) != 1 {
		t.Error("pulse source")
	}
	if w := c.FindElement("i1").(*ISource).Wave; w.At(0) != 1e-3 {
		t.Error("current source")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, deck string
	}{
		{"empty", ""},
		{"bad card", "t\nq1 a b c\n.end\n"},
		{"bad control", "t\n.foo\n.end\n"},
		{"short r", "t\nr1 a 0\n.end\n"},
		{"bad value", "t\nr1 a 0 xyz\n.end\n"},
		{"undefined model", "t\nv1 d 0 1\nm1 d g 0 0 nomodel\n.end\n"},
		{"odd pwl", "t\nv1 a 0 pwl(0 1 2)\nr1 a 0 1\n.end\n"},
		{"short pulse", "t\nv1 a 0 pulse(0 1)\nr1 a 0 1\n.end\n"},
		{"bad tran", "t\nr1 a 0 1\nv1 a 0 1\n.tran 1p\n.end\n"},
		{"tran order", "t\nr1 a 0 1\nv1 a 0 1\n.tran 1p 0\n.end\n"},
		{"bad dc", "t\nv1 a 0 1\nr1 a 0 1\n.dc v1 0 1\n.end\n"},
		{"dc order", "t\nv1 a 0 1\nr1 a 0 1\n.dc v1 1 0 0.1\n.end\n"},
		{"bad model param", "t\nv1 d 0 1\nm1 d g 0 0 x\n.model x nmos (vt0)\n.end\n"},
		{"bad model type", "t\nv1 d 0 1\nm1 d g 0 0 x\n.model x njf (vt0=1)\n.end\n"},
		{"bad level", "t\nv1 d 0 1\nm1 d g 0 0 x\n.model x nmos (level=9)\n.end\n"},
		{"short mosfet", "t\nv1 d 0 1\nm1 d g 0\n.end\n"},
		{"dangling continuation", "+ r1 a 0 1\n"},
		{"mosfet model missing", "t\nm1 d g 0 0 zz\nv1 d 0 1\n.end\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.deck)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse(strings.NewReader("title\nr1 a 0 bad\n.end\n"))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("error text %q", pe.Error())
	}
}

func TestParseHeadlessDeck(t *testing.T) {
	// A deck whose first line is already a card gets an empty title.
	deck, err := Parse(strings.NewReader("r1 a 0 1k extra\nv1 a 0 dc 1\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	if deck.Circuit.Title != "" {
		t.Errorf("title = %q, want empty", deck.Circuit.Title)
	}
	if len(deck.Circuit.Elements) != 2 {
		t.Errorf("elements = %d", len(deck.Circuit.Elements))
	}
}

func TestParseTrailingComments(t *testing.T) {
	deck, err := Parse(strings.NewReader("t\nr1 a 0 1k $ load\nv1 a 0 1 ; source\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(deck.Circuit.Elements) != 2 {
		t.Errorf("elements = %d, want 2", len(deck.Circuit.Elements))
	}
}

func TestParseDCCard(t *testing.T) {
	deck, err := Parse(strings.NewReader("t\nv1 a 0 dc 0\nr1 a 0 1k\n.dc v1 0 1.8 0.1\n.op\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	if deck.DC == nil || deck.DC.Source != "v1" || deck.DC.To != 1.8 {
		t.Errorf("dc spec %+v", deck.DC)
	}
	if !deck.OP {
		t.Error(".op not recorded")
	}
}
