package circuit

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ssnkit/internal/device"
)

// Format writes the deck back out as netlist text that Parse accepts — the
// inverse of Parse up to formatting. Device models referenced by MOSFETs
// are emitted as .MODEL cards; two MOSFETs sharing a model share the card.
// Sources of types Parse cannot express (arbitrary Source implementations)
// are rejected.
func Format(w io.Writer, deck *Deck) error {
	c := deck.Circuit
	title := c.Title
	if title == "" {
		title = "untitled"
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}

	models := map[device.Model]string{}
	var modelCards []string
	modelName := func(m device.Model, pol Polarity) (string, error) {
		if name, ok := models[m]; ok {
			return name, nil
		}
		name := fmt.Sprintf("mod%d", len(models)+1)
		card, err := modelCard(name, m, pol)
		if err != nil {
			return "", err
		}
		models[m] = name
		modelCards = append(modelCards, card)
		return name, nil
	}

	for _, el := range c.Elements {
		var line string
		switch e := el.(type) {
		case *Resistor:
			line = fmt.Sprintf("%s %s %s %.9g", e.Name, c.NodeName(e.N1), c.NodeName(e.N2), e.Ohms)
		case *Capacitor:
			line = fmt.Sprintf("%s %s %s %.9g", e.Name, c.NodeName(e.N1), c.NodeName(e.N2), e.Farads)
			if e.IC != 0 {
				line += fmt.Sprintf(" ic=%.9g", e.IC)
			}
		case *Inductor:
			line = fmt.Sprintf("%s %s %s %.9g", e.Name, c.NodeName(e.N1), c.NodeName(e.N2), e.Henrys)
			if e.IC != 0 {
				line += fmt.Sprintf(" ic=%.9g", e.IC)
			}
		case *VSource:
			src, err := sourceText(e.Wave)
			if err != nil {
				return fmt.Errorf("circuit: format %s: %w", e.Name, err)
			}
			line = fmt.Sprintf("%s %s %s %s", e.Name, c.NodeName(e.Np), c.NodeName(e.Nn), src)
		case *ISource:
			src, err := sourceText(e.Wave)
			if err != nil {
				return fmt.Errorf("circuit: format %s: %w", e.Name, err)
			}
			line = fmt.Sprintf("%s %s %s %s", e.Name, c.NodeName(e.Np), c.NodeName(e.Nn), src)
		case *Mutual:
			line = fmt.Sprintf("%s %s %s %.9g", e.Name, e.L1, e.L2, e.K)
		case *TLine:
			line = fmt.Sprintf("%s %s %s %s %s z0=%.9g td=%.9g", e.Name,
				c.NodeName(e.N1p), c.NodeName(e.N1n), c.NodeName(e.N2p), c.NodeName(e.N2n),
				e.Z0, e.Td)
		case *MOSFET:
			name, err := modelName(e.Model, e.Pol)
			if err != nil {
				return fmt.Errorf("circuit: format %s: %w", e.Name, err)
			}
			line = fmt.Sprintf("%s %s %s %s %s %s", e.Name,
				c.NodeName(e.D), c.NodeName(e.G), c.NodeName(e.S), c.NodeName(e.B), name)
		default:
			return fmt.Errorf("circuit: format: unsupported element %T", el)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	for _, card := range modelCards {
		if _, err := fmt.Fprintln(w, card); err != nil {
			return err
		}
	}
	if deck.Tran != nil {
		line := fmt.Sprintf(".tran %.9g %.9g", deck.Tran.Step, deck.Tran.Stop)
		if deck.Tran.Start != 0 {
			line += fmt.Sprintf(" %.9g", deck.Tran.Start)
		}
		if deck.Tran.UseIC {
			line += " uic"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if deck.DC != nil {
		if _, err := fmt.Fprintf(w, ".dc %s %.9g %.9g %.9g\n",
			deck.DC.Source, deck.DC.From, deck.DC.To, deck.DC.Step); err != nil {
			return err
		}
	}
	if len(deck.NodeICs) > 0 {
		keys := make([]string, 0, len(deck.NodeICs))
		for k := range deck.NodeICs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		line := ".ic"
		for _, k := range keys {
			line += fmt.Sprintf(" v(%s)=%.9g", k, deck.NodeICs[k])
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if deck.OP {
		if _, err := fmt.Fprintln(w, ".op"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ".end")
	return err
}

func sourceText(s Source) (string, error) {
	switch src := s.(type) {
	case DC:
		return fmt.Sprintf("dc %.9g", float64(src)), nil
	case Ramp:
		return fmt.Sprintf("ramp(%.9g %.9g %.9g %.9g)", src.V0, src.V1, src.Delay, src.Rise), nil
	case Pulse:
		return fmt.Sprintf("pulse(%.9g %.9g %.9g %.9g %.9g %.9g %.9g)",
			src.V1, src.V2, src.Delay, src.Rise, src.Fall, src.Width, src.Period), nil
	case *PWL:
		var b strings.Builder
		b.WriteString("pwl(")
		bps := src.Breakpoints()
		for i, t := range bps {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.9g %.9g", t, src.At(t))
		}
		b.WriteByte(')')
		return b.String(), nil
	default:
		return "", fmt.Errorf("source type %T has no netlist form", s)
	}
}

func modelCard(name string, m device.Model, pol Polarity) (string, error) {
	kind := "nmos"
	if pol == PChannel {
		kind = "pmos"
	}
	switch d := m.(type) {
	case *device.SquareLaw:
		return fmt.Sprintf(".model %s %s (level=1 kp=%.9g vt0=%.9g gamma=%.9g phi=%.9g lambda=%.9g)",
			name, kind, d.Kp, d.Vt0, d.Gamma, d.Phi, d.Lambda), nil
	case *device.AlphaPower:
		return fmt.Sprintf(".model %s %s (level=2 b=%.9g vt0=%.9g alpha=%.9g kv=%.9g gamma=%.9g phi=%.9g lambda=%.9g)",
			name, kind, d.B, d.Vt0, d.Alpha, d.Kv, d.Gamma, d.Phi, d.Lambda), nil
	case *device.Reference:
		return fmt.Sprintf(".model %s %s (level=3 b=%.9g vt0=%.9g alpha=%.9g kv=%.9g gamma=%.9g phi=%.9g lambda=%.9g subslope=%.9g)",
			name, kind, d.B, d.Vt0, d.Alpha, d.Kv, d.Gamma, d.Phi, d.Lambda, d.SubSlope), nil
	case *device.ASDMDevice:
		return fmt.Sprintf(".model %s %s (level=4 k=%.9g v0=%.9g a=%.9g)",
			name, kind, d.M.K, d.M.V0, d.M.A), nil
	default:
		return "", fmt.Errorf("device model type %T has no .MODEL form", m)
	}
}
