package circuit

import (
	"fmt"
	"strings"

	"ssnkit/internal/device"
)

// GroundName is the canonical name of the reference node. "gnd" is accepted
// as an alias at the API and parser boundary.
const GroundName = "0"

// Polarity distinguishes N- and P-channel MOSFET elements.
type Polarity int

// MOSFET polarities.
const (
	NChannel Polarity = iota
	PChannel
)

// Element is any circuit component. Concrete types are Resistor, Capacitor,
// Inductor, VSource, ISource and MOSFET.
type Element interface {
	ElemName() string
}

// Resistor is a linear resistance between two nodes.
type Resistor struct {
	Name   string
	N1, N2 int
	Ohms   float64
}

// ElemName implements Element.
func (r *Resistor) ElemName() string { return r.Name }

// Capacitor is a linear capacitance between two nodes with an optional
// initial voltage used when the transient starts from given initial
// conditions rather than a DC operating point.
type Capacitor struct {
	Name   string
	N1, N2 int
	Farads float64
	IC     float64 // initial voltage V(N1)-V(N2), used with UseIC
}

// ElemName implements Element.
func (c *Capacitor) ElemName() string { return c.Name }

// Inductor is a linear inductance; its branch current is an MNA unknown.
type Inductor struct {
	Name   string
	N1, N2 int
	Henrys float64
	IC     float64 // initial current from N1 to N2, used with UseIC
}

// ElemName implements Element.
func (l *Inductor) ElemName() string { return l.Name }

// VSource is an independent voltage source; its branch current is an MNA
// unknown (positive current flows from Np through the source to Nn).
type VSource struct {
	Name   string
	Np, Nn int
	Wave   Source
}

// ElemName implements Element.
func (v *VSource) ElemName() string { return v.Name }

// ISource is an independent current source pushing current from Np to Nn
// through the external circuit (SPICE convention: current flows from Np to
// Nn inside the source).
type ISource struct {
	Name   string
	Np, Nn int
	Wave   Source
}

// ElemName implements Element.
func (i *ISource) ElemName() string { return i.Name }

// Mutual couples two inductors with coefficient K (|K| < 1), modeling the
// magnetic coupling between adjacent bond wires or package pins. The dot
// convention places the dotted terminals at each inductor's N1; a positive
// K means currents entering both N1 terminals aid each other's flux.
type Mutual struct {
	Name   string
	L1, L2 string // names of the coupled Inductor elements
	K      float64
}

// ElemName implements Element.
func (m *Mutual) ElemName() string { return m.Name }

// TLine is an ideal lossless transmission line (characteristic impedance
// Z0, one-way delay Td) between port 1 (N1p/N1n) and port 2 (N2p/N2n),
// simulated with Branin's method of characteristics. It models package
// traces and board interconnect once they are long enough that the lumped
// L/C view breaks down.
type TLine struct {
	Name               string
	N1p, N1n, N2p, N2n int
	Z0                 float64 // Ohm
	Td                 float64 // s
}

// ElemName implements Element.
func (t *TLine) ElemName() string { return t.Name }

// MOSFET is a four-terminal transistor element evaluated through a
// device.Model. For PChannel devices the model is evaluated with reflected
// terminal voltages, so the same N-type model parameters describe the
// complementary device.
type MOSFET struct {
	Name       string
	D, G, S, B int
	Model      device.Model
	Pol        Polarity
}

// ElemName implements Element.
func (m *MOSFET) ElemName() string { return m.Name }

// Circuit is a flat netlist: a node name table plus an element list.
// The zero value is unusable; use New.
type Circuit struct {
	Title     string
	nodeIndex map[string]int
	nodeNames []string
	Elements  []Element
}

// New creates an empty circuit containing only the ground node.
func New(title string) *Circuit {
	c := &Circuit{
		Title:     title,
		nodeIndex: map[string]int{GroundName: 0},
		nodeNames: []string{GroundName},
	}
	return c
}

// Node interns a node name and returns its index. Ground is index 0 and may
// be written "0" or "gnd" (case-insensitive). Names are case-insensitive.
func (c *Circuit) Node(name string) int {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "gnd" || key == "" {
		key = GroundName
	}
	if idx, ok := c.nodeIndex[key]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[key] = idx
	c.nodeNames = append(c.nodeNames, key)
	return idx
}

// NodeName returns the name of a node index.
func (c *Circuit) NodeName(idx int) string {
	if idx < 0 || idx >= len(c.nodeNames) {
		return fmt.Sprintf("node#%d", idx)
	}
	return c.nodeNames[idx]
}

// LookupNode returns the index of an existing node, or -1.
func (c *Circuit) LookupNode(name string) int {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "gnd" {
		key = GroundName
	}
	if idx, ok := c.nodeIndex[key]; ok {
		return idx
	}
	return -1
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NodeNames returns the node names indexed by node number.
func (c *Circuit) NodeNames() []string {
	out := make([]string, len(c.nodeNames))
	copy(out, c.nodeNames)
	return out
}

func (c *Circuit) add(e Element) {
	c.Elements = append(c.Elements, e)
}

// AddR adds a resistor between the named nodes.
func (c *Circuit) AddR(name, n1, n2 string, ohms float64) *Resistor {
	r := &Resistor{Name: name, N1: c.Node(n1), N2: c.Node(n2), Ohms: ohms}
	c.add(r)
	return r
}

// AddC adds a capacitor between the named nodes.
func (c *Circuit) AddC(name, n1, n2 string, farads float64) *Capacitor {
	e := &Capacitor{Name: name, N1: c.Node(n1), N2: c.Node(n2), Farads: farads}
	c.add(e)
	return e
}

// AddL adds an inductor between the named nodes.
func (c *Circuit) AddL(name, n1, n2 string, henrys float64) *Inductor {
	e := &Inductor{Name: name, N1: c.Node(n1), N2: c.Node(n2), Henrys: henrys}
	c.add(e)
	return e
}

// AddV adds an independent voltage source from np (+) to nn (-).
func (c *Circuit) AddV(name, np, nn string, wave Source) *VSource {
	e := &VSource{Name: name, Np: c.Node(np), Nn: c.Node(nn), Wave: wave}
	c.add(e)
	return e
}

// AddI adds an independent current source from np to nn.
func (c *Circuit) AddI(name, np, nn string, wave Source) *ISource {
	e := &ISource{Name: name, Np: c.Node(np), Nn: c.Node(nn), Wave: wave}
	c.add(e)
	return e
}

// AddM adds a MOSFET with drain, gate, source, bulk nodes.
func (c *Circuit) AddM(name, d, g, s, b string, model device.Model, pol Polarity) *MOSFET {
	e := &MOSFET{Name: name, D: c.Node(d), G: c.Node(g), S: c.Node(s), B: c.Node(b), Model: model, Pol: pol}
	c.add(e)
	return e
}

// AddT adds an ideal transmission line between two ports.
func (c *Circuit) AddT(name, n1p, n1n, n2p, n2n string, z0, td float64) *TLine {
	e := &TLine{Name: name,
		N1p: c.Node(n1p), N1n: c.Node(n1n),
		N2p: c.Node(n2p), N2n: c.Node(n2n),
		Z0: z0, Td: td}
	c.add(e)
	return e
}

// AddMutual couples two previously added inductors (referenced by element
// name) with coefficient k.
func (c *Circuit) AddMutual(name, l1, l2 string, k float64) *Mutual {
	e := &Mutual{Name: name, L1: l1, L2: l2, K: k}
	c.add(e)
	return e
}

// Validate performs structural checks: positive element values, at least one
// element, every element name unique.
func (c *Circuit) Validate() error {
	if len(c.Elements) == 0 {
		return fmt.Errorf("circuit %q: no elements", c.Title)
	}
	seen := make(map[string]bool, len(c.Elements))
	for _, e := range c.Elements {
		name := strings.ToLower(e.ElemName())
		if name == "" {
			return fmt.Errorf("circuit %q: element with empty name", c.Title)
		}
		if seen[name] {
			return fmt.Errorf("circuit %q: duplicate element name %q", c.Title, e.ElemName())
		}
		seen[name] = true
		switch el := e.(type) {
		case *Resistor:
			if el.Ohms <= 0 {
				return fmt.Errorf("resistor %s: non-positive resistance %g", el.Name, el.Ohms)
			}
		case *Capacitor:
			if el.Farads <= 0 {
				return fmt.Errorf("capacitor %s: non-positive capacitance %g", el.Name, el.Farads)
			}
		case *Inductor:
			if el.Henrys <= 0 {
				return fmt.Errorf("inductor %s: non-positive inductance %g", el.Name, el.Henrys)
			}
		case *VSource:
			if el.Wave == nil {
				return fmt.Errorf("vsource %s: nil waveform", el.Name)
			}
		case *ISource:
			if el.Wave == nil {
				return fmt.Errorf("isource %s: nil waveform", el.Name)
			}
		case *MOSFET:
			if el.Model == nil {
				return fmt.Errorf("mosfet %s: nil device model", el.Name)
			}
		case *TLine:
			if el.Z0 <= 0 {
				return fmt.Errorf("tline %s: non-positive impedance %g", el.Name, el.Z0)
			}
			if el.Td <= 0 {
				return fmt.Errorf("tline %s: non-positive delay %g", el.Name, el.Td)
			}
		case *Mutual:
			if el.K <= -1 || el.K >= 1 {
				return fmt.Errorf("mutual %s: |K| = %g must be below 1", el.Name, el.K)
			}
			for _, ref := range []string{el.L1, el.L2} {
				if _, ok := c.FindElement(ref).(*Inductor); !ok {
					return fmt.Errorf("mutual %s: %q is not an inductor", el.Name, ref)
				}
			}
			if strings.EqualFold(el.L1, el.L2) {
				return fmt.Errorf("mutual %s: cannot couple %q to itself", el.Name, el.L1)
			}
		}
	}
	return nil
}

// FindElement returns the element with the given (case-insensitive) name,
// or nil.
func (c *Circuit) FindElement(name string) Element {
	for _, e := range c.Elements {
		if strings.EqualFold(e.ElemName(), name) {
			return e
		}
	}
	return nil
}
