package circuit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the netlist parser never panics and that every deck it
// accepts survives a Format -> Parse round trip with the same element
// count, node count and analyses.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleDeck,
		"t\nr1 a 0 1k\nv1 a 0 1\n.end\n",
		"t\nv1 a 0 pwl(0 0 1n 1)\nr1 a 0 1\n.tran 1p 2n\n.end\n",
		"t\nv1 a 0 pulse(0 1 0 1p 1p 1n 2n)\nr1 a 0 1\n.dc v1 0 1 0.1\n.op\n.end\n",
		"t\nla a 0 1n\nlb a 0 1n\nk1 la lb 0.5\nv1 a 0 1\n.end\n",
		"* only a comment\n",
		".end\n",
		"t\n+ dangling\n",
		"t\nm1 d g s b mod\nv1 d 0 1\n.model mod nmos (level=2 b=1m)\n.end\n",
		"t\nr1 a 0 1k $ trailing\nv1 a 0 1 ; comment\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, deckText string) {
		deck, err := Parse(strings.NewReader(deckText))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Format(&buf, deck); err != nil {
			// Only custom sources are unformattable, and Parse cannot
			// produce those.
			t.Fatalf("accepted deck does not format: %v", err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("formatted deck does not re-parse: %v\n%s", err, buf.String())
		}
		if len(back.Circuit.Elements) != len(deck.Circuit.Elements) {
			t.Fatalf("element count changed: %d -> %d", len(deck.Circuit.Elements), len(back.Circuit.Elements))
		}
		if back.Circuit.NumNodes() != deck.Circuit.NumNodes() {
			t.Fatalf("node count changed: %d -> %d", deck.Circuit.NumNodes(), back.Circuit.NumNodes())
		}
		if (back.Tran == nil) != (deck.Tran == nil) || (back.DC == nil) != (deck.DC == nil) || back.OP != deck.OP {
			t.Fatal("analyses changed across round trip")
		}
	})
}
