// Package circuit defines ssnkit's netlist data model: nodes, passive and
// active elements, independent sources with time-dependent waveforms, a
// programmatic builder API, and a SPICE-like deck parser. The companion
// package internal/spice simulates these circuits.
package circuit

import (
	"fmt"
	"sort"

	"ssnkit/internal/numeric"
)

// Source is a time-dependent scalar driving function for independent
// voltage/current sources. Breakpoints lists times where the derivative is
// discontinuous; the transient engine forces steps onto them.
type Source interface {
	At(t float64) float64
	Breakpoints() []float64
	String() string
}

// DC is a constant source.
type DC float64

// At implements Source.
func (d DC) At(float64) float64 { return float64(d) }

// Breakpoints implements Source.
func (d DC) Breakpoints() []float64 { return nil }

func (d DC) String() string { return fmt.Sprintf("DC %g", float64(d)) }

// PWL is a piecewise-linear source defined by (time, value) pairs; values
// hold flat outside the defined span.
type PWL struct {
	interp *numeric.Interp1
	desc   string
}

// NewPWL builds a piecewise-linear source. Times must be strictly
// increasing.
func NewPWL(times, values []float64) (*PWL, error) {
	ip, err := numeric.NewInterp1(times, values)
	if err != nil {
		return nil, fmt.Errorf("circuit: pwl: %w", err)
	}
	return &PWL{interp: ip, desc: fmt.Sprintf("PWL(%d pts)", len(times))}, nil
}

// At implements Source.
func (p *PWL) At(t float64) float64 { return p.interp.At(t) }

// Breakpoints implements Source.
func (p *PWL) Breakpoints() []float64 { return p.interp.Breakpoints() }

func (p *PWL) String() string { return p.desc }

// Ramp is the input stimulus of the SSN analysis: holds V0 until Delay,
// rises linearly to V1 over Rise, then holds V1.
type Ramp struct {
	V0, V1      float64
	Delay, Rise float64
}

// At implements Source.
func (r Ramp) At(t float64) float64 {
	switch {
	case t <= r.Delay:
		return r.V0
	case t >= r.Delay+r.Rise:
		return r.V1
	default:
		return r.V0 + (r.V1-r.V0)*(t-r.Delay)/r.Rise
	}
}

// Breakpoints implements Source.
func (r Ramp) Breakpoints() []float64 { return []float64{r.Delay, r.Delay + r.Rise} }

// Slope returns the rising slope in V/s.
func (r Ramp) Slope() float64 {
	if r.Rise == 0 {
		return 0
	}
	return (r.V1 - r.V0) / r.Rise
}

func (r Ramp) String() string {
	return fmt.Sprintf("RAMP(%g->%g delay %g rise %g)", r.V0, r.V1, r.Delay, r.Rise)
}

// Pulse is the SPICE PULSE source: initial value, pulsed value, delay, rise,
// fall, width, period. Period 0 means a single pulse.
type Pulse struct {
	V1, V2                           float64
	Delay, Rise, Fall, Width, Period float64
}

// At implements Source.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.V1
	}
	tt := t - p.Delay
	if p.Period > 0 {
		n := float64(int(tt / p.Period))
		tt -= n * p.Period
	}
	switch {
	case tt < p.Rise:
		if p.Rise == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*tt/p.Rise
	case tt < p.Rise+p.Width:
		return p.V2
	case tt < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(tt-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// Breakpoints implements Source. For periodic pulses it reports the corners
// of the first 64 periods, which covers any transient this repo runs.
func (p Pulse) Breakpoints() []float64 {
	corners := []float64{0, p.Rise, p.Rise + p.Width, p.Rise + p.Width + p.Fall}
	var out []float64
	reps := 1
	if p.Period > 0 {
		reps = 64
	}
	for k := 0; k < reps; k++ {
		base := p.Delay + float64(k)*p.Period
		for _, c := range corners {
			out = append(out, base+c)
		}
	}
	sort.Float64s(out)
	return out
}

func (p Pulse) String() string {
	return fmt.Sprintf("PULSE(%g %g %g %g %g %g %g)", p.V1, p.V2, p.Delay, p.Rise, p.Fall, p.Width, p.Period)
}
