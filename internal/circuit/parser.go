package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ssnkit/internal/device"
	"ssnkit/internal/units"
)

// TranSpec requests a transient analysis (.TRAN step stop [start]).
type TranSpec struct {
	Step, Stop, Start float64
	UseIC             bool // .TRAN ... UIC: start from element ICs, skip DC OP
}

// DCSpec requests a DC sweep of a source (.DC src from to step).
type DCSpec struct {
	Source         string
	From, To, Step float64
}

// Deck is a parsed netlist: the circuit plus requested analyses.
type Deck struct {
	Circuit *Circuit
	Tran    *TranSpec
	DC      *DCSpec
	OP      bool
	// NodeICs holds .IC cards: node voltages enforced at the start of a
	// UIC transient (keys are lower-case node names).
	NodeICs map[string]float64
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("netlist line %d: %s", e.Line, e.Msg) }

func errAt(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a SPICE-like deck. Supported cards:
//
//	R/C/L name n1 n2 value [IC=v]
//	Vname n+ n- DC v | value | PWL(t v ...) | PULSE(v1 v2 td tr tf pw per) | RAMP(v0 v1 td tr)
//	Iname n+ n- (same source forms)
//	Mname d g s b modelname
//	.MODEL name NMOS|PMOS (param=value ...)   params: LEVEL B KP VT0 ALPHA KV GAMMA PHI LAMBDA SUBSLOPE K V0 A
//	Tname p1+ p1- p2+ p2- z0=<ohm> td=<s>     (ideal transmission line)
//	Kname l1 l2 coefficient                   (coupled inductors)
//	Xname node... subcktname                  (subcircuit instance)
//	.SUBCKT name port... / .ENDS              (flattened at parse time)
//	.IC v(node)=value ...                     (UIC initial node voltages)
//	.TRAN step stop [start] [UIC]
//	.DC srcname from to step
//	.OP
//	.END
//
// The first line is the title. "*" lines are comments; "$" and ";" start
// trailing comments; "+" continues the previous card. Names and keywords are
// case-insensitive; values use SPICE engineering suffixes.
func Parse(r io.Reader) (*Deck, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var lines []rawLine
	num := 0
	for sc.Scan() {
		num++
		text := sc.Text()
		if i := strings.IndexAny(text, "$;"); i >= 0 {
			text = text[:i]
		}
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "*") && num > 1 {
			continue
		}
		if strings.HasPrefix(trimmed, "+") {
			if len(lines) == 0 {
				return nil, errAt(num, "continuation with no preceding card")
			}
			lines[len(lines)-1].text += " " + strings.TrimPrefix(trimmed, "+")
			continue
		}
		lines = append(lines, rawLine{trimmed, num})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("netlist: empty deck")
	}

	title := lines[0].text
	body := lines[1:]
	// A deck whose first line is itself a card (common for embedded decks)
	// keeps that line in the body and gets an empty title.
	if isCard(title) {
		body = lines
		title = ""
	}

	// Flatten subcircuits before per-card processing.
	main, subckts, err := extractSubckts(body)
	if err != nil {
		return nil, err
	}
	body, err = expandSubckts(main, subckts)
	if err != nil {
		return nil, err
	}

	deck := &Deck{Circuit: New(strings.TrimPrefix(title, "*"))}
	type modelEntry struct {
		mdl device.Model
		pol Polarity
	}
	models := map[string]modelEntry{}
	type pendingFET struct {
		card rawLine
		toks []string
	}
	var fets []pendingFET

	for _, ln := range body {
		toks := tokenize(ln.text)
		if len(toks) == 0 {
			continue
		}
		head := strings.ToLower(toks[0])
		switch {
		case head == ".end":
			goto done
		case head == ".op":
			deck.OP = true
		case head == ".tran":
			spec, err := parseTran(toks, ln.num)
			if err != nil {
				return nil, err
			}
			deck.Tran = spec
		case head == ".dc":
			spec, err := parseDC(toks, ln.num)
			if err != nil {
				return nil, err
			}
			deck.DC = spec
		case head == ".ic":
			// .IC v(node)=value ... — parsed from the raw text because the
			// generic tokenizer strips the parentheses.
			for _, tok := range strings.Fields(ln.text)[1:] {
				lt := strings.ToLower(tok)
				if !strings.HasPrefix(lt, "v") {
					return nil, errAt(ln.num, ".IC entries look like v(node)=value, got %q", tok)
				}
				eq := strings.IndexByte(lt, '=')
				if eq < 0 {
					return nil, errAt(ln.num, ".IC entry %q missing '='", tok)
				}
				node := strings.Trim(lt[1:eq], "() \t")
				if node == "" {
					return nil, errAt(ln.num, ".IC entry %q has no node", tok)
				}
				val, err := parseVal(lt[eq+1:], ln.num, ".IC value")
				if err != nil {
					return nil, err
				}
				if deck.NodeICs == nil {
					deck.NodeICs = map[string]float64{}
				}
				deck.NodeICs[node] = val
			}
		case head == ".model":
			name, mdl, pol, err := parseModel(toks, ln.num)
			if err != nil {
				return nil, err
			}
			models[name] = modelEntry{mdl, pol}
		case strings.HasPrefix(head, "."):
			return nil, errAt(ln.num, "unsupported control card %q", toks[0])
		case head[0] == 'r':
			if err := parseRCL(deck.Circuit, toks, ln.num, 'r'); err != nil {
				return nil, err
			}
		case head[0] == 'c':
			if err := parseRCL(deck.Circuit, toks, ln.num, 'c'); err != nil {
				return nil, err
			}
		case head[0] == 'l':
			if err := parseRCL(deck.Circuit, toks, ln.num, 'l'); err != nil {
				return nil, err
			}
		case head[0] == 't':
			// Tname p1+ p1- p2+ p2- z0=<ohm> td=<s>
			if len(toks) < 7 {
				return nil, errAt(ln.num, "t-card needs: name p1+ p1- p2+ p2- z0=... td=...")
			}
			var z0, td float64
			var gotZ, gotT bool
			for _, tok := range toks[5:] {
				lt := strings.ToLower(tok)
				switch {
				case strings.HasPrefix(lt, "z0="):
					v, err := parseVal(lt[3:], ln.num, "z0")
					if err != nil {
						return nil, err
					}
					z0, gotZ = v, true
				case strings.HasPrefix(lt, "td="):
					v, err := parseVal(lt[3:], ln.num, "td")
					if err != nil {
						return nil, err
					}
					td, gotT = v, true
				default:
					return nil, errAt(ln.num, "unknown t-line parameter %q", tok)
				}
			}
			if !gotZ || !gotT {
				return nil, errAt(ln.num, "t-line needs both z0= and td=")
			}
			deck.Circuit.AddT(toks[0], toks[1], toks[2], toks[3], toks[4], z0, td)
		case head[0] == 'k':
			if len(toks) < 4 {
				return nil, errAt(ln.num, "k-card needs: name l1 l2 coefficient")
			}
			k, err := parseVal(toks[3], ln.num, "coupling coefficient")
			if err != nil {
				return nil, err
			}
			deck.Circuit.AddMutual(toks[0], toks[1], toks[2], k)
		case head[0] == 'v':
			if err := parseSourceCard(deck.Circuit, toks, ln.num, true); err != nil {
				return nil, err
			}
		case head[0] == 'i':
			if err := parseSourceCard(deck.Circuit, toks, ln.num, false); err != nil {
				return nil, err
			}
		case head[0] == 'm':
			// MOSFETs may reference models defined later; defer binding.
			fets = append(fets, pendingFET{ln, toks})
		default:
			return nil, errAt(ln.num, "unrecognized card %q", toks[0])
		}
	}
done:
	for _, f := range fets {
		if len(f.toks) < 6 {
			return nil, errAt(f.card.num, "mosfet needs: Mname d g s b model")
		}
		modelName := strings.ToLower(f.toks[5])
		entry, ok := models[modelName]
		if !ok {
			return nil, errAt(f.card.num, "undefined model %q", f.toks[5])
		}
		deck.Circuit.AddM(f.toks[0], f.toks[1], f.toks[2], f.toks[3], f.toks[4], entry.mdl, entry.pol)
	}
	if err := deck.Circuit.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return deck, nil
}

// isCard decides whether a deck's first line is already a card (headless
// deck) rather than the traditional title line. The heuristic demands the
// field in the value position actually parses, so prose titles that happen
// to start with an element letter stay titles.
func isCard(line string) bool {
	l := strings.ToLower(strings.TrimSpace(line))
	if l == "" {
		return false
	}
	if strings.HasPrefix(l, ".") {
		return true
	}
	toks := tokenize(l)
	if len(toks) < 4 {
		return false
	}
	parses := func(tok string) bool {
		_, err := units.Parse(tok)
		return err == nil
	}
	switch l[0] {
	case 'r', 'c', 'l', 'k':
		return parses(toks[3])
	case 'v', 'i':
		switch toks[3] {
		case "dc", "pwl", "pulse", "ramp":
			return true
		}
		return parses(toks[3])
	case 'm':
		return len(toks) >= 6
	case 't':
		for _, tok := range toks {
			if strings.HasPrefix(tok, "z0=") {
				return true
			}
		}
		return false
	}
	return false
}

func tokenize(line string) []string {
	var b strings.Builder
	for _, c := range line {
		switch c {
		case '(', ')', ',':
			b.WriteByte(' ')
		default:
			b.WriteRune(c)
		}
	}
	return strings.Fields(b.String())
}

func parseVal(tok string, line int, what string) (float64, error) {
	v, err := units.Parse(tok)
	if err != nil {
		return 0, errAt(line, "bad %s %q: %v", what, tok, err)
	}
	return v, nil
}

func parseRCL(c *Circuit, toks []string, line int, kind byte) error {
	if len(toks) < 4 {
		return errAt(line, "%c-card needs: name n1 n2 value", kind)
	}
	val, err := parseVal(toks[3], line, "value")
	if err != nil {
		return err
	}
	ic := 0.0
	hasIC := false
	for _, t := range toks[4:] {
		lt := strings.ToLower(t)
		if strings.HasPrefix(lt, "ic=") {
			ic, err = parseVal(lt[3:], line, "initial condition")
			if err != nil {
				return err
			}
			hasIC = true
		}
	}
	switch kind {
	case 'r':
		c.AddR(toks[0], toks[1], toks[2], val)
	case 'c':
		e := c.AddC(toks[0], toks[1], toks[2], val)
		if hasIC {
			e.IC = ic
		}
	case 'l':
		e := c.AddL(toks[0], toks[1], toks[2], val)
		if hasIC {
			e.IC = ic
		}
	}
	return nil
}

func parseSourceWave(toks []string, line int) (Source, error) {
	if len(toks) == 0 {
		return nil, errAt(line, "source needs a value or waveform")
	}
	kw := strings.ToLower(toks[0])
	rest := toks[1:]
	vals := func(n int, what string) ([]float64, error) {
		if len(rest) < n {
			return nil, errAt(line, "%s needs %d values, got %d", what, n, len(rest))
		}
		out := make([]float64, len(rest))
		for i, t := range rest {
			v, err := parseVal(t, line, what+" value")
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	switch kw {
	case "dc":
		vs, err := vals(1, "DC")
		if err != nil {
			return nil, err
		}
		return DC(vs[0]), nil
	case "pwl":
		vs, err := vals(2, "PWL")
		if err != nil {
			return nil, err
		}
		if len(vs)%2 != 0 {
			return nil, errAt(line, "PWL needs an even number of values")
		}
		ts := make([]float64, len(vs)/2)
		ys := make([]float64, len(vs)/2)
		for i := range ts {
			ts[i], ys[i] = vs[2*i], vs[2*i+1]
		}
		p, err := NewPWL(ts, ys)
		if err != nil {
			return nil, errAt(line, "%v", err)
		}
		return p, nil
	case "pulse":
		vs, err := vals(7, "PULSE")
		if err != nil {
			return nil, err
		}
		return Pulse{V1: vs[0], V2: vs[1], Delay: vs[2], Rise: vs[3], Fall: vs[4], Width: vs[5], Period: vs[6]}, nil
	case "ramp":
		vs, err := vals(4, "RAMP")
		if err != nil {
			return nil, err
		}
		return Ramp{V0: vs[0], V1: vs[1], Delay: vs[2], Rise: vs[3]}, nil
	default:
		v, err := parseVal(toks[0], line, "source value")
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	}
}

func parseSourceCard(c *Circuit, toks []string, line int, voltage bool) error {
	if len(toks) < 4 {
		return errAt(line, "source needs: name n+ n- value/waveform")
	}
	wave, err := parseSourceWave(toks[3:], line)
	if err != nil {
		return err
	}
	if voltage {
		c.AddV(toks[0], toks[1], toks[2], wave)
	} else {
		c.AddI(toks[0], toks[1], toks[2], wave)
	}
	return nil
}

func parseTran(toks []string, line int) (*TranSpec, error) {
	if len(toks) < 3 {
		return nil, errAt(line, ".TRAN needs: step stop [start] [UIC]")
	}
	spec := &TranSpec{}
	var err error
	if spec.Step, err = parseVal(toks[1], line, "tran step"); err != nil {
		return nil, err
	}
	if spec.Stop, err = parseVal(toks[2], line, "tran stop"); err != nil {
		return nil, err
	}
	for _, t := range toks[3:] {
		if strings.EqualFold(t, "uic") {
			spec.UseIC = true
			continue
		}
		if spec.Start == 0 {
			if spec.Start, err = parseVal(t, line, "tran start"); err != nil {
				return nil, err
			}
		}
	}
	if spec.Step <= 0 || spec.Stop <= spec.Start {
		return nil, errAt(line, ".TRAN times out of order (step %g, stop %g, start %g)", spec.Step, spec.Stop, spec.Start)
	}
	return spec, nil
}

func parseDC(toks []string, line int) (*DCSpec, error) {
	if len(toks) != 5 {
		return nil, errAt(line, ".DC needs: source from to step")
	}
	spec := &DCSpec{Source: toks[1]}
	var err error
	if spec.From, err = parseVal(toks[2], line, "dc from"); err != nil {
		return nil, err
	}
	if spec.To, err = parseVal(toks[3], line, "dc to"); err != nil {
		return nil, err
	}
	if spec.Step, err = parseVal(toks[4], line, "dc step"); err != nil {
		return nil, err
	}
	if spec.Step <= 0 || spec.To < spec.From {
		return nil, errAt(line, ".DC range out of order")
	}
	return spec, nil
}

func parseModel(toks []string, line int) (string, device.Model, Polarity, error) {
	if len(toks) < 3 {
		return "", nil, NChannel, errAt(line, ".MODEL needs: name NMOS|PMOS (params)")
	}
	name := strings.ToLower(toks[1])
	kind := strings.ToLower(toks[2])
	if kind != "nmos" && kind != "pmos" {
		return "", nil, NChannel, errAt(line, "model type %q not supported (NMOS/PMOS)", toks[2])
	}
	params := map[string]float64{}
	for _, t := range toks[3:] {
		eq := strings.IndexByte(t, '=')
		if eq <= 0 {
			return "", nil, NChannel, errAt(line, "model parameter %q must be key=value", t)
		}
		v, err := parseVal(t[eq+1:], line, "model parameter "+t[:eq])
		if err != nil {
			return "", nil, NChannel, err
		}
		params[strings.ToLower(t[:eq])] = v
	}
	get := func(key string, def float64) float64 {
		if v, ok := params[key]; ok {
			return v
		}
		return def
	}
	level := int(get("level", 3))
	var mdl device.Model
	switch level {
	case 1:
		mdl = &device.SquareLaw{
			ModelName: name,
			Kp:        get("kp", 1e-3),
			Vt0:       get("vt0", 0.5),
			Gamma:     get("gamma", 0),
			Phi:       get("phi", 0.8),
			Lambda:    get("lambda", 0),
		}
	case 2:
		mdl = &device.AlphaPower{
			ModelName: name,
			B:         get("b", 1e-3),
			Vt0:       get("vt0", 0.5),
			Alpha:     get("alpha", 1.3),
			Kv:        get("kv", 0.6),
			Gamma:     get("gamma", 0),
			Phi:       get("phi", 0.8),
			Lambda:    get("lambda", 0),
		}
	case 3:
		mdl = &device.Reference{
			ModelName: name,
			B:         get("b", 1e-3),
			Vt0:       get("vt0", 0.5),
			Alpha:     get("alpha", 1.3),
			Kv:        get("kv", 0.6),
			Gamma:     get("gamma", 0.4),
			Phi:       get("phi", 0.8),
			Lambda:    get("lambda", 0.05),
			SubSlope:  get("subslope", 0.045),
		}
	case 4:
		mdl = &device.ASDMDevice{
			ModelName: name,
			M: device.ASDM{
				K:  get("k", 1e-3),
				V0: get("v0", 0.5),
				A:  get("a", 1.3),
			},
		}
	default:
		return "", nil, NChannel, errAt(line, "unsupported model LEVEL=%d (1=square-law, 2=alpha-power, 3=reference, 4=asdm)", level)
	}
	pol := NChannel
	if kind == "pmos" {
		pol = PChannel
	}
	return name, mdl, pol, nil
}
