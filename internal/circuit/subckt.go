package circuit

import (
	"fmt"
	"strings"
)

// Subcircuit support: the parser collects .SUBCKT/.ENDS blocks and flattens
// every X-instantiation into renamed element cards before the regular
// per-card processing. Instance element and internal node names get the
// ".<xname>" suffix (keeping the SPICE type letter first); the declared
// ports bind positionally to the instantiation's nodes; ground ("0"/"gnd")
// stays global; .MODEL cards stay global (declare them outside the
// subcircuit).

type subcktDef struct {
	name  string
	ports []string
	body  []rawLine
	line  int
}

// rawLine mirrors the parser's internal line representation.
type rawLine struct {
	text string
	num  int
}

const maxSubcktDepth = 10

// extractSubckts splits subcircuit definitions from the main card list.
func extractSubckts(lines []rawLine) (main []rawLine, defs map[string]*subcktDef, err error) {
	defs = map[string]*subcktDef{}
	var cur *subcktDef
	for _, ln := range lines {
		head := strings.ToLower(strings.Fields(ln.text)[0])
		switch head {
		case ".subckt":
			if cur != nil {
				return nil, nil, errAt(ln.num, "nested .SUBCKT definitions are not supported")
			}
			toks := strings.Fields(strings.ToLower(ln.text))
			if len(toks) < 3 {
				return nil, nil, errAt(ln.num, ".SUBCKT needs: name port1 [port2 ...]")
			}
			name := toks[1]
			if _, dup := defs[name]; dup {
				return nil, nil, errAt(ln.num, "duplicate subcircuit %q", name)
			}
			cur = &subcktDef{name: name, ports: toks[2:], line: ln.num}
		case ".ends":
			if cur == nil {
				return nil, nil, errAt(ln.num, ".ENDS without .SUBCKT")
			}
			defs[cur.name] = cur
			cur = nil
		default:
			if cur != nil {
				if strings.HasPrefix(head, ".") && head != ".model" {
					return nil, nil, errAt(ln.num, "control card %q not allowed inside .SUBCKT", head)
				}
				if head == ".model" {
					return nil, nil, errAt(ln.num, "declare .MODEL cards outside the .SUBCKT (models are global)")
				}
				cur.body = append(cur.body, ln)
			} else {
				main = append(main, ln)
			}
		}
	}
	if cur != nil {
		return nil, nil, errAt(cur.line, ".SUBCKT %q missing .ENDS", cur.name)
	}
	return main, defs, nil
}

// expandSubckts flattens every X card (recursively) using the definitions.
func expandSubckts(lines []rawLine, defs map[string]*subcktDef) ([]rawLine, error) {
	return expand(lines, defs, 0)
}

func expand(lines []rawLine, defs map[string]*subcktDef, depth int) ([]rawLine, error) {
	if depth > maxSubcktDepth {
		return nil, fmt.Errorf("netlist: subcircuit nesting deeper than %d (cycle?)", maxSubcktDepth)
	}
	var out []rawLine
	for _, ln := range lines {
		toks := tokenize(strings.ToLower(ln.text))
		if len(toks) == 0 || toks[0][0] != 'x' {
			out = append(out, ln)
			continue
		}
		if len(toks) < 3 {
			return nil, errAt(ln.num, "x-card needs: name node... subcktname")
		}
		inst := toks[0]
		subName := toks[len(toks)-1]
		nodes := toks[1 : len(toks)-1]
		def, ok := defs[subName]
		if !ok {
			return nil, errAt(ln.num, "undefined subcircuit %q", subName)
		}
		if len(nodes) != len(def.ports) {
			return nil, errAt(ln.num, "subcircuit %q wants %d ports, got %d", subName, len(def.ports), len(nodes))
		}
		binding := map[string]string{}
		for i, p := range def.ports {
			binding[p] = nodes[i]
		}
		flat, err := instantiate(def, inst, binding, ln.num)
		if err != nil {
			return nil, err
		}
		// The body may itself contain X cards.
		flat, err = expand(flat, defs, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, flat...)
	}
	return out, nil
}

// instantiate rewrites one definition body for an instance.
func instantiate(def *subcktDef, inst string, binding map[string]string, atLine int) ([]rawLine, error) {
	mapNode := func(n string) string {
		if b, ok := binding[n]; ok {
			return b
		}
		if n == "0" || n == "gnd" {
			return n
		}
		return n + "." + inst
	}
	var out []rawLine
	for _, ln := range def.body {
		toks := tokenize(strings.ToLower(ln.text))
		if len(toks) == 0 {
			continue
		}
		kind := toks[0][0]
		renamed := make([]string, len(toks))
		copy(renamed, toks)
		renamed[0] = toks[0] + "." + inst
		switch kind {
		case 'r', 'c', 'l', 'v', 'i':
			if len(toks) < 4 {
				return nil, errAt(ln.num, "short card inside subcircuit %q", def.name)
			}
			renamed[1] = mapNode(toks[1])
			renamed[2] = mapNode(toks[2])
		case 'm':
			if len(toks) < 6 {
				return nil, errAt(ln.num, "short mosfet inside subcircuit %q", def.name)
			}
			for i := 1; i <= 4; i++ {
				renamed[i] = mapNode(toks[i])
			}
		case 't':
			if len(toks) < 7 {
				return nil, errAt(ln.num, "short t-line inside subcircuit %q", def.name)
			}
			for i := 1; i <= 4; i++ {
				renamed[i] = mapNode(toks[i])
			}
		case 'k':
			if len(toks) < 4 {
				return nil, errAt(ln.num, "short k-card inside subcircuit %q", def.name)
			}
			// Coupled inductors must both live in this subcircuit.
			renamed[1] = toks[1] + "." + inst
			renamed[2] = toks[2] + "." + inst
		case 'x':
			if len(toks) < 3 {
				return nil, errAt(ln.num, "short x-card inside subcircuit %q", def.name)
			}
			for i := 1; i < len(toks)-1; i++ {
				renamed[i] = mapNode(toks[i])
			}
		default:
			return nil, errAt(ln.num, "unsupported card %q inside subcircuit %q", toks[0], def.name)
		}
		// Reconstruct source-card parentheses lost to tokenize: the source
		// keywords re-parse identically from space-separated values, so a
		// plain join suffices.
		out = append(out, rawLine{text: strings.Join(renamed, " "), num: ln.num})
	}
	return out, nil
}
