package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
)

// Fig3Result reproduces the paper's Fig. 3: maximum SSN voltage versus the
// number of simultaneously switching drivers, comparing transistor-level
// simulation against this work's closed form (Eq. 7) and the prior-art
// estimates (Vemuru'96-style and Song'99-style reconstructions). The ground
// net is inductance-only, as in the models being compared.
type Fig3Result struct {
	Process device.Process
	N       []int
	Sim     []float64
	ThisWrk []float64
	Vemuru  []float64
	Song    []float64

	// mean absolute relative error of each model against simulation
	ErrThisWork, ErrVemuru, ErrSong float64
}

// Fig3 runs the driver-count sweep.
func Fig3(ctx Context) (*Fig3Result, error) {
	c := ctx.withDefaults()
	cfg := c.scenario()
	cfg.Ground.C = 0 // L-only comparison, as in the paper's Sec. 3
	asdm, err := cfg.Process.ExtractASDM()
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	b, vt, alpha, _, err := device.ExtractAlphaPowerSat(cfg.Process.Driver(1), cfg.Process.Vdd)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	ap := ssn.AlphaParams{B: b, Vt: vt, Alpha: alpha}

	counts := []int{4, 6, 8, 10, 12, 16, 20, 24, 28, 32}
	step := 0.0
	if c.Fast {
		counts = []int{4, 8, 16, 32}
		step = cfg.Rise / 150
	}
	res := &Fig3Result{Process: cfg.Process, N: counts}
	type point struct {
		sim, thisWrk, vemuru, song float64
	}
	pts, err := parMap(c.Workers, counts, func(_ int, n int) (point, error) {
		sc := cfg
		sc.N = n
		sim, err := driver.Simulate(sc, c.SimOpts, step, 0)
		if err != nil {
			return point{}, fmt.Errorf("fig3: N=%d: %w", n, err)
		}
		pt := point{sim: sim.MaxSSNWithinRamp()}

		p := ssnParams(sc, asdm)
		lm, err := ssn.NewLModel(p)
		if err != nil {
			return point{}, fmt.Errorf("fig3: %w", err)
		}
		pt.thisWrk = lm.VMax()

		in := ssn.BaselineInput{N: n, L: sc.Ground.L, Vdd: sc.Process.Vdd, Slope: sc.Slope()}
		pt.vemuru, err = ssn.VemuruMax(in, ap)
		if err != nil {
			return point{}, fmt.Errorf("fig3: vemuru: %w", err)
		}
		pt.song, err = ssn.SongMax(in, ap)
		if err != nil {
			return point{}, fmt.Errorf("fig3: song: %w", err)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range pts {
		res.Sim = append(res.Sim, pt.sim)
		res.ThisWrk = append(res.ThisWrk, pt.thisWrk)
		res.Vemuru = append(res.Vemuru, pt.vemuru)
		res.Song = append(res.Song, pt.song)
	}
	res.ErrThisWork = meanRelErr(res.ThisWrk, res.Sim)
	res.ErrVemuru = meanRelErr(res.Vemuru, res.Sim)
	res.ErrSong = meanRelErr(res.Song, res.Sim)
	return res, nil
}

func meanRelErr(pred, ref []float64) float64 {
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i]-ref[i]) / math.Abs(ref[i])
	}
	return sum / float64(len(pred))
}

func (r *Fig3Result) xs() []float64 {
	out := make([]float64, len(r.N))
	for i, n := range r.N {
		out[i] = float64(n)
	}
	return out
}

// Render implements Result.
func (r *Fig3Result) Render() string {
	head := fmt.Sprintf(
		"Fig. 3 — max SSN vs number of switching drivers (%s, L-only)\n"+
			"mean |rel err| vs simulation: this work %s, Vemuru-style %s, Song-style %s\n",
		r.Process.Name, fmtPct(r.ErrThisWork), fmtPct(r.ErrVemuru), fmtPct(r.ErrSong))
	plot := textplot.Plot("", []textplot.Series{
		{Name: "sim", X: r.xs(), Y: r.Sim, Marker: '.'},
		{Name: "this work", X: r.xs(), Y: r.ThisWrk, Marker: '*'},
		{Name: "vemuru", X: r.xs(), Y: r.Vemuru, Marker: 'v'},
		{Name: "song", X: r.xs(), Y: r.Song, Marker: 's'},
	}, 72, 18)
	rows := [][]string{{"N", "sim (V)", "this work (V)", "vemuru (V)", "song (V)"}}
	for i, n := range r.N {
		rows = append(rows, []string{
			strconv.Itoa(n),
			fmt.Sprintf("%.4f", r.Sim[i]),
			fmt.Sprintf("%.4f", r.ThisWrk[i]),
			fmt.Sprintf("%.4f", r.Vemuru[i]),
			fmt.Sprintf("%.4f", r.Song[i]),
		})
	}
	return head + plot + textplot.Table(rows)
}

// WriteCSV implements Result.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "sim", "this_work", "vemuru", "song"}); err != nil {
		return err
	}
	for i, n := range r.N {
		err := cw.Write([]string{
			strconv.Itoa(n),
			strconv.FormatFloat(r.Sim[i], 'g', 8, 64),
			strconv.FormatFloat(r.ThisWrk[i], 'g', 8, 64),
			strconv.FormatFloat(r.Vemuru[i], 'g', 8, 64),
			strconv.FormatFloat(r.Song[i], 'g', 8, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *Fig3Result) Records() []Record {
	return []Record{
		{
			ID:    "fig3.ranking",
			Claim: "the new model is the most accurate across driver counts",
			Measured: fmt.Sprintf("mean |rel err|: this work %s vs vemuru %s, song %s",
				fmtPct(r.ErrThisWork), fmtPct(r.ErrVemuru), fmtPct(r.ErrSong)),
			Pass: r.ErrThisWork < r.ErrVemuru && r.ErrThisWork < r.ErrSong,
		},
		{
			ID:       "fig3.accuracy",
			Claim:    "this work stays close to simulation over the whole sweep",
			Measured: fmt.Sprintf("mean |rel err| %s", fmtPct(r.ErrThisWork)),
			Pass:     r.ErrThisWork < 0.10,
		},
	}
}
