// Package experiments contains one reproduction harness per evaluation
// artifact of the paper (Figs. 1-4 and Table 1) plus the ablations listed
// in DESIGN.md. Each harness returns a structured result that can render an
// ASCII figure (textplot), export CSV, and report paper-claim-vs-measured
// records for EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
	"ssnkit/internal/ssn"
)

// Context carries the shared configuration of a reproduction run.
type Context struct {
	Process device.Process // defaults to C018
	SimOpts spice.Options
	// Fast shrinks grids and simulation resolution for CI; headline
	// comparisons still hold, error bands are evaluated more coarsely.
	Fast bool
	// Workers bounds the worker pool the sweep harnesses fan their
	// simulation points out on: <= 0 uses GOMAXPROCS, 1 forces the serial
	// order. Results are collected in input order either way, so the
	// emitted artifacts are identical for any worker count.
	Workers int
}

func (c Context) withDefaults() Context {
	if c.Process.Name == "" {
		c.Process = device.C018
	}
	return c
}

// Record is one paper-vs-measured line for EXPERIMENTS.md.
type Record struct {
	ID       string // experiment id, e.g. "fig3"
	Claim    string // what the paper reports
	Measured string // what this reproduction measures
	Pass     bool   // does the shape/band hold
}

// FormatRecords renders records as a markdown table.
func FormatRecords(records []Record) string {
	var b strings.Builder
	b.WriteString("| Experiment | Paper claim | Measured | Holds |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, r := range records {
		status := "yes"
		if !r.Pass {
			status = "NO"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", r.ID, r.Claim, r.Measured, status)
	}
	return b.String()
}

// Result is the interface every experiment harness satisfies.
type Result interface {
	// Render returns a human-readable terminal rendition of the artifact.
	Render() string
	// WriteCSV exports the underlying data series.
	WriteCSV(w io.Writer) error
	// Records reports paper-vs-measured outcomes.
	Records() []Record
}

// scenario is the canonical driver-array setup shared by Figs. 2-4: a
// 0.18 µm-class process in a PGA package, 16 simultaneously switching
// drivers with 20 pF loads and a 1 ns input edge.
func (c Context) scenario() driver.ArrayConfig {
	return driver.ArrayConfig{
		Process: c.Process,
		N:       16,
		Load:    20e-12,
		Ground:  pkgmodel.PGA.Ground(1),
		Rise:    1e-9,
		Merged:  true,
	}
}

// ssnParams assembles the closed-form parameters matching an array config.
func ssnParams(cfg driver.ArrayConfig, asdm device.ASDM) ssn.Params {
	return ssn.Params{
		N:     cfg.N,
		Dev:   asdm,
		Vdd:   cfg.Process.Vdd,
		Slope: cfg.Slope(),
		L:     cfg.Ground.L,
		C:     cfg.Ground.C,
	}
}

func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
