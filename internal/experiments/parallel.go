package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parMap evaluates fn over items on a bounded worker pool and collects the
// results in input order, so a parallel sweep emits byte-identical artifacts
// to the serial loop it replaces. workers <= 0 means GOMAXPROCS. Every item
// runs even when an earlier one fails; the error reported is the one with the
// lowest index, which keeps failures deterministic under any schedule.
//
// Each fn call must be self-contained (the experiment points build their own
// circuit and engine), sharing only read-only inputs.
func parMap[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]R, n)
	if workers == 1 {
		for i, item := range items {
			r, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
