package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
)

// CrossProcessResult validates the paper's closing remark on Fig. 3 —
// "Similar results are also observed using 0.25 µm and 0.35 µm processes" —
// by running a compact driver-count sweep on every process kit and
// reporting the closed form's error against simulation per kit.
type CrossProcessResult struct {
	Kits   []string
	N      []int
	Sim    map[string][]float64
	Model  map[string][]float64
	MeanEr map[string]float64
}

// CrossProcess runs the sweep on all process kits.
func CrossProcess(ctx Context) (*CrossProcessResult, error) {
	c := ctx.withDefaults()
	counts := []int{4, 8, 16, 32}
	if c.Fast {
		counts = []int{8, 32}
	}
	res := &CrossProcessResult{
		N:      counts,
		Sim:    map[string][]float64{},
		Model:  map[string][]float64{},
		MeanEr: map[string]float64{},
	}
	for _, proc := range device.Processes() {
		res.Kits = append(res.Kits, proc.Name)
		asdm, err := proc.ExtractASDM()
		if err != nil {
			return nil, fmt.Errorf("cross-process %s: %w", proc.Name, err)
		}
		cfg := c.scenario()
		cfg.Process = proc
		cfg.Ground.C = 0
		step := 0.0
		if c.Fast {
			step = cfg.Rise / 150
		}
		for _, n := range counts {
			sc := cfg
			sc.N = n
			sim, err := driver.Simulate(sc, c.SimOpts, step, 0)
			if err != nil {
				return nil, fmt.Errorf("cross-process %s N=%d: %w", proc.Name, n, err)
			}
			p := ssnParams(sc, asdm)
			lm, err := ssn.NewLModel(p)
			if err != nil {
				return nil, err
			}
			res.Sim[proc.Name] = append(res.Sim[proc.Name], sim.MaxSSNWithinRamp())
			res.Model[proc.Name] = append(res.Model[proc.Name], lm.VMax())
		}
		res.MeanEr[proc.Name] = meanRelErr(res.Model[proc.Name], res.Sim[proc.Name])
	}
	return res, nil
}

// Render implements Result.
func (r *CrossProcessResult) Render() string {
	out := "Extension — cross-process validation (paper: 'similar results on 0.25/0.35 um')\n"
	rows := [][]string{{"process", "mean |rel err|"}}
	for _, kit := range r.Kits {
		rows = append(rows, []string{kit, fmtPct(r.MeanEr[kit])})
	}
	out += textplot.Table(rows)
	for _, kit := range r.Kits {
		sub := [][]string{{"N", "sim (V)", "model (V)"}}
		for i, n := range r.N {
			sub = append(sub, []string{
				strconv.Itoa(n),
				fmt.Sprintf("%.4f", r.Sim[kit][i]),
				fmt.Sprintf("%.4f", r.Model[kit][i]),
			})
		}
		out += kit + ":\n" + textplot.Table(sub)
	}
	return out
}

// WriteCSV implements Result.
func (r *CrossProcessResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"process", "n", "sim", "model"}); err != nil {
		return err
	}
	for _, kit := range r.Kits {
		for i, n := range r.N {
			err := cw.Write([]string{
				kit,
				strconv.Itoa(n),
				strconv.FormatFloat(r.Sim[kit][i], 'g', 8, 64),
				strconv.FormatFloat(r.Model[kit][i], 'g', 8, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *CrossProcessResult) Records() []Record {
	worst := 0.0
	detail := ""
	for _, kit := range r.Kits {
		worst = math.Max(worst, r.MeanEr[kit])
		detail += fmt.Sprintf("%s %s; ", kit, fmtPct(r.MeanEr[kit]))
	}
	return []Record{{
		ID:       "ext-process",
		Claim:    "similar accuracy on the 0.25 um and 0.35 um class processes",
		Measured: detail,
		Pass:     worst < 0.12 && len(r.Kits) == 3,
	}}
}

// RailResult validates the paper's symmetry remark — "The SSN at the
// power-supply node can be analyzed similarly" — by driving PMOS pull-up
// arrays and comparing the rail droop against the same closed forms fed
// with the pull-up-extracted ASDM.
type RailResult struct {
	N     []int
	Sim   []float64
	Model []float64
	Case  []ssn.Case
	Mean  float64
}

// Rail runs the power-droop sweep.
func Rail(ctx Context) (*RailResult, error) {
	c := ctx.withDefaults()
	asdm, err := c.Process.ExtractASDMPullUp()
	if err != nil {
		return nil, fmt.Errorf("rail: %w", err)
	}
	counts := []int{8, 16, 32}
	if c.Fast {
		counts = []int{8, 32}
	}
	cfg := c.scenario()
	cfg.Pull = driver.PullUp
	step := 0.0
	if c.Fast {
		step = cfg.Rise / 150
	}
	res := &RailResult{N: counts}
	for _, n := range counts {
		sc := cfg
		sc.N = n
		sim, err := driver.Simulate(sc, c.SimOpts, step, 0)
		if err != nil {
			return nil, fmt.Errorf("rail: N=%d: %w", n, err)
		}
		p := ssnParams(sc, asdm)
		m, err := ssn.NewLCModel(p)
		if err != nil {
			return nil, err
		}
		simMax := sim.MaxSSN
		if m.Case() != ssn.UnderDampedPeak {
			simMax = sim.MaxSSNWithinRamp()
		}
		res.Sim = append(res.Sim, simMax)
		res.Model = append(res.Model, m.VMax())
		res.Case = append(res.Case, m.Case())
	}
	res.Mean = meanRelErr(res.Model, res.Sim)
	return res, nil
}

// Render implements Result.
func (r *RailResult) Render() string {
	head := fmt.Sprintf("Extension — power-rail droop via mirrored ASDM (mean |rel err| %s)\n", fmtPct(r.Mean))
	rows := [][]string{{"N", "case", "sim droop (V)", "model (V)"}}
	for i, n := range r.N {
		rows = append(rows, []string{
			strconv.Itoa(n),
			r.Case[i].String(),
			fmt.Sprintf("%.4f", r.Sim[i]),
			fmt.Sprintf("%.4f", r.Model[i]),
		})
	}
	return head + textplot.Table(rows)
}

// WriteCSV implements Result.
func (r *RailResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "case", "sim", "model"}); err != nil {
		return err
	}
	for i, n := range r.N {
		err := cw.Write([]string{
			strconv.Itoa(n),
			r.Case[i].String(),
			strconv.FormatFloat(r.Sim[i], 'g', 8, 64),
			strconv.FormatFloat(r.Model[i], 'g', 8, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *RailResult) Records() []Record {
	return []Record{{
		ID:       "ext-rail",
		Claim:    "the power-supply-node SSN can be analyzed with the same formulas",
		Measured: fmt.Sprintf("pull-up droop mean |rel err| %s over N sweep", fmtPct(r.Mean)),
		Pass:     r.Mean < 0.12,
	}}
}
