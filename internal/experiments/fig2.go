package experiments

import (
	"fmt"
	"io"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
	"ssnkit/internal/waveform"
)

// Fig2Result reproduces the paper's Fig. 2: (a) the simulated input, output
// and ground-bounce waveforms of the canonical driver array; (b) the SSN
// voltage, simulation vs the L-only closed form (Eq. 6); (c) the ground
// inductor current, simulation vs Eq. (8).
type Fig2Result struct {
	Config driver.ArrayConfig
	ASDM   device.ASDM

	Vin, Vout  *waveform.Waveform // simulated stimulus and a driver output
	SimSSN     *waveform.Waveform
	ModelSSN   *waveform.Waveform
	SimI       *waveform.Waveform
	ModelI     *waveform.Waveform
	SSNStats   waveform.CompareStats // model vs sim over the ramp window
	CurStats   waveform.CompareStats
	SimMax     float64
	ModelMax   float64
	PeakRelErr float64
}

// Fig2 runs the waveform experiment. The scenario keeps the pad capacitance
// (1 pF, over-damped) in the simulation — the paper's point is that the
// L-only formula is adequate there.
func Fig2(ctx Context) (*Fig2Result, error) {
	c := ctx.withDefaults()
	cfg := c.scenario()
	// Keep one driver un-merged so a real output waveform exists to plot.
	cfg.Merged = false
	if c.Fast {
		cfg.N = 8
	}
	asdm, err := cfg.Process.ExtractASDM()
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	step := 0.0
	if c.Fast {
		step = cfg.Rise / 150
	}
	res, err := driver.Simulate(cfg, c.SimOpts, step, 0)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	p := ssnParams(res.Config, asdm)
	lm, err := ssn.NewLModel(p)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	mv, mi, err := lm.Waveforms(res.Config.Delay, 600)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}

	out := &Fig2Result{Config: res.Config, ASDM: asdm}
	out.Vin = res.Set.Get("v(g1)")
	out.Vout = res.Set.Get("v(out1)")
	out.SimSSN = res.SSN
	out.ModelSSN = mv
	out.SimI = res.Current
	out.ModelI = mi
	out.SimMax = res.MaxSSNWithinRamp()
	out.ModelMax = lm.VMax()
	out.PeakRelErr = rel(out.ModelMax, out.SimMax)

	// Compare over the model's validity window only (turn-on to ramp end).
	t0 := res.Config.Delay + p.TurnOnDelay()
	t1 := res.Config.Delay + p.TurnOnDelay() + p.TauRise()
	simWin, err := res.SSN.Window(t0, t1)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	if out.SSNStats, err = mv.Compare(simWin, 300); err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	simIWin, err := res.Current.Window(t0, t1)
	if err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	if out.CurStats, err = mi.Compare(simIWin, 300); err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	return out, nil
}

func rel(a, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	d := a - ref
	if d < 0 {
		d = -d
	}
	if ref < 0 {
		ref = -ref
	}
	return d / ref
}

// Render implements Result.
func (r *Fig2Result) Render() string {
	head := fmt.Sprintf(
		"Fig. 2 — waveforms, N=%d, L=%.3g H, C=%.3g F, tr=%.3g s (%s)\n"+
			"model %s\n"+
			"peak SSN: sim %.4f V, model %.4f V (rel err %s)\n"+
			"SSN waveform err (vs sim, peak-normalized): max %s   current err: max %s\n",
		r.Config.N, r.Config.Ground.L, r.Config.Ground.C, r.Config.Rise, r.Config.Process.Name,
		r.ASDM, r.SimMax, r.ModelMax, fmtPct(r.PeakRelErr),
		fmtPct(r.SSNStats.MaxRelErr), fmtPct(r.CurStats.MaxRelErr))

	a := textplot.Plot("(a) simulated waveforms", []textplot.Series{
		{Name: "v(in)", X: r.Vin.Times, Y: r.Vin.Values, Marker: '.'},
		{Name: "v(out)", X: r.Vout.Times, Y: r.Vout.Values, Marker: 'o'},
		{Name: "ssn", X: r.SimSSN.Times, Y: r.SimSSN.Values, Marker: '*'},
	}, 72, 16)
	b := textplot.Plot("(b) SSN voltage: sim vs Eq. (6)", []textplot.Series{
		{Name: "sim", X: r.SimSSN.Times, Y: r.SimSSN.Values, Marker: '.'},
		{Name: "model", X: r.ModelSSN.Times, Y: r.ModelSSN.Values, Marker: '*'},
	}, 72, 14)
	c := textplot.Plot("(c) inductor current: sim vs Eq. (8)", []textplot.Series{
		{Name: "sim", X: r.SimI.Times, Y: r.SimI.Values, Marker: '.'},
		{Name: "model", X: r.ModelI.Times, Y: r.ModelI.Values, Marker: '*'},
	}, 72, 14)
	return head + a + b + c
}

// WriteCSV implements Result.
func (r *Fig2Result) WriteCSV(w io.Writer) error {
	set := waveform.Set{}
	set.Add(r.SimSSN)
	set.Add(r.ModelSSN)
	set.Add(r.SimI)
	set.Add(r.ModelI)
	set.Add(r.Vin)
	set.Add(r.Vout)
	return set.WriteCSV(w)
}

// Records implements Result.
func (r *Fig2Result) Records() []Record {
	return []Record{
		{
			ID:       "fig2.ssn",
			Claim:    "Eq. (6) SSN waveform matches simulation closely over the ramp",
			Measured: fmt.Sprintf("max deviation %s of the simulated peak", fmtPct(r.SSNStats.MaxRelErr)),
			Pass:     r.SSNStats.MaxRelErr < 0.12,
		},
		{
			ID:       "fig2.current",
			Claim:    "Eq. (8) inductor current matches simulation closely over the ramp",
			Measured: fmt.Sprintf("max deviation %s of the simulated peak", fmtPct(r.CurStats.MaxRelErr)),
			Pass:     r.CurStats.MaxRelErr < 0.12,
		},
		{
			ID:       "fig2.peak",
			Claim:    "peak SSN predicted accurately in the over-damped typical case",
			Measured: fmt.Sprintf("sim %.4f V vs model %.4f V (%s)", r.SimMax, r.ModelMax, fmtPct(r.PeakRelErr)),
			Pass:     r.PeakRelErr < 0.10,
		},
	}
}
