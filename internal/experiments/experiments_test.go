package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func fastCtx() Context { return Context{Fast: true} }

func checkResult(t *testing.T, name string, r Result) {
	t.Helper()
	rendered := r.Render()
	if len(rendered) < 50 {
		t.Errorf("%s: rendition suspiciously short: %q", name, rendered)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("%s: csv: %v", name, err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 2 {
		t.Errorf("%s: csv has only %d lines", name, lines)
	}
	recs := r.Records()
	if len(recs) == 0 {
		t.Fatalf("%s: no records", name)
	}
	for _, rec := range recs {
		if rec.ID == "" || rec.Claim == "" || rec.Measured == "" {
			t.Errorf("%s: incomplete record %+v", name, rec)
		}
		if !rec.Pass {
			t.Errorf("%s: record %s does not hold: claim %q, measured %q",
				name, rec.ID, rec.Claim, rec.Measured)
		}
	}
}

func TestFig1(t *testing.T) {
	r, err := Fig1(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig1", r)
	if len(r.VS) != 5 {
		t.Errorf("Fig1 curves = %d, want 5", len(r.VS))
	}
	// Golden currents must be monotone in Vg for each Vs.
	for i := range r.VS {
		for j := 1; j < len(r.VG); j++ {
			if r.Golden[i][j] < r.Golden[i][j-1]-1e-12 {
				t.Fatalf("golden IV not monotone at vs=%g", r.VS[i])
			}
		}
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig2", r)
	if r.SimMax <= 0 || r.ModelMax <= 0 {
		t.Error("missing peak values")
	}
	if r.Vin == nil || r.Vout == nil {
		t.Error("missing stimulus/output waveforms")
	}
}

func TestFig3(t *testing.T) {
	r, err := Fig3(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig3", r)
	// Simulated SSN grows with N.
	for i := 1; i < len(r.Sim); i++ {
		if r.Sim[i] <= r.Sim[i-1] {
			t.Errorf("sim SSN not increasing at N=%d", r.N[i])
		}
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "fig4", r)
	if len(r.Cases) != 2 {
		t.Fatalf("Fig4 cases = %d, want 2", len(r.Cases))
	}
	// The doubled-pads case has half the inductance.
	if r.Cases[1].L >= r.Cases[0].L {
		t.Error("2x pads case must have lower inductance")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "table1", r)
	if len(r.Rows) != 4 {
		t.Fatalf("Table1 rows = %d, want 4", len(r.Rows))
	}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		seen[row.GotCase.String()] = true
	}
	if len(seen) != 4 {
		t.Errorf("expected all four distinct cases, got %v", seen)
	}
}

func TestAblationDeviceModel(t *testing.T) {
	r, err := AblationDeviceModel(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ablation-a", r)
}

func TestCrossProcess(t *testing.T) {
	r, err := CrossProcess(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ext-process", r)
	if len(r.Kits) != 3 {
		t.Errorf("kits = %v, want all 3", r.Kits)
	}
}

func TestRail(t *testing.T) {
	r, err := Rail(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ext-rail", r)
	// Droop grows with N.
	for i := 1; i < len(r.Sim); i++ {
		if r.Sim[i] <= r.Sim[i-1] {
			t.Errorf("droop not increasing at N=%d", r.N[i])
		}
	}
}

func TestFormatRecords(t *testing.T) {
	out := FormatRecords([]Record{
		{ID: "x", Claim: "c", Measured: "m", Pass: true},
		{ID: "y", Claim: "c2", Measured: "m2", Pass: false},
	})
	if !strings.Contains(out, "| x |") || !strings.Contains(out, "NO") {
		t.Errorf("records table: %s", out)
	}
}

func TestDelay(t *testing.T) {
	r, err := Delay(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ext-delay", r)
	// The real-net crossing is always later than the ideal-net crossing.
	for i := range r.N {
		if r.T50Real[i] <= r.T50Idea[i] {
			t.Errorf("N=%d: real t50 %g not after ideal %g", r.N[i], r.T50Real[i], r.T50Idea[i])
		}
	}
}

func TestResonance(t *testing.T) {
	r, err := Resonance(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "ext-resonance", r)
	if r.RingPeriod <= 0 {
		t.Error("missing ringing period")
	}
}

func TestSVGRenditions(t *testing.T) {
	// Every Plotter-implementing result must emit a well-formed-looking
	// SVG with at least one curve.
	ctx := fastCtx()
	results := []struct {
		name string
		run  func() (Result, error)
	}{
		{"fig1", func() (Result, error) { return Fig1(ctx) }},
		{"fig2", func() (Result, error) { return Fig2(ctx) }},
		{"fig3", func() (Result, error) { return Fig3(ctx) }},
		{"fig4", func() (Result, error) { return Fig4(ctx) }},
		{"ablation-a", func() (Result, error) { return AblationDeviceModel(ctx) }},
		{"ablation-r", func() (Result, error) { return AblationResistance(ctx) }},
		{"ext-process", func() (Result, error) { return CrossProcess(ctx) }},
		{"ext-rail", func() (Result, error) { return Rail(ctx) }},
		{"ext-delay", func() (Result, error) { return Delay(ctx) }},
		{"ext-resonance", func() (Result, error) { return Resonance(ctx) }},
	}
	for _, rc := range results {
		res, err := rc.run()
		if err != nil {
			t.Fatalf("%s: %v", rc.name, err)
		}
		p, ok := res.(Plotter)
		if !ok {
			t.Errorf("%s does not implement Plotter", rc.name)
			continue
		}
		svg := p.SVG()
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "polyline") {
			t.Errorf("%s: SVG missing chart content", rc.name)
		}
	}
}

func TestHTMLReportAssembly(t *testing.T) {
	var buf bytes.Buffer
	err := WriteHTMLReport(&buf, "test <title>", []ReportSection{
		{Name: "sec1", Text: "body & text", SVG: "<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>",
			Record: []Record{{ID: "a", Claim: "c", Measured: "m", Pass: true},
				{ID: "b", Claim: "c", Measured: "m", Pass: false}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"test &lt;title&gt;", "body &amp; text", "<svg", `class="pass"`, `class="fail"`} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
