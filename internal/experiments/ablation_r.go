package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ssnkit/internal/driver"
	"ssnkit/internal/textplot"
)

// ResistancePoint is one simulated scenario of the resistance ablation.
type ResistancePoint struct {
	R      float64 // series ground resistance, Ohm
	MaxSSN float64
	Shift  float64 // relative change vs the R=0 reference
}

// AblationResistanceResult quantifies the paper's Sec. 2 assumption that
// the package series resistance (10 mOhm for a PGA pin) is negligible for
// SSN: it simulates the canonical scenario across a resistance sweep and
// reports how far the peak moves (DESIGN.md ablation-r). The sweep extends
// far beyond realistic package values to show where the assumption would
// break.
type AblationResistanceResult struct {
	Points    []ResistancePoint
	PaperR    float64 // the PGA per-pin value the paper quotes
	PaperErr  float64 // peak shift at PaperR
	BreakEven float64 // first swept R where the shift exceeds 5%
}

// AblationResistance runs the resistance sweep.
func AblationResistance(ctx Context) (*AblationResistanceResult, error) {
	c := ctx.withDefaults()
	cfg := c.scenario()
	step := 0.0
	if c.Fast {
		step = cfg.Rise / 150
	}
	sweep := []float64{0, 10e-3, 50e-3, 0.2, 1, 5}
	if c.Fast {
		sweep = []float64{0, 10e-3, 1, 5}
	}
	res := &AblationResistanceResult{PaperR: 10e-3, BreakEven: math.Inf(1)}
	var ref float64
	for i, r := range sweep {
		sc := cfg
		sc.Ground.R = r
		sim, err := driver.Simulate(sc, c.SimOpts, step, 0)
		if err != nil {
			return nil, fmt.Errorf("ablation-r: R=%g: %w", r, err)
		}
		pt := ResistancePoint{R: r, MaxSSN: sim.MaxSSNWithinRamp()}
		if i == 0 {
			ref = pt.MaxSSN
		}
		pt.Shift = math.Abs(pt.MaxSSN-ref) / ref
		if pt.R == res.PaperR {
			res.PaperErr = pt.Shift
		}
		if pt.Shift > 0.05 && pt.R < res.BreakEven {
			res.BreakEven = pt.R
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render implements Result.
func (r *AblationResistanceResult) Render() string {
	head := fmt.Sprintf(
		"Ablation R — effect of the series ground resistance the model neglects\n"+
			"peak shift at the paper's PGA value (%.0f mOhm): %s; shift exceeds 5%% above %.3g Ohm\n",
		r.PaperR*1e3, fmtPct(r.PaperErr), r.BreakEven)
	rows := [][]string{{"R (Ohm)", "max SSN (V)", "shift vs R=0"}}
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.3g", pt.R),
			fmt.Sprintf("%.4f", pt.MaxSSN),
			fmtPct(pt.Shift),
		})
	}
	return head + textplot.Table(rows)
}

// WriteCSV implements Result.
func (r *AblationResistanceResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"r_ohm", "max_ssn", "shift"}); err != nil {
		return err
	}
	for _, pt := range r.Points {
		err := cw.Write([]string{
			strconv.FormatFloat(pt.R, 'g', 6, 64),
			strconv.FormatFloat(pt.MaxSSN, 'g', 8, 64),
			strconv.FormatFloat(pt.Shift, 'g', 6, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *AblationResistanceResult) Records() []Record {
	return []Record{
		{
			ID:       "ablation-r",
			Claim:    "neglecting the ~10 mOhm package resistance is a very good approximation",
			Measured: fmt.Sprintf("peak shift %s at 10 mOhm; 5%% only above %.3g Ohm", fmtPct(r.PaperErr), r.BreakEven),
			Pass:     r.PaperErr < 0.01,
		},
	}
}
