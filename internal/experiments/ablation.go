package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
)

// AblationResult isolates the paper's device-modeling choice: the same
// first-order SSN ODE is solved with three different linearizations of the
// golden device, so any accuracy difference is attributable to the device
// model alone (DESIGN.md ablation-a):
//
//   - ASDM: K, V0, a fitted over the SSN region (this work);
//   - Taylor: first-order expansion of the alpha-power law at full drive
//     (Jou'98-style), i.e. K = B·α·(Vdd-Vt)^(α-1), V0 from the tangent
//     intercept, a = 1;
//   - ConstDeriv: Vemuru'96-style constant current derivative (same K,
//     V0 = Vt, a = 1).
type AblationResult struct {
	N          []int
	Sim        []float64
	ASDM       []float64
	Taylor     []float64
	ConstDeriv []float64

	ErrASDM, ErrTaylor, ErrConst float64
}

// AblationDeviceModel runs the device-model ablation on the Fig. 3 sweep.
func AblationDeviceModel(ctx Context) (*AblationResult, error) {
	c := ctx.withDefaults()
	cfg := c.scenario()
	cfg.Ground.C = 0
	asdm, err := cfg.Process.ExtractASDM()
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	b, vt, alpha, _, err := device.ExtractAlphaPowerSat(cfg.Process.Driver(1), cfg.Process.Vdd)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	vdd := cfg.Process.Vdd
	geff := b * alpha * math.Pow(vdd-vt, alpha-1)
	isat := b * math.Pow(vdd-vt, alpha)
	// Tangent to the alpha-power curve at Vg = Vdd: Id = geff*(Vg - V0t)
	// with V0t chosen so the line passes through (Vdd, Isat).
	taylor := device.ASDM{K: geff, V0: vdd - isat/geff, A: 1}
	constDeriv := device.ASDM{K: geff, V0: vt, A: 1}

	counts := []int{2, 4, 8, 16, 32}
	step := 0.0
	if c.Fast {
		counts = []int{4, 16, 32}
		step = cfg.Rise / 150
	}
	res := &AblationResult{N: counts}
	eval := func(dev device.ASDM, sc driver.ArrayConfig) (float64, error) {
		p := ssnParams(sc, dev)
		lm, err := ssn.NewLModel(p)
		if err != nil {
			return 0, err
		}
		return lm.VMax(), nil
	}
	for _, n := range counts {
		sc := cfg
		sc.N = n
		sim, err := driver.Simulate(sc, c.SimOpts, step, 0)
		if err != nil {
			return nil, fmt.Errorf("ablation: N=%d: %w", n, err)
		}
		res.Sim = append(res.Sim, sim.MaxSSNWithinRamp())
		for _, m := range []struct {
			dev device.ASDM
			dst *[]float64
		}{
			{asdm, &res.ASDM}, {taylor, &res.Taylor}, {constDeriv, &res.ConstDeriv},
		} {
			v, err := eval(m.dev, sc)
			if err != nil {
				return nil, fmt.Errorf("ablation: %w", err)
			}
			*m.dst = append(*m.dst, v)
		}
	}
	res.ErrASDM = meanRelErr(res.ASDM, res.Sim)
	res.ErrTaylor = meanRelErr(res.Taylor, res.Sim)
	res.ErrConst = meanRelErr(res.ConstDeriv, res.Sim)
	return res, nil
}

// Render implements Result.
func (r *AblationResult) Render() string {
	head := fmt.Sprintf(
		"Ablation A — same ODE, different device linearizations\n"+
			"mean |rel err| vs sim: ASDM %s, Taylor-at-full-drive %s, const-derivative %s\n",
		fmtPct(r.ErrASDM), fmtPct(r.ErrTaylor), fmtPct(r.ErrConst))
	rows := [][]string{{"N", "sim (V)", "ASDM (V)", "taylor (V)", "const-deriv (V)"}}
	for i, n := range r.N {
		rows = append(rows, []string{
			strconv.Itoa(n),
			fmt.Sprintf("%.4f", r.Sim[i]),
			fmt.Sprintf("%.4f", r.ASDM[i]),
			fmt.Sprintf("%.4f", r.Taylor[i]),
			fmt.Sprintf("%.4f", r.ConstDeriv[i]),
		})
	}
	return head + textplot.Table(rows)
}

// WriteCSV implements Result.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "sim", "asdm", "taylor", "const_deriv"}); err != nil {
		return err
	}
	for i, n := range r.N {
		err := cw.Write([]string{
			strconv.Itoa(n),
			strconv.FormatFloat(r.Sim[i], 'g', 8, 64),
			strconv.FormatFloat(r.ASDM[i], 'g', 8, 64),
			strconv.FormatFloat(r.Taylor[i], 'g', 8, 64),
			strconv.FormatFloat(r.ConstDeriv[i], 'g', 8, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *AblationResult) Records() []Record {
	return []Record{
		{
			ID:    "ablation-a",
			Claim: "the accuracy gain comes from the region-specific fit, not the ODE machinery",
			Measured: fmt.Sprintf("ASDM %s vs taylor %s vs const-deriv %s",
				fmtPct(r.ErrASDM), fmtPct(r.ErrTaylor), fmtPct(r.ErrConst)),
			Pass: r.ErrASDM <= r.ErrTaylor && r.ErrASDM <= r.ErrConst,
		},
	}
}
