package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestParMapOrderAndErrors(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i
	}
	got, err := parMap(4, items, func(i, item int) (int, error) {
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if g != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, g, i*i)
		}
	}

	// Lowest-index error wins deterministically, whatever the schedule.
	wantErr := errors.New("boom 5")
	_, err = parMap(8, items, func(i, item int) (int, error) {
		if item == 5 || item == 20 {
			return 0, fmt.Errorf("boom %d", item)
		}
		return item, nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}

	if r, err := parMap(3, nil, func(i, item int) (int, error) { return 0, nil }); err != nil || r != nil {
		t.Fatalf("empty input: %v %v", r, err)
	}
}

// TestParallelFanOutMatchesSerial pins the deterministic-collection contract:
// the parallel sweeps must emit byte-identical CSV artifacts to the serial
// order. Running under -race also exercises the worker pool for data races
// across the shared engine-building code.
func TestParallelFanOutMatchesSerial(t *testing.T) {
	type run struct {
		name string
		do   func(Context) (Result, error)
	}
	runs := []run{
		{"fig3", func(c Context) (Result, error) { return Fig3(c) }},
		{"fig4", func(c Context) (Result, error) { return Fig4(c) }},
		{"table1", func(c Context) (Result, error) { return Table1(c) }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			serial, err := r.do(Context{Fast: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := r.do(Context{Fast: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			var sbuf, pbuf bytes.Buffer
			if err := serial.WriteCSV(&sbuf); err != nil {
				t.Fatal(err)
			}
			if err := parallel.WriteCSV(&pbuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sbuf.Bytes(), pbuf.Bytes()) {
				t.Errorf("%s: parallel CSV differs from serial", r.name)
			}
			if serial.Render() != parallel.Render() {
				t.Errorf("%s: parallel rendition differs from serial", r.name)
			}
		})
	}
}
