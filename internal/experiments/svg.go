package experiments

import (
	"fmt"
	"math"

	"ssnkit/internal/svgplot"
	"ssnkit/internal/waveform"
)

// Plotter is implemented by results that can render an SVG figure; the
// HTML report embeds these alongside the text renditions.
type Plotter interface {
	SVG() string
}

func intXs(ns []int) []float64 {
	out := make([]float64, len(ns))
	for i, n := range ns {
		out[i] = float64(n)
	}
	return out
}

func waveSeries(name string, w *waveform.Waveform) svgplot.Series {
	return svgplot.Series{Name: name, X: w.Times, Y: w.Values}
}

// SVG implements Plotter: the Fig. 1 I-V curves, golden vs ASDM.
func (r *Fig1Result) SVG() string {
	var series []svgplot.Series
	for i, vs := range r.VS {
		series = append(series, svgplot.Series{
			Name: fmt.Sprintf("sim Vs=%.1f", vs), X: r.VG, Y: r.Golden[i],
		})
		series = append(series, svgplot.Series{
			Name: fmt.Sprintf("asdm Vs=%.1f", vs), X: r.VG, Y: r.Model[i], Color: "#999999",
		})
	}
	return svgplot.Line(svgplot.Config{
		Title:  fmt.Sprintf("Fig. 1 — Id(Vg), %s, golden (colored) vs ASDM (grey)", r.Process.Name),
		XLabel: "Vg (V)", YLabel: "Id (A)", Width: 760, Height: 420,
	}, series)
}

// SVG implements Plotter: Fig. 2(b) — the SSN waveform, sim vs model.
func (r *Fig2Result) SVG() string {
	return svgplot.Line(svgplot.Config{
		Title:  "Fig. 2 — SSN waveform, simulation vs Eq. (6)",
		XLabel: "t (s)", YLabel: "V(vssi) (V)", Width: 760, Height: 400,
	}, []svgplot.Series{
		waveSeries("sim", r.SimSSN),
		waveSeries("model", r.ModelSSN),
	})
}

// SVG implements Plotter: Fig. 3 — max SSN vs N across the models.
func (r *Fig3Result) SVG() string {
	xs := intXs(r.N)
	return svgplot.Line(svgplot.Config{
		Title:  "Fig. 3 — max SSN vs switching drivers",
		XLabel: "N", YLabel: "Vmax (V)", Width: 760, Height: 400,
	}, []svgplot.Series{
		{Name: "sim", X: xs, Y: r.Sim},
		{Name: "this work", X: xs, Y: r.ThisWrk},
		{Name: "vemuru", X: xs, Y: r.Vemuru},
		{Name: "song", X: xs, Y: r.Song},
	})
}

// SVG implements Plotter: Fig. 4 — the base sweep (log10 C axis).
func (r *Fig4Result) SVG() string {
	if len(r.Cases) == 0 {
		return svgplot.Line(svgplot.Config{Title: "Fig. 4"}, nil)
	}
	out := ""
	for _, pc := range r.Cases {
		lx := make([]float64, len(pc.C))
		for i, c := range pc.C {
			lx[i] = math.Log10(c)
		}
		out += svgplot.Line(svgplot.Config{
			Title:  fmt.Sprintf("Fig. 4 — %s (Cm=%.3g F)", pc.Label, pc.CritCap),
			XLabel: "log10 C (F)", YLabel: "Vmax (V)", Width: 760, Height: 360,
		}, []svgplot.Series{
			{Name: "sim", X: lx, Y: pc.Sim},
			{Name: "L-only", X: lx, Y: pc.LOnly},
			{Name: "L+C", X: lx, Y: pc.LC},
		})
	}
	return out
}

// SVG implements Plotter for the device-model ablation.
func (r *AblationResult) SVG() string {
	xs := intXs(r.N)
	return svgplot.Line(svgplot.Config{
		Title:  "Ablation A — device linearizations in the same ODE",
		XLabel: "N", YLabel: "Vmax (V)", Width: 760, Height: 380,
	}, []svgplot.Series{
		{Name: "sim", X: xs, Y: r.Sim},
		{Name: "ASDM", X: xs, Y: r.ASDM},
		{Name: "taylor", X: xs, Y: r.Taylor},
		{Name: "const-deriv", X: xs, Y: r.ConstDeriv},
	})
}

// SVG implements Plotter for the resistance ablation.
func (r *AblationResistanceResult) SVG() string {
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, pt := range r.Points {
		xs[i] = pt.R
		ys[i] = pt.MaxSSN
	}
	return svgplot.Line(svgplot.Config{
		Title:  "Ablation R — series resistance sensitivity",
		XLabel: "R (Ohm)", YLabel: "Vmax (V)", Width: 760, Height: 340,
	}, []svgplot.Series{{Name: "sim", X: xs, Y: ys}})
}

// SVG implements Plotter for the cross-process extension.
func (r *CrossProcessResult) SVG() string {
	xs := intXs(r.N)
	var series []svgplot.Series
	for _, kit := range r.Kits {
		series = append(series,
			svgplot.Series{Name: kit + " sim", X: xs, Y: r.Sim[kit]},
			svgplot.Series{Name: kit + " model", X: xs, Y: r.Model[kit], Color: "#aaaaaa"},
		)
	}
	return svgplot.Line(svgplot.Config{
		Title:  "Extension — cross-process validation",
		XLabel: "N", YLabel: "Vmax (V)", Width: 760, Height: 420,
	}, series)
}

// SVG implements Plotter for the rail-droop extension.
func (r *RailResult) SVG() string {
	xs := intXs(r.N)
	return svgplot.Line(svgplot.Config{
		Title:  "Extension — power-rail droop",
		XLabel: "N", YLabel: "droop (V)", Width: 760, Height: 360,
	}, []svgplot.Series{
		{Name: "sim", X: xs, Y: r.Sim},
		{Name: "model", X: xs, Y: r.Model},
	})
}

// SVG implements Plotter for the delay-pushout extension.
func (r *DelayResult) SVG() string {
	xs := intXs(r.N)
	return svgplot.Line(svgplot.Config{
		Title:  "Extension — switching-delay pushout",
		XLabel: "N", YLabel: "pushout (s)", Width: 760, Height: 360,
	}, []svgplot.Series{
		{Name: "sim", X: xs, Y: r.Pushout},
		{Name: "model", X: xs, Y: r.Model},
	})
}
