package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ssnkit/internal/driver"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/ssn"
	"ssnkit/internal/svgplot"
	"ssnkit/internal/textplot"
)

// ResonancePoint is one bit-period sample of the resonance sweep.
type ResonancePoint struct {
	PeriodRatio   float64 // bit period / ground-net ringing period
	Period        float64 // s
	FirstPeak     float64 // bounce of the first switching event, V
	WorstPeak     float64 // worst bounce across all cycles, V
	Amplification float64 // WorstPeak / FirstPeak
}

// ResonanceResult demonstrates a consequence of the paper's Sec. 4 analysis
// that single-event models cannot see: on an under-damped ground net,
// *repeated* switching near the net's ringing period lets bounce residues
// from successive edges add up. The sweep toggles full CMOS drivers at bit
// periods around the ringing period 2π/ω of the LC model and measures how
// much the worst-cycle bounce exceeds the first-cycle bounce.
type ResonanceResult struct {
	RingPeriod float64 // 2π/ω of the scenario's LC model
	Points     []ResonancePoint
	AmpAtRes   float64 // amplification at period ratio 1.0
	AmpOffRes  float64 // amplification at the largest swept ratio
}

// Resonance runs the bit-period sweep on an under-damped scenario
// (C = 4·Cm).
func Resonance(ctx Context) (*ResonanceResult, error) {
	c := ctx.withDefaults()
	base := c.scenario()
	base.Merged = true
	base.Complementary = true
	// A fast edge keeps several toggles inside the ringing period range
	// and leaves plenty of residual ringing between events.
	base.Rise = 0.3e-9
	base.Delay = base.Rise / 2
	asdm, err := base.Process.ExtractASDM()
	if err != nil {
		return nil, fmt.Errorf("ext-resonance: %w", err)
	}
	pRef := ssnParams(base, asdm)
	cUnder := 4 * pRef.CriticalCapacitance()
	pRef.C = cUnder
	m, err := ssn.NewLCModel(pRef)
	if err != nil {
		return nil, err
	}
	if m.Omega() <= 0 {
		return nil, fmt.Errorf("ext-resonance: scenario is not under-damped")
	}
	ringPeriod := 2 * math.Pi / m.Omega()

	ratios := []float64{0.75, 1.0, 1.25, 1.5, 2.0}
	if c.Fast {
		ratios = []float64{1.0, 2.0}
	}
	res := &ResonanceResult{RingPeriod: ringPeriod}
	for _, ratio := range ratios {
		period := ratio * ringPeriod
		if period < 4*base.Rise {
			// Keep the pulse train physical for very short periods.
			period = 4 * base.Rise
			ratio = period / ringPeriod
		}
		cfg := base
		cfg.Ground = pkgmodel.GroundNet{Pads: cfg.Ground.Pads, L: cfg.Ground.L, C: cUnder}
		cfg.Period = period
		const cycles = 6
		step := cfg.Rise / 200
		if c.Fast {
			step = cfg.Rise / 100
		}
		sim, err := driver.Simulate(cfg, c.SimOpts, step, cfg.Delay+float64(cycles)*period)
		if err != nil {
			return nil, fmt.Errorf("ext-resonance: ratio %.2f: %w", ratio, err)
		}
		// First event window: delay .. delay + period.
		firstWin, err := sim.SSN.Window(0, cfg.Delay+period)
		if err != nil {
			return nil, err
		}
		_, first := firstWin.Max()
		_, worst := sim.SSN.Max()
		pt := ResonancePoint{
			PeriodRatio: ratio, Period: period,
			FirstPeak: first, WorstPeak: worst,
		}
		if first > 0 {
			pt.Amplification = worst / first
		}
		res.Points = append(res.Points, pt)
		if math.Abs(ratio-1.0) < 0.01 {
			res.AmpAtRes = pt.Amplification
		}
	}
	res.AmpOffRes = res.Points[len(res.Points)-1].Amplification
	return res, nil
}

// Render implements Result.
func (r *ResonanceResult) Render() string {
	head := fmt.Sprintf(
		"Extension — repeated-switching resonance (ground-net ringing period %.3g s)\n"+
			"amplification at resonance %.3f vs off-resonance %.3f\n",
		r.RingPeriod, r.AmpAtRes, r.AmpOffRes)
	rows := [][]string{{"Tbit/Tring", "first peak (V)", "worst peak (V)", "amplification"}}
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", pt.PeriodRatio),
			fmt.Sprintf("%.4f", pt.FirstPeak),
			fmt.Sprintf("%.4f", pt.WorstPeak),
			fmt.Sprintf("%.3f", pt.Amplification),
		})
	}
	return head + textplot.Table(rows)
}

// WriteCSV implements Result.
func (r *ResonanceResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ratio", "period", "first_peak", "worst_peak", "amplification"}); err != nil {
		return err
	}
	for _, pt := range r.Points {
		err := cw.Write([]string{
			strconv.FormatFloat(pt.PeriodRatio, 'g', 6, 64),
			strconv.FormatFloat(pt.Period, 'g', 8, 64),
			strconv.FormatFloat(pt.FirstPeak, 'g', 8, 64),
			strconv.FormatFloat(pt.WorstPeak, 'g', 8, 64),
			strconv.FormatFloat(pt.Amplification, 'g', 6, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SVG implements Plotter.
func (r *ResonanceResult) SVG() string {
	xs := make([]float64, len(r.Points))
	ys := make([]float64, len(r.Points))
	for i, pt := range r.Points {
		xs[i] = pt.PeriodRatio
		ys[i] = pt.Amplification
	}
	return svgplot.Line(svgplot.Config{
		Title:  "Extension — repeated-switching amplification vs bit period",
		XLabel: "Tbit / Tring", YLabel: "worst/first peak", Width: 760, Height: 360,
	}, []svgplot.Series{{Name: "amplification", X: xs, Y: ys}})
}

// Records implements Result.
func (r *ResonanceResult) Records() []Record {
	return []Record{{
		ID:    "ext-resonance",
		Claim: "repeated switching near the ground-net ringing period amplifies the bounce",
		Measured: fmt.Sprintf("amplification %.3f at Tbit=Tring vs %.3f at Tbit=%.1f*Tring",
			r.AmpAtRes, r.AmpOffRes, r.Points[len(r.Points)-1].PeriodRatio),
		Pass: r.AmpAtRes > 1.02 && r.AmpAtRes > r.AmpOffRes,
	}}
}
