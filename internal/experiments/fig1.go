package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ssnkit/internal/device"
	"ssnkit/internal/fit"
	"ssnkit/internal/textplot"
)

// Fig1Result reproduces the paper's Fig. 1: drain current of the golden
// (BSIM-stand-in) NFET versus gate voltage at several source voltages, with
// the drain held at Vdd, overlaid with the fitted ASDM linear model.
type Fig1Result struct {
	Process device.Process
	VS      []float64   // source voltage per curve
	VG      []float64   // shared gate-voltage grid
	Golden  [][]float64 // [vs][vg] golden drain current, A
	Model   [][]float64 // [vs][vg] ASDM drain current, A
	ASDM    device.ASDM
	Stats   fit.Stats // fit statistics over the retained region
}

// Fig1 runs the device-model experiment.
func Fig1(ctx Context) (*Fig1Result, error) {
	c := ctx.withDefaults()
	p := c.Process
	golden := p.Driver(1)
	asdm, stats, err := device.ExtractASDM(golden, device.ExtractRegion{Vdd: p.Vdd})
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	nvg := 37
	if c.Fast {
		nvg = 19
	}
	res := &Fig1Result{Process: p, ASDM: asdm, Stats: stats}
	for _, frac := range []float64{0, 0.111, 0.222, 0.333, 0.444} {
		res.VS = append(res.VS, frac*p.Vdd*1.0) // 0 .. ~0.8 V at 1.8 V supply
	}
	for i := 0; i < nvg; i++ {
		res.VG = append(res.VG, p.Vdd*float64(i)/float64(nvg-1))
	}
	for _, vs := range res.VS {
		var gRow, mRow []float64
		for _, vg := range res.VG {
			id, _, _, _ := golden.Ids(vg-vs, p.Vdd-vs, 0) // VB = VS, as in the paper
			gRow = append(gRow, id)
			mRow = append(mRow, asdm.Id(vg, vs))
		}
		res.Golden = append(res.Golden, gRow)
		res.Model = append(res.Model, mRow)
	}
	return res, nil
}

// Render implements Result.
func (r *Fig1Result) Render() string {
	var series []textplot.Series
	for i, vs := range r.VS {
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("sim Vs=%.1f", vs), X: r.VG, Y: r.Golden[i], Marker: '.',
		})
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("asdm Vs=%.1f", vs), X: r.VG, Y: r.Model[i], Marker: '*',
		})
	}
	head := fmt.Sprintf(
		"Fig. 1 — %s NFET Id(Vg) at Vd=%.2g V, Vb=Vs; dots: golden device, stars: ASDM\n"+
			"fitted %s   R2=%.4f  worst-rel(on-region)=%s\n",
		r.Process.Name, r.Process.Vdd, r.ASDM, r.Stats.R2, fmtPct(r.Stats.MaxRel))
	return head + textplot.Plot("", series, 72, 20)
}

// WriteCSV implements Result: columns vg, then golden and model currents for
// each source voltage.
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"vg"}
	for _, vs := range r.VS {
		header = append(header,
			fmt.Sprintf("id_golden_vs=%.2f", vs),
			fmt.Sprintf("id_asdm_vs=%.2f", vs))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for j, vg := range r.VG {
		row := []string{strconv.FormatFloat(vg, 'g', 8, 64)}
		for i := range r.VS {
			row = append(row,
				strconv.FormatFloat(r.Golden[i][j], 'g', 8, 64),
				strconv.FormatFloat(r.Model[i][j], 'g', 8, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *Fig1Result) Records() []Record {
	return []Record{
		{
			ID:       "fig1.linear",
			Claim:    "Id is ~linear in Vg in the SSN region; linear ASDM captures the curves",
			Measured: fmt.Sprintf("ASDM fit R2 = %.4f over the on-region grid", r.Stats.R2),
			Pass:     r.Stats.R2 > 0.985,
		},
		{
			ID:       "fig1.a",
			Claim:    "fitted source sensitivity a > 1 in real processes",
			Measured: fmt.Sprintf("a = %.4f", r.ASDM.A),
			Pass:     r.ASDM.A > 1,
		},
		{
			ID:       "fig1.v0",
			Claim:    "V0 differs from the device threshold voltage (0.61 V vs 0.5 V Vt in the paper)",
			Measured: fmt.Sprintf("V0 = %.3f V vs Vt0 = %.3f V", r.ASDM.V0, r.Process.Driver(1).Vt0),
			Pass:     r.ASDM.V0 != r.Process.Driver(1).Vt0,
		},
	}
}
