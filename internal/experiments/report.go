package experiments

import (
	"fmt"
	"html"
	"io"
	"strings"
	"time"
)

// ReportSection is one experiment's contribution to the HTML report.
type ReportSection struct {
	Name   string
	Text   string // the ASCII rendition (shown preformatted)
	SVG    string // optional figure(s)
	Took   time.Duration
	Record []Record
}

// WriteHTMLReport assembles a self-contained HTML report: header, the
// paper-vs-measured record table, then one section per experiment with its
// SVG figure (when the result implements Plotter) and text rendition.
func WriteHTMLReport(w io.Writer, title string, sections []ReportSection) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 980px; margin: 24px auto; color: #222; }
pre { background: #f6f6f6; padding: 12px; overflow-x: auto; font-size: 12px; }
table { border-collapse: collapse; }
td, th { border: 1px solid #bbb; padding: 4px 8px; text-align: left; font-size: 13px; }
th { background: #eee; }
.pass { color: #0a0; font-weight: bold; }
.fail { color: #c00; font-weight: bold; }
h2 { border-bottom: 1px solid #ccc; padding-bottom: 4px; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))

	// Records table.
	b.WriteString("<h2>Paper vs. measured</h2>\n<table><tr><th>Experiment</th><th>Paper claim</th><th>Measured</th><th>Holds</th></tr>\n")
	for _, s := range sections {
		for _, r := range s.Record {
			cls, txt := "pass", "yes"
			if !r.Pass {
				cls, txt = "fail", "NO"
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td class=\"%s\">%s</td></tr>\n",
				html.EscapeString(r.ID), html.EscapeString(r.Claim), html.EscapeString(r.Measured), cls, txt)
		}
	}
	b.WriteString("</table>\n")

	for _, s := range sections {
		fmt.Fprintf(&b, "<h2>%s <small>(%s)</small></h2>\n", html.EscapeString(s.Name), s.Took.Round(time.Millisecond))
		if s.SVG != "" {
			b.WriteString(s.SVG)
			b.WriteString("\n")
		}
		if s.Text != "" {
			fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(s.Text))
		}
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
