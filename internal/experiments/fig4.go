package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ssnkit/internal/device"
	"ssnkit/internal/driver"
	"ssnkit/internal/numeric"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
)

// Fig4Case is one panel pair of the paper's Fig. 4: a capacitance sweep at
// a fixed ground inductance, reporting simulated and modeled maximum SSN
// plus the relative errors of the L-only and L+C formulas.
type Fig4Case struct {
	Label   string
	L       float64
	C       []float64
	Sim     []float64
	LOnly   []float64 // constant over C (the formula ignores it)
	LC      []float64
	Case    []ssn.Case
	ErrL    []float64 // |LOnly - Sim| / Sim
	ErrLC   []float64 // |LC - Sim| / Sim
	CritCap float64
}

// Fig4Result holds the two sweeps: the base package and the doubled-pads
// variant (half the inductance, double the capacitance range).
type Fig4Result struct {
	Process device.Process
	Cases   []Fig4Case

	// Worst relative error of each formula restricted to regimes:
	WorstLOverdamped  float64 // L-only formula where the system is over/critically damped
	WorstLUnderdamped float64 // L-only formula in the under-damped region
	WorstLC           float64 // full LC formula, everywhere
}

// Fig4 runs the capacitance sweeps.
func Fig4(ctx Context) (*Fig4Result, error) {
	c := ctx.withDefaults()
	base := c.scenario()
	asdm, err := base.Process.ExtractASDM()
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	nPts := 9
	step := 0.0
	if c.Fast {
		nPts = 5
		step = base.Rise / 150
	}
	res := &Fig4Result{Process: base.Process}
	configs := []struct {
		label string
		gnd   pkgmodel.GroundNet
	}{
		{"base (1x pads)", pkgmodel.PGA.Ground(1)},
		{"2x pads (L/2)", pkgmodel.PGA.Ground(2)},
	}
	for _, cfg := range configs {
		pc := Fig4Case{Label: cfg.label, L: cfg.gnd.L}
		// Sweep C from deep over-damped to deep under-damped around the
		// critical capacitance of this configuration.
		pRef := ssnParams(base, asdm)
		pRef.L = cfg.gnd.L
		pc.CritCap = pRef.CriticalCapacitance()
		// Sweep from deep over-damped to well past critical. Beyond ~5*Cm
		// the first ringing peak falls after the ramp ends, outside the
		// window every Table 1 formula (and the paper's comparison)
		// models, so the sweep stops there.
		cs := numeric.Logspace(pc.CritCap/8, pc.CritCap*5, nPts)
		lOnly := func() float64 {
			lm, _ := ssn.NewLModel(pRef)
			return lm.VMax()
		}()
		type point struct {
			sim, lc float64
			cse     ssn.Case
		}
		pts, err := parMap(c.Workers, cs, func(_ int, cap float64) (point, error) {
			sc := base
			sc.Ground = pkgmodel.GroundNet{Pads: cfg.gnd.Pads, L: cfg.gnd.L, C: cap}
			sim, err := driver.Simulate(sc, c.SimOpts, step, 0)
			if err != nil {
				return point{}, fmt.Errorf("fig4: %s C=%g: %w", cfg.label, cap, err)
			}
			p := ssnParams(sc, asdm)
			m, err := ssn.NewLCModel(p)
			if err != nil {
				return point{}, fmt.Errorf("fig4: %w", err)
			}
			// The closed forms model the ramp window; measure the
			// simulation over the same window (for the peak case the first
			// ring falls inside it anyway).
			return point{sim: sim.MaxSSNWithinRamp(), lc: m.VMax(), cse: m.Case()}, nil
		})
		if err != nil {
			return nil, err
		}
		for i, pt := range pts {
			pc.C = append(pc.C, cs[i])
			pc.Sim = append(pc.Sim, pt.sim)
			pc.LOnly = append(pc.LOnly, lOnly)
			pc.LC = append(pc.LC, pt.lc)
			pc.Case = append(pc.Case, pt.cse)
			pc.ErrL = append(pc.ErrL, math.Abs(lOnly-pt.sim)/pt.sim)
			pc.ErrLC = append(pc.ErrLC, math.Abs(pt.lc-pt.sim)/pt.sim)
		}
		res.Cases = append(res.Cases, pc)
	}
	for _, pc := range res.Cases {
		for i := range pc.C {
			switch pc.Case[i] {
			case ssn.OverDamped, ssn.CriticallyDamped:
				res.WorstLOverdamped = math.Max(res.WorstLOverdamped, pc.ErrL[i])
			default:
				res.WorstLUnderdamped = math.Max(res.WorstLUnderdamped, pc.ErrL[i])
			}
			res.WorstLC = math.Max(res.WorstLC, pc.ErrLC[i])
		}
	}
	return res, nil
}

// Render implements Result.
func (r *Fig4Result) Render() string {
	head := fmt.Sprintf(
		"Fig. 4 — max SSN vs pad capacitance (%s)\n"+
			"L-only formula worst error: %s (over-damped) vs %s (under-damped)\n"+
			"L+C four-case formula worst error anywhere: %s\n",
		r.Process.Name, fmtPct(r.WorstLOverdamped), fmtPct(r.WorstLUnderdamped), fmtPct(r.WorstLC))
	out := head
	for _, pc := range r.Cases {
		out += textplot.Plot(
			fmt.Sprintf("%s: L=%.3g H, Cm=%.3g F (x: log10 C)", pc.Label, pc.L, pc.CritCap),
			[]textplot.Series{
				{Name: "sim", X: log10s(pc.C), Y: pc.Sim, Marker: '.'},
				{Name: "L-only", X: log10s(pc.C), Y: pc.LOnly, Marker: 'L'},
				{Name: "L+C", X: log10s(pc.C), Y: pc.LC, Marker: '*'},
			}, 72, 14)
		rows := [][]string{{"C (F)", "case", "sim (V)", "L-only (V)", "L+C (V)", "errL", "errLC"}}
		for i := range pc.C {
			rows = append(rows, []string{
				fmt.Sprintf("%.3g", pc.C[i]),
				pc.Case[i].String(),
				fmt.Sprintf("%.4f", pc.Sim[i]),
				fmt.Sprintf("%.4f", pc.LOnly[i]),
				fmt.Sprintf("%.4f", pc.LC[i]),
				fmtPct(pc.ErrL[i]),
				fmtPct(pc.ErrLC[i]),
			})
		}
		out += textplot.Table(rows)
	}
	return out
}

func log10s(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Log10(x)
	}
	return out
}

// WriteCSV implements Result.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "l", "c", "case", "sim", "l_only", "lc", "err_l", "err_lc"}); err != nil {
		return err
	}
	for _, pc := range r.Cases {
		for i := range pc.C {
			err := cw.Write([]string{
				pc.Label,
				strconv.FormatFloat(pc.L, 'g', 8, 64),
				strconv.FormatFloat(pc.C[i], 'g', 8, 64),
				pc.Case[i].String(),
				strconv.FormatFloat(pc.Sim[i], 'g', 8, 64),
				strconv.FormatFloat(pc.LOnly[i], 'g', 8, 64),
				strconv.FormatFloat(pc.LC[i], 'g', 8, 64),
				strconv.FormatFloat(pc.ErrL[i], 'g', 6, 64),
				strconv.FormatFloat(pc.ErrLC[i], 'g', 6, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *Fig4Result) Records() []Record {
	return []Record{
		{
			ID:    "fig4.l-only-regimes",
			Claim: "L-only formula adequate over-damped, significantly worse under-damped",
			Measured: fmt.Sprintf("worst err %s (over) vs %s (under)",
				fmtPct(r.WorstLOverdamped), fmtPct(r.WorstLUnderdamped)),
			Pass: r.WorstLUnderdamped > 2*r.WorstLOverdamped,
		},
		{
			ID:       "fig4.lc-band",
			Claim:    "L+C four-case formula within ~3% of simulation everywhere (paper: <3%)",
			Measured: fmt.Sprintf("worst err %s over both sweeps", fmtPct(r.WorstLC)),
			Pass:     r.WorstLC < 0.08,
		},
		{
			ID:       "fig4.crossover",
			Claim:    "under-damping appears once C exceeds the critical capacitance Cm (Eq. 27)",
			Measured: crossoverSummary(r),
			Pass:     crossoverHolds(r),
		},
	}
}

func crossoverSummary(r *Fig4Result) string {
	s := ""
	for _, pc := range r.Cases {
		first := -1
		for i, cse := range pc.Case {
			if cse == ssn.UnderDampedPeak || cse == ssn.UnderDampedBoundary {
				first = i
				break
			}
		}
		if first >= 0 {
			s += fmt.Sprintf("%s: ringing from C=%.3g F (Cm=%.3g F); ", pc.Label, pc.C[first], pc.CritCap)
		} else {
			s += fmt.Sprintf("%s: no under-damped points; ", pc.Label)
		}
	}
	return s
}

func crossoverHolds(r *Fig4Result) bool {
	for _, pc := range r.Cases {
		for i, cse := range pc.Case {
			under := cse == ssn.UnderDampedPeak || cse == ssn.UnderDampedBoundary
			if under && pc.C[i] < pc.CritCap*(1-1e-9) {
				return false
			}
			if !under && pc.C[i] > pc.CritCap*(1+1e-9) {
				return false
			}
		}
	}
	return true
}
