package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ssnkit/internal/driver"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
)

// DelayResult quantifies the self-loading effect the paper's introduction
// cites — SSN "decreases the effective driving strength" — by measuring
// the 50%-crossing pushout of a switching output with the real ground net
// versus an essentially ideal one, across driver counts, and comparing the
// first-order ssn.DelayPushout estimate.
type DelayResult struct {
	N       []int
	T50Real []float64 // 50% falling crossing with the real ground net
	T50Idea []float64 // with a negligible ground net
	Pushout []float64 // difference
	Model   []float64 // ssn.DelayPushout estimate
}

// Delay runs the pushout sweep. The loads are sized down so the outputs
// actually cross 50% within the window.
func Delay(ctx Context) (*DelayResult, error) {
	c := ctx.withDefaults()
	asdm, err := c.Process.ExtractASDM()
	if err != nil {
		return nil, fmt.Errorf("ext-delay: %w", err)
	}
	counts := []int{4, 16, 32}
	if c.Fast {
		counts = []int{4, 32}
	}
	res := &DelayResult{N: counts}
	half := c.Process.Vdd / 2
	for _, n := range counts {
		cfg := c.scenario()
		cfg.N = n
		cfg.Load = 5e-12 // light enough to cross 50% during the window
		cfg.Merged = true
		step := cfg.Rise / 400
		if c.Fast {
			step = cfg.Rise / 200
		}
		stop := cfg.Delay + 4*cfg.Rise

		t50 := func(gnd pkgmodel.GroundNet) (float64, error) {
			sc := cfg
			sc.Ground = gnd
			sim, err := driver.Simulate(sc, c.SimOpts, step, stop)
			if err != nil {
				return 0, err
			}
			out := sim.Set.Get("v(out1)")
			if out == nil {
				return 0, fmt.Errorf("missing output waveform")
			}
			xs := out.Crossings(half)
			if len(xs) == 0 {
				return 0, fmt.Errorf("output never crossed 50%% (N=%d)", sc.N)
			}
			return xs[0], nil
		}

		real, err := t50(pkgmodel.PGA.Ground(1))
		if err != nil {
			return nil, fmt.Errorf("ext-delay: real net: %w", err)
		}
		ideal, err := t50(pkgmodel.GroundNet{Pads: 1, L: 1e-13, C: 0})
		if err != nil {
			return nil, fmt.Errorf("ext-delay: ideal net: %w", err)
		}
		p := ssnParams(cfg, asdm)
		p.L = pkgmodel.PGA.Ground(1).L
		p.C = pkgmodel.PGA.Ground(1).C
		model, err := ssn.DelayPushout(p)
		if err != nil {
			return nil, err
		}
		res.T50Real = append(res.T50Real, real)
		res.T50Idea = append(res.T50Idea, ideal)
		res.Pushout = append(res.Pushout, real-ideal)
		res.Model = append(res.Model, model)
	}
	return res, nil
}

// Render implements Result.
func (r *DelayResult) Render() string {
	rows := [][]string{{"N", "t50 real (s)", "t50 ideal (s)", "pushout (s)", "model (s)"}}
	for i, n := range r.N {
		rows = append(rows, []string{
			strconv.Itoa(n),
			fmt.Sprintf("%.4g", r.T50Real[i]),
			fmt.Sprintf("%.4g", r.T50Idea[i]),
			fmt.Sprintf("%.4g", r.Pushout[i]),
			fmt.Sprintf("%.4g", r.Model[i]),
		})
	}
	return "Extension — switching-delay pushout from ground bounce\n" + textplot.Table(rows)
}

// WriteCSV implements Result.
func (r *DelayResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "t50_real", "t50_ideal", "pushout", "model"}); err != nil {
		return err
	}
	for i, n := range r.N {
		err := cw.Write([]string{
			strconv.Itoa(n),
			strconv.FormatFloat(r.T50Real[i], 'g', 8, 64),
			strconv.FormatFloat(r.T50Idea[i], 'g', 8, 64),
			strconv.FormatFloat(r.Pushout[i], 'g', 8, 64),
			strconv.FormatFloat(r.Model[i], 'g', 8, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *DelayResult) Records() []Record {
	monotone := true
	factor2 := true
	for i := range r.N {
		if i > 0 && r.Pushout[i] <= r.Pushout[i-1] {
			monotone = false
		}
		if r.Pushout[i] <= 0 {
			monotone = false
			continue
		}
		ratio := r.Model[i] / r.Pushout[i]
		if ratio < 0.5 || ratio > 2 {
			factor2 = false
		}
	}
	detail := ""
	for i, n := range r.N {
		detail += fmt.Sprintf("N=%d: %.3g s (model %.3g); ", n, r.Pushout[i], r.Model[i])
	}
	return []Record{
		{
			ID:       "ext-delay.monotone",
			Claim:    "SSN slows the switching drivers themselves, increasingly so with N",
			Measured: detail,
			Pass:     monotone,
		},
		{
			ID:       "ext-delay.model",
			Claim:    "first-order pushout estimate lands within 2x of simulation",
			Measured: detail,
			Pass:     factor2,
		},
	}
}
