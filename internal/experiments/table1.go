package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"ssnkit/internal/driver"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/ssn"
	"ssnkit/internal/textplot"
)

// Table1Row validates one operating case of the paper's Table 1: the case
// the classifier picks, the closed-form maximum, the maximum found by
// densely sampling the analytic waveform (formula self-consistency), and
// the transistor-level simulated maximum.
type Table1Row struct {
	Scenario   string
	WantCase   ssn.Case
	GotCase    ssn.Case
	Formula    float64 // Table 1 closed form
	SampledMax float64 // dense sampling of V(tau)
	SimMax     float64 // transistor-level simulation
	SelfErr    float64 // |Formula - SampledMax| / SampledMax
	SimErr     float64 // |Formula - SimMax| / SimMax
}

// Table1Result exercises all four cases.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 constructs one scenario per case by steering the pad capacitance
// and the input slope, then validates the formula three ways.
func Table1(ctx Context) (*Table1Result, error) {
	c := ctx.withDefaults()
	base := c.scenario()
	asdm, err := base.Process.ExtractASDM()
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	pRef := ssnParams(base, asdm)
	cm := pRef.CriticalCapacitance()

	type scenario struct {
		name  string
		c     float64
		slope float64 // multiplier on the base slope
		want  ssn.Case
	}
	scenarios := []scenario{
		{"over-damped (C = Cm/4)", cm / 4, 1, ssn.OverDamped},
		{"critically damped (C = Cm)", cm, 1, ssn.CriticallyDamped},
		// The first ringing peak arrives at pi/omega; a slow edge keeps it
		// inside the ramp window, a fast edge pushes it past the boundary.
		{"under-damped peak (C = 4*Cm, 2.5x slower edge)", cm * 4, 0.4, ssn.UnderDampedPeak},
		{"under-damped boundary (C = 4*Cm, base edge)", cm * 4, 1, ssn.UnderDampedBoundary},
	}
	step := 0.0
	if c.Fast {
		step = base.Rise / 150
	}

	res := &Table1Result{}
	rows, err := parMap(c.Workers, scenarios, func(_ int, sc scenario) (Table1Row, error) {
		cfg := base
		cfg.Ground = pkgmodel.GroundNet{Pads: cfg.Ground.Pads, L: cfg.Ground.L, C: sc.c}
		cfg.Rise = base.Rise / sc.slope
		p := ssnParams(cfg, asdm)
		m, err := ssn.NewLCModel(p)
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1: %s: %w", sc.name, err)
		}
		// Dense sampling of the analytic waveform.
		tr := p.TauRise()
		sampled := 0.0
		for k := 0; k <= 50000; k++ {
			if v := m.V(tr * float64(k) / 50000); v > sampled {
				sampled = v
			}
		}
		sim, err := driver.Simulate(cfg, c.SimOpts, step, 0)
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1: %s: %w", sc.name, err)
		}
		simMax := sim.MaxSSN
		if m.Case() == ssn.UnderDampedBoundary || m.Case() == ssn.OverDamped || m.Case() == ssn.CriticallyDamped {
			// These formulas model the ramp window only.
			simMax = sim.MaxSSNWithinRamp()
		}
		return Table1Row{
			Scenario:   sc.name,
			WantCase:   sc.want,
			GotCase:    m.Case(),
			Formula:    m.VMax(),
			SampledMax: sampled,
			SimMax:     simMax,
			SelfErr:    math.Abs(m.VMax()-sampled) / sampled,
			SimErr:     math.Abs(m.VMax()-simMax) / simMax,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render implements Result.
func (r *Table1Result) Render() string {
	const formulas = `closed forms (beta = N*L*K*s, tau_r = (Vdd-V0)/s, sigma = N*K*a/(2C)):
  1  over-damped   (NLKa)^2 > 4LC         Vmax = beta*(1 - (l2*e^(l1*tr) - l1*e^(l2*tr))/(l2-l1))
  2  critical      (NLKa)^2 = 4LC         Vmax = beta*(1 - (1+sigma*tr)*e^(-sigma*tr))
  3a under-damped  pi/omega <= tau_r      Vmax = beta*(1 + e^(-sigma*pi/omega))   (first peak)
  3b under-damped  pi/omega >  tau_r      Vmax = beta*(1 - e^(-sigma*tr)*(cos(omega*tr) + sigma/omega*sin(omega*tr)))
`
	rows := [][]string{{"scenario", "case", "formula (V)", "sampled (V)", "sim (V)", "self err", "sim err"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scenario,
			row.GotCase.String(),
			fmt.Sprintf("%.4f", row.Formula),
			fmt.Sprintf("%.4f", row.SampledMax),
			fmt.Sprintf("%.4f", row.SimMax),
			fmtPct(row.SelfErr),
			fmtPct(row.SimErr),
		})
	}
	return "Table 1 — four-case maximum SSN formulas\n" + formulas + textplot.Table(rows)
}

// WriteCSV implements Result.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "case", "formula", "sampled", "sim", "self_err", "sim_err"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		err := cw.Write([]string{
			row.Scenario,
			row.GotCase.String(),
			strconv.FormatFloat(row.Formula, 'g', 8, 64),
			strconv.FormatFloat(row.SampledMax, 'g', 8, 64),
			strconv.FormatFloat(row.SimMax, 'g', 8, 64),
			strconv.FormatFloat(row.SelfErr, 'g', 6, 64),
			strconv.FormatFloat(row.SimErr, 'g', 6, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Records implements Result.
func (r *Table1Result) Records() []Record {
	allCases := true
	selfOK := true
	simOK := true
	worstSelf, worstSim := 0.0, 0.0
	for _, row := range r.Rows {
		if row.GotCase != row.WantCase {
			allCases = false
		}
		worstSelf = math.Max(worstSelf, row.SelfErr)
		worstSim = math.Max(worstSim, row.SimErr)
	}
	selfOK = worstSelf < 1e-4
	simOK = worstSim < 0.15
	return []Record{
		{
			ID:       "table1.classify",
			Claim:    "four distinct operating cases with distinct formulas",
			Measured: "classifier reproduces all four cases on steered scenarios",
			Pass:     allCases,
		},
		{
			ID:       "table1.self",
			Claim:    "each formula equals the true maximum of the analytic waveform",
			Measured: fmt.Sprintf("worst self-consistency error %s", fmtPct(worstSelf)),
			Pass:     selfOK,
		},
		{
			ID:       "table1.sim",
			Claim:    "formulas track transistor-level simulation in every case",
			Measured: fmt.Sprintf("worst sim error %s", fmtPct(worstSim)),
			Pass:     simOK,
		},
	}
}
