package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestDebugEndpointsGated(t *testing.T) {
	// Off by default: the diagnostics surface must not leak onto a
	// production listener that did not ask for it.
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/runtime without EnablePprof: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without EnablePprof: status %d, want 404", resp.StatusCode)
	}
}

func TestDebugEndpointsEnabled(t *testing.T) {
	_, ts := newTestServer(t, Config{EnablePprof: true})
	resp, err := http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/runtime: status %d", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	// Spot-check two metrics that exist in every supported Go release.
	for _, name := range []string{"/memory/classes/heap/objects:bytes", "/sched/goroutines:goroutines"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}

	resp2, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", resp2.StatusCode)
	}
	resp3, err := http.Get(ts.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine: status %d", resp3.StatusCode)
	}
}
