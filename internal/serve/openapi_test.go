package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var updateOpenAPI = flag.Bool("update-openapi", false, "rewrite api/openapi.yaml from the in-code spec")

const openAPIPath = "../../api/openapi.yaml"

// TestOpenAPISpecUpToDate byte-compares the committed YAML against the
// in-code spec; regenerate with -update-openapi.
func TestOpenAPISpecUpToDate(t *testing.T) {
	want := OpenAPIYAML()
	if *updateOpenAPI {
		if err := os.WriteFile(openAPIPath, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", openAPIPath, len(want))
		return
	}
	got, err := os.ReadFile(openAPIPath)
	if err != nil {
		t.Fatalf("%v — run: go test -run OpenAPI -update-openapi ./internal/serve/", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("api/openapi.yaml is stale — run: go test -run OpenAPI -update-openapi ./internal/serve/")
	}
}

// TestOpenAPICoversAllRoutes extracts the mux registrations from server.go
// and requires the spec to document exactly that set.
func TestOpenAPICoversAllRoutes(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "server.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var routes []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Handle" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		pattern, err := strconv.Unquote(lit.Value)
		if err == nil {
			routes = append(routes, pattern)
		}
		return true
	})
	sort.Strings(routes)
	documented := specPaths(openAPISpec())
	if len(routes) == 0 {
		t.Fatal("found no mux.Handle registrations in server.go")
	}
	if strings.Join(routes, "\n") != strings.Join(documented, "\n") {
		t.Errorf("routes and spec paths diverge:\nmux:\n  %s\nspec:\n  %s",
			strings.Join(routes, "\n  "), strings.Join(documented, "\n  "))
	}
}

// specFixture is one live request replayed against the spec: the request
// body must satisfy the operation's request schema and the response body
// its status's response schema.
type specFixture struct {
	name       string
	method     string
	path       string // spec path (may contain {id})
	url        string // concrete URL path; defaults to path
	body       string
	wantStatus int
	invalidReq bool // body intentionally violates the request schema
}

func openAPIFixtures() []specFixture {
	params := `"params": ` + solveParamsJSON
	return []specFixture{
		{name: "maxssn single", method: "POST", path: "/v1/maxssn",
			body: `{` + params + `}`, wantStatus: 200},
		{name: "maxssn sensitivity", method: "POST", path: "/v1/maxssn",
			body:       `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9, "sensitivity": true}}`,
			wantStatus: 200},
		{name: "maxssn batch", method: "POST", path: "/v1/maxssn",
			body:       `{"items": [` + solveParamsJSON + `, {"process": "nosuch", "n": 1, "rise_time": 1e-9}]}`,
			wantStatus: 200},
		{name: "maxssn bad corner", method: "POST", path: "/v1/maxssn",
			body:       `{"params": {"corner": "xx", "n": 1, "rise_time": 1e-9}}`,
			wantStatus: 400, invalidReq: true},
		{name: "solve single", method: "POST", path: "/v1/solve",
			body:       `{` + params + `, "vmax_budget": 0.4, "variable": "n"}`,
			wantStatus: 200},
		{name: "solve batch", method: "POST", path: "/v1/solve",
			body:       `{"items": [{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9, "vmax_budget": 0.3, "variable": "l"}]}`,
			wantStatus: 200},
		{name: "solve yield", method: "POST", path: "/v1/solve",
			body:       `{` + params + `, "vmax_budget": 0.05, "mode": "yield", "samples": 500, "seed": 3}`,
			wantStatus: 200},
		{name: "solve unsolvable", method: "POST", path: "/v1/solve",
			body:       `{` + params + `, "vmax_budget": 1e6, "variable": "l"}`,
			wantStatus: 422},
		{name: "waveform", method: "POST", path: "/v1/waveform",
			body:       `{` + params + `, "samples": 16}`,
			wantStatus: 200},
		{name: "sweep", method: "POST", path: "/v1/sweep",
			body:       `{` + params + `, "axes": [{"axis": "n", "from": 1, "to": 4, "points": 4}]}`,
			wantStatus: 200},
		{name: "impedance point", method: "POST", path: "/v1/impedance",
			body:       `{"rows": 2, "cols": 2, "pads": 2, "freq": 1e8, "with_sens": true}`,
			wantStatus: 200},
		{name: "impedance sweep", method: "POST", path: "/v1/impedance",
			body:       `{"package": "pga", "rows": 2, "cols": 2, "pads": 2, "from": 1e6, "to": 1e9, "points": 8}`,
			wantStatus: 200},
		{name: "impedance optimize", method: "POST", path: "/v1/impedance",
			body:       `{"rows": 3, "cols": 3, "pads": 4, "mode": "optimize", "points": 40, "decap_c": 2e-9, "decap_esr": 0.01, "max_decaps": 2}`,
			wantStatus: 200},
		{name: "impedance bad mode", method: "POST", path: "/v1/impedance",
			body:       `{"mode": "resonate"}`,
			wantStatus: 400, invalidReq: true},
		{name: "shard", method: "POST", path: "/v1/shard",
			body:       `{"spec": {"base": {"n": 4, "k": 0.02, "v0": 0.5, "a": 1.6, "vdd": 1.8, "slope": 1.8e9, "l": 5e-9, "c": 2e-11}, "axes": [{"axis": "n", "from": 1, "to": 4, "points": 4}], "shard_points": 4}, "shard": 0}`,
			wantStatus: 200},
		{name: "montecarlo", method: "POST", path: "/v1/montecarlo",
			body:       `{` + params + `, "samples": 100, "seed": 1, "variation": {"k": 0.05}}`,
			wantStatus: 202},
		{name: "distsweep in-process", method: "POST", path: "/v1/distsweep",
			body:       `{` + params + `, "axes": [{"axis": "n", "from": 1, "to": 4, "points": 4}]}`,
			wantStatus: 200},
		{name: "dist status", method: "GET", path: "/v1/distsweep/status", wantStatus: 200},
		{name: "job missing", method: "GET", path: "/v1/jobs/{id}",
			url: "/v1/jobs/nope", wantStatus: 404},
		{name: "healthz", method: "GET", path: "/healthz", wantStatus: 200},
	}
}

// TestOpenAPIFixtures replays live requests against every documented JSON
// endpoint and validates both directions of the wire against the spec's
// schemas (NDJSON responses line by line).
func TestOpenAPIFixtures(t *testing.T) {
	spec := openAPISpec()
	ix := buildSchemaIndex(spec)
	_, ts := newTestServer(t, Config{})

	for _, fx := range openAPIFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			op := operationFor(spec, fx.method, fx.path)
			if op == nil {
				t.Fatalf("spec has no %s %s", fx.method, fx.path)
			}

			// Request direction.
			if fx.body != "" && !fx.invalidReq {
				reqSchema := mediaSchema(t, op, "requestBody", "", "application/json")
				var reqVal any
				if err := json.Unmarshal([]byte(fx.body), &reqVal); err != nil {
					t.Fatalf("fixture body: %v", err)
				}
				if err := ix.Validate("request", reqVal, reqSchema); err != nil {
					t.Errorf("request does not satisfy the spec: %v", err)
				}
			}

			// Live response.
			url := fx.url
			if url == "" {
				url = fx.path
			}
			var resp *http.Response
			var body []byte
			if fx.method == "GET" {
				resp, body = getURL(t, ts.URL+url)
			} else {
				resp, body = postJSON(t, ts.URL+url, fx.body)
			}
			if resp.StatusCode != fx.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, fx.wantStatus, body)
			}

			ct := resp.Header.Get("Content-Type")
			switch {
			case strings.HasPrefix(ct, "application/x-ndjson"):
				lineSchema := mediaSchema(t, op, "responses", resp.Status[:3], "application/x-ndjson")
				lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
				if len(lines) == 0 {
					t.Fatal("empty NDJSON stream")
				}
				for i, line := range lines {
					var val any
					if err := json.Unmarshal(line, &val); err != nil {
						t.Fatalf("line %d: %v", i, err)
					}
					if err := ix.Validate("line", val, lineSchema); err != nil {
						t.Errorf("NDJSON line %d does not satisfy the spec: %v\n%s", i, err, line)
					}
				}
			case strings.HasPrefix(ct, "application/json"):
				respSchema := mediaSchema(t, op, "responses", resp.Status[:3], "application/json")
				var val any
				if err := json.Unmarshal(body, &val); err != nil {
					t.Fatalf("response body: %v", err)
				}
				if err := ix.Validate("response", val, respSchema); err != nil {
					t.Errorf("response does not satisfy the spec: %v\n%s", err, body)
				}
			default:
				t.Fatalf("unexpected content type %q", ct)
			}
		})
	}
}

// mediaSchema digs the schema out of an operation: requestBody content, or
// a response by status (falling back to "default"). For NDJSON media the
// x-line-schema extension is returned instead of the opaque string schema.
func mediaSchema(t *testing.T, op obj, section, status, mediaType string) any {
	t.Helper()
	node, ok := op.get(section)
	if !ok {
		t.Fatalf("operation has no %s", section)
	}
	body := node.(obj)
	if section == "responses" {
		v, ok := body.get(status)
		if !ok {
			if v, ok = body.get("default"); !ok {
				t.Fatalf("no response schema for status %s and no default", status)
			}
		}
		body = v.(obj)
	}
	content, ok := body.get("content")
	if !ok {
		t.Fatalf("%s has no content", section)
	}
	media, ok := content.(obj).get(mediaType)
	if !ok {
		t.Fatalf("no %s media entry", mediaType)
	}
	if mediaType == "application/x-ndjson" {
		line, ok := media.(obj).get("x-line-schema")
		if !ok {
			t.Fatal("NDJSON media entry lacks x-line-schema")
		}
		return line
	}
	schema, ok := media.(obj).get("schema")
	if !ok {
		t.Fatal("media entry lacks schema")
	}
	return schema
}

// TestOpenAPIValidatorRejects sanity-checks the mini validator itself: a
// validator that passes everything would make the fixtures vacuous.
func TestOpenAPIValidatorRejects(t *testing.T) {
	spec := openAPISpec()
	ix := buildSchemaIndex(spec)
	cases := []struct {
		name   string
		val    string
		schema any
	}{
		{"unknown field", `{"index": 0, "vmax": 0.1, "bogus": 1}`, ref("EvalResult")},
		{"missing required", `{"index": 0}`, ref("EvalResult")},
		{"wrong type", `{"index": "zero", "vmax": 0.1}`, ref("EvalResult")},
		{"bad enum", `{"code": "nope", "message": "x"}`, ref("Error")},
		{"non-integer", `{"count": 1.5, "results": []}`, ref("MaxSSNBatchResponse")},
		{"oneOf ambiguous", `{}`, oneOf(obj{{"type", "object"}}, obj{{"type", "object"}})},
	}
	for _, tc := range cases {
		var val any
		if err := json.Unmarshal([]byte(tc.val), &val); err != nil {
			t.Fatal(err)
		}
		if err := ix.Validate("x", val, tc.schema); err == nil {
			t.Errorf("%s: validator accepted %s", tc.name, tc.val)
		}
	}
}
