package serve

// OpenAPI 3.0 description of the v1 surface. The spec is authored here as
// Go data — the single source of truth — and rendered to api/openapi.yaml
// by a deterministic emitter; openapi_test.go byte-compares the committed
// file against this definition (drift fails CI, `go test -run OpenAPI
// -update-openapi ./internal/serve/` regenerates) and replays live
// httptest fixtures through a miniature JSON-schema validator so the spec
// cannot silently diverge from what the handlers actually speak.
//
// The stdlib has no YAML parser, so nothing here ever reads YAML back:
// the committed file is write-only output, and all validation runs against
// the in-memory form.

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// kv is one ordered key/value pair of a spec node; obj is an
// order-preserving object (YAML mappings emit in authoring order, which
// keeps the rendered bytes stable without sorting heuristics).
type kv struct {
	K string
	V any
}

type obj []kv

// get returns the value of key k, if present.
func (o obj) get(k string) (any, bool) {
	for _, p := range o {
		if p.K == k {
			return p.V, true
		}
	}
	return nil, false
}

// --- schema-building helpers ---

func ref(name string) obj { return obj{{"$ref", "#/components/schemas/" + name}} }

func typ(t string, extra ...kv) obj { return append(obj{{"type", t}}, extra...) }

func arrOf(items any) obj { return obj{{"type", "array"}, {"items", items}} }

func oneOf(schemas ...any) obj { return obj{{"oneOf", []any(schemas)}} }

func anySlice(ss ...string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// strictObj is an object schema that rejects unknown keys — every response
// schema uses it, so a handler growing a field breaks the fixture test
// until the spec (and the committed YAML) is updated.
func strictObj(props obj, required ...string) obj {
	s := obj{{"type", "object"}}
	if len(required) > 0 {
		s = append(s, kv{"required", anySlice(required...)})
	}
	return append(s, kv{"properties", props}, kv{"additionalProperties", false})
}

// jsonContent wraps a schema as an application/json media object.
func jsonContent(schema any) obj {
	return obj{{"application/json", obj{{"schema", schema}}}}
}

// ndjsonContent describes a streamed NDJSON body. OpenAPI has no native
// per-line schema, so the line shape rides in the x-line-schema extension,
// which the fixture test applies to every line of the stream.
func ndjsonContent(lineSchema any) obj {
	return obj{{"application/x-ndjson", obj{
		{"schema", typ("string", kv{"description", "newline-delimited JSON records"})},
		{"x-line-schema", lineSchema},
	}}}
}

// columnarContent describes an SSNC binary columnar body (the byte-exact
// layout is specified in the README "Columnar wire format" section); the
// x-block-meta extension names the schema of the embedded meta JSON.
func columnarContent(desc string, metaSchema any) obj {
	media := obj{{"schema", typ("string",
		kv{"format", "binary"},
		kv{"description", desc})}}
	if metaSchema != nil {
		media = append(media, kv{"x-block-meta", metaSchema})
	}
	return obj{{"application/x-ssn-columnar", media}}
}

// withContent merges media-type entries into one content object.
func withContent(contents ...obj) obj {
	var merged obj
	for _, c := range contents {
		merged = append(merged, c...)
	}
	return merged
}

func response(desc string, content any) obj {
	o := obj{{"description", desc}}
	if content != nil {
		o = append(o, kv{"content", content})
	}
	return o
}

var errorResponse = response("structured error envelope", jsonContent(ref("ErrorEnvelope")))

// post describes a POST operation with a required JSON request body.
func post(summary string, reqSchema any, responses obj) obj {
	return obj{{"post", obj{
		{"summary", summary},
		{"requestBody", obj{{"required", true}, {"content", jsonContent(reqSchema)}}},
		{"responses", responses},
	}}}
}

// evalItemProps is the shared parameter surface: device selection, ground
// net, input edge. Request schemas embed these inline (the deprecated
// legacy form) and nested under "params" (canonical).
func evalItemProps() obj {
	return obj{
		{"process", typ("string", kv{"description", "process kit to extract, default c018"})},
		{"corner", typ("string", kv{"enum", anySlice("", "tt", "ss", "ff")})},
		{"rail", typ("boolean", kv{"description", "pull-up drivers (rail droop)"})},
		{"size", typ("number", kv{"description", "driver width multiple"})},
		{"dev", ref("DeviceSpec")},
		{"vdd", typ("number", kv{"description", "supply, V; required with dev"})},
		{"n", typ("integer", kv{"description", "simultaneously switching drivers"})},
		{"package", typ("string", kv{"description", "package class, default pga when l unset"})},
		{"pads", typ("integer", kv{"description", "paralleled ground pads, default 1"})},
		{"l", typ("number", kv{"description", "explicit ground inductance, H"})},
		{"c", typ("number", kv{"description", "explicit ground capacitance, F"})},
		{"slope", typ("number", kv{"description", "input edge slope, V/s"})},
		{"rise_time", typ("number", kv{"description", "input edge rise time, s"})},
		{"sensitivity", typ("boolean", kv{"description", "include dVmax/d{N,L,s,C}"})},
	}
}

// solveItemProps is the inverse-design surface layered on an eval point.
func solveItemProps() obj {
	return append(evalItemProps(), obj{
		{"vmax_budget", typ("number", kv{"description", "noise budget, V"})},
		{"variable", typ("string", kv{"enum", anySlice("n", "l", "c", "slope", "rise_time", "tr")})},
		{"mode", typ("string", kv{"enum", anySlice("", "solve", "yield")})},
		{"lo", typ("number", kv{"description", "search bracket lower bound"})},
		{"hi", typ("number", kv{"description", "search bracket upper bound"})},
		{"samples", typ("integer", kv{"description", "yield mode: Monte Carlo samples, default 10000"})},
		{"seed", typ("integer")},
		{"workers", typ("integer")},
		{"variation", ref("VariationSpec")},
	}...)
}

// requestSchema builds an envelope request: canonical nested "params"
// (plus optional "items" batch), with the flat legacy fields inline.
func requestSchema(desc string, itemProps obj, itemsSchema any, extra obj) obj {
	props := obj{{"params", ref("EvalItem")}}
	if itemsSchema != nil {
		props = append(props, kv{"items", arrOf(itemsSchema)})
	}
	props = append(props, extra...)
	props = append(props, itemProps...)
	s := strictObj(props)
	return append(obj{{"description", desc +
		" Parameters belong under \"params\" (canonical); the flat inline form is deprecated, sunset 2027-08-01."}}, s...)
}

// openAPISpec assembles the whole document.
func openAPISpec() obj {
	schemas := obj{
		{"Error", strictObj(obj{
			{"code", typ("string", kv{"enum", anySlice(
				CodeInvalidRequest, CodeInvalidParams, CodeBodyTooLarge, CodeBatchTooLarge,
				CodeGridTooLarge, CodeTimeout, CodeNotFound, CodeOverloaded,
				CodeQuotaExhausted, CodeCanceled, CodeUnsolvable, CodeInternal)})},
			{"message", typ("string")},
			{"field", typ("string")},
			{"value", obj{{"description", "the offending input value"}}},
			{"constraint", typ("string")},
		}, "code", "message")},
		{"ErrorEnvelope", strictObj(obj{{"error", ref("Error")}}, "error")},
		{"DeviceSpec", strictObj(obj{
			{"k", typ("number")}, {"v0", typ("number")}, {"a", typ("number")},
		}, "k", "v0", "a")},
		{"EvalItem", strictObj(evalItemProps())},
		{"SensitivityResult", strictObj(obj{
			{"dvmax_dn", typ("number")}, {"dvmax_dl", typ("number")},
			{"dvmax_dslope", typ("number")}, {"dvmax_dc", typ("number")},
			{"rel_n", typ("number")}, {"rel_l", typ("number")},
			{"rel_slope", typ("number")}, {"rel_c", typ("number")},
		}, "dvmax_dn", "dvmax_dl", "dvmax_dslope", "dvmax_dc", "rel_n", "rel_l", "rel_slope", "rel_c")},
		{"EvalResult", strictObj(obj{
			{"index", typ("integer")},
			{"vmax", typ("number")},
			{"case", typ("string")},
			{"case_code", typ("integer")},
			{"beta", typ("number")},
			{"zeta", typ("number", kv{"nullable", true})},
			{"t_max", typ("number")},
			{"sensitivity", ref("SensitivityResult")},
			{"error", ref("Error")},
		}, "index", "vmax")},
		{"MaxSSNRequest", requestSchema("Evaluate one point or a batch.",
			evalItemProps(), ref("EvalItem"), nil)},
		{"MaxSSNBatchResponse", strictObj(obj{
			{"count", typ("integer")},
			{"results", arrOf(ref("EvalResult"))},
		}, "count", "results")},
		{"ColumnarBatchMeta", strictObj(obj{
			{"params", ref("EvalItem")},
		})},
		{"ColumnarBatchResponseMeta", strictObj(obj{
			{"count", typ("integer")},
			{"errors", obj{{"type", "object"},
				{"description", "failed rows by decimal row index"},
				{"additionalProperties", ref("Error")}}},
		}, "count")},
		{"VariationSpec", strictObj(obj{
			{"k", typ("number")}, {"v0", typ("number")}, {"a", typ("number")},
			{"l", typ("number")}, {"c", typ("number")}, {"slope", typ("number")},
		})},
		{"SolveItem", strictObj(solveItemProps())},
		{"SolveRequest", requestSchema("Inverse design or yield, one query or a batch.",
			solveItemProps(), ref("SolveItem"), nil)},
		{"MonteCarloResult", strictObj(obj{
			{"samples", typ("integer")}, {"mean", typ("number")}, {"std_dev", typ("number")},
			{"min", typ("number")}, {"max", typ("number")},
			{"p95", typ("number")}, {"p99", typ("number")},
			{"cases", obj{{"type", "object"}, {"additionalProperties", typ("integer")}}},
		}, "samples", "mean", "std_dev", "min", "max", "p95", "p99", "cases")},
		{"YieldResult", strictObj(obj{
			{"budget", typ("number")}, {"samples", typ("integer")}, {"pass", typ("integer")},
			{"probability", typ("number")},
			{"wilson_lo", typ("number")}, {"wilson_hi", typ("number")},
			{"stats", ref("MonteCarloResult")},
		}, "budget", "samples", "pass", "probability", "wilson_lo", "wilson_hi", "stats")},
		{"SolveResult", strictObj(obj{
			{"index", typ("integer")},
			{"mode", typ("string", kv{"enum", anySlice("solve", "yield")})},
			{"variable", typ("string")},
			{"value", typ("number")},
			{"max_drivers", typ("integer")},
			{"vmax", typ("number")},
			{"case", typ("string")},
			{"case_code", typ("integer")},
			{"evals", typ("integer")},
			{"yield", ref("YieldResult")},
			{"error", ref("Error")},
		}, "index", "mode")},
		{"SolveBatchResponse", strictObj(obj{
			{"count", typ("integer")},
			{"results", arrOf(ref("SolveResult"))},
		}, "count", "results")},
		{"WaveformRequest", requestSchema("Sample the closed-form waveforms of one point.",
			evalItemProps(), nil, obj{
				{"model", typ("string", kv{"enum", anySlice("", "lc", "l")})},
				{"samples", typ("integer", kv{"description", "default 256, max 65536"})},
				{"ramp_start", typ("number")},
			})},
		{"WaveformResponse", strictObj(obj{
			{"case", typ("string")},
			{"times", arrOf(typ("number"))},
			{"v", arrOf(typ("number"))},
			{"i", arrOf(typ("number"))},
		}, "times", "v", "i")},
		{"MonteCarloRequest", requestSchema("Submit an asynchronous Monte Carlo job.",
			evalItemProps(), nil, obj{
				{"samples", typ("integer")},
				{"seed", typ("integer")},
				{"workers", typ("integer")},
				{"variation", ref("VariationSpec")},
			})},
		{"Job", strictObj(obj{
			{"id", typ("string")},
			{"state", typ("string", kv{"enum", anySlice("queued", "running", "done", "failed", "canceled")})},
			{"created", typ("string", kv{"format", "date-time"})},
			{"started", typ("string", kv{"format", "date-time"})},
			{"finished", typ("string", kv{"format", "date-time"})},
			{"result", obj{{"description", "job-type-specific payload (MonteCarloResult for /v1/montecarlo)"}}},
			{"error", ref("Error")},
		}, "id", "state", "created")},
		{"JobResponse", strictObj(obj{
			{"job", ref("Job")},
			{"status_url", typ("string")},
		}, "job", "status_url")},
		{"HealthResponse", strictObj(obj{
			{"status", typ("string")},
			{"uptime_seconds", typ("number")},
			{"jobs_in_flight", typ("integer")},
			{"cache_entries", typ("integer")},
		}, "status", "uptime_seconds", "jobs_in_flight", "cache_entries")},
		{"SweepAxis", strictObj(obj{
			{"axis", typ("string", kv{"enum", anySlice("n", "l", "c", "slope", "tr", "size")})},
			{"from", typ("number")},
			{"to", typ("number")},
			{"points", typ("integer")},
			{"log", typ("boolean")},
		}, "axis", "from", "to", "points")},
		{"SweepRequest", requestSchema("Stream a multi-axis grid sweep as NDJSON.",
			evalItemProps(), nil, obj{
				{"axes", arrOf(ref("SweepAxis"))},
				{"chunk_size", typ("integer")},
				{"workers", typ("integer")},
				{"refine_depth", typ("integer")},
			})},
		{"SweepPoint", strictObj(obj{
			{"values", obj{{"type", "object"}, {"additionalProperties", typ("number")}}},
			{"vmax", typ("number")},
			{"case", typ("string")},
			{"case_code", typ("integer")},
			{"depth", typ("integer")},
			{"error", ref("Error")},
		}, "values")},
		{"SweepStats", strictObj(obj{
			{"grid_points", typ("integer")}, {"chunks", typ("integer")},
			{"evaluated", typ("integer")}, {"errors", typ("integer")},
			{"refined_points", typ("integer")}, {"max_refine_depth", typ("integer")},
			{"workers", typ("integer")},
		}, "grid_points", "chunks", "evaluated", "errors", "refined_points", "max_refine_depth", "workers")},
		{"SweepSummary", strictObj(obj{
			{"done", typ("boolean")},
			{"stats", ref("SweepStats")},
		}, "done", "stats")},
		{"ImpedanceRequest", append(obj{{"description",
			"PDN input-impedance analysis of a package-class RLC grid: one frequency (point), a streamed |Z(f)| profile (sweep), or greedy adjoint-guided decap placement (optimize)."}},
			strictObj(obj{
				{"package", typ("string", kv{"enum", anySlice("", "pga", "qfp", "bga", "cob")})},
				{"rows", typ("integer", kv{"description", "mesh rows, default 4"})},
				{"cols", typ("integer", kv{"description", "mesh columns, default 4"})},
				{"pads", typ("integer", kv{"description", "package pads on the mesh perimeter, default 4"})},
				{"mode", typ("string", kv{"enum", anySlice("", "point", "sweep", "optimize")})},
				{"freq", typ("number", kv{"description", "point mode: the analysis frequency, Hz"})},
				{"from", typ("number", kv{"description", "sweep start, Hz, default 1e6"})},
				{"to", typ("number", kv{"description", "sweep stop, Hz, default 1e10"})},
				{"points", typ("integer", kv{"description", "sweep points, default 200"})},
				{"linear", typ("boolean", kv{"description", "linear spacing (default logarithmic)"})},
				{"with_sens", typ("boolean", kv{"description", "adjoint d|Z|/d(element) per point (JSON responses only)"})},
				{"workers", typ("integer")},
				{"decap_c", typ("number", kv{"description", "optimize: unit decap capacitance, F, default 1e-9"})},
				{"decap_esr", typ("number", kv{"description", "optimize: unit decap ESR, Ohm, default 5e-3"})},
				{"max_decaps", typ("integer", kv{"description", "optimize: placement budget, default 4, max 64"})},
				{"decap_sites", arrOf(typ("integer"))},
			})...)},
		{"ImpedanceSens", strictObj(obj{
			{"name", typ("string")},
			{"kind", typ("string", kv{"enum", anySlice("R", "L", "C")})},
			{"value", typ("number")},
			{"dabs", typ("number", kv{"description", "d|Z|/d(value)"})},
		}, "name", "kind", "value", "dabs")},
		{"ImpedancePoint", strictObj(obj{
			{"freq", typ("number")},
			{"z_re", typ("number")},
			{"z_im", typ("number")},
			{"z_mag", typ("number")},
			{"sens", arrOf(ref("ImpedanceSens"))},
		}, "freq", "z_re", "z_im", "z_mag")},
		{"ImpedanceStats", strictObj(obj{
			{"points", typ("integer")},
			{"peak_freq", typ("number")},
			{"peak_z", typ("number")},
			{"workers", typ("integer")},
		}, "points", "peak_freq", "peak_z", "workers")},
		{"ImpedanceSummary", strictObj(obj{
			{"done", typ("boolean")},
			{"stats", ref("ImpedanceStats")},
		}, "done", "stats")},
		{"ImpedancePlacement", strictObj(obj{
			{"site", typ("integer")},
			{"node", typ("integer")},
			{"grad", typ("number", kv{"description", "d|Z_peak|/dC at decision time"})},
			{"peak_freq", typ("number", kv{"description", "refined Hz of the peak being attacked"})},
			{"peak_before", typ("number")},
			{"peak_after", typ("number")},
		}, "site", "node", "grad", "peak_freq", "peak_before", "peak_after")},
		{"ImpedanceOptimizeResponse", strictObj(obj{
			{"peak_before", typ("number")},
			{"peak_after", typ("number")},
			{"placements", arrOf(ref("ImpedancePlacement"))},
		}, "peak_before", "peak_after", "placements")},
		{"BaseParams", strictObj(obj{
			{"n", typ("integer")}, {"k", typ("number")}, {"v0", typ("number")},
			{"a", typ("number")}, {"vdd", typ("number")}, {"slope", typ("number")},
			{"l", typ("number")}, {"c", typ("number")},
		}, "n", "k", "v0", "a", "vdd", "slope", "l", "c")},
		{"DistAxis", strictObj(obj{
			{"axis", typ("string")}, {"from", typ("number")}, {"to", typ("number")},
			{"points", typ("integer")}, {"log", typ("boolean")},
		}, "axis", "from", "to", "points")},
		{"ExtractSpec", strictObj(obj{
			{"process", typ("string")},
			{"corner", typ("string")},
			{"rail", typ("boolean")},
		}, "process")},
		{"SweepSpec", strictObj(obj{
			{"base", ref("BaseParams")},
			{"axes", arrOf(ref("DistAxis"))},
			{"extract", ref("ExtractSpec")},
			{"shard_points", typ("integer")},
		}, "base", "axes", "shard_points")},
		{"ShardRequest", strictObj(obj{
			{"spec", ref("SweepSpec")},
			{"shard", typ("integer")},
		}, "spec", "shard")},
		{"DistSweepRequest", requestSchema("Coordinate a sweep across worker replicas.",
			evalItemProps(), nil, obj{
				{"axes", arrOf(ref("SweepAxis"))},
				{"workers", arrOf(typ("string"))},
				{"shard_points", typ("integer")},
				{"api_key", typ("string")},
			})},
		{"DistSummary", strictObj(obj{
			{"done", typ("boolean")},
			{"shards", typ("integer")},
			{"points", typ("integer")},
			{"reused", typ("integer")},
			{"retries", typ("integer")},
			{"elapsed_seconds", typ("number")},
		}, "done", "shards", "points", "reused", "retries", "elapsed_seconds")},
		{"WorkerProgress", strictObj(obj{
			{"url", typ("string")},
			{"in_flight", typ("integer")},
			{"shards", typ("integer")},
			{"failures", typ("integer")},
		}, "url", "in_flight", "shards", "failures")},
		{"DistProgress", strictObj(obj{
			{"shards_total", typ("integer")}, {"shards_done", typ("integer")},
			{"shards_reused", typ("integer")},
			{"points_total", typ("integer")}, {"points_done", typ("integer")},
			{"points_per_sec", typ("number")},
			{"retries", typ("integer")},
			{"elapsed_seconds", typ("number")},
			{"done", typ("boolean")},
			{"error", typ("string")},
			{"workers", arrOf(ref("WorkerProgress"))},
		}, "shards_total", "shards_done", "shards_reused", "points_total", "points_done",
			"points_per_sec", "retries", "elapsed_seconds", "done")},
		{"DistRunStatus", strictObj(obj{
			{"id", typ("string")},
			{"progress", ref("DistProgress")},
		}, "id", "progress")},
		{"DistStatusResponse", strictObj(obj{
			{"count", typ("integer")},
			{"runs", arrOf(ref("DistRunStatus"))},
		}, "count", "runs")},
	}

	sweepLine := oneOf(ref("SweepPoint"), ref("SweepSummary"), ref("ErrorEnvelope"))
	distLine := oneOf(ref("SweepPoint"), ref("DistSummary"), ref("ErrorEnvelope"))
	impedanceLine := oneOf(ref("ImpedancePoint"), ref("ImpedanceSummary"))

	paths := obj{
		{"/v1/maxssn", obj{{"post", obj{
			{"summary", "Maximum SSN of one point or a batch"},
			{"requestBody", obj{{"required", true}, {"content", withContent(
				jsonContent(ref("MaxSSNRequest")),
				columnarContent("SSNC block: meta is the params envelope; per-row override columns n, l, c, slope, rise_time, vdd, pads, size",
					ref("ColumnarBatchMeta")),
			)}}},
			{"responses", obj{
				{"200", response("evaluation result (single) or batch envelope; columnar batches negotiate SSNC output",
					withContent(
						jsonContent(oneOf(ref("EvalResult"), ref("MaxSSNBatchResponse"))),
						columnarContent("SSNC block: columns vmax, case_code, t_max, beta; failed rows NaN with errors in the meta",
							ref("ColumnarBatchResponseMeta")),
					))},
				{"default", errorResponse},
			}},
		}}}},
		{"/v1/solve", post("Inverse design / yield for a vmax budget", ref("SolveRequest"), obj{
			{"200", response("solved boundary (single) or batch envelope",
				jsonContent(oneOf(ref("SolveResult"), ref("SolveBatchResponse"))))},
			{"422", response("no boundary inside the search bracket", jsonContent(ref("ErrorEnvelope")))},
			{"default", errorResponse},
		})},
		{"/v1/waveform", post("Sampled closed-form V(t) and I(t)", ref("WaveformRequest"), obj{
			{"200", response("waveforms on a shared time grid", jsonContent(ref("WaveformResponse")))},
			{"default", errorResponse},
		})},
		{"/v1/sweep", post("Multi-axis grid sweep, streamed", ref("SweepRequest"), obj{
			{"200", response("NDJSON: points, then a terminal summary; Accept: application/x-ssn-columnar streams SSNC blocks instead",
				withContent(
					ndjsonContent(sweepLine),
					columnarContent("SSNC block stream: per-axis value columns plus vmax, case_code, depth; terminal zero-row block carries done/stats (or the error envelope) in its meta",
						oneOf(ref("SweepSummary"), ref("ErrorEnvelope"))),
				))},
			{"default", errorResponse},
		})},
		{"/v1/impedance", post("Frequency-domain PDN impedance: point, sweep, or decap optimization", ref("ImpedanceRequest"), obj{
			{"200", response("point/optimize answer as JSON; sweep streams NDJSON points then a terminal summary, or SSNC blocks when negotiated",
				withContent(
					jsonContent(oneOf(ref("ImpedancePoint"), ref("ImpedanceOptimizeResponse"))),
					ndjsonContent(impedanceLine),
					columnarContent("SSNC block stream: columns freq, z_re, z_im, z_mag; terminal zero-row block carries done/stats in its meta",
						ref("ImpedanceSummary")),
				))},
			{"default", errorResponse},
		})},
		{"/v1/shard", post("Evaluate one distributed-sweep shard", ref("ShardRequest"), obj{
			{"200", response("NDJSON: the shard's points in global order", ndjsonContent(ref("SweepPoint")))},
			{"default", errorResponse},
		})},
		{"/v1/montecarlo", post("Submit an asynchronous Monte Carlo job", ref("MonteCarloRequest"), obj{
			{"202", response("job accepted", jsonContent(ref("JobResponse")))},
			{"default", errorResponse},
		})},
		{"/v1/distsweep", post("Coordinate a sweep across replicas", ref("DistSweepRequest"), obj{
			{"200", response("NDJSON: merged points, then a terminal summary", ndjsonContent(distLine))},
			{"default", errorResponse},
		})},
		{"/v1/distsweep/status", obj{{"get", obj{
			{"summary", "Progress of recent coordinator runs"},
			{"parameters", []any{obj{
				{"name", "id"}, {"in", "query"}, {"required", false},
				{"schema", typ("string")},
			}}},
			{"responses", obj{
				{"200", response("run snapshots, newest first", jsonContent(ref("DistStatusResponse")))},
				{"default", errorResponse},
			}},
		}}}},
		{"/v1/jobs/{id}", obj{{"get", obj{
			{"summary", "Job status and result"},
			{"parameters", []any{obj{
				{"name", "id"}, {"in", "path"}, {"required", true},
				{"schema", typ("string")},
			}}},
			{"responses", obj{
				{"200", response("job record", jsonContent(ref("Job")))},
				{"default", errorResponse},
			}},
		}}}},
		{"/healthz", obj{{"get", obj{
			{"summary", "Liveness and basic gauges"},
			{"responses", obj{
				{"200", response("healthy", jsonContent(ref("HealthResponse")))},
			}},
		}}}},
		{"/metrics", obj{{"get", obj{
			{"summary", "Prometheus text exposition"},
			{"responses", obj{
				{"200", response("metrics", obj{{"text/plain", obj{{"schema", typ("string")}}}})},
			}},
		}}}},
	}

	return obj{
		{"openapi", "3.0.3"},
		{"info", obj{
			{"title", "ssnkit evaluation service"},
			{"description", "Closed-form simultaneous switching noise models (Ding & Mazumder, DATE 2002): forward evaluation, inverse design, yield, sweeps and Monte Carlo behind one envelope-checked v1 API."},
			{"version", "1.0.0"},
		}},
		{"paths", paths},
		{"components", obj{{"schemas", schemas}}},
	}
}

// --- deterministic YAML emission ---

// OpenAPIYAML renders the spec. Byte-for-byte stable: mappings emit in
// authoring order, strings always double-quoted, numbers via strconv.
func OpenAPIYAML() []byte {
	var b bytes.Buffer
	b.WriteString("# Generated from internal/serve/openapi.go — do not edit by hand.\n")
	b.WriteString("# Regenerate: go test -run OpenAPI -update-openapi ./internal/serve/\n")
	spec := openAPISpec()
	for _, p := range spec {
		writeYAMLKey(&b, p, 0)
	}
	return b.Bytes()
}

func yamlKey(k string) string {
	if k == "" {
		return `""`
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		ok := c == '_' || c == '$' || c == '/' || c == '.' || c == '-' || c == '{' || c == '}' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return strconv.Quote(k)
		}
	}
	if k[0] >= '0' && k[0] <= '9' {
		return strconv.Quote(k) // status codes are strings in OpenAPI
	}
	return k
}

func writeYAMLKey(b *bytes.Buffer, p kv, indent int) {
	b.WriteString(strings.Repeat("  ", indent))
	b.WriteString(yamlKey(p.K))
	b.WriteByte(':')
	writeYAMLValue(b, p.V, indent)
}

// writeYAMLValue continues after "key:" or "-": scalars inline, nested
// structures as an indented block.
func writeYAMLValue(b *bytes.Buffer, v any, indent int) {
	switch t := v.(type) {
	case obj:
		if len(t) == 0 {
			b.WriteString(" {}\n")
			return
		}
		b.WriteByte('\n')
		for _, p := range t {
			writeYAMLKey(b, p, indent+1)
		}
	case []any:
		if len(t) == 0 {
			b.WriteString(" []\n")
			return
		}
		b.WriteByte('\n')
		for _, item := range t {
			b.WriteString(strings.Repeat("  ", indent+1))
			b.WriteByte('-')
			writeYAMLValue(b, item, indent+1)
		}
	case string:
		b.WriteString(" " + strconv.Quote(t) + "\n")
	case bool:
		b.WriteString(" " + strconv.FormatBool(t) + "\n")
	case int:
		b.WriteString(" " + strconv.Itoa(t) + "\n")
	case float64:
		b.WriteString(" " + strconv.FormatFloat(t, 'g', -1, 64) + "\n")
	default:
		panic(fmt.Sprintf("openapi: unsupported YAML value %T", v))
	}
}

// --- miniature schema validator (fixture round-trips) ---

// schemaIndex resolves $ref against components.schemas.
type schemaIndex map[string]obj

func buildSchemaIndex(spec obj) schemaIndex {
	ix := schemaIndex{}
	comp, _ := spec.get("components")
	schemas, _ := comp.(obj).get("schemas")
	for _, p := range schemas.(obj) {
		ix[p.K] = p.V.(obj)
	}
	return ix
}

// Validate checks a decoded JSON value (map[string]any / []any / float64 /
// string / bool / nil) against a schema node. It covers the subset the
// spec uses: $ref, type, enum, nullable, required, properties,
// additionalProperties (false or a schema), items, oneOf.
func (ix schemaIndex) Validate(path string, val any, schema any) error {
	s, ok := schema.(obj)
	if !ok {
		return fmt.Errorf("%s: schema node is %T, not obj", path, schema)
	}
	if r, ok := s.get("$ref"); ok {
		name := strings.TrimPrefix(r.(string), "#/components/schemas/")
		target, ok := ix[name]
		if !ok {
			return fmt.Errorf("%s: dangling $ref %q", path, name)
		}
		return ix.Validate(path, val, target)
	}
	if alts, ok := s.get("oneOf"); ok {
		matches := 0
		var errs []string
		for i, alt := range alts.([]any) {
			if err := ix.Validate(path, val, alt); err == nil {
				matches++
			} else if len(errs) < 3 {
				errs = append(errs, fmt.Sprintf("alt %d: %v", i, err))
			}
		}
		if matches != 1 {
			return fmt.Errorf("%s: oneOf matched %d alternatives (%s)", path, matches, strings.Join(errs, "; "))
		}
		return nil
	}
	if val == nil {
		if n, ok := s.get("nullable"); ok && n == true {
			return nil
		}
		if _, typed := s.get("type"); !typed {
			return nil // untyped schema accepts anything
		}
		return fmt.Errorf("%s: null for non-nullable schema", path)
	}
	if enum, ok := s.get("enum"); ok {
		for _, allowed := range enum.([]any) {
			if val == allowed {
				return nil
			}
		}
		return fmt.Errorf("%s: %v not in enum %v", path, val, enum)
	}
	tv, ok := s.get("type")
	if !ok {
		return nil
	}
	switch tv {
	case "object":
		m, ok := val.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: %T is not an object", path, val)
		}
		props := obj{}
		if pv, ok := s.get("properties"); ok {
			props = pv.(obj)
		}
		if rv, ok := s.get("required"); ok {
			for _, name := range rv.([]any) {
				if _, present := m[name.(string)]; !present {
					return fmt.Errorf("%s: missing required field %q", path, name)
				}
			}
		}
		addl, hasAddl := s.get("additionalProperties")
		for key, sub := range m {
			if schemaFor, known := props.get(key); known {
				if err := ix.Validate(path+"."+key, sub, schemaFor); err != nil {
					return err
				}
				continue
			}
			if !hasAddl {
				continue // open object
			}
			if addl == false {
				return fmt.Errorf("%s: unknown field %q (schema is closed)", path, key)
			}
			if err := ix.Validate(path+"."+key, sub, addl); err != nil {
				return err
			}
		}
	case "array":
		items, ok := val.([]any)
		if !ok {
			return fmt.Errorf("%s: %T is not an array", path, val)
		}
		itemSchema, _ := s.get("items")
		for i, item := range items {
			if err := ix.Validate(fmt.Sprintf("%s[%d]", path, i), item, itemSchema); err != nil {
				return err
			}
		}
	case "string":
		if _, ok := val.(string); !ok {
			return fmt.Errorf("%s: %T is not a string", path, val)
		}
	case "boolean":
		if _, ok := val.(bool); !ok {
			return fmt.Errorf("%s: %T is not a boolean", path, val)
		}
	case "number":
		if _, ok := val.(float64); !ok {
			return fmt.Errorf("%s: %T is not a number", path, val)
		}
	case "integer":
		f, ok := val.(float64)
		if !ok || f != float64(int64(f)) {
			return fmt.Errorf("%s: %v is not an integer", path, val)
		}
	default:
		return fmt.Errorf("%s: unsupported schema type %q", path, tv)
	}
	return nil
}

// operationFor returns the spec node for method+path, or nil.
func operationFor(spec obj, method, path string) obj {
	paths, _ := spec.get("paths")
	item, ok := paths.(obj).get(path)
	if !ok {
		return nil
	}
	op, ok := item.(obj).get(strings.ToLower(method))
	if !ok {
		return nil
	}
	return op.(obj)
}

// specPaths lists method+path pairs the spec documents, sorted.
func specPaths(spec obj) []string {
	paths, _ := spec.get("paths")
	var out []string
	for _, item := range paths.(obj) {
		for _, op := range item.V.(obj) {
			out = append(out, strings.ToUpper(op.K)+" "+item.K)
		}
	}
	sort.Strings(out)
	return out
}
