package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"ssnkit/internal/colwire"
)

// postColumnar POSTs an SSNC block, optionally overriding the Accept
// header, and returns the raw response.
func postColumnar(t *testing.T, url string, blk *colwire.Block, accept string) (*http.Response, []byte) {
	t.Helper()
	enc, err := blk.Encode()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", colwire.ContentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// columnarBatchBlock builds the canonical test batch: shared params in the
// meta, a capacitance column per row.
func columnarBatchBlock(t *testing.T, cvals []float64) *colwire.Block {
	t.Helper()
	return &colwire.Block{
		Meta: json.RawMessage(`{"params":{"n":16,"dev":{"k":4e-3,"v0":0.6,"a":1.2},"vdd":1.8,"l":1.25e-9,"slope":1.8e9}}`),
		Columns: []colwire.Column{
			{Name: "c", Values: cvals},
		},
	}
}

// TestColumnarBatchMatchesJSON is the round-trip contract the CI smoke
// also checks end to end: a columnar batch and the equivalent JSON items
// batch must produce bit-identical vmax values.
func TestColumnarBatchMatchesJSON(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cvals := []float64{0, 1e-13, 5e-13, 2e-12, 8e-12, 4e-11}

	resp, body := postColumnar(t, ts.URL+"/v1/maxssn", columnarBatchBlock(t, cvals), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("columnar status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != colwire.ContentType {
		t.Fatalf("columnar reply content type %q", ct)
	}
	blk, n, err := colwire.Decode(body)
	if err != nil || n != len(body) {
		t.Fatalf("decode reply: %v (consumed %d of %d)", err, n, len(body))
	}
	var meta columnarBatchResponseMeta
	if err := json.Unmarshal(blk.Meta, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Count != len(cvals) || len(meta.Errors) != 0 {
		t.Fatalf("meta = %+v", meta)
	}
	vmax := blk.Column("vmax")
	caseCode := blk.Column("case_code")
	tmax := blk.Column("t_max")
	beta := blk.Column("beta")
	if vmax == nil || caseCode == nil || tmax == nil || beta == nil {
		t.Fatalf("missing response columns, got %d", len(blk.Columns))
	}

	// The same batch through the JSON wire.
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i, c := range cvals {
		if i > 0 {
			sb.WriteByte(',')
		}
		b, _ := json.Marshal(map[string]any{
			"n": 16, "dev": map[string]float64{"k": 4e-3, "v0": 0.6, "a": 1.2},
			"vdd": 1.8, "l": 1.25e-9, "slope": 1.8e9, "c": c,
		})
		sb.Write(b)
	}
	sb.WriteString(`]}`)
	jresp, jbody := postJSON(t, ts.URL+"/v1/maxssn", sb.String())
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("json status %d: %s", jresp.StatusCode, jbody)
	}
	var jout maxSSNBatchResponse
	if err := json.Unmarshal(jbody, &jout); err != nil {
		t.Fatal(err)
	}
	for i, res := range jout.Results {
		if math.Float64bits(vmax[i]) != math.Float64bits(res.VMax) {
			t.Errorf("row %d: columnar vmax %v != json %v", i, vmax[i], res.VMax)
		}
		if int(caseCode[i]) != res.CaseCode {
			t.Errorf("row %d: case_code %v != %d", i, caseCode[i], res.CaseCode)
		}
		if math.Float64bits(tmax[i]) != math.Float64bits(res.TMax) {
			t.Errorf("row %d: t_max %v != %v", i, tmax[i], res.TMax)
		}
		if math.Float64bits(beta[i]) != math.Float64bits(res.Beta) {
			t.Errorf("row %d: beta %v != %v", i, beta[i], res.Beta)
		}
	}

	counts := s.metrics.ColumnarCounts()
	if counts["/v1/maxssn in"] != 1 || counts["/v1/maxssn out"] != 1 {
		t.Fatalf("columnar counters = %v", counts)
	}
}

// TestColumnarNegotiation pins the Accept/Content-Type matrix.
func TestColumnarNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	blk := columnarBatchBlock(t, []float64{1e-12})

	// Columnar body + explicit JSON accept -> JSON batch envelope.
	resp, body := postColumnar(t, ts.URL+"/v1/maxssn", blk, "application/json")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("status %d ct %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var jout maxSSNBatchResponse
	if err := json.Unmarshal(body, &jout); err != nil || jout.Count != 1 {
		t.Fatalf("json reply: %v %s", err, body)
	}

	// JSON body + columnar accept -> columnar batch reply.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/maxssn", strings.NewReader(
		`{"items":[{"n":16,"dev":{"k":4e-3,"v0":0.6,"a":1.2},"vdd":1.8,"l":1.25e-9,"c":1e-12,"slope":1.8e9}]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", colwire.ContentType)
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(cresp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := cresp.Header.Get("Content-Type"); ct != colwire.ContentType {
		t.Fatalf("accept negotiation ignored: ct %q", ct)
	}
	cblk, _, err := colwire.Decode(buf.Bytes())
	if err != nil || cblk.Rows() != 1 {
		t.Fatalf("decode negotiated reply: %v", err)
	}

	// Both wires agree on the value.
	if math.Float64bits(cblk.Column("vmax")[0]) != math.Float64bits(jout.Results[0].VMax) {
		t.Fatal("negotiated columnar vmax differs from JSON vmax")
	}
}

func TestColumnarBatchErrorsInMeta(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	blk := columnarBatchBlock(t, []float64{1e-12, -1, 2e-12})
	resp, body := postColumnar(t, ts.URL+"/v1/maxssn", blk, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rblk, _, err := colwire.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	var meta columnarBatchResponseMeta
	if err := json.Unmarshal(rblk.Meta, &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Errors) != 1 || meta.Errors["1"] == nil {
		t.Fatalf("errors = %v", meta.Errors)
	}
	if meta.Errors["1"].Code != CodeInvalidParams {
		t.Fatalf("row error code %q", meta.Errors["1"].Code)
	}
	vmax, caseCode := rblk.Column("vmax"), rblk.Column("case_code")
	if !math.IsNaN(vmax[1]) || caseCode[1] != -1 {
		t.Fatalf("failed row carries vmax=%v case_code=%v", vmax[1], caseCode[1])
	}
	if math.IsNaN(vmax[0]) || math.IsNaN(vmax[2]) {
		t.Fatal("valid rows poisoned by the failed one")
	}
}

func TestColumnarBatchRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})

	post := func(body []byte, wantStatus int, wantCode string) {
		t.Helper()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/maxssn", bytes.NewReader(body))
		req.Header.Set("Content-Type", colwire.ContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, buf.Bytes())
		}
		var env struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != wantCode {
			t.Fatalf("code %q, want %q", env.Error.Code, wantCode)
		}
	}

	// Unknown column.
	bad, err := (&colwire.Block{Columns: []colwire.Column{{Name: "cc", Values: []float64{1}}}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	post(bad, http.StatusBadRequest, CodeInvalidRequest)

	// Truncated block.
	good, err := columnarBatchBlock(t, []float64{1e-12}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	post(good[:len(good)-3], http.StatusBadRequest, CodeInvalidRequest)

	// Empty body.
	post(nil, http.StatusBadRequest, CodeInvalidRequest)

	// Trailing junk after the block.
	post(append(append([]byte(nil), good...), 'x'), http.StatusBadRequest, CodeInvalidRequest)

	// Over the batch cap.
	over, err := columnarBatchBlock(t, make([]float64, 5)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	post(over, http.StatusBadRequest, CodeBatchTooLarge)

	// Items in the meta.
	wrong, err := (&colwire.Block{
		Meta:    json.RawMessage(`{"items":[{"n":1}]}`),
		Columns: []colwire.Column{{Name: "c", Values: []float64{1e-12}}},
	}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	post(wrong, http.StatusBadRequest, CodeInvalidRequest)
}

// TestColumnarSweepStream drives /v1/sweep with a columnar Accept and
// cross-checks every value against the NDJSON stream of the same request.
func TestColumnarSweepStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqBody := `{"params":{"n":8,"dev":{"k":4e-3,"v0":0.6,"a":1.2},"vdd":1.8,"l":1.25e-9,"slope":1.8e9},` +
		`"axes":[{"axis":"n","from":1,"to":40,"points":40},{"axis":"c","from":1e-13,"to":1e-11,"points":50,"log":true}]}`

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(reqBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", colwire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != colwire.ContentType {
		t.Fatalf("content type %q", ct)
	}
	blocks, err := DecodeColumnarStream(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("%d blocks, want data + terminal", len(blocks))
	}
	last := blocks[len(blocks)-1]
	if last.Rows() != 0 {
		t.Fatalf("terminal block has %d rows", last.Rows())
	}
	var summary sweepColumnarStats
	if err := json.Unmarshal(last.Meta, &summary); err != nil {
		t.Fatal(err)
	}
	if !summary.Done || summary.Stats.GridPoints != 2000 || summary.Stats.Evaluated != 2000 {
		t.Fatalf("summary = %+v", summary)
	}
	var ns, cs, vmax, caseCode []float64
	for _, blk := range blocks[:len(blocks)-1] {
		for _, want := range []string{"n", "c", "vmax", "case_code", "depth"} {
			if blk.Column(want) == nil {
				t.Fatalf("data block lacks column %q", want)
			}
		}
		ns = append(ns, blk.Column("n")...)
		cs = append(cs, blk.Column("c")...)
		vmax = append(vmax, blk.Column("vmax")...)
		caseCode = append(caseCode, blk.Column("case_code")...)
	}
	if len(vmax) != 2000 {
		t.Fatalf("%d data rows", len(vmax))
	}

	// NDJSON stream of the same request.
	jresp, jbody := postJSON(t, ts.URL+"/v1/sweep", reqBody)
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson status %d", jresp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(jbody), []byte("\n"))
	row := 0
	for _, line := range lines {
		var pt sweepPoint
		if err := json.Unmarshal(line, &pt); err != nil {
			t.Fatal(err)
		}
		if pt.Values == nil { // terminal summary line
			continue
		}
		if math.Float64bits(pt.Values["n"]) != math.Float64bits(ns[row]) ||
			math.Float64bits(pt.Values["c"]) != math.Float64bits(cs[row]) {
			t.Fatalf("row %d: axis values differ", row)
		}
		if math.Float64bits(pt.VMax) != math.Float64bits(vmax[row]) {
			t.Fatalf("row %d: vmax %v != %v", row, pt.VMax, vmax[row])
		}
		if float64(pt.CaseCode) != caseCode[row] {
			t.Fatalf("row %d: case_code %d != %v", row, pt.CaseCode, caseCode[row])
		}
		row++
	}
	if row != 2000 {
		t.Fatalf("ndjson had %d data rows", row)
	}
}

// TestColumnarSweepCleanMeta checks that data blocks of an error-free
// sweep carry no meta at all (the errors map only appears when a row
// failed), keeping the steady-state frames minimal.
func TestColumnarSweepCleanMeta(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqBody := `{"params":{"n":8,"dev":{"k":4e-3,"v0":0.6,"a":1.2},"vdd":1.8,"l":1.25e-9,"slope":1.8e9},` +
		`"axes":[{"axis":"c","from":0,"to":1e-12,"points":8}]}`
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(reqBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", colwire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blocks, err := DecodeColumnarStream(resp.Body)
	if err != nil || len(blocks) != 2 {
		t.Fatalf("blocks %d err %v", len(blocks), err)
	}
	if len(blocks[0].Meta) != 0 {
		t.Fatalf("clean sweep block carries meta %s", blocks[0].Meta)
	}
	if blocks[0].Rows() != 8 {
		t.Fatalf("rows %d", blocks[0].Rows())
	}
}
