package serve

import (
	"net/http"
	"strconv"
)

// This file is the single definition of the v1 wire conventions: the
// request envelope every endpoint decodes, the error envelope every
// failure serializes to, and the frozen registry of error codes. Handlers
// must not invent codes — envelope_test.go walks the package AST and
// rejects any apiError composite literal whose Code is not one of the
// Code* constants below.

// The frozen v1 error-code registry. Codes are API surface: clients switch
// on them, so a new code is an API change and belongs here, mapped in
// errorCodeStatus, before any handler may emit it.
const (
	// CodeInvalidRequest rejects structurally bad requests: malformed
	// JSON, unknown enum values, out-of-range options.
	CodeInvalidRequest = "invalid_request"
	// CodeInvalidParams rejects well-formed requests whose evaluation
	// point fails model validation (ssn.ValidationError) or whose sweep
	// axes leave the model domain (sweep.DomainError). The error body
	// carries the offending field, value and constraint.
	CodeInvalidParams = "invalid_params"
	// CodeBodyTooLarge rejects bodies over Config.MaxBodyBytes.
	CodeBodyTooLarge = "body_too_large"
	// CodeBatchTooLarge rejects batches over Config.MaxBatch items.
	CodeBatchTooLarge = "batch_too_large"
	// CodeGridTooLarge rejects sweeps over Config.MaxSweepPoints points.
	CodeGridTooLarge = "grid_too_large"
	// CodeTimeout reports work abandoned at a deadline or disconnect.
	CodeTimeout = "timeout"
	// CodeNotFound reports an unknown job or run identifier.
	CodeNotFound = "not_found"
	// CodeOverloaded sheds requests when the admission queue is full.
	CodeOverloaded = "overloaded"
	// CodeQuotaExhausted sheds requests over the per-client token budget.
	CodeQuotaExhausted = "quota_exhausted"
	// CodeCanceled reports an asynchronous job cancelled before finishing.
	CodeCanceled = "canceled"
	// CodeUnsolvable reports an inverse query whose budget has no boundary
	// inside the search bracket (ssn.SolveError).
	CodeUnsolvable = "unsolvable"
	// CodeInternal reports a handler panic.
	CodeInternal = "internal"
)

// errorCodeStatus maps every registered code to its HTTP status. The map
// doubles as the registry's authoritative member list: statusFor refuses
// codes outside it only in tests (envelope_test.go); at runtime unknown
// codes degrade to 400 rather than panicking mid-response.
var errorCodeStatus = map[string]int{
	CodeInvalidRequest: http.StatusBadRequest,
	CodeInvalidParams:  http.StatusBadRequest,
	CodeBodyTooLarge:   http.StatusRequestEntityTooLarge,
	CodeBatchTooLarge:  http.StatusBadRequest,
	CodeGridTooLarge:   http.StatusBadRequest,
	CodeTimeout:        http.StatusGatewayTimeout,
	CodeNotFound:       http.StatusNotFound,
	CodeOverloaded:     http.StatusTooManyRequests,
	CodeQuotaExhausted: http.StatusTooManyRequests,
	CodeCanceled:       http.StatusBadRequest,
	CodeUnsolvable:     http.StatusUnprocessableEntity,
	CodeInternal:       http.StatusInternalServerError,
}

// statusFor maps an apiError code onto its registered HTTP status.
func statusFor(e *apiError) int {
	if st, ok := errorCodeStatus[e.Code]; ok {
		return st
	}
	return http.StatusBadRequest
}

// writeError serializes the one error envelope every endpoint shares:
// {"error": {code, message, field, value, constraint}}, plus a Retry-After
// header when the error carries a backoff hint.
func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, statusFor(e), map[string]*apiError{"error": e})
}

// paramsEnvelope is the request shape every endpoint shares: the canonical
// form nests the evaluation point under "params"; the legacy form inlines
// the EvalItem fields at the top level. A non-nil "params" wins. Endpoint
// options (samples, model, axes, ...) always sit beside the envelope.
type paramsEnvelope struct {
	Params *EvalItem `json:"params"`
	EvalItem
}

// item returns the evaluation point, preferring the canonical nested form.
func (e paramsEnvelope) item() EvalItem {
	if e.Params != nil {
		return *e.Params
	}
	return e.EvalItem
}

// legacyInline reports whether the request used the deprecated top-level
// parameter form: no nested "params" object, but inline EvalItem fields
// present.
func (e paramsEnvelope) legacyInline() bool {
	return e.Params == nil && e.EvalItem != (EvalItem{})
}

// enveloped is any request body carrying the shared parameter envelope.
type enveloped interface {
	legacyInline() bool
}

// legacySunset is the Sunset header (RFC 8594) accompanying deprecated
// inline-parameter responses: the envelope-only cutover date.
const legacySunset = "Sun, 01 Aug 2027 00:00:00 GMT"

// decodeEnvelope is the one decoder behind every enveloped endpoint: it
// reads the size-limited JSON body and, when the request used the legacy
// inline-parameter form, stamps the deprecation headers and counts the
// response in ssnserve_legacy_envelope_total so operators can watch the
// old shape drain before the sunset date.
func (s *Server) decodeEnvelope(w http.ResponseWriter, r *http.Request, dst enveloped) *apiError {
	if aerr := s.decodeJSON(w, r, dst); aerr != nil {
		return aerr
	}
	if dst.legacyInline() {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", legacySunset)
		s.metrics.LegacyEnvelope()
	}
	return nil
}
