package serve

import (
	"container/list"
	"math"
	"strconv"
	"sync"

	"ssnkit/internal/pdn"
	"ssnkit/internal/pkgmodel"
)

// profileKey fingerprints everything a /v1/impedance profile depends on:
// the mesh spec (dimensions, segment and die parasitics, pin model, pad
// and decap placements, observation node) plus the frequency grid and the
// sensitivity flag. Worker count is deliberately excluded — per-point
// values are bit-identical for any worker count because every engine runs
// the same deterministic refactor sequence (DESIGN.md §17), so concurrency
// is not part of the result's identity. Float64s enter by their exact bit
// patterns; the frequency list is folded to its length, endpoints, and a
// 64-bit FNV-1a over all sample bits, which distinguishes log from linear
// spacing and any custom grid shape.
func profileKey(grid *pkgmodel.PDNGrid, freqs []float64, withSens bool) string {
	b := make([]byte, 0, 160)
	appInt := func(v int) {
		b = strconv.AppendInt(append(b, '|'), int64(v), 10)
	}
	appF := func(v float64) {
		b = strconv.AppendUint(append(b, '|'), math.Float64bits(v), 16)
	}
	appInt(grid.Rows)
	appInt(grid.Cols)
	appF(grid.SegR)
	appF(grid.SegL)
	appF(grid.DieC)
	appF(grid.DieR)
	appF(grid.Pin.L)
	appF(grid.Pin.C)
	appF(grid.Pin.R)
	appInt(grid.Obs)
	appInt(len(grid.PadSites))
	for _, p := range grid.PadSites {
		appInt(p)
	}
	appInt(len(grid.DecapSites))
	for _, d := range grid.DecapSites {
		appInt(d.Node)
		appF(d.C)
		appF(d.ESR)
	}
	if withSens {
		b = append(b, "|s"...)
	}
	appInt(len(freqs))
	if n := len(freqs); n > 0 {
		appF(freqs[0])
		appF(freqs[n-1])
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, f := range freqs {
		v := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	b = strconv.AppendUint(append(b, '|'), h, 16)
	return string(b)
}

// ProfileCache is a sharded LRU over computed impedance profiles keyed by
// profileKey. A sweep re-factorizes the MNA system at every frequency —
// milliseconds to seconds of solver work — but the profile is a pure
// function of the mesh spec and frequency grid, so repeated identical
// sweeps (dashboards polling a fixed design, retried requests, load-test
// shapes) collapse to a map lookup. The sharding, eviction, and in-flight
// dedup follow ExtractCache: FNV-1a key distribution over a power-of-two
// number of independently locked shards, per-shard LRU lists, and a
// sync.Once per entry so concurrent misses on one key run the sweep once
// and share the result. Unlike extraction, failed sweeps are NOT cached:
// the usual failure is the requester's own context cancellation, which
// says nothing about the next request, so error entries are removed and
// deduplicated waiters recompute for themselves.
type ProfileCache struct {
	shards  []profileShard
	mask    uint64
	metrics *Metrics
}

type profileShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // of *profileEntry; front = most recent
	byKey    map[string]*list.Element
	// Pad to a cache line so neighbouring shard mutexes do not false-share.
	_ [64]byte
}

type profileEntry struct {
	key  string
	once sync.Once
	prof *pdn.Profile
	err  error
}

// NewProfileCache builds a ProfileCache holding up to capacity profiles in
// total, split across the shards; m may be nil when no metrics are
// collected.
func NewProfileCache(capacity int, m *Metrics) *ProfileCache {
	if capacity < 1 {
		capacity = 1
	}
	n := shardCount(capacity)
	c := &ProfileCache{
		shards:  make([]profileShard, n),
		mask:    uint64(n - 1),
		metrics: m,
	}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = base
		if i < extra {
			sh.capacity++
		}
		sh.ll = list.New()
		sh.byKey = map[string]*list.Element{}
	}
	return c
}

// Get returns the cached profile for the key, running compute on first
// use. Callers share the returned *pdn.Profile and must treat it as
// read-only.
func (c *ProfileCache) Get(key string, compute func() (*pdn.Profile, error)) (*pdn.Profile, error) {
	sh := &c.shards[fnv1a(key)&c.mask]
	sh.mu.Lock()
	if el, ok := sh.byKey[key]; ok {
		sh.ll.MoveToFront(el)
		e := el.Value.(*profileEntry)
		sh.mu.Unlock()
		if c.metrics != nil {
			c.metrics.ObserveImpedanceCache("hit")
		}
		e.once.Do(func() {}) // wait out an in-flight sweep
		if e.err == nil {
			return e.prof, nil
		}
		// The sweep this lookup deduplicated against failed — likely that
		// request's own cancellation, which is no verdict on this one.
		// Compute directly; the failed entry is already being removed.
		return compute()
	}
	e := &profileEntry{key: key}
	sh.byKey[key] = sh.ll.PushFront(e)
	for sh.ll.Len() > sh.capacity {
		oldest := sh.ll.Back()
		sh.ll.Remove(oldest)
		delete(sh.byKey, oldest.Value.(*profileEntry).key)
	}
	sh.mu.Unlock()
	if c.metrics != nil {
		c.metrics.ObserveImpedanceCache("miss")
	}
	// Sweep outside the lock: a slow profile must not serialize hits on
	// other keys. Concurrent eviction is harmless — holders of the entry
	// pointer still see the result.
	e.once.Do(func() {
		e.prof, e.err = compute()
	})
	if e.err != nil {
		c.remove(key, e)
	}
	return e.prof, e.err
}

// remove drops the entry if it is still the one cached under key (a fresh
// entry for the same key must not be collateral damage).
func (c *ProfileCache) remove(key string, e *profileEntry) {
	sh := &c.shards[fnv1a(key)&c.mask]
	sh.mu.Lock()
	if el, ok := sh.byKey[key]; ok && el.Value.(*profileEntry) == e {
		sh.ll.Remove(el)
		delete(sh.byKey, key)
	}
	sh.mu.Unlock()
}

// Len reports the number of cached profiles across all shards.
func (c *ProfileCache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.ll.Len()
		sh.mu.Unlock()
	}
	return total
}

// Shards reports the shard count (observability; tests assert the
// power-of-two clamp).
func (c *ProfileCache) Shards() int { return len(c.shards) }
