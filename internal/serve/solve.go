package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"ssnkit/internal/ssn"
)

// SolveItem is one inverse-design query: the usual evaluation point plus a
// noise budget and the free variable to solve for. Mode "solve" (default)
// returns the boundary value of the variable at which Vmax meets the
// budget; mode "yield" Monte Carlos the process spreads and returns the
// probability that the point meets the budget.
type SolveItem struct {
	EvalItem
	VMaxBudget float64  `json:"vmax_budget"`
	Variable   string   `json:"variable,omitempty"` // n, l, c, slope, rise_time (solve mode)
	Mode       string   `json:"mode,omitempty"`     // "solve" (default) or "yield"
	Lo         *float64 `json:"lo,omitempty"`       // explicit search bracket
	Hi         *float64 `json:"hi,omitempty"`

	// Yield-mode options.
	Samples   int            `json:"samples,omitempty"` // default 10000
	Seed      int64          `json:"seed,omitempty"`
	Workers   int            `json:"workers,omitempty"`
	Variation *VariationSpec `json:"variation,omitempty"` // default K 5%, V0 3%, a 2%
}

// solveRequest accepts a single query (nested "params" or legacy inline
// fields, options beside the envelope) or a batch under "items" — the same
// envelope contract as /v1/maxssn.
type solveRequest struct {
	Items []SolveItem `json:"items"`
	paramsEnvelope
	VMaxBudget float64        `json:"vmax_budget"`
	Variable   string         `json:"variable,omitempty"`
	Mode       string         `json:"mode,omitempty"`
	Lo         *float64       `json:"lo,omitempty"`
	Hi         *float64       `json:"hi,omitempty"`
	Samples    int            `json:"samples,omitempty"`
	Seed       int64          `json:"seed,omitempty"`
	Workers    int            `json:"workers,omitempty"`
	Variation  *VariationSpec `json:"variation,omitempty"`
}

// legacyInline mirrors maxSSNRequest: batches never read the inline fields.
func (q *solveRequest) legacyInline() bool {
	return len(q.Items) == 0 && q.paramsEnvelope.legacyInline()
}

// single assembles the one-item form into a SolveItem.
func (q *solveRequest) single() SolveItem {
	return SolveItem{
		EvalItem:   q.item(),
		VMaxBudget: q.VMaxBudget,
		Variable:   q.Variable,
		Mode:       q.Mode,
		Lo:         q.Lo,
		Hi:         q.Hi,
		Samples:    q.Samples,
		Seed:       q.Seed,
		Workers:    q.Workers,
		Variation:  q.Variation,
	}
}

// yieldResult is the JSON shape of ssn.YieldResult.
type yieldResult struct {
	Budget      float64          `json:"budget"`
	Samples     int              `json:"samples"`
	Pass        int              `json:"pass"`
	Probability float64          `json:"probability"`
	WilsonLo    float64          `json:"wilson_lo"` // 95% Wilson score interval
	WilsonHi    float64          `json:"wilson_hi"`
	Stats       monteCarloResult `json:"stats"`
}

// SolveResult is one /v1/solve answer. In batch responses Index identifies
// the request item; failed items carry Error and zero values elsewhere.
type SolveResult struct {
	Index    int    `json:"index"`
	Mode     string `json:"mode"`
	Variable string `json:"variable,omitempty"`

	// Solve mode: the boundary value and the operating point it lands on.
	Value      float64 `json:"value,omitempty"`
	MaxDrivers int     `json:"max_drivers,omitempty"` // floor(value), variable "n" only
	VMax       float64 `json:"vmax,omitempty"`        // within [vmax_budget-1e-9, vmax_budget]
	Case       string  `json:"case,omitempty"`
	CaseCode   int     `json:"case_code,omitempty"`
	Evals      int     `json:"evals,omitempty"` // closed-form evaluations spent

	// Yield mode.
	Yield *yieldResult `json:"yield,omitempty"`

	Error *apiError `json:"error,omitempty"`
}

// solveBatchResponse is the envelope of a batch inverse query.
type solveBatchResponse struct {
	Count   int           `json:"count"`
	Results []SolveResult `json:"results"`
}

// defaultFreeVariable fills the eval fields the solver overwrites anyway,
// mirroring buildSweep's swept-field defaulting: a query solving for n
// need not supply n, one solving for the edge need not supply an edge.
func defaultFreeVariable(it *SolveItem, v ssn.SolveVar) {
	switch v {
	case ssn.SolveN:
		if it.N == 0 {
			it.N = 1
		}
	case ssn.SolveSlope, ssn.SolveRiseTime:
		if it.Slope == 0 && it.RiseTime == 0 {
			it.RiseTime = 1e-9
		}
	}
}

// solveOne answers one inverse query; errors land in the result so batch
// siblings are unaffected.
func (s *Server) solveOne(ctx context.Context, index int, it SolveItem) SolveResult {
	res := SolveResult{Index: index, Mode: it.Mode}
	if res.Mode == "" {
		res.Mode = "solve"
	}
	switch res.Mode {
	case "solve":
		return s.solveBoundary(it, res)
	case "yield":
		return s.solveYield(ctx, it, res)
	default:
		res.Error = &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("unknown mode %q", it.Mode),
			Field:   "mode", Value: it.Mode, Constraint: `must be "solve" or "yield"`}
		return res
	}
}

// solveBoundary runs a mode "solve" query.
func (s *Server) solveBoundary(it SolveItem, res SolveResult) SolveResult {
	v, err := ssn.ParseSolveVar(it.Variable)
	if err != nil {
		res.Error = toAPIError(err)
		res.Error.Field = "variable"
		return res
	}
	res.Variable = v.String()
	defaultFreeVariable(&it, v)
	p, err := it.EvalItem.resolve(s.cache)
	if err != nil {
		res.Error = toAPIError(err)
		return res
	}
	lo, hi := v.DefaultBracket(p)
	if it.Lo != nil {
		lo = *it.Lo
	}
	if it.Hi != nil {
		hi = *it.Hi
	}
	sol, err := ssn.SolveBracket(p, v, it.VMaxBudget, lo, hi)
	if err != nil {
		res.Error = toAPIError(err)
		return res
	}
	s.metrics.ObserveSolve("solve")
	res.Value = sol.Value
	res.MaxDrivers = sol.MaxDrivers()
	res.VMax = sol.VMax
	res.Case = sol.Case.String()
	res.CaseCode = int(sol.Case)
	res.Evals = sol.Evals
	return res
}

// solveYield runs a mode "yield" query synchronously: the deterministic
// parallel campaign is a closed-form hot loop, so even 10⁵ samples answer
// well inside the request timeout (unlike /v1/montecarlo, sized for 10⁷).
func (s *Server) solveYield(ctx context.Context, it SolveItem, res SolveResult) SolveResult {
	p, err := it.EvalItem.resolve(s.cache)
	if err != nil {
		res.Error = toAPIError(err)
		return res
	}
	n := it.Samples
	if n == 0 {
		n = 10000
	}
	if n > s.cfg.MaxMCSamples {
		res.Error = &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("samples = %d exceeds the %d limit", n, s.cfg.MaxMCSamples),
			Field:   "samples", Value: n,
			Constraint: fmt.Sprintf("at most %d", s.cfg.MaxMCSamples)}
		return res
	}
	spec := it.Variation
	if spec == nil {
		// The paper's process knobs: ±spread on the ASDM triple.
		spec = &VariationSpec{K: 0.05, V0: 0.03, A: 0.02}
	}
	v := ssn.Variation{K: spec.K, V0: spec.V0, A: spec.A, L: spec.L, C: spec.C, Slope: spec.Slope}
	workers := it.Workers
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	y, err := ssn.YieldCtx(ctx, p, v, it.VMaxBudget, n, it.Seed, workers)
	if err != nil {
		if ctx.Err() != nil {
			res.Error = &apiError{Code: CodeTimeout, Message: "yield estimation aborted: " + ctx.Err().Error()}
		} else {
			res.Error = toAPIError(err)
		}
		return res
	}
	s.metrics.ObserveSolve("yield")
	cases := make(map[string]int, len(y.Stats.CaseCounts))
	for cse, cnt := range y.Stats.CaseCounts {
		cases[cse.String()] = cnt
	}
	res.Yield = &yieldResult{
		Budget:      y.Budget,
		Samples:     y.Samples,
		Pass:        y.Pass,
		Probability: y.Probability,
		WilsonLo:    y.WilsonLo,
		WilsonHi:    y.WilsonHi,
		Stats: monteCarloResult{Samples: y.Stats.Samples, Mean: y.Stats.Mean,
			StdDev: y.Stats.StdDev, Min: y.Stats.Min, Max: y.Stats.Max,
			P95: y.Stats.P95, P99: y.Stats.P99, Cases: cases},
	}
	return res
}

// handleSolve serves POST /v1/solve: inverse design (what value of one
// free variable meets the noise budget) and yield estimation (what
// fraction of process draws meets it), single or batched through the same
// envelope as /v1/maxssn.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if aerr := s.decodeEnvelope(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if len(req.Items) == 0 {
		res := s.solveOne(ctx, 0, req.single())
		if res.Error != nil {
			writeError(w, res.Error)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		writeError(w, &apiError{Code: CodeBatchTooLarge,
			Message:    fmt.Sprintf("batch of %d exceeds the %d-item limit", len(req.Items), s.cfg.MaxBatch),
			Field:      "items",
			Value:      len(req.Items),
			Constraint: fmt.Sprintf("at most %d items", s.cfg.MaxBatch),
		})
		return
	}
	results := make([]SolveResult, len(req.Items))
	var wg sync.WaitGroup
	for i := range req.Items {
		if err := s.pool.acquire(ctx); err != nil {
			for j := i; j < len(req.Items); j++ {
				results[j] = SolveResult{Index: j,
					Error: &apiError{Code: CodeTimeout, Message: "solve aborted: " + err.Error()}}
			}
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer s.pool.release()
			results[i] = s.solveOne(ctx, i, req.Items[i])
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, solveBatchResponse{Count: len(results), Results: results})
}
