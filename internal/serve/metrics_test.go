package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsRendering(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest("/v1/maxssn", 200, 300*time.Microsecond)
	m.ObserveRequest("/v1/maxssn", 200, 2*time.Millisecond)
	m.ObserveRequest("/v1/maxssn", 400, 50*time.Microsecond)
	m.ObserveRequest("/healthz", 200, 10*time.Second) // beyond the last bucket
	m.CacheHit()
	m.CacheHit()
	m.CacheMiss()
	m.JobTransition("queued")
	m.JobTransition("running")
	m.JobTransition("done")

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`ssnserve_requests_total{path="/healthz",code="200"} 1`,
		`ssnserve_requests_total{path="/v1/maxssn",code="200"} 2`,
		`ssnserve_requests_total{path="/v1/maxssn",code="400"} 1`,
		`ssnserve_request_duration_seconds_bucket{path="/v1/maxssn",le="0.0005"} 2`,
		`ssnserve_request_duration_seconds_bucket{path="/v1/maxssn",le="+Inf"} 3`,
		`ssnserve_request_duration_seconds_count{path="/v1/maxssn"} 3`,
		`ssnserve_request_duration_seconds_bucket{path="/healthz",le="2.5"} 0`,
		`ssnserve_request_duration_seconds_bucket{path="/healthz",le="+Inf"} 1`,
		"ssnserve_cache_hits_total 2",
		"ssnserve_cache_misses_total 1",
		`ssnserve_jobs_total{state="done"} 1`,
		"ssnserve_jobs_in_flight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Buckets must be cumulative and ordered.
	if strings.Index(text, `le="0.0001"`) > strings.Index(text, `le="0.001"`) {
		t.Error("buckets out of order")
	}
}

func TestMetricsDeterministicOutput(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest("/b", 200, time.Millisecond)
	m.ObserveRequest("/a", 200, time.Millisecond)
	m.JobTransition("running")
	m.JobTransition("queued")
	var one, two bytes.Buffer
	if _, err := m.WriteTo(&one); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two renders differ")
	}
	if strings.Index(one.String(), `path="/a"`) > strings.Index(one.String(), `path="/b"`) {
		t.Error("series not sorted by label")
	}
}

func TestMetricsInFlightGaugeFloor(t *testing.T) {
	m := NewMetrics()
	m.JobTransition("done") // transition without a matching running
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ssnserve_jobs_in_flight 0") {
		t.Error("gauge went negative")
	}
}

func TestMetricsConcurrentUpdates(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.ObserveRequest("/v1/maxssn", 200, time.Duration(i)*time.Microsecond)
				m.CacheHit()
				m.JobTransition("queued")
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `ssnserve_requests_total{path="/v1/maxssn",code="200"} 1600`) {
		t.Errorf("lost updates:\n%s", buf.String())
	}
}
