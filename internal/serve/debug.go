package serve

import (
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
)

// mountDebug attaches the opt-in diagnostics surface: the standard
// net/http/pprof handlers under /debug/pprof/ and a runtime/metrics
// snapshot under /debug/runtime. Gated behind Config.EnablePprof because
// profiles expose heap contents, symbol names and build paths — this
// surface is for loopback or otherwise access-controlled listeners, never
// one facing untrusted clients.
func (s *Server) mountDebug() {
	// pprof.Index also routes the named profiles (heap, goroutine, block,
	// mutex, allocs, threadcreate) under the /debug/pprof/ subtree.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("GET /debug/runtime", s.handleRuntime)
}

// handleRuntime serves GET /debug/runtime: a point-in-time snapshot of
// every scalar runtime/metrics value as a flat JSON object, metric name to
// value. Histogram-kind metrics are summarized by bucket counts being
// omitted — scalar gauges (heap bytes, GC cycles, goroutines, scheduler
// latencies' totals) are what a quick curl during an incident needs; full
// distributions come from the pprof profiles next door.
func (s *Server) handleRuntime(w http.ResponseWriter, r *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make(map[string]any, len(samples))
	for _, smp := range samples {
		switch smp.Value.Kind() {
		case metrics.KindUint64:
			out[smp.Name] = smp.Value.Uint64()
		case metrics.KindFloat64:
			out[smp.Name] = smp.Value.Float64()
		}
	}
	writeJSON(w, http.StatusOK, out)
}
