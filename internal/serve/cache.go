package serve

import (
	"container/list"
	"math"
	"runtime"
	"sync"

	"ssnkit/internal/device"
	"ssnkit/internal/fit"
	"ssnkit/internal/ssn"
)

// fnv1a hashes a key with 64-bit FNV-1a; it picks the shard for a string
// key without allocating.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// shardCount picks a power-of-two shard count: enough shards that
// GOMAXPROCS goroutines rarely contend, but never more shards than cache
// slots (every shard must be able to hold at least one entry).
func shardCount(capacity int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	for n > 1 && n > capacity {
		n >>= 1
	}
	return n
}

// ExtractCache is a sharded LRU over ASDM extractions keyed by
// device.ExtractSpec.Key(). Extraction re-fits a least-squares problem on
// a (Vg, Vs) grid per call — microseconds of closed-form evaluation hide
// behind milliseconds of fitting when every batch item re-extracts — but
// the result is a pure function of the spec, so a small cache turns the
// common case (thousands of items on a handful of process corners) into
// map lookups. Keys are FNV-1a-distributed over a power-of-two number of
// independently locked shards so concurrent batch items on different
// corners do not serialize on one mutex. Concurrent misses on the same key
// are still deduplicated: the first goroutine extracts inside the entry's
// sync.Once, later ones block on it and share the result. Failed
// extractions are cached too (the result for a bad spec never changes).
//
// The type is exported because it is the extraction cache for every bulk
// consumer, not just the HTTP service: cmd/ssnsweep shares it with the
// sweep engine so a size-axis sweep re-fits each width once.
type ExtractCache struct {
	shards  []extractShard
	mask    uint64
	metrics *Metrics
}

// extractShard is one independently locked slice of the cache: a classic
// mutex-guarded LRU with its own share of the total capacity.
type extractShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // of *cacheEntry; front = most recent
	byKey    map[string]*list.Element
	// Pad to a cache line so neighbouring shard mutexes do not false-share.
	_ [64]byte
}

type cacheEntry struct {
	key   string
	once  sync.Once
	model device.ASDM
	stats fit.Stats
	err   error
}

// NewExtractCache builds an ExtractCache holding up to capacity entries in
// total, split across the shards; m may be nil when no metrics are
// collected (CLI use).
func NewExtractCache(capacity int, m *Metrics) *ExtractCache {
	if capacity < 1 {
		capacity = 1
	}
	n := shardCount(capacity)
	c := &ExtractCache{
		shards:  make([]extractShard, n),
		mask:    uint64(n - 1),
		metrics: m,
	}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = base
		if i < extra {
			sh.capacity++
		}
		sh.ll = list.New()
		sh.byKey = map[string]*list.Element{}
	}
	return c
}

// Get returns the cached extraction for the spec, extracting on first use.
func (c *ExtractCache) Get(spec device.ExtractSpec) (device.ASDM, fit.Stats, error) {
	key := spec.Key()
	sh := &c.shards[fnv1a(key)&c.mask]
	sh.mu.Lock()
	if el, ok := sh.byKey[key]; ok {
		sh.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		sh.mu.Unlock()
		if c.metrics != nil {
			c.metrics.CacheHit()
		}
		e.once.Do(func() {}) // wait out an in-flight extraction
		return e.model, e.stats, e.err
	}
	e := &cacheEntry{key: key}
	sh.byKey[key] = sh.ll.PushFront(e)
	for sh.ll.Len() > sh.capacity {
		oldest := sh.ll.Back()
		sh.ll.Remove(oldest)
		delete(sh.byKey, oldest.Value.(*cacheEntry).key)
	}
	sh.mu.Unlock()
	if c.metrics != nil {
		c.metrics.CacheMiss()
	}
	// Extract outside the lock: a slow fit must not serialize hits on
	// other keys. Evicting this entry concurrently is harmless — holders
	// of the pointer still see the result.
	e.once.Do(func() {
		e.model, e.stats, e.err = spec.Extract()
	})
	return e.model, e.stats, e.err
}

// Len reports the number of cached entries across all shards.
func (c *ExtractCache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += sh.ll.Len()
		sh.mu.Unlock()
	}
	return total
}

// Shards reports the shard count (observability; tests assert the
// power-of-two clamp).
func (c *ExtractCache) Shards() int { return len(c.shards) }

// PlanCache memoizes compiled evaluation plans keyed by the full Params
// value, sharded like ExtractCache. /v1/maxssn batches repeat parameter
// points heavily (the same corner evaluated under different sensitivity
// flags, retries, dashboards polling a fixed design), and a compiled plan
// is a pure function of Params — so the cache replaces a per-request
// model construction with one map lookup on a comparable key.
//
// Each shard is a plain map with a hard size cap; when a shard fills, it
// is cleared wholesale rather than tracking recency. Plan compilation is
// tens of nanoseconds — cheap enough that occasionally recomputing a hot
// entry beats paying LRU bookkeeping on every hit.
type PlanCache struct {
	shards []planShard
	mask   uint64
}

type planShard struct {
	mu  sync.Mutex
	cap int
	m   map[ssn.Params]planEntry
	_   [64]byte // cache-line pad, as in extractShard
}

// planEntry is the cached answer set for one parameter point: everything
// evalOne reports that is not a trivial function of Params itself. Failed
// compilations are cached too — validation is deterministic.
type planEntry struct {
	vmax float64
	cse  ssn.Case
	tmax float64
	err  error
}

// NewPlanCache builds a PlanCache holding up to capacity entries in total.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	n := shardCount(capacity)
	pc := &PlanCache{
		shards: make([]planShard, n),
		mask:   uint64(n - 1),
	}
	base, extra := capacity/n, capacity%n
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.cap = base
		if i < extra {
			sh.cap++
		}
		sh.m = make(map[ssn.Params]planEntry)
	}
	return pc
}

// hashParams mixes every Params field (float64s by their bit patterns)
// with 64-bit FNV-1a to pick a shard. Equal Params always land on the
// same shard; near-equal ones spread.
func hashParams(p ssn.Params) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(p.N))
	mix(math.Float64bits(p.Dev.K))
	mix(math.Float64bits(p.Dev.V0))
	mix(math.Float64bits(p.Dev.A))
	mix(math.Float64bits(p.Vdd))
	mix(math.Float64bits(p.Slope))
	mix(math.Float64bits(p.L))
	mix(math.Float64bits(p.C))
	return h
}

// Get returns the Table 1 answers for p, compiling a plan on first use.
// Concurrent misses on the same key may compile twice; compilation is
// deterministic and cheap, so the duplicates agree and the last write
// wins harmlessly.
func (pc *PlanCache) Get(p ssn.Params) (vmax float64, cse ssn.Case, tmax float64, err error) {
	sh := &pc.shards[hashParams(p)&pc.mask]
	sh.mu.Lock()
	if e, ok := sh.m[p]; ok {
		sh.mu.Unlock()
		return e.vmax, e.cse, e.tmax, e.err
	}
	sh.mu.Unlock()

	var pl ssn.Plan
	var e planEntry
	if cerr := pl.Compile(p, ssn.PlanFixed); cerr != nil {
		e = planEntry{err: cerr}
	} else {
		e = planEntry{vmax: pl.VMax(), cse: pl.Case(), tmax: pl.VMaxTime()}
	}

	sh.mu.Lock()
	if len(sh.m) >= sh.cap {
		clear(sh.m)
	}
	sh.m[p] = e
	sh.mu.Unlock()
	return e.vmax, e.cse, e.tmax, e.err
}

// Len reports the number of cached plans across all shards.
func (pc *PlanCache) Len() int {
	total := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}
