package serve

import (
	"container/list"
	"sync"

	"ssnkit/internal/device"
	"ssnkit/internal/fit"
)

// ExtractCache is a mutex-guarded LRU over ASDM extractions keyed by
// device.ExtractSpec.Key(). Extraction re-fits a least-squares problem on
// a (Vg, Vs) grid per call — microseconds of closed-form evaluation hide
// behind milliseconds of fitting when every batch item re-extracts — but
// the result is a pure function of the spec, so a small cache turns the
// common case (thousands of items on a handful of process corners) into
// map lookups. Concurrent misses on the same key are deduplicated: the
// first goroutine extracts inside the entry's sync.Once, later ones block
// on it and share the result. Failed extractions are cached too (the
// result for a bad spec never changes).
//
// The type is exported because it is the extraction cache for every bulk
// consumer, not just the HTTP service: cmd/ssnsweep shares it with the
// sweep engine so a size-axis sweep re-fits each width once.
type ExtractCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // of *cacheEntry; front = most recent
	byKey    map[string]*list.Element
	metrics  *Metrics
}

type cacheEntry struct {
	key   string
	once  sync.Once
	model device.ASDM
	stats fit.Stats
	err   error
}

// NewExtractCache builds an ExtractCache holding up to capacity entries;
// m may be nil when no metrics are collected (CLI use).
func NewExtractCache(capacity int, m *Metrics) *ExtractCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ExtractCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    map[string]*list.Element{},
		metrics:  m,
	}
}

// Get returns the cached extraction for the spec, extracting on first use.
func (c *ExtractCache) Get(spec device.ExtractSpec) (device.ASDM, fit.Stats, error) {
	key := spec.Key()
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		if c.metrics != nil {
			c.metrics.CacheHit()
		}
		e.once.Do(func() {}) // wait out an in-flight extraction
		return e.model, e.stats, e.err
	}
	e := &cacheEntry{key: key}
	c.byKey[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.CacheMiss()
	}
	// Extract outside the lock: a slow fit must not serialize hits on
	// other keys. Evicting this entry concurrently is harmless — holders
	// of the pointer still see the result.
	e.once.Do(func() {
		e.model, e.stats, e.err = spec.Extract()
	})
	return e.model, e.stats, e.err
}

// Len reports the number of cached entries.
func (c *ExtractCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
