package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. The range spans
// microsecond closed-form evaluations up to multi-second Monte Carlo jobs.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Metrics is the service's instrumentation: request counters and latency
// histograms per route, extraction-cache hit/miss counters and job
// state-transition counters. It renders itself in the Prometheus text
// exposition format on /metrics without importing a client library — the
// format is three line shapes and the repo stays dependency-free.
type Metrics struct {
	mu           sync.Mutex
	requests     map[requestKey]uint64
	latency      map[string]*routeHistogram
	cacheHits    uint64
	cacheMisses  uint64
	jobsByState  map[string]uint64
	jobsInFlight int64

	sweeps        uint64
	sweepsAborted uint64
	sweepPoints   uint64
	sweepChunks   uint64
	sweepRefined  uint64

	admissionQueueDepth int
	admissionShed       map[string]uint64

	shards      uint64
	shardPoints uint64
	distSweeps  uint64

	legacyEnvelope uint64
	solvesByMode   map[string]uint64

	impedanceByMode map[string]uint64
	impedancePoints uint64
	impedanceCache  map[string]uint64

	columnarPayloads map[columnarKey]uint64
}

// columnarKey labels one SSNC payload direction on one route.
type columnarKey struct {
	path string
	dir  string // "in" (request body) or "out" (response body)
}

type requestKey struct {
	path string
	code int
}

type routeHistogram struct {
	counts []uint64 // one per bucket, non-cumulative
	inf    uint64
	sum    float64
	total  uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:      map[requestKey]uint64{},
		latency:       map[string]*routeHistogram{},
		jobsByState:   map[string]uint64{},
		admissionShed: map[string]uint64{},
		solvesByMode:  map[string]uint64{},

		impedanceByMode: map[string]uint64{},
		impedanceCache:  map[string]uint64{},

		columnarPayloads: map[columnarKey]uint64{},
	}
}

// ObserveColumnar counts one SSNC columnar payload on a route, by
// direction ("in" for a decoded request body, "out" for an encoded
// response body).
func (m *Metrics) ObserveColumnar(path, dir string) {
	m.mu.Lock()
	m.columnarPayloads[columnarKey{path, dir}]++
	m.mu.Unlock()
}

// ColumnarCounts returns the columnar payload counters (for tests).
func (m *Metrics) ColumnarCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.columnarPayloads))
	for k, v := range m.columnarPayloads {
		out[k.path+" "+k.dir] = v
	}
	return out
}

// ObserveRequest records one finished HTTP request.
func (m *Metrics) ObserveRequest(path string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{path, code}]++
	h := m.latency[path]
	if h == nil {
		h = &routeHistogram{counts: make([]uint64, len(latencyBuckets))}
		m.latency[path] = h
	}
	h.sum += secs
	h.total++
	for i, ub := range latencyBuckets {
		if secs <= ub {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// CacheHit / CacheMiss record extraction-cache outcomes.
func (m *Metrics) CacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

// CacheMiss records an extraction-cache miss.
func (m *Metrics) CacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// JobTransition counts a job entering the named state; running jobs also
// move the in-flight gauge.
func (m *Metrics) JobTransition(state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsByState[state]++
	switch state {
	case "running":
		m.jobsInFlight++
	case "done", "failed", "canceled":
		if m.jobsInFlight > 0 {
			m.jobsInFlight--
		}
	}
}

// ObserveSweep records one finished (or aborted) /v1/sweep run.
func (m *Metrics) ObserveSweep(points, chunks, refined int, completed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweeps++
	if !completed {
		m.sweepsAborted++
	}
	m.sweepPoints += uint64(points)
	m.sweepChunks += uint64(chunks)
	m.sweepRefined += uint64(refined)
}

// AdmissionShed counts one shed request by reason ("queue_full", "quota").
func (m *Metrics) AdmissionShed(reason string) {
	m.mu.Lock()
	m.admissionShed[reason]++
	m.mu.Unlock()
}

// AdmissionQueueDepth records the current admission-queue depth gauge.
func (m *Metrics) AdmissionQueueDepth(depth int) {
	m.mu.Lock()
	m.admissionQueueDepth = depth
	m.mu.Unlock()
}

// ShedCounts returns the shed counters by reason (for tests).
func (m *Metrics) ShedCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.admissionShed))
	for k, v := range m.admissionShed {
		out[k] = v
	}
	return out
}

// LegacyEnvelope counts one response to a deprecated inline-parameter
// (non-nested) request, so operators can watch the old wire shape drain.
func (m *Metrics) LegacyEnvelope() {
	m.mu.Lock()
	m.legacyEnvelope++
	m.mu.Unlock()
}

// LegacyEnvelopeCount returns the deprecated-request counter (for tests).
func (m *Metrics) LegacyEnvelopeCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.legacyEnvelope
}

// ObserveSolve counts one /v1/solve item by mode ("solve", "yield").
func (m *Metrics) ObserveSolve(mode string) {
	m.mu.Lock()
	m.solvesByMode[mode]++
	m.mu.Unlock()
}

// ObserveImpedance counts one /v1/impedance request by mode ("point",
// "sweep", "optimize") and the frequency points it evaluates.
func (m *Metrics) ObserveImpedance(mode string, points int) {
	m.mu.Lock()
	m.impedanceByMode[mode]++
	m.impedancePoints += uint64(points)
	m.mu.Unlock()
}

// ImpedanceCounts returns the impedance counters (for tests).
func (m *Metrics) ImpedanceCounts() (byMode map[string]uint64, points uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byMode = make(map[string]uint64, len(m.impedanceByMode))
	for k, v := range m.impedanceByMode {
		byMode[k] = v
	}
	return byMode, m.impedancePoints
}

// ObserveImpedanceCache counts one sweep-profile cache lookup by outcome
// ("hit" or "miss").
func (m *Metrics) ObserveImpedanceCache(outcome string) {
	m.mu.Lock()
	m.impedanceCache[outcome]++
	m.mu.Unlock()
}

// ImpedanceCacheCounts returns the profile-cache counters (for tests).
func (m *Metrics) ImpedanceCacheCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.impedanceCache))
	for k, v := range m.impedanceCache {
		out[k] = v
	}
	return out
}

// ObserveShard records one /v1/shard evaluation of the given point count.
func (m *Metrics) ObserveShard(points int) {
	m.mu.Lock()
	m.shards++
	m.shardPoints += uint64(points)
	m.mu.Unlock()
}

// ObserveDistSweep records one coordinator run started on /v1/distsweep.
func (m *Metrics) ObserveDistSweep() {
	m.mu.Lock()
	m.distSweeps++
	m.mu.Unlock()
}

// SweepCounts returns the sweep counters (for tests).
func (m *Metrics) SweepCounts() (sweeps, aborted, points uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweeps, m.sweepsAborted, m.sweepPoints
}

// CacheRates returns the hit/miss counters (for tests and health output).
func (m *Metrics) CacheRates() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMisses
}

// WriteTo renders the registry in the Prometheus text format. Series are
// emitted in sorted label order so the output is deterministic.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cw := &countingWriter{w: w}

	fmt.Fprintln(cw, "# HELP ssnserve_requests_total HTTP requests by route and status code.")
	fmt.Fprintln(cw, "# TYPE ssnserve_requests_total counter")
	reqKeys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].path != reqKeys[j].path {
			return reqKeys[i].path < reqKeys[j].path
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	for _, k := range reqKeys {
		fmt.Fprintf(cw, "ssnserve_requests_total{path=%q,code=\"%d\"} %d\n", k.path, k.code, m.requests[k])
	}

	fmt.Fprintln(cw, "# HELP ssnserve_request_duration_seconds Request latency by route.")
	fmt.Fprintln(cw, "# TYPE ssnserve_request_duration_seconds histogram")
	paths := make([]string, 0, len(m.latency))
	for p := range m.latency {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		h := m.latency[p]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(cw, "ssnserve_request_duration_seconds_bucket{path=%q,le=%q} %d\n",
				p, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		fmt.Fprintf(cw, "ssnserve_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", p, h.total)
		fmt.Fprintf(cw, "ssnserve_request_duration_seconds_sum{path=%q} %g\n", p, h.sum)
		fmt.Fprintf(cw, "ssnserve_request_duration_seconds_count{path=%q} %d\n", p, h.total)
	}

	fmt.Fprintln(cw, "# HELP ssnserve_cache_hits_total ASDM extraction cache hits.")
	fmt.Fprintln(cw, "# TYPE ssnserve_cache_hits_total counter")
	fmt.Fprintf(cw, "ssnserve_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintln(cw, "# HELP ssnserve_cache_misses_total ASDM extraction cache misses.")
	fmt.Fprintln(cw, "# TYPE ssnserve_cache_misses_total counter")
	fmt.Fprintf(cw, "ssnserve_cache_misses_total %d\n", m.cacheMisses)

	fmt.Fprintln(cw, "# HELP ssnserve_sweeps_total Grid sweeps started.")
	fmt.Fprintln(cw, "# TYPE ssnserve_sweeps_total counter")
	fmt.Fprintf(cw, "ssnserve_sweeps_total %d\n", m.sweeps)
	fmt.Fprintln(cw, "# HELP ssnserve_sweeps_aborted_total Grid sweeps cancelled mid-stream.")
	fmt.Fprintln(cw, "# TYPE ssnserve_sweeps_aborted_total counter")
	fmt.Fprintf(cw, "ssnserve_sweeps_aborted_total %d\n", m.sweepsAborted)
	fmt.Fprintln(cw, "# HELP ssnserve_sweep_points_total Sweep points evaluated.")
	fmt.Fprintln(cw, "# TYPE ssnserve_sweep_points_total counter")
	fmt.Fprintf(cw, "ssnserve_sweep_points_total %d\n", m.sweepPoints)
	fmt.Fprintln(cw, "# HELP ssnserve_sweep_chunks_total Sweep chunks dispatched.")
	fmt.Fprintln(cw, "# TYPE ssnserve_sweep_chunks_total counter")
	fmt.Fprintf(cw, "ssnserve_sweep_chunks_total %d\n", m.sweepChunks)
	fmt.Fprintln(cw, "# HELP ssnserve_sweep_refined_points_total Adaptive refinement points emitted.")
	fmt.Fprintln(cw, "# TYPE ssnserve_sweep_refined_points_total counter")
	fmt.Fprintf(cw, "ssnserve_sweep_refined_points_total %d\n", m.sweepRefined)

	fmt.Fprintln(cw, "# HELP ssnserve_admission_queue_depth Requests waiting for an admission slot.")
	fmt.Fprintln(cw, "# TYPE ssnserve_admission_queue_depth gauge")
	fmt.Fprintf(cw, "ssnserve_admission_queue_depth %d\n", m.admissionQueueDepth)
	fmt.Fprintln(cw, "# HELP ssnserve_admission_shed_total Requests shed with 429 by reason.")
	fmt.Fprintln(cw, "# TYPE ssnserve_admission_shed_total counter")
	reasons := make([]string, 0, len(m.admissionShed))
	for r := range m.admissionShed {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(cw, "ssnserve_admission_shed_total{reason=%q} %d\n", r, m.admissionShed[r])
	}

	fmt.Fprintln(cw, "# HELP ssnserve_shards_total Distributed sweep shards evaluated.")
	fmt.Fprintln(cw, "# TYPE ssnserve_shards_total counter")
	fmt.Fprintf(cw, "ssnserve_shards_total %d\n", m.shards)
	fmt.Fprintln(cw, "# HELP ssnserve_shard_points_total Points evaluated inside shard requests.")
	fmt.Fprintln(cw, "# TYPE ssnserve_shard_points_total counter")
	fmt.Fprintf(cw, "ssnserve_shard_points_total %d\n", m.shardPoints)
	fmt.Fprintln(cw, "# HELP ssnserve_distsweeps_total Coordinator runs started on /v1/distsweep.")
	fmt.Fprintln(cw, "# TYPE ssnserve_distsweeps_total counter")
	fmt.Fprintf(cw, "ssnserve_distsweeps_total %d\n", m.distSweeps)

	fmt.Fprintln(cw, "# HELP ssnserve_legacy_envelope_total Responses to deprecated inline-parameter requests.")
	fmt.Fprintln(cw, "# TYPE ssnserve_legacy_envelope_total counter")
	fmt.Fprintf(cw, "ssnserve_legacy_envelope_total %d\n", m.legacyEnvelope)
	fmt.Fprintln(cw, "# HELP ssnserve_solves_total Inverse-design items answered on /v1/solve by mode.")
	fmt.Fprintln(cw, "# TYPE ssnserve_solves_total counter")
	modes := make([]string, 0, len(m.solvesByMode))
	for md := range m.solvesByMode {
		modes = append(modes, md)
	}
	sort.Strings(modes)
	for _, md := range modes {
		fmt.Fprintf(cw, "ssnserve_solves_total{mode=%q} %d\n", md, m.solvesByMode[md])
	}
	fmt.Fprintln(cw, "# HELP ssnserve_impedance_total PDN impedance requests on /v1/impedance by mode.")
	fmt.Fprintln(cw, "# TYPE ssnserve_impedance_total counter")
	impModes := make([]string, 0, len(m.impedanceByMode))
	for md := range m.impedanceByMode {
		impModes = append(impModes, md)
	}
	sort.Strings(impModes)
	for _, md := range impModes {
		fmt.Fprintf(cw, "ssnserve_impedance_total{mode=%q} %d\n", md, m.impedanceByMode[md])
	}
	fmt.Fprintln(cw, "# HELP ssnserve_impedance_points_total Impedance frequency points evaluated.")
	fmt.Fprintln(cw, "# TYPE ssnserve_impedance_points_total counter")
	fmt.Fprintf(cw, "ssnserve_impedance_points_total %d\n", m.impedancePoints)
	fmt.Fprintln(cw, "# HELP ssnserve_impedance_cache_total Sweep-profile cache lookups by outcome.")
	fmt.Fprintln(cw, "# TYPE ssnserve_impedance_cache_total counter")
	cacheOutcomes := make([]string, 0, len(m.impedanceCache))
	for oc := range m.impedanceCache {
		cacheOutcomes = append(cacheOutcomes, oc)
	}
	sort.Strings(cacheOutcomes)
	for _, oc := range cacheOutcomes {
		fmt.Fprintf(cw, "ssnserve_impedance_cache_total{outcome=%q} %d\n", oc, m.impedanceCache[oc])
	}

	fmt.Fprintln(cw, "# HELP ssnserve_columnar_payloads_total SSNC columnar payloads by route and direction.")
	fmt.Fprintln(cw, "# TYPE ssnserve_columnar_payloads_total counter")
	colKeys := make([]columnarKey, 0, len(m.columnarPayloads))
	for k := range m.columnarPayloads {
		colKeys = append(colKeys, k)
	}
	sort.Slice(colKeys, func(i, j int) bool {
		if colKeys[i].path != colKeys[j].path {
			return colKeys[i].path < colKeys[j].path
		}
		return colKeys[i].dir < colKeys[j].dir
	})
	for _, k := range colKeys {
		fmt.Fprintf(cw, "ssnserve_columnar_payloads_total{path=%q,dir=%q} %d\n", k.path, k.dir, m.columnarPayloads[k])
	}

	fmt.Fprintln(cw, "# HELP ssnserve_jobs_total Job state transitions.")
	fmt.Fprintln(cw, "# TYPE ssnserve_jobs_total counter")
	states := make([]string, 0, len(m.jobsByState))
	for s := range m.jobsByState {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(cw, "ssnserve_jobs_total{state=%q} %d\n", s, m.jobsByState[s])
	}
	fmt.Fprintln(cw, "# HELP ssnserve_jobs_in_flight Jobs currently running.")
	fmt.Fprintln(cw, "# TYPE ssnserve_jobs_in_flight gauge")
	fmt.Fprintf(cw, "ssnserve_jobs_in_flight %d\n", m.jobsInFlight)

	return cw.n, cw.err
}

// countingWriter tracks bytes written and the first error, so WriteTo can
// satisfy io.WriterTo without error plumbing at every Fprintf.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
