package serve

import (
	"sync"
	"testing"

	"ssnkit/internal/device"
)

func TestExtractCacheHitMissAndEquivalence(t *testing.T) {
	m := NewMetrics()
	c := NewExtractCache(8, m)
	spec := device.ExtractSpec{Process: "c018", Corner: device.FF}
	a, _, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cached result diverged: %v vs %v", a, b)
	}
	direct, _, err := spec.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if a != direct {
		t.Errorf("cache changed the model: %v vs %v", a, direct)
	}
	if hits, misses := m.CacheRates(); hits != 1 || misses != 1 {
		t.Errorf("hits %d misses %d, want 1/1", hits, misses)
	}
}

func TestExtractCacheEviction(t *testing.T) {
	c := NewExtractCache(2, nil)
	specs := []device.ExtractSpec{
		{Process: "c018"}, {Process: "c025"}, {Process: "c035"},
	}
	for _, s := range specs {
		if _, _, err := c.Get(s); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("cache len %d, want 2 after eviction", c.Len())
	}
	// The evicted oldest entry re-extracts without error.
	if _, _, err := c.Get(specs[0]); err != nil {
		t.Fatal(err)
	}
}

func TestExtractCacheCachesFailures(t *testing.T) {
	m := NewMetrics()
	c := NewExtractCache(4, m)
	bad := device.ExtractSpec{Process: "c404"}
	if _, _, err := c.Get(bad); err == nil {
		t.Fatal("unknown process must error")
	}
	if _, _, err := c.Get(bad); err == nil {
		t.Fatal("cached failure must still error")
	}
	if hits, misses := m.CacheRates(); hits != 1 || misses != 1 {
		t.Errorf("failure not cached: hits %d misses %d", hits, misses)
	}
}

func TestExtractCacheConcurrentSameKey(t *testing.T) {
	m := NewMetrics()
	c := NewExtractCache(8, m)
	spec := device.ExtractSpec{Process: "c025", Corner: device.SS}
	var wg sync.WaitGroup
	results := make([]device.ASDM, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, err := c.Get(spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw a different model", i)
		}
	}
	// Concurrent first access dedupes to exactly one miss.
	if _, misses := m.CacheRates(); misses != 1 {
		t.Errorf("misses %d, want 1 (in-flight dedup)", misses)
	}
}

func TestExtractCacheConcurrentManyKeys(t *testing.T) {
	c := NewExtractCache(4, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				spec := device.ExtractSpec{
					Process: []string{"c018", "c025", "c035"}[(g+i)%3],
					Corner:  device.Corner((g + i) % 3),
					Size:    float64(1 + i%3),
				}
				if _, _, err := c.Get(spec); err != nil {
					t.Errorf("%+v: %v", spec, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}

func BenchmarkExtractUncached(b *testing.B) {
	spec := device.ExtractSpec{Process: "c018"}
	for i := 0; i < b.N; i++ {
		if _, _, err := spec.Extract(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractCached(b *testing.B) {
	c := NewExtractCache(8, nil)
	spec := device.ExtractSpec{Process: "c018"}
	if _, _, err := c.Get(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(spec); err != nil {
			b.Fatal(err)
		}
	}
}
