package serve

import (
	"sync"
	"testing"

	"ssnkit/internal/device"
	"ssnkit/internal/ssn"
)

func TestExtractCacheHitMissAndEquivalence(t *testing.T) {
	m := NewMetrics()
	c := NewExtractCache(8, m)
	spec := device.ExtractSpec{Process: "c018", Corner: device.FF}
	a, _, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cached result diverged: %v vs %v", a, b)
	}
	direct, _, err := spec.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if a != direct {
		t.Errorf("cache changed the model: %v vs %v", a, direct)
	}
	if hits, misses := m.CacheRates(); hits != 1 || misses != 1 {
		t.Errorf("hits %d misses %d, want 1/1", hits, misses)
	}
}

func TestExtractCacheEviction(t *testing.T) {
	c := NewExtractCache(2, nil)
	specs := []device.ExtractSpec{
		{Process: "c018"}, {Process: "c025"}, {Process: "c035"},
	}
	for _, s := range specs {
		if _, _, err := c.Get(s); err != nil {
			t.Fatal(err)
		}
	}
	// Sharding splits the capacity, so the exact count after eviction
	// depends on how the three keys hash across shards — the invariant is
	// the total never exceeds capacity and eviction actually happened.
	if n := c.Len(); n > 2 || n < 1 {
		t.Errorf("cache len %d, want within [1, 2] after eviction", n)
	}
	// The evicted oldest entry re-extracts without error.
	if _, _, err := c.Get(specs[0]); err != nil {
		t.Fatal(err)
	}
}

func TestExtractCacheCachesFailures(t *testing.T) {
	m := NewMetrics()
	c := NewExtractCache(4, m)
	bad := device.ExtractSpec{Process: "c404"}
	if _, _, err := c.Get(bad); err == nil {
		t.Fatal("unknown process must error")
	}
	if _, _, err := c.Get(bad); err == nil {
		t.Fatal("cached failure must still error")
	}
	if hits, misses := m.CacheRates(); hits != 1 || misses != 1 {
		t.Errorf("failure not cached: hits %d misses %d", hits, misses)
	}
}

func TestExtractCacheConcurrentSameKey(t *testing.T) {
	m := NewMetrics()
	c := NewExtractCache(8, m)
	spec := device.ExtractSpec{Process: "c025", Corner: device.SS}
	var wg sync.WaitGroup
	results := make([]device.ASDM, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, err := c.Get(spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw a different model", i)
		}
	}
	// Concurrent first access dedupes to exactly one miss.
	if _, misses := m.CacheRates(); misses != 1 {
		t.Errorf("misses %d, want 1 (in-flight dedup)", misses)
	}
}

func TestExtractCacheConcurrentManyKeys(t *testing.T) {
	c := NewExtractCache(4, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				spec := device.ExtractSpec{
					Process: []string{"c018", "c025", "c035"}[(g+i)%3],
					Corner:  device.Corner((g + i) % 3),
					Size:    float64(1 + i%3),
				}
				if _, _, err := c.Get(spec); err != nil {
					t.Errorf("%+v: %v", spec, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}

func BenchmarkExtractUncached(b *testing.B) {
	spec := device.ExtractSpec{Process: "c018"}
	for i := 0; i < b.N; i++ {
		if _, _, err := spec.Extract(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractCached(b *testing.B) {
	c := NewExtractCache(8, nil)
	spec := device.ExtractSpec{Process: "c018"}
	if _, _, err := c.Get(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func TestShardCountClamp(t *testing.T) {
	for _, tc := range []struct{ capacity, maxWant int }{
		{1, 1}, {2, 2}, {3, 2}, {64, 64}, {4096, 4096},
	} {
		n := shardCount(tc.capacity)
		if n < 1 || n > tc.maxWant || n&(n-1) != 0 {
			t.Errorf("shardCount(%d) = %d, want a power of two in [1, %d]",
				tc.capacity, n, tc.maxWant)
		}
	}
	if got := NewExtractCache(64, nil).Shards(); got&(got-1) != 0 {
		t.Errorf("shard count %d not a power of two", got)
	}
}

// TestExtractCacheShardedHammer pounds the sharded cache from many
// goroutines with a working set larger than the capacity, so hits, misses
// and evictions interleave on every shard. Run under -race it is the
// shard-locking proof; the assertions check the cache stays a pure
// memoization (every answer equals a direct extraction) within capacity.
func TestExtractCacheShardedHammer(t *testing.T) {
	const capacity = 8
	c := NewExtractCache(capacity, nil)
	procs := []string{"c018", "c025", "c035"}
	want := map[string]device.ASDM{}
	for _, proc := range procs {
		for size := 1; size <= 4; size++ {
			spec := device.ExtractSpec{Process: proc, Size: float64(size)}
			m, _, err := spec.Extract()
			if err != nil {
				t.Fatal(err)
			}
			want[spec.Key()] = m
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				spec := device.ExtractSpec{
					Process: procs[(g+i)%len(procs)],
					Size:    float64(1 + (g*7+i)%4),
				}
				m, _, err := c.Get(spec)
				if err != nil {
					t.Errorf("%+v: %v", spec, err)
					return
				}
				if m != want[spec.Key()] {
					t.Errorf("%+v: cached model diverged from direct extraction", spec)
					return
				}
				// A sprinkle of known-bad specs keeps failure caching hot too.
				if i%17 == 0 {
					if _, _, err := c.Get(device.ExtractSpec{Process: "c404"}); err == nil {
						t.Error("bad spec must keep erroring")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Errorf("cache exceeded capacity: %d > %d", n, capacity)
	}
}

func TestPlanCacheMatchesModel(t *testing.T) {
	pc := NewPlanCache(64)
	spec := device.ExtractSpec{Process: "c018"}
	dev, _, err := spec.Extract()
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 32; n *= 2 {
		p := ssn.Params{N: n, Dev: dev, Vdd: 1.8, Slope: 1.8e9, L: 1.2e-9, C: 2e-12}
		vmax, cse, tmax, err := pc.Get(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ssn.NewLCModel(p)
		if err != nil {
			t.Fatal(err)
		}
		if vmax != m.VMax() || cse != m.Case() || tmax != m.VMaxTime() {
			t.Errorf("N=%d: cached (%g, %v, %g) != model (%g, %v, %g)",
				n, vmax, cse, tmax, m.VMax(), m.Case(), m.VMaxTime())
		}
		// Second read must come from the cache and agree bit for bit.
		v2, c2, t2, err := pc.Get(p)
		if err != nil || v2 != vmax || c2 != cse || t2 != tmax {
			t.Errorf("N=%d: cache hit diverged", n)
		}
	}
	// Invalid parameters cache their error with the scalar path's text.
	bad := ssn.Params{N: 0}
	_, _, _, err1 := pc.Get(bad)
	_, err2 := ssn.NewLCModel(bad)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Errorf("error mismatch: cache %v, model %v", err1, err2)
	}
}

// TestPlanCacheConcurrentHammer drives the plan cache past its capacity
// from many goroutines (forcing shard clears mid-flight) and checks every
// returned answer against a freshly compiled plan.
func TestPlanCacheConcurrentHammer(t *testing.T) {
	pc := NewPlanCache(32)
	dev, _, err := device.ExtractSpec{Process: "c025"}.Extract()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p := ssn.Params{
					N: 1 + (g+i)%64, Dev: dev, Vdd: 1.8,
					Slope: 1e9 + float64(i%8)*2.5e8,
					L:     1e-9, C: float64(1+i%5) * 1e-12,
				}
				vmax, cse, _, err := pc.Get(p)
				if err != nil {
					t.Errorf("%+v: %v", p, err)
					return
				}
				wantV, wantC, err := ssn.MaxSSN(p)
				if err != nil || vmax != wantV || cse != wantC {
					t.Errorf("N=%d i=%d: cached (%g, %v) != scalar (%g, %v, %v)",
						p.N, i, vmax, cse, wantV, wantC, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := pc.Len(); n > 32 {
		t.Errorf("plan cache exceeded capacity: %d", n)
	}
}
