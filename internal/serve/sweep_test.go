package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sweepBody is a small two-axis request with an inline device (no
// extraction), in the canonical nested-params form.
const sweepBody = `{
  "params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "rise_time": 1e-9},
  "axes": [
    {"axis": "n", "from": 4, "to": 16, "points": 4},
    {"axis": "l", "from": 1e-9, "to": 4e-9, "points": 3}
  ]
}`

// decodeNDJSON splits an NDJSON body into one generic map per line.
func decodeNDJSON(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var recs []map[string]any
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, m)
	}
	return recs
}

func TestSweepNDJSONStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", sweepBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	recs := decodeNDJSON(t, body)
	if len(recs) != 13 { // 4*3 points + terminal summary
		t.Fatalf("got %d records, want 13:\n%s", len(recs), body)
	}
	for i, rec := range recs[:12] {
		vals, ok := rec["values"].(map[string]any)
		if !ok {
			t.Fatalf("record %d has no values: %v", i, rec)
		}
		if _, ok := vals["n"]; !ok {
			t.Errorf("record %d missing axis n: %v", i, rec)
		}
		if _, ok := vals["l"]; !ok {
			t.Errorf("record %d missing axis l: %v", i, rec)
		}
		if v, _ := rec["vmax"].(float64); v <= 0 {
			t.Errorf("record %d vmax %v", i, rec["vmax"])
		}
		if rec["case"] == "" || rec["case"] == nil {
			t.Errorf("record %d missing case: %v", i, rec)
		}
	}
	last := recs[12]
	if done, _ := last["done"].(bool); !done {
		t.Fatalf("terminal record not done: %v", last)
	}
	stats, _ := last["stats"].(map[string]any)
	if stats == nil || stats["grid_points"].(float64) != 12 || stats["evaluated"].(float64) != 12 {
		t.Errorf("terminal stats: %v", stats)
	}
	sweeps, aborted, points := s.Metrics().SweepCounts()
	if sweeps != 1 || aborted != 0 || points != 12 {
		t.Errorf("sweep metrics: %d sweeps, %d aborted, %d points", sweeps, aborted, points)
	}
}

// TestSweepLegacyInlineParams sends the fixed parameters inline at the top
// level (the pre-envelope wire form) and expects identical behavior.
func TestSweepLegacyInlineParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 8, "rise_time": 1e-9,
	          "axes": [{"axis": "c", "from": 1e-13, "to": 2e-11, "points": 5, "log": true}]}`
	resp, out := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	recs := decodeNDJSON(t, out)
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
}

// TestSweepNAxisReportsRoundedN checks the wire reports the integer driver
// count actually evaluated, not the raw grid coordinate.
func TestSweepNAxisReportsRoundedN(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "rise_time": 1e-9},
	          "axes": [{"axis": "n", "from": 1, "to": 8, "points": 3}]}` // 1, 4.5, 8
	resp, out := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	recs := decodeNDJSON(t, out)
	n := recs[1]["values"].(map[string]any)["n"].(float64)
	if n != 4 && n != 5 {
		t.Errorf("midpoint n = %v, want the rounded integer", n)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepPoints: 100})
	cases := []struct {
		name, body, code string
	}{
		{"no axes", `{"params": {"n": 8, "rise_time": 1e-9}}`, "invalid_request"},
		{"zero points", `{"axes": [{"axis": "n", "from": 1, "to": 4}]}`, "invalid_request"},
		{"too large", `{"params": {"rise_time": 1e-9},
			"axes": [{"axis": "n", "from": 1, "to": 64, "points": 11},
			         {"axis": "l", "from": 1e-9, "to": 4e-9, "points": 11}]}`, "grid_too_large"},
		{"bad refine", `{"params": {"rise_time": 1e-9},
			"axes": [{"axis": "n", "from": 1, "to": 4, "points": 2}], "refine_depth": 99}`, "invalid_request"},
		{"size with dev", `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "rise_time": 1e-9},
			"axes": [{"axis": "size", "from": 1, "to": 4, "points": 2}]}`, "invalid_request"},
		{"unknown axis", `{"params": {"rise_time": 1e-9},
			"axes": [{"axis": "zz", "from": 1, "to": 4, "points": 2}]}`, "invalid_request"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/sweep", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", tc.name, resp.StatusCode, body)
			continue
		}
		var out struct {
			Error *apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil || out.Error == nil {
			t.Errorf("%s: bad error envelope %s", tc.name, body)
			continue
		}
		if out.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, out.Error.Code, tc.code)
		}
	}
}

// TestSweepOverflowGuard asks for a grid whose point count overflows int64
// multiplication; the cap must reject it instead of wrapping around.
func TestSweepOverflowGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	axes := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		axes = append(axes, `{"axis": "l", "from": 1e-9, "to": 4e-9, "points": 100000}`)
	}
	// Duplicate axes would fail grid validation, but the size cap is
	// checked first — which is the point: no 10^40 allocation attempts.
	body := `{"params": {"rise_time": 1e-9}, "axes": [` + strings.Join(axes, ",") + `]}`
	resp, out := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "grid_too_large") {
		t.Errorf("expected grid_too_large: %s", out)
	}
}

// TestSweepRefinement runs a sweep across the critical capacitance with
// refinement on and expects depth >= 1 records between grid points.
func TestSweepRefinement(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"params": {"dev": {"k": 0.004, "v0": 0.6, "a": 1.2}, "vdd": 1.8, "n": 16,
	                     "l": 1.25e-9, "rise_time": 1e-9},
	          "axes": [{"axis": "c", "from": 1e-14, "to": 4e-11, "points": 12, "log": true}],
	          "refine_depth": 3}`
	resp, out := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	recs := decodeNDJSON(t, out)
	last := recs[len(recs)-1]
	stats, _ := last["stats"].(map[string]any)
	if stats == nil {
		t.Fatalf("no terminal stats: %v", last)
	}
	if refined, _ := stats["refined_points"].(float64); refined == 0 {
		t.Errorf("no refinement happened: %v", stats)
	}
	deep := 0
	for _, rec := range recs[:len(recs)-1] {
		if d, _ := rec["depth"].(float64); d >= 1 {
			deep++
		}
	}
	if deep == 0 {
		t.Error("no depth >= 1 records in the stream")
	}
}

// TestSweepCancelMidStream opens a large sweep, reads a few lines, then
// cancels the request; the server must abort the run (metrics show it) and
// unwind its goroutines.
func TestSweepCancelMidStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 16, "rise_time": 1e-9},
	          "axes": [{"axis": "l", "from": 1e-10, "to": 8e-9, "points": 700},
	                   {"axis": "c", "from": 1e-13, "to": 4e-11, "points": 700}],
	          "chunk_size": 64}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read a handful of lines mid-stream, then hang up.
	r := bufio.NewReader(resp.Body)
	for i := 0; i < 5; i++ {
		if _, err := r.ReadString('\n'); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	cancel()
	_, _ = io.Copy(io.Discard, resp.Body) // drain until the server notices

	// The abort must land in the metrics and the workers must unwind.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, aborted, _ := s.Metrics().SweepCounts(); aborted == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never recorded as aborted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 { // httptest conn teardown lags
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d, baseline %d", runtime.NumGoroutine(), base)
}

// TestParamsEnvelopeAllEndpoints sends the canonical nested form to every
// evaluation endpoint: one wire format, four handlers.
func TestParamsEnvelopeAllEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	params := `"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 8,
	                      "l": 2.5e-9, "c": 2e-12, "rise_time": 1e-9}`

	resp, body := postJSON(t, ts.URL+"/v1/maxssn", `{`+params+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maxssn: %d: %s", resp.StatusCode, body)
	}
	var res EvalResult
	if err := json.Unmarshal(body, &res); err != nil || res.VMax <= 0 {
		t.Fatalf("maxssn nested params: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/waveform", `{`+params+`, "samples": 16}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("waveform: %d: %s", resp.StatusCode, body)
	}
	var wf waveformResponse
	if err := json.Unmarshal(body, &wf); err != nil || len(wf.Times) != 16 {
		t.Fatalf("waveform nested params: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/montecarlo",
		`{`+params+`, "samples": 100, "variation": {"l": 0.1}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("montecarlo: %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sweep",
		`{`+params+`, "axes": [{"axis": "n", "from": 2, "to": 8, "points": 3}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	if recs := decodeNDJSON(t, body); len(recs) != 4 {
		t.Fatalf("sweep nested params: %d records", len(recs))
	}
}

// TestParamsEnvelopePrecedence: when both the nested and inline forms are
// present, the nested one wins.
func TestParamsEnvelopePrecedence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	nested := `"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6},
	           "vdd": 1.8, "n": 8, "l": 2.5e-9, "rise_time": 1e-9}`
	resp, out := postJSON(t, ts.URL+"/v1/maxssn", `{`+nested+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var want EvalResult
	if err := json.Unmarshal(out, &want); err != nil {
		t.Fatal(err)
	}
	// The same nested point plus a conflicting inline n must not change
	// the answer: the canonical form wins.
	resp, out = postJSON(t, ts.URL+"/v1/maxssn", `{"n": 999999, `+nested+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var got EvalResult
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.VMax != want.VMax || got.Case != want.Case {
		t.Errorf("inline n leaked through the envelope: got %+v, want %+v", got, want)
	}
}
