package serve

import (
	"context"
	"math"
	"net/http"
	"sync"
	"time"
)

// admission is the service's backpressure front door: every evaluation
// request passes through a bounded concurrency + bounded queue gate, and
// optionally a per-client token bucket, before it touches the worker pool.
// The pool bounds CPU; admission bounds *commitment* — without it a
// traffic spike parks unbounded goroutines (each pinning a request body
// and response buffer) waiting for pool slots, and latency grows without
// any signal to the client. Shedding early with 429 + Retry-After turns
// overload into a control signal load balancers and the ssndist
// coordinator both understand.
type admission struct {
	metrics    *Metrics
	slots      chan struct{} // concurrently processed requests
	maxQueue   int           // requests allowed to wait for a slot
	retryAfter int           // Retry-After hint on queue sheds, seconds

	mu     sync.Mutex
	queued int

	quota *quotaTable // nil when quotas are disabled
}

func newAdmission(cfg Config, m *Metrics) *admission {
	a := &admission{
		metrics:    m,
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		maxQueue:   cfg.MaxQueue,
		retryAfter: int(math.Ceil(cfg.RetryAfter.Seconds())),
	}
	if cfg.QuotaRPS > 0 {
		a.quota = newQuotaTable(cfg.QuotaRPS, cfg.QuotaBurst)
	}
	return a
}

// admit reserves a processing slot. It returns a release func on success;
// otherwise a structured 429 (queue full or quota exhausted, with a
// Retry-After hint) or a timeout error when the caller gave up queued.
func (a *admission) admit(ctx context.Context, apiKey string) (func(), *apiError) {
	if a.quota != nil {
		if ok, wait := a.quota.take(apiKey); !ok {
			a.metrics.AdmissionShed("quota")
			return nil, &apiError{Code: CodeQuotaExhausted,
				Message:    "per-client request quota exhausted",
				retryAfter: int(math.Ceil(wait.Seconds()))}
		}
	}
	select {
	case a.slots <- struct{}{}: // fast path: no queueing
		return a.release, nil
	default:
	}
	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		a.metrics.AdmissionShed("queue_full")
		return nil, &apiError{Code: CodeOverloaded,
			Message:    "server work queue is full",
			retryAfter: a.retryAfter}
	}
	a.queued++
	depth := a.queued
	a.mu.Unlock()
	a.metrics.AdmissionQueueDepth(depth)
	defer func() {
		a.mu.Lock()
		a.queued--
		depth := a.queued
		a.mu.Unlock()
		a.metrics.AdmissionQueueDepth(depth)
	}()
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, &apiError{Code: CodeTimeout,
			Message: "request abandoned while queued: " + ctx.Err().Error()}
	}
}

func (a *admission) release() { <-a.slots }

// quotaTable is a per-API-key token bucket: rate tokens/second refill,
// burst capacity. Unknown keys (including the empty key all anonymous
// clients share) lazily get a full bucket.
type quotaTable struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate, burst float64) *quotaTable {
	if burst < 1 {
		burst = 1
	}
	return &quotaTable{rate: rate, burst: burst, buckets: map[string]*bucket{}, now: time.Now}
}

// take spends one token from key's bucket, reporting how long until a
// token is available when the bucket is dry.
func (q *quotaTable) take(key string) (bool, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[key]
	if b == nil {
		q.pruneLocked(now)
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[key] = b
	}
	b.tokens = math.Min(q.burst, b.tokens+q.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
}

// pruneLocked drops buckets that have fully refilled (indistinguishable
// from fresh ones) once the table grows past a bound, so an attacker
// cycling random API keys cannot grow it without limit.
func (q *quotaTable) pruneLocked(now time.Time) {
	const maxBuckets = 8192
	if len(q.buckets) < maxBuckets {
		return
	}
	for k, b := range q.buckets {
		if b.tokens+q.rate*now.Sub(b.last).Seconds() >= q.burst {
			delete(q.buckets, k)
		}
	}
}

// admitted wraps an instrumented handler with admission control, keyed by
// the X-API-Key header. Health, metrics and status probes stay un-gated.
func (s *Server) admitted(path string, h http.HandlerFunc) http.Handler {
	return s.instrument(path, func(w http.ResponseWriter, r *http.Request) {
		release, aerr := s.adm.admit(r.Context(), r.Header.Get("X-API-Key"))
		if aerr != nil {
			writeError(w, aerr)
			return
		}
		defer release()
		h(w, r)
	})
}
