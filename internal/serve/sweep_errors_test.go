package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// These tests pin the /v1/sweep and /v1/maxssn failure surfaces: every
// rejection must arrive as the structured error envelope (code, message,
// and — when the failure is attributable — field/value/constraint), never
// as a bare string or a half-started stream.

// errEnvelope decodes the standard {"error": {...}} body.
func errEnvelope(t *testing.T, body []byte) *apiError {
	t.Helper()
	var env struct {
		Error *apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("response is not an error envelope: %s", body)
	}
	return env.Error
}

func TestSweepMalformedAxisSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body     string
		wantCode       string
		wantField      string
		wantConstraint string
	}{
		{
			name:     "truncated JSON",
			body:     `{"axes": [{"axis": "n", "from": 1`,
			wantCode: "invalid_request",
		},
		{
			name:     "axis bound of wrong type",
			body:     `{"params": {"rise_time": 1e-9}, "axes": [{"axis": "n", "from": "four", "to": 16, "points": 4}]}`,
			wantCode: "invalid_request",
		},
		{
			name:     "axes not an array",
			body:     `{"params": {"rise_time": 1e-9}, "axes": {"axis": "n"}}`,
			wantCode: "invalid_request",
		},
		{
			name:     "inverted range",
			body:     `{"params": {"rise_time": 1e-9}, "axes": [{"axis": "n", "from": 16, "to": 4, "points": 4}]}`,
			wantCode: "invalid_request",
		},
		{
			name:     "duplicate axis",
			body:     `{"params": {"rise_time": 1e-9}, "axes": [{"axis": "l", "from": 1e-9, "to": 4e-9, "points": 2}, {"axis": "l", "from": 1e-9, "to": 4e-9, "points": 2}]}`,
			wantCode: "invalid_request",
		},
		{
			name:     "tr and slope sweep the same knob",
			body:     `{"params": {"rise_time": 1e-9}, "axes": [{"axis": "tr", "from": 1e-10, "to": 1e-9, "points": 2}, {"axis": "slope", "from": 1e9, "to": 4e9, "points": 2}]}`,
			wantCode: "invalid_request",
		},
		{
			name:           "negative points",
			body:           `{"params": {"rise_time": 1e-9}, "axes": [{"axis": "n", "from": 1, "to": 4, "points": -3}]}`,
			wantCode:       "invalid_request",
			wantField:      "axes",
			wantConstraint: "points >= 1",
		},
		{
			name:           "zero-point axis",
			body:           `{"params": {"rise_time": 1e-9}, "axes": [{"axis": "n", "from": 1, "to": 4, "points": 0}]}`,
			wantCode:       "invalid_request",
			wantField:      "axes",
			wantConstraint: "points >= 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/sweep", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("error content type %q, want application/json", ct)
			}
			aerr := errEnvelope(t, body)
			if aerr.Code != tc.wantCode {
				t.Errorf("code %q, want %q (%s)", aerr.Code, tc.wantCode, body)
			}
			if aerr.Message == "" {
				t.Errorf("empty error message: %s", body)
			}
			if tc.wantField != "" && aerr.Field != tc.wantField {
				t.Errorf("field %q, want %q", aerr.Field, tc.wantField)
			}
			if tc.wantConstraint != "" && aerr.Constraint != tc.wantConstraint {
				t.Errorf("constraint %q, want %q", aerr.Constraint, tc.wantConstraint)
			}
		})
	}
}

// TestSweepZeroPointAxisRejectedBeforeStreaming pins the ordering
// guarantee: a zero-point axis must be caught while a 400 status line is
// still possible, not after the NDJSON stream has started.
func TestSweepZeroPointAxisRejectedBeforeStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "rise_time": 1e-9},
	          "axes": [{"axis": "n", "from": 4, "to": 16, "points": 4},
	                   {"axis": "c", "from": 1e-13, "to": 1e-12, "points": 0}]}`
	resp, out := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, out)
	}
	if strings.Contains(string(out), "\"values\"") {
		t.Fatalf("stream records emitted before validation: %s", out)
	}
	aerr := errEnvelope(t, out)
	if aerr.Value == nil {
		t.Errorf("zero-point rejection lost the offending value: %s", out)
	}
}

// TestSweepDisconnectBeforeFirstRecord hangs up immediately after the
// request is sent (the other mid-stream test reads a few lines first):
// the server must record the abort and not leak the run.
func TestSweepDisconnectBeforeFirstRecord(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 16, "rise_time": 1e-9},
	          "axes": [{"axis": "l", "from": 1e-10, "to": 8e-9, "points": 900},
	                   {"axis": "c", "from": 1e-13, "to": 4e-11, "points": 900}],
	          "chunk_size": 32}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Hang up without reading a single record.
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, aborted, _ := s.Metrics().SweepCounts(); aborted >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never recorded as aborted after early disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMaxSSNInvalidParamsEnvelope sends the canonical nested-params form
// with one bad field and asserts the full structured ValidationError
// surface: code, field, value AND constraint — clients route on these.
func TestMaxSSNInvalidParamsEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body     string
		wantField      string
		wantConstraint string
		wantValue      any
	}{
		{
			name:      "negative inductance",
			body:      `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "rise_time": 1e-9, "n": 4, "l": -1e-9}}`,
			wantField: "L", wantConstraint: "must be positive", wantValue: -1e-9,
		},
		{
			name:      "negative capacitance",
			body:      `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "rise_time": 1e-9, "n": 4, "l": 5e-9, "c": -2e-12}}`,
			wantField: "C", wantConstraint: "must be non-negative", wantValue: -2e-12,
		},
		{
			name:      "vdd below displacement voltage",
			body:      `{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 0.3, "rise_time": 1e-9, "n": 4, "l": 5e-9}}`,
			wantField: "Vdd", wantConstraint: "must exceed the device displacement voltage", wantValue: 0.3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/maxssn", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			aerr := errEnvelope(t, body)
			if aerr.Code != "invalid_params" {
				t.Errorf("code %q, want invalid_params", aerr.Code)
			}
			if aerr.Field != tc.wantField {
				t.Errorf("field %q, want %q (%s)", aerr.Field, tc.wantField, body)
			}
			if aerr.Constraint != tc.wantConstraint {
				t.Errorf("constraint %q, want %q", aerr.Constraint, tc.wantConstraint)
			}
			got, ok := aerr.Value.(float64)
			want, isNum := tc.wantValue.(float64)
			if !ok || !isNum || got != want {
				t.Errorf("value %v, want %v", aerr.Value, tc.wantValue)
			}
		})
	}
}
