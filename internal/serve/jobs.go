package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// pool is the bounded worker pool every unit of model evaluation runs
// through: batch items and asynchronous Monte Carlo jobs share the same
// slots, so a flood of batch traffic and a queue of jobs together never
// exceed the configured parallelism (GOMAXPROCS by default).
type pool struct {
	sem chan struct{}
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	return &pool{sem: make(chan struct{}, workers)}
}

// acquire blocks until a slot frees or the context ends.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *pool) release() { <-p.sem }

// Acquire and Release let the pool satisfy sweep.Gate, so sweep chunks
// share the same slots as batch items and Monte Carlo jobs — the one-pool
// invariant survives the streaming endpoint.
func (p *pool) Acquire(ctx context.Context) error { return p.acquire(ctx) }

// Release frees the slot taken by Acquire.
func (p *pool) Release() { p.release() }

// JobState is the lifecycle state of an asynchronous job.
type JobState string

// Job lifecycle: queued -> running -> done | failed | canceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is a point-in-time snapshot of an asynchronous job, shaped for JSON.
type Job struct {
	ID       string     `json:"id"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Result   any        `json:"result,omitempty"`
	Error    *apiError  `json:"error,omitempty"`
}

type job struct {
	snap   Job
	cancel context.CancelFunc
}

// jobStore tracks asynchronous jobs: submission queues the work on the
// shared pool, polling returns snapshots, and drain supports graceful
// shutdown — wait for in-flight jobs, cancelling them only when the
// shutdown deadline expires. Finished jobs are retained (capped at
// maxJobs, oldest evicted first) so clients can poll results after
// completion.
type jobStore struct {
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // insertion order, for eviction
	maxJobs int
	wg      sync.WaitGroup
	root    context.Context
	stop    context.CancelFunc
	pool    *pool
	metrics *Metrics
}

func newJobStore(p *pool, m *Metrics, maxJobs int) *jobStore {
	if maxJobs < 1 {
		maxJobs = 1024
	}
	root, stop := context.WithCancel(context.Background())
	return &jobStore{
		jobs:    map[string]*job{},
		maxJobs: maxJobs,
		root:    root,
		stop:    stop,
		pool:    p,
		metrics: m,
	}
}

// newJobID returns a 16-byte random hex identifier.
func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// submit registers a job and runs fn on the shared pool. fn receives a
// context that is cancelled on forced shutdown; it should return promptly
// when the context ends.
func (s *jobStore) submit(fn func(ctx context.Context) (any, error)) Job {
	ctx, cancel := context.WithCancel(s.root)
	j := &job{
		snap:   Job{ID: newJobID(), State: JobQueued, Created: time.Now()},
		cancel: cancel,
	}
	s.mu.Lock()
	s.jobs[j.snap.ID] = j
	s.order = append(s.order, j.snap.ID)
	s.evictLocked()
	s.mu.Unlock()
	s.metrics.JobTransition(string(JobQueued))

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		if err := s.pool.acquire(ctx); err != nil {
			s.finish(j, nil, err)
			return
		}
		defer s.pool.release()
		s.transition(j, JobRunning)
		res, err := fn(ctx)
		s.finish(j, res, err)
	}()
	return s.get(j.snap.ID)
}

func (s *jobStore) transition(j *job, state JobState) {
	s.mu.Lock()
	j.snap.State = state
	if state == JobRunning {
		now := time.Now()
		j.snap.Started = &now
	}
	s.mu.Unlock()
	s.metrics.JobTransition(string(state))
}

func (s *jobStore) finish(j *job, res any, err error) {
	state := JobDone
	var apiErr *apiError
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = JobCanceled
		apiErr = &apiError{Code: CodeCanceled, Message: err.Error()}
	default:
		state = JobFailed
		apiErr = toAPIError(err)
	}
	now := time.Now()
	s.mu.Lock()
	j.snap.State = state
	j.snap.Finished = &now
	j.snap.Result = res
	j.snap.Error = apiErr
	s.mu.Unlock()
	s.metrics.JobTransition(string(state))
}

// get returns a snapshot of the job, with ok=false for unknown IDs.
func (s *jobStore) get(id string) Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.snap
	}
	return Job{}
}

// lookup returns a snapshot and whether the job exists.
func (s *jobStore) lookup(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snap, true
}

// evictLocked drops the oldest finished jobs once the store exceeds its
// cap. Jobs still queued or running are never evicted.
func (s *jobStore) evictLocked() {
	if len(s.jobs) <= s.maxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		done := j.snap.State == JobDone || j.snap.State == JobFailed || j.snap.State == JobCanceled
		if len(s.jobs) > s.maxJobs && done {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = append([]string(nil), kept...)
}

// inFlight reports queued + running jobs.
func (s *jobStore) inFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.snap.State == JobQueued || j.snap.State == JobRunning {
			n++
		}
	}
	return n
}

// drain waits for in-flight jobs to complete. If the context ends first,
// running jobs are cancelled and drain waits for them to unwind before
// returning the context error.
func (s *jobStore) drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stop()
		<-done
		return ctx.Err()
	}
}
