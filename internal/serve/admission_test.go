package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestAdmissionShedsWhenSaturated pins the overload contract
// deterministically: with every concurrency slot held and the wait queue
// full, the next request is shed with 429, a Retry-After header, and a
// structured error body — and the shed shows up in the metrics.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxConcurrent: 1, MaxQueue: 1,
		RetryAfter: 2 * time.Second})

	// Saturate: one admitted holder and one queued waiter. The slot is
	// released exactly once, further down, to hand it to the waiter.
	release, aerr := s.adm.admit(context.Background(), "")
	if aerr != nil {
		t.Fatalf("first admit: %v", aerr)
	}
	queued := make(chan *apiError, 1)
	qctx, qcancel := context.WithCancel(context.Background())
	defer qcancel()
	go func() {
		rel, aerr := s.adm.admit(qctx, "")
		if rel != nil {
			rel()
		}
		queued <- aerr
	}()
	// Wait until the waiter is actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.adm.mu.Lock()
		q := s.adm.queued
		s.adm.mu.Unlock()
		if q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/maxssn", itemJSON)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	e := errEnvelope(t, body)
	if e.Code != "overloaded" {
		t.Errorf("code = %q, want overloaded", e.Code)
	}
	if sheds := s.Metrics().ShedCounts(); sheds["queue_full"] != 1 {
		t.Errorf("shed counters = %v, want queue_full: 1", sheds)
	}

	// The metrics endpoint renders the admission series.
	resp2, metricsBody := getURL(t, ts.URL+"/metrics")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp2.StatusCode)
	}
	for _, want := range []string{
		`ssnserve_admission_shed_total{reason="queue_full"} 1`,
		"ssnserve_admission_queue_depth",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Unblock the queued waiter and confirm it was admitted, not shed.
	release()
	select {
	case aerr := <-queued:
		if aerr != nil {
			t.Errorf("queued waiter: %v", aerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never finished")
	}
}

// TestQuotaShedsPerKey pins per-client quotas: a key that burns its burst
// gets 429 quota_exhausted with a Retry-After hint, while a different key
// still gets through.
func TestQuotaShedsPerKey(t *testing.T) {
	s, ts := newTestServer(t, Config{QuotaRPS: 0.5, QuotaBurst: 2})
	_ = s

	doWithKey := func(key string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/maxssn", strings.NewReader(itemJSON))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	for i := 0; i < 2; i++ {
		if resp, body := doWithKey("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := doWithKey("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota shed carries no Retry-After")
	}
	if e := errEnvelope(t, body); e.Code != "quota_exhausted" {
		t.Errorf("code = %q, want quota_exhausted", e.Code)
	}
	if resp, body := doWithKey("bob"); resp.StatusCode != http.StatusOK {
		t.Errorf("other key caught in alice's quota: %d: %s", resp.StatusCode, body)
	}
	if sheds := s.Metrics().ShedCounts(); sheds["quota"] == 0 {
		t.Errorf("shed counters = %v, want quota > 0", sheds)
	}
}

// TestQuotaTableRefill pins the bucket math with an injected clock.
func TestQuotaTableRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newQuotaTable(2, 2) // 2 rps, burst 2
	q.now = func() time.Time { return now }

	if ok, _ := q.take("k"); !ok {
		t.Fatal("fresh bucket denied")
	}
	if ok, _ := q.take("k"); !ok {
		t.Fatal("burst capacity denied")
	}
	ok, wait := q.take("k")
	if ok {
		t.Fatal("dry bucket granted")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("wait hint %v outside (0, 1s]", wait)
	}
	now = now.Add(time.Second) // refills 2 tokens
	if ok, _ := q.take("k"); !ok {
		t.Fatal("refilled bucket denied")
	}
}

// TestHealthAndMetricsStayUngated pins that probes bypass admission: a
// saturated server must still answer its load balancer.
func TestHealthAndMetricsStayUngated(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	release, aerr := s.adm.admit(context.Background(), "")
	if aerr != nil {
		t.Fatal(aerr)
	}
	defer release()
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, _ := getURL(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s under load: status %d", path, resp.StatusCode)
		}
	}
}

// getURL fetches a URL and returns the response plus its body.
func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}
