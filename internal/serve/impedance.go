package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ssnkit/internal/colwire"
	"ssnkit/internal/pdn"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
)

// impedanceRequest asks for frequency-domain PDN input impedance of a
// package-class RLC grid: one frequency (point), a log/linear sweep
// streamed as NDJSON or SSNC blocks (sweep), or greedy adjoint-guided
// decap placement (optimize).
type impedanceRequest struct {
	// Grid geometry: package class plus mesh dimensions and pad count, fed
	// to pkgmodel.DefaultPDN.
	Package string `json:"package,omitempty"` // pga (default), qfp, bga, cob
	Rows    int    `json:"rows,omitempty"`    // default 4
	Cols    int    `json:"cols,omitempty"`    // default 4
	Pads    int    `json:"pads,omitempty"`    // default 4

	// Mode selects the analysis; empty means point when freq is set,
	// sweep otherwise.
	Mode string  `json:"mode,omitempty"` // point | sweep | optimize
	Freq float64 `json:"freq,omitempty"` // point mode, Hz

	// Frequency grid (sweep and optimize modes). Spacing is logarithmic
	// unless linear is set — PDN resonances spread over decades.
	From   float64 `json:"from,omitempty"`   // default 1e6 Hz
	To     float64 `json:"to,omitempty"`     // default 1e10 Hz
	Points int     `json:"points,omitempty"` // default 200
	Linear bool    `json:"linear,omitempty"`

	// WithSens attaches adjoint d|Z|/d(element) sensitivities to point
	// responses and NDJSON sweep records (one transposed solve per
	// frequency). Columnar sweeps carry no sensitivity columns.
	WithSens bool `json:"with_sens,omitempty"`
	Workers  int  `json:"workers,omitempty"`

	// Optimize mode: the unit decap placed per greedy step and the
	// placement budget. DecapSites restricts candidates to the listed mesh
	// node ids; empty means every mesh node.
	DecapC     float64 `json:"decap_c,omitempty"`    // default 1e-9 F
	DecapESR   float64 `json:"decap_esr,omitempty"`  // default 5e-3 Ohm
	MaxDecaps  int     `json:"max_decaps,omitempty"` // default 4, max 64
	DecapSites []int   `json:"decap_sites,omitempty"`
}

// impedanceSens is one adjoint sensitivity entry on the wire.
type impedanceSens struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`  // R, L or C
	Value float64 `json:"value"` // element value the derivative is taken at
	DAbs  float64 `json:"dabs"`  // d|Z|/d(value)
}

// impedancePoint is one impedance sample: the point-mode response body and
// the sweep-mode NDJSON record.
type impedancePoint struct {
	Freq float64         `json:"freq"`
	ZRe  float64         `json:"z_re"`
	ZIm  float64         `json:"z_im"`
	ZMag float64         `json:"z_mag"`
	Sens []impedanceSens `json:"sens,omitempty"`
}

// impedanceStats summarizes a completed sweep.
type impedanceStats struct {
	Points   int     `json:"points"`
	PeakFreq float64 `json:"peak_freq"`
	PeakZ    float64 `json:"peak_z"`
	Workers  int     `json:"workers"`
}

// impedanceSummary is the terminal NDJSON record of an impedance sweep.
type impedanceSummary struct {
	Done  bool           `json:"done"`
	Stats impedanceStats `json:"stats"`
}

// impedanceOptimizeResponse reports a greedy decap-placement run.
type impedanceOptimizeResponse struct {
	PeakBefore float64         `json:"peak_before"`
	PeakAfter  float64         `json:"peak_after"`
	Placements []pdn.Placement `json:"placements"`
}

const (
	// maxPDNNodes bounds the mesh so one request cannot demand an
	// arbitrarily large factorization (a 64x64 mesh is already ~16k MNA
	// unknowns with the segment mid nodes).
	maxPDNNodes = 4096
	// maxImpedanceDecaps bounds the greedy placement budget; each step
	// costs a full re-sweep.
	maxImpedanceDecaps = 64
)

// impedanceModes documents the mode enum in validation messages.
const impedanceModes = "point, sweep, optimize"

// buildImpedance validates the request and assembles the grid, frequency
// list, resolved mode, and run config — everything before the first write,
// so a 400 status line is still possible.
func (s *Server) buildImpedance(req impedanceRequest) (*pkgmodel.PDNGrid, []float64, string, pdn.Config, *apiError) {
	var cfg pdn.Config
	pkgName := req.Package
	if pkgName == "" {
		pkgName = "pga"
	}
	pkg, err := pkgmodel.ByName(pkgName)
	if err != nil {
		return nil, nil, "", cfg, &apiError{Code: CodeInvalidRequest, Message: err.Error(),
			Field: "package", Value: req.Package, Constraint: "one of pga, qfp, bga, cob"}
	}
	rows, cols, pads := req.Rows, req.Cols, req.Pads
	if rows == 0 {
		rows = 4
	}
	if cols == 0 {
		cols = 4
	}
	if pads == 0 {
		pads = 4
	}
	if rows < 1 || cols < 1 || pads < 1 {
		return nil, nil, "", cfg, &apiError{Code: CodeInvalidRequest,
			Message:    fmt.Sprintf("grid %dx%d with %d pads: dimensions must be positive", rows, cols, pads),
			Field:      "rows",
			Constraint: "rows, cols, pads >= 1"}
	}
	if rows*cols > maxPDNNodes {
		return nil, nil, "", cfg, &apiError{Code: CodeGridTooLarge,
			Message:    fmt.Sprintf("mesh of %d nodes exceeds the %d-node limit", rows*cols, maxPDNNodes),
			Field:      "rows",
			Constraint: fmt.Sprintf("rows*cols <= %d", maxPDNNodes)}
	}
	grid := pkgmodel.DefaultPDN(pkg, rows, cols, pads)

	mode := req.Mode
	if mode == "" {
		if req.Freq > 0 {
			mode = "point"
		} else {
			mode = "sweep"
		}
	}
	switch mode {
	case "point", "sweep", "optimize":
	default:
		return nil, nil, "", cfg, &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("unknown mode %q", req.Mode),
			Field:   "mode", Value: req.Mode, Constraint: "one of " + impedanceModes}
	}

	var freqs []float64
	if mode == "point" {
		if !(req.Freq > 0) {
			return nil, nil, "", cfg, &apiError{Code: CodeInvalidRequest,
				Message: fmt.Sprintf("point mode needs a positive freq, got %g", req.Freq),
				Field:   "freq", Value: req.Freq, Constraint: "freq > 0"}
		}
		freqs = []float64{req.Freq}
	} else {
		from, to, points := req.From, req.To, req.Points
		if from == 0 {
			from = 1e6
		}
		if to == 0 {
			to = 1e10
		}
		if points == 0 {
			points = 200
		}
		if points > s.cfg.MaxSweepPoints {
			return nil, nil, "", cfg, &apiError{Code: CodeGridTooLarge,
				Message:    fmt.Sprintf("frequency grid of %d points exceeds the %d-point limit", points, s.cfg.MaxSweepPoints),
				Field:      "points",
				Constraint: fmt.Sprintf("at most %d grid points", s.cfg.MaxSweepPoints)}
		}
		freqs, err = spice.FreqGrid(from, to, points, !req.Linear)
		if err != nil {
			return nil, nil, "", cfg, badRequest("%v", err)
		}
	}

	if len(req.DecapSites) > 0 && mode != "optimize" {
		return nil, nil, "", cfg, &apiError{Code: CodeInvalidRequest,
			Message: "decap_sites only selects optimizer candidates",
			Field:   "decap_sites", Constraint: "requires mode optimize"}
	}
	if mode == "optimize" {
		if req.WithSens {
			return nil, nil, "", cfg, &apiError{Code: CodeInvalidRequest,
				Message: "optimize mode reports placement gradients, not per-point sensitivities",
				Field:   "with_sens", Constraint: "with_sens applies to point and sweep modes"}
		}
		for _, n := range req.DecapSites {
			if n < 0 || n >= rows*cols {
				return nil, nil, "", cfg, &apiError{Code: CodeInvalidRequest,
					Message: fmt.Sprintf("decap site %d outside the %dx%d mesh", n, rows, cols),
					Field:   "decap_sites", Value: n,
					Constraint: fmt.Sprintf("node ids within [0, %d)", rows*cols)}
			}
			grid.DecapSites = append(grid.DecapSites, pkgmodel.DecapSite{Node: n})
		}
	}

	cfg = pdn.Config{Workers: req.Workers, Gate: s.pool, WithSens: req.WithSens}
	if cfg.Workers <= 0 || cfg.Workers > s.cfg.Workers {
		cfg.Workers = s.cfg.Workers
	}
	return grid, freqs, mode, cfg, nil
}

// impedanceSensRecords shapes engine sensitivities for the wire.
func impedanceSensRecords(sens []spice.SensEntry) []impedanceSens {
	if len(sens) == 0 {
		return nil
	}
	out := make([]impedanceSens, len(sens))
	for i, e := range sens {
		out[i] = impedanceSens{Name: e.Name, Kind: string(e.Kind), Value: e.Value, DAbs: e.DAbs}
	}
	return out
}

func impedanceRecord(p pdn.Point) impedancePoint {
	return impedancePoint{
		Freq: p.Freq,
		ZRe:  real(p.Z),
		ZIm:  imag(p.Z),
		ZMag: p.AbsZ,
		Sens: impedanceSensRecords(p.Sens),
	}
}

// handleImpedance serves POST /v1/impedance (README "Impedance analysis"):
// point mode answers one frequency as JSON, sweep mode streams the |Z(f)|
// profile as NDJSON records plus a terminal done/stats summary — or as
// SSNC blocks with columns freq/z_re/z_im/z_mag when negotiated — and
// optimize mode runs greedy adjoint-guided decap placement.
func (s *Server) handleImpedance(w http.ResponseWriter, r *http.Request) {
	var req impedanceRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	grid, freqs, mode, cfg, aerr := s.buildImpedance(req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	columnar := columnarResponseFor(r)
	if columnar && mode == "sweep" && req.WithSens {
		writeError(w, &apiError{Code: CodeInvalidRequest,
			Message: "columnar impedance streams carry no sensitivity columns",
			Field:   "with_sens", Constraint: "use the NDJSON response for sensitivities"})
		return
	}
	s.metrics.ObserveImpedance(mode, len(freqs))

	switch mode {
	case "optimize":
		res, err := pdn.OptimizeDecaps(r.Context(), pdn.OptimizeSpec{
			Grid:      grid,
			Freqs:     freqs,
			DecapC:    defaultF(req.DecapC, 1e-9),
			DecapESR:  defaultF(req.DecapESR, 5e-3),
			MaxDecaps: clampDecaps(req.MaxDecaps),
			Config:    cfg,
		})
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		placements := res.Placements
		if placements == nil {
			placements = []pdn.Placement{}
		}
		writeJSON(w, http.StatusOK, impedanceOptimizeResponse{
			PeakBefore: res.PeakBefore,
			PeakAfter:  res.PeakAfter,
			Placements: placements,
		})
	case "point":
		prof, err := s.cachedProfile(r.Context(), grid, freqs, cfg)
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, impedanceRecord(prof.Points[0]))
	default: // sweep
		prof, err := s.cachedProfile(r.Context(), grid, freqs, cfg)
		if err != nil {
			// Nothing has been written yet — the profile is computed before
			// streaming starts, so aborts keep their proper status line.
			writeError(w, toAPIError(err))
			return
		}
		stats := impedanceStats{
			Points:   len(prof.Points),
			PeakFreq: prof.Peak().Freq,
			PeakZ:    prof.Peak().AbsZ,
			Workers:  cfg.Workers,
		}
		if columnar {
			s.writeImpedanceColumnar(w, prof, stats)
			return
		}
		s.writeImpedanceNDJSON(w, prof, stats)
	}
}

// cachedProfile answers point and sweep requests through the sweep-profile
// LRU: identical requests (same mesh spec, frequency grid, and sensitivity
// flag — worker count is not part of the result, see profileKey) share one
// computed profile and skip the solver entirely. A miss builds one
// pdn.Sweeper for the request so its pooled engines carry the symbolic
// analysis across every frequency of the sweep. Optimize mode bypasses
// this path: it mutates the grid.
func (s *Server) cachedProfile(ctx context.Context, grid *pkgmodel.PDNGrid, freqs []float64, cfg pdn.Config) (*pdn.Profile, error) {
	return s.profiles.Get(profileKey(grid, freqs, cfg.WithSens), func() (*pdn.Profile, error) {
		sw, err := pdn.NewSweeper(grid, cfg)
		if err != nil {
			return nil, err
		}
		return sw.RunProfile(ctx, freqs)
	})
}

func defaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

func clampDecaps(n int) int {
	if n == 0 {
		return 4
	}
	if n > maxImpedanceDecaps {
		return maxImpedanceDecaps
	}
	return n
}

// writeImpedanceNDJSON streams the profile as NDJSON records, one per
// frequency, then the terminal done/stats summary.
func (s *Server) writeImpedanceNDJSON(w http.ResponseWriter, prof *pdn.Profile, stats impedanceStats) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := sweepBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= sweepBufMaxRetain {
			sweepBufPool.Put(buf)
		}
	}()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	for i := range prof.Points {
		rec := impedanceRecord(prof.Points[i])
		if err := enc.Encode(&rec); err != nil {
			return
		}
		if (i+1)%sweepFlushEvery == 0 {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return
			}
			buf.Reset()
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	_ = enc.Encode(impedanceSummary{Done: true, Stats: stats})
	_, _ = w.Write(buf.Bytes())
	buf.Reset()
	if flusher != nil {
		flusher.Flush()
	}
}

// writeImpedanceColumnar streams the profile as SSNC blocks with columns
// freq, z_re, z_im, z_mag (sweepColBlockRows rows per block), then a
// terminal zero-row block whose meta is the done/stats summary. The
// float64 bits are the NDJSON path's values exactly — JSON spells them in
// shortest round-trip decimal, SSNC ships the raw bits.
func (s *Server) writeImpedanceColumnar(w http.ResponseWriter, prof *pdn.Profile, stats impedanceStats) {
	s.metrics.ObserveColumnar("/v1/impedance", "out")
	w.Header().Set("Content-Type", colwire.ContentType)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	bufp := colBufPool.Get().(*[]byte)
	defer func() {
		if cap(*bufp) <= colBufMaxRetain {
			colBufPool.Put(bufp)
		}
	}()
	writeBlock := func(blk colwire.Block) bool {
		enc, err := blk.AppendTo((*bufp)[:0])
		*bufp = enc[:0]
		if err != nil {
			return false
		}
		if _, err := w.Write(enc); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	cols := make([]float64, 4*sweepColBlockRows)
	for lo := 0; lo < len(prof.Points); lo += sweepColBlockRows {
		hi := lo + sweepColBlockRows
		if hi > len(prof.Points) {
			hi = len(prof.Points)
		}
		n := hi - lo
		freq, zre := cols[0:n], cols[sweepColBlockRows:sweepColBlockRows+n]
		zim, zmag := cols[2*sweepColBlockRows:2*sweepColBlockRows+n], cols[3*sweepColBlockRows:3*sweepColBlockRows+n]
		for i := 0; i < n; i++ {
			p := &prof.Points[lo+i]
			freq[i] = p.Freq
			zre[i] = real(p.Z)
			zim[i] = imag(p.Z)
			zmag[i] = p.AbsZ
		}
		ok := writeBlock(colwire.Block{Columns: []colwire.Column{
			{Name: "freq", Values: freq},
			{Name: "z_re", Values: zre},
			{Name: "z_im", Values: zim},
			{Name: "z_mag", Values: zmag},
		}})
		if !ok {
			return
		}
	}
	meta, err := json.Marshal(impedanceSummary{Done: true, Stats: stats})
	if err != nil {
		return
	}
	_ = writeBlock(colwire.Block{Meta: meta})
}
