package serve

import (
	"go/ast"
	"go/parser"
	"go/token"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
)

// registeredCodes parses envelope.go and returns the Code* constant values
// — the frozen registry as written, not as compiled, so the AST walk below
// cannot drift from the source of truth.
func registeredCodes(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "envelope.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	codes := map[string]string{} // const name -> string value
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Code") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatal(err)
				}
				codes[name.Name] = val
			}
		}
	}
	if len(codes) == 0 {
		t.Fatal("no Code* constants found in envelope.go")
	}
	return codes
}

// TestNoUnregisteredErrorCodes walks every non-test file in the package
// and asserts each `Code:` field of an apiError composite literal is one
// of the registered Code* constants — no handler can invent a wire code
// the registry (and the OpenAPI enum) does not know about.
func TestNoUnregisteredErrorCodes(t *testing.T) {
	codes := registeredCodes(t)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	checked := 0
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Code" {
				return true
			}
			checked++
			id, ok := kv.Value.(*ast.Ident)
			if !ok {
				t.Errorf("%s: Code field is %T, not a registry constant",
					fset.Position(kv.Pos()), kv.Value)
				return true
			}
			if _, registered := codes[id.Name]; !registered {
				t.Errorf("%s: Code uses unregistered identifier %s",
					fset.Position(kv.Pos()), id.Name)
			}
			return true
		})
	}
	if checked < 10 {
		t.Fatalf("only %d Code: fields found; the AST walk is not seeing the handlers", checked)
	}
}

// TestRegistryStatusComplete: every registered code maps to a status, and
// the status table names only registered codes.
func TestRegistryStatusComplete(t *testing.T) {
	codes := registeredCodes(t)
	byValue := map[string]bool{}
	for name, val := range codes {
		byValue[val] = true
		if _, ok := errorCodeStatus[val]; !ok {
			t.Errorf("%s (%q) has no HTTP status mapping", name, val)
		}
	}
	for val := range errorCodeStatus {
		if !byValue[val] {
			t.Errorf("errorCodeStatus maps unregistered code %q", val)
		}
	}
	if got := statusFor(&apiError{Code: "no_such_code"}); got != http.StatusBadRequest {
		t.Errorf("unknown code degraded to %d, want 400", got)
	}
}

const legacyInlineJSON = `{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 8, "l": 5e-9, "rise_time": 1e-9}`

// TestLegacyEnvelopeDeprecation: inline-parameter requests still work but
// are stamped with Deprecation/Sunset headers and counted; the canonical
// nested form and batches are not.
func TestLegacyEnvelopeDeprecation(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/maxssn", legacyInlineJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy inline request failed: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy inline response missing Deprecation: true")
	}
	if resp.Header.Get("Sunset") != legacySunset {
		t.Errorf("Sunset header %q, want %q", resp.Header.Get("Sunset"), legacySunset)
	}
	if n := s.Metrics().LegacyEnvelopeCount(); n != 1 {
		t.Errorf("legacy counter %d after one legacy request, want 1", n)
	}

	nested := `{"params": ` + legacyInlineJSON + `}`
	resp, body = postJSON(t, ts.URL+"/v1/maxssn", nested)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nested request failed: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
		t.Error("nested envelope response carries deprecation headers")
	}

	batch := `{"items": [` + legacyInlineJSON + `]}`
	resp, body = postJSON(t, ts.URL+"/v1/maxssn", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch request failed: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("batch response carries deprecation headers")
	}
	if n := s.Metrics().LegacyEnvelopeCount(); n != 1 {
		t.Errorf("legacy counter %d after nested+batch requests, want still 1", n)
	}

	// The other enveloped endpoints share the decoder: spot-check waveform.
	resp, body = postJSON(t, ts.URL+"/v1/waveform", legacyInlineJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy waveform failed: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy waveform response missing Deprecation header")
	}
	if n := s.Metrics().LegacyEnvelopeCount(); n != 2 {
		t.Errorf("legacy counter %d, want 2", n)
	}

	// And the counter is exported.
	resp, body = postJSON(t, ts.URL+"/v1/maxssn", nested) // any request; then scrape
	_ = resp
	_ = body
	mresp, mbody := getURL(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mresp.StatusCode)
	}
	if !strings.Contains(string(mbody), "ssnserve_legacy_envelope_total 2") {
		t.Error("metrics exposition missing ssnserve_legacy_envelope_total")
	}
}
