package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"ssnkit/internal/dist"
)

// distTestSpec mirrors the fixture internal/dist tests use: awkward sizes,
// small enough to be instant.
func distTestSpec() dist.SweepSpec {
	return dist.SweepSpec{
		Base: dist.BaseParams{
			N: 16, K: 4e-3, V0: 0.6, A: 1.2,
			Vdd: 1.8, Slope: 1.8e9, L: 1.25e-9, C: 2e-12,
		},
		Axes: []dist.Axis{
			{Name: "n", From: 1, To: 64, Points: 8},
			{Name: "l", From: 5e-10, To: 8e-9, Points: 9},
		},
		ShardPoints: 16,
	}
}

// TestShardEndpoint pins the worker surface: POST /v1/shard returns the
// exact canonical payload dist.EvalShard computes for the same spec.
func TestShardEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := distTestSpec()
	want, err := dist.EvalShard(context.Background(), spec, 3, dist.EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(dist.ShardRequest{Spec: spec, Shard: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postJSON(t, ts.URL+"/v1/shard", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("endpoint payload differs from EvalShard (%d vs %d bytes)", len(got), len(want))
	}
}

func TestShardEndpointRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepPoints: 100})
	spec := distTestSpec()
	cases := []struct {
		name     string
		req      dist.ShardRequest
		wantCode string
	}{
		{"shard out of range", dist.ShardRequest{Spec: spec, Shard: 99}, "invalid_request"},
		{"negative shard", dist.ShardRequest{Spec: spec, Shard: -1}, "invalid_request"},
		{"bad axis domain", func() dist.ShardRequest {
			s := distTestSpec()
			s.Axes[1].From = -1e-9
			return dist.ShardRequest{Spec: s, Shard: 0}
		}(), "invalid_params"},
		{"oversized shard", func() dist.ShardRequest {
			s := distTestSpec()
			s.Axes[0].Points = 20 // 180-point grid
			s.ShardPoints = 150   // > MaxSweepPoints, not clamped by the total
			return dist.ShardRequest{Spec: s, Shard: 0}
		}(), "grid_too_large"},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(tc.req)
		resp, got := postJSON(t, ts.URL+"/v1/shard", string(body))
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s: got 200", tc.name)
			continue
		}
		if e := errEnvelope(t, got); e.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, e.Code, tc.wantCode)
		}
	}
}

// TestDistSweepEndpoint pins the server-side coordinator: the streamed
// NDJSON (minus the terminal summary) is byte-identical to the local
// baseline, and the run shows up on /v1/distsweep/status.
func TestDistSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{
		"params": {"n": 16, "package": "pga", "rise_time": 1e-9},
		"axes": [{"axis": "n", "from": 1, "to": 64, "points": 8},
		         {"axis": "l", "from": 5e-10, "to": 8e-9, "points": 9}],
		"shard_points": 16
	}`
	resp, got := postJSON(t, ts.URL+"/v1/distsweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Dist-Run") == "" {
		t.Error("no X-Dist-Run header")
	}

	lines := bytes.Split(bytes.TrimSuffix(got, []byte("\n")), []byte("\n"))
	if len(lines) != 72+1 {
		t.Fatalf("%d lines, want 72 points + summary", len(lines))
	}
	var summary distSummary
	if err := json.Unmarshal(lines[len(lines)-1], &summary); err != nil {
		t.Fatalf("terminal record: %v", err)
	}
	if !summary.Done || summary.Points != 72 {
		t.Fatalf("summary %+v", summary)
	}

	// The streamed points equal the canonical local evaluation of the same
	// spec (the server resolves the same base params the request named).
	spec, aerr := s.buildDistSpec(distSweepRequest{
		paramsEnvelope: paramsEnvelope{Params: &EvalItem{N: 16, Package: "pga", RiseTime: 1e-9}},
		Axes: []SweepAxis{
			{Axis: "n", From: 1, To: 64, Points: 8},
			{Axis: "l", From: 5e-10, To: 8e-9, Points: 9},
		},
		ShardPoints: 16,
	})
	if aerr != nil {
		t.Fatal(aerr)
	}
	want, err := dist.EvalRange(context.Background(), spec, 0, spec.Total(), dist.EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stream := bytes.Join(lines[:len(lines)-1], []byte("\n"))
	stream = append(stream, '\n')
	if !bytes.Equal(want, stream) {
		t.Fatal("distsweep stream differs from the canonical local evaluation")
	}

	// Status endpoint reports the finished run.
	resp2, sbody := getURL(t, ts.URL+"/v1/distsweep/status")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint: %d", resp2.StatusCode)
	}
	var status distStatusResponse
	if err := json.Unmarshal(sbody, &status); err != nil {
		t.Fatal(err)
	}
	if status.Count != 1 || !status.Runs[0].Progress.Done ||
		status.Runs[0].Progress.PointsDone != 72 {
		t.Fatalf("status %+v", status)
	}
	if _, sbody := getURL(t, ts.URL+"/v1/distsweep/status?id="+status.Runs[0].ID); !bytes.Contains(sbody, []byte(status.Runs[0].ID)) {
		t.Error("status by id did not return the run")
	}
	if resp3, _ := getURL(t, ts.URL+"/v1/distsweep/status?id=nope"); resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp3.StatusCode)
	}
}

// TestDistSweepValidatesBeforeStreaming pins the 400-before-first-byte
// contract on the coordinator endpoint too.
func TestDistSweepValidatesBeforeStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"params": {"n": 16, "package": "pga", "rise_time": 1e-9},
		"axes": [{"axis": "l", "from": -1e-9, "to": 8e-9, "points": 9}]
	}`
	resp, got := postJSON(t, ts.URL+"/v1/distsweep", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, got)
	}
	if e := errEnvelope(t, got); e.Code != "invalid_params" || e.Field != "axes" {
		t.Errorf("error %+v", e)
	}
}

// TestSweepDomainRejectedBeforeStream is the /v1/sweep regression test for
// the streaming-before-validation bug: an axis whose range provably
// contains invalid points (tr from -1ns, l from 0) must produce a
// structured 400 — never a 200 NDJSON stream of per-point errors.
func TestSweepDomainRejectedBeforeStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{
			"tr axis crossing zero",
			`{"params": {"n": 16, "package": "pga"}, "axes": [{"axis": "tr", "from": -1e-9, "to": 1e-9, "points": 8}]}`,
		},
		{
			"l axis starting at zero",
			`{"params": {"n": 16, "package": "pga", "rise_time": 1e-9}, "axes": [{"axis": "l", "from": 0, "to": 4e-9, "points": 8}]}`,
		},
		{
			"slope axis negative",
			`{"params": {"n": 16, "package": "pga"}, "axes": [{"axis": "slope", "from": -1e9, "to": 1e9, "points": 4}]}`,
		},
		{
			"c axis negative",
			`{"params": {"n": 16, "package": "pga", "rise_time": 1e-9}, "axes": [{"axis": "c", "from": -1e-12, "to": 1e-12, "points": 4}]}`,
		},
	}
	for _, tc := range cases {
		resp, got := postJSON(t, ts.URL+"/v1/sweep", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %.120s", tc.name, resp.StatusCode, got)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s: Content-Type %q, want JSON error envelope", tc.name, ct)
		}
		// The body must be exactly one structured error envelope — no NDJSON
		// stream started before the rejection.
		if bytes.Contains(bytes.TrimSpace(got), []byte("\n")) {
			t.Errorf("%s: multi-line body; stream started before validation: %.200s", tc.name, got)
		}
		e := errEnvelope(t, got)
		if e.Code != "invalid_params" || e.Field != "axes" || e.Constraint == "" {
			t.Errorf("%s: error %+v", tc.name, e)
		}
	}
}
