package serve

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"ssnkit/internal/pdn"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/spice"
)

// TestProfileKeyDistinguishes: every request knob that changes the result
// must change the key; knobs that do not (worker count) must not appear.
func TestProfileKeyDistinguishes(t *testing.T) {
	base := func() *pkgmodel.PDNGrid { return pkgmodel.DefaultPDN(pkgmodel.PGA, 3, 3, 4) }
	logF, err := spice.FreqGrid(1e6, 1e10, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	linF, err := spice.FreqGrid(1e6, 1e10, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	ref := profileKey(base(), logF, false)
	if got := profileKey(base(), logF, false); got != ref {
		t.Fatal("identical inputs produced different keys")
	}
	variants := map[string]string{
		"with_sens": profileKey(base(), logF, true),
		"linear":    profileKey(base(), linF, false),
		"package": profileKey(
			pkgmodel.DefaultPDN(pkgmodel.QFP, 3, 3, 4), logF, false),
		"rows": profileKey(pkgmodel.DefaultPDN(pkgmodel.PGA, 4, 3, 4), logF, false),
		"pads": profileKey(pkgmodel.DefaultPDN(pkgmodel.PGA, 3, 3, 2), logF, false),
		"points": func() string {
			f, err := spice.FreqGrid(1e6, 1e10, 21, true)
			if err != nil {
				t.Fatal(err)
			}
			return profileKey(base(), f, false)
		}(),
		"decap": func() string {
			g := base()
			g.DecapSites = append(g.DecapSites, pkgmodel.DecapSite{Node: 1, C: 1e-9, ESR: 5e-3})
			return profileKey(g, logF, false)
		}(),
	}
	seen := map[string]string{ref: "base"}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[key] = name
	}
}

// TestProfileCacheDedupAndError: concurrent misses on one key run the
// sweep once and share the result; a failed sweep is not retained, so the
// next lookup computes afresh.
func TestProfileCacheDedupAndError(t *testing.T) {
	c := NewProfileCache(8, nil)
	var calls atomic.Int32
	prof := &pdn.Profile{Points: []pdn.Point{{Freq: 1e6}}}
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*pdn.Profile, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Get("k", func() (*pdn.Profile, error) {
				calls.Add(1)
				<-gate
				return prof, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = p
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key, want 1", n)
	}
	for i, p := range results {
		if p != prof {
			t.Fatalf("goroutine %d got %p, want the shared profile", i, p)
		}
	}

	boom := errors.New("boom")
	if _, err := c.Get("bad", func() (*pdn.Profile, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	ok := false
	if _, err := c.Get("bad", func() (*pdn.Profile, error) { ok = true; return prof, nil }); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("failed entry was cached; retry never recomputed")
	}
}

// TestProfileCacheEviction: the LRU bound holds and Shards clamps to the
// capacity.
func TestProfileCacheEviction(t *testing.T) {
	c := NewProfileCache(1, nil)
	if c.Shards() != 1 {
		t.Fatalf("capacity 1 spread over %d shards", c.Shards())
	}
	prof := &pdn.Profile{Points: []pdn.Point{{}}}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := c.Get(key, func() (*pdn.Profile, error) { return prof, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, capacity 1", c.Len())
	}
}

// TestImpedanceProfileCached: repeated identical sweeps hit the cache (the
// second response must be byte-identical without re-solving), a request
// differing only in workers still hits, and a different grid misses. The
// exposition carries the outcome counters.
func TestImpedanceProfileCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const body = `{"rows":3,"cols":3,"pads":4,"points":24,"workers":1}`
	_, first := postJSON(t, ts.URL+"/v1/impedance", body)
	resp, second := postJSON(t, ts.URL+"/v1/impedance", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached sweep response differs from the first")
	}
	counts := s.Metrics().ImpedanceCacheCounts()
	if counts["miss"] != 1 || counts["hit"] != 1 {
		t.Fatalf("after identical sweeps: %v, want 1 miss + 1 hit", counts)
	}
	// Worker count shapes the run, not the result: still a hit.
	postJSON(t, ts.URL+"/v1/impedance", `{"rows":3,"cols":3,"pads":4,"points":24,"workers":2}`)
	// A different mesh is a different profile: a miss.
	postJSON(t, ts.URL+"/v1/impedance", `{"rows":2,"cols":3,"pads":4,"points":24}`)
	counts = s.Metrics().ImpedanceCacheCounts()
	if counts["miss"] != 2 || counts["hit"] != 2 {
		t.Fatalf("counts %v, want 2 misses + 2 hits", counts)
	}
	_, metrics := getURL(t, ts.URL+"/metrics")
	for _, want := range []string{
		`ssnserve_impedance_cache_total{outcome="hit"} 2`,
		`ssnserve_impedance_cache_total{outcome="miss"} 2`,
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("missing %q in metrics exposition", want)
		}
	}
}
