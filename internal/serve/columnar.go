package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"ssnkit/internal/colwire"
	"ssnkit/internal/sweep"
)

// This file is the SSNC columnar face of the v1 API (README "Columnar wire
// format"): POST /v1/maxssn accepts a columnar batch body, and /v1/maxssn
// batch plus /v1/sweep responses can be negotiated into columnar output.
// The JSON and columnar paths share one evaluation pipeline, so the values
// on either wire are the same float64s — JSON spells them in shortest
// round-trip decimal, SSNC ships the raw bits.

// isColumnarBody reports a request whose body is an SSNC block.
func isColumnarBody(r *http.Request) bool {
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && ct == colwire.ContentType
}

// acceptsMedia reports whether the Accept header lists the media type.
func acceptsMedia(r *http.Request, mediaType string) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err == nil && mt == mediaType {
			return true
		}
	}
	return false
}

// columnarResponseFor resolves the response encoding: an explicit
// columnar Accept wins, an explicit JSON Accept wins next, and with no
// stated preference the response mirrors the request body's format.
func columnarResponseFor(r *http.Request) bool {
	if acceptsMedia(r, colwire.ContentType) {
		return true
	}
	if acceptsMedia(r, "application/json") {
		return false
	}
	return isColumnarBody(r)
}

// columnarItemColumns is the set of per-row override columns a columnar
// /v1/maxssn batch may carry; every other name is rejected so a typo
// cannot silently evaluate the base point N times.
const columnarItemColumns = "n, l, c, slope, rise_time, vdd, pads, size"

// columnarBatchMeta is the meta JSON of a columnar /v1/maxssn request:
// just the shared parameter envelope (an explicit items list is the JSON
// form's job; columnar rows are the items).
type columnarBatchMeta struct {
	Items []json.RawMessage `json:"items"`
	paramsEnvelope
}

// decodeColumnarMaxSSN reads the single SSNC block of a columnar batch
// request and expands base params + override columns into EvalItems.
func (s *Server) decodeColumnarMaxSSN(w http.ResponseWriter, r *http.Request) ([]EvalItem, *apiError) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	blk, err := colwire.ReadBlock(body)
	if err != nil {
		if err == io.EOF {
			return nil, badRequest("empty columnar body")
		}
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) || errors.Is(err, colwire.ErrShortBlock) && bodyOverLimit(body) {
			return nil, &apiError{Code: CodeBodyTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return nil, badRequest("columnar body: %v", err)
	}
	if _, err := colwire.ReadBlock(body); err != io.EOF {
		return nil, badRequest("trailing data after columnar block")
	}

	var meta columnarBatchMeta
	if len(blk.Meta) > 0 {
		if err := json.Unmarshal(blk.Meta, &meta); err != nil {
			return nil, badRequest("columnar meta: %v", err)
		}
	}
	if len(meta.Items) > 0 {
		return nil, badRequest("columnar meta must not carry items; rows are the items")
	}
	base := meta.item()

	rows := blk.Rows()
	if len(blk.Columns) == 0 || rows == 0 {
		return nil, badRequest("columnar batch needs at least one column with at least one row")
	}
	if rows > s.cfg.MaxBatch {
		return nil, &apiError{Code: CodeBatchTooLarge,
			Message:    fmt.Sprintf("batch of %d exceeds the %d-item limit", rows, s.cfg.MaxBatch),
			Field:      "items",
			Value:      rows,
			Constraint: fmt.Sprintf("at most %d items", s.cfg.MaxBatch),
		}
	}

	items := make([]EvalItem, rows)
	for i := range items {
		items[i] = base
	}
	for ci := range blk.Columns {
		col := &blk.Columns[ci]
		switch col.Name {
		case "n":
			for i, v := range col.Values {
				items[i].N = roundedInt(v)
			}
		case "l":
			for i := range col.Values {
				items[i].L = &col.Values[i]
			}
		case "c":
			for i := range col.Values {
				items[i].C = &col.Values[i]
			}
		case "slope":
			for i, v := range col.Values {
				items[i].Slope = v
				items[i].RiseTime = 0
			}
		case "rise_time":
			for i, v := range col.Values {
				items[i].RiseTime = v
				items[i].Slope = 0
			}
		case "vdd":
			for i, v := range col.Values {
				items[i].Vdd = v
			}
		case "pads":
			for i, v := range col.Values {
				items[i].Pads = roundedInt(v)
			}
		case "size":
			for i, v := range col.Values {
				items[i].Size = v
			}
		default:
			return nil, badRequest("unknown columnar column %q; columns may be %s", col.Name, columnarItemColumns)
		}
	}
	return items, nil
}

// roundedInt converts a wire float to an int field, mapping anything that
// does not round to a representable positive count onto 0 so validation
// rejects it with the model's own constraint message.
func roundedInt(v float64) int {
	if !(v >= 0 && v <= 1<<31) {
		return 0
	}
	return int(math.Round(v))
}

// bodyOverLimit reports whether the limited reader was exhausted by a
// body at the cap (distinguishing a truncated block from an oversized one).
func bodyOverLimit(body io.Reader) bool {
	var one [1]byte
	_, err := body.Read(one[:])
	var maxErr *http.MaxBytesError
	return errors.As(err, &maxErr)
}

// colBufPool recycles columnar encode buffers across requests.
var colBufPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// colBufMaxRetain caps the capacity a pooled columnar buffer may pin.
const colBufMaxRetain = 1 << 20

// columnarBatchResponseMeta is the meta JSON of a columnar batch reply.
type columnarBatchResponseMeta struct {
	Count  int                  `json:"count"`
	Errors map[string]*apiError `json:"errors,omitempty"`
}

// writeColumnarBatch encodes batch results as one SSNC block: columns
// vmax, case_code, t_max, beta; failed rows carry NaN values and
// case_code -1 with the error envelope keyed by row index in the meta.
func (s *Server) writeColumnarBatch(w http.ResponseWriter, results []EvalResult) {
	rows := len(results)
	cols := make([]float64, 4*rows)
	vmax, caseCode := cols[0*rows:1*rows], cols[1*rows:2*rows]
	tmax, beta := cols[2*rows:3*rows], cols[3*rows:4*rows]
	meta := columnarBatchResponseMeta{Count: rows}
	for i := range results {
		res := &results[i]
		if res.Error != nil {
			if meta.Errors == nil {
				meta.Errors = make(map[string]*apiError)
			}
			meta.Errors[strconv.Itoa(i)] = res.Error
			nan := math.NaN()
			vmax[i], tmax[i], beta[i] = nan, nan, nan
			caseCode[i] = -1
			continue
		}
		vmax[i] = res.VMax
		caseCode[i] = float64(res.CaseCode)
		tmax[i] = res.TMax
		beta[i] = res.Beta
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		writeError(w, &apiError{Code: CodeInternal, Message: err.Error()})
		return
	}
	blk := colwire.Block{
		Meta: metaJSON,
		Columns: []colwire.Column{
			{Name: "vmax", Values: vmax},
			{Name: "case_code", Values: caseCode},
			{Name: "t_max", Values: tmax},
			{Name: "beta", Values: beta},
		},
	}
	bufp := colBufPool.Get().(*[]byte)
	defer func() {
		if cap(*bufp) <= colBufMaxRetain {
			colBufPool.Put(bufp)
		}
	}()
	enc, err := blk.AppendTo((*bufp)[:0])
	*bufp = enc[:0]
	if err != nil {
		writeError(w, &apiError{Code: CodeInternal, Message: err.Error()})
		return
	}
	s.metrics.ObserveColumnar("/v1/maxssn", "out")
	w.Header().Set("Content-Type", colwire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(enc)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(enc)
}

// handleMaxSSNColumnar serves a columnar-bodied POST /v1/maxssn: rows are
// batch items over the meta envelope's base point. The evaluation pipeline
// is the JSON batch path's; only the wire differs.
func (s *Server) handleMaxSSNColumnar(w http.ResponseWriter, r *http.Request) {
	items, aerr := s.decodeColumnarMaxSSN(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	s.metrics.ObserveColumnar("/v1/maxssn", "in")
	results := s.evalItems(r.Context(), items)
	if columnarResponseFor(r) {
		s.writeColumnarBatch(w, results)
		return
	}
	writeJSON(w, http.StatusOK, maxSSNBatchResponse{Count: len(results), Results: results})
}

// sweepColBlockRows is the row count per streamed sweep block: large
// enough to amortize the 16-byte header and column names, small enough
// that clients observe progress.
const sweepColBlockRows = 1024

// columnarSweepSink accumulates sweep points into per-column buffers and
// flushes them as SSNC blocks. Column slices are reused across blocks
// (AppendTo copies the bits out), so a million-point stream allocates a
// handful of slices once.
type columnarSweepSink struct {
	w       http.ResponseWriter
	flusher http.Flusher
	axes    []sweep.Axis
	buf     *[]byte

	axisVals [][]float64
	vmax     []float64
	caseCode []float64
	depth    []float64
	rows     int
	errs     map[string]*apiError
}

func newColumnarSweepSink(w http.ResponseWriter, axes []sweep.Axis) *columnarSweepSink {
	k := &columnarSweepSink{w: w, axes: axes}
	k.flusher, _ = w.(http.Flusher)
	k.buf = colBufPool.Get().(*[]byte)
	k.axisVals = make([][]float64, len(axes))
	for i := range k.axisVals {
		k.axisVals[i] = make([]float64, 0, sweepColBlockRows)
	}
	k.vmax = make([]float64, 0, sweepColBlockRows)
	k.caseCode = make([]float64, 0, sweepColBlockRows)
	k.depth = make([]float64, 0, sweepColBlockRows)
	return k
}

func (k *columnarSweepSink) release() {
	if cap(*k.buf) <= colBufMaxRetain {
		colBufPool.Put(k.buf)
	}
}

// add shapes one engine point into the pending block, mirroring the JSON
// path's resolution (the rounded N for a valid point on an n axis, raw
// axis values for failed points).
func (k *columnarSweepSink) add(pt sweep.Point) error {
	for i, ax := range k.axes {
		v := pt.Values[i]
		if ax.Name == sweep.AxisN && pt.Err == nil {
			v = float64(pt.Params.N)
		}
		k.axisVals[i] = append(k.axisVals[i], v)
	}
	if pt.Err != nil {
		if k.errs == nil {
			k.errs = make(map[string]*apiError)
		}
		k.errs[strconv.Itoa(k.rows)] = toAPIError(pt.Err)
		k.vmax = append(k.vmax, math.NaN())
		k.caseCode = append(k.caseCode, -1)
	} else {
		k.vmax = append(k.vmax, pt.VMax)
		k.caseCode = append(k.caseCode, float64(pt.Case))
	}
	k.depth = append(k.depth, float64(pt.Depth))
	k.rows++
	if k.rows >= sweepColBlockRows {
		return k.flush(nil)
	}
	return nil
}

// flush writes the pending rows as one block (with the given extra meta
// merged in) and resets the accumulators. A nil meta with zero rows is a
// no-op; a non-nil meta always emits a block, even with zero rows — the
// terminal done/stats (or abort error) frame.
func (k *columnarSweepSink) flush(meta json.RawMessage) error {
	if k.rows == 0 && meta == nil {
		return nil
	}
	blk := colwire.Block{Meta: meta}
	if k.rows > 0 {
		if k.errs != nil && meta == nil {
			m, err := json.Marshal(struct {
				Errors map[string]*apiError `json:"errors"`
			}{k.errs})
			if err != nil {
				return err
			}
			blk.Meta = m
		}
		blk.Columns = make([]colwire.Column, 0, len(k.axes)+3)
		for i, ax := range k.axes {
			blk.Columns = append(blk.Columns, colwire.Column{Name: ax.Name, Values: k.axisVals[i]})
		}
		blk.Columns = append(blk.Columns,
			colwire.Column{Name: "vmax", Values: k.vmax},
			colwire.Column{Name: "case_code", Values: k.caseCode},
			colwire.Column{Name: "depth", Values: k.depth},
		)
	}
	enc, err := blk.AppendTo((*k.buf)[:0])
	*k.buf = enc[:0]
	if err != nil {
		return err
	}
	if _, err := k.w.Write(enc); err != nil {
		return err
	}
	if k.flusher != nil {
		k.flusher.Flush()
	}
	for i := range k.axisVals {
		k.axisVals[i] = k.axisVals[i][:0]
	}
	k.vmax, k.caseCode, k.depth = k.vmax[:0], k.caseCode[:0], k.depth[:0]
	k.rows = 0
	k.errs = nil
	return nil
}

// sweepColumnarStats is the terminal block meta of a columnar sweep.
type sweepColumnarStats struct {
	Done  bool       `json:"done"`
	Stats sweepStats `json:"stats"`
}

// runSweepColumnar streams the sweep as a sequence of SSNC blocks: row
// blocks with one column per axis plus vmax/case_code/depth (per-row
// errors keyed by block row index in the meta), then a terminal zero-row
// block whose meta is {"done":true,"stats":{...}} — or the error envelope
// if the engine aborted.
func (s *Server) runSweepColumnar(w http.ResponseWriter, r *http.Request, g sweep.Grid, cfg sweep.Config) {
	s.metrics.ObserveColumnar("/v1/sweep", "out")
	w.Header().Set("Content-Type", colwire.ContentType)
	w.WriteHeader(http.StatusOK)
	sink := newColumnarSweepSink(w, g.Axes)
	defer sink.release()
	stats, err := sweep.Run(r.Context(), g, cfg, func(pt sweep.Point) error {
		return sink.add(pt)
	})
	s.metrics.ObserveSweep(stats.Evaluated, stats.Chunks, stats.RefinedPoints, err == nil)
	// Drain pending rows, then the terminal frame (the same split the
	// NDJSON path makes between its last batch and the summary line).
	if ferr := sink.flush(nil); ferr != nil {
		return
	}
	var meta []byte
	if err != nil {
		meta, _ = json.Marshal(map[string]*apiError{"error": toAPIError(err)})
	} else {
		meta, _ = json.Marshal(sweepColumnarStats{Done: true, Stats: sweepStats{
			GridPoints: stats.GridPoints, Chunks: stats.Chunks,
			Evaluated: stats.Evaluated, Errors: stats.Errors,
			RefinedPoints: stats.RefinedPoints, MaxDepth: stats.MaxDepth,
			Workers: stats.Workers,
		}})
	}
	_ = sink.flush(meta)
}

// DecodeColumnarStream reads every SSNC block of a columnar sweep or batch
// stream (a convenience for clients and tests; cmd/ssnload uses it).
func DecodeColumnarStream(r io.Reader) ([]*colwire.Block, error) {
	var blocks []*colwire.Block
	for {
		blk, err := colwire.ReadBlock(r)
		if err == io.EOF {
			return blocks, nil
		}
		if err != nil {
			return blocks, err
		}
		blocks = append(blocks, blk)
	}
}
