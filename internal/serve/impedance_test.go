package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"ssnkit/internal/colwire"
)

// postJSONAccept POSTs a JSON body with an explicit Accept header.
func postJSONAccept(t *testing.T, url, body, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", accept)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestImpedancePoint: point mode answers one frequency with Z and, when
// asked, per-element adjoint sensitivities.
func TestImpedancePoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/impedance",
		`{"package":"pga","rows":2,"cols":2,"pads":2,"freq":1e8,"with_sens":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pt impedancePoint
	if err := json.Unmarshal(body, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Freq != 1e8 {
		t.Errorf("freq %g, want 1e8", pt.Freq)
	}
	if !(pt.ZMag > 0) || math.Abs(math.Hypot(pt.ZRe, pt.ZIm)-pt.ZMag) > 1e-12*pt.ZMag {
		t.Errorf("inconsistent Z: re=%g im=%g mag=%g", pt.ZRe, pt.ZIm, pt.ZMag)
	}
	if len(pt.Sens) == 0 {
		t.Fatal("with_sens returned no sensitivities")
	}
	for _, s := range pt.Sens {
		if s.Name == "" || (s.Kind != "R" && s.Kind != "L" && s.Kind != "C") {
			t.Errorf("malformed sensitivity entry %+v", s)
		}
	}
}

// TestImpedanceSweepNDJSON: sweep mode streams one record per frequency in
// ascending order plus a terminal done/stats summary whose peak matches
// the streamed maximum.
func TestImpedanceSweepNDJSON(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/impedance",
		`{"rows":3,"cols":3,"pads":4,"from":1e6,"to":1e10,"points":50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 51 {
		t.Fatalf("%d lines, want 50 points + summary", len(lines))
	}
	var prevFreq, maxZ float64
	for _, line := range lines[:50] {
		var pt impedancePoint
		if err := json.Unmarshal(line, &pt); err != nil {
			t.Fatalf("%v in %s", err, line)
		}
		if pt.Freq <= prevFreq {
			t.Fatalf("frequencies not ascending: %g after %g", pt.Freq, prevFreq)
		}
		prevFreq = pt.Freq
		if pt.ZMag > maxZ {
			maxZ = pt.ZMag
		}
	}
	var sum impedanceSummary
	if err := json.Unmarshal(lines[50], &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Stats.Points != 50 {
		t.Errorf("summary %+v", sum)
	}
	if sum.Stats.PeakZ != maxZ {
		t.Errorf("summary peak %g != streamed max %g", sum.Stats.PeakZ, maxZ)
	}
	byMode, points := s.Metrics().ImpedanceCounts()
	if byMode["sweep"] != 1 || points != 50 {
		t.Errorf("metrics: byMode=%v points=%d", byMode, points)
	}
}

// TestImpedanceSweepColumnarMatchesJSON is the wire-equivalence check: the
// SSNC z_mag column must carry bit-identical float64s to the NDJSON
// stream's z_mag fields (shortest round-trip decimal re-parses to the
// same bits).
func TestImpedanceSweepColumnarMatchesJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const reqBody = `{"rows":3,"cols":3,"pads":4,"from":1e6,"to":1e10,"points":40}`

	_, jsonBody := postJSON(t, ts.URL+"/v1/impedance", reqBody)
	lines := bytes.Split(bytes.TrimSpace(jsonBody), []byte("\n"))
	var jsonMags, jsonFreqs []float64
	for _, line := range lines[:len(lines)-1] {
		var pt impedancePoint
		if err := json.Unmarshal(line, &pt); err != nil {
			t.Fatal(err)
		}
		jsonMags = append(jsonMags, pt.ZMag)
		jsonFreqs = append(jsonFreqs, pt.Freq)
	}

	resp, colBody := postJSONAccept(t, ts.URL+"/v1/impedance", reqBody, colwire.ContentType)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("columnar status %d: %s", resp.StatusCode, colBody)
	}
	if ct := resp.Header.Get("Content-Type"); ct != colwire.ContentType {
		t.Fatalf("content type %q", ct)
	}
	blocks, err := DecodeColumnarStream(bytes.NewReader(colBody))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("%d blocks, want rows + terminal", len(blocks))
	}
	last := blocks[len(blocks)-1]
	if last.Rows() != 0 {
		t.Fatalf("terminal block has %d rows", last.Rows())
	}
	var sum impedanceSummary
	if err := json.Unmarshal(last.Meta, &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Stats.Points != 40 {
		t.Errorf("terminal meta %+v", sum)
	}
	var colMags, colFreqs []float64
	for _, blk := range blocks[:len(blocks)-1] {
		cols := map[string][]float64{}
		for _, c := range blk.Columns {
			cols[c.Name] = c.Values
		}
		for _, name := range []string{"freq", "z_re", "z_im", "z_mag"} {
			if cols[name] == nil {
				t.Fatalf("row block missing column %q", name)
			}
		}
		colMags = append(colMags, cols["z_mag"]...)
		colFreqs = append(colFreqs, cols["freq"]...)
	}
	if len(colMags) != len(jsonMags) {
		t.Fatalf("columnar carries %d rows, JSON %d", len(colMags), len(jsonMags))
	}
	for i := range colMags {
		if colMags[i] != jsonMags[i] || colFreqs[i] != jsonFreqs[i] {
			t.Errorf("row %d: columnar (%g, %g) vs JSON (%g, %g)",
				i, colFreqs[i], colMags[i], jsonFreqs[i], jsonMags[i])
		}
	}
}

// TestImpedanceOptimize: the service smoke of the acceptance criterion —
// optimize mode must lower peak |Z| and report the greedy steps.
func TestImpedanceOptimize(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/impedance",
		`{"rows":3,"cols":3,"pads":4,"mode":"optimize","points":60,"decap_c":2e-9,"decap_esr":0.01,"max_decaps":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res impedanceOptimizeResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) == 0 {
		t.Fatal("optimizer placed nothing")
	}
	if !(res.PeakAfter < res.PeakBefore) {
		t.Fatalf("peak did not drop: before %g after %g", res.PeakBefore, res.PeakAfter)
	}
	for i, p := range res.Placements {
		if p.Grad >= 0 {
			t.Errorf("placement %d on non-negative gradient %g", i, p.Grad)
		}
		if !(p.PeakAfter < p.PeakBefore) {
			t.Errorf("placement %d did not lower the peak: %g -> %g", i, p.PeakBefore, p.PeakAfter)
		}
	}
}

// TestImpedanceValidation: malformed requests draw structured 4xx answers
// from the frozen code registry before any streaming starts.
func TestImpedanceValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepPoints: 1000})
	cases := []struct {
		name, body, code string
	}{
		{"bad package", `{"package":"dip"}`, CodeInvalidRequest},
		{"bad mode", `{"mode":"resonate"}`, CodeInvalidRequest},
		{"negative rows", `{"rows":-1}`, CodeInvalidRequest},
		{"mesh too large", `{"rows":100,"cols":100}`, CodeGridTooLarge},
		{"too many points", `{"points":100000}`, CodeGridTooLarge},
		{"point needs freq", `{"mode":"point"}`, CodeInvalidRequest},
		{"bad grid range", `{"from":1e9,"to":1e6}`, CodeInvalidRequest},
		{"sites need optimize", `{"decap_sites":[0]}`, CodeInvalidRequest},
		{"site out of range", `{"mode":"optimize","points":4,"decap_sites":[99]}`, CodeInvalidRequest},
		{"sens in optimize", `{"mode":"optimize","points":4,"with_sens":true}`, CodeInvalidRequest},
		{"trailing garbage", `{"rows":2} x`, CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/impedance", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var env struct {
				Error apiError `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code %q, want %q: %s", env.Error.Code, tc.code, body)
			}
		})
	}
}

// TestImpedanceColumnarSensRejected: sensitivity output has no columnar
// encoding, so the combination is refused before streaming.
func TestImpedanceColumnarSensRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSONAccept(t, ts.URL+"/v1/impedance",
		`{"rows":2,"cols":2,"with_sens":true,"points":4}`, colwire.ContentType)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(CodeInvalidRequest)) {
		t.Errorf("unexpected error body: %s", body)
	}
}

// TestImpedanceMetricsExposition: the Prometheus text surface must carry
// the impedance counters after traffic.
func TestImpedanceMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/impedance", `{"rows":2,"cols":2,"freq":1e8}`)
	postJSON(t, ts.URL+"/v1/impedance", `{"rows":2,"cols":2,"points":8}`)
	_, metrics := getURL(t, ts.URL+"/metrics")
	for _, want := range []string{
		`ssnserve_impedance_total{mode="point"} 1`,
		`ssnserve_impedance_total{mode="sweep"} 1`,
		`ssnserve_impedance_points_total 9`,
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("missing %q in metrics exposition", want)
		}
	}
}
