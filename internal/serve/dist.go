package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"ssnkit/internal/device"
	"ssnkit/internal/dist"
	"ssnkit/internal/sweep"
)

// distEvalConfig wires shard evaluation into the server's shared machinery:
// the one worker pool gates chunk concurrency and the extraction cache
// serves size-axis re-extractions.
func (s *Server) distEvalConfig() dist.EvalConfig {
	return dist.EvalConfig{
		Workers: s.cfg.Workers,
		Gate:    s.pool,
		Extract: func(spec device.ExtractSpec) (device.ASDM, error) {
			m, _, err := s.cache.Get(spec)
			return m, err
		},
	}
}

// handleShard serves POST /v1/shard: evaluate one shard of a distributed
// sweep spec and return its canonical NDJSON payload. This is the worker
// side of internal/dist — the body is fully resolved (no kit or package
// lookups), so any replica returns identical bytes.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req dist.ShardRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeError(w, toAPIError(err))
		return
	}
	n := req.Spec.NumShards()
	if req.Shard < 0 || req.Shard >= n {
		writeError(w, &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("shard %d outside the spec's %d-shard decomposition", req.Shard, n),
			Field:   "shard", Value: req.Shard,
			Constraint: fmt.Sprintf("must be within [0, %d)", n)})
		return
	}
	lo, hi := req.Spec.ShardRange(req.Shard)
	if hi-lo > s.cfg.MaxSweepPoints {
		writeError(w, &apiError{Code: CodeGridTooLarge,
			Message:    fmt.Sprintf("shard of %d points exceeds the %d-point limit", hi-lo, s.cfg.MaxSweepPoints),
			Field:      "spec.shard_points",
			Constraint: fmt.Sprintf("at most %d points per shard", s.cfg.MaxSweepPoints)})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	payload, err := dist.EvalShard(ctx, req.Spec, req.Shard, s.distEvalConfig())
	if err != nil {
		writeError(w, toAPIError(err))
		return
	}
	s.metrics.ObserveShard(hi - lo)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(payload)
}

// distSweepRequest asks the server to coordinate a distributed sweep: the
// usual fixed-parameters + axes shape, plus the replica fan-out. Empty
// workers means the server evaluates shards in-process (still sharded, so
// the output bytes match any distributed run of the same spec).
type distSweepRequest struct {
	paramsEnvelope
	Axes        []SweepAxis `json:"axes"`
	Workers     []string    `json:"workers,omitempty"`
	ShardPoints int         `json:"shard_points,omitempty"`
	APIKey      string      `json:"api_key,omitempty"` // forwarded to replicas as X-API-Key
}

// distSummary is the terminal NDJSON record of a completed distributed
// sweep.
type distSummary struct {
	Done    bool    `json:"done"`
	Shards  int     `json:"shards"`
	Points  int     `json:"points"`
	Reused  int     `json:"reused"`
	Retries int     `json:"retries"`
	Elapsed float64 `json:"elapsed_seconds"`
}

// buildDistSpec validates the request and assembles the self-contained
// sweep spec a coordinator (or worker) needs: axes checked, base parameters
// resolved through the kit/package machinery, extraction named explicitly.
func (s *Server) buildDistSpec(req distSweepRequest) (dist.SweepSpec, *apiError) {
	var spec dist.SweepSpec
	if req.ShardPoints < 0 {
		return spec, &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("shard_points = %d must be non-negative", req.ShardPoints),
			Field:   "shard_points", Value: req.ShardPoints, Constraint: "must be >= 0"}
	}
	g, _, aerr := s.buildSweep(sweepRequest{paramsEnvelope: req.paramsEnvelope, Axes: req.Axes})
	if aerr != nil {
		return spec, aerr
	}
	spec = dist.SweepSpec{
		Base: dist.BaseParams{
			N: g.Base.N, K: g.Base.Dev.K, V0: g.Base.Dev.V0, A: g.Base.Dev.A,
			Vdd: g.Base.Vdd, Slope: g.Base.Slope, L: g.Base.L, C: g.Base.C,
		},
		ShardPoints: req.ShardPoints,
	}
	for _, ax := range g.Axes {
		spec.Axes = append(spec.Axes, dist.Axis{Name: ax.Name, From: ax.From, To: ax.To,
			Points: ax.Points, Log: ax.Log})
	}
	if g.Spec.Process != "" {
		spec.Extract = &dist.Extract{Process: g.Spec.Process,
			Corner: g.Spec.Corner.String(), Rail: g.Spec.Rail}
	}
	return spec, nil
}

// handleDistSweep serves POST /v1/distsweep: shard the grid, fan shards out
// to the named worker replicas (or evaluate in-process), and stream the
// merged NDJSON in global point order, ending with a {"done":true} summary.
// Progress is readable concurrently on GET /v1/distsweep/status.
func (s *Server) handleDistSweep(w http.ResponseWriter, r *http.Request) {
	var req distSweepRequest
	if aerr := s.decodeEnvelope(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	spec, aerr := s.buildDistSpec(req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	tracker := dist.NewTracker()
	id := s.dist.add(tracker)
	s.metrics.ObserveDistSweep()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Dist-Run", id)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	fw := &flushWriter{w: w, f: flusher}

	opts := dist.Options{
		Workers: req.Workers,
		APIKey:  req.APIKey,
		Eval:    s.distEvalConfig(),
		Tracker: tracker,
	}
	summary, err := dist.Run(r.Context(), spec, opts, fw)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err != nil {
		// The 200 status line is long gone; report the abort as a terminal
		// NDJSON record in the standard error envelope.
		_ = enc.Encode(map[string]*apiError{"error": toAPIError(err)})
	} else {
		_ = enc.Encode(distSummary{Done: true, Shards: summary.Shards,
			Points: summary.Points, Reused: summary.Reused,
			Retries: summary.Retries, Elapsed: summary.Duration.Seconds()})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// flushWriter flushes after every write: the coordinator hands over whole
// shard payloads, and each should reach the client as soon as it is merged.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// distRuns is the bounded registry behind GET /v1/distsweep/status: the
// most recent coordinator runs, newest first, each a live Tracker the
// status handler snapshots.
type distRuns struct {
	mu   sync.Mutex
	max  int
	seq  int
	runs []distRunEntry // oldest first; evicted from the front
}

type distRunEntry struct {
	id      string
	tracker *dist.Tracker
}

func newDistRuns(max int) *distRuns { return &distRuns{max: max} }

func (d *distRuns) add(t *dist.Tracker) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	id := fmt.Sprintf("dist-%d", d.seq)
	d.runs = append(d.runs, distRunEntry{id: id, tracker: t})
	if len(d.runs) > d.max {
		d.runs = d.runs[len(d.runs)-d.max:]
	}
	return id
}

// distRunStatus is one run's entry in the status response.
type distRunStatus struct {
	ID       string        `json:"id"`
	Progress dist.Progress `json:"progress"`
}

// distStatusResponse is the GET /v1/distsweep/status body.
type distStatusResponse struct {
	Count int             `json:"count"`
	Runs  []distRunStatus `json:"runs"`
}

// handleDistStatus serves GET /v1/distsweep/status: snapshots of the
// retained coordinator runs, newest first. ?id= filters to one run.
func (s *Server) handleDistStatus(w http.ResponseWriter, r *http.Request) {
	want := r.URL.Query().Get("id")
	s.dist.mu.Lock()
	entries := make([]distRunEntry, len(s.dist.runs))
	copy(entries, s.dist.runs)
	s.dist.mu.Unlock()
	resp := distStatusResponse{Runs: []distRunStatus{}}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if want != "" && e.id != want {
			continue
		}
		resp.Runs = append(resp.Runs, distRunStatus{ID: e.id, Progress: e.tracker.Snapshot()})
	}
	if want != "" && len(resp.Runs) == 0 {
		writeError(w, &apiError{Code: CodeNotFound, Message: fmt.Sprintf("unknown dist run %q", want)})
		return
	}
	resp.Count = len(resp.Runs)
	writeJSON(w, http.StatusOK, resp)
}

// Interface checks: the shared pool must satisfy the sweep gate the dist
// evaluator threads through.
var _ sweep.Gate = (*pool)(nil)
