// Package serve is ssnkit's HTTP/JSON evaluation service: the closed-form
// SSN models, batched and long-running, behind a small REST surface. It is
// the seam every scaling direction plugs into — one process today, shards
// behind a load balancer tomorrow — and it mirrors how SSN analysis is
// consumed in signoff flows: cell noise models evaluated en masse per
// design, not one CLI invocation at a time.
//
// Endpoints:
//
//	POST /v1/maxssn      single or batch Params -> {vmax, case, sensitivity}
//	POST /v1/solve       inverse design (variable for a vmax budget) / yield
//	POST /v1/waveform    sampled V(t)/I(t) from the L or LC closed form
//	POST /v1/sweep       multi-axis grid sweep streamed as NDJSON
//	POST /v1/shard       one distributed-sweep shard [lo,hi) as NDJSON
//	POST /v1/montecarlo  asynchronous Monte Carlo job; returns a job ID
//	POST /v1/distsweep   coordinate a sweep across worker replicas
//	GET  /v1/distsweep/status  progress of the latest coordinator runs
//	GET  /v1/jobs/{id}   job status and result
//	GET  /healthz        liveness + in-flight/cache gauges
//	GET  /metrics        Prometheus text exposition
//
// Internals: every unit of evaluation — a batch item, a Monte Carlo job —
// runs through one bounded worker pool sized by GOMAXPROCS; ASDM
// extraction (the expensive repeated step) is cached per process corner in
// a sharded LRU, and compiled evaluation plans are memoized per parameter
// point; requests are validated against size and time limits with
// structured JSON errors; shutdown drains in-flight jobs before
// cancelling them.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"runtime"
	"time"
)

// Config tunes the service. The zero value is usable: every field has a
// production-ready default.
type Config struct {
	Addr           string        // listen address, default ":8350"
	Workers        int           // worker-pool slots, default GOMAXPROCS
	MaxBatch       int           // max items per /v1/maxssn batch, default 8192
	CacheSize      int           // ASDM extraction LRU entries, default 64
	RequestTimeout time.Duration // synchronous evaluation budget, default 30s
	MaxBodyBytes   int64         // request body cap, default 8 MiB
	MaxJobs        int           // retained job records, default 1024
	MaxMCSamples   int           // max Monte Carlo samples per job, default 10,000,000
	MaxSweepPoints int           // max grid points per /v1/sweep, default 1,000,000
	PlanCacheSize  int           // compiled-plan cache entries, default 4096
	// ImpedanceCacheSize bounds the sweep-profile LRU (cached /v1/impedance
	// point and sweep results), default 128. Profiles can be large (points
	// x sensitivities), so the default stays modest.
	ImpedanceCacheSize int

	// Admission control. Evaluation endpoints pass through a bounded
	// concurrency + queue gate; excess load is shed with 429 + Retry-After
	// instead of queueing without bound.
	MaxConcurrent int           // concurrently admitted requests, default 2*Workers
	MaxQueue      int           // requests allowed to wait for admission, default 64
	RetryAfter    time.Duration // Retry-After hint on queue sheds, default 1s
	QuotaRPS      float64       // per-API-key token refill rate, 0 disables quotas
	QuotaBurst    float64       // per-API-key bucket capacity, default 2*QuotaRPS (min 1)

	// MaxDistRuns bounds retained /v1/distsweep run records, default 64.
	MaxDistRuns int

	// EnablePprof mounts net/http/pprof under /debug/pprof/ and a
	// runtime/metrics snapshot under /debug/runtime. Profiles expose heap
	// contents and symbol names; enable only on loopback or otherwise
	// access-controlled listeners, never on one facing untrusted clients.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8350"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxMCSamples <= 0 {
		c.MaxMCSamples = 10_000_000
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 1_000_000
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 4096
	}
	if c.ImpedanceCacheSize <= 0 {
		c.ImpedanceCacheSize = 128
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * c.Workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.QuotaRPS > 0 && c.QuotaBurst <= 0 {
		c.QuotaBurst = max(2*c.QuotaRPS, 1)
	}
	if c.MaxDistRuns <= 0 {
		c.MaxDistRuns = 64
	}
	return c
}

// Server wires the pool, job store, extraction cache and metrics behind
// the HTTP mux. Construct with New, serve with ListenAndServe (or mount
// Handler in a test server), stop with Shutdown.
type Server struct {
	cfg      Config
	metrics  *Metrics
	cache    *ExtractCache
	plans    *PlanCache
	profiles *ProfileCache
	pool     *pool
	jobs     *jobStore
	adm      *admission
	dist     *distRuns
	mux      *http.ServeMux
	httpSrv  *http.Server
	start    time.Time
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	p := newPool(cfg.Workers)
	s := &Server{
		cfg:      cfg,
		metrics:  m,
		cache:    NewExtractCache(cfg.CacheSize, m),
		plans:    NewPlanCache(cfg.PlanCacheSize),
		profiles: NewProfileCache(cfg.ImpedanceCacheSize, m),
		pool:     p,
		jobs:     newJobStore(p, m, cfg.MaxJobs),
		dist:     newDistRuns(cfg.MaxDistRuns),
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	s.adm = newAdmission(cfg, m)
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mux.Handle("POST /v1/maxssn", s.admitted("/v1/maxssn", s.handleMaxSSN))
	s.mux.Handle("POST /v1/solve", s.admitted("/v1/solve", s.handleSolve))
	s.mux.Handle("POST /v1/waveform", s.admitted("/v1/waveform", s.handleWaveform))
	s.mux.Handle("POST /v1/sweep", s.admitted("/v1/sweep", s.handleSweep))
	s.mux.Handle("POST /v1/impedance", s.admitted("/v1/impedance", s.handleImpedance))
	s.mux.Handle("POST /v1/shard", s.admitted("/v1/shard", s.handleShard))
	s.mux.Handle("POST /v1/montecarlo", s.admitted("/v1/montecarlo", s.handleMonteCarlo))
	s.mux.Handle("POST /v1/distsweep", s.instrument("/v1/distsweep", s.handleDistSweep))
	s.mux.Handle("GET /v1/distsweep/status", s.instrument("/v1/distsweep/status", s.handleDistStatus))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJob))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	if cfg.EnablePprof {
		s.mountDebug()
	}
	return s
}

// Handler returns the routed handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (the ssnserve binary logs a summary on
// exit; tests assert on counters).
func (s *Server) Metrics() *Metrics { return s.metrics }

// ListenAndServe serves on cfg.Addr until Shutdown or a listener error.
// Like net/http, it returns http.ErrServerClosed after a clean Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener (lets callers bind port 0 and
// discover the address before accepting traffic).
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Addr returns the configured listen address.
func (s *Server) Addr() string { return s.cfg.Addr }

// Shutdown stops accepting connections, then drains in-flight jobs. Jobs
// still running when ctx expires are cancelled and awaited, so no
// goroutine outlives the call.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.httpSrv.Shutdown(ctx)
	drainErr := s.jobs.drain(ctx)
	return errors.Join(httpErr, drainErr)
}
