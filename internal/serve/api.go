package serve

import (
	"errors"
	"fmt"
	"math"

	"ssnkit/internal/device"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/ssn"
	"ssnkit/internal/sweep"
)

// apiError is the wire shape of every error body: {"error": {...}}. The
// field/value/constraint triple is populated when the cause is a
// structured ssn.ValidationError, so clients can point at the offending
// input instead of parsing the message.
type apiError struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	Field      string `json:"field,omitempty"`
	Value      any    `json:"value,omitempty"`
	Constraint string `json:"constraint,omitempty"`

	// retryAfter, when positive, becomes a Retry-After response header
	// (seconds): shed responses tell clients when to come back.
	retryAfter int
}

func (e *apiError) Error() string { return e.Message }

// badRequest builds an invalid_request apiError.
func badRequest(format string, args ...any) *apiError {
	return &apiError{Code: CodeInvalidRequest, Message: fmt.Sprintf(format, args...)}
}

// toAPIError maps any error onto the wire shape. Structured model errors
// keep their structure — and their own codes: a point that fails model
// validation or leaves the sweep domain is invalid_params (the request was
// well-formed; the physics rejected it), an inverse query with no boundary
// in the bracket is unsolvable.
func toAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var ve *ssn.ValidationError
	if errors.As(err, &ve) {
		return &apiError{
			Code:       CodeInvalidParams,
			Message:    ve.Error(),
			Field:      ve.Field,
			Value:      ve.Value,
			Constraint: ve.Constraint,
		}
	}
	var de *sweep.DomainError
	if errors.As(err, &de) {
		return &apiError{
			Code:       CodeInvalidParams,
			Message:    de.Error(),
			Field:      "axes",
			Value:      de.Bound,
			Constraint: fmt.Sprintf("axis %s %s", de.Axis, de.Constraint),
		}
	}
	var se *ssn.SolveError
	if errors.As(err, &se) {
		return &apiError{
			Code:       CodeUnsolvable,
			Message:    se.Error(),
			Field:      "vmax_budget",
			Value:      se.Budget,
			Constraint: fmt.Sprintf("no %s boundary within [%g, %g]", se.Var, se.Lo, se.Hi),
		}
	}
	return &apiError{Code: CodeInvalidRequest, Message: err.Error()}
}

// DeviceSpec is an explicit ASDM supplied inline, bypassing extraction.
type DeviceSpec struct {
	K  float64 `json:"k"`
	V0 float64 `json:"v0"`
	A  float64 `json:"a"`
}

// EvalItem is one evaluation point: which driver device (a process corner
// to extract, or an explicit ASDM), which ground net (a package class or
// explicit L/C), and the input edge. It is the request body of the
// synchronous endpoints and the common prefix of the asynchronous ones.
type EvalItem struct {
	// Device selection: either Dev (+Vdd) or a process kit to extract.
	Process string      `json:"process,omitempty"` // default "c018"
	Corner  string      `json:"corner,omitempty"`  // "tt" (default), "ss", "ff"
	Rail    bool        `json:"rail,omitempty"`    // pull-up drivers (rail droop)
	Size    float64     `json:"size,omitempty"`    // driver width multiple
	Dev     *DeviceSpec `json:"dev,omitempty"`
	Vdd     float64     `json:"vdd,omitempty"` // required with Dev; else kit supply

	// Circuit.
	N       int      `json:"n"`
	Package string   `json:"package,omitempty"` // default "pga" when L unset
	Pads    int      `json:"pads,omitempty"`    // paralleled ground pads, default 1
	L       *float64 `json:"l,omitempty"`       // explicit inductance, H
	C       *float64 `json:"c,omitempty"`       // explicit capacitance, F

	// Input edge: one of slope (V/s) or rise_time (s).
	Slope    float64 `json:"slope,omitempty"`
	RiseTime float64 `json:"rise_time,omitempty"`

	// Sensitivity asks for first-order dVmax/d{N,L,s,C} in the result.
	Sensitivity bool `json:"sensitivity,omitempty"`
}

// extractSpec names the ASDM extraction the item asks for (only valid
// when no explicit Dev is supplied).
func (it EvalItem) extractSpec() (device.ExtractSpec, error) {
	proc := it.Process
	if proc == "" {
		proc = "c018"
	}
	corner, err := device.CornerByName(it.Corner)
	if err != nil {
		return device.ExtractSpec{}, badRequest("%v", err)
	}
	return device.ExtractSpec{Process: proc, Corner: corner, Rail: it.Rail, Size: it.Size}, nil
}

// resolve turns the wire item into model parameters, pulling device
// extraction through the cache.
func (it EvalItem) resolve(cache *ExtractCache) (ssn.Params, error) {
	var p ssn.Params
	p.N = it.N

	vdd := it.Vdd
	if it.Dev != nil {
		if vdd <= 0 {
			return p, badRequest("dev requires an explicit vdd > 0")
		}
		p.Dev = device.ASDM{K: it.Dev.K, V0: it.Dev.V0, A: it.Dev.A}
	} else {
		spec, err := it.extractSpec()
		if err != nil {
			return p, err
		}
		asdm, _, err := cache.Get(spec)
		if err != nil {
			return p, badRequest("%v", err)
		}
		p.Dev = asdm
		if vdd <= 0 {
			if vdd, err = spec.Vdd(); err != nil {
				return p, badRequest("%v", err)
			}
		}
	}
	p.Vdd = vdd

	switch {
	case it.L != nil:
		p.L = *it.L
		if it.C != nil {
			p.C = *it.C
		}
	default:
		pkg := it.Package
		if pkg == "" {
			pkg = "pga"
		}
		pack, err := pkgmodel.ByName(pkg)
		if err != nil {
			return p, badRequest("%v", err)
		}
		pads := it.Pads
		if pads < 1 {
			pads = 1
		}
		gnd := pack.Ground(pads)
		p.L, p.C = gnd.L, gnd.C
		if it.C != nil {
			p.C = *it.C
		}
	}

	switch {
	case it.Slope > 0:
		p.Slope = it.Slope
	case it.RiseTime > 0:
		p.Slope = p.Vdd / it.RiseTime
	default:
		return p, badRequest("one of slope or rise_time must be positive")
	}

	return p, p.Validate()
}

// SensitivityResult is the JSON shape of ssn.Sensitivity.
type SensitivityResult struct {
	DVdN float64 `json:"dvmax_dn"`
	DVdL float64 `json:"dvmax_dl"`
	DVdS float64 `json:"dvmax_dslope"`
	DVdC float64 `json:"dvmax_dc"`
	RelN float64 `json:"rel_n"`
	RelL float64 `json:"rel_l"`
	RelS float64 `json:"rel_slope"`
	RelC float64 `json:"rel_c"`
}

// EvalResult is one /v1/maxssn answer. In batch responses Index identifies
// the request item; failed items carry Error and zero values elsewhere.
type EvalResult struct {
	Index    int                `json:"index"`
	VMax     float64            `json:"vmax"`
	Case     string             `json:"case,omitempty"`
	CaseCode int                `json:"case_code,omitempty"`
	Beta     float64            `json:"beta,omitempty"`
	Zeta     *float64           `json:"zeta,omitempty"`  // nil when C = 0 (no ringing)
	TMax     float64            `json:"t_max,omitempty"` // time of max after turn-on, s
	Sens     *SensitivityResult `json:"sensitivity,omitempty"`
	Error    *apiError          `json:"error,omitempty"`
}

// maxSSNRequest accepts a single point ("params" nested, or legacy inline
// fields) or a batch ({"items": [...]}); a non-empty items list wins.
type maxSSNRequest struct {
	Items []EvalItem `json:"items"`
	paramsEnvelope
}

// legacyInline ignores the inline fields when a batch is supplied: items
// requests never read them, so they cannot deprecate anything.
func (q *maxSSNRequest) legacyInline() bool {
	return len(q.Items) == 0 && q.paramsEnvelope.legacyInline()
}

// maxSSNBatchResponse is the envelope of a batch evaluation.
type maxSSNBatchResponse struct {
	Count   int          `json:"count"`
	Results []EvalResult `json:"results"`
}

// waveformRequest asks for the sampled model waveforms of one item.
type waveformRequest struct {
	paramsEnvelope
	Model     string  `json:"model,omitempty"`      // "lc" (default) or "l"
	Samples   int     `json:"samples,omitempty"`    // default 256, max 65536
	RampStart float64 `json:"ramp_start,omitempty"` // absolute ramp start time, s
}

// waveformResponse carries the sampled bounce voltage and inductor current
// on a shared time grid (absolute circuit time).
type waveformResponse struct {
	Case  string    `json:"case,omitempty"`
	Times []float64 `json:"times"`
	V     []float64 `json:"v"`
	I     []float64 `json:"i"`
}

// VariationSpec mirrors ssn.Variation on the wire.
type VariationSpec struct {
	K     float64 `json:"k,omitempty"`
	V0    float64 `json:"v0,omitempty"`
	A     float64 `json:"a,omitempty"`
	L     float64 `json:"l,omitempty"`
	C     float64 `json:"c,omitempty"`
	Slope float64 `json:"slope,omitempty"`
}

// monteCarloRequest submits an asynchronous Monte Carlo job.
type monteCarloRequest struct {
	paramsEnvelope
	Samples   int           `json:"samples"`
	Seed      int64         `json:"seed,omitempty"`
	Workers   int           `json:"workers,omitempty"`
	Variation VariationSpec `json:"variation"`
}

// monteCarloResult is the JSON shape of ssn.MCResult.
type monteCarloResult struct {
	Samples int            `json:"samples"`
	Mean    float64        `json:"mean"`
	StdDev  float64        `json:"std_dev"`
	Min     float64        `json:"min"`
	Max     float64        `json:"max"`
	P95     float64        `json:"p95"`
	P99     float64        `json:"p99"`
	Cases   map[string]int `json:"cases"`
}

// jobResponse is returned by POST /v1/montecarlo.
type jobResponse struct {
	Job       Job    `json:"job"`
	StatusURL string `json:"status_url"`
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	JobsInFlight  int     `json:"jobs_in_flight"`
	CacheEntries  int     `json:"cache_entries"`
}

// finiteOrNil boxes a float for JSON, dropping non-finite values (which
// encoding/json rejects).
func finiteOrNil(x float64) *float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return nil
	}
	return &x
}
