package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func waitTerminal(t *testing.T, st *jobStore, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := st.lookup(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch j.State {
		case JobDone, JobFailed, JobCanceled:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobStoreLifecycle(t *testing.T) {
	st := newJobStore(newPool(2), NewMetrics(), 16)
	j := st.submit(func(ctx context.Context) (any, error) { return 42, nil })
	if j.ID == "" {
		t.Fatal("empty job ID")
	}
	final := waitTerminal(t, st, j.ID)
	if final.State != JobDone || final.Result != 42 {
		t.Errorf("final %+v", final)
	}
	if final.Started == nil || final.Finished == nil {
		t.Error("timestamps not set")
	}
}

func TestJobStoreFailure(t *testing.T) {
	st := newJobStore(newPool(1), NewMetrics(), 16)
	j := st.submit(func(ctx context.Context) (any, error) {
		return nil, errors.New("solver exploded")
	})
	final := waitTerminal(t, st, j.ID)
	if final.State != JobFailed || final.Error == nil || final.Error.Message != "solver exploded" {
		t.Errorf("final %+v", final)
	}
}

func TestJobStorePoolBound(t *testing.T) {
	// With one slot, two blocking jobs must serialize.
	st := newJobStore(newPool(1), NewMetrics(), 16)
	gate := make(chan struct{})
	running := make(chan string, 2)
	for i := 0; i < 2; i++ {
		i := i
		st.submit(func(ctx context.Context) (any, error) {
			running <- fmt.Sprint(i)
			<-gate
			return nil, nil
		})
	}
	<-running
	select {
	case id := <-running:
		t.Fatalf("second job %s ran concurrently on a 1-slot pool", id)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := st.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobStoreEvictionKeepsActive(t *testing.T) {
	st := newJobStore(newPool(4), NewMetrics(), 2)
	var done []string
	for i := 0; i < 4; i++ {
		j := st.submit(func(ctx context.Context) (any, error) { return nil, nil })
		done = append(done, j.ID)
		waitTerminal(t, st, j.ID)
	}
	// A blocked (active) job plus overflow finished jobs: the active one
	// must survive eviction.
	gate := make(chan struct{})
	active := st.submit(func(ctx context.Context) (any, error) { <-gate; return nil, nil })
	st.submit(func(ctx context.Context) (any, error) { return nil, nil })
	if _, ok := st.lookup(active.ID); !ok {
		t.Fatal("active job evicted")
	}
	close(gate)
	if err := st.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	n := len(st.jobs)
	st.mu.Unlock()
	if n > 3 {
		t.Errorf("store retained %d jobs, cap is 2 (+ active slack)", n)
	}
	_ = done
}

func TestPoolAcquireRespectsContext(t *testing.T) {
	p := newPool(1)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("full pool acquire: %v, want deadline", err)
	}
	p.release()
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.release()
}

func TestJobIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := newJobID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate job ID %s", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
