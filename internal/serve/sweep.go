package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"ssnkit/internal/device"
	"ssnkit/internal/sweep"
)

// SweepAxis is the wire shape of one swept dimension.
type SweepAxis struct {
	Axis   string  `json:"axis"` // n, l, c, slope, tr, size
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Points int     `json:"points"`
	Log    bool    `json:"log,omitempty"`
}

// sweepRequest asks for a multi-axis grid sweep streamed as NDJSON. The
// fixed parameters use the shared params envelope; swept fields may be
// omitted there (axes override them per point).
type sweepRequest struct {
	paramsEnvelope
	Axes        []SweepAxis `json:"axes"`
	ChunkSize   int         `json:"chunk_size,omitempty"`   // default 1024
	Workers     int         `json:"workers,omitempty"`      // capped at the server pool
	RefineDepth int         `json:"refine_depth,omitempty"` // case-boundary bisection levels, max 8
}

// sweepPoint is one NDJSON record: the resolved axis values, the Table 1
// answer, and — for failed points — the standard error object in place.
type sweepPoint struct {
	Values   map[string]float64 `json:"values"`
	VMax     float64            `json:"vmax,omitempty"`
	Case     string             `json:"case,omitempty"`
	CaseCode int                `json:"case_code,omitempty"`
	Depth    int                `json:"depth,omitempty"`
	Error    *apiError          `json:"error,omitempty"`
}

// sweepStats mirrors sweep.Stats on the wire.
type sweepStats struct {
	GridPoints    int `json:"grid_points"`
	Chunks        int `json:"chunks"`
	Evaluated     int `json:"evaluated"`
	Errors        int `json:"errors"`
	RefinedPoints int `json:"refined_points"`
	MaxDepth      int `json:"max_refine_depth"`
	Workers       int `json:"workers"`
}

// sweepSummary is the terminal NDJSON record of a completed sweep.
type sweepSummary struct {
	Done  bool       `json:"done"`
	Stats sweepStats `json:"stats"`
}

// maxRefineDepth bounds the refinement recursion a request may ask for.
const maxRefineDepth = 8

// buildSweep validates the request and assembles the engine inputs.
func (s *Server) buildSweep(req sweepRequest) (sweep.Grid, sweep.Config, *apiError) {
	var g sweep.Grid
	var cfg sweep.Config
	if len(req.Axes) == 0 {
		return g, cfg, &apiError{Code: CodeInvalidRequest, Message: "need at least one axis",
			Field: "axes", Constraint: "must name 1 or more swept axes"}
	}
	total := 1
	sizeSwept := false
	for _, ax := range req.Axes {
		if ax.Points < 1 {
			return g, cfg, &apiError{Code: CodeInvalidRequest,
				Message: fmt.Sprintf("axis %s: points = %d must be at least 1", ax.Axis, ax.Points),
				Field:   "axes", Value: ax.Points, Constraint: "points >= 1"}
		}
		if total > s.cfg.MaxSweepPoints/ax.Points {
			total = s.cfg.MaxSweepPoints + 1
			break
		}
		total *= ax.Points
		if ax.Axis == sweep.AxisSize {
			sizeSwept = true
		}
		g.Axes = append(g.Axes, sweep.Axis{Name: ax.Axis, From: ax.From, To: ax.To,
			Points: ax.Points, Log: ax.Log})
	}
	if total > s.cfg.MaxSweepPoints {
		return g, cfg, &apiError{Code: CodeGridTooLarge,
			Message:    fmt.Sprintf("grid exceeds the %d-point limit", s.cfg.MaxSweepPoints),
			Field:      "axes",
			Constraint: fmt.Sprintf("at most %d grid points", s.cfg.MaxSweepPoints)}
	}
	// Reject malformed axes (unknown name, duplicates, inverted range) and
	// statically-invalid domains (an l/slope/tr axis starting at or below
	// zero fails on every point) here, while a 400 status line is still
	// possible — once streaming starts, errors can only arrive as trailing
	// NDJSON records.
	if err := g.ValidateDomain(); err != nil {
		return g, cfg, toAPIError(err)
	}

	// Resolve the fixed parameters, defaulting the swept fields so a
	// request need not supply values the axes will overwrite anyway.
	it := req.item()
	for _, ax := range req.Axes {
		switch ax.Axis {
		case sweep.AxisN:
			if it.N == 0 {
				it.N = 1
			}
		case sweep.AxisSlope, sweep.AxisRise:
			if it.Slope == 0 && it.RiseTime == 0 {
				it.RiseTime = 1e-9
			}
		}
	}
	if sizeSwept {
		if it.Dev != nil {
			return g, cfg, &apiError{Code: CodeInvalidRequest,
				Message: "a size axis re-extracts the device and cannot be combined with an explicit dev",
				Field:   "dev", Constraint: "omit dev when sweeping size"}
		}
		spec, err := it.extractSpec()
		if err != nil {
			return g, cfg, toAPIError(err)
		}
		g.Spec = spec
	}
	p, err := it.resolve(s.cache)
	if err != nil {
		return g, cfg, toAPIError(err)
	}
	g.Base = p

	if req.RefineDepth < 0 || req.RefineDepth > maxRefineDepth {
		return g, cfg, &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("refine_depth = %d outside [0, %d]", req.RefineDepth, maxRefineDepth),
			Field:   "refine_depth", Value: req.RefineDepth,
			Constraint: fmt.Sprintf("must be within [0, %d]", maxRefineDepth)}
	}
	cfg = sweep.Config{
		Workers:     req.Workers,
		ChunkSize:   req.ChunkSize,
		RefineDepth: req.RefineDepth,
		Gate:        s.pool,
		Extract: func(spec device.ExtractSpec) (device.ASDM, error) {
			m, _, err := s.cache.Get(spec)
			return m, err
		},
	}
	if cfg.Workers <= 0 || cfg.Workers > s.cfg.Workers {
		cfg.Workers = s.cfg.Workers
	}
	return g, cfg, nil
}

// sweepRecordInto shapes one engine point for the wire into a reused
// record: resolved values (the rounded N, the extracted size) where
// available, raw axis values for failed points. Reuse matters at 10^5+
// points per stream — the Values map keys are the axis names on every
// point, so overwriting in place allocates nothing after the first call.
func sweepRecordInto(rec *sweepPoint, axes []sweep.Axis, pt sweep.Point) {
	if rec.Values == nil {
		rec.Values = make(map[string]float64, len(axes))
	}
	rec.Depth = pt.Depth
	rec.VMax = 0
	rec.Case = ""
	rec.CaseCode = 0
	rec.Error = nil
	for k, ax := range axes {
		v := pt.Values[k]
		if ax.Name == sweep.AxisN && pt.Err == nil {
			v = float64(pt.Params.N)
		}
		rec.Values[ax.Name] = v
	}
	if pt.Err != nil {
		rec.Error = toAPIError(pt.Err)
		return
	}
	rec.VMax = pt.VMax
	rec.Case = pt.Case.String()
	rec.CaseCode = int(pt.Case)
}

// sweepFlushEvery bounds how many NDJSON lines may buffer before a flush:
// clients observe progress incrementally without a per-line syscall.
const sweepFlushEvery = 64

// sweepBufPool recycles NDJSON encode buffers across sweep requests.
// Records are encoded into a pooled bytes.Buffer and written to the
// connection once per sweepFlushEvery lines, so the per-point cost is a
// JSON encode into memory, not a ResponseWriter round trip.
var sweepBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// sweepBufMaxRetain caps the capacity of a buffer returned to the pool; a
// stream of pathologically wide records must not pin its high-water mark
// for the life of the process.
const sweepBufMaxRetain = 1 << 16

// handleSweep serves POST /v1/sweep: a chunked multi-axis grid sweep
// streamed as NDJSON, one record per point, with per-point errors in
// place, optional adaptive refinement records, and a terminal
// {"done":true} summary. Cancelling the request (closing the connection)
// cancels the sweep mid-stream; the engine guarantees no goroutine
// survives the handler.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if aerr := s.decodeEnvelope(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	g, cfg, aerr := s.buildSweep(req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	if columnarResponseFor(r) {
		s.runSweepColumnar(w, r, g, cfg)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := sweepBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= sweepBufMaxRetain {
			sweepBufPool.Put(buf)
		}
	}()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	var rec sweepPoint
	lines := 0
	sink := func(pt sweep.Point) error {
		sweepRecordInto(&rec, g.Axes, pt)
		if err := enc.Encode(&rec); err != nil {
			return err
		}
		lines++
		if lines%sweepFlushEvery == 0 {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return err
			}
			buf.Reset()
			if flusher != nil {
				flusher.Flush()
			}
		}
		return nil
	}
	stats, err := sweep.Run(r.Context(), g, cfg, sink)
	s.metrics.ObserveSweep(stats.Evaluated, stats.Chunks, stats.RefinedPoints, err == nil)
	if err != nil {
		// The status line is long gone; report the abort as a terminal
		// NDJSON record in the same error envelope.
		_ = enc.Encode(map[string]*apiError{"error": toAPIError(err)})
	} else {
		_ = enc.Encode(sweepSummary{Done: true, Stats: sweepStats{
			GridPoints: stats.GridPoints, Chunks: stats.Chunks,
			Evaluated: stats.Evaluated, Errors: stats.Errors,
			RefinedPoints: stats.RefinedPoints, MaxDepth: stats.MaxDepth,
			Workers: stats.Workers,
		}})
	}
	_, _ = w.Write(buf.Bytes()) // drain the partial batch + terminal record
	buf.Reset()
	if flusher != nil {
		flusher.Flush()
	}
}
