package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"
)

// solveParamsJSON is a deep-under-damped point (C well above critical) so
// both peak and boundary cases are reachable by the solver.
const solveParamsJSON = `{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "n": 8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9}`

func decodeSolve(t *testing.T, body []byte) SolveResult {
	t.Helper()
	var res SolveResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decoding solve result: %v\n%s", err, body)
	}
	return res
}

// TestSolveSingleRoundTrip: solve n for a budget through the nested
// envelope, then verify via /v1/maxssn that the solved point meets it.
func TestSolveSingleRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"params": ` + solveParamsJSON + `, "vmax_budget": 0.4, "variable": "n"}`
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve failed: %d %s", resp.StatusCode, body)
	}
	res := decodeSolve(t, body)
	if res.Mode != "solve" || res.Variable != "n" {
		t.Fatalf("mode/variable = %q/%q, want solve/n", res.Mode, res.Variable)
	}
	if res.Value <= 0 || res.MaxDrivers < 1 || res.MaxDrivers > int(res.Value)+1 {
		t.Fatalf("implausible boundary: value %g, max_drivers %d", res.Value, res.MaxDrivers)
	}
	if res.VMax < 0.4-1e-9 || res.VMax > 0.4 {
		t.Fatalf("vmax %g outside [budget-1e-9, budget]", res.VMax)
	}
	if res.Evals <= 0 {
		t.Fatalf("evals = %d, want > 0", res.Evals)
	}

	// The integer driver count must satisfy the budget per /v1/maxssn ...
	check := fmt.Sprintf(`{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9, "n": %d}}`, res.MaxDrivers)
	resp, body = postJSON(t, ts.URL+"/v1/maxssn", check)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maxssn check failed: %d %s", resp.StatusCode, body)
	}
	var ev EvalResult
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.VMax > 0.4 {
		t.Errorf("max_drivers=%d evaluates to vmax %g > budget 0.4", res.MaxDrivers, ev.VMax)
	}
	// ... and one more driver must exceed it.
	over := fmt.Sprintf(`{"params": {"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9, "n": %d}}`, res.MaxDrivers+1)
	resp, body = postJSON(t, ts.URL+"/v1/maxssn", over)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maxssn over-check failed: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.VMax <= 0.4 {
		t.Errorf("max_drivers+1=%d still meets the budget (vmax %g)", res.MaxDrivers+1, ev.VMax)
	}
}

// TestSolveVariables: every free variable solves through the API and
// reports the canonical variable name.
func TestSolveVariables(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, v := range []string{"n", "l", "c", "slope", "rise_time", "tr"} {
		req := fmt.Sprintf(`{"params": %s, "vmax_budget": 0.4, "variable": %q}`, solveParamsJSON, v)
		resp, body := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s failed: %d %s", v, resp.StatusCode, body)
		}
		res := decodeSolve(t, body)
		want := v
		if v == "tr" {
			want = "rise_time"
		}
		if res.Variable != want {
			t.Errorf("variable %q reported as %q", v, res.Variable)
		}
		if res.VMax < 0.4-1e-9 || res.VMax > 0.4 {
			t.Errorf("solve %s: vmax %g outside the budget window", v, res.VMax)
		}
	}
}

// TestSolveBatch: a mixed batch evaluates concurrently with per-item
// errors in place.
func TestSolveBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"items": [
		{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9, "vmax_budget": 0.4, "variable": "n"},
		{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9, "vmax_budget": 0.3, "variable": "l", "n": 8},
		{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9, "vmax_budget": 0.4, "variable": "bogus"}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch solve failed: %d %s", resp.StatusCode, body)
	}
	var batch solveBatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Count != 3 || len(batch.Results) != 3 {
		t.Fatalf("count %d / %d results, want 3", batch.Count, len(batch.Results))
	}
	for i, res := range batch.Results[:2] {
		if res.Error != nil {
			t.Fatalf("item %d errored: %+v", i, res.Error)
		}
		if res.Index != i || res.Value <= 0 {
			t.Errorf("item %d: index %d value %g", i, res.Index, res.Value)
		}
	}
	bad := batch.Results[2]
	if bad.Error == nil || bad.Error.Code != "invalid_params" {
		t.Fatalf("bogus variable: error %+v, want invalid_params in place", bad.Error)
	}
}

// TestSolveYieldMode: mode "yield" returns a pass probability with a
// Wilson interval, deterministic for a fixed seed.
func TestSolveYieldMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"params": ` + solveParamsJSON + `, "vmax_budget": 0.05, "mode": "yield",
		"samples": 4000, "seed": 42, "workers": 4}`
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("yield failed: %d %s", resp.StatusCode, body)
	}
	res := decodeSolve(t, body)
	if res.Mode != "yield" || res.Yield == nil {
		t.Fatalf("mode %q, yield %v", res.Mode, res.Yield)
	}
	y := res.Yield
	if y.Samples != 4000 || y.Pass < 0 || y.Pass > y.Samples {
		t.Fatalf("samples %d pass %d", y.Samples, y.Pass)
	}
	if math.Abs(y.Probability-float64(y.Pass)/float64(y.Samples)) > 1e-12 {
		t.Errorf("probability %g != pass/samples", y.Probability)
	}
	if !(y.WilsonLo <= y.Probability && y.Probability <= y.WilsonHi) {
		t.Errorf("Wilson interval [%g, %g] does not cover %g", y.WilsonLo, y.WilsonHi, y.Probability)
	}
	if y.Stats.Samples != 4000 || !(y.Stats.Mean > 0) {
		t.Errorf("stats: %+v", y.Stats)
	}

	// Same seed, same answer.
	resp2, body2 := postJSON(t, ts.URL+"/v1/solve", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("yield rerun failed: %d", resp2.StatusCode)
	}
	res2 := decodeSolve(t, body2)
	if res2.Yield.Pass != y.Pass || res2.Yield.Probability != y.Probability ||
		res2.Yield.WilsonLo != y.WilsonLo || res2.Yield.WilsonHi != y.WilsonHi {
		t.Errorf("yield not deterministic for a fixed seed: %+v vs %+v", res2.Yield, y)
	}
}

// TestSolveUnsolvableIs422: a budget unreachable in the bracket returns
// the unsolvable code with HTTP 422.
func TestSolveUnsolvableIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Saturation: the L-only supremum is beta; no driver count reaches a
	// budget above it once saturation clamps growth. Use a huge budget.
	req := `{"params": ` + solveParamsJSON + `, "vmax_budget": 1e6, "variable": "l"}`
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	aerr := errEnvelope(t, body)
	if aerr.Code != "unsolvable" {
		t.Fatalf("code %q, want unsolvable", aerr.Code)
	}
	if aerr.Field != "vmax_budget" || aerr.Constraint == "" {
		t.Errorf("error lacks field/constraint detail: %+v", aerr)
	}
}

// TestSolveValidationErrors: bad requests get structured 400s.
func TestSolveValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, code string
		status           int
	}{
		{"missing variable", `{"params": ` + solveParamsJSON + `, "vmax_budget": 0.4}`, "invalid_params", 400},
		{"bad mode", `{"params": ` + solveParamsJSON + `, "vmax_budget": 0.4, "mode": "dream"}`, "invalid_request", 400},
		{"negative budget", `{"params": ` + solveParamsJSON + `, "vmax_budget": -1, "variable": "n"}`, "invalid_params", 400},
		{"inverted bracket", `{"params": ` + solveParamsJSON + `, "vmax_budget": 0.4, "variable": "n", "lo": 100, "hi": 1}`, "invalid_params", 400},
		{"yield bad budget", `{"params": ` + solveParamsJSON + `, "vmax_budget": 0, "mode": "yield"}`, "invalid_params", 400},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/solve", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if aerr := errEnvelope(t, body); aerr.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, aerr.Code, tc.code)
		}
	}
}

// TestSolveLegacyInlineDeprecated: /v1/solve shares the envelope decoder,
// so inline params carry the deprecation stamp.
func TestSolveLegacyInlineDeprecated(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := `{"dev": {"k": 0.02, "v0": 0.5, "a": 1.6}, "vdd": 1.8, "l": 5e-9, "c": 2e-11, "rise_time": 1e-9,
		"vmax_budget": 0.4, "variable": "n"}`
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy inline solve failed: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "true" || resp.Header.Get("Sunset") == "" {
		t.Error("legacy inline solve response missing deprecation headers")
	}
	if n := s.Metrics().LegacyEnvelopeCount(); n != 1 {
		t.Errorf("legacy counter %d, want 1", n)
	}
}

// TestSolveMetrics: solves are counted by mode in the exposition.
func TestSolveMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	solve := `{"params": ` + solveParamsJSON + `, "vmax_budget": 0.4, "variable": "n"}`
	yield := `{"params": ` + solveParamsJSON + `, "vmax_budget": 0.05, "mode": "yield", "samples": 200, "seed": 1}`
	for _, req := range []string{solve, solve, yield} {
		if resp, body := postJSON(t, ts.URL+"/v1/solve", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("request failed: %d %s", resp.StatusCode, body)
		}
	}
	resp, body := getURL(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		`ssnserve_solves_total{mode="solve"} 2`,
		`ssnserve_solves_total{mode="yield"} 1`,
	} {
		if !containsLine(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// containsLine reports whether text contains the exact line.
func containsLine(text, line string) bool {
	for len(text) > 0 {
		i := 0
		for i < len(text) && text[i] != '\n' {
			i++
		}
		if text[:i] == line {
			return true
		}
		if i == len(text) {
			break
		}
		text = text[i+1:]
	}
	return false
}
