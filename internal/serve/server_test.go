package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

const itemJSON = `{"process":"c018","n":16,"package":"pga","pads":2,"rise_time":1e-9}`

func TestMaxSSNSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/maxssn", itemJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res EvalResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.VMax <= 0 || res.VMax >= 1.8 {
		t.Errorf("vmax %g implausible for c018", res.VMax)
	}
	if res.Case == "" || res.Beta <= 0 {
		t.Errorf("incomplete result: %+v", res)
	}
}

func TestMaxSSNSensitivityAndExplicitDevice(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"dev":{"k":0.02,"v0":0.5,"a":1.6},"vdd":1.8,"n":8,"l":2.5e-9,"c":2e-12,"slope":1.8e9,"sensitivity":true}`
	resp, body := postJSON(t, ts.URL+"/v1/maxssn", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res EvalResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Sens == nil {
		t.Fatal("sensitivity requested but absent")
	}
	if res.Sens.RelN <= 0 || res.Sens.RelL <= 0 {
		t.Errorf("relative sensitivities must be positive: %+v", res.Sens)
	}
}

func TestMaxSSNBatch(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var items []string
	for i := 0; i < 100; i++ {
		items = append(items, fmt.Sprintf(
			`{"process":"c018","corner":%q,"n":%d,"package":"pga","pads":2,"rise_time":1e-9}`,
			[]string{"tt", "ss", "ff"}[i%3], 4+i%32))
	}
	resp, body := postJSON(t, ts.URL+"/v1/maxssn", `{"items":[`+strings.Join(items, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out maxSSNBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 100 || len(out.Results) != 100 {
		t.Fatalf("count %d, results %d", out.Count, len(out.Results))
	}
	for i, r := range out.Results {
		if r.Error != nil {
			t.Fatalf("item %d failed: %+v", i, r.Error)
		}
		if r.Index != i {
			t.Fatalf("item %d has index %d", i, r.Index)
		}
		if r.VMax <= 0 {
			t.Errorf("item %d vmax %g", i, r.VMax)
		}
	}
	// 100 items over 3 corners: the extraction cache must have absorbed
	// the repeats.
	hits, misses := s.Metrics().CacheRates()
	if misses != 3 {
		t.Errorf("expected 3 cache misses (one per corner), got %d", misses)
	}
	if hits != 97 {
		t.Errorf("expected 97 cache hits, got %d", hits)
	}
}

func TestMaxSSNMalformedAndInvalid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantCode   int
		wantField  string
	}{
		{"malformed JSON", `{"n": `, http.StatusBadRequest, ""},
		{"trailing data", itemJSON + ` {"x":1}`, http.StatusBadRequest, ""},
		{"bad N", `{"process":"c018","n":0,"rise_time":1e-9}`, http.StatusBadRequest, "N"},
		{"bad process", `{"process":"c999","n":4,"rise_time":1e-9}`, http.StatusBadRequest, ""},
		{"no edge", `{"process":"c018","n":4}`, http.StatusBadRequest, ""},
		{"bad corner", `{"process":"c018","corner":"xx","n":4,"rise_time":1e-9}`, http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/maxssn", tc.body)
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantCode, body)
			continue
		}
		var env struct {
			Error *apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Errorf("%s: error body missing: %s", tc.name, body)
			continue
		}
		if tc.wantField != "" && env.Error.Field != tc.wantField {
			t.Errorf("%s: field %q, want %q", tc.name, env.Error.Field, tc.wantField)
		}
	}
}

func TestMaxSSNOversizedBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})
	items := strings.Repeat(itemJSON+",", 5)
	resp, body := postJSON(t, ts.URL+"/v1/maxssn", `{"items":[`+strings.TrimSuffix(items, ",")+`]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "batch_too_large") {
		t.Errorf("missing batch_too_large code: %s", body)
	}
}

func TestMaxSSNOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	resp, body := postJSON(t, ts.URL+"/v1/maxssn",
		`{"items":[`+strings.TrimSuffix(strings.Repeat(itemJSON+",", 20), ",")+`]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"items":[` + itemJSON + `,{"process":"c018","n":0,"rise_time":1e-9},` + itemJSON + `]}`
	resp, body := postJSON(t, ts.URL+"/v1/maxssn", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out maxSSNBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error != nil || out.Results[2].Error != nil {
		t.Error("good items must succeed")
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Field != "N" {
		t.Errorf("bad item must carry a structured error: %+v", out.Results[1].Error)
	}
}

func TestWaveformEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/waveform",
		`{"process":"c018","n":16,"package":"pga","pads":2,"rise_time":1e-9,"samples":64}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var wf waveformResponse
	if err := json.Unmarshal(body, &wf); err != nil {
		t.Fatal(err)
	}
	if len(wf.Times) != 64 || len(wf.V) != 64 || len(wf.I) != 64 {
		t.Fatalf("lengths %d/%d/%d, want 64", len(wf.Times), len(wf.V), len(wf.I))
	}
	maxV := 0.0
	for _, v := range wf.V {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		t.Error("waveform never rises above zero")
	}
	// L-only model must also work and differ from LC.
	resp, body = postJSON(t, ts.URL+"/v1/waveform",
		`{"process":"c018","n":16,"package":"pga","pads":2,"rise_time":1e-9,"samples":64,"model":"l"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("L-only status %d: %s", resp.StatusCode, body)
	}
	// Unknown model is a structured 400.
	resp, body = postJSON(t, ts.URL+"/v1/waveform", `{"process":"c018","n":4,"rise_time":1e-9,"model":"rc"}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "model") {
		t.Errorf("unknown model: status %d body %s", resp.StatusCode, body)
	}
}

func TestMonteCarloJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/montecarlo",
		`{"process":"c018","n":16,"package":"pga","pads":2,"rise_time":1e-9,
		  "samples":2000,"seed":7,"variation":{"k":0.05,"l":0.1,"slope":0.05}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var jr jobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Job.ID == "" || jr.StatusURL != "/v1/jobs/"+jr.Job.ID {
		t.Fatalf("bad job response: %+v", jr)
	}

	deadline := time.Now().Add(10 * time.Second)
	var job Job
	for {
		r, err := http.Get(ts.URL + jr.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&job)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.State == JobDone || job.State == JobFailed || job.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.State != JobDone {
		t.Fatalf("job ended %s: %+v", job.State, job.Error)
	}
	raw, err := json.Marshal(job.Result)
	if err != nil {
		t.Fatal(err)
	}
	var mc monteCarloResult
	if err := json.Unmarshal(raw, &mc); err != nil {
		t.Fatal(err)
	}
	if mc.Samples != 2000 || mc.Mean <= 0 || mc.P99 < mc.P95 {
		t.Errorf("implausible MC result: %+v", mc)
	}
	if job.Started == nil || job.Finished == nil {
		t.Error("timestamps missing on finished job")
	}

	// A bad Monte Carlo request fails synchronously with 400, not via the
	// job API.
	resp, body = postJSON(t, ts.URL+"/v1/montecarlo",
		`{"process":"c018","n":16,"rise_time":1e-9,"samples":5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("undersampled MC: status %d body %s", resp.StatusCode, body)
	}

	// Unknown job IDs are 404.
	r, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", r.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/maxssn", itemJSON)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	err = json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, %v", h, err)
	}

	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(r.Body)
	r.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`ssnserve_requests_total{path="/v1/maxssn",code="200"} 1`,
		"ssnserve_cache_misses_total 1",
		"ssnserve_request_duration_seconds_bucket",
		`ssnserve_request_duration_seconds_count{path="/v1/maxssn"} 1`,
		"ssnserve_jobs_in_flight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestBatch1000UnderRace is the acceptance workload: a 1000-item batch
// evaluated concurrently with other traffic, correct per-item results,
// cache and latency series visible on /metrics.
func TestBatch1000UnderRace(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBatch: 2000})
	corners := []string{"tt", "ss", "ff"}
	var items []string
	for i := 0; i < 1000; i++ {
		items = append(items, fmt.Sprintf(
			`{"process":"c018","corner":%q,"n":%d,"package":"pga","pads":2,"rise_time":1e-9}`,
			corners[i%3], 1+i%64))
	}
	req := `{"items":[` + strings.Join(items, ",") + `]}`

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/maxssn", "application/json", strings.NewReader(req))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out maxSSNBatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Count != 1000 {
				errs <- fmt.Errorf("count %d", out.Count)
				return
			}
			for i, r := range out.Results {
				if r.Error != nil {
					errs <- fmt.Errorf("item %d: %+v", i, r.Error)
					return
				}
				if r.VMax <= 0 {
					errs <- fmt.Errorf("item %d vmax %g", i, r.VMax)
					return
				}
			}
		}()
	}
	// Interleave single evaluations and health checks while the batches run.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Post(ts.URL+"/v1/maxssn", "application/json", strings.NewReader(itemJSON))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if r, err := http.Get(ts.URL + "/healthz"); err == nil {
					r.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	hits, misses := s.Metrics().CacheRates()
	if misses != 3 {
		t.Errorf("cache misses %d, want 3 (one per corner)", misses)
	}
	if hits < 4000 {
		t.Errorf("cache hits %d, want >= 4000", hits)
	}
	var buf bytes.Buffer
	if _, err := s.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `ssnserve_request_duration_seconds_count{path="/v1/maxssn"}`) {
		t.Error("latency histogram missing from /metrics")
	}
}

// TestGracefulShutdownDrainsJobs submits a slow job and verifies Shutdown
// waits for it rather than dropping it.
func TestGracefulShutdownDrainsJobs(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/montecarlo", "application/json", strings.NewReader(
		`{"process":"c018","n":16,"package":"pga","pads":2,"rise_time":1e-9,
		  "samples":200000,"seed":3,"variation":{"k":0.05,"l":0.1}}`))
	if err != nil {
		t.Fatal(err)
	}
	var jr jobResponse
	err = json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown errored: %v", err)
	}
	job, ok := s.jobs.lookup(jr.Job.ID)
	if !ok {
		t.Fatal("job evicted during shutdown")
	}
	if job.State != JobDone {
		t.Errorf("drained job ended %s, want done", job.State)
	}
}

// TestShutdownDeadlineCancelsJobs verifies the forced path: when the
// drain deadline passes, running jobs are cancelled, not leaked.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	// A job that only ends on cancellation.
	blocked := make(chan struct{})
	s.jobs.submit(func(ctx context.Context) (any, error) {
		close(blocked)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-blocked
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("deadline shutdown must report the context error")
	}
	// After Shutdown returns, the job goroutine has unwound and the job
	// is terminal.
	if n := s.jobs.inFlight(); n != 0 {
		t.Errorf("%d jobs still in flight after forced shutdown", n)
	}
}
