package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ssnkit/internal/ssn"
)

// decodeJSON reads a size-limited JSON body into dst with a structured
// error on failure.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *apiError {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &apiError{Code: CodeBodyTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return badRequest("malformed JSON: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing left to report
}

// evalOne resolves and evaluates a single item; errors land in the result
// rather than aborting sibling items of a batch.
func (s *Server) evalOne(index int, it EvalItem) EvalResult {
	res := EvalResult{Index: index}
	p, err := it.resolve(s.cache)
	if err != nil {
		res.Error = toAPIError(err)
		return res
	}
	vmax, cse, tmax, err := s.plans.Get(p)
	if err != nil {
		res.Error = toAPIError(err)
		return res
	}
	res.VMax = vmax
	res.Case = cse.String()
	res.CaseCode = int(cse)
	res.Beta = p.Beta()
	res.Zeta = finiteOrNil(p.DampingRatio())
	res.TMax = tmax
	if it.Sensitivity {
		sens, err := ssn.LCSensitivity(p, 0)
		if err != nil {
			res.Error = toAPIError(err)
			return res
		}
		res.Sens = &SensitivityResult{
			DVdN: sens.DVdN, DVdL: sens.DVdL, DVdS: sens.DVdS, DVdC: sens.DVdC,
			RelN: sens.RelN, RelL: sens.RelL, RelS: sens.RelS, RelC: sens.RelC,
		}
	}
	return res
}

// handleMaxSSN serves POST /v1/maxssn: a single item inline, or a batch
// under "items" (JSON) or as SSNC columnar rows. Batch items run
// concurrently on the shared worker pool; per-item failures are reported
// in place so one bad corner does not void a thousand good ones.
func (s *Server) handleMaxSSN(w http.ResponseWriter, r *http.Request) {
	if isColumnarBody(r) {
		s.handleMaxSSNColumnar(w, r)
		return
	}
	var req maxSSNRequest
	if aerr := s.decodeEnvelope(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	if len(req.Items) == 0 {
		res := s.evalOne(0, req.item())
		if res.Error != nil {
			writeError(w, res.Error)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		writeError(w, &apiError{Code: CodeBatchTooLarge,
			Message:    fmt.Sprintf("batch of %d exceeds the %d-item limit", len(req.Items), s.cfg.MaxBatch),
			Field:      "items",
			Value:      len(req.Items),
			Constraint: fmt.Sprintf("at most %d items", s.cfg.MaxBatch),
		})
		return
	}
	results := s.evalItems(r.Context(), req.Items)
	if columnarResponseFor(r) {
		s.writeColumnarBatch(w, results)
		return
	}
	writeJSON(w, http.StatusOK, maxSSNBatchResponse{Count: len(results), Results: results})
}

// evalItems runs a batch on the shared worker pool under the request
// timeout; items not yet started at the deadline fail in place.
func (s *Server) evalItems(ctx context.Context, items []EvalItem) []EvalResult {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	results := make([]EvalResult, len(items))
	var wg sync.WaitGroup
	for i := range items {
		if err := s.pool.acquire(ctx); err != nil {
			// Deadline or disconnect: fail the not-yet-started remainder.
			for j := i; j < len(items); j++ {
				results[j] = EvalResult{Index: j,
					Error: &apiError{Code: CodeTimeout, Message: "evaluation aborted: " + err.Error()}}
			}
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer s.pool.release()
			results[i] = s.evalOne(i, items[i])
		}(i)
	}
	wg.Wait()
	return results
}

// handleWaveform serves POST /v1/waveform: the sampled closed-form V(t)
// and inductor I(t) of one item, from the LC model (default) or the
// inductance-only model.
func (s *Server) handleWaveform(w http.ResponseWriter, r *http.Request) {
	var req waveformRequest
	if aerr := s.decodeEnvelope(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	n := req.Samples
	if n == 0 {
		n = 256
	}
	if n < 2 || n > 65536 {
		writeError(w, &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("samples = %d outside [2, 65536]", n),
			Field:   "samples", Value: n, Constraint: "must be within [2, 65536]"})
		return
	}
	p, err := req.item().resolve(s.cache)
	if err != nil {
		writeError(w, toAPIError(err))
		return
	}

	var resp waveformResponse
	switch req.Model {
	case "", "lc":
		m, err := ssn.NewLCModel(p)
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		vw, iw, err := m.Waveforms(req.RampStart, n)
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		resp = waveformResponse{Case: m.Case().String(), Times: vw.Times, V: vw.Values, I: iw.Values}
	case "l":
		m, err := ssn.NewLModel(p)
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		vw, iw, err := m.Waveforms(req.RampStart, n)
		if err != nil {
			writeError(w, toAPIError(err))
			return
		}
		resp = waveformResponse{Times: vw.Times, V: vw.Values, I: iw.Values}
	default:
		writeError(w, &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("unknown model %q", req.Model),
			Field:   "model", Value: req.Model, Constraint: `must be "lc" or "l"`})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMonteCarlo serves POST /v1/montecarlo: validate synchronously,
// then run the sampling as an asynchronous job on the worker pool and
// return 202 with a pollable job ID.
func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	var req monteCarloRequest
	if aerr := s.decodeEnvelope(w, r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	p, err := req.item().resolve(s.cache)
	if err != nil {
		writeError(w, toAPIError(err))
		return
	}
	n := req.Samples
	if n == 0 {
		n = 10000
	}
	if n > s.cfg.MaxMCSamples {
		writeError(w, &apiError{Code: CodeInvalidRequest,
			Message: fmt.Sprintf("samples = %d exceeds the %d limit", n, s.cfg.MaxMCSamples),
			Field:   "samples", Value: n,
			Constraint: fmt.Sprintf("at most %d", s.cfg.MaxMCSamples)})
		return
	}
	v := ssn.Variation{K: req.Variation.K, V0: req.Variation.V0, A: req.Variation.A,
		L: req.Variation.L, C: req.Variation.C, Slope: req.Variation.Slope}
	// Pre-flight the cheap input checks so obviously bad jobs fail now,
	// with a 400, instead of after a poll cycle.
	if _, err := ssn.MonteCarloCtx(preflightCtx, p, v, n, req.Seed, 1); err != nil && !errors.Is(err, context.Canceled) {
		writeError(w, toAPIError(err))
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	job := s.jobs.submit(func(ctx context.Context) (any, error) {
		res, err := ssn.MonteCarloCtx(ctx, p, v, n, req.Seed, workers)
		if err != nil {
			return nil, err
		}
		cases := make(map[string]int, len(res.CaseCounts))
		for cse, cnt := range res.CaseCounts {
			cases[cse.String()] = cnt
		}
		return monteCarloResult{Samples: res.Samples, Mean: res.Mean, StdDev: res.StdDev,
			Min: res.Min, Max: res.Max, P95: res.P95, P99: res.P99, Cases: cases}, nil
	})
	writeJSON(w, http.StatusAccepted, jobResponse{Job: job, StatusURL: "/v1/jobs/" + job.ID})
}

// preflightCtx is already cancelled: MonteCarloCtx with it runs all input
// validation and then aborts before sampling.
var preflightCtx = func() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}()

// handleJob serves GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.lookup(id)
	if !ok {
		writeError(w, &apiError{Code: CodeNotFound, Message: fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		JobsInFlight:  s.jobs.inFlight(),
		CacheEntries:  s.cache.Len(),
	})
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.metrics.WriteTo(w)
}

// instrument wraps a handler with latency/status accounting and panic
// containment under the route's canonical path label.
func (s *Server) instrument(path string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		startAt := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				rec.code = http.StatusInternalServerError
				writeJSON(rec, http.StatusInternalServerError,
					map[string]*apiError{"error": {Code: CodeInternal, Message: fmt.Sprint(p)}})
			}
			s.metrics.ObserveRequest(path, rec.code, time.Since(startAt))
		}()
		h(rec, r)
	})
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}
