// Package fit provides the parameter-extraction machinery behind ssnkit's
// device models: multi-variable linear least squares, polynomial fitting,
// Levenberg-Marquardt nonlinear fitting, and goodness-of-fit statistics.
//
// The ASDM extraction (paper Sec. 2) is a linear least-squares problem in
// (K, K·V0, K·a); the alpha-power extraction (the baseline the paper
// compares against) is nonlinear in alpha and uses Levenberg-Marquardt.
package fit

import (
	"errors"
	"fmt"
	"math"

	"ssnkit/internal/linalg"
)

// ErrBadInput reports malformed sample data.
var ErrBadInput = errors.New("fit: bad input")

// Stats summarizes goodness of fit of predictions against observations.
type Stats struct {
	RMSE     float64 // root mean square error
	MaxAbs   float64 // worst absolute residual
	R2       float64 // coefficient of determination
	N        int     // number of samples
	MeanAbs  float64 // mean absolute residual
	MaxRel   float64 // worst relative error (floor-protected)
	RelFloor float64 // the floor used for MaxRel
}

// Evaluate computes fit statistics for predicted vs observed values.
// relFloor protects relative errors when observations are near zero; a
// typical choice is a few percent of the observation range.
func Evaluate(pred, obs []float64, relFloor float64) (Stats, error) {
	if len(pred) != len(obs) || len(pred) == 0 {
		return Stats{}, fmt.Errorf("%w: %d predictions vs %d observations", ErrBadInput, len(pred), len(obs))
	}
	var s Stats
	s.N = len(obs)
	s.RelFloor = relFloor
	mean := 0.0
	for _, o := range obs {
		mean += o
	}
	mean /= float64(len(obs))
	ssRes, ssTot := 0.0, 0.0
	for i := range obs {
		r := pred[i] - obs[i]
		ssRes += r * r
		d := obs[i] - mean
		ssTot += d * d
		ar := math.Abs(r)
		s.MeanAbs += ar
		if ar > s.MaxAbs {
			s.MaxAbs = ar
		}
		den := math.Abs(obs[i])
		if den < relFloor {
			den = relFloor
		}
		if rel := ar / den; rel > s.MaxRel {
			s.MaxRel = rel
		}
	}
	s.RMSE = math.Sqrt(ssRes / float64(s.N))
	s.MeanAbs /= float64(s.N)
	if ssTot > 0 {
		s.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		s.R2 = 1
	}
	return s, nil
}

// Linear solves the multi-linear model y ≈ Σ c_j * x_j for the coefficient
// vector c, where rows[i] holds the regressors of sample i. Include a
// constant 1 regressor for an intercept term.
func Linear(rows [][]float64, y []float64) ([]float64, error) {
	if len(rows) == 0 || len(rows) != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrBadInput, len(rows), len(y))
	}
	a := linalg.FromRows(rows)
	return linalg.LeastSquares(a, y)
}

// Polynomial fits a degree-deg polynomial to (xs, ys) and returns the
// coefficients in ascending order (c[0] + c[1]x + ...).
func Polynomial(xs, ys []float64, deg int) ([]float64, error) {
	if deg < 0 {
		return nil, fmt.Errorf("%w: negative degree", ErrBadInput)
	}
	if len(xs) != len(ys) || len(xs) < deg+1 {
		return nil, fmt.Errorf("%w: %d samples for degree %d", ErrBadInput, len(xs), deg)
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, deg+1)
		p := 1.0
		for j := 0; j <= deg; j++ {
			row[j] = p
			p *= x
		}
		rows[i] = row
	}
	return Linear(rows, ys)
}
