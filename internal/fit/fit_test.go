package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvaluatePerfectFit(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	s, err := Evaluate(obs, obs, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if s.RMSE != 0 || s.MaxAbs != 0 || s.R2 != 1 || s.MaxRel != 0 {
		t.Errorf("perfect fit stats: %+v", s)
	}
}

func TestEvaluateKnownStats(t *testing.T) {
	obs := []float64{0, 2}
	pred := []float64{1, 1} // residuals 1, -1
	s, err := Evaluate(pred, obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.RMSE-1) > 1e-15 {
		t.Errorf("RMSE = %g, want 1", s.RMSE)
	}
	if s.MaxAbs != 1 || s.MeanAbs != 1 {
		t.Errorf("abs stats: %+v", s)
	}
	// ssTot = 2 (mean 1), ssRes = 2 -> R2 = 0
	if math.Abs(s.R2) > 1e-15 {
		t.Errorf("R2 = %g, want 0", s.R2)
	}
	// first obs 0 -> floored at 0.5 -> rel 2
	if math.Abs(s.MaxRel-2) > 1e-15 {
		t.Errorf("MaxRel = %g, want 2", s.MaxRel)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := Evaluate(nil, nil, 0); err == nil {
		t.Error("empty input must error")
	}
}

func TestLinearRecoversPlantedModel(t *testing.T) {
	// y = 3*x1 - 2*x2 + 0.5
	rows := [][]float64{}
	y := []float64{}
	for i := 0; i < 20; i++ {
		x1, x2 := float64(i)*0.1, float64(i*i)*0.01
		rows = append(rows, []float64{1, x1, x2})
		y = append(y, 0.5+3*x1-2*x2)
	}
	c, err := Linear(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 3, -2}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Errorf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear(nil, nil); err == nil {
		t.Error("empty input must error")
	}
	if _, err := Linear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths must error")
	}
}

func TestPolynomialExact(t *testing.T) {
	// y = 1 - x + 2x^2
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - x + 2*x*x
	}
	c, err := Polynomial(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -1, 2}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Errorf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestPolynomialErrors(t *testing.T) {
	if _, err := Polynomial([]float64{1}, []float64{1}, -1); err == nil {
		t.Error("negative degree must error")
	}
	if _, err := Polynomial([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("too few samples must error")
	}
}

func TestLinearRecoveryProperty(t *testing.T) {
	// Property: planted noiseless linear models are recovered for random
	// well-spread regressors.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c0, c1 := r.NormFloat64()*5, r.NormFloat64()*5
		rows := make([][]float64, 12)
		y := make([]float64, 12)
		for i := range rows {
			x := float64(i) + r.Float64() // strictly spread
			rows[i] = []float64{1, x}
			y[i] = c0 + c1*x
		}
		c, err := Linear(rows, y)
		if err != nil {
			return false
		}
		return math.Abs(c[0]-c0) < 1e-8*(1+math.Abs(c0)) &&
			math.Abs(c[1]-c1) < 1e-8*(1+math.Abs(c1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLMExponentialFit(t *testing.T) {
	// y = A * exp(-x/tau); recover A=2, tau=0.5 from clean samples.
	model := func(x, p []float64) float64 { return p[0] * math.Exp(-x[0]/p[1]) }
	xs := [][]float64{}
	ys := []float64{}
	for i := 0; i <= 20; i++ {
		x := float64(i) * 0.1
		xs = append(xs, []float64{x})
		ys = append(ys, 2*math.Exp(-x/0.5))
	}
	res, err := LevenbergMarquardt(model, xs, ys, []float64{1, 1}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-2) > 1e-6 || math.Abs(res.Params[1]-0.5) > 1e-6 {
		t.Errorf("LM params = %v, want [2 0.5] (ssr %g, conv %v)", res.Params, res.SSR, res.Converged)
	}
	if res.SSR > 1e-12 {
		t.Errorf("SSR = %g, want ~0", res.SSR)
	}
}

func TestLMPowerLawFit(t *testing.T) {
	// The alpha-power extraction shape: y = K*(x - v0)^alpha for x > v0.
	model := func(x, p []float64) float64 {
		K, v0, alpha := p[0], p[1], p[2]
		d := x[0] - v0
		if d <= 0 {
			return 0
		}
		return K * math.Pow(d, alpha)
	}
	trueP := []float64{3e-3, 0.5, 1.3}
	xs := [][]float64{}
	ys := []float64{}
	for i := 0; i <= 30; i++ {
		x := 0.6 + float64(i)*0.04 // stay above v0
		xs = append(xs, []float64{x})
		ys = append(ys, model([]float64{x}, trueP))
	}
	res, err := LevenbergMarquardt(model, xs, ys, []float64{1e-3, 0.4, 1.0}, LMOptions{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range trueP {
		if math.Abs(res.Params[i]-want) > 2e-3*math.Max(1, math.Abs(want)) {
			t.Errorf("param[%d] = %g, want %g (all %v)", i, res.Params[i], want, res.Params)
		}
	}
}

func TestLMNoisyFitImprovesSSR(t *testing.T) {
	model := func(x, p []float64) float64 { return p[0]*x[0] + p[1] }
	r := rand.New(rand.NewSource(42))
	xs := [][]float64{}
	ys := []float64{}
	for i := 0; i < 50; i++ {
		x := float64(i) * 0.1
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x+1+0.01*r.NormFloat64())
	}
	start := []float64{0, 0}
	res, err := LevenbergMarquardt(model, xs, ys, start, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-2) > 0.05 || math.Abs(res.Params[1]-1) > 0.05 {
		t.Errorf("noisy linear fit params %v", res.Params)
	}
}

func TestLMErrors(t *testing.T) {
	model := func(x, p []float64) float64 { return p[0] }
	if _, err := LevenbergMarquardt(model, nil, nil, []float64{1}, LMOptions{}); err == nil {
		t.Error("empty data must error")
	}
	if _, err := LevenbergMarquardt(model, [][]float64{{1}}, []float64{1}, nil, LMOptions{}); err == nil {
		t.Error("empty params must error")
	}
	if _, err := LevenbergMarquardt(model, [][]float64{{1}}, []float64{1}, []float64{1, 2}, LMOptions{}); err == nil {
		t.Error("more params than samples must error")
	}
}
