package fit

import (
	"fmt"
	"math"

	"ssnkit/internal/linalg"
)

// Model is a parametric scalar model y = f(x; p) with a vector input x.
type Model func(x []float64, p []float64) float64

// LMOptions tunes the Levenberg-Marquardt iteration.
type LMOptions struct {
	MaxIter   int     // maximum outer iterations (default 200)
	Tol       float64 // relative improvement to declare convergence (default 1e-10)
	Lambda0   float64 // initial damping (default 1e-3)
	StepScale float64 // finite-difference relative step (default 1e-6)
}

func (o LMOptions) withDefaults() LMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	if o.StepScale <= 0 {
		o.StepScale = 1e-6
	}
	return o
}

// LMResult reports the outcome of a Levenberg-Marquardt fit.
type LMResult struct {
	Params     []float64
	Iterations int
	SSR        float64 // final sum of squared residuals
	Converged  bool
}

// LevenbergMarquardt fits the nonlinear model f to samples (xs[i], ys[i])
// starting from p0. Jacobians are computed by forward finite differences.
// It returns the best parameters found even when convergence is not
// declared; callers should inspect Converged for strict use.
func LevenbergMarquardt(f Model, xs [][]float64, ys []float64, p0 []float64, opts LMOptions) (LMResult, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return LMResult{}, fmt.Errorf("%w: %d inputs vs %d targets", ErrBadInput, len(xs), len(ys))
	}
	if len(p0) == 0 {
		return LMResult{}, fmt.Errorf("%w: empty initial parameter vector", ErrBadInput)
	}
	if len(xs) < len(p0) {
		return LMResult{}, fmt.Errorf("%w: %d samples for %d parameters", ErrBadInput, len(xs), len(p0))
	}
	o := opts.withDefaults()
	m, n := len(xs), len(p0)
	p := append([]float64(nil), p0...)

	residuals := func(pp []float64) ([]float64, float64) {
		r := make([]float64, m)
		ssr := 0.0
		for i := range xs {
			r[i] = ys[i] - f(xs[i], pp)
			ssr += r[i] * r[i]
		}
		return r, ssr
	}

	r, ssr := residuals(p)
	lambda := o.Lambda0
	jac := linalg.NewMatrix(m, n)
	res := LMResult{Params: p, SSR: ssr}

	for iter := 0; iter < o.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Finite-difference Jacobian of the residual vector wrt parameters.
		for j := 0; j < n; j++ {
			h := o.StepScale * math.Max(math.Abs(p[j]), 1e-8)
			pj := p[j]
			p[j] = pj + h
			for i := range xs {
				jac.Set(i, j, (ys[i]-f(xs[i], p)-r[i])/h) // d r_i / d p_j
			}
			p[j] = pj
		}
		// Normal equations with Marquardt damping:
		// (JᵀJ + λ diag(JᵀJ)) δ = -Jᵀ r  — note r here is y - f, and
		// dr/dp = -df/dp is folded into jac already, so δ solves
		// (JᵀJ + λD) δ = -Jᵀ r with the sign convention below.
		jtj := linalg.NewMatrix(n, n)
		jtr := make([]float64, n)
		for j := 0; j < n; j++ {
			for k := j; k < n; k++ {
				s := 0.0
				for i := 0; i < m; i++ {
					s += jac.At(i, j) * jac.At(i, k)
				}
				jtj.Set(j, k, s)
				jtj.Set(k, j, s)
			}
			s := 0.0
			for i := 0; i < m; i++ {
				s += jac.At(i, j) * r[i]
			}
			jtr[j] = -s
		}

		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			damped := jtj.Clone()
			for j := 0; j < n; j++ {
				d := jtj.At(j, j)
				if d == 0 {
					d = 1
				}
				damped.Add(j, j, lambda*d)
			}
			delta, err := linalg.SolveDense(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			// jac holds dr/dp = -df/dp and jtr = -Jᵀr, so the Gauss-Newton
			// step solving (JᵀJ + λD)δ = -Jᵀr is applied as p + δ.
			trial := make([]float64, n)
			for j := range trial {
				trial[j] = p[j] + delta[j]
			}
			_, trialSSR := residuals(trial)
			if trialSSR < ssr && !math.IsNaN(trialSSR) {
				rel := (ssr - trialSSR) / math.Max(ssr, 1e-300)
				p = trial
				r, ssr = residuals(p)
				lambda = math.Max(lambda*0.3, 1e-12)
				improved = true
				if rel < o.Tol {
					res.Params, res.SSR, res.Converged = p, ssr, true
					return res, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			// Damping exhausted: we are at a (possibly local) minimum.
			res.Params, res.SSR, res.Converged = p, ssr, true
			return res, nil
		}
	}
	res.Params, res.SSR = p, ssr
	return res, nil
}
