package sweep

import (
	"context"
	"math"
	"testing"

	"ssnkit/internal/ssn"
)

// TestPlanPathMatchesScalarAllAxes is the byte-identity golden test for the
// batched chunk path: for every batchable inner-axis kind — including a
// rise-time axis with invalid (negative) values and an L axis straddling
// zero — the engine's output must match the scalar paramsAt+MaxSSN
// reference bit for bit, errors included.
func TestPlanPathMatchesScalarAllAxes(t *testing.T) {
	base := baseParams()
	grids := map[string]Grid{
		"inner n": {Base: base, Axes: []Axis{
			{Name: AxisC, From: 0.1e-12, To: 20e-12, Points: 4, Log: true},
			{Name: AxisN, From: 1, To: 64, Points: 9},
		}},
		"inner l with invalid": {Base: base, Axes: []Axis{
			{Name: AxisN, From: 2, To: 23, Points: 3},
			{Name: AxisL, From: -1e-9, To: 4e-9, Points: 11},
		}},
		"inner c": {Base: base, Axes: []Axis{
			{Name: AxisL, From: 0.5e-9, To: 4e-9, Points: 5},
			{Name: AxisC, From: 0.01e-12, To: 40e-12, Points: 13, Log: true},
		}},
		"inner slope": {Base: base, Axes: []Axis{
			{Name: AxisC, From: 0.1e-12, To: 20e-12, Points: 4},
			{Name: AxisSlope, From: 2e8, To: 2e10, Points: 9, Log: true},
		}},
		"inner tr with invalid": {Base: base, Axes: []Axis{
			{Name: AxisN, From: 1, To: 32, Points: 3},
			{Name: AxisRise, From: -0.2e-9, To: 2e-9, Points: 12},
		}},
		"single axis c": {Base: base, Axes: []Axis{
			{Name: AxisC, From: 0, To: 40e-12, Points: 17},
		}},
	}
	for name, g := range grids {
		t.Run(name, func(t *testing.T) {
			ref := newEngine(g, Config{})
			i := 0
			_, err := Run(context.Background(), g, Config{Workers: 3, ChunkSize: 7},
				func(pt Point) error {
					flat := ref.flat(pt.Index)
					if flat != i {
						t.Fatalf("point %d arrived out of order (flat %d)", i, flat)
					}
					p, perr := ref.paramsAt(pt.Values)
					switch {
					case perr != nil:
						if pt.Err == nil || pt.Err.Error() != perr.Error() {
							t.Fatalf("point %d: engine err %v, scalar err %v", i, pt.Err, perr)
						}
					default:
						want, wantCase, merr := ssn.MaxSSN(p)
						if merr != nil {
							if pt.Err == nil || pt.Err.Error() != merr.Error() {
								t.Fatalf("point %d: engine err %v, scalar err %v", i, pt.Err, merr)
							}
							break
						}
						if pt.Err != nil {
							t.Fatalf("point %d: unexpected engine error %v", i, pt.Err)
						}
						if math.Float64bits(pt.VMax) != math.Float64bits(want) {
							t.Fatalf("point %d: engine vmax %v (%#x) != scalar %v (%#x)",
								i, pt.VMax, math.Float64bits(pt.VMax), want, math.Float64bits(want))
						}
						if pt.Case != wantCase {
							t.Fatalf("point %d: engine case %v != scalar %v", i, pt.Case, wantCase)
						}
						if pt.Params != p {
							t.Fatalf("point %d: engine params %+v != scalar %+v", i, pt.Params, p)
						}
					}
					i++
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if i != g.Total() {
				t.Fatalf("delivered %d of %d points", i, g.Total())
			}
		})
	}
}

// TestChunkLoopAllocs is the satellite allocation guard on the sweep side:
// once a chunk buffer exists, evaluating a chunk through the batched path
// must not allocate.
func TestChunkLoopAllocs(t *testing.T) {
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{
			{Name: AxisN, From: 1, To: 64, Points: 8},
			{Name: AxisL, From: 0.2e-9, To: 8e-9, Points: 8},
			{Name: AxisC, From: 0.05e-12, To: 40e-12, Points: 8, Log: true},
		},
	}
	e := newEngine(g, Config{})
	const chunk = 256
	buf := newChunkBuf(chunk, len(g.Axes))
	ctx := context.Background()
	e.evalChunk(ctx, buf, 0, chunk) // warm up
	if got := testing.AllocsPerRun(20, func() {
		e.evalChunk(ctx, buf, 0, chunk)
	}); got != 0 {
		t.Fatalf("evalChunk allocates %v/run, want 0", got)
	}
	// Offset start so the chunk begins mid-run and cuts across runs.
	if got := testing.AllocsPerRun(20, func() {
		e.evalChunk(ctx, buf, 131, 131+chunk)
	}); got != 0 {
		t.Fatalf("offset evalChunk allocates %v/run, want 0", got)
	}
}
