package sweep

import (
	"context"
	"errors"
	"testing"
)

// collect gathers the (index-ordered) emitted points of a run, copying the
// pooled Values slices.
func collectRange(t *testing.T, g Grid, cfg Config, lo, hi int) []Point {
	t.Helper()
	var pts []Point
	sink := func(pt Point) error {
		pt.Values = append([]float64(nil), pt.Values...)
		pts = append(pts, pt)
		return nil
	}
	if _, err := RunRange(context.Background(), g, cfg, lo, hi, sink); err != nil {
		t.Fatalf("RunRange[%d,%d): %v", lo, hi, err)
	}
	return pts
}

// TestRunRangeConcatEqualsFullRun pins the sharding invariant: any
// partition of [0, Total()) into contiguous ranges, evaluated separately
// (with different worker/chunk settings), concatenates to exactly the
// full-run point sequence.
func TestRunRangeConcatEqualsFullRun(t *testing.T) {
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{
			{Name: AxisN, From: 1, To: 40, Points: 20},
			{Name: AxisL, From: 1e-9, To: 8e-9, Points: 13},
		},
	}
	total := g.Total()

	var full []Point
	sink := func(pt Point) error {
		pt.Values = append([]float64(nil), pt.Values...)
		full = append(full, pt)
		return nil
	}
	if _, err := Run(context.Background(), g, Config{Workers: 3, ChunkSize: 17}, sink); err != nil {
		t.Fatal(err)
	}
	if len(full) != total {
		t.Fatalf("full run emitted %d points, want %d", len(full), total)
	}

	// Uneven partition with varied engine settings per range.
	bounds := []int{0, 7, 64, 65, 200, total}
	var merged []Point
	for i := 0; i+1 < len(bounds); i++ {
		cfg := Config{Workers: 1 + i, ChunkSize: 5 * (i + 1)}
		merged = append(merged, collectRange(t, g, cfg, bounds[i], bounds[i+1])...)
	}
	if len(merged) != total {
		t.Fatalf("merged ranges emitted %d points, want %d", len(merged), total)
	}
	for i := range full {
		a, b := full[i], merged[i]
		if a.VMax != b.VMax || a.Case != b.Case || (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("point %d diverges: full {%g %v} vs merged {%g %v}", i, a.VMax, a.Case, b.VMax, b.Case)
		}
		for k := range a.Values {
			if a.Values[k] != b.Values[k] {
				t.Fatalf("point %d axis %d: %g vs %g", i, k, a.Values[k], b.Values[k])
			}
		}
	}
}

func TestRunRangeRejects(t *testing.T) {
	g := Grid{Base: baseParams(), Axes: []Axis{{Name: AxisN, From: 1, To: 8, Points: 8}}}
	discard := func(Point) error { return nil }

	if _, err := RunRange(context.Background(), g, Config{}, 0, 8, nil); err == nil {
		t.Error("nil sink: expected error")
	}
	if _, err := RunRange(context.Background(), g, Config{RefineDepth: 1}, 0, 8, discard); err == nil {
		t.Error("refinement: expected error (unspecified point order cannot shard)")
	}
	for _, r := range [][2]int{{-1, 4}, {0, 9}, {5, 4}} {
		if _, err := RunRange(context.Background(), g, Config{}, r[0], r[1], discard); err == nil {
			t.Errorf("range [%d,%d): expected error", r[0], r[1])
		}
	}
	// Empty range is valid and emits nothing.
	n := 0
	if _, err := RunRange(context.Background(), g, Config{}, 3, 3, func(Point) error { n++; return nil }); err != nil {
		t.Errorf("empty range: %v", err)
	}
	if n != 0 {
		t.Errorf("empty range emitted %d points", n)
	}
}

// TestValidateDomain pins the static domain checks the streaming endpoints
// run before committing to a 200: axes whose range provably contains
// invalid points are rejected up front, while Validate stays permissive
// (per-point errors in place remain the engine contract).
func TestValidateDomain(t *testing.T) {
	base := baseParams()
	bad := []Grid{
		{Base: base, Axes: []Axis{{Name: AxisL, From: 0, To: 2e-9, Points: 4}}},
		{Base: base, Axes: []Axis{{Name: AxisL, From: -1e-9, To: 2e-9, Points: 4}}},
		{Base: base, Axes: []Axis{{Name: AxisSlope, From: -1e9, To: 2e9, Points: 4}}},
		{Base: base, Axes: []Axis{{Name: AxisRise, From: -1e-9, To: 1e-9, Points: 4}}},
		{Base: base, Axes: []Axis{{Name: AxisC, From: -1e-12, To: 1e-12, Points: 4}}},
	}
	for i, g := range bad {
		err := g.ValidateDomain()
		if err == nil {
			t.Errorf("grid %d: ValidateDomain accepted an invalid domain", i)
			continue
		}
		var de *DomainError
		if !errors.As(err, &de) {
			t.Errorf("grid %d: error %v is not a DomainError", i, err)
		}
		// The permissive structural check still accepts these ranges.
		if err := g.Validate(); err != nil {
			t.Errorf("grid %d: Validate rejected a structurally sound grid: %v", i, err)
		}
	}
	good := Grid{Base: base, Axes: []Axis{
		{Name: AxisL, From: 1e-10, To: 2e-9, Points: 4},
		{Name: AxisC, From: 0, To: 1e-12, Points: 4}, // C = 0 is the L-only model
	}}
	if err := good.ValidateDomain(); err != nil {
		t.Errorf("valid domain rejected: %v", err)
	}
}
