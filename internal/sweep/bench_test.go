package sweep

import (
	"context"
	"testing"
)

// benchGrid is the 10^5-point design space the PR's acceptance benchmark
// runs over: 50 x 50 x 40 = 100,000 closed-form evaluations with a fixed
// ASDM (no extraction in the hot path).
func benchGrid() Grid {
	return Grid{
		Base: baseParams(),
		Axes: []Axis{
			{Name: AxisN, From: 1, To: 64, Points: 50},
			{Name: AxisL, From: 0.2e-9, To: 8e-9, Points: 50},
			{Name: AxisC, From: 0.05e-12, To: 40e-12, Points: 40, Log: true},
		},
	}
}

func benchmarkSweep(b *testing.B, workers int) {
	g := benchGrid()
	var sum float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := Run(context.Background(), g, Config{Workers: workers},
			func(pt Point) error { sum += pt.VMax; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if stats.Evaluated != 100_000 {
			b.Fatalf("evaluated %d points", stats.Evaluated)
		}
	}
	_ = sum
}

func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) } // GOMAXPROCS
