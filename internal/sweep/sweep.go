// Package sweep is ssnkit's design-space exploration engine: a chunked,
// cancellable, multi-dimensional grid sweep over the closed-form maximum
// SSN. The paper's closed forms exist precisely so designers can explore
// the (N, L, C, slope, size) space without transistor-level simulation —
// β = N·L·K·s and the Table 1 case boundaries are design knobs — and this
// package turns one ssn.MaxSSN call into a hardware-saturating scan:
//
//   - a Grid is a cartesian product of Axes (linear or log spacing per
//     axis) applied over a base ssn.Params;
//   - evaluation is chunked and runs on a bounded worker pool (GOMAXPROCS
//     by default), with driver re-extraction for a swept size axis pulled
//     through a memoized device.ExtractSpec cache;
//   - results stream incrementally through a sink callback, so memory
//     stays O(chunk), not O(grid); base-grid points arrive in row-major
//     grid order;
//   - a sink error or context cancellation stops the sweep promptly and
//     Run only returns once every worker goroutine has exited;
//   - optional adaptive refinement bisects between grid neighbors whose
//     Table 1 case differs — the damped-regime formula changes
//     discontinuously in derivative there — so extra resolution lands
//     exactly on the case boundaries.
//
// Both front-ends are thin over Run: cmd/ssnsweep renders the stream as
// tables/CSV, and internal/serve streams it as NDJSON over HTTP.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ssnkit/internal/device"
	"ssnkit/internal/ssn"
)

// Axis names: the sweepable design knobs. AxisRise ("tr") is the
// designer-facing alias of AxisSlope — both set the input edge, so a grid
// may contain only one of them.
const (
	AxisN     = "n"     // simultaneously switching drivers (rounded to int >= 1)
	AxisL     = "l"     // effective ground inductance, H
	AxisC     = "c"     // effective ground capacitance, F
	AxisSlope = "slope" // input ramp slope, V/s
	AxisRise  = "tr"    // input rise time, s (slope = Vdd/tr)
	AxisSize  = "size"  // driver width multiple (re-extracts the ASDM)
)

// Axis is one swept dimension: Points samples from From to To, linearly or
// logarithmically spaced.
type Axis struct {
	Name string
	From float64
	To   float64
	// Points is the sample count; 1 pins the axis at From.
	Points int
	// Log selects logarithmic spacing (requires From > 0).
	Log bool
}

func (a Axis) validate() error {
	switch a.Name {
	case AxisN, AxisL, AxisC, AxisSlope, AxisRise, AxisSize:
	default:
		return fmt.Errorf("sweep: unknown axis %q (n, l, c, slope, tr, size)", a.Name)
	}
	if a.Points < 1 {
		return fmt.Errorf("sweep: axis %s needs at least 1 point", a.Name)
	}
	if a.Points > 1 && a.To <= a.From {
		return fmt.Errorf("sweep: axis %s: to = %g must exceed from = %g", a.Name, a.To, a.From)
	}
	if a.Log && a.From <= 0 {
		return fmt.Errorf("sweep: axis %s: log spacing needs a positive from", a.Name)
	}
	return nil
}

// Values materializes the axis coordinates.
func (a Axis) Values() []float64 {
	if a.Points == 1 {
		return []float64{a.From}
	}
	vs := make([]float64, a.Points)
	if a.Log {
		la, lb := math.Log(a.From), math.Log(a.To)
		for i := range vs {
			vs[i] = math.Exp(la + (lb-la)*float64(i)/float64(a.Points-1))
		}
	} else {
		for i := range vs {
			vs[i] = a.From + (a.To-a.From)*float64(i)/float64(a.Points-1)
		}
	}
	vs[a.Points-1] = a.To
	return vs
}

// Grid is the cartesian product of Axes over a base parameter point. Axes
// override the corresponding Base fields per point; everything else is
// fixed. When a size axis is present, Spec names the device to re-extract
// (its Size field is overwritten per point) and Base.Dev is ignored.
type Grid struct {
	Base ssn.Params
	Axes []Axis
	Spec device.ExtractSpec
}

// Total returns the number of base-grid points (product of axis counts).
func (g Grid) Total() int {
	t := 1
	for _, a := range g.Axes {
		t *= a.Points
	}
	return t
}

// Validate checks the axis set without running anything, so front-ends
// can reject a bad grid before committing to a streamed response.
func (g Grid) Validate() error {
	if len(g.Axes) == 0 {
		return fmt.Errorf("sweep: need at least one axis")
	}
	seen := map[string]bool{}
	for _, a := range g.Axes {
		if err := a.validate(); err != nil {
			return err
		}
		name := a.Name
		if name == AxisRise {
			name = AxisSlope // tr and slope set the same knob
		}
		if seen[name] {
			return fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[name] = true
	}
	return nil
}

// ExtractFunc resolves a device extraction; front-ends plug in a shared
// cache (the serve ASDM extraction LRU) so repeated sizes never re-fit.
type ExtractFunc func(device.ExtractSpec) (device.ASDM, error)

// Gate bounds global concurrency: workers acquire it once per chunk, so a
// sweep embedded in a service shares slots with the rest of the traffic
// instead of stacking its own pool on top.
type Gate interface {
	Acquire(context.Context) error
	Release()
}

// Config tunes one Run. The zero value is usable.
type Config struct {
	// Workers is the number of parallel chunk evaluators; <= 0 means
	// GOMAXPROCS.
	Workers int
	// ChunkSize is the number of grid points per unit of work; <= 0 means
	// 1024. The sink sees at most O(Workers x ChunkSize) buffered points.
	ChunkSize int
	// RefineDepth enables adaptive refinement around Table 1 case
	// boundaries, bisecting up to this many levels; 0 disables.
	RefineDepth int
	// Extract resolves device extraction for a swept size axis. Nil falls
	// back to direct (memoized) ExtractSpec.Extract calls.
	Extract ExtractFunc
	// Gate, when non-nil, bounds chunk concurrency globally.
	Gate Gate
}

// Point is one streamed result. Per-point failures are reported in place
// via Err — one bad corner never aborts the rest of the grid.
type Point struct {
	// Index holds the grid coordinates in Grid.Axes order; nil for
	// refined points, which lie between grid coordinates.
	Index []int
	// Values holds the axis values in Grid.Axes order.
	Values []float64
	// Params is the fully resolved parameter point (zero when Err is a
	// resolution failure).
	Params ssn.Params
	VMax   float64
	Case   ssn.Case
	// Depth is 0 for base-grid points, >= 1 for refinement levels.
	Depth int
	Err   error
}

// Sink receives every evaluated point. It is never called concurrently;
// returning an error cancels the sweep. Base-grid points arrive in
// row-major grid order (last axis fastest); refined points follow in
// unspecified order.
type Sink func(Point) error

// Stats summarizes one Run.
type Stats struct {
	GridPoints    int // size of the base grid
	Chunks        int // units of work the grid was split into
	Evaluated     int // points delivered to the sink (grid + refined)
	Errors        int // points delivered with Err set
	RefinedPoints int // refinement points delivered
	MaxDepth      int // deepest refinement level reached
	Workers       int // parallel evaluators used
}

// engine carries the per-run immutable state shared by all workers.
type engine struct {
	grid     Grid
	axisVals [][]float64
	stride   []int // row-major stride per axis
	extract  func(size float64) (device.ASDM, error)
	// cases records the Table 1 case per base-grid point (0 = failed),
	// written only by the emitter goroutine; refinement reads it after
	// the base grid completes. O(grid) bytes, allocated only when
	// refinement is enabled.
	cases []uint8
}

func newEngine(g Grid, cfg Config) *engine {
	e := &engine{grid: g}
	e.axisVals = make([][]float64, len(g.Axes))
	for k, a := range g.Axes {
		e.axisVals[k] = a.Values()
	}
	e.stride = make([]int, len(g.Axes))
	s := 1
	for k := len(g.Axes) - 1; k >= 0; k-- {
		e.stride[k] = s
		s *= g.Axes[k].Points
	}
	if cfg.RefineDepth > 0 {
		e.cases = make([]uint8, g.Total())
	}

	// Memoize extraction: the size axis revisits the same handful of
	// widths grid-line after grid-line, and extraction re-fits a
	// least-squares problem per call.
	inner := cfg.Extract
	if inner == nil {
		inner = func(spec device.ExtractSpec) (device.ASDM, error) {
			m, _, err := spec.Extract()
			return m, err
		}
	}
	var mu sync.Mutex
	type extRes struct {
		dev device.ASDM
		err error
	}
	memo := map[float64]extRes{}
	e.extract = func(size float64) (device.ASDM, error) {
		mu.Lock()
		r, ok := memo[size]
		mu.Unlock()
		if !ok {
			spec := e.grid.Spec
			spec.Size = size
			r.dev, r.err = inner(spec)
			mu.Lock()
			memo[size] = r
			mu.Unlock()
		}
		return r.dev, r.err
	}
	return e
}

// coords decomposes a flat row-major index into per-axis coordinates.
func (e *engine) coords(flat int) []int {
	idx := make([]int, len(e.grid.Axes))
	for k := range idx {
		idx[k] = (flat / e.stride[k]) % e.grid.Axes[k].Points
	}
	return idx
}

// flat recomposes coordinates into the row-major index.
func (e *engine) flat(idx []int) int {
	f := 0
	for k, i := range idx {
		f += i * e.stride[k]
	}
	return f
}

// paramsAt applies the axis values over the base parameters.
func (e *engine) paramsAt(values []float64) (ssn.Params, error) {
	p := e.grid.Base
	for k, ax := range e.grid.Axes {
		v := values[k]
		switch ax.Name {
		case AxisN:
			n := int(math.Round(v))
			if n < 1 {
				n = 1
			}
			p.N = n
		case AxisL:
			p.L = v
		case AxisC:
			p.C = v
		case AxisSlope:
			p.Slope = v
		case AxisRise:
			if v <= 0 {
				return p, fmt.Errorf("sweep: tr = %g must be positive", v)
			}
			p.Slope = p.Vdd / v
		case AxisSize:
			dev, err := e.extract(v)
			if err != nil {
				return p, err
			}
			p.Dev = dev
		}
	}
	return p, nil
}

// eval resolves and classifies one point, reusing the worker's scratch
// model so the hot loop does not allocate per point.
func (e *engine) eval(m *ssn.LCModel, idx []int, values []float64, depth int) Point {
	pt := Point{Index: idx, Values: values, Depth: depth}
	p, err := e.paramsAt(values)
	if err != nil {
		pt.Err = err
		return pt
	}
	pt.Params = p
	if err := m.Init(p); err != nil {
		pt.Err = err
		return pt
	}
	pt.VMax = m.VMax()
	pt.Case = m.Case()
	return pt
}

// Run sweeps the grid, streaming every point through sink, and returns the
// run statistics. It blocks until the sweep completes, the sink fails, or
// ctx is cancelled; in every case all worker goroutines have exited before
// it returns. The returned error is nil on completion, the sink's error,
// or ctx.Err().
func Run(ctx context.Context, g Grid, cfg Config, sink Sink) (Stats, error) {
	if sink == nil {
		return Stats{}, fmt.Errorf("sweep: nil sink")
	}
	if err := g.Validate(); err != nil {
		return Stats{}, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 1024
	}
	total := g.Total()
	nChunks := (total + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	stats := Stats{GridPoints: total, Chunks: nChunks, Workers: workers}
	e := newEngine(g, cfg)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type chunkOut struct {
		idx int
		pts []Point
	}
	tasks := make(chan int)
	out := make(chan chunkOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch ssn.LCModel
			for ci := range tasks {
				if cfg.Gate != nil {
					if err := cfg.Gate.Acquire(ctx); err != nil {
						return
					}
				}
				lo := ci * chunk
				hi := min(lo+chunk, total)
				pts := make([]Point, 0, hi-lo)
				for f := lo; f < hi && ctx.Err() == nil; f++ {
					idx := e.coords(f)
					values := make([]float64, len(idx))
					for k, i := range idx {
						values[k] = e.axisVals[k][i]
					}
					pts = append(pts, e.eval(&scratch, idx, values, 0))
				}
				if cfg.Gate != nil {
					cfg.Gate.Release()
				}
				select {
				case out <- chunkOut{ci, pts}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(tasks)
		for ci := 0; ci < nChunks; ci++ {
			select {
			case tasks <- ci:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Ordered emitter: deliver chunks to the sink in grid order. Workers
	// block once the reorder window fills, so pending holds at most
	// O(workers) chunks.
	var sinkErr error
	pending := map[int][]Point{}
	next := 0
	for co := range out {
		pending[co.idx] = co.pts
		for {
			pts, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			for i := range pts {
				pt := pts[i]
				if sinkErr != nil || ctx.Err() != nil {
					continue
				}
				stats.Evaluated++
				if pt.Err != nil {
					stats.Errors++
				} else if e.cases != nil {
					e.cases[e.flat(pt.Index)] = uint8(pt.Case)
				}
				if err := sink(pt); err != nil {
					sinkErr = err
					cancel()
				}
			}
		}
	}
	if sinkErr != nil {
		return stats, sinkErr
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}

	if cfg.RefineDepth > 0 {
		if err := e.refine(ctx, cancel, cfg, workers, sink, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
