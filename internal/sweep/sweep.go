// Package sweep is ssnkit's design-space exploration engine: a chunked,
// cancellable, multi-dimensional grid sweep over the closed-form maximum
// SSN. The paper's closed forms exist precisely so designers can explore
// the (N, L, C, slope, size) space without transistor-level simulation —
// β = N·L·K·s and the Table 1 case boundaries are design knobs — and this
// package turns one ssn.MaxSSN call into a hardware-saturating scan:
//
//   - a Grid is a cartesian product of Axes (linear or log spacing per
//     axis) applied over a base ssn.Params;
//   - evaluation is chunked and runs on a bounded worker pool (GOMAXPROCS
//     by default), with driver re-extraction for a swept size axis pulled
//     through a memoized device.ExtractSpec cache;
//   - results stream incrementally through a sink callback, so memory
//     stays O(chunk), not O(grid); base-grid points arrive in row-major
//     grid order;
//   - a sink error or context cancellation stops the sweep promptly and
//     Run only returns once every worker goroutine has exited;
//   - optional adaptive refinement bisects between grid neighbors whose
//     Table 1 case differs — the damped-regime formula changes
//     discontinuously in derivative there — so extra resolution lands
//     exactly on the case boundaries.
//
// Both front-ends are thin over Run: cmd/ssnsweep renders the stream as
// tables/CSV, and internal/serve streams it as NDJSON over HTTP.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"ssnkit/internal/device"
	"ssnkit/internal/ssn"
)

// Axis names: the sweepable design knobs. AxisRise ("tr") is the
// designer-facing alias of AxisSlope — both set the input edge, so a grid
// may contain only one of them.
const (
	AxisN     = "n"     // simultaneously switching drivers (rounded to int >= 1)
	AxisL     = "l"     // effective ground inductance, H
	AxisC     = "c"     // effective ground capacitance, F
	AxisSlope = "slope" // input ramp slope, V/s
	AxisRise  = "tr"    // input rise time, s (slope = Vdd/tr)
	AxisSize  = "size"  // driver width multiple (re-extracts the ASDM)
)

// Axis is one swept dimension: Points samples from From to To, linearly or
// logarithmically spaced.
type Axis struct {
	Name string
	From float64
	To   float64
	// Points is the sample count; 1 pins the axis at From.
	Points int
	// Log selects logarithmic spacing (requires From > 0).
	Log bool
}

func (a Axis) validate() error {
	switch a.Name {
	case AxisN, AxisL, AxisC, AxisSlope, AxisRise, AxisSize:
	default:
		return fmt.Errorf("sweep: unknown axis %q (n, l, c, slope, tr, size)", a.Name)
	}
	if a.Points < 1 {
		return fmt.Errorf("sweep: axis %s needs at least 1 point", a.Name)
	}
	if a.Points > 1 && a.To <= a.From {
		return fmt.Errorf("sweep: axis %s: to = %g must exceed from = %g", a.Name, a.To, a.From)
	}
	if a.Log && a.From <= 0 {
		return fmt.Errorf("sweep: axis %s: log spacing needs a positive from", a.Name)
	}
	return nil
}

// Values materializes the axis coordinates.
func (a Axis) Values() []float64 {
	if a.Points == 1 {
		return []float64{a.From}
	}
	vs := make([]float64, a.Points)
	if a.Log {
		la, lb := math.Log(a.From), math.Log(a.To)
		for i := range vs {
			vs[i] = math.Exp(la + (lb-la)*float64(i)/float64(a.Points-1))
		}
	} else {
		for i := range vs {
			vs[i] = a.From + (a.To-a.From)*float64(i)/float64(a.Points-1)
		}
	}
	vs[a.Points-1] = a.To
	return vs
}

// Grid is the cartesian product of Axes over a base parameter point. Axes
// override the corresponding Base fields per point; everything else is
// fixed. When a size axis is present, Spec names the device to re-extract
// (its Size field is overwritten per point) and Base.Dev is ignored.
type Grid struct {
	Base ssn.Params
	Axes []Axis
	Spec device.ExtractSpec
}

// Total returns the number of base-grid points (product of axis counts).
func (g Grid) Total() int {
	t := 1
	for _, a := range g.Axes {
		t *= a.Points
	}
	return t
}

// Validate checks the axis set without running anything, so front-ends
// can reject a bad grid before committing to a streamed response.
func (g Grid) Validate() error {
	if len(g.Axes) == 0 {
		return fmt.Errorf("sweep: need at least one axis")
	}
	seen := map[string]bool{}
	for _, a := range g.Axes {
		if err := a.validate(); err != nil {
			return err
		}
		name := a.Name
		if name == AxisRise {
			name = AxisSlope // tr and slope set the same knob
		}
		if seen[name] {
			return fmt.Errorf("sweep: duplicate axis %q", a.Name)
		}
		seen[name] = true
	}
	return nil
}

// ExtractFunc resolves a device extraction; front-ends plug in a shared
// cache (the serve ASDM extraction LRU) so repeated sizes never re-fit.
type ExtractFunc func(device.ExtractSpec) (device.ASDM, error)

// Gate bounds global concurrency: workers acquire it once per chunk, so a
// sweep embedded in a service shares slots with the rest of the traffic
// instead of stacking its own pool on top.
type Gate interface {
	Acquire(context.Context) error
	Release()
}

// Config tunes one Run. The zero value is usable.
type Config struct {
	// Workers is the number of parallel chunk evaluators; <= 0 means
	// GOMAXPROCS.
	Workers int
	// ChunkSize is the number of grid points per unit of work; <= 0 means
	// 1024. The sink sees at most O(Workers x ChunkSize) buffered points.
	ChunkSize int
	// RefineDepth enables adaptive refinement around Table 1 case
	// boundaries, bisecting up to this many levels; 0 disables.
	RefineDepth int
	// Extract resolves device extraction for a swept size axis. Nil falls
	// back to direct (memoized) ExtractSpec.Extract calls.
	Extract ExtractFunc
	// Gate, when non-nil, bounds chunk concurrency globally.
	Gate Gate
}

// Point is one streamed result. Per-point failures are reported in place
// via Err — one bad corner never aborts the rest of the grid.
type Point struct {
	// Index holds the grid coordinates in Grid.Axes order; nil for
	// refined points, which lie between grid coordinates.
	Index []int
	// Values holds the axis values in Grid.Axes order.
	Values []float64
	// Params is the fully resolved parameter point (zero when Err is a
	// resolution failure).
	Params ssn.Params
	VMax   float64
	Case   ssn.Case
	// Depth is 0 for base-grid points, >= 1 for refinement levels.
	Depth int
	Err   error
}

// Sink receives every evaluated point. It is never called concurrently;
// returning an error cancels the sweep. Base-grid points arrive in
// row-major grid order (last axis fastest); refined points follow in
// unspecified order.
//
// The Point's Index and Values slices are backed by pooled chunk buffers
// and are valid only for the duration of the call: a sink that retains
// points past its return must copy the slices it keeps.
type Sink func(Point) error

// Stats summarizes one Run.
type Stats struct {
	GridPoints    int // size of the base grid
	Chunks        int // units of work the grid was split into
	Evaluated     int // points delivered to the sink (grid + refined)
	Errors        int // points delivered with Err set
	RefinedPoints int // refinement points delivered
	MaxDepth      int // deepest refinement level reached
	Workers       int // parallel evaluators used
}

// engine carries the per-run immutable state shared by all workers.
type engine struct {
	grid     Grid
	axisVals [][]float64
	stride   []int // row-major stride per axis
	extract  func(size float64) (device.ASDM, error)
	// cases records the Table 1 case per base-grid point (0 = failed),
	// written only by the emitter goroutine; refinement reads it after
	// the base grid completes. O(grid) bytes, allocated only when
	// refinement is enabled.
	cases []uint8

	// Compiled-plan state for the innermost axis. Points along the last
	// axis are contiguous in row-major order and share every other
	// coordinate, so each such run evaluates through one ssn.Plan compiled
	// for planAxis over planVals (the axis values, with a rise-time axis
	// pre-converted to slopes). planVals is nil when the innermost axis is
	// not batchable (a size axis re-extracts the device per point) — the
	// engine then falls back to the scalar path. planBad marks inner values
	// the scalar path would reject, so those points take the scalar
	// fallback and report the identical error.
	planAxis ssn.PlanAxis
	planVals []float64
	planBad  []bool
	// planBadAny is true when any planBad entry is set; the all-valid case
	// (the common one) takes a materialize loop with no per-point validity
	// branch.
	planBadAny bool
	// planN holds the pre-rounded driver counts for an N inner axis, so the
	// hot loop stores an int instead of re-rounding per point.
	planN []int
}

// maxAxes bounds the axis count of a grid: the six axis names minus the
// slope/tr collision. Fixed-size local copies of the outer coordinates are
// sized by it so the materialize loop reads stack slots the compiler knows
// cannot alias the point buffers.
const maxAxes = 8

func newEngine(g Grid, cfg Config) *engine {
	e := &engine{grid: g}
	e.axisVals = make([][]float64, len(g.Axes))
	for k, a := range g.Axes {
		e.axisVals[k] = a.Values()
	}
	e.stride = make([]int, len(g.Axes))
	s := 1
	for k := len(g.Axes) - 1; k >= 0; k-- {
		e.stride[k] = s
		s *= g.Axes[k].Points
	}
	if cfg.RefineDepth > 0 {
		e.cases = make([]uint8, g.Total())
	}
	e.compileInner()

	// Memoize extraction: the size axis revisits the same handful of
	// widths grid-line after grid-line, and extraction re-fits a
	// least-squares problem per call.
	inner := cfg.Extract
	if inner == nil {
		inner = func(spec device.ExtractSpec) (device.ASDM, error) {
			m, _, err := spec.Extract()
			return m, err
		}
	}
	var mu sync.Mutex
	type extRes struct {
		dev device.ASDM
		err error
	}
	memo := map[float64]extRes{}
	e.extract = func(size float64) (device.ASDM, error) {
		mu.Lock()
		r, ok := memo[size]
		mu.Unlock()
		if !ok {
			spec := e.grid.Spec
			spec.Size = size
			r.dev, r.err = inner(spec)
			mu.Lock()
			memo[size] = r
			mu.Unlock()
		}
		return r.dev, r.err
	}
	return e
}

// compileInner resolves the innermost axis into its ssn.PlanAxis kind and
// per-coordinate values/validity, enabling the batched chunk path. A
// rise-time axis is converted to slope values up front (slope = Vdd/tr,
// the exact expression paramsAt uses; no axis ever changes Vdd, so the
// conversion is position-independent).
func (e *engine) compileInner() {
	last := len(e.grid.Axes) - 1
	raw := e.axisVals[last]
	switch e.grid.Axes[last].Name {
	case AxisN:
		e.planAxis = ssn.PlanAxisN
		e.planVals = raw
		e.planBad = make([]bool, len(raw)) // rounding clamps; never invalid
		e.planN = make([]int, len(raw))
		for i, v := range raw {
			n := int(math.Round(v))
			if n < 1 {
				n = 1
			}
			e.planN[i] = n
		}
	case AxisL:
		e.planAxis = ssn.PlanAxisL
		e.planVals = raw
		e.planBad = make([]bool, len(raw))
		for i, v := range raw {
			e.planBad[i] = v <= 0
		}
	case AxisC:
		e.planAxis = ssn.PlanAxisC
		e.planVals = raw
		e.planBad = make([]bool, len(raw))
		for i, v := range raw {
			e.planBad[i] = v < 0
		}
	case AxisSlope:
		e.planAxis = ssn.PlanAxisSlope
		e.planVals = raw
		e.planBad = make([]bool, len(raw))
		for i, v := range raw {
			e.planBad[i] = v <= 0
		}
	case AxisRise:
		e.planAxis = ssn.PlanAxisSlope
		e.planVals = make([]float64, len(raw))
		e.planBad = make([]bool, len(raw))
		for i, v := range raw {
			e.planBad[i] = v <= 0
			e.planVals[i] = e.grid.Base.Vdd / v
		}
	default: // AxisSize re-extracts per point; no batch kernel
		e.planVals = nil
	}
	for _, b := range e.planBad {
		if b {
			e.planBadAny = true
			break
		}
	}
}

// coords decomposes a flat row-major index into per-axis coordinates.
func (e *engine) coords(flat int) []int {
	idx := make([]int, len(e.grid.Axes))
	for k := range idx {
		idx[k] = (flat / e.stride[k]) % e.grid.Axes[k].Points
	}
	return idx
}

// flat recomposes coordinates into the row-major index.
func (e *engine) flat(idx []int) int {
	f := 0
	for k, i := range idx {
		f += i * e.stride[k]
	}
	return f
}

// paramsAt applies the axis values over the base parameters.
func (e *engine) paramsAt(values []float64) (ssn.Params, error) {
	p := e.grid.Base
	for k := range e.grid.Axes {
		if err := e.applyOne(&p, k, values[k]); err != nil {
			return p, err
		}
	}
	return p, nil
}

// applyOne applies the value of one axis onto p.
func (e *engine) applyOne(p *ssn.Params, k int, v float64) error {
	switch e.grid.Axes[k].Name {
	case AxisN:
		n := int(math.Round(v))
		if n < 1 {
			n = 1
		}
		p.N = n
	case AxisL:
		p.L = v
	case AxisC:
		p.C = v
	case AxisSlope:
		p.Slope = v
	case AxisRise:
		if v <= 0 {
			return fmt.Errorf("sweep: tr = %g must be positive", v)
		}
		p.Slope = p.Vdd / v
	case AxisSize:
		dev, err := e.extract(v)
		if err != nil {
			return err
		}
		p.Dev = dev
	}
	return nil
}

// eval resolves and classifies one point, reusing the worker's scratch
// model so the hot loop does not allocate per point.
func (e *engine) eval(m *ssn.LCModel, idx []int, values []float64, depth int) Point {
	pt := Point{Index: idx, Values: values, Depth: depth}
	p, err := e.paramsAt(values)
	if err != nil {
		pt.Err = err
		return pt
	}
	pt.Params = p
	if err := m.Init(p); err != nil {
		pt.Err = err
		return pt
	}
	pt.VMax = m.VMax()
	pt.Case = m.Case()
	return pt
}

// chunkBuf holds everything one unit of work needs to evaluate a chunk
// without allocating: the Point slice handed to the emitter, the backing
// arrays its Index/Values slices are cut from, batch-kernel outputs, and
// the per-worker scalar/plan scratch. Buffers cycle through a sync.Pool —
// the emitter returns each one after its points have been sunk, which is
// why Sink documents the retention restriction.
type chunkBuf struct {
	pts     []Point
	idx     []int     // len chunk*nAxes backing for Point.Index
	vals    []float64 // len chunk*nAxes backing for Point.Values
	coord   []int     // odometer state
	vmax    []float64 // batch kernel output
	cases   []ssn.Case
	scratch ssn.LCModel
	plan    ssn.Plan
	// wiring state: how many pts entries have their Index/Values headers
	// pointed at the backing arrays, and at which axis stride.
	wiredPts int
	wiredAx  int
}

func newChunkBuf(chunk, nAxes int) *chunkBuf {
	b := &chunkBuf{
		pts:   make([]Point, 0, chunk),
		idx:   make([]int, chunk*nAxes),
		vals:  make([]float64, chunk*nAxes),
		coord: make([]int, nAxes),
		vmax:  make([]float64, chunk),
		cases: make([]ssn.Case, chunk),
	}
	b.wire(chunk, nAxes)
	return b
}

// wire points each buffered Point's Index/Values header at its slot of the
// backing arrays. The headers depend only on the buffer geometry — point i
// always owns slots [i·nAxes, (i+1)·nAxes) — so once wired they never
// change and evalChunk's per-point loop skips re-storing them.
func (b *chunkBuf) wire(chunk, nAxes int) {
	pts := b.pts[:cap(b.pts)]
	idx := b.idx[:cap(b.idx)]
	vals := b.vals[:cap(b.vals)]
	for i := 0; i < chunk; i++ {
		pts[i].Index = idx[i*nAxes : (i+1)*nAxes]
		pts[i].Values = vals[i*nAxes : (i+1)*nAxes]
	}
	b.wiredPts = chunk
	b.wiredAx = nAxes
}

// chunkBufPool recycles chunk buffers across Runs so steady-state sweeps
// (a service evaluating grid after grid) stop paying the per-Run buffer
// allocation and the GC scans it induces.
var chunkBufPool sync.Pool

// getChunkBuf returns a pooled buffer when its geometry fits this Run's
// chunk size and axis count, re-slicing the length-tracked arrays and
// re-wiring the point headers if the stride changed; a misfit is dropped
// for the GC and replaced.
func getChunkBuf(chunk, nAxes int) *chunkBuf {
	if v := chunkBufPool.Get(); v != nil {
		b := v.(*chunkBuf)
		if cap(b.pts) >= chunk && cap(b.idx) >= chunk*nAxes && cap(b.vals) >= chunk*nAxes &&
			cap(b.vmax) >= chunk && cap(b.cases) >= chunk &&
			cap(b.coord) >= nAxes {
			b.vmax = b.vmax[:chunk]
			b.cases = b.cases[:chunk]
			b.coord = b.coord[:nAxes]
			if b.wiredAx != nAxes || b.wiredPts < chunk {
				b.wire(chunk, nAxes)
			}
			return b
		}
	}
	return newChunkBuf(chunk, nAxes)
}

// evalChunk evaluates grid points [lo, hi) into buf.pts. Consecutive
// row-major indices walk the innermost axis, so the chunk decomposes into
// runs that differ only in the inner coordinate; each run compiles one
// ssn.Plan over the outer point and evaluates the inner values through the
// batch kernel. Points the batch path cannot take — a size inner axis, an
// inner value the scalar path rejects, an outer resolution or compile
// failure — fall back to the scalar eval, which reproduces the identical
// result or error. The hot loop allocates nothing.
func (e *engine) evalChunk(ctx context.Context, buf *chunkBuf, lo, hi int) {
	nAx := len(e.grid.Axes)
	inner := nAx - 1
	innerPts := e.grid.Axes[inner].Points
	buf.pts = buf.pts[:0]
	iu := 0 // used prefix of the idx/vals backing arrays (same stride)
	idxBack := buf.idx[:cap(buf.idx)]
	valBack := buf.vals[:cap(buf.vals)]
	coord := buf.coord
	for k := range coord {
		coord[k] = (lo / e.stride[k]) % e.grid.Axes[k].Points
	}

	if ctx.Err() != nil {
		return
	}
	innerVals := e.axisVals[inner]
	for f := lo; f < hi; {
		c0 := coord[inner]
		run := innerPts - c0
		if run > hi-f {
			run = hi - f
		}

		// Resolve the run's shared outer point and compile its plan. Any
		// failure — non-batchable inner axis, outer resolution error,
		// compile rejection — drops the run (or the affected points) to the
		// scalar path below, which reproduces the identical result or error.
		usePlan := e.planVals != nil
		var q ssn.Params
		if usePlan {
			q = e.grid.Base
			for k := 0; k < inner; k++ {
				if e.applyOne(&q, k, e.axisVals[k][coord[k]]) != nil {
					usePlan = false
					break
				}
			}
		}
		if usePlan && buf.plan.Compile(q, e.planAxis) != nil {
			usePlan = false
		}
		var vals []float64
		var bad []bool
		if usePlan {
			vals = e.planVals[c0 : c0+run]
			bad = e.planBad[c0 : c0+run]
			// Kernel over the maximal valid spans, writing at run offsets so
			// the materialize loop below indexes outputs by j directly. An N
			// inner axis feeds the integer kernel from the pre-rounded planN
			// grid (compileInner applies the same round-and-clamp the float
			// path would), skipping the per-point math.Round entirely.
			for s := 0; s < run; {
				if bad[s] {
					s++
					continue
				}
				t := s + 1
				for t < run && !bad[t] {
					t++
				}
				if e.planAxis == ssn.PlanAxisN {
					buf.plan.VMaxCaseBatchN(buf.vmax[s:t], buf.cases[s:t], e.planN[c0+s:c0+t])
				} else {
					buf.plan.VMaxCaseBatch(buf.vmax[s:t], buf.cases[s:t], vals[s:t])
				}
				s = t
			}
		}

		// Materialize the run's Index/Values backing column-major: outer
		// slots hold run-constant values written in tight strided loops,
		// and the per-point result pass below touches only the inner slot.
		// Fixed-size stack copies of the outer coordinates keep the loops
		// free of aliasing reloads against the point buffers.
		var oi [maxAxes]int
		var ov [maxAxes]float64
		for k := 0; k < nAx; k++ {
			oi[k] = coord[k]
			ov[k] = e.axisVals[k][coord[k]]
		}
		end := iu + run*nAx
		for k := 0; k < inner; k++ {
			ck, vk := oi[k], ov[k]
			for p := iu + k; p < end; p += nAx {
				idxBack[p] = ck
				valBack[p] = vk
			}
		}
		for p, j := iu+inner, 0; p < end; p, j = p+nAx, j+1 {
			idxBack[p] = c0 + j
			valBack[p] = innerVals[c0+j]
		}

		// Result pass: write each point in place. The Index/Values headers
		// are pre-wired to the backing slots just filled, so only the result
		// fields move. Reused buffer entries keep Depth == 0 from their
		// zeroing at allocation (only base-grid points flow through chunks);
		// every other field is overwritten, including a stale Err.
		start := len(buf.pts)
		buf.pts = buf.pts[:start+run]
		pts := buf.pts[start : start+run]
		iu = end
		if usePlan && !e.planBadAny {
			// All-valid fast path: no per-point validity branch, kernel
			// outputs re-sliced to run length so the indexing is check-free,
			// and the axis dispatch is hoisted out of the loop (the loops
			// differ only in which Params field takes the inner value).
			vmax := buf.vmax[:run]
			cs := buf.cases[:run]
			switch e.planAxis {
			case ssn.PlanAxisN:
				pn := e.planN[c0 : c0+run]
				for j := range pts {
					pt := &pts[j]
					pt.Params = q
					pt.Params.N = pn[j]
					pt.VMax = vmax[j]
					pt.Case = cs[j]
					pt.Err = nil
				}
			case ssn.PlanAxisL:
				for j := range pts {
					pt := &pts[j]
					pt.Params = q
					pt.Params.L = vals[j]
					pt.VMax = vmax[j]
					pt.Case = cs[j]
					pt.Err = nil
				}
			case ssn.PlanAxisC:
				for j := range pts {
					pt := &pts[j]
					pt.Params = q
					pt.Params.C = vals[j]
					pt.VMax = vmax[j]
					pt.Case = cs[j]
					pt.Err = nil
				}
			case ssn.PlanAxisSlope:
				for j := range pts {
					pt := &pts[j]
					pt.Params = q
					pt.Params.Slope = vals[j]
					pt.VMax = vmax[j]
					pt.Case = cs[j]
					pt.Err = nil
				}
			}
		} else {
			for j := range pts {
				pt := &pts[j]
				if usePlan && !bad[j] {
					pt.Params = q
					e.setInner(&pt.Params, vals[j])
					pt.VMax = buf.vmax[j]
					pt.Case = buf.cases[j]
					pt.Err = nil
				} else {
					*pt = e.eval(&buf.scratch, pt.Index, pt.Values, 0)
				}
			}
		}

		f += run
		coord[inner] += run
		for k := inner; k > 0 && coord[k] >= e.grid.Axes[k].Points; k-- {
			coord[k] = 0
			coord[k-1]++
		}
	}
}

// setInner writes an already-converted inner-axis value onto p, mirroring
// the batch kernel's interpretation (rise-time values arrive pre-converted
// to slopes in planVals).
func (e *engine) setInner(p *ssn.Params, v float64) {
	switch e.planAxis {
	case ssn.PlanAxisN:
		n := int(math.Round(v))
		if n < 1 {
			n = 1
		}
		p.N = n
	case ssn.PlanAxisL:
		p.L = v
	case ssn.PlanAxisC:
		p.C = v
	case ssn.PlanAxisSlope:
		p.Slope = v
	}
}

// Run sweeps the grid, streaming every point through sink, and returns the
// run statistics. It blocks until the sweep completes, the sink fails, or
// ctx is cancelled; in every case all worker goroutines have exited before
// it returns. The returned error is nil on completion, the sink's error,
// or ctx.Err().
func Run(ctx context.Context, g Grid, cfg Config, sink Sink) (Stats, error) {
	if sink == nil {
		return Stats{}, fmt.Errorf("sweep: nil sink")
	}
	if err := g.Validate(); err != nil {
		return Stats{}, err
	}
	e := newEngine(g, cfg)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	stats, err := e.runRange(ctx, cancel, cfg, 0, g.Total(), sink)
	if err != nil {
		return stats, err
	}
	if cfg.RefineDepth > 0 {
		workers := stats.Workers
		if workers < 1 {
			workers = 1
		}
		if err := e.refine(ctx, cancel, cfg, workers, sink, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// runRange evaluates the row-major index range [lo, hi) of the grid on the
// chunked worker pool and streams the points in index order through sink.
// ctx must already be cancellable via cancel; all worker goroutines have
// exited when it returns.
func (e *engine) runRange(ctx context.Context, cancel context.CancelFunc, cfg Config, lo, hi int, sink Sink) (Stats, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 1024
	}
	span := hi - lo
	nChunks := (span + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	stats := Stats{GridPoints: span, Chunks: nChunks, Workers: workers}

	type chunkOut struct {
		idx int
		buf *chunkBuf
	}
	tasks := make(chan int)
	out := make(chan chunkOut, workers+1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range tasks {
				if cfg.Gate != nil {
					if err := cfg.Gate.Acquire(ctx); err != nil {
						return
					}
				}
				clo := lo + ci*chunk
				chi := min(clo+chunk, hi)
				buf := getChunkBuf(chunk, len(e.grid.Axes))
				e.evalChunk(ctx, buf, clo, chi)
				if cfg.Gate != nil {
					cfg.Gate.Release()
				}
				select {
				case out <- chunkOut{ci, buf}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(tasks)
		for ci := 0; ci < nChunks; ci++ {
			select {
			case tasks <- ci:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Ordered emitter: deliver chunks to the sink in grid order. Workers
	// block once the reorder window fills, so pending holds at most
	// O(workers) chunks. Cancellation is observed at chunk granularity —
	// a chunk is microseconds of sink work — so the hot loop avoids the
	// per-point context poll (ctx.Err takes a mutex).
	var sinkErr error
	pending := map[int]*chunkBuf{}
	next := 0
	for co := range out {
		pending[co.idx] = co.buf
		for {
			buf, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if sinkErr == nil && ctx.Err() == nil {
				pts := buf.pts
				if e.cases == nil {
					for i := range pts {
						stats.Evaluated++
						if pts[i].Err != nil {
							stats.Errors++
						}
						if err := sink(pts[i]); err != nil {
							sinkErr = err
							cancel()
							break
						}
					}
				} else {
					for i := range pts {
						stats.Evaluated++
						if pts[i].Err != nil {
							stats.Errors++
						} else {
							e.cases[e.flat(pts[i].Index)] = uint8(pts[i].Case)
						}
						if err := sink(pts[i]); err != nil {
							sinkErr = err
							cancel()
							break
						}
					}
				}
			}
			chunkBufPool.Put(buf)
		}
	}
	if sinkErr != nil {
		return stats, sinkErr
	}
	return stats, ctx.Err()
}
