package sweep

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"ssnkit/internal/device"
	"ssnkit/internal/ssn"
)

// baseParams is a fixed operating point (no extraction needed): the c018
// fixture every ssn test uses.
func baseParams() ssn.Params {
	return ssn.Params{
		N: 16, Dev: device.ASDM{K: 4e-3, V0: 0.6, A: 1.2},
		Vdd: 1.8, Slope: 1.8e9, L: 2.5e-9 / 2, C: 2e-12,
	}
}

func TestAxisValues(t *testing.T) {
	lin := Axis{Name: AxisL, From: 1, To: 5, Points: 5}
	got := lin.Values()
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("linear[%d] = %g, want %g", i, got[i], want)
		}
	}
	log := Axis{Name: AxisC, From: 1, To: 100, Points: 3, Log: true}
	got = log.Values()
	for i, want := range []float64{1, 10, 100} {
		if math.Abs(got[i]-want)/want > 1e-12 {
			t.Errorf("log[%d] = %g, want %g", i, got[i], want)
		}
	}
	single := Axis{Name: AxisN, From: 7, Points: 1}
	if vs := single.Values(); len(vs) != 1 || vs[0] != 7 {
		t.Errorf("single-point axis: %v", vs)
	}
	// Endpoints must be exact, not accumulated.
	wide := Axis{Name: AxisL, From: 1e-10, To: 3.3e-8, Points: 17}
	vs := wide.Values()
	if vs[0] != 1e-10 || vs[16] != 3.3e-8 {
		t.Errorf("endpoints drifted: %g, %g", vs[0], vs[16])
	}
}

func TestGridValidation(t *testing.T) {
	base := baseParams()
	discard := func(Point) error { return nil }
	cases := []struct {
		name string
		grid Grid
	}{
		{"no axes", Grid{Base: base}},
		{"unknown axis", Grid{Base: base, Axes: []Axis{{Name: "zz", From: 1, To: 2, Points: 3}}}},
		{"zero points", Grid{Base: base, Axes: []Axis{{Name: AxisN, From: 1, To: 2}}}},
		{"reversed range", Grid{Base: base, Axes: []Axis{{Name: AxisN, From: 5, To: 2, Points: 3}}}},
		{"log nonpositive", Grid{Base: base, Axes: []Axis{{Name: AxisC, From: 0, To: 1, Points: 3, Log: true}}}},
		{"duplicate axis", Grid{Base: base, Axes: []Axis{
			{Name: AxisL, From: 1e-9, To: 2e-9, Points: 2},
			{Name: AxisL, From: 1e-9, To: 2e-9, Points: 2}}}},
		{"tr and slope", Grid{Base: base, Axes: []Axis{
			{Name: AxisRise, From: 1e-10, To: 1e-9, Points: 2},
			{Name: AxisSlope, From: 1e9, To: 2e9, Points: 2}}}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.grid, Config{}, discard); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	g := Grid{Base: base, Axes: []Axis{{Name: AxisN, From: 1, To: 4, Points: 2}}}
	if _, err := Run(context.Background(), g, Config{}, nil); err == nil {
		t.Error("nil sink: expected error")
	}
}

// TestBruteForceCrossCheck compares the chunked parallel engine against a
// plain nested loop over the same grid: identical values, identical
// row-major order.
func TestBruteForceCrossCheck(t *testing.T) {
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{
			{Name: AxisN, From: 2, To: 23, Points: 5},
			{Name: AxisL, From: 0.5e-9, To: 4e-9, Points: 7},
			{Name: AxisC, From: 0.1e-12, To: 20e-12, Points: 6, Log: true},
		},
	}
	var got []Point
	stats, err := Run(context.Background(), g, Config{Workers: 4, ChunkSize: 13},
		func(pt Point) error {
			// Points are only valid during the sink call; copy to retain.
			pt.Index = append([]int(nil), pt.Index...)
			pt.Values = append([]float64(nil), pt.Values...)
			got = append(got, pt)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.GridPoints != 5*7*6 || stats.Evaluated != 5*7*6 || stats.Errors != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if len(got) != 5*7*6 {
		t.Fatalf("delivered %d points", len(got))
	}

	ns := g.Axes[0].Values()
	ls := g.Axes[1].Values()
	cs := g.Axes[2].Values()
	i := 0
	for _, nv := range ns {
		for _, lv := range ls {
			for _, cv := range cs {
				p := g.Base
				p.N = int(math.Round(nv))
				if p.N < 1 {
					p.N = 1
				}
				p.L, p.C = lv, cv
				wantV, wantC, err := ssn.MaxSSN(p)
				if err != nil {
					t.Fatalf("brute force at %d: %v", i, err)
				}
				pt := got[i]
				if pt.Values[0] != nv || pt.Values[1] != lv || pt.Values[2] != cv {
					t.Fatalf("point %d out of order: %v", i, pt.Values)
				}
				if pt.VMax != wantV || pt.Case != wantC {
					t.Fatalf("point %d: engine (%g, %v) != brute force (%g, %v)",
						i, pt.VMax, pt.Case, wantV, wantC)
				}
				if pt.Params.N != p.N {
					t.Fatalf("point %d: N rounded to %d, want %d", i, pt.Params.N, p.N)
				}
				i++
			}
		}
	}
}

// TestErrorPointsReportedInPlace sweeps through invalid territory (L <= 0)
// and expects per-point errors, not an aborted run.
func TestErrorPointsReportedInPlace(t *testing.T) {
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{{Name: AxisL, From: -1e-9, To: 2e-9, Points: 4}},
	}
	var okPts, errPts int
	stats, err := Run(context.Background(), g, Config{}, func(pt Point) error {
		if pt.Err != nil {
			errPts++
		} else {
			okPts++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if errPts == 0 || okPts == 0 {
		t.Fatalf("expected a mix of good and bad points, got %d ok / %d err", okPts, errPts)
	}
	if stats.Errors != errPts || stats.Evaluated != okPts+errPts {
		t.Errorf("stats: %+v, want %d errors", stats, errPts)
	}
}

// waitForGoroutines polls until the goroutine count settles back at or
// below the baseline (workers unwind asynchronously after Run returns).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), base)
}

// TestSinkErrorCancels stops the sweep from the sink and verifies every
// worker goroutine unwinds.
func TestSinkErrorCancels(t *testing.T) {
	base := runtime.NumGoroutine()
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{
			{Name: AxisL, From: 0.5e-9, To: 4e-9, Points: 100},
			{Name: AxisC, From: 0.1e-12, To: 20e-12, Points: 100},
		},
	}
	boom := errors.New("sink full")
	n := 0
	_, err := Run(context.Background(), g, Config{Workers: 8, ChunkSize: 64},
		func(Point) error {
			n++
			if n == 500 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if n != 500 {
		t.Errorf("sink called %d times after error", n)
	}
	waitForGoroutines(t, base)
}

// TestContextCancelMidSweep cancels the context from the sink and checks
// Run returns promptly with ctx.Err() and no leaked goroutines.
func TestContextCancelMidSweep(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{
			{Name: AxisL, From: 0.5e-9, To: 4e-9, Points: 200},
			{Name: AxisC, From: 0.1e-12, To: 20e-12, Points: 200},
		},
	}
	n := 0
	_, err := Run(ctx, g, Config{Workers: 8, ChunkSize: 32}, func(Point) error {
		n++
		if n == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitForGoroutines(t, base)
}

// countGate asserts Acquire/Release balance and that concurrency never
// exceeds the worker count.
type countGate struct {
	mu       sync.Mutex
	cur, max int
	acquires int
}

func (g *countGate) Acquire(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur++
	g.acquires++
	if g.cur > g.max {
		g.max = g.cur
	}
	return nil
}

func (g *countGate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur--
}

func TestGateAcquiredPerChunk(t *testing.T) {
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{{Name: AxisC, From: 0.1e-12, To: 20e-12, Points: 64}},
	}
	gate := &countGate{}
	stats, err := Run(context.Background(), g, Config{Workers: 4, ChunkSize: 8, Gate: gate},
		func(Point) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if gate.cur != 0 {
		t.Errorf("gate unbalanced: %d outstanding", gate.cur)
	}
	if gate.acquires != stats.Chunks {
		t.Errorf("acquires %d != chunks %d", gate.acquires, stats.Chunks)
	}
	if gate.max > stats.Workers {
		t.Errorf("concurrency %d exceeded %d workers", gate.max, stats.Workers)
	}
}

// TestRefinementLocality enables adaptive refinement on a sweep that
// crosses a Table 1 case boundary and verifies every refined point lands
// strictly inside a base-grid interval whose endpoint cases differ.
func TestRefinementLocality(t *testing.T) {
	g := Grid{
		Base: baseParams(),
		// C from far below to far above the critical capacitance: the case
		// classification must flip somewhere inside.
		Axes: []Axis{{Name: AxisC, From: 0.01e-12, To: 40e-12, Points: 16}},
	}
	const depth = 3
	var basePts, refined []Point
	stats, err := Run(context.Background(), g, Config{Workers: 2, RefineDepth: depth},
		func(pt Point) error {
			pt.Index = append([]int(nil), pt.Index...)
			pt.Values = append([]float64(nil), pt.Values...)
			if pt.Depth == 0 {
				basePts = append(basePts, pt)
			} else {
				refined = append(refined, pt)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(basePts) != 16 {
		t.Fatalf("base points: %d", len(basePts))
	}

	// Collect the boundary intervals from the base grid.
	type interval struct{ lo, hi float64 }
	var bounds []interval
	for i := 0; i+1 < len(basePts); i++ {
		if basePts[i].Case != basePts[i+1].Case {
			bounds = append(bounds, interval{basePts[i].Values[0], basePts[i+1].Values[0]})
		}
	}
	if len(bounds) == 0 {
		t.Fatal("sweep never crossed a case boundary; fixture is wrong")
	}
	if len(refined) == 0 || stats.RefinedPoints != len(refined) {
		t.Fatalf("refined %d points, stats %+v", len(refined), stats)
	}
	if stats.MaxDepth < 1 || stats.MaxDepth > depth {
		t.Errorf("max depth %d outside [1, %d]", stats.MaxDepth, depth)
	}
	for _, pt := range refined {
		v := pt.Values[0]
		in := false
		for _, b := range bounds {
			if v > b.lo && v < b.hi {
				in = true
				break
			}
		}
		if !in {
			t.Errorf("refined point at C = %g outside every boundary interval %v", v, bounds)
		}
		if pt.Index != nil {
			t.Errorf("refined point carries a grid index: %v", pt.Index)
		}
		if pt.Depth > depth {
			t.Errorf("depth %d exceeds limit %d", pt.Depth, depth)
		}
	}
}

// TestRefinementIntegerNAxis checks the N axis never refines onto
// already-sampled integers: every refined N is a fresh integer between its
// neighbors.
func TestRefinementIntegerNAxis(t *testing.T) {
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{{Name: AxisN, From: 1, To: 61, Points: 4}}, // 1, 21, 41, 61
	}
	seen := map[int]bool{}
	_, err := Run(context.Background(), g, Config{RefineDepth: 8}, func(pt Point) error {
		if pt.Err != nil {
			t.Fatalf("unexpected point error: %v", pt.Err)
		}
		if pt.Depth > 0 && seen[pt.Params.N] {
			t.Errorf("refinement re-evaluated N = %d", pt.Params.N)
		}
		seen[pt.Params.N] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSizeAxisUsesExtract verifies a size axis routes through the
// configured ExtractFunc exactly once per distinct width.
func TestSizeAxisUsesExtract(t *testing.T) {
	var mu sync.Mutex
	calls := map[float64]int{}
	g := Grid{
		Base: baseParams(),
		Axes: []Axis{
			{Name: AxisSize, From: 1, To: 4, Points: 4},
			{Name: AxisC, From: 0.5e-12, To: 8e-12, Points: 5},
		},
		Spec: device.ExtractSpec{Process: "c018"},
	}
	cfg := Config{
		Workers: 4,
		Extract: func(spec device.ExtractSpec) (device.ASDM, error) {
			mu.Lock()
			calls[spec.Size]++
			mu.Unlock()
			m, _, err := spec.Extract()
			return m, err
		},
	}
	var pts int
	if _, err := Run(context.Background(), g, cfg, func(pt Point) error {
		if pt.Err != nil {
			t.Fatalf("point error: %v", pt.Err)
		}
		pts++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pts != 20 {
		t.Fatalf("delivered %d points", pts)
	}
	if len(calls) != 4 {
		t.Fatalf("extracted %d distinct sizes, want 4", len(calls))
	}
	for sz, n := range calls {
		if n != 1 {
			t.Errorf("size %g extracted %d times; memoization failed", sz, n)
		}
	}
}
