package sweep

import (
	"context"
	"math"
	"sync"

	"ssnkit/internal/ssn"
)

// refTask is one boundary interval to bisect: along axis k, between
// neighboring coordinates lo and hi whose Table 1 cases differ. vals holds
// the full axis-value vector; vals[axis] is replaced during bisection.
type refTask struct {
	axis     int
	vals     []float64
	lo, hi   float64
	cLo, cHi ssn.Case
	depth    int
}

// midpoint bisects the interval in the axis's own metric: geometric for
// log-spaced axes, arithmetic otherwise.
func midpoint(logAxis bool, lo, hi float64) float64 {
	if logAxis && lo > 0 {
		return math.Sqrt(lo * hi)
	}
	return lo + (hi-lo)/2
}

// splittable reports whether inserting mid between lo and hi yields a new,
// distinct point. The N axis additionally requires a fresh integer: once
// round(lo) and round(hi) are adjacent there is nothing between them.
func (e *engine) splittable(axis int, lo, mid, hi float64) bool {
	if !(mid > lo && mid < hi) {
		return false // interval exhausted in floating point
	}
	if e.grid.Axes[axis].Name == AxisN {
		m := math.Round(mid)
		if m == math.Round(lo) || m == math.Round(hi) {
			return false
		}
	}
	return true
}

// refine runs the adaptive pass: scan every pair of grid-adjacent points
// whose case classification differs and recursively bisect the interval,
// so extra resolution lands exactly where the closed form switches
// formula (the derivative of Vmax is discontinuous across Table 1 case
// boundaries). Tasks run on a fresh pool of the same width; results
// stream through the same serialized sink.
func (e *engine) refine(ctx context.Context, cancel context.CancelFunc, cfg Config, workers int, sink Sink, stats *Stats) error {
	tasks := make(chan refTask)
	out := make(chan Point, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch ssn.LCModel
			for t := range tasks {
				if cfg.Gate != nil {
					if err := cfg.Gate.Acquire(ctx); err != nil {
						return
					}
				}
				ok := e.bisect(ctx, &scratch, t, cfg.RefineDepth, out)
				if cfg.Gate != nil {
					cfg.Gate.Release()
				}
				if !ok {
					return
				}
			}
		}()
	}

	// Feed boundary pairs lazily: no task list is materialized, the scan
	// walks the compact case array directly.
	go func() {
		defer close(tasks)
		for k := range e.grid.Axes {
			points := e.grid.Axes[k].Points
			if points < 2 {
				continue
			}
			stride := e.stride[k]
			for f := 0; f < e.grid.Total(); f++ {
				if (f/stride)%points == points-1 {
					continue // last coordinate along axis k
				}
				cLo, cHi := e.cases[f], e.cases[f+stride]
				if cLo == 0 || cHi == 0 || cLo == cHi {
					continue
				}
				idx := e.coords(f)
				vals := make([]float64, len(idx))
				for a, i := range idx {
					vals[a] = e.axisVals[a][i]
				}
				t := refTask{
					axis:  k,
					vals:  vals,
					lo:    e.axisVals[k][idx[k]],
					hi:    e.axisVals[k][idx[k]+1],
					cLo:   ssn.Case(cLo),
					cHi:   ssn.Case(cHi),
					depth: 1,
				}
				select {
				case tasks <- t:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	var sinkErr error
	for pt := range out {
		if sinkErr != nil || ctx.Err() != nil {
			continue
		}
		stats.Evaluated++
		stats.RefinedPoints++
		if pt.Depth > stats.MaxDepth {
			stats.MaxDepth = pt.Depth
		}
		if pt.Err != nil {
			stats.Errors++
		}
		if err := sink(pt); err != nil {
			sinkErr = err
			cancel()
		}
	}
	if sinkErr != nil {
		return sinkErr
	}
	return ctx.Err()
}

// bisect evaluates the interval midpoint, emits it, and recurses into the
// halves whose endpoint cases still differ, down to maxDepth. Returns
// false when the context ended (the worker should exit).
func (e *engine) bisect(ctx context.Context, scratch *ssn.LCModel, t refTask, maxDepth int, out chan<- Point) bool {
	if t.depth > maxDepth || ctx.Err() != nil {
		return ctx.Err() == nil
	}
	mid := midpoint(e.grid.Axes[t.axis].Log, t.lo, t.hi)
	if !e.splittable(t.axis, t.lo, mid, t.hi) {
		return true
	}
	vals := make([]float64, len(t.vals))
	copy(vals, t.vals)
	vals[t.axis] = mid
	pt := e.eval(scratch, nil, vals, t.depth)
	select {
	case out <- pt:
	case <-ctx.Done():
		return false
	}
	if pt.Err != nil {
		return true
	}
	if pt.Case != t.cLo {
		sub := t
		sub.vals, sub.hi, sub.cHi, sub.depth = vals, mid, pt.Case, t.depth+1
		if !e.bisect(ctx, scratch, sub, maxDepth, out) {
			return false
		}
	}
	if pt.Case != t.cHi {
		sub := t
		sub.vals, sub.lo, sub.cLo, sub.depth = vals, mid, pt.Case, t.depth+1
		if !e.bisect(ctx, scratch, sub, maxDepth, out) {
			return false
		}
	}
	return true
}
