package sweep

import (
	"context"
	"fmt"
)

// RunRange evaluates the row-major index range [lo, hi) of the grid,
// streaming points in index order through sink, exactly as the same points
// would arrive from a full Run. It is the sharding primitive of the
// distributed sweep coordinator: the grid decomposes into disjoint ranges,
// each range evaluates anywhere (any process, any replica), and the
// concatenation of the per-range streams in range order is byte-for-byte
// the single-process stream — chunk and plan-run boundaries never change a
// point's value, only the evaluation batching.
//
// Adaptive refinement is rejected (refined points interleave in
// unspecified order, which a deterministic shard decomposition cannot
// carry); everything else — workers, chunking, gating, extraction — works
// as in Run.
func RunRange(ctx context.Context, g Grid, cfg Config, lo, hi int, sink Sink) (Stats, error) {
	if sink == nil {
		return Stats{}, fmt.Errorf("sweep: nil sink")
	}
	if cfg.RefineDepth > 0 {
		return Stats{}, fmt.Errorf("sweep: refinement is not supported for range runs")
	}
	if err := g.Validate(); err != nil {
		return Stats{}, err
	}
	total := g.Total()
	if lo < 0 || hi > total || lo > hi {
		return Stats{}, fmt.Errorf("sweep: range [%d, %d) outside grid of %d points", lo, hi, total)
	}
	e := newEngine(g, cfg)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return e.runRange(ctx, cancel, cfg, lo, hi, sink)
}

// DomainError reports an axis whose coordinate range provably leaves the
// model's domain: every front-end that must commit to a streamed response
// can reject the grid with a structured 400 instead of streaming a wall of
// per-point errors.
type DomainError struct {
	Axis       string  // offending axis name
	Bound      float64 // the rejected range bound
	Constraint string  // violated constraint, e.g. "must be positive"
}

func (e *DomainError) Error() string {
	return fmt.Sprintf("sweep: axis %s: from = %g %s", e.Axis, e.Bound, e.Constraint)
}

// ValidateDomain extends Validate with static axis-domain checks. The
// engine itself reports out-of-domain points in place (one bad corner never
// aborts a grid), but an axis whose range starts outside the domain is a
// spec error, not a data point — linear spacing visits every value from
// From upward, so a non-positive inductance or rise-time From guarantees
// invalid points before the first one is evaluated. Size axes are exempt:
// extraction failures are dynamic and stay per-point.
func (g Grid) ValidateDomain() error {
	if err := g.Validate(); err != nil {
		return err
	}
	for _, a := range g.Axes {
		switch a.Name {
		case AxisL, AxisSlope, AxisRise:
			if a.From <= 0 {
				return &DomainError{Axis: a.Name, Bound: a.From, Constraint: "must be positive"}
			}
		case AxisC:
			if a.From < 0 {
				return &DomainError{Axis: a.Name, Bound: a.From, Constraint: "must be non-negative"}
			}
		}
	}
	return nil
}
