package device

import (
	"fmt"

	"ssnkit/internal/fit"
)

// ExtractSpec names one ASDM extraction by its inputs: process kit, corner,
// driver polarity and width. Extraction is a pure function of these four
// values — equal specs always fit the identical model — which makes
// Key() a sound cache key for extraction reuse. ExtractASDM solves a fresh
// least-squares problem over a (Vg, Vs) grid on every call, the expensive
// repeated step when evaluating SSN in bulk, so batch consumers (the
// ssnserve evaluation service, sweep harnesses) key their caches on this.
type ExtractSpec struct {
	Process string  // kit name: "c018", "c025" or "c035"
	Corner  Corner  // process corner applied via Process.At
	Rail    bool    // true: pull-up driver (power-rail droop); false: pull-down
	Size    float64 // driver width multiple; <= 0 means 1x
}

// normalized maps the degenerate width encodings onto one representative so
// equivalent specs share a key.
func (s ExtractSpec) normalized() ExtractSpec {
	if s.Size <= 0 {
		s.Size = 1
	}
	return s
}

// Key returns a canonical string identity for the spec.
func (s ExtractSpec) Key() string {
	s = s.normalized()
	pol := "dn"
	if s.Rail {
		pol = "up"
	}
	return fmt.Sprintf("%s|%s|%s|%gx", s.Process, s.Corner, pol, s.Size)
}

// Extract resolves the process kit, shifts it to the corner and fits the
// ASDM over the standard SSN region, returning the model with its
// goodness-of-fit statistics.
func (s ExtractSpec) Extract() (ASDM, fit.Stats, error) {
	s = s.normalized()
	proc, err := ProcessByName(s.Process)
	if err != nil {
		return ASDM{}, fit.Stats{}, err
	}
	proc = proc.At(s.Corner)
	golden := proc.Driver(s.Size)
	if s.Rail {
		golden = proc.PullUpDriver(s.Size)
	}
	return ExtractASDM(golden, ExtractRegion{Vdd: proc.Vdd})
}

// Vdd returns the supply voltage of the spec's process kit.
func (s ExtractSpec) Vdd() (float64, error) {
	proc, err := ProcessByName(s.Process)
	if err != nil {
		return 0, err
	}
	return proc.Vdd, nil
}
