package device

import "math"

// AlphaPower is the Sakurai-Newton alpha-power-law MOSFET model
// (JSSC vol. 25 no. 2, 1990), the short-channel model used by the prior SSN
// work the paper compares against:
//
//	saturation (vds >= Vdsat):  Id = B * vov^Alpha * (1 + Lambda*vds)
//	linear     (vds <  Vdsat):  Id = Idsat * (2 - vds/Vdsat) * (vds/Vdsat)
//	Vdsat = Kv * vov^(Alpha/2)
//
// with vov = vgs - Vt(vbs). Alpha is ~2 for long-channel and approaches 1
// with full velocity saturation. The (1 + Lambda*vds) factor multiplies
// both regions so value and first derivative stay continuous at Vdsat.
type AlphaPower struct {
	ModelName string
	B         float64 // drive strength, A / V^Alpha (includes W/L)
	Vt0       float64 // zero-bias threshold voltage, V
	Alpha     float64 // velocity-saturation index, 1..2
	Kv        float64 // Vdsat coefficient, V^(1-Alpha/2)
	Gamma     float64 // body-effect coefficient, sqrt(V)
	Phi       float64 // surface potential, V
	Lambda    float64 // channel-length modulation, 1/V
}

// Name implements Model.
func (m *AlphaPower) Name() string {
	if m.ModelName != "" {
		return m.ModelName
	}
	return "alpha-power"
}

// Ids implements Model.
func (m *AlphaPower) Ids(vgs, vds, vbs float64) (id, gm, gds, gmbs float64) {
	if id, gm, gds, gmbs, ok := reverseIfNeeded(m, vgs, vds, vbs); ok {
		return id, gm, gds, gmbs
	}
	vt, dvt := bodyVt(m.Vt0, m.Gamma, m.Phi, vbs)
	vov := vgs - vt
	if vov <= 0 {
		return 0, 0, 0, 0
	}
	pa, ph := alphaPowers(vov, m.Alpha)
	isat := m.B * pa                  // saturation current sans CLM
	disat := m.B * m.Alpha * pa / vov // d isat / d vov
	vdsat := m.Kv * ph
	dvdsat := m.Kv * (m.Alpha / 2) * ph / vov
	clm := 1 + m.Lambda*vds

	if vds >= vdsat {
		id = isat * clm
		gm = disat * clm
		gds = isat * m.Lambda
		gmbs = -dvt * gm
		return id, gm, gds, gmbs
	}
	// Linear region: Id = isat * f(u) * clm with u = vds/vdsat, f = u(2-u).
	u := vds / vdsat
	f := u * (2 - u)
	df := 2 - 2*u // df/du
	id = isat * f * clm
	// dId/dvds at fixed vov: isat * df * (1/vdsat) * clm + isat * f * Lambda
	gds = isat*df/vdsat*clm + isat*f*m.Lambda
	// dId/dvov: disat * f * clm + isat * df * (-vds/vdsat^2) * dvdsat * clm
	didvov := disat*f*clm - isat*df*(vds/(vdsat*vdsat))*dvdsat*clm
	gm = didvov
	gmbs = -dvt * didvov
	return id, gm, gds, gmbs
}

// Vdsat returns the saturation drain voltage at the given gate overdrive
// conditions (vbs adjusts the threshold).
func (m *AlphaPower) Vdsat(vgs, vbs float64) float64 {
	vt, _ := bodyVt(m.Vt0, m.Gamma, m.Phi, vbs)
	vov := vgs - vt
	if vov <= 0 {
		return 0
	}
	return m.Kv * math.Pow(vov, m.Alpha/2)
}
