package device

// ASDMDevice lifts the paper's application-specific device model into a
// circuit-level Model, so the transient engine can simulate the *exact*
// device the closed forms assume. With an ASDMDevice in the driver array,
// the analytic Table 1 maxima and the simulated bounce must agree to
// numerical-integration accuracy — any larger disagreement is a bug in one
// of the two paths. This is the foundation of the differential oracle
// (internal/oracle): it separates "the formulas solve their own ODE
// correctly" from "the ASDM approximates a real transistor well", which the
// experiments (Fig. 3, Table 1) quantify separately against the golden
// Reference device.
//
// The ASDM is written in ground-referenced terminal voltages,
//
//	Id = K * max(0, Vg - V0 - A*Vs),
//
// while Model.Ids receives source-referenced ones (vgs, vds, vbs) and never
// sees Vs directly. The bulk terminal supplies it: oracle netlists wire the
// bulk to the true ground node, so vbs = -Vs and
//
//	Id = K * max(0, vgs - V0 + (A-1)*vbs).
//
// A bulk tied anywhere else silently changes the modeled equation, so Build
// code must use node "0" for the bulk of every ASDMDevice. The drain
// voltage does not appear at all (gds = 0): the ASDM holds the drain in the
// region where Id is drain-insensitive, which is also why the device never
// source/drain-reverses like the physical models do.
type ASDMDevice struct {
	ModelName string
	M         ASDM
}

// Name implements Model.
func (d *ASDMDevice) Name() string {
	if d.ModelName != "" {
		return d.ModelName
	}
	return "asdm"
}

// Ids implements Model. The device is piecewise linear: constant
// derivatives gm = K and gmbs = K*(A-1) while conducting, identically zero
// in cutoff, so Newton iteration converges in one step away from the
// cutoff corner.
func (d *ASDMDevice) Ids(vgs, vds, vbs float64) (id, gm, gds, gmbs float64) {
	drive := vgs - d.M.V0 + (d.M.A-1)*vbs
	if drive <= 0 {
		return 0, 0, 0, 0
	}
	return d.M.K * drive, d.M.K, 0, d.M.K * (d.M.A - 1)
}
