package device

import "fmt"

// Corner names a process corner: the correlated parameter shift foundries
// guarantee devices stay within. SSN analysis cares because the fast
// corner has both more drive (higher B) and a lower threshold — the
// worst case for ground bounce — while the slow corner bounds the timing.
type Corner int

// The standard digital corners.
const (
	TT Corner = iota // typical
	SS               // slow: weak drive, high threshold
	FF               // fast: strong drive, low threshold
)

func (c Corner) String() string {
	switch c {
	case TT:
		return "tt"
	case SS:
		return "ss"
	case FF:
		return "ff"
	default:
		return fmt.Sprintf("corner(%d)", int(c))
	}
}

// CornerByName parses "tt", "ss" or "ff".
func CornerByName(name string) (Corner, error) {
	switch name {
	case "tt", "":
		return TT, nil
	case "ss":
		return SS, nil
	case "ff":
		return FF, nil
	}
	return TT, fmt.Errorf("device: unknown corner %q (tt/ss/ff)", name)
}

// cornerShift holds the correlated multipliers of one corner.
type cornerShift struct {
	b   float64 // drive strength multiplier
	vt  float64 // threshold multiplier
	lam float64 // channel-length-modulation multiplier
}

var cornerShifts = map[Corner]cornerShift{
	TT: {1, 1, 1},
	SS: {0.85, 1.08, 0.9},
	FF: {1.18, 0.92, 1.1},
}

// apply returns a copy of the device at the corner.
func (s cornerShift) apply(d Reference, tag string) Reference {
	d.ModelName = d.ModelName + "-" + tag
	d.B *= s.b
	d.Vt0 *= s.vt
	d.Lambda *= s.lam
	return d
}

// At returns a copy of the process kit with both golden devices shifted to
// the corner. The supply voltage is untouched; combine with an explicit
// Vdd adjustment for full PVT exploration.
func (p Process) At(c Corner) Process {
	s, ok := cornerShifts[c]
	if !ok {
		s = cornerShifts[TT]
	}
	out := p
	if c != TT {
		out.Name = p.Name + "-" + c.String()
		out.ref = s.apply(p.ref, c.String())
		out.pullUp = s.apply(p.pullUp, c.String())
	}
	return out
}
