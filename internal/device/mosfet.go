// Package device implements the MOSFET models ssnkit uses:
//
//   - SquareLaw: the classic long-channel model (the oldest SSN baseline).
//   - AlphaPower: the Sakurai-Newton short-channel model the paper's prior
//     art builds on.
//   - Reference: a semi-empirical short-channel model standing in for the
//     BSIM3 devices the paper simulates with HSPICE; it adds body effect,
//     channel-length modulation and smooth subthreshold cutoff on top of the
//     alpha-power core, so it is *not* analytically tractable — exactly the
//     role the golden device plays in the paper.
//   - ASDM: the paper's application-specific device model, a linear
//     Id(Vg, Vs) fit over the SSN operating region, with its extraction.
//
// All models are N-channel; P-channel devices are handled by polarity
// reflection in the circuit element.
package device

import "math"

// Model is a three-terminal-voltage MOSFET large-signal model. Voltages are
// source-referenced: vgs gate-source, vds drain-source, vbs bulk-source.
// Ids returns the drain current and its partial derivatives (the
// small-signal conductances the Newton-Raphson solver stamps):
//
//	gm   = dId/dVgs
//	gds  = dId/dVds
//	gmbs = dId/dVbs
//
// Implementations must be continuous in value and reasonably continuous in
// the derivatives for the solver to converge.
type Model interface {
	Name() string
	Ids(vgs, vds, vbs float64) (id, gm, gds, gmbs float64)
}

// reverseIfNeeded evaluates a model with vds < 0 by swapping source and
// drain (MOSFETs are symmetric devices): Id(vgs, vds<0, vbs) =
// -Id(vgd, -vds, vbd). The chain rule maps the derivatives back to the
// original source-referenced variables.
func reverseIfNeeded(m Model, vgs, vds, vbs float64) (id, gm, gds, gmbs float64, handled bool) {
	if vds >= 0 {
		return 0, 0, 0, 0, false
	}
	vgd := vgs - vds
	vbd := vbs - vds
	idr, gmr, gdsr, gmbr := m.Ids(vgd, -vds, vbd)
	// id = -idr(vgs-vds, -vds, vbs-vds)
	id = -idr
	gm = -gmr
	gmbs = -gmbr
	// d/dvds: inner derivatives are (dvgd/dvds, d(-vds)/dvds, dvbd/dvds)
	// = (-1, -1, -1)
	gds = gmr + gdsr + gmbr
	return id, gm, gds, gmbs, true
}

// bodyVt returns the body-effect-adjusted threshold voltage and its
// derivative with respect to vbs:
//
//	Vt(vbs) = Vt0 + gamma*(sqrt(phi - vbs) - sqrt(phi))
//
// For vbs > phi (forward-biased junction, outside normal operation) the
// square root is clamped to keep the solver numerically alive.
func bodyVt(vt0, gamma, phi, vbs float64) (vt, dvtdvbs float64) {
	if gamma == 0 {
		return vt0, 0
	}
	if vbs == 0 && phi >= 1e-3 {
		// Source tied to bulk (every rail-referenced driver): the two square
		// roots cancel exactly, so compute just the derivative's.
		return vt0, -gamma / (2 * math.Sqrt(phi))
	}
	arg := phi - vbs
	const minArg = 1e-3
	if arg < minArg {
		arg = minArg
		vt = vt0 + gamma*(math.Sqrt(arg)-math.Sqrt(phi))
		return vt, 0
	}
	root := math.Sqrt(arg)
	vt = vt0 + gamma*(root-math.Sqrt(phi))
	dvtdvbs = -gamma / (2 * root)
	return vt, dvtdvbs
}

// TriodeResistance returns the small-signal channel resistance of a model
// at the given gate drive with the drain near the source (vds -> 0), the
// operating point of a quiet driver holding its output low while the
// ground rail bounces. It returns +Inf for a device that is off.
func TriodeResistance(m Model, vgs, vbs float64) float64 {
	const vds = 1e-4
	id, _, _, _ := m.Ids(vgs, vds, vbs)
	if id <= 0 {
		return math.Inf(1)
	}
	return vds / id
}

// alphaPowers returns v^alpha and v^(alpha/2) for v > 0. The alpha-power
// family needs four fractional powers of the same overdrive per Ids call;
// sharing one Log/Exp pair and one Sqrt (the quotient forms v^(a-1) = v^a/v
// cover the rest) removes math.Pow from the transient solver's profile.
func alphaPowers(v, alpha float64) (pa, ph float64) {
	pa = math.Exp(alpha * math.Log(v))
	return pa, math.Sqrt(pa)
}

// softplus returns st*ln(1+exp(x/st)) and its derivative, a smooth max(x,0)
// used to round the subthreshold corner so Newton iterations see a
// continuous gm. st is the smoothing scale in volts.
func softplus(x, st float64) (y, dy float64) {
	z := x / st
	switch {
	case z > 30:
		return x, 1
	case z < -30:
		return 0, 0
	}
	e := math.Exp(z)
	return st * math.Log1p(e), e / (1 + e)
}
