package device

import (
	"errors"
	"fmt"
	"math"

	"ssnkit/internal/fit"
)

// ASDM is the paper's application-specific device model (Sec. 2): in the SSN
// operating region — drain held high, gate ramping from 0 to Vdd, source at
// the bounce voltage, bulk grounded — the drain current is linear in both
// the gate and source voltages:
//
//	Id(Vg, Vs) = K * (Vg - V0 - A*Vs),  clamped at 0 below cutoff.
//
// K is the transconductance (A/V), V0 the displacement voltage (close to,
// but deliberately not equal to, the threshold voltage), and A > 1 the
// source-sensitivity factor absorbing body effect and drain-voltage
// coupling. ASDM trades the generality of the alpha-power law for exactness
// in the one region SSN analysis needs, which is what makes the closed-form
// ODE solutions of Secs. 3-4 possible without further approximation.
type ASDM struct {
	K  float64 // transconductance, A/V
	V0 float64 // displacement voltage, V
	A  float64 // source sensitivity, dimensionless, > 1 in real processes
}

// Id returns the modeled drain current at gate voltage vg and source
// voltage vs (both referenced to the true ground).
func (m ASDM) Id(vg, vs float64) float64 {
	d := vg - m.V0 - m.A*vs
	if d <= 0 {
		return 0
	}
	return m.K * d
}

// CutoffVg returns the gate voltage at which the device turns on for a given
// source voltage.
func (m ASDM) CutoffVg(vs float64) float64 { return m.V0 + m.A*vs }

// Validate reports whether the parameters are physical.
func (m ASDM) Validate() error {
	switch {
	case m.K <= 0:
		return fmt.Errorf("asdm: K = %g must be positive", m.K)
	case m.A <= 0:
		return fmt.Errorf("asdm: A = %g must be positive", m.A)
	case m.V0 < 0:
		return fmt.Errorf("asdm: V0 = %g must be non-negative", m.V0)
	}
	return nil
}

func (m ASDM) String() string {
	return fmt.Sprintf("ASDM{K=%.4g S, V0=%.4g V, a=%.4g}", m.K, m.V0, m.A)
}

// ExtractRegion describes the SSN operating region an ASDM is fitted over.
type ExtractRegion struct {
	Vdd     float64 // supply: gate sweeps up to Vdd, drain held at Vdd
	VsMax   float64 // largest source (bounce) voltage of interest
	NVg     int     // gate grid points (default 25)
	NVs     int     // source grid points (default 9)
	MinFrac float64 // exclude samples with Id below MinFrac * max Id (default 0.05)
	// BulkGrounded ties the bulk to the true ground (vbs = -Vs), adding
	// body effect to the source sensitivity. The default false matches the
	// paper's Fig. 1 setup (VB = VS): output-driver bulks ride on the
	// bouncing on-chip ground rail, and a > 1 then comes from the
	// drain-voltage coupling alone.
	BulkGrounded bool
}

func (r ExtractRegion) withDefaults() ExtractRegion {
	if r.NVg <= 1 {
		r.NVg = 25
	}
	if r.NVs <= 0 {
		r.NVs = 9
	}
	if r.MinFrac <= 0 {
		r.MinFrac = 0.05
	}
	if r.VsMax <= 0 {
		r.VsMax = 0.45 * r.Vdd
	}
	return r
}

// ErrExtract reports a failed ASDM extraction.
var ErrExtract = errors.New("device: ASDM extraction failed")

// IVSample is one measured operating point in the SSN region: gate and
// source voltages (referenced to true ground, drain held at the supply)
// and the drain current.
type IVSample struct {
	Vg, Vs, Id float64
}

// FitASDMSamples fits an ASDM to raw I-V samples — measured on a bench or
// exported from any simulator — using the paper's recipe: discard points
// below minFrac of the maximum current (the near-threshold region), then
// linear least squares. minFrac <= 0 defaults to 0.05.
func FitASDMSamples(samples []IVSample, minFrac float64) (ASDM, fit.Stats, error) {
	if minFrac <= 0 {
		minFrac = 0.05
	}
	maxID := 0.0
	for _, s := range samples {
		if s.Id > maxID {
			maxID = s.Id
		}
	}
	if maxID <= 0 {
		return ASDM{}, fit.Stats{}, fmt.Errorf("%w: no conducting samples", ErrExtract)
	}
	var rows [][]float64
	var ys []float64
	for _, s := range samples {
		if s.Id < minFrac*maxID {
			continue
		}
		rows = append(rows, []float64{s.Vg, 1, s.Vs})
		ys = append(ys, s.Id)
	}
	if len(rows) < 3 {
		return ASDM{}, fit.Stats{}, fmt.Errorf("%w: only %d usable samples", ErrExtract, len(rows))
	}
	c, err := fit.Linear(rows, ys)
	if err != nil {
		return ASDM{}, fit.Stats{}, fmt.Errorf("%w: %v", ErrExtract, err)
	}
	if c[0] <= 0 {
		return ASDM{}, fit.Stats{}, fmt.Errorf("%w: non-positive K = %g", ErrExtract, c[0])
	}
	m := ASDM{K: c[0], V0: -c[1] / c[0], A: -c[2] / c[0]}
	if err := m.Validate(); err != nil {
		return ASDM{}, fit.Stats{}, fmt.Errorf("%w: %v", ErrExtract, err)
	}
	pred := make([]float64, len(ys))
	for i, row := range rows {
		pred[i] = m.Id(row[0], row[2])
	}
	stats, err := fit.Evaluate(pred, ys, 0.05*maxID)
	if err != nil {
		return ASDM{}, fit.Stats{}, err
	}
	return m, stats, nil
}

// ExtractASDM fits an ASDM to a golden device model over the SSN operating
// region, replicating the paper's methodology: sample Id on a (Vg, Vs) grid
// with the drain at Vdd and the bulk grounded (so vbs = -Vs), discard the
// near-threshold samples where even the alpha-power law is inaccurate, and
// solve the linear least-squares problem
//
//	Id ≈ c1*Vg + c0 + c2*Vs  =>  K = c1, V0 = -c0/K, A = -c2/K.
//
// It returns the fitted model and goodness-of-fit statistics against the
// retained samples.
func ExtractASDM(golden Model, region ExtractRegion) (ASDM, fit.Stats, error) {
	r := region.withDefaults()
	if r.Vdd <= 0 {
		return ASDM{}, fit.Stats{}, fmt.Errorf("%w: Vdd must be positive", ErrExtract)
	}

	var samples []IVSample
	for i := 0; i < r.NVg; i++ {
		vg := r.Vdd * float64(i) / float64(r.NVg-1)
		for j := 0; j < r.NVs; j++ {
			var vs float64
			if r.NVs > 1 {
				vs = r.VsMax * float64(j) / float64(r.NVs-1)
			}
			// SSN region bias: drain at Vdd, source bounced to vs, bulk
			// riding with the source (paper default) or held at ground.
			vbs := 0.0
			if r.BulkGrounded {
				vbs = -vs
			}
			id, _, _, _ := golden.Ids(vg-vs, r.Vdd-vs, vbs)
			samples = append(samples, IVSample{Vg: vg, Vs: vs, Id: id})
		}
	}
	return FitASDMSamples(samples, r.MinFrac)
}

// ExtractAlphaPowerSat fits a saturation-region alpha-power law
// Id = B*(Vgs - Vt)^Alpha to a golden device at vs = 0, vds = Vdd — the
// general-purpose fit the paper contrasts ASDM with. It returns the fitted
// B, Vt, Alpha.
func ExtractAlphaPowerSat(golden Model, vdd float64) (b, vt, alpha float64, stats fit.Stats, err error) {
	model := func(x, p []float64) float64 {
		d := x[0] - p[1]
		if d <= 0 {
			return 0
		}
		return p[0] * math.Pow(d, p[2])
	}
	var xs [][]float64
	var ys []float64
	maxID := 0.0
	const n = 40
	for i := 0; i <= n; i++ {
		vg := vdd * float64(i) / n
		id, _, _, _ := golden.Ids(vg, vdd, 0)
		if id <= 0 {
			continue
		}
		xs = append(xs, []float64{vg})
		ys = append(ys, id)
		if id > maxID {
			maxID = id
		}
	}
	if len(xs) < 4 {
		return 0, 0, 0, fit.Stats{}, fmt.Errorf("%w: device never turns on", ErrExtract)
	}
	res, err := fit.LevenbergMarquardt(model, xs, ys, []float64{maxID / vdd, 0.3 * vdd, 1.2}, fit.LMOptions{MaxIter: 400})
	if err != nil {
		return 0, 0, 0, fit.Stats{}, err
	}
	pred := make([]float64, len(ys))
	for i := range xs {
		pred[i] = model(xs[i], res.Params)
	}
	stats, err = fit.Evaluate(pred, ys, 0.05*maxID)
	if err != nil {
		return 0, 0, 0, fit.Stats{}, err
	}
	return res.Params[0], res.Params[1], res.Params[2], stats, nil
}
