package device

import (
	"math"
	"testing"
	"testing/quick"
)

// checkDerivatives compares a model's analytic conductances against central
// finite differences at one bias point.
func checkDerivatives(t *testing.T, m Model, vgs, vds, vbs float64) {
	t.Helper()
	const h = 1e-6
	id, gm, gds, gmbs := m.Ids(vgs, vds, vbs)
	_ = id
	num := func(f func(float64) float64, x float64) float64 {
		return (f(x+h) - f(x-h)) / (2 * h)
	}
	gmN := num(func(v float64) float64 { i, _, _, _ := m.Ids(v, vds, vbs); return i }, vgs)
	gdsN := num(func(v float64) float64 { i, _, _, _ := m.Ids(vgs, v, vbs); return i }, vds)
	gmbN := num(func(v float64) float64 { i, _, _, _ := m.Ids(vgs, vds, v); return i }, vbs)
	tol := 1e-5 * (1 + math.Abs(id))
	if math.Abs(gm-gmN) > tol+1e-7*math.Abs(gmN) {
		t.Errorf("%s gm analytic %g vs numeric %g at (%g,%g,%g)", m.Name(), gm, gmN, vgs, vds, vbs)
	}
	if math.Abs(gds-gdsN) > tol+1e-7*math.Abs(gdsN) {
		t.Errorf("%s gds analytic %g vs numeric %g at (%g,%g,%g)", m.Name(), gds, gdsN, vgs, vds, vbs)
	}
	if math.Abs(gmbs-gmbN) > tol+1e-7*math.Abs(gmbN) {
		t.Errorf("%s gmbs analytic %g vs numeric %g at (%g,%g,%g)", m.Name(), gmbs, gmbN, vgs, vds, vbs)
	}
}

func testModels() []Model {
	return []Model{
		&SquareLaw{Kp: 2e-3, Vt0: 0.5, Gamma: 0.4, Phi: 0.8, Lambda: 0.05},
		&AlphaPower{B: 3e-3, Vt0: 0.45, Alpha: 1.3, Kv: 0.6, Gamma: 0.4, Phi: 0.8, Lambda: 0.05},
		C018.Driver(1),
	}
}

func TestDerivativesMatchFiniteDifference(t *testing.T) {
	biases := [][3]float64{
		{1.8, 1.8, 0},     // strong saturation
		{1.2, 0.3, 0},     // triode
		{1.0, 1.0, -0.3},  // body bias
		{0.9, 1.5, -0.1},  // mid drive
		{1.5, 0.05, -0.2}, // deep triode
	}
	for _, m := range testModels() {
		for _, b := range biases {
			checkDerivatives(t, m, b[0], b[1], b[2])
		}
	}
}

func TestCutoffRegion(t *testing.T) {
	for _, m := range []Model{
		&SquareLaw{Kp: 2e-3, Vt0: 0.5, Gamma: 0.4, Phi: 0.8},
		&AlphaPower{B: 3e-3, Vt0: 0.45, Alpha: 1.3, Kv: 0.6},
	} {
		id, gm, gds, gmbs := m.Ids(0.1, 1.8, 0)
		if id != 0 || gm != 0 || gds != 0 || gmbs != 0 {
			t.Errorf("%s below threshold: id=%g gm=%g gds=%g gmbs=%g", m.Name(), id, gm, gds, gmbs)
		}
	}
}

func TestReferenceSubthresholdSmooth(t *testing.T) {
	m := C018.Driver(1)
	// Just below and above Vt0 the current must be continuous and small but
	// non-zero below threshold (softplus tail).
	idBelow, _, _, _ := m.Ids(m.Vt0-0.05, 1.8, 0)
	idAbove, _, _, _ := m.Ids(m.Vt0+0.05, 1.8, 0)
	if idBelow <= 0 {
		t.Error("reference model should have a soft subthreshold tail")
	}
	if idAbove <= idBelow {
		t.Error("current must grow through threshold")
	}
	if idBelow > idAbove/2 {
		t.Error("subthreshold tail too strong")
	}
}

func TestMonotonicityProperty(t *testing.T) {
	// Id must be non-decreasing in vgs and vds (for fixed others, vds >= 0).
	for _, m := range testModels() {
		f := func(a, b uint8) bool {
			vg1 := float64(a%180) / 100 // 0..1.79
			vg2 := vg1 + 0.1
			vds := float64(b%180) / 100
			i1, _, _, _ := m.Ids(vg1, vds, 0)
			i2, _, _, _ := m.Ids(vg2, vds, 0)
			if i2 < i1-1e-15 {
				return false
			}
			i3, _, _, _ := m.Ids(vg2, vds+0.1, 0)
			return i3 >= i2-1e-15
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s monotonicity: %v", m.Name(), err)
		}
	}
}

func TestBodyEffectRaisesThreshold(t *testing.T) {
	for _, m := range testModels() {
		// Reverse body bias (vbs < 0) must reduce the current.
		i0, _, _, _ := m.Ids(1.2, 1.8, 0)
		i1, _, _, _ := m.Ids(1.2, 1.8, -0.5)
		if i1 >= i0 {
			t.Errorf("%s: reverse body bias did not reduce Id (%g -> %g)", m.Name(), i0, i1)
		}
	}
}

func TestRegionContinuityAtVdsat(t *testing.T) {
	m := &AlphaPower{B: 3e-3, Vt0: 0.45, Alpha: 1.3, Kv: 0.6, Lambda: 0.05}
	vgs := 1.5
	vdsat := m.Vdsat(vgs, 0)
	iLo, _, _, _ := m.Ids(vgs, vdsat-1e-9, 0)
	iHi, _, _, _ := m.Ids(vgs, vdsat+1e-9, 0)
	if math.Abs(iLo-iHi) > 1e-9*math.Abs(iHi) {
		t.Errorf("current discontinuity at vdsat: %g vs %g", iLo, iHi)
	}
	_, _, gdsLo, _ := m.Ids(vgs, vdsat-1e-7, 0)
	_, _, gdsHi, _ := m.Ids(vgs, vdsat+1e-7, 0)
	if math.Abs(gdsLo-gdsHi) > 1e-3*math.Max(math.Abs(gdsLo), 1e-12) {
		t.Errorf("gds discontinuity at vdsat: %g vs %g", gdsLo, gdsHi)
	}
}

func TestReverseModeSymmetry(t *testing.T) {
	// Swapping drain and source must negate the current.
	for _, m := range testModels() {
		vg, vd, vb := 1.4, 0.6, -0.1
		fwd, _, _, _ := m.Ids(vg, vd, vb)
		// Reverse connection: gate-"source"(old drain) = vg - vd, vds = -vd,
		// bulk-"source" = vb - vd.
		rev, _, _, _ := m.Ids(vg-vd, -vd, vb-vd)
		if math.Abs(fwd+rev) > 1e-12*(1+math.Abs(fwd)) {
			t.Errorf("%s: reverse symmetry broken: fwd %g, rev %g", m.Name(), fwd, rev)
		}
	}
}

func TestReverseModeDerivatives(t *testing.T) {
	for _, m := range testModels() {
		checkDerivatives(t, m, 1.0, -0.4, -0.05)
	}
}

func TestASDMIdAndCutoff(t *testing.T) {
	m := ASDM{K: 4e-3, V0: 0.6, A: 1.3}
	if got := m.Id(0.5, 0); got != 0 {
		t.Errorf("below cutoff Id = %g", got)
	}
	if got := m.Id(1.6, 0); math.Abs(got-4e-3*1.0) > 1e-15 {
		t.Errorf("Id(1.6, 0) = %g", got)
	}
	// Source bounce shifts cutoff by A*vs.
	if got := m.CutoffVg(0.5); math.Abs(got-(0.6+0.65)) > 1e-15 {
		t.Errorf("CutoffVg = %g", got)
	}
	if m.Id(m.CutoffVg(0.5), 0.5) != 0 {
		t.Error("Id at exact cutoff must be 0")
	}
}

func TestASDMValidate(t *testing.T) {
	if (ASDM{K: 1, V0: 0.5, A: 1.2}).Validate() != nil {
		t.Error("valid ASDM rejected")
	}
	for _, bad := range []ASDM{{K: 0, V0: 0.5, A: 1}, {K: 1, V0: -1, A: 1}, {K: 1, V0: 0.5, A: 0}} {
		if bad.Validate() == nil {
			t.Errorf("invalid ASDM accepted: %+v", bad)
		}
	}
}

func TestExtractASDMOnExactLinearDevice(t *testing.T) {
	// A golden device that *is* linear must be recovered exactly.
	truth := ASDM{K: 5e-3, V0: 0.55, A: 1.25}
	golden := modelFunc(func(vgs, vds, vbs float64) (float64, float64, float64, float64) {
		// Translate the SSN-region bias back to (vg, vs): the extraction
		// probes Ids(vg-vs, Vdd-vs, 0), so vs = Vdd - vds and vg = vgs + vs.
		vs := 1.8 - vds
		vg := vgs + vs
		return truth.Id(vg, vs), 0, 0, 0
	})
	m, stats, err := ExtractASDM(golden, ExtractRegion{Vdd: 1.8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.K-truth.K) > 1e-9 || math.Abs(m.V0-truth.V0) > 1e-6 || math.Abs(m.A-truth.A) > 1e-6 {
		t.Errorf("recovered %v, want %v", m, truth)
	}
	if stats.R2 < 1-1e-9 {
		t.Errorf("R2 = %g on exact data", stats.R2)
	}
}

// modelFunc adapts a function to the Model interface for tests.
type modelFunc func(vgs, vds, vbs float64) (float64, float64, float64, float64)

func (f modelFunc) Name() string { return "func" }
func (f modelFunc) Ids(vgs, vds, vbs float64) (float64, float64, float64, float64) {
	return f(vgs, vds, vbs)
}

func TestExtractASDMOnReferenceDevice(t *testing.T) {
	for _, p := range Processes() {
		m, stats, err := ExtractASDM(p.Driver(1), ExtractRegion{Vdd: p.Vdd})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Paper's qualitative claims about the fitted parameters:
		if m.A <= 1 {
			t.Errorf("%s: fitted a = %g, paper requires a > 1 in real processes", p.Name, m.A)
		}
		if m.A > 2 {
			t.Errorf("%s: fitted a = %g implausibly large", p.Name, m.A)
		}
		// V0 is near but not equal to the threshold voltage.
		vt0 := p.Driver(1).Vt0
		if m.V0 <= vt0-0.1 || m.V0 > vt0+0.4 {
			t.Errorf("%s: V0 = %g far from plausible range around Vt0 = %g", p.Name, m.V0, vt0)
		}
		if m.V0 == vt0 {
			t.Errorf("%s: V0 exactly equals Vt0; fit looks degenerate", p.Name)
		}
		// The fit must be good in the fitted region.
		if stats.R2 < 0.985 {
			t.Errorf("%s: ASDM R2 = %g, want > 0.985", p.Name, stats.R2)
		}
	}
}

func TestExtractASDMBulkConfigurations(t *testing.T) {
	// Grounding the bulk adds body effect on top of the drain coupling, so
	// the fitted source-sensitivity a must grow.
	p := C018
	follow, _, err := ExtractASDM(p.Driver(1), ExtractRegion{Vdd: p.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	grounded, _, err := ExtractASDM(p.Driver(1), ExtractRegion{Vdd: p.Vdd, BulkGrounded: true})
	if err != nil {
		t.Fatal(err)
	}
	if follow.A <= 1 {
		t.Errorf("bulk-follows-source a = %g, want > 1 (CLM coupling)", follow.A)
	}
	if grounded.A <= follow.A {
		t.Errorf("grounded-bulk a = %g not larger than follows-source a = %g", grounded.A, follow.A)
	}
}

func TestExtractASDMErrors(t *testing.T) {
	off := modelFunc(func(_, _, _ float64) (float64, float64, float64, float64) { return 0, 0, 0, 0 })
	if _, _, err := ExtractASDM(off, ExtractRegion{Vdd: 1.8}); err == nil {
		t.Error("always-off device must fail extraction")
	}
	if _, _, err := ExtractASDM(C018.Driver(1), ExtractRegion{Vdd: 0}); err == nil {
		t.Error("zero Vdd must fail")
	}
}

func TestExtractAlphaPowerSat(t *testing.T) {
	// Fitting an actual alpha-power device (no body effect, no CLM) must
	// recover its parameters.
	golden := &AlphaPower{B: 3e-3, Vt0: 0.45, Alpha: 1.3, Kv: 0.6}
	b, vt, alpha, stats, err := ExtractAlphaPowerSat(golden, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-3e-3) > 1e-5 || math.Abs(vt-0.45) > 5e-3 || math.Abs(alpha-1.3) > 2e-2 {
		t.Errorf("alpha-power fit: B=%g Vt=%g alpha=%g (stats %+v)", b, vt, alpha, stats)
	}
}

func TestASDMBeatsAlphaPowerInSSNRegion(t *testing.T) {
	// The paper's headline device-model claim: over the SSN region, the
	// application-specific fit beats the general-purpose alpha-power fit
	// once second-order source coupling (here: body effect with a grounded
	// bulk) is in play, because the alpha-power law only sees Vs through
	// vgs and cannot absorb the extra sensitivity.
	p := C018
	golden := p.Driver(1)
	asdm, asdmStats, err := ExtractASDM(golden, ExtractRegion{Vdd: p.Vdd, BulkGrounded: true})
	if err != nil {
		t.Fatal(err)
	}
	b, vt, alpha, _, err := ExtractAlphaPowerSat(golden, p.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	var asdmErr, apErr, maxID float64
	for _, vs := range []float64{0, 0.2, 0.4} {
		for vg := 0.8; vg <= p.Vdd; vg += 0.05 {
			id, _, _, _ := golden.Ids(vg-vs, p.Vdd-vs, -vs)
			if id > maxID {
				maxID = id
			}
			ea := math.Abs(asdm.Id(vg, vs) - id)
			d := vg - vs - vt
			ap := 0.0
			if d > 0 {
				ap = b * math.Pow(d, alpha)
			}
			ep := math.Abs(ap - id)
			asdmErr += ea * ea
			apErr += ep * ep
		}
	}
	if asdmErr >= apErr {
		t.Errorf("ASDM SSE %g not better than alpha-power SSE %g (asdm stats %+v)", asdmErr, apErr, asdmStats)
	}
}

func TestProcessByName(t *testing.T) {
	p, err := ProcessByName("c025")
	if err != nil || p.Vdd != 2.5 {
		t.Errorf("ProcessByName(c025) = %+v, %v", p, err)
	}
	if _, err := ProcessByName("c090"); err == nil {
		t.Error("unknown process must error")
	}
}

func TestDriverScaling(t *testing.T) {
	d1 := C018.Driver(1)
	d4 := C018.Driver(4)
	i1, _, _, _ := d1.Ids(1.8, 1.8, 0)
	i4, _, _, _ := d4.Ids(1.8, 1.8, 0)
	if math.Abs(i4-4*i1) > 1e-12*math.Abs(i4) {
		t.Errorf("4x driver current %g, want 4 * %g", i4, i1)
	}
	if d0 := C018.Driver(0); d0.B != d1.B {
		t.Error("non-positive size must default to 1x")
	}
}

func TestDriverCurrentScale(t *testing.T) {
	// Sanity: a 1x 0.18 µm-class driver sinks a few mA at full drive.
	id, _, _, _ := C018.Driver(1).Ids(1.8, 1.8, 0)
	if id < 2e-3 || id > 15e-3 {
		t.Errorf("1x driver Idsat = %g A, outside the plausible I/O-driver range", id)
	}
}

func TestBodyVtClamp(t *testing.T) {
	// Far forward body bias must not produce NaN.
	vt, dvt := bodyVt(0.45, 0.4, 0.8, 5.0)
	if math.IsNaN(vt) || math.IsNaN(dvt) {
		t.Error("bodyVt produced NaN under forward bias")
	}
}

func TestSoftplusLimits(t *testing.T) {
	y, dy := softplus(10, 0.05)
	if math.Abs(y-10) > 1e-9 || math.Abs(dy-1) > 1e-9 {
		t.Errorf("softplus large-x: %g, %g", y, dy)
	}
	y, dy = softplus(-10, 0.05)
	if y != 0 || dy != 0 {
		t.Errorf("softplus small-x: %g, %g", y, dy)
	}
	y0, _ := softplus(0, 0.05)
	if math.Abs(y0-0.05*math.Ln2) > 1e-12 {
		t.Errorf("softplus(0) = %g, want %g", y0, 0.05*math.Ln2)
	}
}
