package device

// SquareLaw is the classic long-channel MOSFET model:
//
//	triode (vds < vov):    Id = Kp*(vov*vds - vds^2/2)*(1 + Lambda*vds)
//	saturation:            Id = Kp/2 * vov^2 * (1 + Lambda*vds)
//
// with vov = vgs - Vt(vbs). It is the device model behind the earliest SSN
// estimates (Senthinathan-Prince style) and serves as the long-channel
// baseline in the experiments.
type SquareLaw struct {
	ModelName string
	Kp        float64 // transconductance factor, A/V^2 (already includes W/L)
	Vt0       float64 // zero-bias threshold voltage, V
	Gamma     float64 // body-effect coefficient, sqrt(V)
	Phi       float64 // surface potential 2*phiF, V
	Lambda    float64 // channel-length modulation, 1/V
}

// Name implements Model.
func (m *SquareLaw) Name() string {
	if m.ModelName != "" {
		return m.ModelName
	}
	return "square-law"
}

// Ids implements Model.
func (m *SquareLaw) Ids(vgs, vds, vbs float64) (id, gm, gds, gmbs float64) {
	if id, gm, gds, gmbs, ok := reverseIfNeeded(m, vgs, vds, vbs); ok {
		return id, gm, gds, gmbs
	}
	vt, dvt := bodyVt(m.Vt0, m.Gamma, m.Phi, vbs)
	vov := vgs - vt
	if vov <= 0 {
		return 0, 0, 0, 0
	}
	clm := 1 + m.Lambda*vds
	if vds < vov {
		// Triode region.
		core := vov*vds - vds*vds/2
		id = m.Kp * core * clm
		gm = m.Kp * vds * clm
		gds = m.Kp * ((vov-vds)*clm + core*m.Lambda)
		gmbs = -dvt * gm // dId/dvbs = dId/dvov * dvov/dvbs = gm * (-dvt)
		return id, gm, gds, gmbs
	}
	// Saturation.
	core := 0.5 * vov * vov
	id = m.Kp * core * clm
	gm = m.Kp * vov * clm
	gds = m.Kp * core * m.Lambda
	gmbs = -dvt * gm
	return id, gm, gds, gmbs
}
