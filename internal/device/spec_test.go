package device

import "testing"

func TestExtractSpecKeyCanonical(t *testing.T) {
	a := ExtractSpec{Process: "c018", Corner: FF, Size: 0}
	b := ExtractSpec{Process: "c018", Corner: FF, Size: 1}
	if a.Key() != b.Key() {
		t.Errorf("size 0 and 1 must share a key: %q vs %q", a.Key(), b.Key())
	}
	distinct := []ExtractSpec{
		{Process: "c018", Corner: TT},
		{Process: "c018", Corner: FF},
		{Process: "c025", Corner: TT},
		{Process: "c018", Corner: TT, Rail: true},
		{Process: "c018", Corner: TT, Size: 4},
	}
	seen := map[string]bool{}
	for _, s := range distinct {
		k := s.Key()
		if seen[k] {
			t.Errorf("key collision at %+v: %q", s, k)
		}
		seen[k] = true
	}
}

func TestExtractSpecExtractMatchesDirectExtraction(t *testing.T) {
	spec := ExtractSpec{Process: "c018", Corner: FF, Size: 2}
	got, _, err := spec.Extract()
	if err != nil {
		t.Fatal(err)
	}
	proc := C018.At(FF)
	want, _, err := ExtractASDM(proc.Driver(2), ExtractRegion{Vdd: proc.Vdd})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("spec extraction diverged: %v vs %v", got, want)
	}
	rail := ExtractSpec{Process: "c018", Corner: TT, Rail: true}
	up, _, err := rail.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if up == got {
		t.Error("pull-up extraction must differ from pull-down")
	}
}

func TestExtractSpecErrors(t *testing.T) {
	if _, _, err := (ExtractSpec{Process: "c999"}).Extract(); err == nil {
		t.Error("unknown process must error")
	}
	if _, err := (ExtractSpec{Process: "c999"}).Vdd(); err == nil {
		t.Error("unknown process must error in Vdd")
	}
	if vdd, err := (ExtractSpec{Process: "c025"}).Vdd(); err != nil || vdd != C025.Vdd {
		t.Errorf("Vdd = %g, %v; want %g", vdd, err, C025.Vdd)
	}
}
