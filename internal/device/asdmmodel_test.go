package device

import (
	"math"
	"testing"
)

func TestASDMDeviceMatchesASDMWithGroundedBulk(t *testing.T) {
	m := ASDM{K: 4e-3, V0: 0.5, A: 1.4}
	dev := &ASDMDevice{M: m}
	// Terminal voltages referenced to ground: gate vg, source vs, bulk 0.
	for _, tc := range []struct{ vg, vs float64 }{
		{0, 0}, {0.5, 0}, {1.2, 0}, {1.8, 0.2}, {1.0, 0.4}, {0.6, 0.3},
	} {
		want := m.Id(tc.vg, tc.vs)
		id, _, _, _ := dev.Ids(tc.vg-tc.vs, 1.8-tc.vs, 0-tc.vs)
		if math.Abs(id-want) > 1e-15 {
			t.Errorf("Ids(vg=%g, vs=%g) = %g, want ASDM.Id = %g", tc.vg, tc.vs, id, want)
		}
	}
}

func TestASDMDeviceDrainInsensitive(t *testing.T) {
	dev := &ASDMDevice{M: ASDM{K: 4e-3, V0: 0.5, A: 1.4}}
	id1, _, gds, _ := dev.Ids(1.0, 1.8, -0.1)
	id2, _, _, _ := dev.Ids(1.0, 0.05, -0.1)
	id3, _, _, _ := dev.Ids(1.0, -0.7, -0.1)
	if gds != 0 {
		t.Errorf("gds = %g, want 0", gds)
	}
	if id1 != id2 || id1 != id3 {
		t.Errorf("drain voltage leaked into Id: %g, %g, %g", id1, id2, id3)
	}
}

func TestASDMDeviceDerivativesMatchFiniteDifference(t *testing.T) {
	dev := &ASDMDevice{M: ASDM{K: 4e-3, V0: 0.5, A: 1.4}}
	const h = 1e-7
	vgs, vds, vbs := 0.9, 1.5, -0.2
	id, gm, gds, gmbs := dev.Ids(vgs, vds, vbs)
	if id <= 0 {
		t.Fatal("device should conduct at this bias")
	}
	fd := func(f func(float64) float64, x float64) float64 {
		return (f(x+h) - f(x-h)) / (2 * h)
	}
	gotGm := fd(func(x float64) float64 { i, _, _, _ := dev.Ids(x, vds, vbs); return i }, vgs)
	gotGds := fd(func(x float64) float64 { i, _, _, _ := dev.Ids(vgs, x, vbs); return i }, vds)
	gotGmbs := fd(func(x float64) float64 { i, _, _, _ := dev.Ids(vgs, vds, x); return i }, vbs)
	for _, c := range []struct {
		name      string
		got, want float64
	}{{"gm", gm, gotGm}, {"gds", gds, gotGds}, {"gmbs", gmbs, gotGmbs}} {
		if math.Abs(c.got-c.want) > 1e-6 {
			t.Errorf("%s = %g, finite difference %g", c.name, c.got, c.want)
		}
	}
}

func TestASDMDeviceCutoff(t *testing.T) {
	dev := &ASDMDevice{M: ASDM{K: 4e-3, V0: 0.5, A: 1.4}}
	id, gm, gds, gmbs := dev.Ids(0.4, 1.8, 0)
	if id != 0 || gm != 0 || gds != 0 || gmbs != 0 {
		t.Errorf("cutoff leaks: id=%g gm=%g gds=%g gmbs=%g", id, gm, gds, gmbs)
	}
}

func TestASDMDeviceName(t *testing.T) {
	if n := (&ASDMDevice{}).Name(); n != "asdm" {
		t.Errorf("default name %q", n)
	}
	if n := (&ASDMDevice{ModelName: "x"}).Name(); n != "x" {
		t.Errorf("name %q, want x", n)
	}
}
