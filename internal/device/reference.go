package device

// Reference is ssnkit's golden short-channel device — the stand-in for the
// BSIM3 (HSPICE Level 49) transistors the paper validates against. It is an
// alpha-power core augmented with the second-order effects that make real
// devices analytically intractable and that the ASDM fit must absorb:
//
//   - body effect (Gamma, Phi): raises Vt as the source bounces, the main
//     physical origin of the paper's a > 1;
//   - channel-length modulation (Lambda): couples Id to the falling Vds;
//   - smooth subthreshold turn-on (SubSlope): replaces the hard vov=0
//     corner with a softplus so the near-threshold curvature the paper's
//     Fig. 1 shows (and excludes from the fit) is present.
//
// The model is continuous with continuous first derivatives everywhere,
// which the Newton-Raphson transient solver requires.
type Reference struct {
	ModelName string
	B         float64 // drive strength, A / V^Alpha (includes W/L)
	Vt0       float64 // zero-bias threshold, V
	Alpha     float64 // velocity-saturation index
	Kv        float64 // Vdsat coefficient
	Gamma     float64 // body effect, sqrt(V)
	Phi       float64 // surface potential, V
	Lambda    float64 // channel-length modulation, 1/V
	SubSlope  float64 // subthreshold smoothing scale, V (default 0.045)
}

// Name implements Model.
func (m *Reference) Name() string {
	if m.ModelName != "" {
		return m.ModelName
	}
	return "reference"
}

func (m *Reference) subSlope() float64 {
	if m.SubSlope > 0 {
		return m.SubSlope
	}
	return 0.045
}

// Ids implements Model.
func (m *Reference) Ids(vgs, vds, vbs float64) (id, gm, gds, gmbs float64) {
	if id, gm, gds, gmbs, ok := reverseIfNeeded(m, vgs, vds, vbs); ok {
		return id, gm, gds, gmbs
	}
	vt, dvt := bodyVt(m.Vt0, m.Gamma, m.Phi, vbs)
	// Smooth effective overdrive: veff -> vov for vov >> SubSlope, -> 0
	// exponentially below threshold.
	veff, dveff := softplus(vgs-vt, m.subSlope())
	if veff <= 0 {
		return 0, 0, 0, 0
	}
	pa, ph := alphaPowers(veff, m.Alpha)
	vinv := 1 / veff // shared reciprocal: the derivative terms all divide by veff
	isat := m.B * pa
	disat := m.B * m.Alpha * pa * vinv
	vdsat := m.Kv * ph
	dvdsat := m.Kv * (m.Alpha / 2) * ph * vinv
	clm := 1 + m.Lambda*vds

	var didveff float64
	if vds >= vdsat {
		id = isat * clm
		didveff = disat * clm
		gds = isat * m.Lambda
	} else {
		dsinv := 1 / vdsat
		u := vds * dsinv
		f := u * (2 - u)
		df := 2 - 2*u
		id = isat * f * clm
		gds = isat*df*dsinv*clm + isat*f*m.Lambda
		didveff = disat*f*clm - isat*df*(vds*dsinv*dsinv)*dvdsat*clm
	}
	gm = didveff * dveff
	gmbs = didveff * dveff * (-dvt)
	return id, gm, gds, gmbs
}

// SaturationCurrent returns Id at the given bias assuming the drain is held
// at vds in saturation; convenience for I-V sweeps.
func (m *Reference) SaturationCurrent(vgs, vds, vbs float64) float64 {
	id, _, _, _ := m.Ids(vgs, vds, vbs)
	return id
}
