package device

import "fmt"

// Process bundles the technology-level quantities the experiments need: the
// supply voltage and a golden output-driver pull-down device of nominal
// width, plus scaling to other widths. The three kits below are
// 0.18/0.25/0.35 µm-class devices with public-domain-typical nominal values
// standing in for the TSMC processes the paper uses (see DESIGN.md §4).
type Process struct {
	Name string
	Vdd  float64 // nominal supply, V
	// Golden pull-down device template for a 1x output driver.
	ref Reference
	// Golden pull-up (PMOS) template, expressed in mirrored N-type
	// coordinates: the simulator and the ASDM extraction evaluate it with
	// reflected terminal voltages, so the same Reference struct serves.
	// Pull-ups are drawn ~2x wide to offset hole mobility; the net drive
	// is still ~20% below the pull-down.
	pullUp Reference
}

// C018, C025 and C035 are the three process kits, ordered newest first.
// Drive strengths are set so a 1x output driver sinks roughly 5-7 mA at
// full gate drive, the scale of the strong I/O drivers the paper studies.
var (
	C018 = Process{
		Name: "c018",
		Vdd:  1.8,
		ref: Reference{
			ModelName: "nch-c018-1x",
			B:         3.4e-3, Vt0: 0.45, Alpha: 1.24, Kv: 0.55,
			Gamma: 0.40, Phi: 0.80, Lambda: 0.06, SubSlope: 0.045,
		},
		pullUp: Reference{
			ModelName: "pch-c018-1x",
			B:         2.7e-3, Vt0: 0.48, Alpha: 1.35, Kv: 0.60,
			Gamma: 0.42, Phi: 0.80, Lambda: 0.08, SubSlope: 0.05,
		},
	}
	C025 = Process{
		Name: "c025",
		Vdd:  2.5,
		ref: Reference{
			ModelName: "nch-c025-1x",
			B:         2.6e-3, Vt0: 0.55, Alpha: 1.35, Kv: 0.62,
			Gamma: 0.45, Phi: 0.85, Lambda: 0.05, SubSlope: 0.05,
		},
		pullUp: Reference{
			ModelName: "pch-c025-1x",
			B:         2.1e-3, Vt0: 0.58, Alpha: 1.45, Kv: 0.68,
			Gamma: 0.47, Phi: 0.85, Lambda: 0.07, SubSlope: 0.055,
		},
	}
	C035 = Process{
		Name: "c035",
		Vdd:  3.3,
		ref: Reference{
			ModelName: "nch-c035-1x",
			B:         1.9e-3, Vt0: 0.62, Alpha: 1.50, Kv: 0.70,
			Gamma: 0.50, Phi: 0.90, Lambda: 0.04, SubSlope: 0.055,
		},
		pullUp: Reference{
			ModelName: "pch-c035-1x",
			B:         1.5e-3, Vt0: 0.66, Alpha: 1.60, Kv: 0.76,
			Gamma: 0.52, Phi: 0.90, Lambda: 0.06, SubSlope: 0.06,
		},
	}
)

// Processes lists the available kits.
func Processes() []Process { return []Process{C018, C025, C035} }

// ProcessByName looks a kit up by name ("c018", "c025", "c035").
func ProcessByName(name string) (Process, error) {
	for _, p := range Processes() {
		if p.Name == name {
			return p, nil
		}
	}
	return Process{}, fmt.Errorf("device: unknown process %q", name)
}

// Driver returns the golden pull-down device scaled to `size` times the
// nominal driver width. Drive strength scales linearly with width; the
// voltage-shaped parameters are width-independent.
func (p Process) Driver(size float64) *Reference {
	if size <= 0 {
		size = 1
	}
	d := p.ref
	d.ModelName = fmt.Sprintf("%s-%gx", p.ref.ModelName, size)
	d.B *= size
	return &d
}

// PullUpDriver returns the golden pull-up (PMOS) device scaled to `size`
// times the nominal driver width, in mirrored N-type coordinates (the
// circuit element and the extraction reflect the terminal voltages).
func (p Process) PullUpDriver(size float64) *Reference {
	if size <= 0 {
		size = 1
	}
	d := p.pullUp
	d.ModelName = fmt.Sprintf("%s-%gx", p.pullUp.ModelName, size)
	d.B *= size
	return &d
}

// ExtractASDM fits the paper's device model to this process's 1x driver
// over the standard SSN region (Vs up to 45% of Vdd).
func (p Process) ExtractASDM() (ASDM, error) {
	m, _, err := ExtractASDM(p.Driver(1), ExtractRegion{Vdd: p.Vdd})
	return m, err
}

// ExtractASDMPullUp fits the device model to the pull-up driver for
// power-rail droop analysis. In the mirrored coordinates (gate drive
// measured downward from Vdd, source voltage = rail droop) the fitted
// parameters plug into the same closed forms as the ground-bounce case —
// the paper's "the SSN at the power-supply node can be analyzed
// similarly".
func (p Process) ExtractASDMPullUp() (ASDM, error) {
	m, _, err := ExtractASDM(p.PullUpDriver(1), ExtractRegion{Vdd: p.Vdd})
	return m, err
}
