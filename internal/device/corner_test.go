package device

import (
	"testing"
)

func TestCornerNames(t *testing.T) {
	for name, want := range map[string]Corner{"tt": TT, "ss": SS, "ff": FF, "": TT} {
		got, err := CornerByName(name)
		if err != nil || got != want {
			t.Errorf("CornerByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := CornerByName("fs"); err == nil {
		t.Error("unknown corner must error")
	}
	for _, c := range []Corner{TT, SS, FF, Corner(9)} {
		if c.String() == "" {
			t.Error("empty corner name")
		}
	}
}

func TestCornerDriveOrdering(t *testing.T) {
	// FF > TT > SS in drive current at identical bias, for both devices.
	bias := func(m Model) float64 {
		id, _, _, _ := m.Ids(1.8, 1.8, 0)
		return id
	}
	ss := C018.At(SS)
	tt := C018.At(TT)
	ff := C018.At(FF)
	if !(bias(ff.Driver(1)) > bias(tt.Driver(1)) && bias(tt.Driver(1)) > bias(ss.Driver(1))) {
		t.Error("pull-down corner ordering broken")
	}
	if !(bias(ff.PullUpDriver(1)) > bias(tt.PullUpDriver(1)) && bias(tt.PullUpDriver(1)) > bias(ss.PullUpDriver(1))) {
		t.Error("pull-up corner ordering broken")
	}
}

func TestCornerTTIsIdentity(t *testing.T) {
	tt := C018.At(TT)
	if tt.Name != C018.Name {
		t.Errorf("TT renamed the kit: %q", tt.Name)
	}
	if tt.Driver(1).B != C018.Driver(1).B {
		t.Error("TT changed parameters")
	}
}

func TestCornerASDMExtractionOrdering(t *testing.T) {
	// The fast corner turns on earlier (lower V0) and drives harder
	// (higher K) — the SSN worst case.
	ssA, err := C018.At(SS).ExtractASDM()
	if err != nil {
		t.Fatal(err)
	}
	ffA, err := C018.At(FF).ExtractASDM()
	if err != nil {
		t.Fatal(err)
	}
	if ffA.K <= ssA.K {
		t.Errorf("FF K %g not above SS K %g", ffA.K, ssA.K)
	}
	if ffA.V0 >= ssA.V0 {
		t.Errorf("FF V0 %g not below SS V0 %g", ffA.V0, ssA.V0)
	}
}

func TestCornerUnknownFallsBackToTT(t *testing.T) {
	weird := C018.At(Corner(42))
	if weird.Driver(1).B != C018.Driver(1).B {
		t.Error("unknown corner should behave as TT")
	}
}
