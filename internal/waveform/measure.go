package waveform

import (
	"fmt"
	"math"
)

// Measurement helpers: the standard signal-integrity numbers pulled from
// simulated or modeled waveforms. All return an error when the waveform
// never satisfies the measurement's premise (e.g. never crosses a level).

// CrossTime returns the first time the waveform crosses the given level in
// the given direction: +1 rising, -1 falling, 0 either.
func (w *Waveform) CrossTime(level float64, direction int) (float64, error) {
	n := w.Len()
	for i := 1; i < n; i++ {
		a, b := w.Values[i-1]-level, w.Values[i]-level
		hit := false
		switch {
		case a == 0:
			// Counts when the segment moves in the requested direction.
			hit = (direction >= 0 && b > 0) || (direction <= 0 && b < 0)
			if hit {
				return w.Times[i-1], nil
			}
		case a*b < 0:
			rising := b > 0
			hit = direction == 0 || (direction > 0 && rising) || (direction < 0 && !rising)
		}
		if hit {
			t := w.Times[i-1] + (w.Times[i]-w.Times[i-1])*a/(a-b)
			return t, nil
		}
	}
	return 0, fmt.Errorf("waveform %q never crosses %g (direction %d)", w.Name, level, direction)
}

// RiseTime returns the 10%-90% rise time between the given low and high
// reference levels (usually the signal's rails).
func (w *Waveform) RiseTime(low, high float64) (float64, error) {
	span := high - low
	if span <= 0 {
		return 0, fmt.Errorf("waveform %q: rise-time range [%g, %g] is empty", w.Name, low, high)
	}
	t10, err := w.CrossTime(low+0.1*span, +1)
	if err != nil {
		return 0, err
	}
	t90, err := w.CrossTime(low+0.9*span, +1)
	if err != nil {
		return 0, err
	}
	if t90 < t10 {
		return 0, fmt.Errorf("waveform %q: 90%% crossing before 10%% crossing", w.Name)
	}
	return t90 - t10, nil
}

// FallTime returns the 90%-10% fall time between the reference levels.
func (w *Waveform) FallTime(low, high float64) (float64, error) {
	span := high - low
	if span <= 0 {
		return 0, fmt.Errorf("waveform %q: fall-time range [%g, %g] is empty", w.Name, low, high)
	}
	t90, err := w.CrossTime(low+0.9*span, -1)
	if err != nil {
		return 0, err
	}
	t10, err := w.CrossTime(low+0.1*span, -1)
	if err != nil {
		return 0, err
	}
	if t10 < t90 {
		return 0, fmt.Errorf("waveform %q: 10%% crossing before 90%% crossing", w.Name)
	}
	return t10 - t90, nil
}

// Overshoot returns how far the waveform exceeds the final value, as a
// fraction of the swing from the initial to the final value. A monotone
// settle returns 0.
func (w *Waveform) Overshoot() (float64, error) {
	if w.Len() < 2 {
		return 0, ErrEmpty
	}
	v0 := w.Values[0]
	vf := w.Values[w.Len()-1]
	swing := vf - v0
	if swing == 0 {
		return 0, fmt.Errorf("waveform %q has no net transition", w.Name)
	}
	worst := 0.0
	for _, v := range w.Values {
		// Excursion beyond the final value in the direction of the swing.
		over := (v - vf) / swing
		if over > worst {
			worst = over
		}
	}
	return worst, nil
}

// SettlingTime returns the time after which the waveform stays within
// +-tol (absolute) of its final value.
func (w *Waveform) SettlingTime(tol float64) (float64, error) {
	if w.Len() < 2 {
		return 0, ErrEmpty
	}
	if tol <= 0 {
		return 0, fmt.Errorf("waveform %q: settling tolerance must be positive", w.Name)
	}
	vf := w.Values[w.Len()-1]
	// Walk backwards to the last sample outside the band.
	for i := w.Len() - 1; i >= 0; i-- {
		if math.Abs(w.Values[i]-vf) > tol {
			if i == w.Len()-1 {
				return 0, fmt.Errorf("waveform %q has not settled to within %g", w.Name, tol)
			}
			return w.Times[i+1], nil
		}
	}
	return w.Times[0], nil
}

// DelayBetween returns t(other crosses level, dir) - t(w crosses level,
// dir): the propagation delay from this waveform's transition to the
// other's.
func (w *Waveform) DelayBetween(other *Waveform, level float64, direction int) (float64, error) {
	t1, err := w.CrossTime(level, direction)
	if err != nil {
		return 0, err
	}
	t2, err := other.CrossTime(level, direction)
	if err != nil {
		return 0, err
	}
	return t2 - t1, nil
}

// Integral returns the trapezoidal integral of the waveform over its span.
func (w *Waveform) Integral() float64 {
	sum := 0.0
	for i := 1; i < w.Len(); i++ {
		sum += (w.Values[i] + w.Values[i-1]) / 2 * (w.Times[i] - w.Times[i-1])
	}
	return sum
}

// Derivative returns a new waveform of central-difference derivatives
// (one-sided at the ends), named "<name>'".
func (w *Waveform) Derivative() (*Waveform, error) {
	n := w.Len()
	if n < 2 {
		return nil, ErrEmpty
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		switch i {
		case 0:
			vals[i] = (w.Values[1] - w.Values[0]) / (w.Times[1] - w.Times[0])
		case n - 1:
			vals[i] = (w.Values[n-1] - w.Values[n-2]) / (w.Times[n-1] - w.Times[n-2])
		default:
			vals[i] = (w.Values[i+1] - w.Values[i-1]) / (w.Times[i+1] - w.Times[i-1])
		}
	}
	return New(w.Name+"'", w.Times, vals)
}
