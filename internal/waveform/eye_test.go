package waveform

import (
	"math"
	"testing"
)

func TestEyeFoldPeriodicSignal(t *testing.T) {
	// A perfectly periodic signal folds into a zero-width band everywhere.
	const period = 2e-9
	w, err := FromFunc("per", func(tt float64) float64 {
		return math.Sin(2 * math.Pi * tt / period)
	}, 0, 10*period, 20001)
	if err != nil {
		t.Fatal(err)
	}
	eye, err := w.EyeFold(0, period, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, worst := eye.WorstBand()
	if worst > 0.01 {
		t.Errorf("periodic signal band height %g, want ~0", worst)
	}
	// The envelope follows the sine.
	lo, hi := eye.BandAt(period / 4)
	if math.Abs(lo-1) > 0.02 || math.Abs(hi-1) > 0.02 {
		t.Errorf("quarter-phase band [%g, %g], want ~[1, 1]", lo, hi)
	}
}

func TestEyeFoldDriftingSignal(t *testing.T) {
	// A growing-amplitude oscillation folds into a wide band whose height
	// reflects the cycle-to-cycle variation.
	const period = 1e-9
	w, err := FromFunc("grow", func(tt float64) float64 {
		return (1 + tt/5e-9) * math.Sin(2*math.Pi*tt/period)
	}, 0, 10e-9, 20001)
	if err != nil {
		t.Fatal(err)
	}
	eye, err := w.EyeFold(0, period, 64)
	if err != nil {
		t.Fatal(err)
	}
	phase, worst := eye.WorstBand()
	if worst < 1.5 {
		t.Errorf("drifting signal band %g, expected wide", worst)
	}
	// Worst band is near a sine extremum (quarter or three-quarter phase).
	d1 := math.Abs(phase - period/4)
	d2 := math.Abs(phase - 3*period/4)
	if math.Min(d1, d2) > period/8 {
		t.Errorf("worst band at phase %g, want near an extremum", phase)
	}
}

func TestEyeFoldValidation(t *testing.T) {
	w, _ := FromFunc("w", math.Sin, 0, 1, 101)
	if _, err := w.EyeFold(0, 0, 32); err == nil {
		t.Error("zero period must error")
	}
	if _, err := w.EyeFold(0, 10, 32); err == nil {
		t.Error("period longer than data must error")
	}
	// Tiny bin count clamps rather than failing.
	eye, err := w.EyeFold(0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eye.Phase) != 64 {
		t.Errorf("bins = %d, want clamped default 64", len(eye.Phase))
	}
}

func TestEyeBandAtWrapsPhase(t *testing.T) {
	const period = 1.0
	w, _ := FromFunc("w", func(tt float64) float64 { return math.Mod(tt, period) }, 0, 6, 6001)
	eye, err := w.EyeFold(0, period, 10)
	if err != nil {
		t.Fatal(err)
	}
	lo1, hi1 := eye.BandAt(0.25)
	lo2, hi2 := eye.BandAt(0.25 + 3*period)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("BandAt must wrap the phase")
	}
	lo3, hi3 := eye.BandAt(-0.75) // same as +0.25
	if lo1 != lo3 || hi1 != hi3 {
		t.Error("BandAt must wrap negative phases")
	}
}
