package waveform

import (
	"math"
	"testing"
)

// rampWave is 0 until 1ns, rises linearly to 1 at 2ns, holds.
func rampWave(t *testing.T) *Waveform {
	t.Helper()
	w, err := FromFunc("ramp", func(tt float64) float64 {
		switch {
		case tt < 1e-9:
			return 0
		case tt > 2e-9:
			return 1
		default:
			return (tt - 1e-9) / 1e-9
		}
	}, 0, 3e-9, 3001)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCrossTime(t *testing.T) {
	w := rampWave(t)
	tc, err := w.CrossTime(0.5, +1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc-1.5e-9) > 2e-12 {
		t.Errorf("rising 50%% at %g, want 1.5e-9", tc)
	}
	// No falling crossing exists.
	if _, err := w.CrossTime(0.5, -1); err == nil {
		t.Error("falling crossing should not exist")
	}
	// Either-direction matches the rising one.
	tc2, err := w.CrossTime(0.5, 0)
	if err != nil || math.Abs(tc2-tc) > 1e-15 {
		t.Errorf("direction 0 crossing %g vs %g (%v)", tc2, tc, err)
	}
	// Level never reached.
	if _, err := w.CrossTime(2.0, 0); err == nil {
		t.Error("unreachable level must error")
	}
}

func TestRiseFallTime(t *testing.T) {
	w := rampWave(t)
	rt, err := w.RiseTime(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Linear ramp over 1 ns: 10-90% takes 0.8 ns.
	if math.Abs(rt-0.8e-9) > 5e-12 {
		t.Errorf("rise time %g, want 0.8e-9", rt)
	}
	// Falling version.
	f, err := FromFunc("fall", func(tt float64) float64 {
		switch {
		case tt < 1e-9:
			return 1
		case tt > 3e-9:
			return 0
		default:
			return 1 - (tt-1e-9)/2e-9
		}
	}, 0, 4e-9, 4001)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := f.FallTime(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ft-1.6e-9) > 5e-12 {
		t.Errorf("fall time %g, want 1.6e-9", ft)
	}
	if _, err := w.RiseTime(1, 0); err == nil {
		t.Error("empty range must error")
	}
	if _, err := w.FallTime(1, 1); err == nil {
		t.Error("empty fall range must error")
	}
}

func TestOvershoot(t *testing.T) {
	// Damped step with a 20% first overshoot.
	w, err := FromFunc("ring", func(tt float64) float64 {
		x := tt / 1e-9
		return 1 - math.Exp(-x)*math.Cos(3*x)*1.2/math.Sqrt(1+x)
	}, 0, 10e-9, 5001)
	if err != nil {
		t.Fatal(err)
	}
	os, err := w.Overshoot()
	if err != nil {
		t.Fatal(err)
	}
	if os <= 0.01 || os > 0.6 {
		t.Errorf("overshoot %g outside plausible band", os)
	}
	// Monotone settle: zero overshoot.
	mono, _ := FromFunc("mono", func(tt float64) float64 {
		return 1 - math.Exp(-tt/1e-9)
	}, 0, 10e-9, 1001)
	os, err = mono.Overshoot()
	if err != nil || os != 0 {
		t.Errorf("monotone overshoot = %g (%v)", os, err)
	}
	flat, _ := FromFunc("flat", func(float64) float64 { return 1 }, 0, 1e-9, 11)
	if _, err := flat.Overshoot(); err == nil {
		t.Error("flat waveform must error")
	}
}

func TestSettlingTime(t *testing.T) {
	w, _ := FromFunc("exp", func(tt float64) float64 {
		return 1 - math.Exp(-tt/1e-9)
	}, 0, 10e-9, 10001)
	st, err := w.SettlingTime(0.02)
	if err != nil {
		t.Fatal(err)
	}
	// 1 - e^{-t/tau} is within 2% of the *final* value (0.99995) when
	// e^{-t/tau} <= 0.02 + 5e-5 -> t ~= 3.9 tau.
	if st < 3.5e-9 || st > 4.3e-9 {
		t.Errorf("settling time %g, want ~3.9e-9", st)
	}
	if _, err := w.SettlingTime(0); err == nil {
		t.Error("zero tolerance must error")
	}
	// Already settled from the start.
	flat, _ := FromFunc("flat", func(float64) float64 { return 5 }, 0, 1e-9, 11)
	st, err = flat.SettlingTime(0.1)
	if err != nil || st != 0 {
		t.Errorf("flat settling = %g (%v)", st, err)
	}
}

func TestDelayBetween(t *testing.T) {
	a := rampWave(t)
	b := a.Shift(0.3e-9)
	d, err := a.DelayBetween(b, 0.5, +1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.3e-9) > 3e-12 {
		t.Errorf("delay %g, want 0.3e-9", d)
	}
}

func TestIntegral(t *testing.T) {
	// Integral of the unit ramp segment: 0.5 ns over the ramp + 1 ns hold
	// = 1.5e-9 V*s.
	w := rampWave(t)
	got := w.Integral()
	if math.Abs(got-1.5e-9) > 1e-12 {
		t.Errorf("integral %g, want 1.5e-9", got)
	}
}

func TestDerivative(t *testing.T) {
	w, _ := FromFunc("lin", func(tt float64) float64 { return 3 * tt }, 0, 1e-9, 101)
	d, err := w.Derivative()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Values {
		if math.Abs(v-3) > 1e-6 {
			t.Fatalf("derivative[%d] = %g, want 3", i, v)
		}
	}
	if d.Name != "lin'" {
		t.Errorf("derivative name %q", d.Name)
	}
	single := &Waveform{Name: "s", Times: []float64{0}, Values: []float64{1}}
	if _, err := single.Derivative(); err == nil {
		t.Error("single-sample derivative must error")
	}
}
