package waveform

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Set is an ordered collection of waveforms sharing a context (one
// simulation run, one experiment sweep). Waveforms in a set may have
// different time grids; CSV export resamples onto the first waveform's grid.
type Set struct {
	Waves []*Waveform
}

// Add appends a waveform to the set.
func (s *Set) Add(w *Waveform) { s.Waves = append(s.Waves, w) }

// Get returns the waveform with the given name, or nil.
func (s *Set) Get(name string) *Waveform {
	for _, w := range s.Waves {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Names lists the waveform names in order.
func (s *Set) Names() []string {
	out := make([]string, len(s.Waves))
	for i, w := range s.Waves {
		out[i] = w.Name
	}
	return out
}

// WriteCSV writes the set as a CSV table with a "time" column followed by
// one column per waveform, all sampled on the first waveform's time grid.
func (s *Set) WriteCSV(w io.Writer) error {
	if len(s.Waves) == 0 {
		return ErrEmpty
	}
	cw := csv.NewWriter(w)
	header := append([]string{"time"}, s.Names()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	grid := s.Waves[0].Times
	row := make([]string, len(s.Waves)+1)
	for _, t := range grid {
		row[0] = strconv.FormatFloat(t, 'g', 12, 64)
		for j, wv := range s.Waves {
			row[j+1] = strconv.FormatFloat(wv.At(t), 'g', 9, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table in the WriteCSV format back into a Set.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("waveform: read csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("waveform: csv needs a header and at least one row")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "time" {
		return nil, fmt.Errorf("waveform: csv header must start with 'time', got %v", header)
	}
	ncol := len(header) - 1
	times := make([]float64, 0, len(records)-1)
	cols := make([][]float64, ncol)
	for rowIdx, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("waveform: csv row %d has %d fields, want %d", rowIdx+2, len(rec), len(header))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("waveform: csv row %d time: %w", rowIdx+2, err)
		}
		times = append(times, t)
		for j := 0; j < ncol; j++ {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("waveform: csv row %d col %d: %w", rowIdx+2, j+1, err)
			}
			cols[j] = append(cols[j], v)
		}
	}
	set := &Set{}
	for j := 0; j < ncol; j++ {
		wv, err := New(header[j+1], times, cols[j])
		if err != nil {
			return nil, err
		}
		set.Add(wv)
	}
	return set, nil
}
