package waveform

import (
	"fmt"
	"math"
	"math/cmplx"

	"ssnkit/internal/numeric"
)

// Spectrum is a single-sided magnitude spectrum of a waveform: Freqs[i] in
// Hz against Mag[i] in the waveform's units (peak amplitude per bin).
type Spectrum struct {
	Freqs []float64
	Mag   []float64
}

// Spectrum computes the single-sided amplitude spectrum of the waveform,
// resampled onto a power-of-two uniform grid of at least minPoints samples
// and windowed with a Hann window (amplitude-corrected). SSN pulses are
// broadband; the spectrum is how their EMI consequence is usually judged.
func (w *Waveform) Spectrum(minPoints int) (*Spectrum, error) {
	if w.Len() < 2 {
		return nil, fmt.Errorf("waveform %q: %w", w.Name, ErrEmpty)
	}
	if minPoints < 16 {
		minPoints = 16
	}
	n := numeric.NextPow2(minPoints)
	rs, err := w.Resample(n)
	if err != nil {
		return nil, err
	}
	span := rs.Times[n-1] - rs.Times[0]
	dt := span / float64(n-1)
	win := numeric.Hann(n)
	// Hann coherent gain is 0.5; correct amplitudes accordingly. The mean
	// is removed before windowing (and reported as the DC bin) so the
	// window does not leak DC into the low-frequency bins.
	const hannGain = 0.5
	mean := 0.0
	for _, v := range rs.Values {
		mean += v
	}
	mean /= float64(n)
	x := make([]complex128, n)
	for i, v := range rs.Values {
		x[i] = complex((v-mean)*win[i], 0)
	}
	X, err := numeric.FFT(x)
	if err != nil {
		return nil, err
	}
	half := n / 2
	sp := &Spectrum{
		Freqs: make([]float64, half),
		Mag:   make([]float64, half),
	}
	for k := 0; k < half; k++ {
		sp.Freqs[k] = float64(k) / (float64(n) * dt)
		m := cmplx.Abs(X[k]) / (float64(n) * hannGain)
		if k > 0 {
			m *= 2 // fold the negative frequencies into the single side
		}
		sp.Mag[k] = m
	}
	sp.Mag[0] = math.Abs(mean)
	return sp, nil
}

// PeakFrequency returns the frequency of the largest non-DC spectral
// component.
func (s *Spectrum) PeakFrequency() (freq, mag float64) {
	for k := 1; k < len(s.Freqs); k++ {
		if s.Mag[k] > mag {
			mag = s.Mag[k]
			freq = s.Freqs[k]
		}
	}
	return freq, mag
}

// EnergyAbove integrates |Mag|^2 above the given frequency — a crude EMI
// figure comparing how much noise energy lands in a band of concern.
func (s *Spectrum) EnergyAbove(freq float64) float64 {
	sum := 0.0
	for k := 1; k < len(s.Freqs); k++ {
		if s.Freqs[k] >= freq {
			sum += s.Mag[k] * s.Mag[k]
		}
	}
	return sum
}

// MagAt returns the magnitude of the bin nearest to freq.
func (s *Spectrum) MagAt(freq float64) float64 {
	if len(s.Freqs) == 0 {
		return math.NaN()
	}
	best, bd := 0, math.Inf(1)
	for k, f := range s.Freqs {
		if d := math.Abs(f - freq); d < bd {
			bd, best = d, k
		}
	}
	return s.Mag[best]
}
