package waveform

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, name string, ts, vs []float64) *Waveform {
	t.Helper()
	w, err := New(name, ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", []float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := New("x", nil, nil); err == nil {
		t.Error("empty waveform must error")
	}
	if _, err := New("x", []float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing times must error")
	}
}

func TestNewCopiesInput(t *testing.T) {
	ts := []float64{0, 1}
	vs := []float64{5, 6}
	w := mustNew(t, "w", ts, vs)
	ts[0] = 99
	vs[0] = 99
	if w.Times[0] != 0 || w.Values[0] != 5 {
		t.Error("New must copy its inputs")
	}
}

func TestAtInterpolation(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 1, 2}, []float64{0, 10, 0})
	cases := []struct{ tq, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 5}, {2, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := w.At(c.tq); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.tq, got, c.want)
		}
	}
}

func TestMaxMinAbsMax(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 1, 2, 3}, []float64{1, -7, 4, 2})
	tmax, vmax := w.Max()
	if tmax != 2 || vmax != 4 {
		t.Errorf("Max = (%g, %g)", tmax, vmax)
	}
	tmin, vmin := w.Min()
	if tmin != 1 || vmin != -7 {
		t.Errorf("Min = (%g, %g)", tmin, vmin)
	}
	ta, va := w.AbsMax()
	if ta != 1 || va != -7 {
		t.Errorf("AbsMax = (%g, %g)", ta, va)
	}
}

func TestRMSConstant(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 1, 2}, []float64{3, 3, 3})
	if got := w.RMS(); math.Abs(got-3) > 1e-12 {
		t.Errorf("RMS of constant 3 = %g", got)
	}
}

func TestRMSSine(t *testing.T) {
	// RMS of sin over a full period is 1/sqrt(2).
	w, err := FromFunc("sin", math.Sin, 0, 2*math.Pi, 20001)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.RMS(); math.Abs(got-1/math.Sqrt2) > 1e-4 {
		t.Errorf("RMS sine = %g, want %g", got, 1/math.Sqrt2)
	}
}

func TestCrossings(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 1, 2, 3}, []float64{0, 2, -2, 2})
	xs := w.Crossings(1)
	want := []float64{0.5, 1.25, 2.75}
	if len(xs) != len(want) {
		t.Fatalf("crossings = %v, want %v", xs, want)
	}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("crossing[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
}

func TestCrossingsOnSample(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 1, 2}, []float64{0, 1, 2})
	xs := w.Crossings(1)
	if len(xs) != 1 || xs[0] != 1 {
		t.Errorf("sample-exact crossing = %v, want [1]", xs)
	}
	// Level at final sample.
	xs = w.Crossings(2)
	if len(xs) != 1 || xs[0] != 2 {
		t.Errorf("final-sample crossing = %v, want [2]", xs)
	}
}

func TestPeaks(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 1, 2, 3, 4}, []float64{0, 3, 1, 5, 0})
	ps := w.Peaks()
	if len(ps) != 2 || ps[0] != 1 || ps[1] != 3 {
		t.Errorf("peaks = %v, want [1 3]", ps)
	}
}

func TestWindow(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 1, 2, 3}, []float64{9, 8, 7, 6})
	sub, err := w.Window(0.5, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Times[0] != 1 || sub.Values[1] != 7 {
		t.Errorf("window = %v / %v", sub.Times, sub.Values)
	}
	if _, err := w.Window(10, 20); err == nil {
		t.Error("empty window must error")
	}
}

func TestResample(t *testing.T) {
	w := mustNew(t, "w", []float64{0, 2}, []float64{0, 2})
	r, err := w.Resample(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 {
		t.Fatalf("resample len = %d", r.Len())
	}
	for i, tt := range r.Times {
		if math.Abs(r.Values[i]-tt) > 1e-12 {
			t.Errorf("resampled ramp value at %g = %g", tt, r.Values[i])
		}
	}
}

func TestScaleShiftSub(t *testing.T) {
	w := mustNew(t, "a", []float64{0, 1}, []float64{1, 2})
	s := w.Scale(3)
	if s.Values[0] != 3 || s.Values[1] != 6 || w.Values[0] != 1 {
		t.Error("Scale wrong or mutated original")
	}
	sh := w.Shift(10)
	if sh.Times[0] != 10 || w.Times[0] != 0 {
		t.Error("Shift wrong or mutated original")
	}
	b := mustNew(t, "b", []float64{0, 1}, []float64{1, 1})
	d := w.Sub(b)
	if d.Values[0] != 0 || d.Values[1] != 1 {
		t.Errorf("Sub = %v", d.Values)
	}
	if d.Name != "a-b" {
		t.Errorf("Sub name = %q", d.Name)
	}
}

func TestCompareIdentical(t *testing.T) {
	w, _ := FromFunc("w", math.Sin, 0, 6, 500)
	cs, err := w.Compare(w, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MaxAbsErr != 0 || cs.RMSErr != 0 || cs.PeakRel != 0 {
		t.Errorf("identical compare: %+v", cs)
	}
}

func TestCompareKnownOffset(t *testing.T) {
	a := mustNew(t, "a", []float64{0, 1}, []float64{1, 1})
	b := mustNew(t, "b", []float64{0, 1}, []float64{2, 2})
	cs, err := a.Compare(b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cs.MaxAbsErr-1) > 1e-12 || math.Abs(cs.MaxRelErr-0.5) > 1e-12 {
		t.Errorf("compare stats %+v", cs)
	}
	if math.Abs(cs.PeakRel-0.5) > 1e-12 {
		t.Errorf("peak rel %g, want 0.5", cs.PeakRel)
	}
}

func TestCompareNoOverlap(t *testing.T) {
	a := mustNew(t, "a", []float64{0, 1}, []float64{0, 0})
	b := mustNew(t, "b", []float64{5, 6}, []float64{0, 0})
	if _, err := a.Compare(b, 10); err == nil {
		t.Error("disjoint spans must error")
	}
}

func TestAtWithinHullProperty(t *testing.T) {
	f := func(seed int64, q float64) bool {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		ts := make([]float64, n)
		vs := make([]float64, n)
		acc := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range ts {
			acc += 0.01 + r.Float64()
			ts[i] = acc
			vs[i] = r.NormFloat64() * 10
			lo = math.Min(lo, vs[i])
			hi = math.Max(hi, vs[i])
		}
		w, err := New("p", ts, vs)
		if err != nil {
			return false
		}
		v := w.At(math.Mod(math.Abs(q), acc+2))
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxIsUpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		ts := make([]float64, n)
		vs := make([]float64, n)
		for i := range ts {
			ts[i] = float64(i)
			vs[i] = r.NormFloat64()
		}
		w, err := New("p", ts, vs)
		if err != nil {
			return false
		}
		_, vmax := w.Max()
		for _, v := range vs {
			if v > vmax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var set Set
	set.Add(mustNew(t, "v(out)", []float64{0, 1e-9, 2e-9}, []float64{0, 0.9, 1.8}))
	set.Add(mustNew(t, "i(l1)", []float64{0, 1e-9, 2e-9}, []float64{0, 5e-3, 1e-2}))
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Waves) != 2 {
		t.Fatalf("round trip wave count %d", len(back.Waves))
	}
	for i, w := range back.Waves {
		orig := set.Waves[i]
		if w.Name != orig.Name {
			t.Errorf("name %q vs %q", w.Name, orig.Name)
		}
		for j := range w.Times {
			if math.Abs(w.Times[j]-orig.Times[j]) > 1e-18 ||
				math.Abs(w.Values[j]-orig.Values[j]) > 1e-12 {
				t.Errorf("sample %d mismatch", j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	var empty Set
	var buf bytes.Buffer
	if err := empty.WriteCSV(&buf); err == nil {
		t.Error("empty set must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("nottime,a\n1,2\n")); err == nil {
		t.Error("bad header must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("time,a\n")); err == nil {
		t.Error("missing rows must error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("time,a\nx,2\n")); err == nil {
		t.Error("bad number must error")
	}
}

func TestSetGetAndNames(t *testing.T) {
	var set Set
	w := mustNew(t, "x", []float64{0}, []float64{1})
	set.Add(w)
	if set.Get("x") != w || set.Get("missing") != nil {
		t.Error("Get misbehaves")
	}
	if n := set.Names(); len(n) != 1 || n[0] != "x" {
		t.Errorf("Names = %v", n)
	}
}

func TestFromFuncErrors(t *testing.T) {
	if _, err := FromFunc("f", math.Sin, 0, 1, 1); err == nil {
		t.Error("n<2 must error")
	}
	if _, err := FromFunc("f", math.Sin, 1, 0, 10); err == nil {
		t.Error("reversed interval must error")
	}
}
