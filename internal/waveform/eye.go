package waveform

import (
	"fmt"
	"math"
)

// Eye is a waveform folded onto one unit interval: for each phase bin it
// keeps the envelope (min/max) over all the cycles that mapped there. It is
// the standard view for judging repeated-switching noise: the worst-case
// band the signal occupies at every point of the bit period.
type Eye struct {
	Period float64
	Phase  []float64 // bin centers in [0, Period)
	Min    []float64
	Max    []float64
}

// EyeFold folds the waveform from startTime onward onto the given period
// using nBins phase bins. Cycles are aligned to startTime. At least one
// full period of data past startTime is required.
func (w *Waveform) EyeFold(startTime, period float64, nBins int) (*Eye, error) {
	if period <= 0 {
		return nil, fmt.Errorf("waveform %q: eye period must be positive", w.Name)
	}
	if nBins < 4 {
		nBins = 64
	}
	end := w.Times[w.Len()-1]
	if end-startTime < period {
		return nil, fmt.Errorf("waveform %q: need at least one period after %g", w.Name, startTime)
	}
	eye := &Eye{
		Period: period,
		Phase:  make([]float64, nBins),
		Min:    make([]float64, nBins),
		Max:    make([]float64, nBins),
	}
	for i := range eye.Phase {
		eye.Phase[i] = (float64(i) + 0.5) * period / float64(nBins)
		eye.Min[i] = math.Inf(1)
		eye.Max[i] = math.Inf(-1)
	}
	// Phase-aligned sampling: every cycle contributes exactly one sample
	// per bin, taken at the bin center, so a perfectly periodic signal
	// folds to a zero-height band regardless of the bin count.
	cycles := int((end - startTime) / period)
	for c := 0; c < cycles; c++ {
		base := startTime + float64(c)*period
		for i, ph := range eye.Phase {
			v := w.At(base + ph)
			if v < eye.Min[i] {
				eye.Min[i] = v
			}
			if v > eye.Max[i] {
				eye.Max[i] = v
			}
		}
	}
	return eye, nil
}

// Opening returns the largest vertical eye opening (Max-of-mins minus
// min-of-maxes is NOT what we want — the opening at a phase is the gap
// between the high envelope's minimum and the low envelope's maximum over
// a window). Here we report the simple per-phase band height statistics:
// the worst (largest) band and the phase where it occurs.
func (e *Eye) WorstBand() (phase, height float64) {
	for i := range e.Phase {
		if h := e.Max[i] - e.Min[i]; h > height {
			height = h
			phase = e.Phase[i]
		}
	}
	return phase, height
}

// BandAt returns the (min, max) envelope at the bin nearest the phase.
func (e *Eye) BandAt(phase float64) (lo, hi float64) {
	phase = math.Mod(phase, e.Period)
	if phase < 0 {
		phase += e.Period
	}
	bin := int(phase / e.Period * float64(len(e.Phase)))
	if bin >= len(e.Phase) {
		bin = len(e.Phase) - 1
	}
	return e.Min[bin], e.Max[bin]
}
