// Package waveform implements sampled time-series signals: the lingua franca
// between ssnkit's circuit simulator, the closed-form SSN models and the
// experiment harnesses. A Waveform is a monotone time grid with one value
// per sample; operations cover interpolation, extrema, threshold crossings,
// arithmetic, comparison metrics and CSV round-tripping.
package waveform

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty reports an operation on a waveform with no samples.
var ErrEmpty = errors.New("waveform: empty waveform")

// Waveform is a named, sampled signal. Times must be strictly increasing.
type Waveform struct {
	Name   string
	Times  []float64
	Values []float64
}

// New builds a waveform after validating the grid. The slices are copied.
func New(name string, times, values []float64) (*Waveform, error) {
	if len(times) != len(values) {
		return nil, fmt.Errorf("waveform %q: %d times vs %d values", name, len(times), len(values))
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("waveform %q: %w", name, ErrEmpty)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("waveform %q: non-increasing time at sample %d (%g after %g)",
				name, i, times[i], times[i-1])
		}
	}
	w := &Waveform{Name: name}
	w.Times = append(w.Times, times...)
	w.Values = append(w.Values, values...)
	return w, nil
}

// FromFunc samples f on a uniform grid of n points over [t0, t1].
func FromFunc(name string, f func(float64) float64, t0, t1 float64, n int) (*Waveform, error) {
	if n < 2 {
		return nil, fmt.Errorf("waveform %q: need at least 2 samples", name)
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("waveform %q: bad interval [%g, %g]", name, t0, t1)
	}
	ts := make([]float64, n)
	vs := make([]float64, n)
	dt := (t1 - t0) / float64(n-1)
	for i := range ts {
		ts[i] = t0 + float64(i)*dt
		vs[i] = f(ts[i])
	}
	ts[n-1] = t1
	vs[n-1] = f(t1)
	return New(name, ts, vs)
}

// Len returns the sample count.
func (w *Waveform) Len() int { return len(w.Times) }

// Clone returns a deep copy with the same name.
func (w *Waveform) Clone() *Waveform {
	c, _ := New(w.Name, w.Times, w.Values)
	return c
}

// At linearly interpolates the signal at time t, holding end values outside
// the sampled span.
func (w *Waveform) At(t float64) float64 {
	n := len(w.Times)
	if n == 0 {
		return math.NaN()
	}
	if t <= w.Times[0] {
		return w.Values[0]
	}
	if t >= w.Times[n-1] {
		return w.Values[n-1]
	}
	i := sort.SearchFloat64s(w.Times, t)
	if w.Times[i] == t {
		return w.Values[i]
	}
	t0, t1 := w.Times[i-1], w.Times[i]
	v0, v1 := w.Values[i-1], w.Values[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Max returns the maximum value and the time at which it occurs.
func (w *Waveform) Max() (tmax, vmax float64) {
	vmax = math.Inf(-1)
	for i, v := range w.Values {
		if v > vmax {
			vmax, tmax = v, w.Times[i]
		}
	}
	return tmax, vmax
}

// Min returns the minimum value and its time.
func (w *Waveform) Min() (tmin, vmin float64) {
	vmin = math.Inf(1)
	for i, v := range w.Values {
		if v < vmin {
			vmin, tmin = v, w.Times[i]
		}
	}
	return tmin, vmin
}

// AbsMax returns the peak magnitude max |v| and its time.
func (w *Waveform) AbsMax() (t, v float64) {
	best := -1.0
	for i, x := range w.Values {
		if a := math.Abs(x); a > best {
			best, t, v = a, w.Times[i], x
		}
	}
	return t, v
}

// RMS returns the root-mean-square value over the sampled span, computed
// with trapezoidal integration on the (possibly non-uniform) grid.
func (w *Waveform) RMS() float64 {
	n := len(w.Times)
	if n < 2 {
		if n == 1 {
			return math.Abs(w.Values[0])
		}
		return 0
	}
	sum := 0.0
	for i := 1; i < n; i++ {
		dt := w.Times[i] - w.Times[i-1]
		a, b := w.Values[i-1], w.Values[i]
		sum += dt * (a*a + b*b) / 2
	}
	span := w.Times[n-1] - w.Times[0]
	return math.Sqrt(sum / span)
}

// Crossings returns the interpolated times at which the signal crosses the
// given level, in order. A sample exactly on the level counts once.
func (w *Waveform) Crossings(level float64) []float64 {
	var out []float64
	n := len(w.Times)
	for i := 1; i < n; i++ {
		a, b := w.Values[i-1]-level, w.Values[i]-level
		switch {
		case a == 0:
			if len(out) == 0 || out[len(out)-1] != w.Times[i-1] {
				out = append(out, w.Times[i-1])
			}
		case a*b < 0:
			t := w.Times[i-1] + (w.Times[i]-w.Times[i-1])*a/(a-b)
			out = append(out, t)
		}
	}
	if n > 0 && w.Values[n-1] == level {
		if len(out) == 0 || out[len(out)-1] != w.Times[n-1] {
			out = append(out, w.Times[n-1])
		}
	}
	return out
}

// Peaks returns the indices of strict local maxima (greater than both
// neighbours). Plateau edges are not reported.
func (w *Waveform) Peaks() []int {
	var out []int
	for i := 1; i < len(w.Values)-1; i++ {
		if w.Values[i] > w.Values[i-1] && w.Values[i] > w.Values[i+1] {
			out = append(out, i)
		}
	}
	return out
}

// Window returns the sub-waveform with t in [t0, t1] (inclusive of samples
// on the boundary). It returns ErrEmpty if no samples fall in the window.
func (w *Waveform) Window(t0, t1 float64) (*Waveform, error) {
	var ts, vs []float64
	for i, t := range w.Times {
		if t >= t0 && t <= t1 {
			ts = append(ts, t)
			vs = append(vs, w.Values[i])
		}
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("waveform %q window [%g, %g]: %w", w.Name, t0, t1, ErrEmpty)
	}
	return New(w.Name, ts, vs)
}

// Resample returns the waveform evaluated on a uniform n-point grid spanning
// the original time range.
func (w *Waveform) Resample(n int) (*Waveform, error) {
	if len(w.Times) == 0 {
		return nil, ErrEmpty
	}
	t0, t1 := w.Times[0], w.Times[len(w.Times)-1]
	if t1 == t0 || n < 2 {
		return nil, fmt.Errorf("waveform %q: cannot resample span [%g, %g] to %d points", w.Name, t0, t1, n)
	}
	return FromFunc(w.Name, w.At, t0, t1, n)
}

// Scale returns a new waveform with every value multiplied by k.
func (w *Waveform) Scale(k float64) *Waveform {
	c := w.Clone()
	for i := range c.Values {
		c.Values[i] *= k
	}
	return c
}

// Shift returns a new waveform with every time shifted by dt.
func (w *Waveform) Shift(dt float64) *Waveform {
	c := w.Clone()
	for i := range c.Times {
		c.Times[i] += dt
	}
	return c
}

// Sub returns a waveform sampling (w - other) on w's grid, interpolating
// other as needed. The result is named "<w>-<other>".
func (w *Waveform) Sub(other *Waveform) *Waveform {
	c := w.Clone()
	c.Name = w.Name + "-" + other.Name
	for i, t := range c.Times {
		c.Values[i] -= other.At(t)
	}
	return c
}

// CompareStats summarizes how closely this waveform matches a reference over
// the overlap of their spans, sampling both on n uniform points.
type CompareStats struct {
	MaxAbsErr float64 // worst absolute difference
	RMSErr    float64 // root mean square difference
	MaxRelErr float64 // worst |diff| / max(|ref peak|, floor)
	PeakRel   float64 // relative error of the peak value |max(w)-max(ref)| / |max(ref)|
}

// Compare computes error metrics of w against ref over their overlapping
// time span. The relative metrics are normalized by the reference peak
// magnitude, the convention the paper uses ("within 3% of HSPICE").
func (w *Waveform) Compare(ref *Waveform, n int) (CompareStats, error) {
	if w.Len() == 0 || ref.Len() == 0 {
		return CompareStats{}, ErrEmpty
	}
	t0 := math.Max(w.Times[0], ref.Times[0])
	t1 := math.Min(w.Times[len(w.Times)-1], ref.Times[len(ref.Times)-1])
	if t1 <= t0 {
		return CompareStats{}, fmt.Errorf("waveform: no overlap between %q and %q", w.Name, ref.Name)
	}
	if n < 2 {
		n = 256
	}
	_, refPeak := ref.AbsMax()
	den := math.Abs(refPeak)
	if den == 0 {
		den = 1
	}
	var cs CompareStats
	sum := 0.0
	dt := (t1 - t0) / float64(n-1)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		d := math.Abs(w.At(t) - ref.At(t))
		if d > cs.MaxAbsErr {
			cs.MaxAbsErr = d
		}
		sum += d * d
	}
	cs.RMSErr = math.Sqrt(sum / float64(n))
	cs.MaxRelErr = cs.MaxAbsErr / den
	_, wPeak := w.Max()
	_, rPeak := ref.Max()
	cs.PeakRel = math.Abs(wPeak-rPeak) / math.Max(math.Abs(rPeak), 1e-30)
	return cs, nil
}
