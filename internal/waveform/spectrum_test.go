package waveform

import (
	"math"
	"testing"
)

func TestSpectrumSineTone(t *testing.T) {
	// 100 MHz sine, amplitude 0.7: the spectrum peaks there with ~0.7.
	const f0 = 100e6
	w, err := FromFunc("tone", func(tt float64) float64 {
		return 0.7 * math.Sin(2*math.Pi*f0*tt)
	}, 0, 200e-9, 4001)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := w.Spectrum(4096)
	if err != nil {
		t.Fatal(err)
	}
	pf, pm := sp.PeakFrequency()
	if math.Abs(pf-f0) > 0.03*f0 {
		t.Errorf("peak at %g, want %g", pf, f0)
	}
	if math.Abs(pm-0.7) > 0.1 {
		t.Errorf("peak magnitude %g, want ~0.7", pm)
	}
}

func TestSpectrumDCOffset(t *testing.T) {
	w, err := FromFunc("dc", func(float64) float64 { return 2.5 }, 0, 1e-6, 257)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := w.Spectrum(256)
	if err != nil {
		t.Fatal(err)
	}
	// All non-DC bins are ~0.
	_, pm := sp.PeakFrequency()
	if pm > 1e-9 {
		t.Errorf("constant signal has AC content %g", pm)
	}
}

func TestSpectrumEnergyAbove(t *testing.T) {
	// Two tones; energy above a cutoff between them counts only the upper.
	const f1, f2 = 50e6, 400e6
	w, err := FromFunc("two", func(tt float64) float64 {
		return math.Sin(2*math.Pi*f1*tt) + 0.5*math.Sin(2*math.Pi*f2*tt)
	}, 0, 400e-9, 8001)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := w.Spectrum(8192)
	if err != nil {
		t.Fatal(err)
	}
	hi := sp.EnergyAbove(200e6)
	all := sp.EnergyAbove(0)
	if hi <= 0 || hi >= all {
		t.Errorf("band energies: hi %g, all %g", hi, all)
	}
	// The upper tone has 1/4 the power of the lower; the hi fraction is
	// therefore ~0.2 of the total.
	frac := hi / all
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("upper-band fraction %g, want ~0.2", frac)
	}
}

func TestSpectrumMagAt(t *testing.T) {
	const f0 = 100e6
	w, _ := FromFunc("tone", func(tt float64) float64 {
		return math.Sin(2 * math.Pi * f0 * tt)
	}, 0, 200e-9, 2001)
	sp, err := w.Spectrum(2048)
	if err != nil {
		t.Fatal(err)
	}
	if sp.MagAt(f0) < 0.5 {
		t.Errorf("MagAt(f0) = %g, want near 1", sp.MagAt(f0))
	}
	if sp.MagAt(3*f0) > 0.1 {
		t.Errorf("MagAt(3*f0) = %g, want near 0", sp.MagAt(3*f0))
	}
}

func TestSpectrumErrors(t *testing.T) {
	w := &Waveform{Name: "short", Times: []float64{0}, Values: []float64{1}}
	if _, err := w.Spectrum(64); err == nil {
		t.Error("single-sample spectrum must error")
	}
}

func TestSpectrumFasterEdgesMoreHighFrequencyEnergy(t *testing.T) {
	// The EMI story: a faster SSN-like pulse puts more energy above
	// 1 GHz. Build two half-sine pulses of different widths.
	pulse := func(width float64) *Waveform {
		w, err := FromFunc("pulse", func(tt float64) float64 {
			if tt < 1e-9 || tt > 1e-9+width {
				return 0
			}
			return 0.5 * math.Sin(math.Pi*(tt-1e-9)/width)
		}, 0, 10e-9, 4001)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	slow, err := pulse(2e-9).Spectrum(4096)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := pulse(0.3e-9).Spectrum(4096)
	if err != nil {
		t.Fatal(err)
	}
	if fast.EnergyAbove(1e9) <= slow.EnergyAbove(1e9) {
		t.Error("faster pulse should carry more energy above 1 GHz")
	}
}
