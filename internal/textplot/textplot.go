// Package textplot renders simple ASCII line charts and aligned tables for
// terminal output of the experiment harnesses. It has no styling ambitions:
// the goal is that `go run ./cmd/ssnrepro` reproduces the *shape* of every
// paper figure directly in the terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte // plot glyph; 0 picks from a default cycle
}

var defaultMarkers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the series into a width x height character grid with simple
// axis labels. Series are overlaid in order; later series overwrite earlier
// glyphs on collision.
func Plot(title string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if len(s.Y) <= i {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		return title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			if len(s.Y) <= i {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for r, line := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%11.4g |%s\n", ymax, line)
		case height - 1:
			fmt.Fprintf(&b, "%11.4g |%s\n", ymin, line)
		default:
			fmt.Fprintf(&b, "%11s |%s\n", "", line)
		}
	}
	fmt.Fprintf(&b, "%11s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%11s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
	var legend []string
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%11s  legend: %s\n", "", strings.Join(legend, "   "))
	}
	return b.String()
}

// Table renders rows as an aligned text table. The first row is treated as
// the header and separated by a rule.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	ncol := 0
	for _, r := range rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for _, r := range rows {
		for c, cell := range r {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for c := 0; c < ncol; c++ {
			cell := ""
			if c < len(r) {
				cell = r[c]
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
			if c < ncol-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
	b.WriteByte('\n')
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}
