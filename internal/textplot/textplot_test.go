package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	s := []Series{{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}}}
	out := Plot("t", s, 40, 10)
	if !strings.Contains(out, "t\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing marker")
	}
	if !strings.Contains(out, "legend: * line") {
		t.Error("missing legend")
	}
	// y-axis labels include min and max.
	if !strings.Contains(out, "2") || !strings.Contains(out, "0") {
		t.Error("missing axis labels")
	}
}

func TestPlotMultipleSeriesMarkers(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	}
	out := Plot("", s, 30, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("expected distinct default markers")
	}
	// Explicit marker wins.
	s[0].Marker = 'Q'
	out = Plot("", s, 30, 8)
	if !strings.Contains(out, "Q") {
		t.Error("explicit marker not used")
	}
}

func TestPlotDegenerateData(t *testing.T) {
	if out := Plot("empty", nil, 30, 8); !strings.Contains(out, "no data") {
		t.Error("empty series should say no data")
	}
	nan := []Series{{Name: "n", X: []float64{math.NaN()}, Y: []float64{1}}}
	if out := Plot("nan", nan, 30, 8); !strings.Contains(out, "no data") {
		t.Error("all-NaN series should say no data")
	}
	// Constant data must not divide by zero.
	flat := []Series{{Name: "f", X: []float64{1, 1}, Y: []float64{2, 2}}}
	out := Plot("flat", flat, 30, 8)
	if !strings.Contains(out, "*") {
		t.Error("flat series should still plot")
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	s := []Series{{Name: "x", X: []float64{0, 1}, Y: []float64{0, 1}}}
	out := Plot("", s, 1, 1)
	if len(out) == 0 {
		t.Error("tiny plot should render something")
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"N", "sim", "model"},
		{"2", "0.10", "0.11"},
		{"32", "0.60", "0.59"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "N ") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule: %q", lines[1])
	}
	// Columns align: "32" row begins at the same column as "2" row.
	if lines[2][0] != '2' || lines[3][0] != '3' {
		t.Error("column alignment broken")
	}
}

func TestTableRagged(t *testing.T) {
	out := Table([][]string{{"a", "b"}, {"only"}})
	if !strings.Contains(out, "only") {
		t.Error("ragged rows must render")
	}
	if Table(nil) != "" {
		t.Error("empty table must be empty string")
	}
}
