package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"5n", 5e-9},
		{"5nH", 5e-9},
		{"1p", 1e-12},
		{"1pF", 1e-12},
		{"10m", 10e-3},
		{"10mOhm", 10e-3},
		{"3meg", 3e6},
		{"3MEG", 3e6},
		{"2k", 2e3},
		{"1.8", 1.8},
		{"1.8V", 1.8},
		{"2.2e-9", 2.2e-9},
		{"2.2E-9", 2.2e-9},
		{"-0.5u", -0.5e-6},
		{"+4f", 4e-15},
		{"7g", 7e9},
		{"1t", 1e12},
		{"100", 100},
		{"1mil", 25.4e-6},
		{"0", 0},
		{"1e3", 1e3},
		{"1e+3", 1e3},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error %v", c.in, err)
			continue
		}
		if !ApproxEqual(got, c.want, 1e-12, 0) {
			t.Errorf("Parse(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "abc", "5x", "1.2.3", "--4", "nF", "e9"} {
		if v, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %g, want error", in, v)
		}
	}
}

func TestParseUnitWords(t *testing.T) {
	// Bare unit letters after the number carry no multiplier.
	for _, in := range []string{"3v", "3a", "3s", "3h", "3hz", "3ohm", "3ohms"} {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got != 3 {
			t.Errorf("Parse(%q) = %g, want 3", in, got)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("not a number")
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{5e-9, "H", "5nH"},
		{1e-12, "F", "1pF"},
		{1.8, "V", "1.8V"},
		{2500, "Ohm", "2.5kOhm"},
		{0, "V", "0V"},
		{3.3e6, "Hz", "3.3megHz"},
	}
	for _, c := range cases {
		got := Format(c.v, c.unit)
		if got != c.want {
			t.Errorf("Format(%g, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	// Format then Parse must return close to the original magnitude.
	f := func(mant float64, exp8 uint8) bool {
		if math.IsNaN(mant) || math.IsInf(mant, 0) || mant == 0 {
			return true
		}
		// Restrict to the range covered by SI prefixes.
		exp := int(exp8%28) - 14 // 1e-14 .. 1e13
		v := math.Copysign(math.Mod(math.Abs(mant), 9)+1, mant) * math.Pow(10, float64(exp))
		s := Format(v, "V")
		got, err := Parse(s)
		if err != nil {
			t.Logf("round trip parse error for %q: %v", s, err)
			return false
		}
		return ApproxEqual(got, v, 1e-3, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-12, 0) {
		t.Error("relative tolerance should accept 1e-13 difference at scale 1")
	}
	if ApproxEqual(1.0, 1.1, 1e-3, 0) {
		t.Error("10%% difference should fail 0.1%% tolerance")
	}
	if !ApproxEqual(0, 1e-15, 0, 1e-12) {
		t.Error("absolute tolerance should accept tiny difference near zero")
	}
	if ApproxEqual(math.NaN(), math.NaN(), 1, 1) {
		t.Error("NaN must not compare equal")
	}
	if !ApproxEqual(math.Inf(1), math.Inf(1), 0, 0) {
		t.Error("equal infinities must compare equal")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(1.1, 1.0, 1e-9); !ApproxEqual(got, 0.1, 1e-9, 1e-12) {
		t.Errorf("RelErr(1.1,1.0) = %g, want 0.1", got)
	}
	// Floor prevents blow-up near zero reference.
	if got := RelErr(1e-6, 0, 1e-3); got != 1e-3 {
		t.Errorf("RelErr floor: got %g, want 1e-3", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
