package units

import (
	"math"
	"testing"
)

// FuzzParse checks that Parse never panics and that accepted inputs produce
// finite values that round-trip through Format within tolerance.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"5n", "1.2pF", "3meg", "0.5", "-2.2e-9", "10mOhm", "1mil",
		"", "nan", "inf", "+", "-", ".", "e", "1e", "1e+", "5x", "0x10",
		"99999999999999999999", "1.2.3", "  7u  ", "5N", "3MEG",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		v, err := Parse(in)
		if err != nil {
			return
		}
		if math.IsNaN(v) {
			t.Fatalf("Parse(%q) accepted NaN", in)
		}
		if math.IsInf(v, 0) || v == 0 {
			return // Inf from overflow and exact zero have no prefix form
		}
		av := math.Abs(v)
		if av < 1e-20 || av > 1e20 {
			return // outside the prefix table; Format falls back
		}
		s := Format(v, "")
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Format(%g) = %q does not re-parse: %v", v, s, err)
		}
		if !ApproxEqual(back, v, 1e-3, 0) {
			t.Fatalf("round trip %q -> %g -> %q -> %g", in, v, s, back)
		}
	})
}
