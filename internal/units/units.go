// Package units provides SI engineering-notation parsing and formatting and
// tolerant floating-point comparison helpers used throughout ssnkit.
//
// All internal computation in ssnkit is carried out in base SI units
// (volts, amperes, seconds, henries, farads, ohms). Engineering suffixes
// ("5n", "1.2p", "3meg") appear only at the CLI and netlist-parser boundary;
// this package is that boundary.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SI prefix multipliers accepted by Parse. SPICE convention: suffixes are
// case-insensitive and "mil" / "meg" are multi-letter. "M" means milli
// (SPICE tradition), "MEG" means 1e6.
const (
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
	Tera  = 1e12
)

// Parse converts an engineering-notation string such as "5n", "1.2pF",
// "3meg", "0.5", or "2.2e-9" into a float64 in base SI units. Unit letters
// following the prefix (F, H, V, A, S, OHM...) are ignored, matching SPICE
// behaviour. An empty string or an unparsable number is an error.
func Parse(s string) (float64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("units: empty value")
	}
	// Split the leading numeric part from the trailing suffix.
	i := 0
	seenDigit := false
	for i < len(t) {
		c := t[i]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
			i++
		case c == '+' || c == '-' || c == '.':
			i++
		case c == 'e' && seenDigit && i+1 < len(t) && isExpTail(t[i+1:]):
			// scientific notation exponent, not an engineering suffix
			i++
		default:
			goto done
		}
	}
done:
	if !seenDigit {
		return 0, fmt.Errorf("units: %q has no numeric part", s)
	}
	num, err := strconv.ParseFloat(t[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse %q: %w", s, err)
	}
	suffix := t[i:]
	mult, err := suffixMultiplier(suffix)
	if err != nil {
		return 0, fmt.Errorf("units: %q: %w", s, err)
	}
	return num * mult, nil
}

// isExpTail reports whether s looks like the tail of a scientific-notation
// exponent: optional sign followed by at least one digit.
func isExpTail(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '+' || s[0] == '-' {
		s = s[1:]
	}
	return len(s) > 0 && s[0] >= '0' && s[0] <= '9'
}

func suffixMultiplier(suffix string) (float64, error) {
	if suffix == "" {
		return 1, nil
	}
	switch {
	case strings.HasPrefix(suffix, "meg"):
		return Mega, nil
	case strings.HasPrefix(suffix, "mil"):
		return 25.4e-6, nil // 1 mil = 25.4 µm, SPICE tradition
	}
	switch suffix[0] {
	case 'f':
		return Femto, nil
	case 'p':
		return Pico, nil
	case 'n':
		return Nano, nil
	case 'u':
		return Micro, nil
	case 'm':
		return Milli, nil
	case 'k':
		return Kilo, nil
	case 'g':
		return Giga, nil
	case 't':
		return Tera, nil
	}
	// Pure unit letters (v, a, s, h, ohm, hz...) carry no multiplier.
	if isUnitWord(suffix) {
		return 1, nil
	}
	return 0, fmt.Errorf("unknown suffix %q", suffix)
}

func isUnitWord(s string) bool {
	for _, c := range s {
		if !(c >= 'a' && c <= 'z') {
			return false
		}
	}
	switch s {
	case "v", "a", "s", "h", "hz", "ohm", "ohms", "f":
		return true
	}
	return false
}

// MustParse is Parse that panics on error; for tests and literals in
// example programs where the input is a compile-time constant.
func MustParse(s string) float64 {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Format renders v with an engineering SI prefix and the given unit symbol,
// e.g. Format(5e-9, "H") == "5.000nH". Values of exactly zero format as
// "0.000<unit>".
func Format(v float64, unit string) string {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprintf("%.3g%s", v, unit)
	}
	type pfx struct {
		mult float64
		sym  string
	}
	// "meg" rather than "M" for 1e6: SPICE suffixes are case-insensitive and
	// "m" means milli, so Format must stay round-trippable through Parse.
	table := []pfx{
		{Tera, "T"}, {Giga, "G"}, {Mega, "meg"}, {Kilo, "k"}, {1, ""},
		{Milli, "m"}, {Micro, "u"}, {Nano, "n"}, {Pico, "p"}, {Femto, "f"},
	}
	av := math.Abs(v)
	for _, p := range table {
		if av >= p.mult {
			return fmt.Sprintf("%.4g%s%s", v/p.mult, p.sym, unit)
		}
	}
	return fmt.Sprintf("%.4g%s%s", v/Femto, "f", unit)
}

// ApproxEqual reports whether a and b agree to within relative tolerance rel
// or absolute tolerance abs (whichever is looser). It treats NaNs as unequal
// and equal infinities as equal.
func ApproxEqual(a, b, rel, abs float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}

// RelErr returns |a-b| / max(|ref|, floor). A floor avoids division blow-up
// when the reference is near zero.
func RelErr(a, ref, floor float64) float64 {
	den := math.Abs(ref)
	if den < floor {
		den = floor
	}
	return math.Abs(a-ref) / den
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
