// Package cliflags registers and resolves the fixed-parameter flags every
// SSN command-line tool shares: the process kit and corner, the driver
// size, the package ground net (with explicit L/C overrides), the driver
// count and the input rise time. ssncalc and ssnsweep parse the same
// physical design point; keeping one definition means one help text, one
// unit parser and one validation path.
package cliflags

import (
	"flag"
	"fmt"

	"ssnkit/internal/device"
	"ssnkit/internal/pkgmodel"
	"ssnkit/internal/units"
)

// Fixed holds the raw flag values as parsed; Resolve turns them into
// physical quantities.
type Fixed struct {
	Process string
	Corner  string
	Package string
	Pads    int
	N       int
	Size    float64
	TR      string
	L       string
	C       string
}

// Register installs the shared fixed-parameter flags on fs. defaultN lets
// each tool keep its historical default driver count.
func Register(fs *flag.FlagSet, defaultN int) *Fixed {
	f := &Fixed{}
	fs.StringVar(&f.Process, "process", "c018", "process kit: c018, c025 or c035")
	fs.StringVar(&f.Corner, "corner", "tt", "process corner: tt, ss or ff")
	fs.StringVar(&f.Package, "package", "pga", "package class: pga, qfp, bga, cob")
	fs.IntVar(&f.Pads, "pads", 1, "paralleled ground pads")
	fs.IntVar(&f.N, "n", defaultN, "number of simultaneously switching drivers")
	fs.Float64Var(&f.Size, "size", 1, "driver width multiple")
	fs.StringVar(&f.TR, "tr", "1n", "input rise time (e.g. 1n)")
	fs.StringVar(&f.L, "l", "", "override ground inductance (e.g. 2.5n)")
	fs.StringVar(&f.C, "c", "", "override ground capacitance (e.g. 2p)")
	return f
}

// Resolved is the validated physical form of the Fixed flags.
type Resolved struct {
	Proc   device.Process // corner-shifted
	Corner device.Corner
	Pack   pkgmodel.Package
	Gnd    pkgmodel.GroundNet // pads applied, explicit L/C folded in
	N      int
	Size   float64
	TR     float64 // seconds
	Pads   int
}

// Resolve validates the flags and converts them to model inputs.
func (f *Fixed) Resolve() (Resolved, error) {
	var r Resolved
	proc, err := device.ProcessByName(f.Process)
	if err != nil {
		return r, err
	}
	crn, err := device.CornerByName(f.Corner)
	if err != nil {
		return r, err
	}
	r.Proc = proc.At(crn)
	r.Corner = crn
	if r.Pack, err = pkgmodel.ByName(f.Package); err != nil {
		return r, err
	}
	r.Gnd = r.Pack.Ground(f.Pads)
	if f.L != "" {
		if r.Gnd.L, err = units.Parse(f.L); err != nil {
			return r, fmt.Errorf("-l: %w", err)
		}
	}
	if f.C != "" {
		if r.Gnd.C, err = units.Parse(f.C); err != nil {
			return r, fmt.Errorf("-c: %w", err)
		}
	}
	if r.TR, err = units.Parse(f.TR); err != nil {
		return r, fmt.Errorf("-tr: %w", err)
	}
	if r.TR <= 0 {
		return r, fmt.Errorf("rise time must be positive")
	}
	r.N = f.N
	r.Size = f.Size
	r.Pads = f.Pads
	return r, nil
}
