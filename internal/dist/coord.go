package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ssnkit/internal/dist/store"
)

// Options tunes one coordinator run. The zero value evaluates in-process
// with no checkpointing.
type Options struct {
	// Workers are ssnserve replica base URLs (e.g. "http://10.0.0.2:8350").
	// Empty means evaluate shards in-process.
	Workers []string
	// Checkpoint is the on-disk store directory; empty disables
	// checkpointing (a crash recomputes everything).
	Checkpoint string
	// Resume replays an existing checkpoint instead of truncating it. A
	// checkpoint written under a different spec is refused; a missing one
	// starts fresh.
	Resume bool
	// RequestTimeout bounds one shard HTTP attempt; default 120s.
	RequestTimeout time.Duration
	// Retries is the attempt budget per shard across all workers before
	// the run fails; default max(4, 2 x len(Workers)).
	Retries int
	// InFlight is the concurrent shards per worker replica (or, for
	// in-process runs, the total evaluator goroutines); default 2 per
	// worker, GOMAXPROCS in-process.
	InFlight int
	// Client overrides the HTTP client (tests); nil uses a default.
	Client *http.Client
	// APIKey, when set, is sent as X-API-Key so per-client quotas on the
	// workers attribute the load correctly.
	APIKey string
	// Eval configures in-process evaluation (extraction cache, gate).
	Eval EvalConfig
	// Tracker receives live progress; nil allocates a private one.
	Tracker *Tracker
	// Progress, when non-nil, is called after every shard completes or is
	// reused (from the emitter goroutine; keep it fast).
	Progress func(Progress)
}

// Summary reports a completed run.
type Summary struct {
	Shards   int // shards in the decomposition
	Points   int // grid points emitted
	Reused   int // shards replayed from the checkpoint
	Retries  int // failed shard attempts that were retried
	Duration time.Duration
}

// task is one shard assignment circulating between the dispatcher and the
// workers; attempts rides along so failover has a budget.
type task struct {
	shard    int
	attempts int
}

// result is one computed shard payload.
type result struct {
	shard   int
	worker  string
	payload []byte
}

// coord carries one run's shared state.
type coord struct {
	spec    SweepSpec
	opts    Options
	tracker *Tracker
	client  *http.Client

	tasks   chan task
	requeue chan task
	results chan result
	winSem  chan struct{} // dispatch window: dispatched-but-not-emitted shards

	cancel context.CancelFunc
	failMu sync.Mutex
	failed error

	maxAttempts int
}

// fail records the first fatal error and cancels the run.
func (c *coord) fail(err error) {
	c.failMu.Lock()
	if c.failed == nil && err != nil {
		c.failed = err
	}
	c.failMu.Unlock()
	c.cancel()
}

func (c *coord) failure() error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return c.failed
}

// Run executes the distributed sweep: shards fan out to the worker
// replicas (or in-process evaluators), completed payloads are committed to
// the checkpoint store and merged to out in shard order. The merged bytes
// are identical for any worker count and across kill-and-resume, and equal
// to the single-process sweep stream for the same spec.
func Run(ctx context.Context, spec SweepSpec, opts Options, out io.Writer) (Summary, error) {
	startAt := time.Now()
	if err := spec.Validate(); err != nil {
		return Summary{}, err
	}
	nShards := spec.NumShards()
	total := spec.Total()

	tracker := opts.Tracker
	if tracker == nil {
		tracker = NewTracker()
	}
	workerNames := opts.Workers
	if len(workerNames) == 0 {
		workerNames = []string{"local"}
	}
	tracker.begin(nShards, int64(total), workerNames)

	// Checkpoint store. Resume replays an existing checkpoint (fingerprint
	// checked); anything else starts fresh.
	var st *store.Store
	if opts.Checkpoint != "" {
		var err error
		if opts.Resume {
			st, err = store.Open(opts.Checkpoint, spec.Fingerprint())
			if errors.Is(err, fs.ErrNotExist) {
				st, err = store.Create(opts.Checkpoint, spec.Fingerprint())
			}
		} else {
			st, err = store.Create(opts.Checkpoint, spec.Fingerprint())
		}
		if err != nil {
			return Summary{}, err
		}
		defer st.Close()
	}

	inFlight := opts.InFlight
	var evaluators int
	if len(opts.Workers) == 0 {
		if inFlight <= 0 {
			inFlight = runtime.GOMAXPROCS(0)
		}
		evaluators = inFlight
	} else {
		if inFlight <= 0 {
			inFlight = 2
		}
		evaluators = inFlight * len(opts.Workers)
	}
	window := 2 * evaluators
	if window < 8 {
		window = 8
	}
	maxAttempts := opts.Retries
	if maxAttempts <= 0 {
		maxAttempts = max(4, 2*len(opts.Workers))
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	c := &coord{
		spec:        spec,
		opts:        opts,
		tracker:     tracker,
		client:      opts.Client,
		tasks:       make(chan task),
		requeue:     make(chan task, window),
		results:     make(chan result, evaluators),
		winSem:      make(chan struct{}, window),
		cancel:      cancel,
		maxAttempts: maxAttempts,
	}
	if c.client == nil {
		c.client = &http.Client{}
	}

	// Workers.
	var wg sync.WaitGroup
	if len(opts.Workers) == 0 {
		for w := 0; w < evaluators; w++ {
			wg.Add(1)
			go func() { defer wg.Done(); c.localWorker(ctx) }()
		}
	} else {
		for _, url := range opts.Workers {
			for k := 0; k < inFlight; k++ {
				wg.Add(1)
				go func(url string) { defer wg.Done(); c.httpWorker(ctx, url) }(url)
			}
		}
	}

	// Dispatcher: feed uncommitted shards in order, bounded by the window,
	// with requeued (failed-over) shards taking priority so a retried shard
	// never starves behind fresh work.
	wg.Add(1)
	go func() { defer wg.Done(); c.dispatch(ctx, st, nShards) }()

	// Emitter: merge in shard order — reused shards replayed from the
	// store, computed shards committed as they land and held (window-
	// bounded) until their turn.
	summary := Summary{Shards: nShards}
	pending := map[int][]byte{}
	emitErr := func() error {
		for next := 0; next < nShards; next++ {
			lo, hi := spec.ShardRange(next)
			var payload []byte
			if p, ok := pending[next]; ok {
				payload = p
				delete(pending, next)
				<-c.winSem
			} else if st != nil && st.Has(next) {
				p, err := st.Get(next)
				if err != nil {
					return fmt.Errorf("dist: checkpoint replay: %w", err)
				}
				payload = p
				summary.Reused++
				tracker.reused(int64(hi - lo))
				if opts.Progress != nil {
					opts.Progress(tracker.Snapshot())
				}
			} else {
				// Wait for results until shard `next` shows up.
				for {
					select {
					case r := <-c.results:
						if st != nil {
							if err := st.Commit(r.shard, r.payload); err != nil {
								return fmt.Errorf("dist: checkpoint commit: %w", err)
							}
						}
						slo, shi := spec.ShardRange(r.shard)
						tracker.shardDone(r.worker, int64(shi-slo))
						if opts.Progress != nil {
							opts.Progress(tracker.Snapshot())
						}
						pending[r.shard] = r.payload
					case <-ctx.Done():
						if err := c.failure(); err != nil {
							return err
						}
						return ctx.Err()
					}
					if _, ok := pending[next]; ok {
						break
					}
				}
				payload = pending[next]
				delete(pending, next)
				<-c.winSem
			}
			if _, err := out.Write(payload); err != nil {
				return fmt.Errorf("dist: output: %w", err)
			}
			summary.Points += hi - lo
		}
		return nil
	}()

	cancel()
	wg.Wait()
	if emitErr == nil {
		emitErr = c.failure()
	}
	p := tracker.Snapshot()
	summary.Retries = p.Retries
	summary.Duration = time.Since(startAt)
	tracker.finish(emitErr)
	if opts.Progress != nil {
		opts.Progress(tracker.Snapshot())
	}
	return summary, emitErr
}

// dispatch feeds the task channel: requeued shards first, then fresh
// uncommitted shards in order, each holding a window token until emitted.
func (c *coord) dispatch(ctx context.Context, st *store.Store, nShards int) {
	next := 0
	advance := func() int {
		for next < nShards && st != nil && st.Has(next) {
			next++
		}
		if next >= nShards {
			return -1
		}
		s := next
		next++
		return s
	}
	for {
		// Requeued shards already hold a window token; forward them ahead
		// of fresh dispatches.
		select {
		case t := <-c.requeue:
			select {
			case c.tasks <- t:
				continue
			case <-ctx.Done():
				return
			}
		default:
		}
		select {
		case t := <-c.requeue:
			select {
			case c.tasks <- t:
			case <-ctx.Done():
				return
			}
		case c.winSem <- struct{}{}:
			s := advance()
			if s < 0 {
				<-c.winSem // nothing fresh left; keep serving requeues
				for {
					select {
					case t := <-c.requeue:
						select {
						case c.tasks <- t:
						case <-ctx.Done():
							return
						}
					case <-ctx.Done():
						return
					}
				}
			}
			select {
			case c.tasks <- task{shard: s}:
			case <-ctx.Done():
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// localWorker evaluates shards in-process.
func (c *coord) localWorker(ctx context.Context) {
	for {
		select {
		case t := <-c.tasks:
			c.tracker.attempt("local", +1)
			payload, err := EvalShard(ctx, c.spec, t.shard, c.opts.Eval)
			c.tracker.attempt("local", -1)
			if err != nil {
				if ctx.Err() == nil {
					c.fail(fmt.Errorf("dist: shard %d: %w", t.shard, err))
				}
				return
			}
			select {
			case c.results <- result{shard: t.shard, worker: "local", payload: payload}:
			case <-ctx.Done():
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// httpWorker pulls shards and evaluates them on one replica, with retry,
// exponential backoff and failover: a failed shard goes back to the shared
// queue (any replica may pick it up), and this worker backs off after
// consecutive failures so a dead replica stops burning the attempt budget.
func (c *coord) httpWorker(ctx context.Context, url string) {
	consec := 0
	for {
		select {
		case t := <-c.tasks:
			c.tracker.attempt(url, +1)
			payload, retryAfter, err := c.fetchShard(ctx, url, t.shard)
			c.tracker.attempt(url, -1)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				c.tracker.failure(url)
				t.attempts++
				if t.attempts >= c.maxAttempts {
					c.fail(fmt.Errorf("dist: shard %d failed %d attempts, last on %s: %w",
						t.shard, t.attempts, url, err))
					return
				}
				c.requeue <- t // buffered to the window; never blocks
				consec++
				backoff := time.Duration(100*(1<<min(consec, 5))) * time.Millisecond
				if retryAfter > backoff {
					backoff = retryAfter
				}
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return
				}
				continue
			}
			consec = 0
			select {
			case c.results <- result{shard: t.shard, worker: url, payload: payload}:
			case <-ctx.Done():
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// fetchShard runs one POST /v1/shard attempt. A 429 reports the parsed
// Retry-After so the backoff honors the replica's shed hint.
func (c *coord) fetchShard(ctx context.Context, url string, shard int) ([]byte, time.Duration, error) {
	timeout := c.opts.RequestTimeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	rctx, rcancel := context.WithTimeout(ctx, timeout)
	defer rcancel()
	body, err := shardRequestBody(c.spec, shard)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, url+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opts.APIKey != "" {
		req.Header.Set("X-API-Key", c.opts.APIKey)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		var retryAfter time.Duration
		if resp.StatusCode == http.StatusTooManyRequests {
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, retryAfter, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(snippet))
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return payload, 0, nil
}

// ShardRequest is the wire body of POST /v1/shard.
type ShardRequest struct {
	Spec  SweepSpec `json:"spec"`
	Shard int       `json:"shard"`
}

func shardRequestBody(spec SweepSpec, shard int) ([]byte, error) {
	return json.Marshal(ShardRequest{Spec: spec, Shard: shard})
}
