package dist

import (
	"sync"
	"time"
)

// WorkerProgress is one replica's live counters.
type WorkerProgress struct {
	URL      string `json:"url"`
	InFlight int    `json:"in_flight"`
	Shards   int    `json:"shards"`   // shards this replica completed
	Failures int    `json:"failures"` // failed attempts charged to it
}

// Progress is a point-in-time snapshot of a coordinator run, shaped for
// the /v1/distsweep/status endpoint and the CLI's stderr ticker.
type Progress struct {
	ShardsTotal  int              `json:"shards_total"`
	ShardsDone   int              `json:"shards_done"` // computed + reused
	ShardsReused int              `json:"shards_reused"`
	PointsTotal  int64            `json:"points_total"`
	PointsDone   int64            `json:"points_done"`
	PointsPerSec float64          `json:"points_per_sec"`
	Retries      int              `json:"retries"`
	Elapsed      float64          `json:"elapsed_seconds"`
	Done         bool             `json:"done"`
	Error        string           `json:"error,omitempty"`
	Workers      []WorkerProgress `json:"workers,omitempty"`
}

// Tracker accumulates coordinator progress. The coordinator writes it;
// status endpoints and progress tickers read snapshots concurrently.
type Tracker struct {
	mu       sync.Mutex
	start    time.Time
	p        Progress
	byWorker map[string]*WorkerProgress
	order    []string
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{byWorker: map[string]*WorkerProgress{}} }

func (t *Tracker) begin(shards int, points int64, workers []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.start = time.Now()
	t.p = Progress{ShardsTotal: shards, PointsTotal: points}
	t.byWorker = map[string]*WorkerProgress{}
	t.order = workers
	for _, w := range workers {
		t.byWorker[w] = &WorkerProgress{URL: w}
	}
}

func (t *Tracker) reused(points int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.ShardsReused++
	t.p.ShardsDone++
	t.p.PointsDone += points
}

func (t *Tracker) shardDone(worker string, points int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.ShardsDone++
	t.p.PointsDone += points
	if w := t.byWorker[worker]; w != nil {
		w.Shards++
	}
}

func (t *Tracker) attempt(worker string, delta int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.byWorker[worker]; w != nil {
		w.InFlight += delta
	}
}

func (t *Tracker) failure(worker string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Retries++
	if w := t.byWorker[worker]; w != nil {
		w.Failures++
	}
}

func (t *Tracker) finish(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Done = true
	if err != nil {
		t.p.Error = err.Error()
	}
}

// Snapshot returns the current progress. Points/s is averaged over the run
// so far (the paper-scale sweeps this serves run long enough that the
// average is the interesting number).
func (t *Tracker) Snapshot() Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.p
	if !t.start.IsZero() {
		p.Elapsed = time.Since(t.start).Seconds()
		if p.Elapsed > 0 {
			p.PointsPerSec = float64(p.PointsDone) / p.Elapsed
		}
	}
	p.Workers = make([]WorkerProgress, 0, len(t.order))
	for _, u := range t.order {
		p.Workers = append(p.Workers, *t.byWorker[u])
	}
	return p
}
