package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

const fp = "deadbeef-spec-fingerprint"

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf(`{"shard":%d,"v":%d}`+"\n", i, i*i))
}

func TestCommitGetReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i += 2 { // commit evens only, out of order
		if err := st.Commit(9-i, payloadFor(9-i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 5 {
		t.Fatalf("Len = %d, want 5", st.Len())
	}
	// Double commit is a no-op, not an error.
	if err := st.Commit(9, []byte("different")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(9)
	if err != nil || !bytes.Equal(got, payloadFor(9)) {
		t.Fatalf("Get(9) = %q, %v; want original payload", got, err)
	}
	if st.Has(2) {
		t.Error("Has(2) = true for an uncommitted shard")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify everything survived.
	st2, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", st2.Len())
	}
	for i := 1; i < 10; i += 2 {
		got, err := st2.Get(i)
		if err != nil || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("reopened Get(%d) = %q, %v", i, got, err)
		}
	}
	// And commits keep working after recovery.
	if err := st2.Commit(2, payloadFor(2)); err != nil {
		t.Fatal(err)
	}
	if got, err := st2.Get(2); err != nil || !bytes.Equal(got, payloadFor(2)) {
		t.Fatalf("post-recovery Get(2) = %q, %v", got, err)
	}
}

func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	st.Commit(0, payloadFor(0))
	st.Close()
	if _, err := Open(dir, "a-different-spec"); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Open with wrong fingerprint: %v, want ErrFingerprint", err)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), fp); !os.IsNotExist(err) {
		t.Fatalf("Open of missing dir: %v, want fs.ErrNotExist", err)
	}
}

// corruptAt flips one byte of the named file.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestIndexCorruptionFallsBack pins recovery: a CRC-failing index record
// invalidates it and everything after it, and the store falls back to the
// last good shard boundary instead of refusing to open.
func TestIndexCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Commit(i, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Corrupt the third index record (records follow the header).
	hdr := headerLen(fp)
	corruptAt(t, filepath.Join(dir, "shards.idx"), hdr+2*idxRecLen+5)

	st2, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2 (shards before the corruption)", st2.Len())
	}
	for i := 0; i < 2; i++ {
		got, err := st2.Get(i)
		if err != nil || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("recovered Get(%d) = %q, %v", i, got, err)
		}
	}
	// Shards past the corruption recommit cleanly.
	for i := 2; i < 5; i++ {
		if err := st2.Commit(i, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, err := st2.Get(i)
		if err != nil || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("recommitted Get(%d) = %q, %v", i, got, err)
		}
	}
}

// TestTruncatedTails pins torn-write recovery: a short final index record
// and data bytes past the last indexed payload are both dropped.
func TestTruncatedTails(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Commit(i, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the final index record mid-write and append data-file garbage
	// (a crash between the data fsync and the index fsync).
	idxPath := filepath.Join(dir, "shards.idx")
	fi, err := os.Stat(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(idxPath, fi.Size()-idxRecLen/2); err != nil {
		t.Fatal(err)
	}
	datPath := filepath.Join(dir, "shards.dat")
	f, err := os.OpenFile(datPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("torn partial data record")
	f.Close()

	st2, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", st2.Len())
	}
	// Shard 2 recommits over the truncated tail and reads back intact.
	if err := st2.Commit(2, payloadFor(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := st2.Get(i)
		if err != nil || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, got, err)
		}
	}
}

// TestPayloadCorruptionDetected pins the read-side CRC: flipping payload
// bytes on disk turns Get into an error, never silent bad data.
func TestPayloadCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(0, payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	corruptAt(t, filepath.Join(dir, "shards.dat"), headerLen(fp)+8+2) // inside the payload

	st2, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Get(0); err == nil {
		t.Fatal("Get of a corrupted payload succeeded")
	}
}

// TestConcurrentCommitAndRead exercises the locking under -race: many
// goroutines committing disjoint shards while readers poll Has/Get/Len.
func TestConcurrentCommitAndRead(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const shards = 64
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := st.Commit(i, payloadFor(i)); err != nil {
				t.Errorf("Commit(%d): %v", i, err)
			}
		}(i)
	}
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := 0; i < shards; i++ {
					if st.Has(i) {
						if got, err := st.Get(i); err != nil || !bytes.Equal(got, payloadFor(i)) {
							t.Errorf("concurrent Get(%d) = %q, %v", i, got, err)
							return
						}
					}
				}
				_ = st.Len()
			}
		}()
	}
	go func() {
		// Close the reader loop once all commits land.
		for st.Len() < shards {
		}
		close(done)
	}()
	wg.Wait()
	if st.Len() != shards {
		t.Fatalf("Len = %d, want %d", st.Len(), shards)
	}
}
