// Package store is the distributed sweep's crash-safe checkpoint: an
// append-only shard-result store a coordinator commits completed shard
// payloads to, and a restarted coordinator replays instead of recomputing.
//
// Layout (all integers little-endian):
//
//	shards.dat  "SSNDSD1\n" | u16 fpLen | fingerprint            (header)
//	            u32 shard | u32 n | payload[n] | u32 crc32(payload)   ...
//	shards.idx  "SSNDSI1\n" | u16 fpLen | fingerprint            (header)
//	            u32 shard | u64 off | u32 n | u32 payloadCRC
//	            | u32 crc32(previous 20 bytes)                        ...
//
// A commit appends the data record and fsyncs it, then appends the index
// record and fsyncs that: the index only ever names payload bytes that are
// durable. Recovery trusts the index — records are replayed until the
// first short or CRC-failing one, the index is truncated to that last good
// boundary, and the data file is truncated past the last indexed payload,
// so a torn write from a SIGKILL mid-commit costs exactly the shard that
// was in flight. The fingerprint (a hash of the sweep spec) is written at
// creation and must match on open: a checkpoint never resumes under a
// different grid.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	dataMagic = "SSNDSD1\n"
	idxMagic  = "SSNDSI1\n"
	idxRecLen = 24 // u32 shard + u64 off + u32 n + u32 payloadCRC + u32 recCRC
)

// ErrFingerprint reports a checkpoint created under a different sweep spec.
var ErrFingerprint = errors.New("store: checkpoint fingerprint does not match the sweep spec")

type entry struct {
	off int64 // data-file offset of the record start
	n   uint32
	crc uint32
}

// Store is an append-only shard-result store. All methods are safe for
// concurrent use: commits serialize, reads run concurrently.
type Store struct {
	mu      sync.RWMutex
	data    *os.File
	idx     *os.File
	entries map[int]entry
	dataOff int64 // append position: end of the last indexed record
}

// Create initializes a fresh checkpoint in dir (created if needed),
// truncating any previous contents.
func Create(dir, fingerprint string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	data, err := os.OpenFile(filepath.Join(dir, "shards.dat"), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	idx, err := os.OpenFile(filepath.Join(dir, "shards.idx"), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		data.Close()
		return nil, err
	}
	s := &Store{data: data, idx: idx, entries: map[int]entry{}}
	if err := writeHeader(data, dataMagic, fingerprint); err != nil {
		s.Close()
		return nil, err
	}
	if err := writeHeader(idx, idxMagic, fingerprint); err != nil {
		s.Close()
		return nil, err
	}
	if err := data.Sync(); err != nil {
		s.Close()
		return nil, err
	}
	if err := idx.Sync(); err != nil {
		s.Close()
		return nil, err
	}
	s.dataOff = headerLen(fingerprint)
	return s, nil
}

// Open replays an existing checkpoint in dir, recovering to the last good
// shard boundary (truncating a torn index or data tail). It fails with
// ErrFingerprint when the checkpoint belongs to a different spec, and with
// fs.ErrNotExist when there is no checkpoint to resume.
func Open(dir, fingerprint string) (*Store, error) {
	data, err := os.OpenFile(filepath.Join(dir, "shards.dat"), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	idx, err := os.OpenFile(filepath.Join(dir, "shards.idx"), os.O_RDWR, 0o644)
	if err != nil {
		data.Close()
		return nil, err
	}
	s := &Store{data: data, idx: idx, entries: map[int]entry{}}
	if err := s.recover(fingerprint); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// writeHeader emits magic | u16 len | fingerprint.
func writeHeader(f *os.File, magic, fp string) error {
	buf := make([]byte, 0, len(magic)+2+len(fp))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fp)))
	buf = append(buf, fp...)
	_, err := f.WriteAt(buf, 0)
	return err
}

func headerLen(fp string) int64 { return int64(len(dataMagic) + 2 + len(fp)) }

// readHeader validates magic and fingerprint at the head of f.
func readHeader(f *os.File, magic, fp string) error {
	buf := make([]byte, headerLen(fp))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, int64(len(buf))), buf); err != nil {
		return fmt.Errorf("store: truncated header: %w", err)
	}
	if string(buf[:len(magic)]) != magic {
		return fmt.Errorf("store: bad magic %q", buf[:len(magic)])
	}
	n := binary.LittleEndian.Uint16(buf[len(magic):])
	if int(n) != len(fp) || string(buf[len(magic)+2:]) != fp {
		return ErrFingerprint
	}
	return nil
}

// recover replays the index, drops the torn tail of both files, and
// rebuilds the committed-shard map.
func (s *Store) recover(fp string) error {
	if err := readHeader(s.data, dataMagic, fp); err != nil {
		return err
	}
	if err := readHeader(s.idx, idxMagic, fp); err != nil {
		return err
	}
	dataSize, err := s.data.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	good := headerLen(fp) // last valid index boundary
	s.dataOff = headerLen(fp)
	rec := make([]byte, idxRecLen)
	for off := good; ; off += idxRecLen {
		if _, err := s.idx.ReadAt(rec, off); err != nil {
			break // short tail (torn final record) or clean EOF
		}
		if crc32.ChecksumIEEE(rec[:20]) != binary.LittleEndian.Uint32(rec[20:]) {
			break // corrupted record: everything after it is untrusted
		}
		e := entry{
			off: int64(binary.LittleEndian.Uint64(rec[4:])),
			n:   binary.LittleEndian.Uint32(rec[12:]),
			crc: binary.LittleEndian.Uint32(rec[16:]),
		}
		end := e.off + 8 + int64(e.n) + 4 // shard + n header, payload, payload CRC
		if end > dataSize {
			break // index names bytes the data file never durably got
		}
		s.entries[int(binary.LittleEndian.Uint32(rec[0:]))] = e
		good = off + idxRecLen
		if end > s.dataOff {
			s.dataOff = end
		}
	}
	if err := s.idx.Truncate(good); err != nil {
		return err
	}
	return s.data.Truncate(s.dataOff)
}

// Commit durably records shard i's payload: data record fsynced first,
// index record fsynced second. Committing an already-committed shard is a
// no-op (replicas may race on a retried shard; first write wins).
func (s *Store) Commit(i int, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[i]; ok {
		return nil
	}
	crc := crc32.ChecksumIEEE(payload)
	rec := make([]byte, 0, 12+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(i))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc)
	if _, err := s.data.WriteAt(rec, s.dataOff); err != nil {
		return err
	}
	if err := s.data.Sync(); err != nil {
		return err
	}
	irec := make([]byte, 0, idxRecLen)
	irec = binary.LittleEndian.AppendUint32(irec, uint32(i))
	irec = binary.LittleEndian.AppendUint64(irec, uint64(s.dataOff))
	irec = binary.LittleEndian.AppendUint32(irec, uint32(len(payload)))
	irec = binary.LittleEndian.AppendUint32(irec, crc)
	irec = binary.LittleEndian.AppendUint32(irec, crc32.ChecksumIEEE(irec))
	end, err := s.idx.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := s.idx.WriteAt(irec, end); err != nil {
		return err
	}
	if err := s.idx.Sync(); err != nil {
		return err
	}
	s.entries[i] = entry{off: s.dataOff, n: uint32(len(payload)), crc: crc}
	s.dataOff += int64(len(rec))
	return nil
}

// Has reports whether shard i is committed.
func (s *Store) Has(i int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.entries[i]
	return ok
}

// Len returns the number of committed shards.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Shards returns the committed shard indices in unspecified order.
func (s *Store) Shards() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.entries))
	for i := range s.entries {
		out = append(out, i)
	}
	return out
}

// Get reads shard i's payload, verifying its CRC.
func (s *Store) Get(i int) ([]byte, error) {
	s.mu.RLock()
	e, ok := s.entries[i]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: shard %d not committed", i)
	}
	payload := make([]byte, e.n)
	if _, err := s.data.ReadAt(payload, e.off+8); err != nil {
		return nil, fmt.Errorf("store: shard %d: %w", i, err)
	}
	if crc32.ChecksumIEEE(payload) != e.crc {
		return nil, fmt.Errorf("store: shard %d payload failed its CRC", i)
	}
	return payload, nil
}

// Close releases the underlying files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Join(s.data.Close(), s.idx.Close())
}
