package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// testSpec is a 3-axis grid with deliberately awkward numbers: 5*7*11 =
// 385 points over a shard size of 32 gives 13 shards with a short tail.
func testSpec() SweepSpec {
	return SweepSpec{
		Base: BaseParams{
			N: 16, K: 4e-3, V0: 0.6, A: 1.2,
			Vdd: 1.8, Slope: 1.8e9, L: 1.25e-9, C: 2e-12,
		},
		Axes: []Axis{
			{Name: "n", From: 1, To: 64, Points: 5},
			{Name: "l", From: 5e-10, To: 8e-9, Points: 7},
			{Name: "c", From: 0, To: 5e-12, Points: 11},
		},
		ShardPoints: 32,
	}
}

func TestShardDecomposition(t *testing.T) {
	spec := testSpec()
	if got := spec.Total(); got != 385 {
		t.Fatalf("Total = %d, want 385", got)
	}
	if got := spec.NumShards(); got != 13 {
		t.Fatalf("NumShards = %d, want 13", got)
	}
	covered := 0
	for i := 0; i < spec.NumShards(); i++ {
		lo, hi := spec.ShardRange(i)
		if lo != covered || hi <= lo {
			t.Fatalf("shard %d = [%d,%d); want contiguous from %d", i, lo, hi, covered)
		}
		covered = hi
	}
	if covered != spec.Total() {
		t.Fatalf("shards cover %d points, want %d", covered, spec.Total())
	}
	if spec.Fingerprint() != spec.Fingerprint() {
		t.Error("fingerprint is not deterministic")
	}
	other := testSpec()
	other.Axes[0].Points = 6
	if spec.Fingerprint() == other.Fingerprint() {
		t.Error("different grids share a fingerprint")
	}
	// Zero shard points and the explicit default are the same decomposition.
	a, b := testSpec(), testSpec()
	a.ShardPoints = 0
	b.ShardPoints = DefaultShardPoints
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("zero and default shard_points fingerprint differently")
	}
}

// baseline evaluates the whole grid in one EvalRange call: the
// single-process reference stream every distributed run must match.
func baseline(t *testing.T, spec SweepSpec) []byte {
	t.Helper()
	full, err := EvalRange(context.Background(), spec, 0, spec.Total(), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("baseline payload is empty")
	}
	return full
}

// TestShardConcatenationIsByteIdentical pins the core invariant: shard
// payloads evaluated independently (varying worker counts) concatenate to
// the exact bytes of the full-range evaluation.
func TestShardConcatenationIsByteIdentical(t *testing.T) {
	spec := testSpec()
	full := baseline(t, spec)
	var merged bytes.Buffer
	for i := 0; i < spec.NumShards(); i++ {
		p, err := EvalShard(context.Background(), spec, i, EvalConfig{Workers: 1 + i%3})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		merged.Write(p)
	}
	if !bytes.Equal(full, merged.Bytes()) {
		t.Fatalf("merged shards != full run (%d vs %d bytes)", merged.Len(), len(full))
	}
	// Every line parses as a Record, errors in place included.
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	if len(lines) != spec.Total() {
		t.Fatalf("%d NDJSON lines, want %d", len(lines), spec.Total())
	}
	var rec Record
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("first record: %v", err)
	}
}

func TestCoordinatorInProcess(t *testing.T) {
	spec := testSpec()
	full := baseline(t, spec)
	var out bytes.Buffer
	sum, err := Run(context.Background(), spec, Options{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, out.Bytes()) {
		t.Fatal("in-process coordinator output != baseline")
	}
	if sum.Points != spec.Total() || sum.Shards != spec.NumShards() {
		t.Fatalf("summary %+v", sum)
	}
}

// shardHandler is a minimal in-test /v1/shard worker.
func shardHandler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, err := EvalShard(r.Context(), req.Spec, req.Shard, EvalConfig{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(p)
	}
}

func TestCoordinatorTwoWorkers(t *testing.T) {
	spec := testSpec()
	full := baseline(t, spec)
	w1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shardHandler(t)(w, r)
	}))
	defer w1.Close()
	w2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shardHandler(t)(w, r)
	}))
	defer w2.Close()

	tracker := NewTracker()
	var out bytes.Buffer
	sum, err := Run(context.Background(), spec, Options{
		Workers: []string{w1.URL, w2.URL},
		Tracker: tracker,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, out.Bytes()) {
		t.Fatal("2-worker merged output != baseline")
	}
	p := tracker.Snapshot()
	if !p.Done || p.ShardsDone != spec.NumShards() || p.PointsDone != int64(spec.Total()) {
		t.Fatalf("tracker %+v", p)
	}
	both := 0
	for _, w := range p.Workers {
		if w.Shards > 0 {
			both++
		}
	}
	if both != 2 {
		t.Errorf("expected both replicas to complete shards: %+v", p.Workers)
	}
	if sum.Retries != 0 {
		t.Errorf("healthy replicas retried %d times", sum.Retries)
	}
}

// TestCoordinatorFailover pins failover: one replica 500s every request
// (and, for extra spice, one shard 429s once on the healthy replica); the
// run still completes with baseline-identical bytes.
func TestCoordinatorFailover(t *testing.T) {
	spec := testSpec()
	full := baseline(t, spec)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	var shed atomic.Bool
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if shed.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		shardHandler(t)(w, r)
	}))
	defer healthy.Close()

	var out bytes.Buffer
	sum, err := Run(context.Background(), spec, Options{
		Workers: []string{dead.URL, healthy.URL},
		Retries: 50, // the dead replica burns attempts; keep the budget roomy
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, out.Bytes()) {
		t.Fatal("failover output != baseline")
	}
	if sum.Retries == 0 {
		t.Error("expected retries against the dead replica")
	}
}

// TestCoordinatorAllWorkersDead pins the failure path: when every attempt
// fails the run errors out instead of hanging.
func TestCoordinatorAllWorkersDead(t *testing.T) {
	spec := testSpec()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	var out bytes.Buffer
	_, err := Run(context.Background(), spec, Options{
		Workers: []string{dead.URL},
		Retries: 3,
	}, &out)
	if err == nil {
		t.Fatal("expected an error with every replica failing")
	}
}

// failAfter simulates a coordinator crash deterministically: the output
// path dies after n successful shard writes, killing the run after the
// checkpoint has durably committed at least those shards.
type failAfter struct {
	n      int
	writes int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.writes >= f.n {
		return 0, fmt.Errorf("simulated crash after %d shards", f.n)
	}
	f.writes++
	return len(p), nil
}

// TestKillAndResume pins crash recovery end to end: a first run dies
// mid-flight, a second run with Resume replays the committed shards and
// computes the rest, and the concatenated output is byte-identical to an
// uninterrupted run.
func TestKillAndResume(t *testing.T) {
	spec := testSpec()
	full := baseline(t, spec)
	dir := t.TempDir()

	_, err := Run(context.Background(), spec, Options{Checkpoint: dir}, &failAfter{n: 4})
	if err == nil {
		t.Fatal("crashed run reported success")
	}

	// Second run: resume. Output bytes must equal the baseline, and some
	// shards must come from the checkpoint rather than recomputation.
	var out bytes.Buffer
	sum, err := Run(context.Background(), spec, Options{
		Checkpoint: dir,
		Resume:     true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, out.Bytes()) {
		t.Fatalf("resumed output != baseline (%d vs %d bytes)", out.Len(), len(full))
	}
	if sum.Reused == 0 {
		t.Error("resume reused no shards")
	}
	if sum.Points != spec.Total() {
		t.Errorf("resumed run emitted %d points, want %d", sum.Points, spec.Total())
	}
}

// TestResumeRefusesDifferentSpec pins the fingerprint guard: a checkpoint
// written under one grid cannot silently season a different one.
func TestResumeRefusesDifferentSpec(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	var out bytes.Buffer
	if _, err := Run(context.Background(), spec, Options{Checkpoint: dir}, &out); err != nil {
		t.Fatal(err)
	}
	other := testSpec()
	other.Axes[0].Points = 7
	out.Reset()
	if _, err := Run(context.Background(), other, Options{Checkpoint: dir, Resume: true}, &out); err == nil {
		t.Fatal("resume under a different spec succeeded")
	}
}

// TestResolvedNInPayload pins the wire contract for the n axis: the
// payload records the resolved driver count (rounded, clamped to >= 1) —
// the number the model actually evaluated — not the raw grid value, and
// that substitution is identical on every replica.
func TestResolvedNInPayload(t *testing.T) {
	spec := testSpec()
	spec.Axes = []Axis{{Name: "n", From: -5, To: 5, Points: 3}} // -5 clamps to 1
	payload, err := EvalRange(context.Background(), spec, 0, spec.Total(), EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(payload, []byte("\n")), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	var first, last Record
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(lines[2], &last); err != nil {
		t.Fatal(err)
	}
	if first.Error != nil || first.Values["n"] != 1 {
		t.Errorf("n = -5 should resolve to 1: %+v", first)
	}
	if last.Error != nil || last.Values["n"] != 5 || last.VMax <= 0 {
		t.Errorf("n = 5 should evaluate: %+v", last)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []func(*SweepSpec){
		func(s *SweepSpec) { s.Axes = nil },
		func(s *SweepSpec) { s.Axes[0].Name = "zz" },
		func(s *SweepSpec) { s.Axes[1].From = 0 },  // l domain
		func(s *SweepSpec) { s.Axes[2].From = -1 }, // c domain
		func(s *SweepSpec) { s.ShardPoints = -1 },
		func(s *SweepSpec) {
			s.Axes = append(s.Axes, Axis{Name: "size", From: 1, To: 4, Points: 4}) // no extract
		},
	}
	for i, mut := range bad {
		spec := testSpec()
		mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted an invalid spec", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestShardRequestRoundTrip(t *testing.T) {
	body, err := shardRequestBody(testSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var req ShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	if req.Shard != 7 || req.Spec.Fingerprint() != testSpec().Fingerprint() {
		t.Fatalf("round trip lost information: %+v", req)
	}
}
