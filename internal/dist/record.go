package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"

	"ssnkit/internal/ssn"
	"ssnkit/internal/sweep"
)

// Record is the canonical NDJSON shape of one evaluated point, mirroring
// the /v1/sweep wire record. Every worker encodes shard payloads through
// this one type (encoding/json emits struct fields in declaration order
// and map keys sorted, so the bytes are deterministic across replicas);
// the coordinator merges payloads without re-encoding.
type Record struct {
	Values   map[string]float64 `json:"values"`
	VMax     float64            `json:"vmax,omitempty"`
	Case     string             `json:"case,omitempty"`
	CaseCode int                `json:"case_code,omitempty"`
	Error    *RecordError       `json:"error,omitempty"`
}

// RecordError reports a per-point failure in place, in the same
// code/message/field envelope the service uses.
type RecordError struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	Field      string `json:"field,omitempty"`
	Value      any    `json:"value,omitempty"`
	Constraint string `json:"constraint,omitempty"`
}

// toRecordError maps a point error onto the wire, lifting structure out of
// ssn.ValidationError when present.
func toRecordError(err error) *RecordError {
	var ve *ssn.ValidationError
	if errors.As(err, &ve) {
		return &RecordError{Code: "invalid_request", Message: ve.Error(),
			Field: ve.Field, Value: ve.Value, Constraint: ve.Constraint}
	}
	return &RecordError{Code: "invalid_request", Message: err.Error()}
}

// EvalConfig tunes a worker-side shard evaluation.
type EvalConfig struct {
	// Workers bounds the parallel chunk evaluators; <= 0 means GOMAXPROCS.
	Workers int
	// Extract resolves device extraction for a swept size axis (plug in a
	// shared cache); nil falls back to direct extraction.
	Extract sweep.ExtractFunc
	// Gate, when non-nil, bounds chunk concurrency globally (a shard
	// evaluated inside ssnserve shares the one worker pool).
	Gate sweep.Gate
}

// EvalRange evaluates the row-major index range [lo, hi) of the spec's
// grid and returns its canonical NDJSON payload: one Record per point in
// index order, per-point errors in place. The bytes depend only on (spec,
// lo, hi) — never on worker count, chunking or which process ran it.
func EvalRange(ctx context.Context, spec SweepSpec, lo, hi int, cfg EvalConfig) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := spec.Grid()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(64 * (hi - lo))
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	rec := Record{Values: make(map[string]float64, len(g.Axes))}
	sink := func(pt sweep.Point) error {
		rec.VMax = 0
		rec.Case = ""
		rec.CaseCode = 0
		rec.Error = nil
		for k, ax := range g.Axes {
			v := pt.Values[k]
			if ax.Name == sweep.AxisN && pt.Err == nil {
				v = float64(pt.Params.N) // the resolved (rounded) driver count
			}
			rec.Values[ax.Name] = v
		}
		if pt.Err != nil {
			rec.Error = toRecordError(pt.Err)
		} else {
			rec.VMax = pt.VMax
			rec.Case = pt.Case.String()
			rec.CaseCode = int(pt.Case)
		}
		return enc.Encode(&rec)
	}
	scfg := sweep.Config{Workers: cfg.Workers, Extract: cfg.Extract, Gate: cfg.Gate}
	if _, err := sweep.RunRange(ctx, g, scfg, lo, hi, sink); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EvalShard evaluates shard i of the spec: EvalRange over ShardRange(i).
func EvalShard(ctx context.Context, spec SweepSpec, i int, cfg EvalConfig) ([]byte, error) {
	if i < 0 || i >= spec.NumShards() {
		return nil, errors.New("dist: shard index outside the spec's decomposition")
	}
	lo, hi := spec.ShardRange(i)
	return EvalRange(ctx, spec, lo, hi, cfg)
}
