// Package dist turns the in-process design-space sweep into distributed
// infrastructure: a sweep spec decomposes into deterministic shards
// (contiguous row-major index ranges, the same unit internal/sweep chunks
// by), shards fan out to ssnserve worker replicas over POST /v1/shard with
// per-shard retry, backoff and failover, and completed shard payloads are
// checkpointed to an append-only on-disk store (internal/dist/store) so a
// restarted coordinator resumes from the last committed shard instead of
// recomputing a billion-point scan from zero.
//
// The invariant everything hangs off is byte determinism: a shard's
// payload is the NDJSON encoding of its points in index order, identical
// no matter which replica (or the in-process fallback) evaluated it, so
// the merged stream — shard payloads concatenated in shard order — is
// byte-for-byte the single-process internal/sweep stream for the same
// spec, whether the run used 1 worker, N workers, or crashed halfway and
// resumed. Equality is checkable with cmp(1), and the checkpoint store
// never has to reconcile divergent replicas.
//
// Front-ends: cmd/ssndist drives a coordinator from the command line;
// internal/serve exposes the worker side (POST /v1/shard) and a
// server-side coordinator (POST /v1/distsweep, GET /v1/distsweep/status).
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ssnkit/internal/device"
	"ssnkit/internal/ssn"
	"ssnkit/internal/sweep"
)

// BaseParams is the wire shape of the resolved fixed operating point
// (ssn.Params with the device flattened): the coordinator resolves process
// kits, packages and units once, and workers evaluate exactly the numbers
// they are handed.
type BaseParams struct {
	N     int     `json:"n"`
	K     float64 `json:"k"`
	V0    float64 `json:"v0"`
	A     float64 `json:"a"`
	Vdd   float64 `json:"vdd"`
	Slope float64 `json:"slope"`
	L     float64 `json:"l"`
	C     float64 `json:"c"`
}

// Axis is the wire shape of one swept dimension, mirroring sweep.Axis.
type Axis struct {
	Name   string  `json:"axis"`
	From   float64 `json:"from"`
	To     float64 `json:"to"`
	Points int     `json:"points"`
	Log    bool    `json:"log,omitempty"`
}

// Extract names the device extraction a size axis re-runs per width.
// Required exactly when a size axis is present.
type Extract struct {
	Process string `json:"process"`
	Corner  string `json:"corner,omitempty"` // "tt" (default), "ss", "ff"
	Rail    bool   `json:"rail,omitempty"`
}

// SweepSpec is the complete, self-contained description of one
// distributed sweep: resolved base parameters, the axis grid and the
// shard size. Identical specs produce identical shard decompositions and
// identical payload bytes everywhere.
type SweepSpec struct {
	Base        BaseParams `json:"base"`
	Axes        []Axis     `json:"axes"`
	Extract     *Extract   `json:"extract,omitempty"`
	ShardPoints int        `json:"shard_points"`
}

// DefaultShardPoints is the shard size when the spec leaves it zero: large
// enough to amortize one HTTP round trip and a checkpoint fsync, small
// enough that a lost worker re-evaluates milliseconds of closed-form work.
const DefaultShardPoints = 4096

// Params returns the resolved base operating point.
func (s SweepSpec) Params() ssn.Params {
	return ssn.Params{
		N:     s.Base.N,
		Dev:   device.ASDM{K: s.Base.K, V0: s.Base.V0, A: s.Base.A},
		Vdd:   s.Base.Vdd,
		Slope: s.Base.Slope,
		L:     s.Base.L,
		C:     s.Base.C,
	}
}

// Grid assembles the sweep.Grid the spec describes.
func (s SweepSpec) Grid() (sweep.Grid, error) {
	g := sweep.Grid{Base: s.Params()}
	sizeSwept := false
	for _, a := range s.Axes {
		if a.Name == sweep.AxisSize {
			sizeSwept = true
		}
		g.Axes = append(g.Axes, sweep.Axis{Name: a.Name, From: a.From, To: a.To,
			Points: a.Points, Log: a.Log})
	}
	if sizeSwept {
		if s.Extract == nil {
			return g, fmt.Errorf("dist: a size axis needs an extract spec")
		}
		corner, err := device.CornerByName(s.Extract.Corner)
		if err != nil {
			return g, err
		}
		g.Spec = device.ExtractSpec{Process: s.Extract.Process, Corner: corner, Rail: s.Extract.Rail}
	}
	return g, nil
}

// Validate rejects malformed specs: bad axes (structure and static
// domain), a missing extract spec, or a non-positive shard size.
func (s SweepSpec) Validate() error {
	g, err := s.Grid()
	if err != nil {
		return err
	}
	if err := g.ValidateDomain(); err != nil {
		return err
	}
	if s.ShardPoints < 0 {
		return fmt.Errorf("dist: shard_points = %d must be non-negative", s.ShardPoints)
	}
	return nil
}

// Total returns the number of grid points.
func (s SweepSpec) Total() int {
	t := 1
	for _, a := range s.Axes {
		t *= a.Points
	}
	return t
}

// shardPoints returns the effective shard size.
func (s SweepSpec) shardPoints() int {
	if s.ShardPoints > 0 {
		return s.ShardPoints
	}
	return DefaultShardPoints
}

// NumShards returns the shard count: ceil(total / shard size).
func (s SweepSpec) NumShards() int {
	sp := s.shardPoints()
	return (s.Total() + sp - 1) / sp
}

// ShardRange returns the row-major index range [lo, hi) of shard i.
func (s SweepSpec) ShardRange(i int) (lo, hi int) {
	sp := s.shardPoints()
	lo = i * sp
	hi = min(lo+sp, s.Total())
	return lo, hi
}

// Fingerprint hashes the canonical JSON encoding of the spec. The
// checkpoint store records it at creation and refuses to resume under a
// different spec — a resumed run that silently mixed shard payloads from
// two different grids would be worse than recomputing.
func (s SweepSpec) Fingerprint() string {
	if s.ShardPoints == 0 {
		s.ShardPoints = DefaultShardPoints // zero and the default are the same decomposition
	}
	b, err := json.Marshal(s)
	if err != nil { // only non-finite floats can trip Marshal here
		return "unfingerprintable"
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}
