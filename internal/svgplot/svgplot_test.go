package svgplot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestLineBasic(t *testing.T) {
	svg := Line(Config{Title: "test & demo", XLabel: "x", YLabel: "y"}, []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	})
	wellFormed(t, svg)
	for _, want := range []string{"<svg", "polyline", "test &amp; demo", ">a<", ">b<", "rotate(-90"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count %d, want 2", got)
	}
}

func TestLineNoData(t *testing.T) {
	svg := Line(Config{}, nil)
	wellFormed(t, svg)
	if !strings.Contains(svg, "no data") {
		t.Error("empty chart must say no data")
	}
	nan := Line(Config{}, []Series{{Name: "n", X: []float64{math.NaN()}, Y: []float64{1}}})
	if !strings.Contains(nan, "no data") {
		t.Error("all-NaN chart must say no data")
	}
}

func TestLineBreaksAtNaN(t *testing.T) {
	svg := Line(Config{}, []Series{{
		Name: "gap",
		X:    []float64{0, 1, 2, 3, 4},
		Y:    []float64{0, 1, math.NaN(), 1, 0},
	}})
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("NaN should split the polyline: got %d segments", got)
	}
}

func TestLineFlatSeries(t *testing.T) {
	svg := Line(Config{}, []Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{3, 3}}})
	wellFormed(t, svg)
	if !strings.Contains(svg, "<polyline") {
		t.Error("flat series should still draw")
	}
}

func TestLineCustomColor(t *testing.T) {
	svg := Line(Config{}, []Series{{Name: "c", X: []float64{0, 1}, Y: []float64{0, 1}, Color: "#123456"}})
	if !strings.Contains(svg, "#123456") {
		t.Error("custom color not used")
	}
}

func TestTicksNice(t *testing.T) {
	ts := Ticks(0, 10, 5)
	if len(ts) < 4 || ts[0] != 0 {
		t.Errorf("ticks(0,10) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatal("ticks not increasing")
		}
	}
	// Steps are from the 1/2/5 ladder.
	step := ts[1] - ts[0]
	mant := step / math.Pow(10, math.Floor(math.Log10(step)))
	ok := math.Abs(mant-1) < 1e-9 || math.Abs(mant-2) < 1e-9 || math.Abs(mant-5) < 1e-9
	if !ok {
		t.Errorf("step %g not on the 1/2/5 ladder", step)
	}
	// Degenerate span.
	if got := Ticks(3, 3, 5); len(got) != 1 || got[0] != 3 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestTicksCoverRange(t *testing.T) {
	for _, r := range [][2]float64{{0, 1}, {-5, 5}, {1e-12, 9e-12}, {0.2, 0.91}} {
		ts := Ticks(r[0], r[1], 6)
		if len(ts) < 2 {
			t.Errorf("range %v: only %d ticks", r, len(ts))
			continue
		}
		if ts[0] < r[0]-1e-12 || ts[len(ts)-1] > r[1]*(1+1e-9)+1e-12 {
			t.Errorf("range %v: ticks %v leave the range", r, ts)
		}
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{0: "0", 0.5: "0.5", 2: "2", 1e-9: "1e-09"}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Errorf("fmtTick(%g) = %q, want %q", in, got, want)
		}
	}
}
