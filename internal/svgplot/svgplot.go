// Package svgplot renders line charts as standalone SVG documents using
// only the standard library. It backs the HTML report of cmd/ssnrepro: the
// same series the ASCII renditions show, but in a form a reviewer can zoom.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve. A nil/empty Color picks from a default cycle.
type Series struct {
	Name  string
	X, Y  []float64
	Color string
}

// Config controls the chart geometry and labels.
type Config struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int // pixels; defaults 640x360
}

var defaultColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 72
	marginRight  = 24
	marginTop    = 40
	marginBottom = 56
)

// Line renders the series as an SVG line chart. Non-finite points are
// skipped (the polyline is broken there).
func Line(cfg Config, series []Series) string {
	w, h := cfg.Width, cfg.Height
	if w < 200 {
		w = 640
	}
	if h < 120 {
		h = 360
	}
	xmin, xmax, ymin, ymax := bounds(series)
	if xmin > xmax { // no data at all
		return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d"><text x="20" y="30">no data</text></svg>`, w, h)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range a little so curves do not sit on the frame.
	pad := 0.05 * (ymax - ymin)
	ymin -= pad
	ymax += pad

	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	px := func(x float64) float64 { return float64(marginLeft) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(marginTop) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", marginLeft, escape(cfg.Title))
	}

	// Grid and ticks.
	for _, tx := range Ticks(xmin, xmax, 6) {
		x := px(tx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			x, marginTop, x, h-marginBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, h-marginBottom+18, fmtTick(tx))
	}
	for _, ty := range Ticks(ymin, ymax, 5) {
		y := py(ty)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, w-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginLeft-6, y, fmtTick(ty))
	}
	// Frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)

	// Axis labels.
	if cfg.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" text-anchor="middle">%s</text>`+"\n",
			float64(marginLeft)+plotW/2, h-12, escape(cfg.XLabel))
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%.0f" text-anchor="middle" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
			float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(cfg.YLabel))
	}

	// Curves.
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultColors[si%len(defaultColors)]
		}
		var pts []string
		flush := func() {
			if len(pts) >= 2 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
					strings.Join(pts, " "), color)
			}
			pts = pts[:0]
		}
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(y)))
		}
		flush()
		// Legend entry.
		ly := marginTop + 16 + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			w-marginRight-110, ly, w-marginRight-90, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dominant-baseline="middle">%s</text>`+"\n",
			w-marginRight-84, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func bounds(series []Series) (xmin, xmax, ymin, ymax float64) {
	xmin, xmax = math.Inf(1), math.Inf(-1)
	ymin, ymax = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	return
}

// Ticks returns up to n+1 "nice" tick positions covering [lo, hi] using a
// 1/2/5 step ladder.
func Ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		return []float64{lo}
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var out []float64
	for t := first; t <= hi+step*1e-9; t += step {
		out = append(out, t)
	}
	return out
}

func fmtTick(v float64) string {
	if v == 0 {
		return "0"
	}
	a := math.Abs(v)
	if a >= 1e-3 && a < 1e4 {
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
	}
	return fmt.Sprintf("%.2g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
