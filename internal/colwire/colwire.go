// Package colwire implements the SSNC columnar wire format: a
// length-prefixed little-endian float64 column layout that lets clients
// ship and receive whole batches without per-point JSON encode/decode.
//
// A Block is laid out byte-for-byte as:
//
//	offset  size      field
//	0       4         magic "SSNC"
//	4       1         version (currently 1)
//	5       1         flags (reserved, must be 0)
//	6       2         ncols  uint16 LE
//	8       4         nrows  uint32 LE
//	12      4         metaLen uint32 LE
//	16      metaLen   meta: UTF-8 JSON object (may be empty)
//	...     per column, ncols times:
//	        2         nameLen uint16 LE
//	        nameLen   column name, UTF-8
//	        8*nrows   values, IEEE 754 binary64, little-endian bit patterns
//
// Values travel as raw bit patterns (math.Float64bits), so the round trip
// is value-exact for every float64 including NaN payloads, signed zeros,
// infinities, and subnormals. Streams are a plain concatenation of Blocks;
// a zero-row Block conventionally carries terminal metadata.
package colwire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// ContentType is the negotiated media type for SSNC columnar bodies.
const ContentType = "application/x-ssn-columnar"

const (
	// Version is the wire version this package reads and writes.
	Version = 1

	headerLen = 16

	// MaxColumns bounds ncols: enough for any endpoint schema while
	// keeping adversarial headers from driving large per-column loops.
	MaxColumns = 4096
	// MaxNameLen bounds a single column name.
	MaxNameLen = 255
	// MaxMetaLen bounds the embedded meta JSON.
	MaxMetaLen = 1 << 20
	// MaxRows bounds nrows. 1<<26 rows of one column is 512 MiB, far
	// above any request the service accepts; handlers enforce their own
	// tighter item caps on top.
	MaxRows = 1 << 26
)

var magic = [4]byte{'S', 'S', 'N', 'C'}

// Column is one named float64 column of a Block.
type Column struct {
	Name   string
	Values []float64
}

// Block is a decoded or to-be-encoded SSNC frame: optional JSON metadata
// plus equal-length named columns.
type Block struct {
	Meta    json.RawMessage
	Columns []Column
}

// Rows returns the shared column length (0 for a column-less Block).
func (b *Block) Rows() int {
	if len(b.Columns) == 0 {
		return 0
	}
	return len(b.Columns[0].Values)
}

// Column returns the values of the named column, or nil if absent.
func (b *Block) Column(name string) []float64 {
	for i := range b.Columns {
		if b.Columns[i].Name == name {
			return b.Columns[i].Values
		}
	}
	return nil
}

// validate checks the encodability limits shared by EncodedSize and
// AppendTo.
func (b *Block) validate() error {
	if len(b.Columns) > MaxColumns {
		return fmt.Errorf("colwire: %d columns exceeds %d", len(b.Columns), MaxColumns)
	}
	if len(b.Meta) > MaxMetaLen {
		return fmt.Errorf("colwire: meta length %d exceeds %d", len(b.Meta), MaxMetaLen)
	}
	rows := b.Rows()
	if rows > MaxRows {
		return fmt.Errorf("colwire: %d rows exceeds %d", rows, MaxRows)
	}
	for i := range b.Columns {
		c := &b.Columns[i]
		if len(c.Name) == 0 || len(c.Name) > MaxNameLen {
			return fmt.Errorf("colwire: column %d name length %d outside [1,%d]", i, len(c.Name), MaxNameLen)
		}
		if len(c.Values) != rows {
			return fmt.Errorf("colwire: column %q has %d rows, want %d", c.Name, len(c.Values), rows)
		}
	}
	return nil
}

// EncodedSize returns the exact byte length AppendTo will produce.
func (b *Block) EncodedSize() int {
	n := headerLen + len(b.Meta)
	rows := b.Rows()
	for i := range b.Columns {
		n += 2 + len(b.Columns[i].Name) + 8*rows
	}
	return n
}

// AppendTo appends the encoded Block to dst and returns the extended
// slice. The only failure mode is a Block outside the format limits.
func (b *Block) AppendTo(dst []byte) ([]byte, error) {
	if err := b.validate(); err != nil {
		return dst, err
	}
	dst = append(dst, magic[0], magic[1], magic[2], magic[3], Version, 0)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(b.Columns)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Rows()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Meta)))
	dst = append(dst, b.Meta...)
	for i := range b.Columns {
		c := &b.Columns[i]
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c.Name)))
		dst = append(dst, c.Name...)
		for _, v := range c.Values {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// Encode is AppendTo into a fresh exactly-sized buffer.
func (b *Block) Encode() ([]byte, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	out, err := b.AppendTo(make([]byte, 0, b.EncodedSize()))
	return out, err
}

// ErrShortBlock reports a body that ends before the lengths in its own
// header are satisfied (truncated length prefixes included).
var ErrShortBlock = errors.New("colwire: truncated block")

// header is the fixed 16-byte prelude, decoded and limit-checked.
type header struct {
	ncols   int
	nrows   int
	metaLen int
}

func parseHeader(h []byte) (header, error) {
	if h[0] != magic[0] || h[1] != magic[1] || h[2] != magic[2] || h[3] != magic[3] {
		return header{}, fmt.Errorf("colwire: bad magic %q", h[:4])
	}
	if h[4] != Version {
		return header{}, fmt.Errorf("colwire: unsupported version %d", h[4])
	}
	if h[5] != 0 {
		return header{}, fmt.Errorf("colwire: reserved flags 0x%02x", h[5])
	}
	hd := header{
		ncols:   int(binary.LittleEndian.Uint16(h[6:8])),
		nrows:   int(binary.LittleEndian.Uint32(h[8:12])),
		metaLen: int(binary.LittleEndian.Uint32(h[12:16])),
	}
	if hd.ncols > MaxColumns {
		return header{}, fmt.Errorf("colwire: %d columns exceeds %d", hd.ncols, MaxColumns)
	}
	if hd.nrows > MaxRows {
		return header{}, fmt.Errorf("colwire: %d rows exceeds %d", hd.nrows, MaxRows)
	}
	if hd.metaLen > MaxMetaLen {
		return header{}, fmt.Errorf("colwire: meta length %d exceeds %d", hd.metaLen, MaxMetaLen)
	}
	if hd.ncols == 0 && hd.nrows != 0 {
		// Row data lives inside columns, so this shape is unencodable;
		// rejecting it keeps every accepted block canonically re-encodable.
		return header{}, fmt.Errorf("colwire: %d rows with no columns", hd.nrows)
	}
	return hd, nil
}

// Decode parses one Block from the front of data, returning the Block and
// the number of bytes consumed (trailing bytes belong to the next Block of
// a stream). Every allocation is bounded by len(data), so oversized length
// prefixes in a short body fail with ErrShortBlock instead of allocating.
func Decode(data []byte) (*Block, int, error) {
	if len(data) < headerLen {
		return nil, 0, ErrShortBlock
	}
	hd, err := parseHeader(data[:headerLen])
	if err != nil {
		return nil, 0, err
	}
	off := headerLen
	if len(data)-off < hd.metaLen {
		return nil, 0, ErrShortBlock
	}
	b := &Block{}
	if hd.metaLen > 0 {
		b.Meta = json.RawMessage(append([]byte(nil), data[off:off+hd.metaLen]...))
	}
	off += hd.metaLen
	if hd.ncols > 0 {
		b.Columns = make([]Column, hd.ncols)
	}
	for i := 0; i < hd.ncols; i++ {
		if len(data)-off < 2 {
			return nil, 0, ErrShortBlock
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off : off+2]))
		off += 2
		if nameLen == 0 || nameLen > MaxNameLen {
			return nil, 0, fmt.Errorf("colwire: column %d name length %d outside [1,%d]", i, nameLen, MaxNameLen)
		}
		if len(data)-off < nameLen {
			return nil, 0, ErrShortBlock
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		if len(data)-off < 8*hd.nrows {
			return nil, 0, ErrShortBlock
		}
		vals := make([]float64, hd.nrows)
		for j := range vals {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
			off += 8
		}
		b.Columns[i] = Column{Name: name, Values: vals}
	}
	return b, off, nil
}

// readChunk is the growth quantum of the streaming value reader: columns
// larger than this allocate as bytes actually arrive, so a hostile header
// promising 2^26 rows over a 20-byte body costs one chunk, not 512 MiB.
const readChunk = 64 * 1024

// ReadBlock reads one Block from r. It returns io.EOF only when the
// stream ends cleanly before the first header byte; a block cut off
// anywhere after that fails with ErrShortBlock.
func ReadBlock(r io.Reader) (*Block, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrShortBlock
	}
	if _, err := io.ReadFull(r, h[1:]); err != nil {
		return nil, ErrShortBlock
	}
	hd, err := parseHeader(h[:])
	if err != nil {
		return nil, err
	}
	b := &Block{}
	if hd.metaLen > 0 {
		meta, err := readAllChunked(r, hd.metaLen)
		if err != nil {
			return nil, err
		}
		b.Meta = json.RawMessage(meta)
	}
	if hd.ncols > 0 {
		b.Columns = make([]Column, hd.ncols)
	}
	var pre [2 + MaxNameLen]byte
	for i := 0; i < hd.ncols; i++ {
		if _, err := io.ReadFull(r, pre[:2]); err != nil {
			return nil, ErrShortBlock
		}
		nameLen := int(binary.LittleEndian.Uint16(pre[:2]))
		if nameLen == 0 || nameLen > MaxNameLen {
			return nil, fmt.Errorf("colwire: column %d name length %d outside [1,%d]", i, nameLen, MaxNameLen)
		}
		if _, err := io.ReadFull(r, pre[2:2+nameLen]); err != nil {
			return nil, ErrShortBlock
		}
		raw, err := readAllChunked(r, 8*hd.nrows)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, hd.nrows)
		for j := range vals {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
		}
		b.Columns[i] = Column{Name: string(pre[2 : 2+nameLen]), Values: vals}
	}
	return b, nil
}

// readAllChunked reads exactly n bytes, growing the buffer one readChunk
// at a time so allocation tracks delivered bytes, not the advertised n.
func readAllChunked(r io.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, ErrShortBlock
		}
		return buf, nil
	}
	buf := make([]byte, 0, readChunk)
	for len(buf) < n {
		step := n - len(buf)
		if step > readChunk {
			step = readChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, ErrShortBlock
		}
	}
	return buf, nil
}
