package colwire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// specialBits are the value-exactness stress patterns: NaNs with distinct
// payloads (quiet and signaling-shaped), signed zeros, infinities,
// subnormals, and extremes.
var specialBits = []uint64{
	0x7FF8000000000000, // canonical quiet NaN
	0x7FF8000000000001, // quiet NaN, payload 1
	0x7FF0000000000001, // signaling-shaped NaN
	0xFFF8DEADBEEF0001, // negative NaN, junk payload
	0x0000000000000000, // +0
	0x8000000000000000, // -0
	0x7FF0000000000000, // +Inf
	0xFFF0000000000000, // -Inf
	0x0000000000000001, // smallest subnormal
	0x000FFFFFFFFFFFFF, // largest subnormal
	0x7FEFFFFFFFFFFFFF, // MaxFloat64
	0x0010000000000000, // smallest normal
}

func sampleBlock(rows int) *Block {
	rng := rand.New(rand.NewSource(int64(rows) + 7))
	mk := func() []float64 {
		v := make([]float64, rows)
		for i := range v {
			if i < len(specialBits) {
				v[i] = math.Float64frombits(specialBits[i])
			} else {
				v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
			}
		}
		return v
	}
	return &Block{
		Meta: json.RawMessage(`{"kind":"test","rows":` + "0" + `}`),
		Columns: []Column{
			{Name: "vmax", Values: mk()},
			{Name: "case_code", Values: mk()},
			{Name: "c", Values: mk()},
		},
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func blocksBitEqual(t *testing.T, got, want *Block) {
	t.Helper()
	if !bytes.Equal(got.Meta, want.Meta) {
		t.Fatalf("meta mismatch: %q vs %q", got.Meta, want.Meta)
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("column count %d vs %d", len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if got.Columns[i].Name != want.Columns[i].Name {
			t.Fatalf("column %d name %q vs %q", i, got.Columns[i].Name, want.Columns[i].Name)
		}
		if !bitsEqual(got.Columns[i].Values, want.Columns[i].Values) {
			t.Fatalf("column %q values differ in bits", want.Columns[i].Name)
		}
	}
}

func TestRoundTripValueExact(t *testing.T) {
	for _, rows := range []int{0, 1, 12, 1024} {
		b := sampleBlock(rows)
		enc, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != b.EncodedSize() {
			t.Fatalf("rows=%d: encoded %d bytes, EncodedSize says %d", rows, len(enc), b.EncodedSize())
		}
		dec, n, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		blocksBitEqual(t, dec, b)

		// Stream decode agrees, then sees clean EOF.
		r := bytes.NewReader(enc)
		sdec, err := ReadBlock(r)
		if err != nil {
			t.Fatal(err)
		}
		blocksBitEqual(t, sdec, b)
		if _, err := ReadBlock(r); err != io.EOF {
			t.Fatalf("after last block: %v, want io.EOF", err)
		}
	}
}

func TestDecodeStreamOfBlocks(t *testing.T) {
	b1, b2 := sampleBlock(5), sampleBlock(9)
	done := &Block{Meta: json.RawMessage(`{"done":true}`)}
	var stream []byte
	for _, b := range []*Block{b1, b2, done} {
		var err error
		stream, err = b.AppendTo(stream)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Slice decoding walks the concatenation by consumed offsets.
	off := 0
	for i, want := range []*Block{b1, b2, done} {
		dec, n, err := Decode(stream[off:])
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		blocksBitEqual(t, dec, want)
		off += n
	}
	if off != len(stream) {
		t.Fatalf("consumed %d of %d", off, len(stream))
	}
	// Stream decoding sees the same three then EOF.
	r := bytes.NewReader(stream)
	for i, want := range []*Block{b1, b2, done} {
		dec, err := ReadBlock(r)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		blocksBitEqual(t, dec, want)
	}
	if _, err := ReadBlock(r); err != io.EOF {
		t.Fatalf("after stream: %v, want io.EOF", err)
	}
}

func TestColumnLookup(t *testing.T) {
	b := sampleBlock(3)
	if got := b.Column("case_code"); !bitsEqual(got, b.Columns[1].Values) {
		t.Fatal("Column lookup returned wrong values")
	}
	if b.Column("absent") != nil {
		t.Fatal("absent column should be nil")
	}
	if b.Rows() != 3 {
		t.Fatalf("Rows = %d", b.Rows())
	}
}

func TestEncodeRejects(t *testing.T) {
	cases := []struct {
		name string
		b    *Block
	}{
		{"mismatched lengths", &Block{Columns: []Column{
			{Name: "a", Values: make([]float64, 3)},
			{Name: "b", Values: make([]float64, 4)},
		}}},
		{"empty name", &Block{Columns: []Column{{Name: "", Values: nil}}}},
		{"long name", &Block{Columns: []Column{{Name: strings.Repeat("x", MaxNameLen+1)}}}},
		{"oversized meta", &Block{Meta: make(json.RawMessage, MaxMetaLen+1)}},
	}
	for _, tc := range cases {
		if _, err := tc.b.Encode(); err == nil {
			t.Errorf("%s: Encode succeeded, want error", tc.name)
		}
		if _, err := tc.b.AppendTo(nil); err == nil {
			t.Errorf("%s: AppendTo succeeded, want error", tc.name)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	good, err := sampleBlock(4).Encode()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), good...)
		mutate(c)
		return c
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", good[:15]},
		{"bad magic", mut(func(c []byte) { c[0] = 'X' })},
		{"bad version", mut(func(c []byte) { c[4] = 9 })},
		{"reserved flags", mut(func(c []byte) { c[5] = 1 })},
		{"truncated meta", good[:headerLen+2]},
		{"truncated name prefix", good[:headerLen+len(sampleBlock(4).Meta)+1]},
		{"truncated values", good[:len(good)-1]},
		{"zero name length", mut(func(c []byte) {
			off := headerLen + len(sampleBlock(4).Meta)
			binary.LittleEndian.PutUint16(c[off:], 0)
		})},
		{"rows beyond cap", mut(func(c []byte) {
			binary.LittleEndian.PutUint32(c[8:], MaxRows+1)
		})},
		{"meta beyond cap", mut(func(c []byte) {
			binary.LittleEndian.PutUint32(c[12:], MaxMetaLen+1)
		})},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.data); err == nil {
			t.Errorf("Decode %s: succeeded, want error", tc.name)
		}
		if _, err := ReadBlock(bytes.NewReader(tc.data)); err == nil || err == io.EOF {
			if !(tc.name == "empty" && err == io.EOF) {
				t.Errorf("ReadBlock %s: err = %v, want failure", tc.name, err)
			}
		}
	}
}

// TestOversizedPrefixBoundedAlloc feeds headers promising maximal rows and
// meta over a tiny body: the decoders must fail with ErrShortBlock without
// allocating anywhere near the advertised size.
func TestOversizedPrefixBoundedAlloc(t *testing.T) {
	var h [headerLen + 3]byte
	copy(h[:], "SSNC")
	h[4] = Version
	binary.LittleEndian.PutUint16(h[6:], 1)       // 1 column
	binary.LittleEndian.PutUint32(h[8:], MaxRows) // 2^26 rows promised
	binary.LittleEndian.PutUint32(h[12:], 0)
	h[headerLen] = 1 // nameLen = 1
	h[headerLen+2] = 'x'

	if _, _, err := Decode(h[:]); !errors.Is(err, ErrShortBlock) {
		t.Fatalf("Decode: %v, want ErrShortBlock", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		_, _ = ReadBlock(bytes.NewReader(h[:]))
	})
	// One chunk, a column header, a block: the 512 MiB the header claims
	// would be ~8000 pages; a handful of allocations means chunking works.
	if allocs > 16 {
		t.Fatalf("ReadBlock on truncated maximal header: %v allocs/run", allocs)
	}
	if _, err := ReadBlock(bytes.NewReader(h[:])); !errors.Is(err, ErrShortBlock) {
		t.Fatalf("ReadBlock: %v, want ErrShortBlock", err)
	}
}

func TestReadBlockLargeColumnChunking(t *testing.T) {
	rows := 3*readChunk/8 + 17 // forces the chunked growth path
	vals := make([]float64, rows)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	b := &Block{Columns: []Column{{Name: "v", Values: vals}}}
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ReadBlock(iotest{bytes.NewReader(enc)})
	if err != nil {
		t.Fatal(err)
	}
	blocksBitEqual(t, dec, b)
}

// iotest dribbles reads in small odd sizes to exercise ReadFull looping.
type iotest struct{ r io.Reader }

func (d iotest) Read(p []byte) (int, error) {
	if len(p) > 937 {
		p = p[:937]
	}
	return d.r.Read(p)
}

func FuzzDecodeBlock(f *testing.F) {
	for _, rows := range []int{0, 1, 7} {
		enc, err := sampleBlock(rows).Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)-3])
	}
	f.Add([]byte("SSNC"))
	two, _ := sampleBlock(2).AppendTo(nil)
	two, _ = (&Block{Meta: json.RawMessage(`{"done":true}`)}).AppendTo(two)
	f.Add(two)
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := Decode(data)
		sb, serr := ReadBlock(bytes.NewReader(data))
		if err != nil {
			// The decoders agree on rejection, except that a clean empty
			// stream is io.EOF for the reader and ErrShortBlock for the
			// one-shot slice API.
			if serr == nil {
				t.Fatalf("Decode rejected (%v) but ReadBlock accepted", err)
			}
			return
		}
		if n < headerLen || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// Accepted input round-trips canonically: re-encoding reproduces
		// the consumed prefix byte for byte (NaN payloads included).
		re, eerr := b.AppendTo(nil)
		if eerr != nil {
			t.Fatalf("decoded block fails to re-encode: %v", eerr)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs from consumed prefix")
		}
		if serr != nil {
			t.Fatalf("Decode accepted but ReadBlock rejected: %v", serr)
		}
		blocksBitEqual(t, sb, b)
	})
}

func BenchmarkColumnarEncode(b *testing.B) {
	blk := sampleBlock(1024)
	buf := make([]byte, 0, blk.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := blk.AppendTo(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1024, "ns/point")
}

func BenchmarkColumnarDecode(b *testing.B) {
	enc, err := sampleBlock(1024).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1024, "ns/point")
}
